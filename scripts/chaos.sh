#!/usr/bin/env bash
# Chaos hunt driver: runs the chaos sweep (variants x nemesis schedules) for a
# range of seeds and prints a replay command for every failing seed. The
# simulator is fully deterministic, so one seed + the printed schedule
# reproduces a failure byte-for-byte.
#
# Usage: scripts/chaos.sh [--seeds N] [--from K] [--preset default|sanitize]
#   --seeds N    run seeds FROM..FROM+N-1 (default 10)
#   --from K     start at seed K instead of 1 (resume a hunt)
#   --preset P   CMake preset to build/run under (default: default)
# The seed range is also overridable via environment (flags win):
#   CHEETAH_CHAOS_HUNT_SEEDS / CHEETAH_CHAOS_HUNT_FROM — handy for CI matrix
#   entries that can't pass arguments.
set -euo pipefail
cd "$(dirname "$0")/.."

seeds="${CHEETAH_CHAOS_HUNT_SEEDS:-10}"
from="${CHEETAH_CHAOS_HUNT_FROM:-1}"
preset=default
while [[ $# -gt 0 ]]; do
  case "$1" in
    --seeds) seeds="$2"; shift 2 ;;
    --from) from="$2"; shift 2 ;;
    --preset) preset="$2"; shift 2 ;;
    *) echo "usage: scripts/chaos.sh [--seeds N] [--from K] [--preset default|sanitize]" >&2
       exit 2 ;;
  esac
done

builddir=build
[[ "$preset" == "sanitize" ]] && builddir=build-sanitize
if [[ ! -f "$builddir/CMakeCache.txt" ]]; then
  cmake --preset "$preset"
fi
cmake --build --preset "$preset" -j "$(nproc)" --target chaos_sweep_test

# One ctest invocation only covers the default seed set (test names are fixed
# at discovery time), so the hunt drives the gtest binary directly with one
# seed per run — a failure then pins that seed exactly.
failed=()
for ((s = from; s < from + seeds; s++)); do
  echo "== chaos seed $s =="
  if ! CHEETAH_CHAOS_SEEDS="$s" "$builddir/tests/chaos_sweep_test" \
      --gtest_brief=1; then
    failed+=("$s")
  fi
done

echo
if [[ ${#failed[@]} -eq 0 ]]; then
  echo "chaos hunt clean: seeds $from..$((from + seeds - 1))"
else
  echo "chaos hunt found ${#failed[@]} failing seed(s); replay with:"
  for s in "${failed[@]}"; do
    echo "  CHEETAH_CHAOS_SEEDS=$s $builddir/tests/chaos_sweep_test"
  done
  exit 1
fi
