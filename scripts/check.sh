#!/usr/bin/env bash
# Hardened check: configure with -Werror + ASan/UBSan (the "sanitize" preset
# in CMakePresets.json), build everything, and run the full test suite under
# the sanitizers. Usage: scripts/check.sh [preset]   (default: sanitize)
set -euo pipefail
cd "$(dirname "$0")/.."

preset="${1:-sanitize}"

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset" -j "$(nproc)"
