#!/usr/bin/env bash
# Hardened check: configure with -Werror + ASan/UBSan (the "sanitize" preset
# in CMakePresets.json), build everything, and run the full test suite under
# the sanitizers, then the chaos tier (ctest label `chaos`) with the fixed CI
# seed set so the sanitizer pass over the fault schedules is pinned and
# reproducible. Usage: scripts/check.sh [preset]   (default: sanitize)
set -euo pipefail
cd "$(dirname "$0")/.."

preset="${1:-sanitize}"

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset" -j "$(nproc)"

# Chaos tier: the same fixed seeds the suite registered at discovery time,
# made explicit so the pin survives any future default change.
# scripts/chaos.sh hunts with larger seed ranges.
CHEETAH_CHAOS_SEEDS=1,2,3 ctest --preset "$preset" -L chaos -j "$(nproc)"
