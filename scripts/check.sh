#!/usr/bin/env bash
# Hardened check: configure with -Werror + ASan/UBSan (the "sanitize" preset
# in CMakePresets.json), build everything, and run the full test suite under
# the sanitizers, then the chaos tier (ctest label `chaos`) with the fixed CI
# seed set so the sanitizer pass over the fault schedules is pinned and
# reproducible. Usage: scripts/check.sh [preset]   (default: sanitize)
set -euo pipefail
cd "$(dirname "$0")/.."

preset="${1:-sanitize}"

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset" -j "$(nproc)"

# Chaos tier: the same fixed seeds the suite registered at discovery time,
# made explicit so the pin survives any future default change.
# scripts/chaos.sh hunts with larger seed ranges. The determinism tests in
# this tier double as engine-fingerprint guards: each sweep replays one run
# under the reference heap engine and requires a byte-identical schedule and
# history versus the default timer wheel.
CHEETAH_CHAOS_SEEDS=1,2,3 ctest --preset "$preset" -L chaos -j "$(nproc)"

# QoS tier: the scheduler/admission unit tests plus the chaos-with-QoS run
# (ctest label `qos`), then the overload figure at reduced scale — the fig21
# binary asserts its own acceptance criteria (foreground p99 isolation,
# background completion after load drops) and exits non-zero on regression.
ctest --preset "$preset" -L qos -j "$(nproc)"
builddir=build
[[ "$preset" == "sanitize" ]] && builddir=build-sanitize
CHEETAH_FIG21_SMOKE=1 "$builddir/bench/fig21_overload"

# Integrity tier: the bit-rot/LSE/gray-corruption sweep (ctest label
# `integrity`, pinned seeds) proving zero corrupt bytes reach clients and all
# at-rest damage is repaired, then the scrub-overhead bench at reduced scale —
# it asserts foreground GET p99 with scrubbing stays within 2x of scrub-off
# and that an injected bit-rot burst is fully repaired before its audit pass.
CHEETAH_INTEGRITY_SEEDS=1,2 ctest --preset "$preset" -L integrity -j "$(nproc)"
CHEETAH_SCRUB_SMOKE=1 "$builddir/bench/scrub_overhead"

# EC/tiering tier: storage-class placement, demotion, degraded-read, and
# demotion-race tests plus the EC chunk-loss chaos sweep (ctest label `ec`,
# pinned seeds), then the storage-class frontier bench at reduced scale — it
# asserts every cold object demotes, EC storage overhead stays <= 1.6x, and
# the inline put path beats the replica put path on latency.
CHEETAH_EC_SEEDS=1,2 ctest --preset "$preset" -L ec -j "$(nproc)"
CHEETAH_EC_SMOKE=1 "$builddir/bench/ec_tradeoffs"

# Membership/migration tier: failure-detector units, live drain/migration
# tests, and the migration chaos sweep (ctest label `migrate`, pinned seeds —
# larger hunts via CHEETAH_MIGRATE_SEEDS), then the resize-under-fire bench at
# reduced scale — it asserts zero failed foreground ops while the cluster
# doubles and a node drains, foreground p99 within 2x of steady state, a
# completed drain, and a clean full audit afterwards.
CHEETAH_MIGRATE_SEEDS=1,2 ctest --preset "$preset" -L migrate -j "$(nproc)"
CHEETAH_RESIZE_SMOKE=1 "$builddir/bench/resize_under_fire"

# Perf tier: simulator engine internals (timer wheel vs reference heap,
# InlineFn, Arena, AnyMsg, callback lifecycle; ctest label `perf`), then the
# engine microbench at reduced scale — it asserts the legacy/heap/wheel
# fingerprints are bit-identical and that the wheel clears a conservative
# throughput floor over the legacy priority_queue loop.
ctest --preset "$preset" -L perf -j "$(nproc)"
CHEETAH_SIM_ENGINE_SMOKE=1 "$builddir/bench/sim_engine_speed"
