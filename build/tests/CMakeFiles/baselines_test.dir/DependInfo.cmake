
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/baselines_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/baselines_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/baselines_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cheetah_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/cheetah_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cheetah_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cheetah_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/cheetah_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/raft/CMakeFiles/cheetah_raft.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/cheetah_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/cheetah_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/crush/CMakeFiles/cheetah_crush.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cheetah_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
