# Empty compiler generated dependencies file for crush_test.
# This may be replaced when dependencies are built.
