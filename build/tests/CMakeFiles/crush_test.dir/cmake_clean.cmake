file(REMOVE_RECURSE
  "CMakeFiles/crush_test.dir/crush/crush_test.cc.o"
  "CMakeFiles/crush_test.dir/crush/crush_test.cc.o.d"
  "crush_test"
  "crush_test.pdb"
  "crush_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crush_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
