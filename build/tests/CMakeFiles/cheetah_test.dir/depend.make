# Empty dependencies file for cheetah_test.
# This may be replaced when dependencies are built.
