file(REMOVE_RECURSE
  "CMakeFiles/cheetah_test.dir/core/cheetah_test.cc.o"
  "CMakeFiles/cheetah_test.dir/core/cheetah_test.cc.o.d"
  "cheetah_test"
  "cheetah_test.pdb"
  "cheetah_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheetah_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
