file(REMOVE_RECURSE
  "CMakeFiles/metax_test.dir/core/metax_test.cc.o"
  "CMakeFiles/metax_test.dir/core/metax_test.cc.o.d"
  "metax_test"
  "metax_test.pdb"
  "metax_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
