# Empty compiler generated dependencies file for metax_test.
# This may be replaced when dependencies are built.
