file(REMOVE_RECURSE
  "CMakeFiles/kv_edge_test.dir/kv/kv_edge_test.cc.o"
  "CMakeFiles/kv_edge_test.dir/kv/kv_edge_test.cc.o.d"
  "kv_edge_test"
  "kv_edge_test.pdb"
  "kv_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
