# Empty dependencies file for kv_edge_test.
# This may be replaced when dependencies are built.
