# Empty compiler generated dependencies file for raft_edge_test.
# This may be replaced when dependencies are built.
