file(REMOVE_RECURSE
  "CMakeFiles/raft_edge_test.dir/raft/raft_edge_test.cc.o"
  "CMakeFiles/raft_edge_test.dir/raft/raft_edge_test.cc.o.d"
  "raft_edge_test"
  "raft_edge_test.pdb"
  "raft_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raft_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
