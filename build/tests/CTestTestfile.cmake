# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/crush_test[1]_include.cmake")
include("/root/repo/build/tests/alloc_test[1]_include.cmake")
include("/root/repo/build/tests/raft_test[1]_include.cmake")
include("/root/repo/build/tests/metax_test[1]_include.cmake")
include("/root/repo/build/tests/cheetah_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/ec_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/kv_edge_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/scrub_test[1]_include.cmake")
include("/root/repo/build/tests/sim_extra_test[1]_include.cmake")
include("/root/repo/build/tests/manager_test[1]_include.cmake")
include("/root/repo/build/tests/raft_edge_test[1]_include.cmake")
