file(REMOVE_RECURSE
  "CMakeFiles/cheetah_crush.dir/crush.cc.o"
  "CMakeFiles/cheetah_crush.dir/crush.cc.o.d"
  "libcheetah_crush.a"
  "libcheetah_crush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheetah_crush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
