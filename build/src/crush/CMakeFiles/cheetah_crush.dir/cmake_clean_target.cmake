file(REMOVE_RECURSE
  "libcheetah_crush.a"
)
