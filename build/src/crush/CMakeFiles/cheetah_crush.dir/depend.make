# Empty dependencies file for cheetah_crush.
# This may be replaced when dependencies are built.
