file(REMOVE_RECURSE
  "CMakeFiles/cheetah_raft.dir/raft.cc.o"
  "CMakeFiles/cheetah_raft.dir/raft.cc.o.d"
  "libcheetah_raft.a"
  "libcheetah_raft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheetah_raft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
