file(REMOVE_RECURSE
  "libcheetah_raft.a"
)
