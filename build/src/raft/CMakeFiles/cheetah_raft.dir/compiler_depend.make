# Empty compiler generated dependencies file for cheetah_raft.
# This may be replaced when dependencies are built.
