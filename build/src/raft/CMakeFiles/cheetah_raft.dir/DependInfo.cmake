
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/raft/raft.cc" "src/raft/CMakeFiles/cheetah_raft.dir/raft.cc.o" "gcc" "src/raft/CMakeFiles/cheetah_raft.dir/raft.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cheetah_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cheetah_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
