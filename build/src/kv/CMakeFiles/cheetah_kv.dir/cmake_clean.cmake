file(REMOVE_RECURSE
  "CMakeFiles/cheetah_kv.dir/db.cc.o"
  "CMakeFiles/cheetah_kv.dir/db.cc.o.d"
  "CMakeFiles/cheetah_kv.dir/sstable.cc.o"
  "CMakeFiles/cheetah_kv.dir/sstable.cc.o.d"
  "CMakeFiles/cheetah_kv.dir/write_batch.cc.o"
  "CMakeFiles/cheetah_kv.dir/write_batch.cc.o.d"
  "libcheetah_kv.a"
  "libcheetah_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheetah_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
