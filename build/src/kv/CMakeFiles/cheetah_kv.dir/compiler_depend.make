# Empty compiler generated dependencies file for cheetah_kv.
# This may be replaced when dependencies are built.
