file(REMOVE_RECURSE
  "libcheetah_kv.a"
)
