# Empty compiler generated dependencies file for cheetah_cluster.
# This may be replaced when dependencies are built.
