file(REMOVE_RECURSE
  "libcheetah_cluster.a"
)
