file(REMOVE_RECURSE
  "CMakeFiles/cheetah_cluster.dir/manager.cc.o"
  "CMakeFiles/cheetah_cluster.dir/manager.cc.o.d"
  "CMakeFiles/cheetah_cluster.dir/topology.cc.o"
  "CMakeFiles/cheetah_cluster.dir/topology.cc.o.d"
  "libcheetah_cluster.a"
  "libcheetah_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheetah_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
