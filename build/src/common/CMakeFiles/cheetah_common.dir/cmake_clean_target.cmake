file(REMOVE_RECURSE
  "libcheetah_common.a"
)
