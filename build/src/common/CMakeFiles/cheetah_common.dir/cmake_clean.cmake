file(REMOVE_RECURSE
  "CMakeFiles/cheetah_common.dir/crc32c.cc.o"
  "CMakeFiles/cheetah_common.dir/crc32c.cc.o.d"
  "CMakeFiles/cheetah_common.dir/hash.cc.o"
  "CMakeFiles/cheetah_common.dir/hash.cc.o.d"
  "CMakeFiles/cheetah_common.dir/logging.cc.o"
  "CMakeFiles/cheetah_common.dir/logging.cc.o.d"
  "CMakeFiles/cheetah_common.dir/random.cc.o"
  "CMakeFiles/cheetah_common.dir/random.cc.o.d"
  "CMakeFiles/cheetah_common.dir/status.cc.o"
  "CMakeFiles/cheetah_common.dir/status.cc.o.d"
  "libcheetah_common.a"
  "libcheetah_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheetah_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
