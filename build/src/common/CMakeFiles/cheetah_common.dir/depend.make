# Empty dependencies file for cheetah_common.
# This may be replaced when dependencies are built.
