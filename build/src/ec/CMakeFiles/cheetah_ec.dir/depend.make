# Empty dependencies file for cheetah_ec.
# This may be replaced when dependencies are built.
