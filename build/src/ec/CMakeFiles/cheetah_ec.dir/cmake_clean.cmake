file(REMOVE_RECURSE
  "CMakeFiles/cheetah_ec.dir/reed_solomon.cc.o"
  "CMakeFiles/cheetah_ec.dir/reed_solomon.cc.o.d"
  "libcheetah_ec.a"
  "libcheetah_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheetah_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
