file(REMOVE_RECURSE
  "libcheetah_ec.a"
)
