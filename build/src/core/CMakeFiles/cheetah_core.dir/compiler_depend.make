# Empty compiler generated dependencies file for cheetah_core.
# This may be replaced when dependencies are built.
