file(REMOVE_RECURSE
  "CMakeFiles/cheetah_core.dir/client_proxy.cc.o"
  "CMakeFiles/cheetah_core.dir/client_proxy.cc.o.d"
  "CMakeFiles/cheetah_core.dir/data_server.cc.o"
  "CMakeFiles/cheetah_core.dir/data_server.cc.o.d"
  "CMakeFiles/cheetah_core.dir/meta_server.cc.o"
  "CMakeFiles/cheetah_core.dir/meta_server.cc.o.d"
  "CMakeFiles/cheetah_core.dir/metax.cc.o"
  "CMakeFiles/cheetah_core.dir/metax.cc.o.d"
  "CMakeFiles/cheetah_core.dir/testbed.cc.o"
  "CMakeFiles/cheetah_core.dir/testbed.cc.o.d"
  "libcheetah_core.a"
  "libcheetah_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheetah_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
