file(REMOVE_RECURSE
  "libcheetah_core.a"
)
