file(REMOVE_RECURSE
  "libcheetah_alloc.a"
)
