# Empty dependencies file for cheetah_alloc.
# This may be replaced when dependencies are built.
