file(REMOVE_RECURSE
  "CMakeFiles/cheetah_alloc.dir/bitmap_allocator.cc.o"
  "CMakeFiles/cheetah_alloc.dir/bitmap_allocator.cc.o.d"
  "libcheetah_alloc.a"
  "libcheetah_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheetah_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
