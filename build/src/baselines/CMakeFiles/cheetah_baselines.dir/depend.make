# Empty dependencies file for cheetah_baselines.
# This may be replaced when dependencies are built.
