file(REMOVE_RECURSE
  "libcheetah_baselines.a"
)
