file(REMOVE_RECURSE
  "CMakeFiles/cheetah_baselines.dir/ceph.cc.o"
  "CMakeFiles/cheetah_baselines.dir/ceph.cc.o.d"
  "CMakeFiles/cheetah_baselines.dir/haystack.cc.o"
  "CMakeFiles/cheetah_baselines.dir/haystack.cc.o.d"
  "CMakeFiles/cheetah_baselines.dir/tectonic.cc.o"
  "CMakeFiles/cheetah_baselines.dir/tectonic.cc.o.d"
  "libcheetah_baselines.a"
  "libcheetah_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheetah_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
