file(REMOVE_RECURSE
  "CMakeFiles/cheetah_sim.dir/actor.cc.o"
  "CMakeFiles/cheetah_sim.dir/actor.cc.o.d"
  "CMakeFiles/cheetah_sim.dir/event_loop.cc.o"
  "CMakeFiles/cheetah_sim.dir/event_loop.cc.o.d"
  "CMakeFiles/cheetah_sim.dir/network.cc.o"
  "CMakeFiles/cheetah_sim.dir/network.cc.o.d"
  "CMakeFiles/cheetah_sim.dir/storage.cc.o"
  "CMakeFiles/cheetah_sim.dir/storage.cc.o.d"
  "CMakeFiles/cheetah_sim.dir/sync.cc.o"
  "CMakeFiles/cheetah_sim.dir/sync.cc.o.d"
  "libcheetah_sim.a"
  "libcheetah_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheetah_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
