file(REMOVE_RECURSE
  "libcheetah_sim.a"
)
