# Empty compiler generated dependencies file for cheetah_sim.
# This may be replaced when dependencies are built.
