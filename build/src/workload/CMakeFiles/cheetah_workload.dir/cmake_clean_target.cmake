file(REMOVE_RECURSE
  "libcheetah_workload.a"
)
