# Empty compiler generated dependencies file for cheetah_workload.
# This may be replaced when dependencies are built.
