# Empty dependencies file for cheetah_workload.
# This may be replaced when dependencies are built.
