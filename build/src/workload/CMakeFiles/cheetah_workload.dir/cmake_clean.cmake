file(REMOVE_RECURSE
  "CMakeFiles/cheetah_workload.dir/generator.cc.o"
  "CMakeFiles/cheetah_workload.dir/generator.cc.o.d"
  "CMakeFiles/cheetah_workload.dir/runner.cc.o"
  "CMakeFiles/cheetah_workload.dir/runner.cc.o.d"
  "libcheetah_workload.a"
  "libcheetah_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheetah_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
