file(REMOVE_RECURSE
  "CMakeFiles/photo_service.dir/photo_service.cpp.o"
  "CMakeFiles/photo_service.dir/photo_service.cpp.o.d"
  "photo_service"
  "photo_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photo_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
