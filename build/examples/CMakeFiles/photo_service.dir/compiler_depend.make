# Empty compiler generated dependencies file for photo_service.
# This may be replaced when dependencies are built.
