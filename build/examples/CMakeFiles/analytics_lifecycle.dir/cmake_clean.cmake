file(REMOVE_RECURSE
  "CMakeFiles/analytics_lifecycle.dir/analytics_lifecycle.cpp.o"
  "CMakeFiles/analytics_lifecycle.dir/analytics_lifecycle.cpp.o.d"
  "analytics_lifecycle"
  "analytics_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
