# Empty compiler generated dependencies file for analytics_lifecycle.
# This may be replaced when dependencies are built.
