# Empty dependencies file for fig13_richmeta.
# This may be replaced when dependencies are built.
