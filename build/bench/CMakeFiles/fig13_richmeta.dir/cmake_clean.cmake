file(REMOVE_RECURSE
  "CMakeFiles/fig13_richmeta.dir/fig13_richmeta.cc.o"
  "CMakeFiles/fig13_richmeta.dir/fig13_richmeta.cc.o.d"
  "fig13_richmeta"
  "fig13_richmeta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_richmeta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
