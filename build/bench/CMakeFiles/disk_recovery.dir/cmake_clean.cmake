file(REMOVE_RECURSE
  "CMakeFiles/disk_recovery.dir/disk_recovery.cc.o"
  "CMakeFiles/disk_recovery.dir/disk_recovery.cc.o.d"
  "disk_recovery"
  "disk_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
