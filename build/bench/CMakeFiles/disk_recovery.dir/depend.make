# Empty dependencies file for disk_recovery.
# This may be replaced when dependencies are built.
