file(REMOVE_RECURSE
  "CMakeFiles/fig17_trace_replay.dir/fig17_trace_replay.cc.o"
  "CMakeFiles/fig17_trace_replay.dir/fig17_trace_replay.cc.o.d"
  "fig17_trace_replay"
  "fig17_trace_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_trace_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
