# Empty dependencies file for fig17_trace_replay.
# This may be replaced when dependencies are built.
