# Empty compiler generated dependencies file for fig10_filesystem.
# This may be replaced when dependencies are built.
