file(REMOVE_RECURSE
  "CMakeFiles/fig10_filesystem.dir/fig10_filesystem.cc.o"
  "CMakeFiles/fig10_filesystem.dir/fig10_filesystem.cc.o.d"
  "fig10_filesystem"
  "fig10_filesystem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_filesystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
