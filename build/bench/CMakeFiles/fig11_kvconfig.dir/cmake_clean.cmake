file(REMOVE_RECURSE
  "CMakeFiles/fig11_kvconfig.dir/fig11_kvconfig.cc.o"
  "CMakeFiles/fig11_kvconfig.dir/fig11_kvconfig.cc.o.d"
  "fig11_kvconfig"
  "fig11_kvconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_kvconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
