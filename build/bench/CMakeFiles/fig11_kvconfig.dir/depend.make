# Empty dependencies file for fig11_kvconfig.
# This may be replaced when dependencies are built.
