file(REMOVE_RECURSE
  "CMakeFiles/fig19_compaction.dir/fig19_compaction.cc.o"
  "CMakeFiles/fig19_compaction.dir/fig19_compaction.cc.o.d"
  "fig19_compaction"
  "fig19_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
