# Empty compiler generated dependencies file for fig19_compaction.
# This may be replaced when dependencies are built.
