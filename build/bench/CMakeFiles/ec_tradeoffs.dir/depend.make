# Empty dependencies file for ec_tradeoffs.
# This may be replaced when dependencies are built.
