file(REMOVE_RECURSE
  "CMakeFiles/ec_tradeoffs.dir/ec_tradeoffs.cc.o"
  "CMakeFiles/ec_tradeoffs.dir/ec_tradeoffs.cc.o.d"
  "ec_tradeoffs"
  "ec_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
