# Empty compiler generated dependencies file for fig15_meta_recovery.
# This may be replaced when dependencies are built.
