file(REMOVE_RECURSE
  "CMakeFiles/fig15_meta_recovery.dir/fig15_meta_recovery.cc.o"
  "CMakeFiles/fig15_meta_recovery.dir/fig15_meta_recovery.cc.o.d"
  "fig15_meta_recovery"
  "fig15_meta_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_meta_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
