# Empty compiler generated dependencies file for fig16_trace_stats.
# This may be replaced when dependencies are built.
