file(REMOVE_RECURSE
  "CMakeFiles/fig16_trace_stats.dir/fig16_trace_stats.cc.o"
  "CMakeFiles/fig16_trace_stats.dir/fig16_trace_stats.cc.o.d"
  "fig16_trace_stats"
  "fig16_trace_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_trace_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
