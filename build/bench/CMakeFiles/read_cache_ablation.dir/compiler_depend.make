# Empty compiler generated dependencies file for read_cache_ablation.
# This may be replaced when dependencies are built.
