file(REMOVE_RECURSE
  "CMakeFiles/read_cache_ablation.dir/read_cache_ablation.cc.o"
  "CMakeFiles/read_cache_ablation.dir/read_cache_ablation.cc.o.d"
  "read_cache_ablation"
  "read_cache_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_cache_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
