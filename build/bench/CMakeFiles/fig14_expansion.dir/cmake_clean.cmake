file(REMOVE_RECURSE
  "CMakeFiles/fig14_expansion.dir/fig14_expansion.cc.o"
  "CMakeFiles/fig14_expansion.dir/fig14_expansion.cc.o.d"
  "fig14_expansion"
  "fig14_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
