# Empty compiler generated dependencies file for fig14_expansion.
# This may be replaced when dependencies are built.
