# Empty dependencies file for fig18_efficiency.
# This may be replaced when dependencies are built.
