file(REMOVE_RECURSE
  "CMakeFiles/fig8_rmw.dir/fig8_rmw.cc.o"
  "CMakeFiles/fig8_rmw.dir/fig8_rmw.cc.o.d"
  "fig8_rmw"
  "fig8_rmw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_rmw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
