# Empty dependencies file for fig8_rmw.
# This may be replaced when dependencies are built.
