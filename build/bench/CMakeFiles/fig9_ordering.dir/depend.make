# Empty dependencies file for fig9_ordering.
# This may be replaced when dependencies are built.
