// Unit tests for the observability layer: registry handles, scope instance
// isolation, histogram percentiles, op-context propagation, and the tracer's
// span bookkeeping.
#include <gtest/gtest.h>

#include <string>

#include "src/obs/context.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace cheetah::obs {
namespace {

TEST(MetricsTest, CounterFindOrCreateReturnsSameHandle) {
  Counter* a = Registry::Global().counter("test.obs.counter_identity");
  Counter* b = Registry::Global().counter("test.obs.counter_identity");
  EXPECT_EQ(a, b);
  a->Reset();
  a->Add();
  a->Add(41);
  EXPECT_EQ(b->value(), 42u);
}

TEST(MetricsTest, GaugeTracksSignedValues) {
  Gauge* g = Registry::Global().gauge("test.obs.gauge");
  g->Reset();
  g->Set(10);
  g->Add(-25);
  EXPECT_EQ(g->value(), -15);
}

TEST(MetricsTest, ScopeInstancesAreIsolated) {
  // Two scopes with the same prefix model "the same component, rebuilt":
  // their metrics must be distinct objects so the second instance starts
  // from zero.
  Scope first("test.obs.server");
  Scope second("test.obs.server");
  EXPECT_NE(first.prefix(), second.prefix());
  Counter* c1 = first.counter("ops");
  Counter* c2 = second.counter("ops");
  EXPECT_NE(c1, c2);
  c1->Add(7);
  EXPECT_EQ(c2->value(), 0u);
}

TEST(MetricsTest, HistogramPercentilesBracketObservedRange) {
  Histogram* h = Registry::Global().histogram("test.obs.hist");
  h->Reset();
  EXPECT_EQ(h->Percentile(0.5), 0u);  // empty
  for (uint64_t v = 1; v <= 1000; ++v) {
    h->Record(v * 1000);  // 1us .. 1ms
  }
  EXPECT_EQ(h->count(), 1000u);
  EXPECT_EQ(h->min(), 1000u);
  EXPECT_EQ(h->max(), 1000000u);
  EXPECT_DOUBLE_EQ(h->mean(), 500500.0);
  const uint64_t p50 = h->Percentile(0.5);
  const uint64_t p99 = h->Percentile(0.99);
  // Power-of-two buckets are coarse; percentiles must stay ordered and
  // inside the observed range.
  EXPECT_GE(p50, h->min());
  EXPECT_LE(p50, h->max());
  EXPECT_GE(p99, p50);
  EXPECT_LE(p99, h->max());
  EXPECT_EQ(h->Percentile(0.0), h->min());
  EXPECT_EQ(h->Percentile(1.0), h->max());
}

TEST(MetricsTest, HistogramHandlesZeroAndHugeValues) {
  Histogram* h = Registry::Global().histogram("test.obs.hist_edges");
  h->Reset();
  h->Record(0);
  h->Record(~0ull);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(h->min(), 0u);
  EXPECT_EQ(h->max(), ~0ull);
}

TEST(MetricsTest, ZeroAllPreservesHandles) {
  Counter* c = Registry::Global().counter("test.obs.zeroed");
  c->Add(5);
  Registry::Global().ZeroAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(Registry::Global().counter("test.obs.zeroed"), c);
}

TEST(MetricsTest, ToJsonContainsRegisteredNames) {
  Registry::Global().counter("test.obs.json_counter")->Add(3);
  const std::string json = Registry::Global().ToJson();
  EXPECT_NE(json.find("\"test.obs.json_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricsTest, ShortTypeNameStripsNamespaces) {
  EXPECT_EQ(ShortTypeName(typeid(Counter)), "Counter");
  EXPECT_EQ(ShortTypeName(typeid(int)), "int");
}

TEST(ContextTest, GuardRestoresOnExit) {
  SetContext({});
  EXPECT_EQ(ThisContext().op, 0u);
  {
    ContextGuard outer({7, 8});
    EXPECT_EQ(ThisContext().op, 7u);
    EXPECT_EQ(ThisContext().span, 8u);
    {
      ContextGuard inner({9, 10});
      EXPECT_EQ(ThisContext().op, 9u);
    }
    EXPECT_EQ(ThisContext().op, 7u);  // inner restored outer
  }
  EXPECT_EQ(ThisContext().op, 0u);
}

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Clear();
    Tracer::Global().set_enabled(true);
    SetContext({});
  }
  void TearDown() override {
    Tracer::Global().set_enabled(false);
    Tracer::Global().Clear();
    SetContext({});
  }
};

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  Tracer::Global().set_enabled(false);
  EXPECT_EQ(Tracer::Global().BeginOp("put", 1, 100), 0u);
  EXPECT_EQ(Tracer::Global().Begin(SpanKind::kRpc, "rpc.X", 1, 100), 0u);
  Tracer::Global().End(0, 200);    // must be a no-op
  Tracer::Global().EndOp(0, 200);  // must be a no-op
  EXPECT_TRUE(Tracer::Global().spans().empty());
}

TEST_F(TracerTest, ChildSpansInheritTheCurrentOp) {
  auto& t = Tracer::Global();
  const uint64_t op = t.BeginOp("put", 3, 100);
  ASSERT_NE(op, 0u);
  EXPECT_EQ(ThisContext().op, op);

  const uint64_t rpc = t.Begin(SpanKind::kRpc, "rpc.X", 3, 110, 64);
  const Span* rpc_span = t.Find(rpc);
  ASSERT_NE(rpc_span, nullptr);
  EXPECT_EQ(rpc_span->op, op);
  EXPECT_EQ(rpc_span->parent, op);
  EXPECT_EQ(rpc_span->bytes, 64u);
  EXPECT_EQ(rpc_span->end, 0u);  // still open

  // A handler on another node joins via the explicit envelope context.
  const uint64_t handler =
      t.BeginWith({op, rpc}, SpanKind::kHandler, "handle.X", 9, 120);
  EXPECT_EQ(t.Find(handler)->parent, rpc);
  EXPECT_EQ(t.Find(handler)->op, op);

  t.End(handler, 150);
  t.End(rpc, 160, false);
  EXPECT_EQ(t.Find(rpc)->end, 160u);
  EXPECT_FALSE(t.Find(rpc)->ok);

  t.EndOp(op, 200);
  EXPECT_EQ(ThisContext().op, 0u);  // EndOp cleared the context
  EXPECT_EQ(t.Find(op)->end, 200u);

  EXPECT_EQ(t.Ops().size(), 1u);
  EXPECT_EQ(t.OfOp(op).size(), 3u);
}

TEST_F(TracerTest, RootsAreNeverNested) {
  auto& t = Tracer::Global();
  const uint64_t first = t.BeginOp("put", 1, 100);
  const uint64_t second = t.BeginOp("get", 1, 150);  // leaked context
  EXPECT_EQ(t.Find(second)->parent, 0u);
  EXPECT_EQ(t.Find(second)->op, second);
  t.EndOp(second, 200);
  t.EndOp(first, 300);
  EXPECT_EQ(t.Ops().size(), 2u);
}

TEST_F(TracerTest, EndOpOnlyClearsItsOwnContext) {
  auto& t = Tracer::Global();
  const uint64_t first = t.BeginOp("put", 1, 100);
  const uint64_t second = t.BeginOp("get", 1, 150);
  // Context now belongs to `second`; ending `first` must not clear it.
  t.EndOp(first, 200);
  EXPECT_EQ(ThisContext().op, second);
  t.EndOp(second, 250);
  EXPECT_EQ(ThisContext().op, 0u);
}

TEST_F(TracerTest, ToJsonEmitsAllSpans) {
  auto& t = Tracer::Global();
  const uint64_t op = t.BeginOp("put", 1, 100);
  t.EndOp(op, 250);
  const std::string json = t.ToJson();
  EXPECT_NE(json.find("\"put\""), std::string::npos);
  EXPECT_NE(json.find("\"op\""), std::string::npos);
}

}  // namespace
}  // namespace cheetah::obs
