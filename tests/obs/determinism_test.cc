// Determinism guard: observability must record, never perturb. The same
// workload, run with tracing enabled and disabled, must produce identical
// virtual-time results — if instrumentation ever schedules an event or
// changes a code path, this test catches it.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/testbed.h"
#include "src/obs/trace.h"

namespace cheetah::core {
namespace {

// Runs a fixed put/get/delete mix on a fresh testbed and returns the virtual
// completion time of every operation plus the final clock.
std::vector<Nanos> RunWorkload(bool tracing) {
  obs::Tracer::Global().Clear();
  obs::Tracer::Global().set_enabled(tracing);

  TestbedConfig config;
  config.meta_machines = 3;
  config.data_machines = 4;
  config.proxies = 2;
  config.pg_count = 8;
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 3;
  config.lv_capacity_bytes = MiB(128);
  Testbed bed(std::move(config));
  EXPECT_TRUE(bed.Boot().ok());

  std::vector<Nanos> stamps;
  for (int i = 0; i < 12; ++i) {
    const std::string name = "det-" + std::to_string(i);
    EXPECT_TRUE(bed.PutObject(i % 2, name, std::string(4096 + i * 512, 'd')).ok());
    stamps.push_back(bed.loop().Now());
  }
  for (int i = 0; i < 12; ++i) {
    auto got = bed.GetObject((i + 1) % 2, "det-" + std::to_string(i));
    EXPECT_TRUE(got.ok());
    stamps.push_back(bed.loop().Now());
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(bed.DeleteObject(0, "det-" + std::to_string(i)).ok());
    stamps.push_back(bed.loop().Now());
  }
  bed.RunFor(Seconds(1));  // background activity (heartbeats, flushes)
  stamps.push_back(bed.loop().Now());

  obs::Tracer::Global().set_enabled(false);
  obs::Tracer::Global().Clear();
  return stamps;
}

TEST(DeterminismTest, TracingDoesNotChangeVirtualTime) {
  const std::vector<Nanos> untraced = RunWorkload(false);
  const std::vector<Nanos> traced = RunWorkload(true);
  ASSERT_EQ(untraced.size(), traced.size());
  for (size_t i = 0; i < untraced.size(); ++i) {
    EXPECT_EQ(untraced[i], traced[i]) << "op " << i << " completed at a different time";
  }
}

TEST(DeterminismTest, RepeatedRunsAreBitIdentical) {
  // Two identical untraced runs: the simulator itself must be deterministic,
  // otherwise the traced/untraced comparison above proves nothing.
  const std::vector<Nanos> a = RunWorkload(false);
  const std::vector<Nanos> b = RunWorkload(false);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace cheetah::core
