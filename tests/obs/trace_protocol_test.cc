// Trace-based protocol regression tests: the span log of a single put must
// show the paper's exact RPC structure — one allocation round trip, three
// data writes, two MetaX replications — and the persistence-wait behavior
// that separates full Cheetah (reply first, persist in parallel) from
// Cheetah-OW (persist before replying, Fig. 9).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/core/testbed.h"
#include "src/obs/trace.h"

namespace cheetah::core {
namespace {

using obs::Span;
using obs::SpanKind;
using obs::Tracer;

class TraceProtocolTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Tracer::Global().set_enabled(false);
    Tracer::Global().Clear();
  }

  void Boot(bool ordered_writes) {
    TestbedConfig config;
    config.meta_machines = 3;
    config.data_machines = 4;
    config.proxies = 2;
    config.pg_count = 8;
    config.disks_per_data_machine = 2;
    config.pvs_per_disk = 3;
    config.lv_capacity_bytes = MiB(128);
    config.options.ordered_writes = ordered_writes;
    bed_ = std::make_unique<Testbed>(std::move(config));
    ASSERT_TRUE(bed_->Boot().ok());
    // Untraced warm-up so the traced put doesn't include the proxy's
    // first-use topology fetch.
    ASSERT_TRUE(bed_->PutObject(0, "warmup", std::string(4096, 'w')).ok());
  }

  // Runs one traced put and returns its root span.
  const Span* TracedPut() {
    Tracer::Global().Clear();
    Tracer::Global().set_enabled(true);
    Status s = bed_->PutObject(0, "traced", std::string(8192, 't'));
    Tracer::Global().set_enabled(false);
    EXPECT_TRUE(s.ok()) << s.ToString();
    auto ops = Tracer::Global().Ops();
    EXPECT_EQ(ops.size(), 1u);
    if (ops.size() != 1u) return nullptr;
    EXPECT_EQ(ops[0]->name, "put");
    EXPECT_TRUE(ops[0]->ok);
    EXPECT_NE(ops[0]->end, 0u);
    return ops[0];
  }

  std::vector<const Span*> Named(uint64_t op, SpanKind kind, const std::string& name) {
    std::vector<const Span*> out;
    for (const Span* s : Tracer::Global().OfOp(op)) {
      if (s->kind == kind && s->name == name) out.push_back(s);
    }
    return out;
  }

  std::unique_ptr<Testbed> bed_;
};

TEST_F(TraceProtocolTest, StockPutPipelinesPersistenceWithDataWrites) {
  Boot(/*ordered_writes=*/false);
  const Span* op = TracedPut();
  ASSERT_NE(op, nullptr);

  // Exact RPC structure: 1 allocation, replication-1 = 2 MetaX replications,
  // replication = 3 data writes. Notifications (MetaPersistedNotify,
  // PutCommitNotify) are fire-and-forget and must not appear as RPC spans.
  auto alloc = Named(op->id, SpanKind::kRpc, "rpc.PutAllocRequest");
  auto data = Named(op->id, SpanKind::kRpc, "rpc.DataWriteRequest");
  auto repl = Named(op->id, SpanKind::kRpc, "rpc.ReplicateMetaXRequest");
  ASSERT_EQ(alloc.size(), 1u);
  ASSERT_EQ(data.size(), 3u);
  ASSERT_EQ(repl.size(), 2u);
  EXPECT_TRUE(Named(op->id, SpanKind::kRpc, "rpc.MetaPersistedNotify").empty());
  EXPECT_TRUE(Named(op->id, SpanKind::kRpc, "rpc.PutCommitNotify").empty());

  // The remote side joined the caller's operation via the envelope context.
  EXPECT_EQ(Named(op->id, SpanKind::kHandler, "handle.PutAllocRequest").size(), 1u);
  EXPECT_EQ(Named(op->id, SpanKind::kHandler, "handle.DataWriteRequest").size(), 3u);
  EXPECT_EQ(Named(op->id, SpanKind::kHandler, "handle.ReplicateMetaXRequest").size(), 2u);

  // Every MetaX copy is a KV write (primary + 2 backups); the data lands on
  // disk on the data servers.
  EXPECT_GE(Named(op->id, SpanKind::kKv, "kv.write").size(), 3u);
  size_t disk_spans = 0;
  for (const Span* s : Tracer::Global().OfOp(op->id)) {
    if (s->kind == SpanKind::kDisk) ++disk_spans;
  }
  EXPECT_GE(disk_spans, 3u);

  // Full Cheetah replies before MetaX is durable: exactly one persistence
  // wait, resolved only after both replications finished.
  auto wait = Named(op->id, SpanKind::kWait, "put.persist_wait");
  ASSERT_EQ(wait.size(), 1u);
  ASSERT_NE(wait[0]->end, 0u);
  for (const Span* r : repl) {
    ASSERT_NE(r->end, 0u);
    EXPECT_GE(wait[0]->end, r->end);
  }

  // The parallel pipeline: the allocation RPC returns before replication is
  // done, and the data writes overlap the persistence wait instead of
  // queuing behind it.
  ASSERT_NE(alloc[0]->end, 0u);
  for (const Span* r : repl) {
    EXPECT_GT(r->end, alloc[0]->end) << "replication must outlive the alloc reply";
  }
  Nanos data_start = data[0]->start;
  Nanos data_end = 0;
  for (const Span* d : data) {
    ASSERT_NE(d->end, 0u);
    data_start = std::min(data_start, d->start);
    data_end = std::max(data_end, d->end);
  }
  EXPECT_GE(data_start, alloc[0]->end);  // data goes out after the alloc reply
  EXPECT_LT(data_start, wait[0]->end);   // ...while persistence is in flight
}

TEST_F(TraceProtocolTest, OrderedWritesSerializePersistenceBeforeReply) {
  Boot(/*ordered_writes=*/true);
  const Span* op = TracedPut();
  ASSERT_NE(op, nullptr);

  auto alloc = Named(op->id, SpanKind::kRpc, "rpc.PutAllocRequest");
  auto data = Named(op->id, SpanKind::kRpc, "rpc.DataWriteRequest");
  auto repl = Named(op->id, SpanKind::kRpc, "rpc.ReplicateMetaXRequest");
  ASSERT_EQ(alloc.size(), 1u);
  ASSERT_EQ(data.size(), 3u);
  ASSERT_EQ(repl.size(), 2u);

  // OW restores the ordering constraint: the reply already certifies
  // persistence, so the proxy never waits...
  EXPECT_TRUE(Named(op->id, SpanKind::kWait, "put.persist_wait").empty());

  // ...because replication ran inside the allocation round trip...
  ASSERT_NE(alloc[0]->end, 0u);
  for (const Span* r : repl) {
    ASSERT_NE(r->end, 0u);
    EXPECT_GE(r->start, alloc[0]->start);
    EXPECT_LE(r->end, alloc[0]->end);
  }

  // ...and the data writes only start after the (now slower) alloc reply.
  for (const Span* d : data) {
    EXPECT_GE(d->start, alloc[0]->end);
  }
}

TEST_F(TraceProtocolTest, GetAndDeleteRecordTheirOwnRoots) {
  Boot(/*ordered_writes=*/false);
  ASSERT_TRUE(bed_->PutObject(0, "gd", std::string(4096, 'g')).ok());
  Tracer::Global().Clear();
  Tracer::Global().set_enabled(true);
  ASSERT_TRUE(bed_->GetObject(0, "gd").ok());
  ASSERT_TRUE(bed_->DeleteObject(0, "gd").ok());
  Tracer::Global().set_enabled(false);

  auto ops = Tracer::Global().Ops();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0]->name, "get");
  EXPECT_EQ(ops[1]->name, "delete");
  // Span ids are per-op roots: the two ops' children must not mix.
  for (const Span* s : Tracer::Global().OfOp(ops[0]->id)) {
    EXPECT_EQ(s->op, ops[0]->id);
  }
  // A delete never touches a data server (§3.1): no data RPCs in its op.
  EXPECT_TRUE(Named(ops[1]->id, SpanKind::kRpc, "rpc.DataWriteRequest").empty());
  EXPECT_TRUE(Named(ops[1]->id, SpanKind::kRpc, "rpc.DataReadRequest").empty());
}

}  // namespace
}  // namespace cheetah::core
