// Seed-deterministic unit tests for the QoS building blocks: token-bucket
// refill/burst arithmetic, weighted-fair queue ordering and starvation
// freedom, CoDel trip/escalate/reset, AIMD window growth/backoff, and the
// scheduler's admission checks + dispatch order. Everything here is a pure
// function of the submitted sequence and the (virtual) clock.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/qos/aimd.h"
#include "src/qos/codel.h"
#include "src/qos/qos.h"
#include "src/qos/scheduler.h"
#include "src/qos/token_bucket.h"
#include "src/qos/wfq.h"
#include "src/sim/actor.h"
#include "src/sim/event_loop.h"
#include "src/sim/sync.h"

namespace cheetah::qos {
namespace {

// ---- token bucket ----

TEST(TokenBucketTest, UnlimitedAlwaysAdmits) {
  TokenBucket b;  // default: rate 0 = unlimited
  EXPECT_TRUE(b.unlimited());
  EXPECT_TRUE(b.TryTake(1e12, 0));
  EXPECT_EQ(b.NextAvailable(1e12, Seconds(5)), Seconds(5));
}

TEST(TokenBucketTest, RefillIsExactInVirtualTime) {
  TokenBucket b(/*rate_per_sec=*/1000.0, /*burst=*/10.0);
  EXPECT_TRUE(b.TryTake(10.0, 0));   // drain the whole burst
  EXPECT_FALSE(b.TryTake(1.0, 0));   // empty at t=0
  // 1 token at 1000/s takes exactly 1ms to materialize.
  EXPECT_EQ(b.NextAvailable(1.0, 0), Millis(1) + 1);
  EXPECT_FALSE(b.TryTake(1.0, Millis(1) - 1));
  EXPECT_TRUE(b.TryTake(1.0, Millis(1)));
}

TEST(TokenBucketTest, BurstClampsAccumulationAndOversizedRequests) {
  TokenBucket b(/*rate_per_sec=*/100.0, /*burst=*/5.0);
  // A week of idle still refills to exactly `burst`.
  EXPECT_DOUBLE_EQ(b.tokens(Seconds(600)), 5.0);
  // A request larger than the burst can never be satisfied outright, but
  // NextAvailable stays finite (clamped to the burst) instead of stalling
  // the caller forever.
  const Nanos t = Seconds(600);
  EXPECT_TRUE(b.TryTake(5.0, t));
  const Nanos next = b.NextAvailable(100.0, t);
  EXPECT_GT(next, t);
  EXPECT_LE(next, t + Millis(50) + 1);  // 5 tokens at 100/s = 50ms
}

// ---- weighted-fair queue ----

TEST(WfqTest, BackloggedClassesShareByWeight) {
  // fg weight 4, bg weight 1: with both continuously backlogged, fg should
  // take ~4 of every 5 dispatches.
  std::array<double, kNumClasses> weights{0.0, 4.0, 1.0, 1.0, 1.0};
  WeightedFairQueue<int> q(weights);
  for (int i = 0; i < 20; ++i) {
    q.Push(TrafficClass::kForeground, 1.0, i);
    q.Push(TrafficClass::kReplication, 1.0, 100 + i);
  }
  int fg = 0;
  for (int i = 0; i < 10; ++i) {
    TrafficClass cls;
    (void)q.Pop(&cls);
    if (cls == TrafficClass::kForeground) {
      ++fg;
    }
  }
  EXPECT_GE(fg, 7);
  EXPECT_LE(fg, 9);  // not a strict-priority queue either
}

TEST(WfqTest, FifoWithinClassAndDeterministicAcrossRuns) {
  auto run = [] {
    std::array<double, kNumClasses> weights{0.0, 8.0, 4.0, 2.0, 1.0};
    WeightedFairQueue<int> q(weights);
    int tag = 0;
    std::vector<int> order;
    for (int round = 0; round < 6; ++round) {
      q.Push(TrafficClass::kForeground, 1.0, tag++);
      q.Push(TrafficClass::kBackground, 1.0, tag++);
      q.Push(TrafficClass::kMaintenance, 2.0, tag++);
    }
    std::array<int, kNumClasses> last_popped{-1, -1, -1, -1, -1};
    while (!q.empty()) {
      TrafficClass cls;
      int v = q.Pop(&cls);
      EXPECT_GT(v, last_popped[static_cast<int>(cls)]);  // FIFO per class
      last_popped[static_cast<int>(cls)] = v;
      order.push_back(v);
    }
    return order;
  };
  EXPECT_EQ(run(), run());  // identical input -> identical total order
}

TEST(WfqTest, LowWeightClassIsNotStarved) {
  // Foreground stays continuously backlogged; one maintenance item queued
  // behind the backlog must still pop within a bounded number of dispatches.
  std::array<double, kNumClasses> weights{0.0, 8.0, 4.0, 2.0, 1.0};
  WeightedFairQueue<int> q(weights);
  for (int i = 0; i < 4; ++i) {
    q.Push(TrafficClass::kForeground, 1.0, i);
  }
  q.Push(TrafficClass::kMaintenance, 1.0, 999);
  int pops_until_maint = -1;
  int fg_tag = 100;
  for (int i = 0; i < 100; ++i) {
    q.Push(TrafficClass::kForeground, 1.0, fg_tag++);  // keep fg backlogged
    TrafficClass cls;
    int v = q.Pop(&cls);
    if (v == 999) {
      pops_until_maint = i;
      break;
    }
  }
  ASSERT_GE(pops_until_maint, 0) << "maintenance item starved";
  // Its start tag was fixed at arrival; fg tags grow 1/8 per item, so the
  // maintenance item surfaces after at most ~weights ratio pops.
  EXPECT_LE(pops_until_maint, 20);
}

// ---- CoDel detector ----

TEST(CodelTest, OneSlowSampleDoesNotTrip) {
  CodelDetector d(Millis(5), Millis(100));
  d.Record(Millis(50), Millis(10));
  EXPECT_FALSE(d.overloaded());
  d.Record(Millis(1), Millis(20));  // back under target: clean reset
  d.Record(Millis(50), Millis(130));
  EXPECT_FALSE(d.overloaded());  // the above-target clock restarted
}

TEST(CodelTest, TripsAfterSustainedDelayAndEscalates) {
  CodelDetector d(Millis(5), Millis(100));
  d.Record(Millis(10), Millis(0));
  d.Record(Millis(12), Millis(50));
  EXPECT_FALSE(d.overloaded());
  d.Record(Millis(15), Millis(100));  // above target for a full interval
  EXPECT_TRUE(d.overloaded());
  EXPECT_EQ(d.shed_level(Millis(100)), 1);
  EXPECT_EQ(d.shed_level(Millis(199)), 1);
  EXPECT_EQ(d.shed_level(Millis(200)), 2);  // one more level per interval
  EXPECT_EQ(d.shed_level(Millis(350)), 3);
}

TEST(CodelTest, RecoveryAndIdleBothReset) {
  CodelDetector d(Millis(5), Millis(100));
  d.Record(Millis(10), Millis(0));
  d.Record(Millis(10), Millis(100));
  ASSERT_TRUE(d.overloaded());
  d.Record(Millis(1), Millis(150));  // a fast dispatch ends the episode
  EXPECT_FALSE(d.overloaded());
  EXPECT_EQ(d.shed_level(Millis(150)), 0);
  d.Record(Millis(10), Millis(200));
  d.Record(Millis(10), Millis(300));
  ASSERT_TRUE(d.overloaded());
  d.NoteIdle();  // queue drained: nothing left to be overloaded about
  EXPECT_FALSE(d.overloaded());
}

// ---- AIMD window ----

TEST(AimdTest, AdditiveGrowthMultiplicativeBackoff) {
  AimdParams params;
  params.initial_window = 8.0;
  AimdWindow win(params);
  auto aw = win.Acquire();
  ASSERT_TRUE(aw.await_ready());
  win.Release(AimdWindow::Signal::kSuccess);
  EXPECT_DOUBLE_EQ(win.window(), 8.0 + 1.0 / 8.0);  // +1 per window of successes
  auto aw2 = win.Acquire();
  ASSERT_TRUE(aw2.await_ready());
  win.Release(AimdWindow::Signal::kPushback);
  EXPECT_DOUBLE_EQ(win.window(), (8.0 + 1.0 / 8.0) * 0.5);
  auto aw3 = win.Acquire();
  ASSERT_TRUE(aw3.await_ready());
  win.Release(AimdWindow::Signal::kNeutral);  // app errors don't steer
  EXPECT_DOUBLE_EQ(win.window(), (8.0 + 1.0 / 8.0) * 0.5);
}

TEST(AimdTest, WindowNeverLeavesConfiguredBounds) {
  AimdParams params;
  params.initial_window = 2.0;
  params.min_window = 1.0;
  params.max_window = 4.0;
  AimdWindow win(params);
  for (int i = 0; i < 50; ++i) {
    auto aw = win.Acquire();
    ASSERT_TRUE(aw.await_ready());
    win.Release(AimdWindow::Signal::kPushback);
  }
  EXPECT_DOUBLE_EQ(win.window(), 1.0);
  EXPECT_EQ(win.limit(), 1);  // always admits at least one
  for (int i = 0; i < 500; ++i) {
    auto aw = win.Acquire();
    ASSERT_TRUE(aw.await_ready());
    win.Release(AimdWindow::Signal::kSuccess);
  }
  EXPECT_DOUBLE_EQ(win.window(), 4.0);
}

TEST(AimdTest, AcquireBlocksUntilASlotFrees) {
  sim::EventLoop loop;
  sim::Actor actor(loop);
  AimdParams params;
  params.initial_window = 1.0;
  AimdWindow win(params);
  Nanos second_started = -1;
  actor.Spawn([](AimdWindow* w) -> sim::Task<> {
    co_await w->Acquire();
    co_await sim::SleepFor(Millis(3));
    w->Release(AimdWindow::Signal::kSuccess);
  }(&win));
  actor.Spawn([](sim::Actor* a, AimdWindow* w, Nanos* started) -> sim::Task<> {
    co_await w->Acquire();
    *started = a->Now();
    w->Release(AimdWindow::Signal::kSuccess);
  }(&actor, &win, &second_started));
  loop.Run();
  EXPECT_EQ(second_started, Millis(3));
  EXPECT_EQ(win.in_flight(), 0);
}

// ---- scheduler ----

struct DispatchLog {
  std::vector<std::string> order;
  std::vector<std::function<void()>> dones;  // held => slot stays busy
};

Scheduler::RunFn Held(DispatchLog* log, const std::string& label) {
  return [log, label](std::function<void()> done) {
    log->order.push_back(label);
    log->dones.push_back(std::move(done));
  };
}

TEST(SchedulerTest, FairOrderUnderContentionIsDeterministic) {
  auto run = [] {
    sim::EventLoop loop;
    QosParams params;
    params.max_concurrency = 1;
    Scheduler sched(loop, 1, params);
    DispatchLog log;
    sched.Submit(TrafficClass::kForeground, 0, Held(&log, "blocker"), nullptr);
    for (int i = 0; i < 3; ++i) {
      sched.Submit(TrafficClass::kBackground, 0, Held(&log, "bg" + std::to_string(i)),
                   nullptr);
      sched.Submit(TrafficClass::kForeground, 0, Held(&log, "fg" + std::to_string(i)),
                   nullptr);
    }
    // Release slots one at a time; each completion dispatches the next item
    // in weighted-fair order.
    for (size_t i = 0; i < 7 && i < log.dones.size(); ++i) {
      log.dones[i]();
    }
    return log.order;
  };
  auto order = run();
  ASSERT_EQ(order.size(), 7u);
  EXPECT_EQ(order[0], "blocker");
  // Foreground (weight 8) gets through well before the last background item
  // (weight 2) despite arriving after it each round.
  int fg_done_by = -1;
  for (int i = 0; i < 7; ++i) {
    if (order[i] == "fg2") {
      fg_done_by = i;
    }
  }
  ASSERT_GE(fg_done_by, 0);
  EXPECT_LE(fg_done_by, 4);
  EXPECT_EQ(order.back(), "bg2");
  EXPECT_EQ(order, run());  // byte-identical replay
}

TEST(SchedulerTest, QueueLimitRejectsWithRetryAfter) {
  sim::EventLoop loop;
  QosParams params;
  params.max_concurrency = 1;
  params.queue_limit[static_cast<int>(TrafficClass::kBackground)] = 2;
  Scheduler sched(loop, 2, params);
  DispatchLog log;
  sched.Submit(TrafficClass::kBackground, 0, Held(&log, "running"), nullptr);
  sched.Submit(TrafficClass::kBackground, 0, Held(&log, "q1"), nullptr);
  sched.Submit(TrafficClass::kBackground, 0, Held(&log, "q2"), nullptr);
  Nanos retry_after = -1;
  sched.Submit(TrafficClass::kBackground, 0, Held(&log, "overflow"),
               [&retry_after](Nanos ra) { retry_after = ra; });
  EXPECT_GT(retry_after, 0);
  EXPECT_EQ(sched.sheds(TrafficClass::kBackground), 1u);
  EXPECT_EQ(sched.depth(TrafficClass::kBackground), 2u);
  // Foreground has its own (default, large) bound and is unaffected.
  sched.Submit(TrafficClass::kForeground, 0, Held(&log, "fg"), nullptr);
  EXPECT_EQ(sched.sheds(TrafficClass::kForeground), 0u);
}

TEST(SchedulerTest, RateLimitedClassBouncesWhenBucketEmpty) {
  sim::EventLoop loop;
  QosParams params;
  params.rate_per_sec[static_cast<int>(TrafficClass::kMaintenance)] = 1.0;
  params.burst_cost = 1.0;
  Scheduler sched(loop, 3, params);
  DispatchLog log;
  sched.Submit(TrafficClass::kMaintenance, 0, Held(&log, "first"), nullptr);
  EXPECT_EQ(sched.dispatched(TrafficClass::kMaintenance), 1u);
  Nanos retry_after = -1;
  sched.Submit(TrafficClass::kMaintenance, 0, Held(&log, "second"),
               [&retry_after](Nanos ra) { retry_after = ra; });
  EXPECT_EQ(sched.sheds(TrafficClass::kMaintenance), 1u);
  // 1 cost unit at 1/s: retry roughly a second out.
  EXPECT_GE(retry_after, Millis(900));
  EXPECT_LE(retry_after, Seconds(2));
}

TEST(SchedulerTest, CodelShedsLowClassesFirstAndRecoversWhenIdle) {
  sim::EventLoop loop;
  QosParams params;
  params.max_concurrency = 1;
  params.codel_target = Micros(1);
  params.codel_interval = Millis(10);
  Scheduler sched(loop, 4, params);
  DispatchLog log;
  sched.Submit(TrafficClass::kForeground, 0, Held(&log, "blocker"), nullptr);
  sched.Submit(TrafficClass::kForeground, 0, Held(&log, "fg1"), nullptr);
  sched.Submit(TrafficClass::kForeground, 0, Held(&log, "fg2"), nullptr);

  loop.RunFor(Millis(5));
  log.dones[0]();  // fg1 dispatched with 5ms sojourn: above target, not tripped
  EXPECT_EQ(sched.shed_level(), 0);

  loop.RunFor(Millis(15));
  log.dones[1]();  // fg2 at 20ms sojourn, above target for 15ms >= interval
  EXPECT_EQ(sched.shed_level(), 1);

  // Level 1 sheds maintenance only; background and foreground still admit.
  Nanos ra = -1;
  sched.Submit(TrafficClass::kMaintenance, 0, Held(&log, "maint"),
               [&ra](Nanos r) { ra = r; });
  EXPECT_EQ(sched.sheds(TrafficClass::kMaintenance), 1u);
  EXPECT_EQ(ra, params.codel_interval);
  sched.Submit(TrafficClass::kBackground, 0, Held(&log, "bg"), nullptr);
  EXPECT_EQ(sched.sheds(TrafficClass::kBackground), 0u);

  // Another interval overdue escalates to level 2: background shed too,
  // foreground still never (max_shed_level caps at 2).
  loop.RunFor(Millis(12));
  EXPECT_EQ(sched.shed_level(), 2);
  sched.Submit(TrafficClass::kBackground, 0, Held(&log, "bg2"), nullptr);
  EXPECT_EQ(sched.sheds(TrafficClass::kBackground), 1u);
  sched.Submit(TrafficClass::kForeground, 0, Held(&log, "fg3"), nullptr);
  EXPECT_EQ(sched.sheds(TrafficClass::kForeground), 0u);
  loop.RunFor(Seconds(1));
  EXPECT_EQ(sched.shed_level(), sched.params().max_shed_level);  // clamped

  // Drain everything: the idle reset clears the verdict.
  for (size_t i = 2; i < log.dones.size(); ++i) {
    log.dones[i]();
  }
  EXPECT_EQ(sched.active(), 0);
  EXPECT_EQ(sched.shed_level(), 0);
  sched.Submit(TrafficClass::kMaintenance, 0, Held(&log, "maint2"), nullptr);
  EXPECT_EQ(sched.sheds(TrafficClass::kMaintenance), 1u);  // unchanged
}

TEST(SchedulerTest, ResetMakesStaleCompletionsHarmless) {
  sim::EventLoop loop;
  QosParams params;
  params.max_concurrency = 1;
  Scheduler sched(loop, 5, params);
  DispatchLog log;
  sched.Submit(TrafficClass::kForeground, 0, Held(&log, "a"), nullptr);
  sched.Submit(TrafficClass::kForeground, 0, Held(&log, "queued"), nullptr);
  sched.Reset();  // node crashed: queued work dropped, handler killed
  EXPECT_EQ(sched.active(), 0);
  log.dones[0]();  // the killed handler's done fires late: must be a no-op
  EXPECT_EQ(sched.active(), 0);
  EXPECT_EQ(sched.dispatched(TrafficClass::kForeground), 1u);  // "queued" gone
  sched.Submit(TrafficClass::kForeground, 0, Held(&log, "fresh"), nullptr);
  EXPECT_EQ(log.order.back(), "fresh");
  EXPECT_EQ(sched.active(), 1);
}

// ---- wire encoding ----

TEST(QosTest, RetryAfterRoundTripsThroughStatus) {
  Status s = OverloadedStatus(Millis(37));
  EXPECT_TRUE(s.IsOverloaded());
  EXPECT_EQ(RetryAfterOf(s, Millis(1)), Millis(37));
  EXPECT_EQ(RetryAfterOf(Status::Overloaded("no hint"), Millis(1)), Millis(1));
  EXPECT_EQ(RetryAfterOf(Status::Ok(), Millis(2)), Millis(2));
}

}  // namespace
}  // namespace cheetah::qos
