#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "src/common/random.h"
#include "src/ec/reed_solomon.h"

namespace cheetah::ec {
namespace {

std::string RandomData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::string out(n, '\0');
  for (auto& c : out) {
    c = static_cast<char>(rng.Uniform(256));
  }
  return out;
}

TEST(GaloisFieldTest, FieldAxioms) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const uint8_t a = static_cast<uint8_t>(rng.Uniform(256));
    const uint8_t b = static_cast<uint8_t>(rng.Uniform(255) + 1);
    const uint8_t c = static_cast<uint8_t>(rng.Uniform(256));
    // Additive: XOR, self-inverse.
    EXPECT_EQ(GaloisField::Add(a, a), 0);
    // Multiplicative inverse.
    EXPECT_EQ(GaloisField::Mul(b, GaloisField::Inv(b)), 1);
    // Division is multiplication by the inverse.
    EXPECT_EQ(GaloisField::Div(a, b), GaloisField::Mul(a, GaloisField::Inv(b)));
    // Distributivity.
    EXPECT_EQ(GaloisField::Mul(a, GaloisField::Add(b, c)),
              GaloisField::Add(GaloisField::Mul(a, b), GaloisField::Mul(a, c)));
    // Identity and zero.
    EXPECT_EQ(GaloisField::Mul(a, 1), a);
    EXPECT_EQ(GaloisField::Mul(a, 0), 0);
  }
}

TEST(ReedSolomonTest, SystematicDataShardsAreSlices) {
  ReedSolomon rs(4, 2);
  const std::string data = "abcdefgh12345678ABCDEFGH!@#$%^&*";  // 32 bytes
  auto shards = rs.Encode(data);
  ASSERT_EQ(shards.size(), 6u);
  EXPECT_EQ(shards[0], "abcdefgh");
  EXPECT_EQ(shards[1], "12345678");
  EXPECT_EQ(shards[2], "ABCDEFGH");
  EXPECT_EQ(shards[3], "!@#$%^&*");
}

TEST(ReedSolomonTest, VerifyAcceptsCleanRejectsCorrupt) {
  ReedSolomon rs(4, 2);
  auto shards = rs.Encode(RandomData(4096, 7));
  EXPECT_TRUE(rs.Verify(shards));
  shards[2][17] ^= 0x5a;
  EXPECT_FALSE(rs.Verify(shards));
}

struct RsParam {
  int k;
  int m;
  size_t size;
  uint64_t seed;
};

class ReedSolomonProperty : public ::testing::TestWithParam<RsParam> {};

TEST_P(ReedSolomonProperty, AnyKShardsReconstruct) {
  const RsParam p = GetParam();
  ReedSolomon rs(p.k, p.m);
  const std::string data = RandomData(p.size, p.seed);
  auto encoded = rs.Encode(data);
  Rng rng(p.seed * 31 + 1);

  for (int trial = 0; trial < 20; ++trial) {
    // Drop up to m random shards.
    std::vector<std::optional<std::string>> shards(encoded.begin(), encoded.end());
    int losses = static_cast<int>(rng.Uniform(p.m + 1));
    for (int l = 0; l < losses;) {
      const size_t victim = rng.Uniform(shards.size());
      if (shards[victim].has_value()) {
        shards[victim].reset();
        ++l;
      }
    }
    auto decoded = rs.Decode(shards, data.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, data);
    // And the full shard set is rebuilt bit-identically.
    auto rebuilt = rs.Reconstruct(shards);
    ASSERT_TRUE(rebuilt.ok());
    for (size_t i = 0; i < encoded.size(); ++i) {
      EXPECT_EQ((*rebuilt)[i], encoded[i]) << "shard " << i;
    }
  }
}

TEST_P(ReedSolomonProperty, MoreThanMLossesFail) {
  const RsParam p = GetParam();
  ReedSolomon rs(p.k, p.m);
  auto encoded = rs.Encode(RandomData(p.size, p.seed));
  std::vector<std::optional<std::string>> shards(encoded.begin(), encoded.end());
  for (int i = 0; i <= p.m; ++i) {
    shards[i].reset();  // m+1 losses
  }
  EXPECT_FALSE(rs.Decode(shards, p.size).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReedSolomonProperty,
    ::testing::Values(RsParam{2, 1, 1000, 1}, RsParam{4, 2, 4096, 2},
                      RsParam{6, 3, 10000, 3}, RsParam{8, 4, 65536, 4},
                      RsParam{10, 4, 12345, 5},  // the classic RS(10,4)
                      RsParam{3, 2, 17, 6},      // size not divisible by k
                      RsParam{5, 1, 1, 7},       // single byte
                      RsParam{4, 0, 1024, 8}));  // no parity (degenerate)

TEST(ReedSolomonTest, StorageOverheadVsReplication) {
  // The efficiency argument for the future-work integration: RS(10,4) stores
  // 1.4x the data for 4-loss tolerance; 3-way replication stores 3x for
  // 2-loss tolerance.
  ReedSolomon rs(10, 4);
  const std::string data = RandomData(100000, 9);
  auto shards = rs.Encode(data);
  size_t stored = 0;
  for (const auto& s : shards) {
    stored += s.size();
  }
  EXPECT_NEAR(static_cast<double>(stored) / static_cast<double>(data.size()), 1.4, 0.01);
}

TEST(ReedSolomonTest, DecodeChecksShardCount) {
  ReedSolomon rs(4, 2);
  std::vector<std::optional<std::string>> wrong(3);
  EXPECT_FALSE(rs.Decode(wrong, 100).ok());
}

TEST(ReedSolomonTest, ReconstructFromExactlyKArbitraryShards) {
  // Any k-subset suffices — including the worst case where every data shard
  // but one is gone and the survivors are mostly parity.
  ReedSolomon rs(3, 2);
  const std::string data = RandomData(3000, 17);
  auto encoded = rs.Encode(data);
  std::vector<std::optional<std::string>> shards(encoded.begin(), encoded.end());
  shards[0].reset();
  shards[2].reset();  // survivors: data[1], parity[3], parity[4] — exactly k
  auto decoded = rs.Decode(shards, data.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, data);
  auto rebuilt = rs.Reconstruct(shards);
  ASSERT_TRUE(rebuilt.ok());
  for (size_t i = 0; i < encoded.size(); ++i) {
    EXPECT_EQ((*rebuilt)[i], encoded[i]) << "shard " << i;
  }
}

TEST(ReedSolomonTest, ZeroParityIsPassthrough) {
  // m=0 degenerates to plain striping: encode slices, decode concatenates,
  // and a single loss is unrecoverable.
  ReedSolomon rs(4, 0);
  const std::string data = RandomData(4000, 18);
  auto shards = rs.Encode(data);
  ASSERT_EQ(shards.size(), 4u);
  std::string concat;
  for (const auto& s : shards) {
    concat += s;
  }
  EXPECT_EQ(concat.substr(0, data.size()), data);
  std::vector<std::optional<std::string>> all(shards.begin(), shards.end());
  auto decoded = rs.Decode(all, data.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, data);
  all[1].reset();
  EXPECT_FALSE(rs.Decode(all, data.size()).ok());
}

TEST(ReedSolomonTest, ZeroPaddingRoundTripsOddSizes) {
  // Sizes that do not divide by k pad the tail shard with zeros; the pad must
  // be deterministic (equal shard lengths) and come back off on decode.
  ReedSolomon rs(4, 2);
  for (size_t size : {1u, 3u, 17u, 4095u, 4097u}) {
    const std::string data = RandomData(size, 19 + size);
    auto shards = rs.Encode(data);
    const size_t shard_len = (size + 3) / 4;
    for (const auto& s : shards) {
      EXPECT_EQ(s.size(), shard_len) << "size " << size;
    }
    // The last data shard beyond the real bytes is all zeros.
    const size_t used_in_last = size > 3 * shard_len ? size - 3 * shard_len : 0;
    for (size_t i = used_in_last; i < shards[3].size(); ++i) {
      EXPECT_EQ(shards[3][i], '\0') << "size " << size << " pad byte " << i;
    }
    std::vector<std::optional<std::string>> all(shards.begin(), shards.end());
    all[0].reset();
    all[4].reset();  // max losses
    auto decoded = rs.Decode(all, size);
    ASSERT_TRUE(decoded.ok()) << "size " << size;
    EXPECT_EQ(*decoded, data) << "size " << size;
  }
}

TEST(ReedSolomonTest, DecodeAndReconstructRejectFewerThanKSurvivors) {
  ReedSolomon rs(4, 2);
  auto encoded = rs.Encode(RandomData(1024, 23));
  std::vector<std::optional<std::string>> shards(encoded.begin(), encoded.end());
  shards[0].reset();
  shards[3].reset();
  shards[5].reset();  // 3 survivors < k=4
  EXPECT_FALSE(rs.Decode(shards, 1024).ok());
  EXPECT_FALSE(rs.Reconstruct(shards).ok());
}

}  // namespace
}  // namespace cheetah::ec
