#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/raft/raft.h"
#include "tests/test_util.h"

namespace cheetah::raft {
namespace {

using sim::EventLoop;
using sim::Machine;
using sim::MachineParams;
using sim::Network;
using sim::NodeId;
using sim::Task;

class RecordingSm : public StateMachine {
 public:
  void Apply(uint64_t index, const std::string& command) override {
    EXPECT_GT(index, last_index) << "out-of-order apply";
    last_index = index;
    if (!command.empty()) {  // skip leader-election no-ops
      applied.push_back(command);
    }
  }
  uint64_t last_index = 0;
  std::vector<std::string> applied;
};

class RaftCluster {
 public:
  explicit RaftCluster(int n, uint64_t seed = 7)
      : net_(loop_, sim::NetParams{}) {
    Config config;
    for (int i = 0; i < n; ++i) {
      config.members.push_back(static_cast<NodeId>(i + 1));
    }
    for (int i = 0; i < n; ++i) {
      auto node = std::make_unique<NodeBundle>();
      node->machine =
          std::make_unique<Machine>(loop_, config.members[i],
                                    "raft" + std::to_string(i + 1), MachineParams{});
      node->rpc = std::make_unique<rpc::Node>(*node->machine, net_);
      node->rpc->Attach();
      node->sm = std::make_unique<RecordingSm>();
      node->raft = std::make_unique<RaftNode>(*node->rpc, node->machine->disk(), config,
                                              node->sm.get(), seed + i);
      node->machine->actor().Spawn([](RaftNode* r) -> Task<> {
        Status s = co_await r->Start();
        EXPECT_TRUE(s.ok());
      }(node->raft.get()));
      nodes_.push_back(std::move(node));
    }
  }

  // Runs until some node is leader; returns its index or -1.
  int WaitForLeader(Nanos budget = Seconds(5)) {
    const Nanos deadline = loop_.Now() + budget;
    while (loop_.Now() < deadline) {
      loop_.RunFor(Millis(50));
      for (size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i]->machine->alive() && nodes_[i]->raft->is_leader()) {
          return static_cast<int>(i);
        }
      }
    }
    return -1;
  }

  // Proposes via node `leader` and runs until it resolves.
  Result<uint64_t> Propose(int leader, std::string command) {
    auto result = std::make_shared<Result<uint64_t>>(Status::Internal("unresolved"));
    nodes_[leader]->machine->actor().Spawn(
        [](RaftNode* r, std::string cmd, std::shared_ptr<Result<uint64_t>> out) -> Task<> {
          *out = co_await r->Propose(std::move(cmd));
        }(nodes_[leader]->raft.get(), std::move(command), result));
    loop_.RunFor(Seconds(1));
    return *result;
  }

  void Crash(int i, bool power_loss) {
    if (power_loss) {
      nodes_[i]->machine->PowerFailure();
    } else {
      nodes_[i]->machine->CrashProcess();
    }
    nodes_[i]->rpc->Detach();
  }

  void Restart(int i, uint64_t seed = 99) {
    nodes_[i]->machine->Restart();
    nodes_[i]->rpc->Attach();
    nodes_[i]->sm = std::make_unique<RecordingSm>();
    Config config;
    for (size_t m = 0; m < nodes_.size(); ++m) {
      config.members.push_back(static_cast<NodeId>(m + 1));
    }
    nodes_[i]->raft = std::make_unique<RaftNode>(*nodes_[i]->rpc, nodes_[i]->machine->disk(),
                                                 config, nodes_[i]->sm.get(), seed + i);
    nodes_[i]->machine->actor().Spawn([](RaftNode* r) -> Task<> {
      Status s = co_await r->Start();
      EXPECT_TRUE(s.ok());
    }(nodes_[i]->raft.get()));
  }

  struct NodeBundle {
    std::unique_ptr<Machine> machine;
    std::unique_ptr<rpc::Node> rpc;
    std::unique_ptr<RecordingSm> sm;
    std::unique_ptr<RaftNode> raft;
  };

  EventLoop loop_;
  Network net_;
  std::vector<std::unique_ptr<NodeBundle>> nodes_;
};

TEST(RaftTest, ElectsExactlyOneLeader) {
  RaftCluster cluster(3);
  int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);
  cluster.loop_.RunFor(Millis(500));
  int leaders = 0;
  uint64_t leader_term = 0;
  for (auto& n : cluster.nodes_) {
    if (n->raft->is_leader()) {
      ++leaders;
      leader_term = n->raft->current_term();
    }
  }
  EXPECT_EQ(leaders, 1);
  EXPECT_GE(leader_term, 1u);
}

TEST(RaftTest, ProposalsReachAllStateMachines) {
  RaftCluster cluster(3);
  int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);
  for (int i = 0; i < 5; ++i) {
    auto r = cluster.Propose(leader, "cmd" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(*r, static_cast<uint64_t>(i + 2));  // +1 for the election no-op
  }
  cluster.loop_.RunFor(Millis(300));  // let followers apply
  for (auto& n : cluster.nodes_) {
    ASSERT_EQ(n->sm->applied.size(), 5u);
    EXPECT_EQ(n->sm->applied[4], "cmd4");
  }
}

TEST(RaftTest, ProposeOnFollowerFails) {
  RaftCluster cluster(3);
  int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);
  const int follower = (leader + 1) % 3;
  auto r = cluster.Propose(follower, "nope");
  EXPECT_TRUE(r.status().IsUnavailable());
}

TEST(RaftTest, SurvivesLeaderCrash) {
  RaftCluster cluster(3);
  int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);
  ASSERT_TRUE(cluster.Propose(leader, "before-crash").ok());
  cluster.Crash(leader, /*power_loss=*/false);
  int new_leader = cluster.WaitForLeader();
  ASSERT_GE(new_leader, 0);
  EXPECT_NE(new_leader, leader);
  auto r = cluster.Propose(new_leader, "after-crash");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The new leader's state machine has both commands.
  cluster.loop_.RunFor(Millis(300));
  auto& applied = cluster.nodes_[new_leader]->sm->applied;
  ASSERT_GE(applied.size(), 2u);
  EXPECT_EQ(applied[0], "before-crash");
  EXPECT_TRUE(std::find(applied.begin(), applied.end(), "after-crash") != applied.end());
}

TEST(RaftTest, RestartedNodeCatchesUp) {
  RaftCluster cluster(3);
  int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);
  const int victim = (leader + 1) % 3;
  cluster.Crash(victim, /*power_loss=*/true);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster.Propose(leader, "while-down-" + std::to_string(i)).ok());
  }
  cluster.Restart(victim);
  cluster.loop_.RunFor(Seconds(1));
  // Note: the restarted node's fresh state machine replays the whole log.
  EXPECT_GE(cluster.nodes_[victim]->raft->commit_index(), 3u);
  EXPECT_GE(cluster.nodes_[victim]->sm->applied.size(), 3u);
}

TEST(RaftTest, NoProgressWithoutMajority) {
  RaftCluster cluster(3);
  int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);
  cluster.Crash((leader + 1) % 3, false);
  cluster.Crash((leader + 2) % 3, false);
  auto r = cluster.Propose(leader, "doomed");
  EXPECT_FALSE(r.ok());  // either lost leadership or commit timeout
}

TEST(RaftTest, PartitionedLeaderStepsDownAndRejoins) {
  RaftCluster cluster(3);
  int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);
  const NodeId leader_id = static_cast<NodeId>(leader + 1);
  for (int i = 0; i < 3; ++i) {
    if (i != leader) {
      cluster.net_.SetPartitioned(leader_id, static_cast<NodeId>(i + 1), true);
    }
  }
  int new_leader = -1;
  const Nanos deadline = cluster.loop_.Now() + Seconds(5);
  while (cluster.loop_.Now() < deadline) {
    cluster.loop_.RunFor(Millis(50));
    for (int i = 0; i < 3; ++i) {
      if (i != leader && cluster.nodes_[i]->raft->is_leader()) {
        new_leader = i;
        break;
      }
    }
    if (new_leader >= 0) {
      break;
    }
  }
  ASSERT_GE(new_leader, 0);
  ASSERT_TRUE(cluster.Propose(new_leader, "majority-side").ok());
  // Heal the partition; the old leader must step down to the higher term.
  cluster.net_.ClearPartitions();
  cluster.loop_.RunFor(Seconds(1));
  EXPECT_FALSE(cluster.nodes_[leader]->raft->is_leader());
  EXPECT_GE(cluster.nodes_[leader]->raft->commit_index(), 1u);
}

TEST(RaftTest, FiveNodeClusterCommits) {
  RaftCluster cluster(5);
  int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.Propose(leader, "c" + std::to_string(i)).ok());
  }
  cluster.loop_.RunFor(Millis(500));
  for (auto& n : cluster.nodes_) {
    EXPECT_EQ(n->sm->applied.size(), 10u);
  }
}

TEST(RaftTest, LogsStayConsistentAcrossLeaderChanges) {
  RaftCluster cluster(3);
  std::vector<std::string> committed;
  for (int round = 0; round < 3; ++round) {
    int leader = cluster.WaitForLeader();
    ASSERT_GE(leader, 0);
    auto r = cluster.Propose(leader, "round" + std::to_string(round));
    if (r.ok()) {
      committed.push_back("round" + std::to_string(round));
    }
    cluster.Crash(leader, false);
    cluster.loop_.RunFor(Millis(400));
    cluster.Restart(leader, 1000 + round);
    cluster.loop_.RunFor(Millis(400));
  }
  cluster.loop_.RunFor(Seconds(2));
  // All alive nodes applied the same prefix containing every committed cmd.
  int checked = 0;
  for (auto& n : cluster.nodes_) {
    if (!n->machine->alive()) {
      continue;
    }
    ++checked;
    for (const auto& cmd : committed) {
      EXPECT_TRUE(std::find(n->sm->applied.begin(), n->sm->applied.end(), cmd) !=
                  n->sm->applied.end())
          << "missing " << cmd;
    }
  }
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace cheetah::raft
