// Raft edge cases: divergent-log repair, vote durability across power loss,
// term monotonicity, and no-op commit behavior after elections.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/raft/raft.h"
#include "tests/test_util.h"

namespace cheetah::raft {
namespace {

using sim::EventLoop;
using sim::Machine;
using sim::MachineParams;
using sim::Network;
using sim::NodeId;
using sim::Task;

class Sm : public StateMachine {
 public:
  void Apply(uint64_t index, const std::string& command) override {
    if (!command.empty()) {
      applied.push_back(command);
    }
  }
  std::vector<std::string> applied;
};

struct Node {
  std::unique_ptr<Machine> machine;
  std::unique_ptr<rpc::Node> rpc;
  std::unique_ptr<Sm> sm;
  std::unique_ptr<RaftNode> raft;
};

class EdgeCluster {
 public:
  explicit EdgeCluster(int n) : net_(loop_, sim::NetParams{}) {
    for (int i = 0; i < n; ++i) {
      config_.members.push_back(static_cast<NodeId>(i + 1));
    }
    for (int i = 0; i < n; ++i) {
      nodes_.push_back(Make(i, 100 + i));
    }
  }

  Node Make(int i, uint64_t seed) {
    Node node;
    node.machine = std::make_unique<Machine>(loop_, config_.members[i],
                                             "r" + std::to_string(i), MachineParams{});
    node.rpc = std::make_unique<rpc::Node>(*node.machine, net_);
    node.rpc->Attach();
    node.sm = std::make_unique<Sm>();
    node.raft = std::make_unique<RaftNode>(*node.rpc, node.machine->disk(), config_,
                                           node.sm.get(), seed);
    node.machine->actor().Spawn([](RaftNode* r) -> Task<> {
      (void)co_await r->Start();
    }(node.raft.get()));
    return node;
  }

  int WaitForLeader(Nanos budget = Seconds(10)) {
    const Nanos deadline = loop_.Now() + budget;
    while (loop_.Now() < deadline) {
      loop_.RunFor(Millis(50));
      for (size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].machine->alive() && nodes_[i].raft->is_leader()) {
          return static_cast<int>(i);
        }
      }
    }
    return -1;
  }

  Result<uint64_t> Propose(int node, std::string cmd) {
    auto out = std::make_shared<Result<uint64_t>>(Status::Internal("unresolved"));
    nodes_[node].machine->actor().Spawn(
        [](RaftNode* r, std::string cmd, std::shared_ptr<Result<uint64_t>> out) -> Task<> {
          *out = co_await r->Propose(std::move(cmd));
        }(nodes_[node].raft.get(), std::move(cmd), out));
    loop_.RunFor(Seconds(1));
    return *out;
  }

  void Restart(int i, bool power_loss, uint64_t seed) {
    if (power_loss) {
      nodes_[i].machine->PowerFailure();
    } else {
      nodes_[i].machine->CrashProcess();
    }
    nodes_[i].rpc->Detach();
    nodes_[i].machine->Restart();
    nodes_[i].rpc->Attach();
    nodes_[i].sm = std::make_unique<Sm>();
    nodes_[i].raft = std::make_unique<RaftNode>(*nodes_[i].rpc, nodes_[i].machine->disk(),
                                                config_, nodes_[i].sm.get(), seed);
    nodes_[i].machine->actor().Spawn([](RaftNode* r) -> Task<> {
      (void)co_await r->Start();
    }(nodes_[i].raft.get()));
  }

  EventLoop loop_;
  Network net_;
  Config config_;
  std::vector<Node> nodes_;
};

TEST(RaftEdgeTest, DivergentFollowerLogIsOverwritten) {
  EdgeCluster cluster(3);
  int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);
  const int isolated = (leader + 1) % 3;
  const NodeId isolated_id = cluster.config_.members[isolated];
  // Isolate a follower; the majority commits entries it never sees.
  for (int i = 0; i < 3; ++i) {
    if (i != isolated) {
      cluster.net_.SetPartitioned(isolated_id, cluster.config_.members[i], true);
    }
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster.Propose(leader, "majority-" + std::to_string(i)).ok());
  }
  // The isolated node campaigns fruitlessly (bumping its term) but appends
  // nothing. Heal; it must converge on the majority's log.
  cluster.loop_.RunFor(Seconds(2));
  cluster.net_.ClearPartitions();
  cluster.loop_.RunFor(Seconds(3));
  auto& applied = cluster.nodes_[isolated].sm->applied;
  ASSERT_EQ(applied.size(), 3u);
  EXPECT_EQ(applied[0], "majority-0");
  EXPECT_EQ(applied[2], "majority-2");
}

TEST(RaftEdgeTest, VoteSurvivesPowerLoss) {
  // A node that voted in term T must not vote for a different candidate in T
  // after a power-loss restart (the double-vote safety case).
  EdgeCluster cluster(3);
  int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);
  const uint64_t term_before = cluster.nodes_[leader].raft->current_term();
  const int follower = (leader + 1) % 3;
  cluster.Restart(follower, /*power_loss=*/true, 777);
  cluster.loop_.RunFor(Seconds(2));
  // The restarted node rejoined with its persisted term (>= the old one).
  EXPECT_GE(cluster.nodes_[follower].raft->current_term(), term_before);
  // And the cluster still has exactly one leader whose term did not regress.
  int leaders = 0;
  for (auto& n : cluster.nodes_) {
    leaders += n.raft->is_leader();
    EXPECT_GE(n.raft->current_term(), term_before);
  }
  EXPECT_EQ(leaders, 1);
}

TEST(RaftEdgeTest, CommitIndexNeverRegressesAcrossFailover) {
  EdgeCluster cluster(3);
  int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cluster.Propose(leader, "entry-" + std::to_string(i)).ok());
  }
  const uint64_t committed_before = cluster.nodes_[leader].raft->commit_index();
  cluster.nodes_[leader].machine->CrashProcess();
  cluster.nodes_[leader].rpc->Detach();
  int new_leader = cluster.WaitForLeader();
  ASSERT_GE(new_leader, 0);
  ASSERT_NE(new_leader, leader);
  ASSERT_TRUE(cluster.Propose(new_leader, "post-failover").ok());
  EXPECT_GE(cluster.nodes_[new_leader].raft->commit_index(), committed_before);
  // All previously committed entries are in the new leader's applied list.
  auto& applied = cluster.nodes_[new_leader].sm->applied;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(std::find(applied.begin(), applied.end(),
                          "entry-" + std::to_string(i)) != applied.end())
        << i;
  }
}

TEST(RaftEdgeTest, FollowerAppliesThroughLeaderCommitOnly) {
  EdgeCluster cluster(3);
  int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);
  ASSERT_TRUE(cluster.Propose(leader, "visible").ok());
  cluster.loop_.RunFor(Millis(500));
  for (int i = 0; i < 3; ++i) {
    auto& applied = cluster.nodes_[i].sm->applied;
    ASSERT_EQ(applied.size(), 1u) << "node " << i;
    EXPECT_EQ(applied[0], "visible");
  }
}

}  // namespace
}  // namespace cheetah::raft
