#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/crush/crush.h"

namespace cheetah::crush {
namespace {

constexpr uint32_t kPgCount = 256;

Map MakeMap(int n) {
  Map map;
  for (int i = 0; i < n; ++i) {
    map.AddItem(100 + i);
  }
  return map;
}

TEST(CrushTest, Deterministic) {
  Map a = MakeMap(9);
  Map b = MakeMap(9);
  for (uint32_t pg = 0; pg < kPgCount; ++pg) {
    EXPECT_EQ(a.Select(pg, 3), b.Select(pg, 3));
  }
}

TEST(CrushTest, SelectsDistinctItems) {
  Map map = MakeMap(9);
  for (uint32_t pg = 0; pg < kPgCount; ++pg) {
    auto sel = map.Select(pg, 3);
    ASSERT_EQ(sel.size(), 3u);
    std::set<ItemId> unique(sel.begin(), sel.end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST(CrushTest, SelectCappedByMapSize) {
  Map map = MakeMap(2);
  auto sel = map.Select(7, 3);
  EXPECT_EQ(sel.size(), 2u);
}

TEST(CrushTest, PrimaryIsFirstSelected) {
  Map map = MakeMap(6);
  for (uint32_t pg = 0; pg < 64; ++pg) {
    EXPECT_EQ(map.Primary(pg), map.Select(pg, 3)[0]);
  }
}

TEST(CrushTest, LoadIsRoughlyBalanced) {
  Map map = MakeMap(9);
  std::map<ItemId, int> primary_count;
  for (uint32_t pg = 0; pg < 4096; ++pg) {
    primary_count[map.Primary(pg)]++;
  }
  const double expected = 4096.0 / 9.0;
  for (const auto& [id, count] : primary_count) {
    EXPECT_GT(count, expected * 0.6) << "item " << id;
    EXPECT_LT(count, expected * 1.4) << "item " << id;
  }
}

TEST(CrushTest, WeightsSkewLoad) {
  Map map;
  map.AddItem(1, 1.0);
  map.AddItem(2, 1.0);
  map.AddItem(3, 3.0);  // 3x the capacity
  std::map<ItemId, int> count;
  for (uint32_t pg = 0; pg < 8192; ++pg) {
    count[map.Primary(pg)]++;
  }
  EXPECT_GT(count[3], count[1] * 2);
  EXPECT_GT(count[3], count[2] * 2);
}

TEST(CrushTest, MinimalRemapOnExpansion) {
  // The property §4.2 relies on: adding a meta server remaps ~1/n of PGs and
  // never shuffles PGs between pre-existing servers.
  Map before = MakeMap(9);
  Map after = MakeMap(9);
  after.AddItem(200);
  int moved = 0;
  for (uint32_t pg = 0; pg < 4096; ++pg) {
    const ItemId p_before = before.Primary(pg);
    const ItemId p_after = after.Primary(pg);
    if (p_before != p_after) {
      ++moved;
      EXPECT_EQ(p_after, 200u) << "pg " << pg << " moved between old servers";
    }
  }
  const double frac = moved / 4096.0;
  EXPECT_GT(frac, 0.04);  // ~1/10 expected
  EXPECT_LT(frac, 0.17);
}

TEST(CrushTest, MinimalRemapOnRemoval) {
  Map before = MakeMap(9);
  Map after = MakeMap(9);
  after.RemoveItem(104);
  for (uint32_t pg = 0; pg < 4096; ++pg) {
    if (before.Primary(pg) != 104) {
      EXPECT_EQ(after.Primary(pg), before.Primary(pg)) << "pg " << pg;
    } else {
      EXPECT_NE(after.Primary(pg), 104u);
    }
  }
}

TEST(CrushTest, ReplicaSetsStableUnderExpansion) {
  Map before = MakeMap(9);
  Map after = MakeMap(9);
  after.AddItem(200);
  int replica_changes = 0;
  for (uint32_t pg = 0; pg < 1024; ++pg) {
    auto b = before.Select(pg, 3);
    auto a = after.Select(pg, 3);
    std::set<ItemId> sb(b.begin(), b.end()), sa(a.begin(), a.end());
    std::vector<ItemId> diff;
    std::set_difference(sb.begin(), sb.end(), sa.begin(), sa.end(),
                        std::back_inserter(diff));
    replica_changes += diff.size();
    EXPECT_LE(diff.size(), 1u) << "pg " << pg;  // at most one member displaced
  }
  EXPECT_LT(replica_changes / (1024.0 * 3), 0.2);
}

TEST(CrushTest, NameToPgStable) {
  EXPECT_EQ(Map::NameToPg("object-42", 200), Map::NameToPg("object-42", 200));
  std::set<uint32_t> pgs;
  for (int i = 0; i < 1000; ++i) {
    pgs.insert(Map::NameToPg("object-" + std::to_string(i), 200));
  }
  EXPECT_GT(pgs.size(), 150u);  // names spread over most PGs
}

TEST(CrushTest, EpochAdvancesOnMutation) {
  Map map = MakeMap(3);
  const uint64_t e = map.epoch();
  map.AddItem(999);
  EXPECT_GT(map.epoch(), e);
  map.RemoveItem(999);
  EXPECT_GT(map.epoch(), e + 1);
}

}  // namespace
}  // namespace cheetah::crush
