// Edge cases and failure injection for the LSM KV store beyond the basic
// suite: scan boundaries, corruption handling, large values, reopen cycles.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/common/coding.h"
#include "src/common/crc32c.h"
#include "src/common/units.h"
#include "src/kv/db.h"
#include "src/kv/sstable.h"
#include "src/sim/actor.h"
#include "src/sim/event_loop.h"
#include "src/sim/storage.h"
#include "tests/test_util.h"

namespace cheetah::kv {
namespace {

using sim::Actor;
using sim::EventLoop;
using sim::Storage;
using sim::Task;

class KvEdgeTest : public ::testing::Test {
 public:
  KvEdgeTest() : actor_(loop_), storage_(loop_, sim::DiskParams{}) {}

  void Run(Options options, std::function<Task<>(DB*)> body) {
    actor_.Spawn([](KvEdgeTest* self, Options opts, std::function<Task<>(DB*)> body) -> Task<> {
      auto db = co_await DB::Open(std::move(opts), &self->storage_);
      CO_ASSERT_OK(db);
      self->db_ = std::move(*db);
      co_await body(self->db_.get());
    }(this, std::move(options), std::move(body)));
    loop_.Run();
  }

  EventLoop loop_;
  Actor actor_;
  Storage storage_;
  std::unique_ptr<DB> db_;
};

TEST_F(KvEdgeTest, EmptyPrefixScansEverything) {
  Run(Options{}, [](DB* db) -> Task<> {
    (void)co_await db->Put("a", "1");
    (void)co_await db->Put("b", "2");
    (void)co_await db->Put("c", "3");
    auto rows = co_await db->Scan("", 0);
    CO_ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), 3u);
  });
}

TEST_F(KvEdgeTest, ScanPrefixIsExactBoundary) {
  Run(Options{}, [](DB* db) -> Task<> {
    (void)co_await db->Put("ab", "1");
    (void)co_await db->Put("abc", "2");
    (void)co_await db->Put("abd", "3");
    (void)co_await db->Put("ac", "4");
    auto rows = co_await db->Scan("ab", 0);
    CO_ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), 3u);  // ab, abc, abd — not ac
  });
}

TEST_F(KvEdgeTest, EmptyValueIsNotATombstone) {
  Run(Options{}, [](DB* db) -> Task<> {
    (void)co_await db->Put("empty", "");
    auto v = co_await db->Get("empty");
    CO_ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, "");
    auto rows = co_await db->Scan("empty", 0);
    CO_ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), 1u);
  });
}

TEST_F(KvEdgeTest, LargeValuesSurviveFlush) {
  Options options;
  options.memtable_bytes = KiB(64);
  Run(options, [](DB* db) -> Task<> {
    const std::string big(200000, 'B');
    (void)co_await db->Put("big1", big);
    (void)co_await db->Put("big2", big);
    co_await db->WaitForMaintenance();
    auto v = co_await db->Get("big1");
    CO_ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->size(), 200000u);
    EXPECT_EQ(Crc32c(*v), Crc32c(big));
  });
}

TEST_F(KvEdgeTest, DeleteOfNonexistentKeyIsDurableTombstone) {
  Options options;
  options.memtable_bytes = 2048;
  Run(options, [](DB* db) -> Task<> {
    (void)co_await db->Delete("ghost");
    for (int i = 0; i < 50; ++i) {  // push the tombstone through a flush
      (void)co_await db->Put("filler" + std::to_string(i), std::string(100, 'f'));
    }
    co_await db->WaitForMaintenance();
    EXPECT_TRUE((co_await db->Get("ghost")).status().IsNotFound());
  });
}

TEST_F(KvEdgeTest, ManyReopenCyclesPreserveData) {
  Options options;
  options.memtable_bytes = 4096;
  for (int cycle = 0; cycle < 5; ++cycle) {
    Run(options, [cycle](DB* db) -> Task<> {
      // Everything from earlier cycles is still there...
      for (int c = 0; c < cycle; ++c) {
        for (int i = 0; i < 20; ++i) {
          auto v = co_await db->Get("c" + std::to_string(c) + "-" + std::to_string(i));
          CO_ASSERT_TRUE(v.ok());
          EXPECT_EQ(*v, std::to_string(c * 100 + i));
        }
      }
      // ...and this cycle adds more.
      for (int i = 0; i < 20; ++i) {
        (void)co_await db->Put("c" + std::to_string(cycle) + "-" + std::to_string(i),
                               std::to_string(cycle * 100 + i));
      }
    });
    db_.reset();
  }
}

TEST_F(KvEdgeTest, CorruptManifestFailsOpen) {
  Options small;
  small.memtable_bytes = 2048;  // force flushes so a manifest exists
  Run(small, [](DB* db) -> Task<> {
    for (int i = 0; i < 100; ++i) {
      (void)co_await db->Put("k" + std::to_string(i), std::string(200, 'v'));
    }
    co_await db->WaitForMaintenance();
    EXPECT_GT(db->stats().flushes, 0u);
  });
  db_.reset();
  // Flip a byte in the manifest.
  actor_.Spawn([](Storage* storage) -> Task<> {
    auto manifest = co_await storage->ReadFile("db.MANIFEST");
    if (manifest.ok() && !manifest->empty()) {
      std::string bad = *manifest;
      bad[bad.size() / 2] ^= 0x20;
      (void)co_await storage->WriteFile("db.MANIFEST", bad, true);
    }
  }(&storage_));
  loop_.Run();
  bool opened = true;
  actor_.Spawn([](Storage* storage, bool* opened) -> Task<> {
    auto db = co_await DB::Open(Options{}, storage);
    *opened = db.ok();
  }(&storage_, &opened));
  loop_.Run();
  EXPECT_FALSE(opened);
}

TEST_F(KvEdgeTest, TornWalTailStopsReplayCleanly) {
  Run(Options{}, [](DB* db) -> Task<> {
    (void)co_await db->Put("good1", "v1");
    (void)co_await db->Put("good2", "v2");
  });
  db_.reset();
  // Append garbage to the WAL (simulating a torn final record).
  actor_.Spawn([](Storage* storage) -> Task<> {
    auto wals = storage->ListFiles("db.wal_");
    if (!wals.empty()) {
      (void)co_await storage->Append(wals.front(), "\x13garbage-torn-record", true);
    }
  }(&storage_));
  loop_.Run();
  Run(Options{}, [](DB* db) -> Task<> {
    EXPECT_EQ((co_await db->Get("good1")).value_or("X"), "v1");
    EXPECT_EQ((co_await db->Get("good2")).value_or("X"), "v2");
    // Replay classified the damage as a truncated tail — a benign power-loss
    // artifact, not media corruption.
    EXPECT_EQ(db->recovery_stats().wal_torn_tail, 1u);
    EXPECT_EQ(db->recovery_stats().wal_corrupt_records, 0u);
    EXPECT_EQ(db->recovery_stats().wal_records_replayed, 2u);
    EXPECT_FALSE(db->recovery_stats().clean());
    // The DB remains writable after truncating the torn tail.
    EXPECT_TRUE((co_await db->Put("good3", "v3")).ok());
    EXPECT_EQ((co_await db->Get("good3")).value_or("X"), "v3");
  });
}

TEST_F(KvEdgeTest, CleanReopenReportsCleanRecovery) {
  Run(Options{}, [](DB* db) -> Task<> {
    (void)co_await db->Put("a", "1");
    (void)co_await db->Put("b", "2");
  });
  db_.reset();
  Run(Options{}, [](DB* db) -> Task<> {
    EXPECT_TRUE(db->recovery_stats().clean());
    EXPECT_EQ(db->recovery_stats().wal_records_replayed, 2u);
    EXPECT_EQ(db->recovery_stats().wal_torn_tail, 0u);
    EXPECT_EQ(db->recovery_stats().wal_corrupt_records, 0u);
    co_return;
  });
}

TEST_F(KvEdgeTest, CorruptWalRecordIsSkippedAndLaterRecordsSalvaged) {
  Run(Options{}, [](DB* db) -> Task<> {
    (void)co_await db->Put("good1", "v1");
    (void)co_await db->Put("doomed", "v2");
    (void)co_await db->Put("good3", "v3");
  });
  db_.reset();
  // Flip a payload byte inside the *middle* record. The framing (CRC and
  // length fields) stays intact, so this is a full-length record whose CRC
  // fails — media damage, not a torn tail.
  actor_.Spawn([](Storage* storage) -> Task<> {
    auto wals = storage->ListFiles("db.wal_");
    CO_ASSERT_TRUE(!wals.empty());
    auto file = co_await storage->ReadFile(wals.front());
    CO_ASSERT_OK(file);
    std::string_view cursor = *file;
    uint32_t crc = 0;
    uint64_t len = 0;
    CO_ASSERT_TRUE(GetFixed32(&cursor, &crc) && GetFixed64(&cursor, &len));
    cursor.remove_prefix(len);  // skip record 1
    CO_ASSERT_TRUE(GetFixed32(&cursor, &crc) && GetFixed64(&cursor, &len));
    const size_t payload2_off = file->size() - cursor.size();
    std::string bad = *file;
    bad[payload2_off + len / 2] ^= 0x01;
    (void)co_await storage->WriteFile(wals.front(), bad, true);
  }(&storage_));
  loop_.Run();
  Run(Options{}, [](DB* db) -> Task<> {
    // The damaged batch is lost; everything before AND after it survives.
    EXPECT_EQ((co_await db->Get("good1")).value_or("X"), "v1");
    EXPECT_TRUE((co_await db->Get("doomed")).status().IsNotFound());
    EXPECT_EQ((co_await db->Get("good3")).value_or("X"), "v3");
    EXPECT_EQ(db->recovery_stats().wal_corrupt_records, 1u);
    EXPECT_EQ(db->recovery_stats().wal_salvaged_records, 1u);  // good3
    EXPECT_EQ(db->recovery_stats().wal_records_replayed, 2u);
    EXPECT_EQ(db->recovery_stats().wal_torn_tail, 0u);
    EXPECT_FALSE(db->recovery_stats().clean());
    EXPECT_TRUE((co_await db->Put("again", "v4")).ok());
    EXPECT_EQ((co_await db->Get("again")).value_or("X"), "v4");
  });
}

TEST_F(KvEdgeTest, SstableBlockSalvageSkipsDamagedBlockOnly) {
  // Enough entries to span several ~4KB blocks.
  std::vector<Table::Entry> entries;
  for (int i = 0; i < 100; ++i) {
    char key[16];
    std::snprintf(key, sizeof key, "key-%03d", i);
    entries.push_back({key, std::string(200, static_cast<char>('a' + i % 26))});
  }
  Table table("t", entries);
  std::string enc = table.Encode();

  // Pristine file: every block verifies, nothing lost.
  Table::DecodeResult clean = Table::DecodeBlocks(enc);
  EXPECT_GE(clean.blocks, 3u) << "test needs a multi-block table";
  EXPECT_EQ(clean.bad_blocks, 0u);
  EXPECT_EQ(clean.entries.size(), entries.size());

  // Rot one byte inside the second block's body: that block's key range is
  // lost, every other block decodes.
  std::string_view cursor = enc;
  uint32_t crc = 0;
  uint64_t len = 0;
  ASSERT_TRUE(GetFixed32(&cursor, &crc) && GetFixed64(&cursor, &len));
  cursor.remove_prefix(len);  // skip block 1
  ASSERT_TRUE(GetFixed32(&cursor, &crc) && GetFixed64(&cursor, &len));
  std::string bad = enc;
  bad[enc.size() - cursor.size() + len / 2] ^= 0x01;

  Table::DecodeResult salvaged = Table::DecodeBlocks(bad);
  EXPECT_EQ(salvaged.blocks, clean.blocks);
  EXPECT_EQ(salvaged.bad_blocks, 1u);
  EXPECT_LT(salvaged.entries.size(), entries.size());
  EXPECT_GT(salvaged.entries.size(), 0u);
  // The strict decode refuses the damaged file outright.
  auto strict = Table::DecodeEntries(bad);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), ErrorCode::kCorruption);
  EXPECT_TRUE(Table::DecodeEntries(enc).ok());
}

TEST_F(KvEdgeTest, CountLiveEntriesTracksMutations) {
  Options options;
  options.memtable_bytes = 2048;
  Run(options, [](DB* db) -> Task<> {
    EXPECT_EQ(db->CountLiveEntries(), 0u);
    for (int i = 0; i < 30; ++i) {
      (void)co_await db->Put("k" + std::to_string(i), std::string(100, 'v'));
    }
    EXPECT_EQ(db->CountLiveEntries(), 30u);
    for (int i = 0; i < 10; ++i) {
      (void)co_await db->Delete("k" + std::to_string(i));
    }
    co_await db->WaitForMaintenance();
    EXPECT_EQ(db->CountLiveEntries(), 20u);
    // Overwrites do not change the live count.
    (void)co_await db->Put("k15", "replacement");
    EXPECT_EQ(db->CountLiveEntries(), 20u);
  });
}

TEST_F(KvEdgeTest, TwoDbsShareOneDisk) {
  Options a;
  a.name = "alpha";
  Options b;
  b.name = "beta";
  auto done = std::make_shared<bool>(false);
  actor_.Spawn([](Storage* storage, Options a, Options b, std::shared_ptr<bool> done) -> Task<> {
    auto db_a = co_await DB::Open(std::move(a), storage);
    auto db_b = co_await DB::Open(std::move(b), storage);
    CO_ASSERT_OK(db_a);
    CO_ASSERT_OK(db_b);
    (void)co_await (*db_a)->Put("key", "from-alpha");
    (void)co_await (*db_b)->Put("key", "from-beta");
    EXPECT_EQ((co_await (*db_a)->Get("key")).value_or("X"), "from-alpha");
    EXPECT_EQ((co_await (*db_b)->Get("key")).value_or("X"), "from-beta");
    *done = true;
  }(&storage_, std::move(a), std::move(b), done));
  loop_.Run();
  EXPECT_TRUE(*done);
}

}  // namespace
}  // namespace cheetah::kv
