#include <gtest/gtest.h>

#include "tests/test_util.h"

#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/units.h"
#include "src/kv/db.h"
#include "src/sim/actor.h"
#include "src/sim/event_loop.h"
#include "src/sim/storage.h"

namespace cheetah::kv {
namespace {

using sim::Actor;
using sim::EventLoop;
using sim::Storage;
using sim::Task;

class KvTest : public ::testing::Test {
 public:
  KvTest() : actor_(loop_), storage_(loop_, sim::DiskParams{}) {}

  // Runs a coroutine against a DB opened with `options` and drains the loop.
  void Run(Options options, std::function<Task<>(DB*)> body) {
    actor_.Spawn([](KvTest* self, Options opts, std::function<Task<>(DB*)> body) -> Task<> {
      auto db = co_await DB::Open(std::move(opts), &self->storage_);
      CO_ASSERT_OK(db);
      self->db_ = std::move(*db);
      co_await body(self->db_.get());
    }(this, std::move(options), std::move(body)));
    loop_.Run();
  }

  Options SmallOptions() {
    Options o;
    o.memtable_bytes = 4096;  // flush often
    o.l0_compaction_trigger = 3;
    return o;
  }

  EventLoop loop_;
  Actor actor_;
  Storage storage_;
  std::unique_ptr<DB> db_;
};

TEST_F(KvTest, PutGetRoundTrip) {
  Run(Options{}, [](DB* db) -> Task<> {
    EXPECT_TRUE((co_await db->Put("k1", "v1")).ok());
    auto v = co_await db->Get("k1");
    CO_ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, "v1");
  });
}

TEST_F(KvTest, GetMissingIsNotFound) {
  Run(Options{}, [](DB* db) -> Task<> {
    auto v = co_await db->Get("nope");
    EXPECT_TRUE(v.status().IsNotFound());
  });
}

TEST_F(KvTest, DeleteHidesKey) {
  Run(Options{}, [](DB* db) -> Task<> {
    (void)co_await db->Put("k", "v");
    (void)co_await db->Delete("k");
    auto v = co_await db->Get("k");
    EXPECT_TRUE(v.status().IsNotFound());
  });
}

TEST_F(KvTest, OverwriteTakesLatest) {
  Run(Options{}, [](DB* db) -> Task<> {
    (void)co_await db->Put("k", "v1");
    (void)co_await db->Put("k", "v2");
    auto v = co_await db->Get("k");
    CO_ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, "v2");
  });
}

TEST_F(KvTest, BatchIsAtomicInMemory) {
  Run(Options{}, [](DB* db) -> Task<> {
    WriteBatch batch;
    batch.Put("a", "1");
    batch.Put("b", "2");
    batch.Delete("c");
    (void)co_await db->Put("c", "preexisting");
    EXPECT_TRUE((co_await db->Write(std::move(batch))).ok());
    EXPECT_EQ((co_await db->Get("a")).value_or("X"), "1");
    EXPECT_EQ((co_await db->Get("b")).value_or("X"), "2");
    EXPECT_TRUE((co_await db->Get("c")).status().IsNotFound());
  });
}

TEST_F(KvTest, FlushAndReadFromTables) {
  Run(SmallOptions(), [](DB* db) -> Task<> {
    for (int i = 0; i < 100; ++i) {
      (void)co_await db->Put("key" + std::to_string(i), std::string(100, 'v'));
    }
    co_await db->WaitForMaintenance();
    EXPECT_GT(db->stats().flushes, 0u);
    for (int i = 0; i < 100; ++i) {
      auto v = co_await db->Get("key" + std::to_string(i));
      CO_ASSERT_TRUE(v.ok());
      EXPECT_EQ(v->size(), 100u);
    }
  });
}

TEST_F(KvTest, CompactionPreservesData) {
  Run(SmallOptions(), [](DB* db) -> Task<> {
    for (int i = 0; i < 400; ++i) {
      (void)co_await db->Put("key" + std::to_string(i % 50), "gen" + std::to_string(i));
    }
    co_await db->WaitForMaintenance();
    EXPECT_GT(db->stats().compactions, 0u);
    for (int i = 0; i < 50; ++i) {
      auto v = co_await db->Get("key" + std::to_string(i));
      CO_ASSERT_TRUE(v.ok());
      EXPECT_EQ(*v, "gen" + std::to_string(350 + i));
    }
  });
}

TEST_F(KvTest, CompactionDropsDeletedKeys) {
  Run(SmallOptions(), [](DB* db) -> Task<> {
    for (int i = 0; i < 100; ++i) {
      (void)co_await db->Put("key" + std::to_string(i), std::string(100, 'v'));
    }
    for (int i = 0; i < 100; ++i) {
      (void)co_await db->Delete("key" + std::to_string(i));
    }
    for (int i = 0; i < 200; ++i) {  // force flush+compaction cycles
      (void)co_await db->Put("other" + std::to_string(i), std::string(100, 'w'));
    }
    co_await db->WaitForMaintenance();
    EXPECT_EQ(db->CountLiveEntries(), 200u);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE((co_await db->Get("key" + std::to_string(i))).status().IsNotFound());
    }
  });
}

TEST_F(KvTest, ScanByPrefix) {
  Run(Options{}, [](DB* db) -> Task<> {
    (void)co_await db->Put("OBMETA_obj1", "m1");
    (void)co_await db->Put("OBMETA_obj2", "m2");
    (void)co_await db->Put("PGLOG_1_1", "l1");
    (void)co_await db->Put("OBMETA_obj3", "m3");
    (void)co_await db->Delete("OBMETA_obj2");
    auto rows = co_await db->Scan("OBMETA_", 0);
    CO_ASSERT_TRUE(rows.ok());
    CO_ASSERT_EQ(rows->size(), 2u);
    EXPECT_EQ((*rows)[0].first, "OBMETA_obj1");
    EXPECT_EQ((*rows)[1].first, "OBMETA_obj3");
  });
}

TEST_F(KvTest, ScanSpansMemtableAndTables) {
  Run(SmallOptions(), [](DB* db) -> Task<> {
    for (int i = 0; i < 60; ++i) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "p_%03d", i);
      (void)co_await db->Put(buf, std::string(100, 'v'));
    }
    co_await db->WaitForMaintenance();
    for (int i = 60; i < 70; ++i) {  // these stay in the memtable
      char buf[16];
      std::snprintf(buf, sizeof(buf), "p_%03d", i);
      (void)co_await db->Put(buf, "fresh");
    }
    auto rows = co_await db->Scan("p_", 0);
    CO_ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), 70u);
  });
}

TEST_F(KvTest, ScanLimit) {
  Run(Options{}, [](DB* db) -> Task<> {
    for (int i = 0; i < 20; ++i) {
      (void)co_await db->Put("k" + std::to_string(i), "v");
    }
    auto rows = co_await db->Scan("k", 5);
    CO_ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), 5u);
  });
}

TEST_F(KvTest, ReopenRecoversFromWal) {
  Run(Options{}, [](DB* db) -> Task<> {
    (void)co_await db->Put("persist1", "v1");
    (void)co_await db->Put("persist2", "v2");
  });
  db_.reset();
  Run(Options{}, [](DB* db) -> Task<> {
    EXPECT_EQ((co_await db->Get("persist1")).value_or("X"), "v1");
    EXPECT_EQ((co_await db->Get("persist2")).value_or("X"), "v2");
  });
}

TEST_F(KvTest, ReopenRecoversFromTablesAndWal) {
  Run(SmallOptions(), [](DB* db) -> Task<> {
    for (int i = 0; i < 150; ++i) {
      (void)co_await db->Put("key" + std::to_string(i), "val" + std::to_string(i));
    }
    co_await db->WaitForMaintenance();
  });
  db_.reset();
  Run(SmallOptions(), [](DB* db) -> Task<> {
    for (int i = 0; i < 150; ++i) {
      EXPECT_EQ((co_await db->Get("key" + std::to_string(i))).value_or("X"),
                "val" + std::to_string(i));
    }
  });
}

TEST_F(KvTest, PowerLossKeepsSyncedWrites) {
  Run(Options{}, [](DB* db) -> Task<> {
    (void)co_await db->Put("durable", "yes");
  });
  db_.reset();
  storage_.PowerLoss();
  Run(Options{}, [](DB* db) -> Task<> {
    EXPECT_EQ((co_await db->Get("durable")).value_or("X"), "yes");
  });
}

TEST_F(KvTest, PowerLossDropsUnsyncedWrites) {
  Options nosync;
  nosync.sync_wal = false;
  Run(nosync, [](DB* db) -> Task<> {
    (void)co_await db->Put("volatile", "maybe");
  });
  db_.reset();
  storage_.PowerLoss();
  Run(Options{}, [](DB* db) -> Task<> {
    EXPECT_TRUE((co_await db->Get("volatile")).status().IsNotFound());
  });
}

TEST_F(KvTest, PowerLossPreservesBatchAtomicity) {
  // Write batches, kill power at a random instant mid-traffic, reopen, and
  // verify each batch is all-or-nothing.
  Options options;
  options.memtable_bytes = 8192;
  actor_.Spawn([](KvTest* self, Options opts) -> Task<> {
    auto db = co_await DB::Open(std::move(opts), &self->storage_);
    CO_ASSERT_OK(db);
    self->db_ = std::move(*db);
    for (int b = 0; b < 50; ++b) {
      WriteBatch batch;
      batch.Put("batch" + std::to_string(b) + "_a", std::to_string(b));
      batch.Put("batch" + std::to_string(b) + "_b", std::to_string(b));
      (void)co_await self->db_->Write(std::move(batch));
    }
  }(this, options));
  loop_.RunFor(Millis(2));  // cut power mid-stream
  db_.reset();
  actor_.Kill();
  storage_.PowerLoss();
  actor_.Revive();

  Run(Options{}, [](DB* db) -> Task<> {
    for (int b = 0; b < 50; ++b) {
      auto a = co_await db->Get("batch" + std::to_string(b) + "_a");
      auto bb = co_await db->Get("batch" + std::to_string(b) + "_b");
      EXPECT_EQ(a.ok(), bb.ok()) << "torn batch " << b;
      if (a.ok()) {
        EXPECT_EQ(*a, std::to_string(b));
        EXPECT_EQ(*bb, std::to_string(b));
      }
    }
  });
}

TEST_F(KvTest, CrashDuringFlushLosesNothing) {
  Options options = SmallOptions();
  actor_.Spawn([](KvTest* self, Options opts) -> Task<> {
    auto db = co_await DB::Open(std::move(opts), &self->storage_);
    CO_ASSERT_OK(db);
    self->db_ = std::move(*db);
    for (int i = 0; i < 300; ++i) {
      (void)co_await self->db_->Put("k" + std::to_string(i), std::string(80, 'x'));
    }
  }(this, options));
  // Stop at an arbitrary point where flushes/compactions are in flight.
  loop_.RunFor(Millis(5));
  const uint64_t live_before = db_ ? db_->CountLiveEntries() : 0;
  db_.reset();
  actor_.Kill();
  storage_.PowerLoss();
  actor_.Revive();

  Run(SmallOptions(), [live_before](DB* db) -> Task<> {
    EXPECT_GE(db->CountLiveEntries(), live_before);
    co_return;
  });
}

TEST_F(KvTest, ConcurrentWritersAllLand) {
  Run(SmallOptions(), [this](DB* db) -> Task<> {
    sim::Actor* actor = co_await sim::CurrentActor{};
    auto latch = std::make_shared<sim::Latch>(10);
    for (int w = 0; w < 10; ++w) {
      actor->Spawn([](DB* db, int w, std::shared_ptr<sim::Latch> l) -> Task<> {
        for (int i = 0; i < 30; ++i) {
          (void)co_await db->Put("w" + std::to_string(w) + "_" + std::to_string(i),
                                 std::string(64, 'd'));
        }
        l->CountDown();
      }(db, w, latch));
    }
    co_await latch->Wait();
    co_await db->WaitForMaintenance();
    EXPECT_EQ(db->CountLiveEntries(), 300u);
  });
}

TEST_F(KvTest, StatsTrackActivity) {
  Run(SmallOptions(), [](DB* db) -> Task<> {
    for (int i = 0; i < 200; ++i) {
      (void)co_await db->Put("k" + std::to_string(i), std::string(100, 'v'));
    }
    (void)co_await db->Get("k0");
    co_await db->WaitForMaintenance();
    EXPECT_EQ(db->stats().writes, 200u);
    EXPECT_GE(db->stats().gets, 1u);
    EXPECT_GT(db->stats().flushes, 0u);
    EXPECT_GT(db->stats().wal_bytes, 0u);
  });
}

TEST_F(KvTest, SmallerBufferFlushesMoreOften) {
  uint64_t flushes_small = 0;
  {
    Options o;
    o.memtable_bytes = 2048;
    Run(o, [&flushes_small](DB* db) -> Task<> {
      for (int i = 0; i < 100; ++i) {
        (void)co_await db->Put("k" + std::to_string(i), std::string(100, 'v'));
      }
      co_await db->WaitForMaintenance();
      flushes_small = db->stats().flushes;
    });
  }
  // Fresh storage for an independent run.
  EventLoop loop2;
  Actor actor2(loop2);
  Storage storage2(loop2, sim::DiskParams{});
  uint64_t flushes_large = 0;
  actor2.Spawn([](Storage* st, uint64_t* out) -> Task<> {
    Options o;
    o.memtable_bytes = MiB(64);
    auto db = co_await DB::Open(std::move(o), st);
    CO_ASSERT_OK(db);
    for (int i = 0; i < 100; ++i) {
      (void)co_await (*db)->Put("k" + std::to_string(i), std::string(100, 'v'));
    }
    co_await (*db)->WaitForMaintenance();
    *out = (*db)->stats().flushes;
  }(&storage2, &flushes_large));
  loop2.Run();
  EXPECT_GT(flushes_small, flushes_large);
}

class WriteBatchTest : public ::testing::Test {};

TEST_F(WriteBatchTest, EncodeDecodeRoundTrip) {
  WriteBatch batch;
  batch.Put("key1", "value1");
  batch.Delete("key2");
  batch.Put("key3", std::string(1000, 'z'));
  auto decoded = WriteBatch::Decode(batch.Encode());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ(decoded->ops()[0].key, "key1");
  EXPECT_EQ(*decoded->ops()[0].value, "value1");
  EXPECT_EQ(decoded->ops()[1].key, "key2");
  EXPECT_FALSE(decoded->ops()[1].value.has_value());
  EXPECT_EQ(decoded->ops()[2].value->size(), 1000u);
}

TEST_F(WriteBatchTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(WriteBatch::Decode("\x05garbage").ok());
}

TEST_F(WriteBatchTest, DecodeRejectsTruncation) {
  WriteBatch batch;
  batch.Put("key", "value");
  std::string enc = batch.Encode();
  enc.resize(enc.size() - 3);
  EXPECT_FALSE(WriteBatch::Decode(enc).ok());
}

TEST_F(WriteBatchTest, ByteSizeGrowsWithContent) {
  WriteBatch a, b;
  a.Put("k", "v");
  b.Put("k", std::string(4096, 'v'));
  EXPECT_GT(b.ByteSize(), a.ByteSize());
}

class TableTest : public ::testing::Test {};

TEST_F(TableTest, EncodeDecodeRoundTrip) {
  std::vector<Table::Entry> entries;
  entries.push_back({"alpha", "1"});
  entries.push_back({"beta", std::nullopt});
  entries.push_back({"gamma", "3"});
  Table t("sst_test", entries);
  auto decoded = Table::DecodeEntries(t.Encode());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[1].key, "beta");
  EXPECT_FALSE((*decoded)[1].value.has_value());
}

TEST_F(TableTest, DecodeRejectsCorruption) {
  std::vector<Table::Entry> entries = {{"k", "v"}};
  Table t("sst", entries);
  std::string enc = t.Encode();
  enc[enc.size() / 2] ^= 0x40;
  EXPECT_FALSE(Table::DecodeEntries(enc).ok());
}

TEST_F(TableTest, FindAndRange) {
  std::vector<Table::Entry> entries = {
      {"a_1", "1"}, {"a_2", "2"}, {"b_1", "3"}, {"b_2", "4"}};
  Table t("sst", entries);
  EXPECT_NE(t.Find("a_2"), nullptr);
  EXPECT_EQ(t.Find("a_3"), nullptr);
  EXPECT_TRUE(t.MayContain("a_5"));
  EXPECT_FALSE(t.MayContain("zz"));
  EXPECT_EQ(t.PrefixRange("b_").size(), 2u);
  EXPECT_EQ(t.PrefixRange("c_").size(), 0u);
}

}  // namespace
}  // namespace cheetah::kv
