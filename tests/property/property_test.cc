// Parameterized property sweeps: each suite states an invariant and checks
// it across a grid of configurations and seeds.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/alloc/bitmap_allocator.h"
#include "src/common/random.h"
#include "src/crush/crush.h"
#include "src/kv/db.h"
#include "src/sim/actor.h"
#include "src/sim/event_loop.h"
#include "tests/test_util.h"

namespace cheetah {
namespace {

// ---- Allocator: no double allocation, exact accounting, full reuse ----

struct AllocParam {
  uint64_t total_blocks;
  uint32_t block_size;
  uint64_t seed;
};

class AllocatorProperty : public ::testing::TestWithParam<AllocParam> {};

TEST_P(AllocatorProperty, NeverDoubleAllocatesAndFullyReuses) {
  const AllocParam p = GetParam();
  alloc::BitmapAllocator allocator(p.total_blocks, p.block_size);
  Rng rng(p.seed);
  std::set<uint64_t> owned;
  std::vector<std::vector<alloc::Extent>> live;
  for (int round = 0; round < 500; ++round) {
    if (rng.Bernoulli(0.55) || live.empty()) {
      const uint64_t bytes = rng.UniformRange(1, 12 * p.block_size);
      auto extents = allocator.Allocate(bytes);
      if (!extents.ok()) {
        continue;  // full is fine; corruption is not
      }
      uint64_t got_blocks = 0;
      for (const auto& e : *extents) {
        got_blocks += e.count;
        for (uint64_t b = e.block; b < e.block + e.count; ++b) {
          ASSERT_LT(b, p.total_blocks);
          ASSERT_TRUE(owned.insert(b).second) << "double allocation of block " << b;
        }
      }
      ASSERT_GE(got_blocks * p.block_size, bytes);
      live.push_back(std::move(*extents));
    } else {
      const size_t victim = rng.Uniform(live.size());
      for (const auto& e : live[victim]) {
        for (uint64_t b = e.block; b < e.block + e.count; ++b) {
          owned.erase(b);
        }
      }
      allocator.Free(live[victim]);
      live.erase(live.begin() + victim);
    }
    ASSERT_EQ(allocator.used_blocks(), owned.size());
  }
  // Free everything: the allocator must be able to hand out one max run.
  for (const auto& extents : live) {
    allocator.Free(extents);
  }
  EXPECT_EQ(allocator.free_blocks(), p.total_blocks);
  EXPECT_TRUE(allocator.Allocate(p.total_blocks * p.block_size).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllocatorProperty,
    ::testing::Values(AllocParam{64, 4096, 1}, AllocParam{256, 4096, 2},
                      AllocParam{1024, 512, 3}, AllocParam{1024, 65536, 4},
                      AllocParam{4096, 4096, 5}, AllocParam{100, 4096, 6},
                      AllocParam{333, 8192, 7}, AllocParam{2048, 4096, 8}));

class AllocatorSerializeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllocatorSerializeProperty, RoundTripPreservesEveryBit) {
  Rng rng(GetParam());
  alloc::BitmapAllocator allocator(777, 4096);
  for (int i = 0; i < 50; ++i) {
    (void)allocator.Allocate(rng.UniformRange(1, 8) * 4096);
  }
  auto restored = alloc::BitmapAllocator::Deserialize(allocator.Serialize());
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->total_blocks(), allocator.total_blocks());
  ASSERT_EQ(restored->used_blocks(), allocator.used_blocks());
  for (uint64_t b = 0; b < allocator.total_blocks(); ++b) {
    ASSERT_EQ(restored->IsAllocated(b), allocator.IsAllocated(b)) << "block " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorSerializeProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---- CRUSH: determinism, distinctness, minimal remap across sizes ----

struct CrushParam {
  int servers;
  uint32_t replicas;
};

class CrushProperty : public ::testing::TestWithParam<CrushParam> {};

TEST_P(CrushProperty, DistinctDeterministicMinimalRemap) {
  const CrushParam p = GetParam();
  crush::Map map;
  for (int i = 0; i < p.servers; ++i) {
    map.AddItem(100 + i);
  }
  for (uint32_t pg = 0; pg < 512; ++pg) {
    auto a = map.Select(pg, p.replicas);
    auto b = map.Select(pg, p.replicas);
    ASSERT_EQ(a, b) << "nondeterministic selection for pg " << pg;
    std::set<crush::ItemId> unique(a.begin(), a.end());
    ASSERT_EQ(unique.size(), a.size()) << "duplicate replica for pg " << pg;
    ASSERT_EQ(a.size(), std::min<size_t>(p.replicas, p.servers));
  }
  // Adding one server must never shuffle a PG between two old servers.
  crush::Map bigger = map;
  bigger.AddItem(999);
  int moved = 0;
  for (uint32_t pg = 0; pg < 512; ++pg) {
    const crush::ItemId before = map.Primary(pg);
    const crush::ItemId after = bigger.Primary(pg);
    if (before != after) {
      ++moved;
      ASSERT_EQ(after, 999u) << "pg " << pg << " moved between pre-existing servers";
    }
  }
  // Expected movement ~ 512/(n+1); allow a generous band.
  const double expected = 512.0 / (p.servers + 1);
  EXPECT_LT(moved, expected * 2.5);
  if (p.servers < 24) {
    EXPECT_GT(moved, expected * 0.3);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrushProperty,
                         ::testing::Values(CrushParam{3, 3}, CrushParam{4, 3},
                                           CrushParam{6, 3}, CrushParam{9, 3},
                                           CrushParam{12, 3}, CrushParam{9, 1},
                                           CrushParam{9, 5}, CrushParam{30, 3}));

// ---- KV store: acked writes survive any power-loss instant ----

struct KvParam {
  uint64_t memtable_bytes;
  int trigger;
  Nanos cut_after;
  uint64_t seed;
};

class KvDurabilityProperty : public ::testing::TestWithParam<KvParam> {};

TEST_P(KvDurabilityProperty, AckedWritesSurvivePowerLoss) {
  const KvParam p = GetParam();
  sim::EventLoop loop;
  sim::Actor actor(loop);
  sim::Storage storage(loop, sim::DiskParams{});

  // Writer records exactly which keys were acked before the cut.
  auto acked = std::make_shared<std::map<std::string, std::string>>();
  auto deleted = std::make_shared<std::set<std::string>>();
  actor.Spawn([](sim::Storage* storage, kv::Options opts, uint64_t seed,
                 std::shared_ptr<std::map<std::string, std::string>> acked,
                 std::shared_ptr<std::set<std::string>> deleted) -> sim::Task<> {
    auto db = co_await kv::DB::Open(std::move(opts), storage);
    if (!db.ok()) {
      co_return;
    }
    Rng rng(seed);
    for (int i = 0; i < 3000; ++i) {
      const std::string key = "k" + std::to_string(rng.Uniform(400));
      if (rng.Bernoulli(0.8)) {
        const std::string value = "v" + std::to_string(i);
        if ((co_await (*db)->Put(key, value)).ok()) {
          (*acked)[key] = value;
          deleted->erase(key);
        }
      } else {
        if ((co_await (*db)->Delete(key)).ok()) {
          acked->erase(key);
          deleted->insert(key);
        }
      }
    }
  }(&storage, [&] {
      kv::Options o;
      o.memtable_bytes = p.memtable_bytes;
      o.l0_compaction_trigger = p.trigger;
      return o;
    }(), p.seed, acked, deleted));

  loop.RunFor(p.cut_after);  // power fails mid-stream
  actor.Kill();
  storage.PowerLoss();
  actor.Revive();

  // Reopen and verify every acked write (and no resurrections).
  auto checked = std::make_shared<bool>(false);
  actor.Spawn([](sim::Storage* storage,
                 std::shared_ptr<std::map<std::string, std::string>> acked,
                 std::shared_ptr<std::set<std::string>> deleted,
                 std::shared_ptr<bool> checked) -> sim::Task<> {
    auto db = co_await kv::DB::Open(kv::Options{}, storage);
    CO_ASSERT_OK(db);
    for (const auto& [key, value] : *acked) {
      auto got = co_await (*db)->Get(key);
      if (!got.ok()) {
        ADD_FAILURE() << "acked key lost: " << key;
        continue;
      }
      EXPECT_EQ(*got, value) << key;
    }
    for (const auto& key : *deleted) {
      auto got = co_await (*db)->Get(key);
      EXPECT_TRUE(got.status().IsNotFound()) << "deleted key resurrected: " << key;
    }
    *checked = true;
  }(&storage, acked, deleted, checked));
  loop.Run();
  EXPECT_TRUE(*checked);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KvDurabilityProperty,
    ::testing::Values(KvParam{4096, 3, Millis(3), 1}, KvParam{4096, 3, Millis(11), 2},
                      KvParam{2048, 2, Millis(7), 3}, KvParam{16384, 4, Millis(5), 4},
                      KvParam{MiB(64), 4, Millis(9), 5}, KvParam{1024, 1, Millis(13), 6},
                      KvParam{8192, 2, Millis(2), 7}, KvParam{4096, 3, Millis(40), 8}));

// ---- Deterministic RNG and zipf-free distributions ----

class RngProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngProperty, UniformIsUnbiasedAcrossBuckets) {
  Rng rng(GetParam());
  std::vector<int> buckets(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    buckets[rng.Uniform(10)]++;
  }
  for (int b = 0; b < 10; ++b) {
    EXPECT_NEAR(buckets[b] / static_cast<double>(n), 0.1, 0.01) << "bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngProperty, ::testing::Values(1, 7, 42, 1337, 0xdead));

}  // namespace
}  // namespace cheetah
