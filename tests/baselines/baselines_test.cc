// Correctness tests for the three comparison systems. Each baseline must be
// a faithful object store (round trips, immutability, delete semantics)
// before its performance numbers mean anything.
#include <gtest/gtest.h>

#include <memory>

#include "src/baselines/ceph.h"
#include "src/baselines/haystack.h"
#include "src/baselines/tectonic.h"
#include "src/workload/runner.h"
#include "tests/test_util.h"

namespace cheetah::baselines {
namespace {

// Drives a client coroutine to completion on the shared loop.
template <typename Cluster, typename Fn>
bool RunOnClient(Cluster& cluster, int i, Fn body, Nanos budget = Seconds(30)) {
  auto done = std::make_shared<bool>(false);
  cluster.client_actor(i).Spawn(
      [](Fn body, workload::ObjectStore* store, std::shared_ptr<bool> done) -> sim::Task<> {
        co_await body(*store);
        *done = true;
      }(std::move(body), &cluster.client(i), done));
  const Nanos deadline = cluster.loop().Now() + budget;
  while (!*done && cluster.loop().Now() < deadline) {
    if (!cluster.loop().RunOne()) {
      break;
    }
  }
  return *done;
}

template <typename Cluster>
Status PutObj(Cluster& cluster, int client, std::string name, std::string data) {
  auto result = std::make_shared<Status>(Status::Internal("unresolved"));
  RunOnClient(cluster, client,
              [name = std::move(name), data = std::move(data),
               result](workload::ObjectStore& store) -> sim::Task<> {
                *result = co_await store.Put(name, data);
              });
  return *result;
}

template <typename Cluster>
Result<std::string> GetObj(Cluster& cluster, int client, std::string name) {
  auto result = std::make_shared<Result<std::string>>(Status::Internal("unresolved"));
  RunOnClient(cluster, client,
              [name = std::move(name), result](workload::ObjectStore& store) -> sim::Task<> {
                *result = co_await store.Get(name);
              });
  return *result;
}

template <typename Cluster>
Status DeleteObj(Cluster& cluster, int client, std::string name) {
  auto result = std::make_shared<Status>(Status::Internal("unresolved"));
  RunOnClient(cluster, client,
              [name = std::move(name), result](workload::ObjectStore& store) -> sim::Task<> {
                *result = co_await store.Delete(name);
              });
  return *result;
}

// Shared conformance suite: every baseline must pass identical semantics.
template <typename Cluster>
void RunConformance(Cluster& cluster) {
  // Round trip.
  ASSERT_TRUE(PutObj(cluster, 0, "obj-1", std::string(8192, 'a')).ok());
  auto got = GetObj(cluster, 1 % cluster.num_clients(), "obj-1");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, std::string(8192, 'a'));

  // Missing object.
  EXPECT_TRUE(GetObj(cluster, 0, "missing").status().IsNotFound());

  // Immutability.
  EXPECT_EQ(PutObj(cluster, 0, "obj-1", "other").code(), ErrorCode::kAlreadyExists);

  // Delete.
  ASSERT_TRUE(DeleteObj(cluster, 0, "obj-1").ok());
  EXPECT_TRUE(GetObj(cluster, 0, "obj-1").status().IsNotFound());
  EXPECT_TRUE(DeleteObj(cluster, 0, "obj-1").IsNotFound());

  // Delete + re-put (the update idiom).
  ASSERT_TRUE(PutObj(cluster, 0, "obj-2", std::string(4096, 'x')).ok());
  ASSERT_TRUE(DeleteObj(cluster, 0, "obj-2").ok());
  ASSERT_TRUE(PutObj(cluster, 0, "obj-2", std::string(4096, 'y')).ok());
  auto v2 = GetObj(cluster, 0, "obj-2");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ((*v2)[0], 'y');

  // A batch of objects with varied sizes.
  for (int i = 0; i < 30; ++i) {
    const size_t size = 1024 + (i * 3571) % 65536;
    ASSERT_TRUE(
        PutObj(cluster, i % cluster.num_clients(), "batch-" + std::to_string(i),
               std::string(size, static_cast<char>('a' + i % 26)))
            .ok())
        << i;
  }
  for (int i = 0; i < 30; ++i) {
    const size_t size = 1024 + (i * 3571) % 65536;
    auto r = GetObj(cluster, (i + 1) % cluster.num_clients(), "batch-" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << i << ": " << r.status().ToString();
    EXPECT_EQ(r->size(), size);
  }
}

HaystackConfig SmallHaystack() {
  HaystackConfig config;
  config.store_machines = 4;
  config.client_machines = 2;
  config.volumes_per_store = 2;
  config.volume_capacity = MiB(64);
  return config;
}

TEST(HaystackTest, Conformance) {
  sim::EventLoop loop;
  HaystackCluster cluster(loop, SmallHaystack());
  ASSERT_TRUE(cluster.Boot().ok());
  RunConformance(cluster);
}

TEST(HaystackTest, DeleteDoesNotReclaimUntilCompaction) {
  sim::EventLoop loop;
  HaystackCluster cluster(loop, SmallHaystack());
  ASSERT_TRUE(cluster.Boot().ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(PutObj(cluster, 0, "n-" + std::to_string(i), std::string(8192, 'n')).ok());
  }
  uint64_t live = 0, total = 0;
  for (int s = 0; s < cluster.num_stores(); ++s) {
    live += cluster.store(s).live_bytes();
    total += cluster.store(s).total_bytes();
  }
  EXPECT_EQ(live, total);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(DeleteObj(cluster, 0, "n-" + std::to_string(i)).ok());
  }
  live = total = 0;
  for (int s = 0; s < cluster.num_stores(); ++s) {
    live += cluster.store(s).live_bytes();
    total += cluster.store(s).total_bytes();
  }
  EXPECT_LT(live, total);  // dead needles still occupy space
  cluster.TriggerCompactionAll();
  cluster.loop().RunFor(Seconds(5));
  live = total = 0;
  uint64_t compactions = 0;
  for (int s = 0; s < cluster.num_stores(); ++s) {
    live += cluster.store(s).live_bytes();
    total += cluster.store(s).total_bytes();
    compactions += cluster.store(s).stats().compactions;
  }
  EXPECT_GT(compactions, 0u);
  EXPECT_EQ(live, total);  // space reclaimed
  // Survivors still readable post-compaction.
  for (int i = 10; i < 20; ++i) {
    EXPECT_TRUE(GetObj(cluster, 0, "n-" + std::to_string(i)).ok()) << i;
  }
}

TEST(TectonicTest, Conformance) {
  sim::EventLoop loop;
  TectonicConfig config;
  config.store_machines = 4;
  config.client_machines = 2;
  TectonicCluster cluster(loop, config);
  ASSERT_TRUE(cluster.Boot().ok());
  RunConformance(cluster);
}

CephConfig SmallCeph() {
  CephConfig config;
  config.osd_machines = 4;
  config.client_machines = 2;
  config.pg_count = 16;
  return config;
}

TEST(CephTest, Conformance) {
  sim::EventLoop loop;
  CephCluster cluster(loop, SmallCeph());
  ASSERT_TRUE(cluster.Boot().ok());
  RunConformance(cluster);
}

TEST(CephTest, ExpansionTriggersBackfill) {
  sim::EventLoop loop;
  CephCluster cluster(loop, SmallCeph());
  ASSERT_TRUE(cluster.Boot().ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(PutObj(cluster, 0, "pre-" + std::to_string(i), std::string(8192, 'p')).ok());
  }
  cluster.AddOsd();
  cluster.loop().RunFor(Seconds(5));
  EXPECT_GT(cluster.osd(cluster.num_osds() - 1).stats().backfilled_objects, 0u)
      << "adding an OSD must migrate remapped PGs' objects";
  // Objects remain readable after the remap (new primaries have the data).
  int readable = 0;
  for (int i = 0; i < 40; ++i) {
    readable += GetObj(cluster, 0, "pre-" + std::to_string(i)).ok();
  }
  EXPECT_EQ(readable, 40);
}

}  // namespace
}  // namespace cheetah::baselines
