// System-specific behaviors of the baselines — the mechanisms their
// performance characteristics come from, asserted directly.
#include <gtest/gtest.h>

#include "src/baselines/ceph.h"
#include "src/baselines/haystack.h"
#include "src/baselines/tectonic.h"
#include "tests/test_util.h"

namespace cheetah::baselines {
namespace {

template <typename Cluster, typename Fn>
void Drive(Cluster& cluster, int client, Fn body, Nanos budget = Seconds(30)) {
  auto done = std::make_shared<bool>(false);
  cluster.client_actor(client).Spawn(
      [](Fn body, workload::ObjectStore* store, std::shared_ptr<bool> done) -> sim::Task<> {
        co_await body(*store);
        *done = true;
      }(std::move(body), &cluster.client(client), done));
  const Nanos deadline = cluster.loop().Now() + budget;
  while (!*done && cluster.loop().Now() < deadline && cluster.loop().RunOne()) {
  }
  ASSERT_TRUE(*done);
}

TEST(HaystackBehaviorTest, AsyncCheckpointLagsWrites) {
  sim::EventLoop loop;
  HaystackConfig config;
  config.store_machines = 3;
  config.client_machines = 1;
  config.volumes_per_store = 2;
  config.checkpoint_interval = Millis(200);
  HaystackCluster cluster(loop, config);
  ASSERT_TRUE(cluster.Boot().ok());
  Drive(cluster, 0, [](workload::ObjectStore& store) -> sim::Task<> {
    for (int i = 0; i < 30; ++i) {
      EXPECT_TRUE((co_await store.Put("n" + std::to_string(i), std::string(4096, 'n'))).ok());
    }
  });
  // Writes finished; the on-disk index is still stale (§2.2's criticism)...
  uint64_t checkpoints = 0;
  for (int s = 0; s < cluster.num_stores(); ++s) {
    checkpoints += cluster.store(s).stats().checkpoints;
  }
  // ...until the asynchronous checkpointer catches up.
  cluster.loop().RunFor(Millis(600));
  uint64_t later = 0;
  for (int s = 0; s < cluster.num_stores(); ++s) {
    later += cluster.store(s).stats().checkpoints;
  }
  EXPECT_GT(later, checkpoints);
}

TEST(HaystackBehaviorTest, CompactionRewritesOnlyLiveBytes) {
  sim::EventLoop loop;
  HaystackConfig config;
  config.store_machines = 3;
  config.client_machines = 1;
  config.volumes_per_store = 1;
  HaystackCluster cluster(loop, config);
  ASSERT_TRUE(cluster.Boot().ok());
  Drive(cluster, 0, [](workload::ObjectStore& store) -> sim::Task<> {
    for (int i = 0; i < 20; ++i) {
      (void)co_await store.Put("x" + std::to_string(i), std::string(10000, 'x'));
    }
    for (int i = 0; i < 15; ++i) {
      (void)co_await store.Delete("x" + std::to_string(i));
    }
  });
  cluster.TriggerCompactionAll();
  cluster.loop().RunFor(Seconds(3));
  uint64_t compacted = 0;
  for (int s = 0; s < cluster.num_stores(); ++s) {
    compacted += cluster.store(s).stats().compacted_bytes;
  }
  // 5 live objects x 10000 bytes x 3 replicas rewritten, not the 20 written.
  EXPECT_EQ(compacted, 5u * 10000u * 3u);
}

TEST(CephBehaviorTest, SmallObjectsDoubleWriteThroughJournal) {
  sim::EventLoop loop;
  CephConfig config;
  config.osd_machines = 3;
  config.client_machines = 1;
  config.pg_count = 8;
  CephCluster cluster(loop, config);
  ASSERT_TRUE(cluster.Boot().ok());
  auto journal_bytes = [&cluster] {
    uint64_t total = 0;
    for (int i = 0; i < cluster.num_osds(); ++i) {
      total += cluster.osd(i).stats().journal_bytes;
    }
    return total;
  };
  Drive(cluster, 0, [](workload::ObjectStore& store) -> sim::Task<> {
    EXPECT_TRUE((co_await store.Put("small", std::string(KiB(8), 's'))).ok());
  });
  const uint64_t after_small = journal_bytes();
  Drive(cluster, 0, [](workload::ObjectStore& store) -> sim::Task<> {
    EXPECT_TRUE((co_await store.Put("large", std::string(KiB(256), 'l'))).ok());
  });
  const uint64_t after_large = journal_bytes();
  // The small object's payload went through the journal on all 3 replicas;
  // the large object only journaled its header.
  EXPECT_GE(after_small, 3u * KiB(8));
  EXPECT_LT(after_large - after_small, 3u * KiB(8));
}

TEST(CephBehaviorTest, PgLockSerializesSamePgOps) {
  sim::EventLoop loop;
  CephConfig config;
  config.osd_machines = 3;
  config.client_machines = 1;
  config.pg_count = 1;  // every op contends on one PG
  config.osd_op_cpu = Millis(2);
  CephCluster cluster(loop, config);
  ASSERT_TRUE(cluster.Boot().ok());
  // Two concurrent gets of a preloaded object must serialize (~2x one).
  Drive(cluster, 0, [](workload::ObjectStore& store) -> sim::Task<> {
    (void)co_await store.Put("obj", std::string(4096, 'o'));
  });
  auto done = std::make_shared<int>(0);
  const Nanos t0 = cluster.loop().Now();
  for (int i = 0; i < 2; ++i) {
    cluster.client_actor(0).Spawn(
        [](workload::ObjectStore* store, std::shared_ptr<int> done) -> sim::Task<> {
          (void)co_await store->Get("obj");
          ++*done;
        }(&cluster.client(0), done));
  }
  while (*done < 2 && cluster.loop().RunOne()) {
  }
  // One get costs ~>= 2ms (CPU) under the lock; two must cost >= ~4ms.
  EXPECT_GE(cluster.loop().Now() - t0, Millis(4));
}

TEST(TectonicBehaviorTest, DeleteClearsAllThreeLayers) {
  sim::EventLoop loop;
  TectonicConfig config;
  config.store_machines = 3;
  config.client_machines = 1;
  TectonicCluster cluster(loop, config);
  ASSERT_TRUE(cluster.Boot().ok());
  Drive(cluster, 0, [](workload::ObjectStore& store) -> sim::Task<> {
    EXPECT_TRUE((co_await store.Put("layered", std::string(8192, 'L'))).ok());
    EXPECT_TRUE((co_await store.Get("layered")).ok());
    EXPECT_TRUE((co_await store.Delete("layered")).ok());
    // Every layer rejects the name now — and the name can be recreated.
    EXPECT_TRUE((co_await store.Get("layered")).status().IsNotFound());
    EXPECT_TRUE((co_await store.Put("layered", std::string(100, 'M'))).ok());
    auto again = co_await store.Get("layered");
    CO_ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->size(), 100u);
  });
}

TEST(TectonicBehaviorTest, PutCostsMoreRpcHopsThanGet) {
  // The recursive-RPC structure: a put walks name -> file -> block -> chunk
  // -> seal (5 hops incl. data), a get walks name -> file -> block -> chunk.
  // With near-free disks, latency is pure hops x RTT, so put > get.
  sim::EventLoop loop;
  TectonicConfig config;
  config.store_machines = 3;
  config.client_machines = 1;
  config.disk = sim::DiskParams::RamDisk();
  TectonicCluster cluster(loop, config);
  ASSERT_TRUE(cluster.Boot().ok());
  Nanos put_cost = 0, get_cost = 0;
  Drive(cluster, 0, [&](workload::ObjectStore& store) -> sim::Task<> {
    sim::Actor* actor = co_await sim::CurrentActor{};
    Nanos t0 = actor->Now();
    (void)co_await store.Put("hops", std::string(1024, 'h'));
    put_cost = actor->Now() - t0;
    t0 = actor->Now();
    (void)co_await store.Get("hops");
    get_cost = actor->Now() - t0;
  });
  EXPECT_GT(put_cost, get_cost);
  EXPECT_GE(put_cost, 5 * 2 * Micros(100));  // >= 5 round trips of base latency
}

}  // namespace
}  // namespace cheetah::baselines
