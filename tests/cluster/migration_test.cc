// Planned decommission: live PG migration (Prepare -> DoubleWrite -> Catchup
// -> Cutover -> Release) driven by the manager, the proxy's fast redirect on
// stale-owner NACKs, migration state in the replicated topology, and the
// epoch guards that keep background maintenance (tiering, scrubbing) off PGs
// that are mid-migration.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/client_proxy.h"
#include "src/core/scrubber.h"
#include "src/core/testbed.h"
#include "src/tier/engine.h"
#include "tests/test_util.h"

namespace cheetah::cluster {
namespace {

using core::ClientProxy;
using core::Testbed;
using core::TestbedConfig;

// Four meta machines so a drained node always has a CRUSH destination for
// its PGs among the survivors (replication 3 of the remaining 3).
TestbedConfig MigrateConfig() {
  TestbedConfig config;
  config.meta_machines = 4;
  config.data_machines = 4;
  config.proxies = 2;
  config.pg_count = 8;
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 3;
  config.lv_capacity_bytes = MiB(64);
  return config;
}

uint64_t TotalDrains(Testbed& bed) {
  uint64_t sum = 0;
  for (int i = 0; i < bed.num_managers(); ++i) {
    sum += bed.manager(i).drains_completed();
  }
  return sum;
}

std::string PayloadFor(int i) {
  return "obj-" + std::to_string(i) + "|" + std::string(4096, static_cast<char>('a' + i % 26));
}

TEST(MigrationTest, DrainRetiresNodeAndKeepsEveryObject) {
  Testbed bed(MigrateConfig());
  ASSERT_TRUE(bed.Boot().ok());
  constexpr int kKeys = 16;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(bed.PutObject(0, "obj-" + std::to_string(i), PayloadFor(i)).ok());
  }
  const sim::NodeId victim = bed.meta_node(1);
  const uint64_t view_before = bed.manager(bed.LeaderManager()).view();

  Status s = bed.DrainMetaMachine(1);
  ASSERT_TRUE(s.ok()) << s.ToString();

  const TopologyMap& topo = bed.manager(bed.LeaderManager()).topology();
  EXPECT_TRUE(topo.IsRetired(victim));
  EXPECT_FALSE(topo.meta_crush.HasItem(victim));
  EXPECT_FALSE(topo.IsDraining(victim));
  EXPECT_TRUE(topo.migrations.empty()) << "cutover left migration entries behind";
  EXPECT_GT(topo.view, view_before);
  EXPECT_GE(TotalDrains(bed), 1u);

  // Every object reads back byte-identically — including through proxy 1,
  // which never refreshed and must chase the stale-owner NACK to the new
  // primaries.
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "obj-" + std::to_string(i);
    auto got = bed.GetObject(1, key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(*got, PayloadFor(i)) << key;
  }
  // The shrunk cluster still takes writes and deletes.
  ASSERT_TRUE(bed.PutObject(0, "post-drain", std::string(4096, 'p')).ok());
  ASSERT_TRUE(bed.DeleteObject(0, "obj-0").ok());
  EXPECT_TRUE(bed.GetObject(1, "obj-0").status().IsNotFound());

  // The retired node is still alive and heartbeating; the re-admission sweep
  // must NOT pull a decommissioned server back into the map.
  bed.RunFor(Seconds(3));
  const TopologyMap& after = bed.manager(bed.LeaderManager()).topology();
  EXPECT_FALSE(after.meta_crush.HasItem(victim)) << "retired node rejoined";
  EXPECT_TRUE(after.IsRetired(victim));
}

// A proxy holding a pre-cutover topology sends to the old owner, receives a
// stale-view NACK carrying the server's view, and must chase it — re-pull
// the topology and retry immediately — instead of a backoff cycle.
TEST(MigrationTest, StaleProxyChasesNewOwnerWithoutBackoff) {
  Testbed bed(MigrateConfig());
  ASSERT_TRUE(bed.Boot().ok());
  const sim::NodeId victim = bed.meta_node(1);
  // A key whose PG the victim owns, chosen before the drain so the put below
  // (from a stale proxy) is guaranteed to target the old primary.
  const TopologyMap before = bed.manager(bed.LeaderManager()).topology();
  std::string key;
  for (int k = 0; k < 256 && key.empty(); ++k) {
    const std::string candidate = "redir-" + std::to_string(k);
    if (before.PrimaryOf(before.PgOf(candidate)) == victim) {
      key = candidate;
    }
  }
  ASSERT_FALSE(key.empty()) << "victim owns no PG as primary";

  // The manager pushes each new topology to proxies as well, so to hold a
  // genuinely pre-cutover view the proxy must miss those pushes: partition it
  // from the managers for the duration of the drain, then heal and operate
  // before any background refresh catches it up.
  for (int m = 0; m < bed.num_managers(); ++m) {
    bed.Partition(bed.proxy_node(1), bed.manager_node(m));
  }
  ASSERT_TRUE(bed.DrainMetaMachine(1).ok());
  ASSERT_EQ(bed.proxy(1).stats().fast_redirects, 0u);
  ASSERT_LT(bed.proxy(1).view(), bed.manager(bed.LeaderManager()).view());
  bed.Heal();
  ASSERT_TRUE(bed.PutObject(1, key, std::string(4096, 'r')).ok());
  EXPECT_GE(bed.proxy(1).stats().fast_redirects, 1u)
      << "stale-owner NACK did not take the fast-redirect path";
  auto got = bed.GetObject(0, key);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, std::string(4096, 'r'));
}

TEST(MigrationTest, StaleViewHintParsing) {
  EXPECT_EQ(ClientProxy::StaleViewHint(Status::StaleView("server at view 17")), 17u);
  EXPECT_EQ(ClientProxy::StaleViewHint(
                Status::StaleView("pg pull below catchup floor; server at view 203")),
            203u);
  EXPECT_EQ(ClientProxy::StaleViewHint(Status::StaleView("view mismatch")), 0u);
  EXPECT_EQ(ClientProxy::StaleViewHint(Status::StaleView("")), 0u);
  EXPECT_EQ(ClientProxy::StaleViewHint(Status::StaleView("server at view ")), 0u);
}

// Foreground traffic keeps succeeding while the drain runs underneath it.
TEST(MigrationTest, OpsDuringDrainAllSucceed) {
  Testbed bed(MigrateConfig());
  ASSERT_TRUE(bed.Boot().ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(bed.PutObject(0, "obj-" + std::to_string(i), PayloadFor(i)).ok());
  }
  ASSERT_TRUE(bed.BeginDrainMetaMachine(2));

  auto failures = std::make_shared<int>(0);
  auto done = std::make_shared<int>(0);
  constexpr int kWorkers = 2;
  for (int w = 0; w < kWorkers; ++w) {
    bed.RunOnProxy(w, [w, failures, done](ClientProxy& proxy) -> sim::Task<> {
      Rng rng(7001 + static_cast<uint64_t>(w));
      for (int i = 0; i < 12; ++i) {
        const std::string key = "live-w" + std::to_string(w) + "-" + std::to_string(i);
        const std::string value = key + std::string(2048, 'v');
        if (!(co_await proxy.Put(key, value)).ok()) {
          ++*failures;
        }
        auto got = co_await proxy.Get(key);
        if (!got.ok() || *got != value) {
          ++*failures;
        }
        co_await sim::SleepFor(Millis(30) + rng.Uniform(Millis(70)));
      }
      ++*done;
    }, Nanos{0});
  }
  const sim::NodeId victim = bed.meta_node(2);
  const Nanos deadline = bed.loop().Now() + Seconds(90);
  while (bed.loop().Now() < deadline) {
    const int leader = bed.LeaderManager();
    const bool retired = leader >= 0 && bed.manager(leader).topology().IsRetired(victim);
    if (*done == kWorkers && retired) {
      break;
    }
    bed.RunFor(Millis(50));
  }
  EXPECT_EQ(*done, kWorkers) << "workers hung during drain";
  EXPECT_EQ(*failures, 0) << "foreground ops failed during a planned drain";
  EXPECT_TRUE(bed.manager(bed.LeaderManager()).topology().IsRetired(victim));
  // Post-drain audit of the preloaded keys from the other (stale) proxy.
  for (int i = 0; i < 8; ++i) {
    const std::string key = "obj-" + std::to_string(i);
    auto got = bed.GetObject(1, key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(*got, PayloadFor(i));
  }
}

TEST(MigrationTest, TopologySerializationRoundTripsMigrationState) {
  TopologyMap map;
  map.view = 42;
  map.pg_count = 8;
  map.replication = 3;
  map.meta_crush.AddItem(11, 1.0);
  map.meta_crush.AddItem(12, 1.0);
  map.meta_crush.AddItem(13, 1.0);
  PgMigration m1;
  m1.phase = MigrationPhase::kDoubleWrite;
  m1.source = 11;
  m1.destination = 13;
  map.migrations[3] = m1;
  PgMigration m2;
  m2.phase = MigrationPhase::kCatchup;
  m2.source = 11;
  m2.destination = 12;
  map.migrations[5] = m2;
  map.draining_metas.push_back(11);
  map.retired_metas.push_back(99);

  auto round = TopologyMap::Deserialize(map.Serialize());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_TRUE(map.SameShape(*round));
  ASSERT_EQ(round->migrations.size(), 2u);
  const PgMigration* r1 = round->MigrationOf(3);
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r1->phase, MigrationPhase::kDoubleWrite);
  EXPECT_EQ(r1->source, 11u);
  EXPECT_EQ(r1->destination, 13u);
  const PgMigration* r2 = round->MigrationOf(5);
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(r2->phase, MigrationPhase::kCatchup);
  EXPECT_TRUE(round->IsDraining(11));
  EXPECT_FALSE(round->IsDraining(12));
  EXPECT_TRUE(round->IsRetired(99));
  EXPECT_FALSE(round->IsRetired(11));
  EXPECT_EQ(round->MigrationOf(7), nullptr);
}

// ---- epoch guards: background maintenance vs live migration ----

// EC-tier geometry on the 4-meta migrate cluster (see tier_test's EcConfig).
TestbedConfig MigrateEcConfig() {
  TestbedConfig config = MigrateConfig();
  config.data_machines = 4;
  config.pvs_per_disk = 6;
  config.lv_capacity_bytes = MiB(128);
  config.options.tier.ec_k = 2;
  config.options.tier.ec_m = 1;
  config.options.tier.min_ec_object_bytes = 4096;
  config.options.tier.demote_after = Millis(200);
  return config;
}

void TierAllNow(Testbed& bed) {
  auto pending = std::make_shared<int>(bed.num_meta());
  for (int i = 0; i < bed.num_meta(); ++i) {
    bed.meta_machine(i).actor().Spawn(
        [](core::MetaServer* server, std::shared_ptr<int> pending) -> sim::Task<> {
          co_await server->TierNow();
          --*pending;
        }(&bed.meta(i), pending));
  }
  while (*pending > 0 && bed.loop().RunOne()) {
  }
}

void ScrubAllNow(Testbed& bed) {
  auto pending = std::make_shared<int>(bed.num_meta());
  for (int i = 0; i < bed.num_meta(); ++i) {
    bed.meta_machine(i).actor().Spawn(
        [](core::MetaServer* server, std::shared_ptr<int> pending) -> sim::Task<> {
          co_await server->ScrubNow();
          --*pending;
        }(&bed.meta(i), pending));
  }
  while (*pending > 0 && bed.loop().RunOne()) {
  }
}

uint64_t TotalDemotions(Testbed& bed) {
  uint64_t sum = 0;
  for (int i = 0; i < bed.num_meta(); ++i) {
    sum += bed.meta(i).tier_engine().stats().demotions;
  }
  return sum;
}

// Regression: while a PG is mid-migration, the tiering engine must NOT
// demote its objects (a demotion started against the pre-cutover owner could
// commit an EC record the destination's catchup never sees), and the
// scrubber must skip it likewise. Once the migration completes the demotion
// proceeds normally.
TEST(MigrationTest, DemoteDuringMigrateIsDeferred) {
  Testbed bed(MigrateEcConfig());
  ASSERT_TRUE(bed.Boot().ok());

  Rng rng(77);
  std::string payload(65536, '\0');
  for (auto& c : payload) {
    c = static_cast<char>(rng.Uniform(256));
  }
  ASSERT_TRUE(bed.PutObject(0, "cold", payload).ok());
  bed.RunFor(Seconds(2));  // settle and age past demote_after

  // Geometry: the PG's primary is the drain target; with 4 metas and
  // replication 3, the single meta outside the PG's replica set is
  // necessarily the migration destination.
  const TopologyMap topo = bed.manager(bed.LeaderManager()).topology();
  const PgId pg = topo.PgOf("cold");
  const sim::NodeId primary = topo.PrimaryOf(pg);
  const std::vector<sim::NodeId> members = topo.MetaServersOf(pg);
  int victim_idx = -1;
  int outsider_idx = -1;
  for (int i = 0; i < bed.num_meta(); ++i) {
    const sim::NodeId node = bed.meta_node(i);
    if (node == primary) {
      victim_idx = i;
    }
    if (std::find(members.begin(), members.end(), node) == members.end()) {
      outsider_idx = i;
    }
  }
  ASSERT_GE(victim_idx, 0);
  ASSERT_GE(outsider_idx, 0);

  // Stall the destination's meta disk so catchup cannot complete: the
  // migration entry stays in the topology while we probe the guards.
  sim::GrayFailure gray;
  gray.latency_multiplier = 50.0;
  gray.fsync_stuck_for = Seconds(10);
  bed.meta_machine(outsider_idx).SetGrayFailure(gray);

  ASSERT_TRUE(bed.BeginDrainMetaMachine(victim_idx));
  const Nanos probe_deadline = bed.loop().Now() + Seconds(5);
  bool in_flight = false;
  while (bed.loop().Now() < probe_deadline) {
    const int leader = bed.LeaderManager();
    if (leader >= 0 && bed.manager(leader).topology().MigrationOf(pg) != nullptr) {
      in_flight = true;
      break;
    }
    bed.RunFor(Millis(10));
  }
  ASSERT_TRUE(in_flight) << "migration never became visible in the topology";

  // The guards: a full tiering pass and a full scrub pass while the PG is
  // mid-migration must leave it alone.
  TierAllNow(bed);
  EXPECT_EQ(TotalDemotions(bed), 0u) << "object demoted while its PG was migrating";
  ScrubAllNow(bed);
  uint64_t corrupt = 0;
  for (int i = 0; i < bed.num_meta(); ++i) {
    corrupt += bed.meta(i).scrubber().stats().corrupt_found;
  }
  EXPECT_EQ(corrupt, 0u);

  // Unstall, let the drain finish, and verify the demotion now goes through.
  bed.meta_machine(outsider_idx).ClearGrayFailure();
  const Nanos drain_deadline = bed.loop().Now() + Seconds(60);
  while (bed.loop().Now() < drain_deadline) {
    const int leader = bed.LeaderManager();
    if (leader >= 0 && bed.manager(leader).topology().IsRetired(primary)) {
      break;
    }
    bed.RunFor(Millis(50));
  }
  ASSERT_TRUE(bed.manager(bed.LeaderManager()).topology().IsRetired(primary))
      << "drain did not complete after the destination recovered";
  bed.RunFor(Seconds(1));

  TierAllNow(bed);
  EXPECT_EQ(TotalDemotions(bed), 1u) << "deferred demotion did not run post-cutover";
  for (int p = 0; p < 2; ++p) {
    auto got = bed.GetObject(p, "cold");
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, payload);
  }
}

}  // namespace
}  // namespace cheetah::cluster
