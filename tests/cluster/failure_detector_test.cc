// Failure-detector behaviors (§5.1 plus the phi-accrual/flap-damping layer):
// suspicion math, detection timing for a hard crash, gray-network flapping
// that must NOT evict, and re-admission of an evicted-but-alive meta server
// that keeps serving its data afterwards.
#include <gtest/gtest.h>

#include <string>

#include "src/cluster/manager.h"
#include "src/core/testbed.h"
#include "tests/test_util.h"

namespace cheetah::cluster {
namespace {

core::TestbedConfig DetectorConfig() {
  core::TestbedConfig config;
  config.meta_machines = 3;
  config.data_machines = 4;
  config.proxies = 1;
  config.pg_count = 8;
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 3;
  config.lv_capacity_bytes = MiB(64);
  return config;
}

uint64_t TotalEvictions(core::Testbed& bed) {
  uint64_t sum = 0;
  for (int i = 0; i < bed.num_managers(); ++i) {
    sum += bed.manager(i).evictions();
  }
  return sum;
}

// phi = 0.4343 * gap / mean. With the default healthy heartbeat mean of
// ~100ms, the 1.9 threshold is crossed just below the 450ms hard timeout, so
// the two layers agree for well-behaved servers.
TEST(PhiSuspicionTest, ThresholdBoundaryAtHealthyMean) {
  EXPECT_GT(PhiSuspicion(Millis(450), Millis(100)), 1.9);   // ~1.954
  EXPECT_LT(PhiSuspicion(Millis(400), Millis(100)), 1.9);   // ~1.737
}

TEST(PhiSuspicionTest, GrowsWithGapShrinksWithMean) {
  EXPECT_LT(PhiSuspicion(Millis(200), Millis(100)),
            PhiSuspicion(Millis(600), Millis(100)));
  // A node whose heartbeats are merely slow has a large observed mean and is
  // judged against it: the same absolute gap is far less suspicious.
  EXPECT_LT(PhiSuspicion(Millis(600), Millis(400)),
            PhiSuspicion(Millis(600), Millis(100)));
  EXPECT_LT(PhiSuspicion(Millis(600), Millis(400)), 1.9);
}

TEST(PhiSuspicionTest, MeanIsFlooredAgainstDegenerateSamples) {
  // A zero (or absurdly small) observed mean must not make every gap look
  // infinitely suspicious; the floor pins the math.
  EXPECT_EQ(PhiSuspicion(Millis(100), Nanos{0}),
            PhiSuspicion(Millis(100), Millis(10)));
  EXPECT_EQ(PhiSuspicion(Millis(100), Millis(1)),
            PhiSuspicion(Millis(100), Millis(10)));
}

TEST(FailureDetectorTest, HardCrashEvictedWithinBudget) {
  core::Testbed bed(DetectorConfig());
  ASSERT_TRUE(bed.Boot().ok());
  ASSERT_TRUE(bed.PutObject(0, "obj", std::string(4096, 'o')).ok());
  const sim::NodeId victim = bed.meta_node(1);
  const uint64_t view_before = bed.manager(bed.LeaderManager()).view();
  ASSERT_EQ(TotalEvictions(bed), 0u);

  bed.CrashMetaMachine(1, /*power_loss=*/false);
  // fail_timeout is 450ms; with the check cadence and a view change on top,
  // 1200ms of virtual time is a generous end-to-end detection budget.
  bed.RunFor(Millis(1200));

  const TopologyMap& topo = bed.manager(bed.LeaderManager()).topology();
  EXPECT_GE(TotalEvictions(bed), 1u);
  EXPECT_FALSE(topo.meta_crush.HasItem(victim));
  EXPECT_GT(topo.view, view_before);
  // The survivors still serve the data (re-replicated under the new view).
  auto got = bed.GetObject(0, "obj");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->size(), 4096u);
}

// A node whose heartbeats are slow and jittery (gray network) must not be
// evicted: moderate early gaps count as flaps and stretch its effective
// timeout, and the phi layer judges later gaps against its grown mean.
// The delays ramp up — mild first so the damping state builds before the
// heavy jitter starts — mirroring how real gray failures develop.
TEST(FailureDetectorTest, FlappingSlowNodeIsNotEvicted) {
  core::Testbed bed(DetectorConfig());
  ASSERT_TRUE(bed.Boot().ok());
  ASSERT_TRUE(bed.PutObject(0, "keep", std::string(4096, 'k')).ok());
  const sim::NodeId victim = bed.meta_node(1);
  bed.network().SeedFaults(42);

  // Phase 1 (mild): delayed heartbeats with gaps capped below the 450ms hard
  // timeout, but often past the 225ms near-eviction line — each such healed
  // gap is a flap, stretching the node's effective timeout.
  sim::LinkFaults mild;
  mild.delay_prob = 0.6;
  mild.max_extra_delay = Millis(340);
  for (int m = 0; m < bed.num_managers(); ++m) {
    bed.network().SetLinkFaults(victim, bed.manager_node(m), mild);
  }
  bed.RunFor(Seconds(3));
  EXPECT_EQ(TotalEvictions(bed), 0u) << "mild jitter must never evict";

  // Phase 2 (heavy): gaps can now exceed the bare 450ms timeout. The flap
  // damping earned in phase 1 (and the grown inter-arrival mean) must keep
  // the node in the map.
  sim::LinkFaults heavy;
  heavy.delay_prob = 0.6;
  heavy.max_extra_delay = Millis(500);
  for (int m = 0; m < bed.num_managers(); ++m) {
    bed.network().SetLinkFaults(victim, bed.manager_node(m), heavy);
  }
  bed.RunFor(Seconds(3));

  bed.network().ClearLinkFaults();
  bed.RunFor(Seconds(1));

  EXPECT_EQ(TotalEvictions(bed), 0u) << "gray-slow node was evicted";
  EXPECT_TRUE(bed.manager(bed.LeaderManager()).topology().meta_crush.HasItem(victim));
  // And it still serves: reads and writes through the cluster stay healthy.
  auto got = bed.GetObject(0, "keep");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(bed.PutObject(0, "after", std::string(4096, 'a')).ok());
}

// Unplanned loss -> eviction -> the node comes back. The re-admission sweep
// must put it back into the CRUSH map, and reads of data it hosted must be
// served correctly afterwards (its local state is caught up, not trusted
// blindly).
TEST(FailureDetectorTest, EvictedButAliveMetaIsReadmittedAndServes) {
  core::Testbed bed(DetectorConfig());
  ASSERT_TRUE(bed.Boot().ok());
  for (int i = 0; i < 8; ++i) {
    const std::string key = "obj-" + std::to_string(i);
    ASSERT_TRUE(bed.PutObject(0, key, key + std::string(4096, 'd')).ok());
  }
  const sim::NodeId victim = bed.meta_node(1);

  bed.CrashMetaMachine(1, /*power_loss=*/false);
  bed.RunFor(Seconds(2));
  ASSERT_GE(TotalEvictions(bed), 1u);
  ASSERT_FALSE(bed.manager(bed.LeaderManager()).topology().meta_crush.HasItem(victim));

  bed.RestartMetaMachine(1);
  bed.RunFor(Seconds(3));
  const TopologyMap& topo = bed.manager(bed.LeaderManager()).topology();
  EXPECT_TRUE(topo.meta_crush.HasItem(victim)) << "restarted meta not re-admitted";
  EXPECT_FALSE(topo.IsRetired(victim));

  // Every object written before the outage reads back byte-identically.
  for (int i = 0; i < 8; ++i) {
    const std::string key = "obj-" + std::to_string(i);
    auto got = bed.GetObject(0, key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(*got, key + std::string(4096, 'd')) << key;
  }
  ASSERT_TRUE(bed.PutObject(0, "fresh", std::string(4096, 'f')).ok());
}

}  // namespace
}  // namespace cheetah::cluster
