// Manager behaviors beyond what the end-to-end suite exercises: bootstrap
// validation, expansion layout rules, failure-report acceleration, and view
// monotonicity.
#include <gtest/gtest.h>

#include <set>

#include "src/core/testbed.h"
#include "tests/test_util.h"

namespace cheetah::cluster {
namespace {

core::TestbedConfig SmallConfig() {
  core::TestbedConfig config;
  config.meta_machines = 3;
  config.data_machines = 4;
  config.proxies = 1;
  config.pg_count = 8;
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 3;
  config.lv_capacity_bytes = MiB(64);
  return config;
}

TEST(ManagerTest, BootstrapRejectsTooFewVolumes) {
  core::TestbedConfig config = SmallConfig();
  config.pg_count = 512;  // 4*2*3/3 = 8 LVs < 512 PGs
  core::Testbed bed(std::move(config));
  Status s = bed.Boot();
  EXPECT_FALSE(s.ok());
}

TEST(ManagerTest, BootstrapLvReplicasOnDistinctServers) {
  core::Testbed bed(SmallConfig());
  ASSERT_TRUE(bed.Boot().ok());
  const TopologyMap& topo = bed.manager(bed.LeaderManager()).topology();
  for (const auto& [id, lv] : topo.lvs) {
    ASSERT_EQ(lv.replicas.size(), topo.replication);
    std::set<sim::NodeId> servers;
    for (PvId pv : lv.replicas) {
      servers.insert(topo.FindPv(pv)->data_server);
    }
    EXPECT_EQ(servers.size(), topo.replication) << "lv " << id << " co-locates replicas";
  }
  // Every PG's VG is non-empty and every LV belongs to exactly one VG.
  std::set<LvId> assigned;
  for (const auto& [pg, lvs] : topo.vgs) {
    EXPECT_FALSE(lvs.empty()) << "pg " << pg;
    for (LvId lv : lvs) {
      EXPECT_TRUE(assigned.insert(lv).second) << "lv " << lv << " in two VGs";
    }
  }
  EXPECT_EQ(assigned.size(), topo.lvs.size());
}

TEST(ManagerTest, AddDataServerKeepsVgExclusivity) {
  core::Testbed bed(SmallConfig());
  ASSERT_TRUE(bed.Boot().ok());
  const uint64_t view_before = bed.manager(bed.LeaderManager()).view();
  auto added = bed.AddDataMachine(2, 2);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  const TopologyMap& topo = bed.manager(bed.LeaderManager()).topology();
  EXPECT_GT(topo.view, view_before);
  std::set<LvId> assigned;
  for (const auto& [pg, lvs] : topo.vgs) {
    for (LvId lv : lvs) {
      EXPECT_TRUE(assigned.insert(lv).second);
    }
  }
  EXPECT_EQ(assigned.size(), topo.lvs.size());
  // New LVs still have distinct-server replicas.
  for (const auto& [id, lv] : topo.lvs) {
    std::set<sim::NodeId> servers;
    for (PvId pv : lv.replicas) {
      servers.insert(topo.FindPv(pv)->data_server);
    }
    EXPECT_EQ(servers.size(), topo.replication);
  }
}

TEST(ManagerTest, DuplicateMetaServerRejected) {
  core::Testbed bed(SmallConfig());
  ASSERT_TRUE(bed.Boot().ok());
  const sim::NodeId existing = bed.meta_machine(0).node_id();
  auto result = std::make_shared<Status>(Status::Internal("unresolved"));
  const int leader = bed.LeaderManager();
  ASSERT_GE(leader, 0);
  // Issue the duplicate add directly on the leader.
  auto& mgr = bed.manager(leader);
  bool done = false;
  bed.loop().ScheduleAfter(0, [&] {});
  bed.RunOnProxy(0, [&mgr, existing, result](core::ClientProxy&) -> sim::Task<> {
    // Hop onto the proxy actor just to have a coroutine context; the manager
    // method itself checks leadership internally.
    *result = co_await mgr.AddMetaServer(existing);
  });
  (void)done;
  EXPECT_EQ(result->code(), ErrorCode::kAlreadyExists);
}

TEST(ManagerTest, ViewNumbersAreStrictlyMonotonic) {
  core::Testbed bed(SmallConfig());
  ASSERT_TRUE(bed.Boot().ok());
  std::vector<uint64_t> views;
  views.push_back(bed.manager(bed.LeaderManager()).view());
  (void)bed.AddDataMachine(1, 2);
  views.push_back(bed.manager(bed.LeaderManager()).view());
  (void)bed.AddMetaMachine();
  views.push_back(bed.manager(bed.LeaderManager()).view());
  bed.CrashMetaMachine(0, false);
  bed.RunFor(Seconds(2));
  views.push_back(bed.manager(bed.LeaderManager()).view());
  for (size_t i = 1; i < views.size(); ++i) {
    EXPECT_GT(views[i], views[i - 1]) << "step " << i;
  }
}

TEST(ManagerTest, FailureReportsAccelerateDetection) {
  core::Testbed bed(SmallConfig());
  ASSERT_TRUE(bed.Boot().ok());
  ASSERT_TRUE(bed.PutObject(0, "obj", std::string(4096, 'o')).ok());
  const uint64_t view_before = bed.proxy(0).view();
  bed.CrashMetaMachine(1, false);
  // A put routed at the dead server's PGs will time out and file a report;
  // detection completes within roughly fail_timeout rather than much later.
  bed.RunFor(Millis(1200));
  EXPECT_GT(bed.manager(bed.LeaderManager()).view(), view_before);
}

}  // namespace
}  // namespace cheetah::cluster
