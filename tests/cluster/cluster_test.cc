#include <gtest/gtest.h>

#include "src/cluster/topology.h"
#include "src/common/random.h"
#include "tests/test_util.h"

namespace cheetah::cluster {
namespace {

TopologyMap MakeRandomTopology(uint64_t seed) {
  Rng rng(seed);
  TopologyMap map;
  map.view = rng.UniformRange(1, 100);
  map.pg_count = static_cast<uint32_t>(rng.UniformRange(4, 64));
  map.replication = static_cast<uint32_t>(rng.UniformRange(1, 3));
  const int metas = static_cast<int>(rng.UniformRange(1, 6));
  for (int i = 0; i < metas; ++i) {
    map.meta_crush.AddItem(100 + i, 1.0 + rng.NextDouble());
  }
  const int datas = static_cast<int>(rng.UniformRange(3, 8));
  PvId pv_id = 1;
  for (int d = 0; d < datas; ++d) {
    map.data_servers.push_back(200 + d);
    for (int p = 0; p < 4; ++p) {
      PhysicalVolume pv;
      pv.id = pv_id++;
      pv.data_server = 200 + d;
      pv.disk_index = static_cast<uint32_t>(p % 2);
      pv.healthy = rng.Bernoulli(0.9);
      map.pvs[pv.id] = pv;
    }
  }
  LvId lv_id = 1;
  auto pv_it = map.pvs.begin();
  while (std::distance(pv_it, map.pvs.end()) >= static_cast<int>(map.replication)) {
    LogicalVolume lv;
    lv.id = lv_id++;
    for (uint32_t r = 0; r < map.replication; ++r) {
      lv.replicas.push_back((pv_it++)->first);
    }
    lv.writable = rng.Bernoulli(0.8);
    lv.capacity_bytes = MiB(rng.UniformRange(16, 512));
    lv.block_size = 4096;
    map.lvs[lv.id] = lv;
  }
  PgId pg = 0;
  for (const auto& [id, lv] : map.lvs) {
    map.vgs[pg % map.pg_count].push_back(id);
    ++pg;
  }
  return map;
}

class TopologySerializeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopologySerializeProperty, RoundTripIsLossless) {
  TopologyMap map = MakeRandomTopology(GetParam());
  auto restored = TopologyMap::Deserialize(map.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->view, map.view);
  EXPECT_EQ(restored->pg_count, map.pg_count);
  EXPECT_EQ(restored->replication, map.replication);
  EXPECT_EQ(restored->data_servers, map.data_servers);
  ASSERT_EQ(restored->pvs.size(), map.pvs.size());
  for (const auto& [id, pv] : map.pvs) {
    const PhysicalVolume* r = restored->FindPv(id);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->data_server, pv.data_server);
    EXPECT_EQ(r->disk_index, pv.disk_index);
    EXPECT_EQ(r->healthy, pv.healthy);
  }
  ASSERT_EQ(restored->lvs.size(), map.lvs.size());
  for (const auto& [id, lv] : map.lvs) {
    const LogicalVolume* r = restored->FindLv(id);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->replicas, lv.replicas);
    EXPECT_EQ(r->writable, lv.writable);
    EXPECT_EQ(r->capacity_bytes, lv.capacity_bytes);
    EXPECT_EQ(r->block_size, lv.block_size);
  }
  EXPECT_EQ(restored->vgs, map.vgs);
  // And the CRUSH mapping computes identically after the round trip.
  for (PgId pg = 0; pg < map.pg_count; ++pg) {
    EXPECT_EQ(restored->MetaServersOf(pg), map.MetaServersOf(pg)) << "pg " << pg;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologySerializeProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(TopologyTest, DeserializeRejectsCorruption) {
  TopologyMap map = MakeRandomTopology(42);
  std::string data = map.Serialize();
  data[data.size() / 2] ^= 0x40;
  EXPECT_FALSE(TopologyMap::Deserialize(data).ok());
  EXPECT_FALSE(TopologyMap::Deserialize("").ok());
  EXPECT_FALSE(TopologyMap::Deserialize("garbage").ok());
}

TEST(TopologyTest, PgsOfIsConsistentWithMetaServersOf) {
  TopologyMap map = MakeRandomTopology(7);
  for (const auto& item : map.meta_crush.items()) {
    const auto node = static_cast<sim::NodeId>(item.id);
    auto pgs = map.PgsOf(node);
    for (PgId pg : pgs) {
      auto servers = map.MetaServersOf(pg);
      EXPECT_TRUE(std::find(servers.begin(), servers.end(), node) != servers.end());
    }
    // And PGs not in the list genuinely exclude the node.
    std::set<PgId> in(pgs.begin(), pgs.end());
    for (PgId pg = 0; pg < map.pg_count; ++pg) {
      if (!in.contains(pg)) {
        auto servers = map.MetaServersOf(pg);
        EXPECT_TRUE(std::find(servers.begin(), servers.end(), node) == servers.end());
      }
    }
  }
}

TEST(TopologyTest, PrimaryIsFirstOfReplicaSet) {
  TopologyMap map = MakeRandomTopology(11);
  for (PgId pg = 0; pg < map.pg_count; ++pg) {
    auto servers = map.MetaServersOf(pg);
    ASSERT_FALSE(servers.empty());
    EXPECT_EQ(map.PrimaryOf(pg), servers[0]);
    auto primaries = map.PrimaryPgsOf(servers[0]);
    EXPECT_TRUE(std::find(primaries.begin(), primaries.end(), pg) != primaries.end());
  }
}

TEST(TopologyTest, EmptyCrushPrimaryIsInvalid) {
  TopologyMap map;
  map.pg_count = 4;
  EXPECT_EQ(map.PrimaryOf(0), sim::kInvalidNode);
}

}  // namespace
}  // namespace cheetah::cluster
