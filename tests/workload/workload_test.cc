#include <gtest/gtest.h>

#include <map>

#include "src/core/testbed.h"
#include "src/workload/adapters.h"
#include "src/workload/generator.h"
#include "src/workload/runner.h"
#include "src/workload/stats.h"
#include "tests/test_util.h"

namespace cheetah::workload {
namespace {

TEST(StatsTest, LatencyRecorderMeanAndPercentiles) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) {
    rec.Record(Millis(i));
  }
  EXPECT_EQ(rec.count(), 100u);
  EXPECT_NEAR(rec.MeanMillis(), 50.5, 0.01);
  EXPECT_NEAR(rec.PercentileMillis(0.5), 51.0, 1.0);
  EXPECT_NEAR(rec.PercentileMillis(0.99), 100.0, 1.0);
}

TEST(StatsTest, EmptyRecorderIsZero) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_DOUBLE_EQ(rec.MeanMillis(), 0.0);
  EXPECT_DOUBLE_EQ(rec.PercentileMillis(0.99), 0.0);
}

TEST(StatsTest, ThroughputComputesRate) {
  Throughput tp;
  tp.ops = 5000;
  tp.interval = Seconds(2);
  EXPECT_DOUBLE_EQ(tp.OpsPerSec(), 2500.0);
}

TEST(StatsTest, TimeSeriesBuckets) {
  TimeSeries ts(Seconds(1));
  ts.Record(Millis(200), 3);
  ts.Record(Millis(800), 2);
  ts.Record(Millis(1500), 7);
  ASSERT_EQ(ts.buckets().size(), 2u);
  EXPECT_EQ(ts.buckets()[0], 5u);
  EXPECT_EQ(ts.buckets()[1], 7u);
}

TEST(GeneratorTest, FixedAndUniformSizes) {
  Rng rng(1);
  auto fixed = FixedSize(KiB(8));
  EXPECT_EQ(fixed(rng), KiB(8));
  auto uniform = UniformSize(KiB(4), KiB(512));
  for (int i = 0; i < 100; ++i) {
    const uint64_t s = uniform(rng);
    EXPECT_GE(s, KiB(4));
    EXPECT_LE(s, KiB(512));
  }
}

TEST(GeneratorTest, TraceSizeMatchesFig16b) {
  Rng rng(7);
  auto dist = TraceSize();
  std::map<int, int> buckets;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const uint64_t s = dist(rng);
    EXPECT_LE(s, KiB(512));
    buckets[static_cast<int>(s / KiB(64))]++;
  }
  // The 448-512KB bucket dominates at ~56%.
  EXPECT_NEAR(buckets[7] / static_cast<double>(n), 0.563, 0.03);
  // The 64-128KB bucket is the second mode at ~14%.
  EXPECT_NEAR(buckets[1] / static_cast<double>(n), 0.143, 0.03);
}

TEST(GeneratorTest, MixedWorkloadRespectsRatios) {
  Rng rng(3);
  NamePool pool("obj-");
  MixedWorkload mix(0.4, 0.1, FixedSize(KiB(8)), &pool);
  int puts = 0, gets = 0, dels = 0;
  for (int i = 0; i < 10000; ++i) {
    Op op = mix.Next(rng);
    switch (op.type) {
      case OpType::kPut:
        ++puts;
        pool.Add(op.name);
        break;
      case OpType::kGet:
        ++gets;
        break;
      case OpType::kDelete:
        ++dels;
        break;
    }
  }
  EXPECT_NEAR(puts / 10000.0, 0.4, 0.03);
  EXPECT_NEAR(dels / 10000.0, 0.1, 0.02);
  EXPECT_NEAR(gets / 10000.0, 0.5, 0.03);
}

TEST(GeneratorTest, MixedWorkloadFallsBackToPutWhenEmpty) {
  Rng rng(5);
  NamePool pool("x-");
  MixedWorkload mix(0.0, 0.0, FixedSize(1024), &pool);  // all gets...
  Op op = mix.Next(rng);
  EXPECT_EQ(op.type, OpType::kPut);  // ...but the pool is empty
}

TEST(GeneratorTest, NamePoolTakeRemoves) {
  Rng rng(9);
  NamePool pool("t-");
  for (int i = 0; i < 10; ++i) {
    pool.Add(pool.NextName());
  }
  EXPECT_EQ(pool.size(), 10u);
  std::string taken = pool.Take(rng);
  EXPECT_EQ(pool.size(), 9u);
  for (int i = 0; i < 9; ++i) {
    EXPECT_NE(pool.Sample(rng), taken);
  }
}

TEST(GeneratorTest, TraceOpRatiosShapedLikeFig16a) {
  auto days = TraceOpRatios(21);
  ASSERT_EQ(days.size(), 21u);
  for (const auto& d : days) {
    EXPECT_GT(d.put_ratio, d.get_ratio);  // writes dominate
    EXPECT_GT(d.delete_ratio, 0.1);       // deletes are substantial
    EXPECT_NEAR(d.put_ratio + d.get_ratio + d.delete_ratio, 1.0, 1e-9);
  }
}

class RunnerTest : public ::testing::Test {
 public:
  void SetUp() override {
    core::TestbedConfig config;
    config.meta_machines = 3;
    config.data_machines = 4;
    config.proxies = 2;
    config.pg_count = 8;
    config.disks_per_data_machine = 2;
    config.pvs_per_disk = 3;
    config.lv_capacity_bytes = MiB(256);
    bed_ = std::make_unique<core::Testbed>(std::move(config));
    ASSERT_TRUE(bed_->Boot().ok());
    for (int i = 0; i < bed_->num_proxies(); ++i) {
      stores_.push_back(std::make_unique<CheetahStore>(&bed_->proxy(i)));
      clients_.emplace_back(&bed_->proxy_machine(i).actor(), stores_.back().get());
    }
  }

  std::unique_ptr<core::Testbed> bed_;
  std::vector<std::unique_ptr<CheetahStore>> stores_;
  std::vector<std::pair<sim::Actor*, ObjectStore*>> clients_;
};

TEST_F(RunnerTest, RunsPutOnlyWorkload) {
  RunnerConfig config;
  config.concurrency = 10;
  config.total_ops = 200;
  Runner runner(bed_->loop(), clients_, config);
  NamePool pool("bench-");
  auto results = runner.Run([&pool](Rng& rng) {
    Op op;
    op.type = OpType::kPut;
    op.name = pool.NextName();
    op.size = KiB(8);
    return op;
  });
  EXPECT_EQ(results.put.count(), 200u);
  EXPECT_EQ(results.errors, 0u);
  EXPECT_GT(results.put.MeanMillis(), 0.0);
  EXPECT_GT(results.throughput.OpsPerSec(), 0.0);
}

TEST_F(RunnerTest, MixedWorkloadRunsCleanly) {
  RunnerConfig config;
  config.concurrency = 20;
  config.total_ops = 300;
  Runner runner(bed_->loop(), clients_, config);
  NamePool pool("mix-");
  MixedWorkload mix(0.5, 0.1, FixedSize(KiB(8)), &pool);
  auto results = runner.Run([&mix](Rng& rng) { return mix.Next(rng); },
                            [&pool](const std::string& name) { pool.Add(name); });
  EXPECT_EQ(results.errors, 0u);
  EXPECT_GT(results.put.count(), 0u);
  EXPECT_GT(results.get.count(), 0u);
  EXPECT_GT(results.del.count(), 0u);
}

TEST_F(RunnerTest, DurationBoundedRun) {
  RunnerConfig config;
  config.concurrency = 5;
  config.total_ops = 0;
  config.duration = Millis(500);
  const Nanos start = bed_->loop().Now();
  Runner runner(bed_->loop(), clients_, config);
  NamePool pool("dur-");
  auto results = runner.Run([&pool](Rng&) {
    Op op;
    op.type = OpType::kPut;
    op.name = pool.NextName();
    op.size = KiB(4);
    return op;
  });
  EXPECT_GT(results.put.count(), 0u);
  // Workers stop issuing after the deadline; in-flight ops drain shortly.
  EXPECT_LT(bed_->loop().Now() - start, Millis(500) + Seconds(1));
}

TEST_F(RunnerTest, PreloadPopulatesStore) {
  auto names = Preload(bed_->loop(), clients_, "pre-", 50, KiB(8));
  EXPECT_EQ(names.size(), 50u);
  auto got = bed_->GetObject(0, "pre-17");
  EXPECT_TRUE(got.ok());
}

}  // namespace
}  // namespace cheetah::workload
