// Shared test helpers.
//
// gtest's ASSERT_* macros expand to `return`, which is ill-formed inside a
// coroutine; these variants record the failure and co_return instead.
#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#define CO_ASSERT_TRUE(cond)                              \
  do {                                                    \
    if (!(cond)) {                                        \
      ADD_FAILURE() << "assertion failed: " #cond;        \
      co_return;                                          \
    }                                                     \
  } while (0)

#define CO_ASSERT_OK(expr)                                          \
  do {                                                              \
    const auto& _r = (expr);                                        \
    if (!_r.ok()) {                                                 \
      ADD_FAILURE() << #expr " failed: " << _r.status().ToString(); \
      co_return;                                                    \
    }                                                               \
  } while (0)

#define CO_ASSERT_STATUS_OK(expr)                          \
  do {                                                     \
    const ::cheetah::Status _s = (expr);                   \
    if (!_s.ok()) {                                        \
      ADD_FAILURE() << #expr " failed: " << _s.ToString(); \
      co_return;                                           \
    }                                                      \
  } while (0)

#define CO_ASSERT_EQ(a, b)                                               \
  do {                                                                   \
    if (!((a) == (b))) {                                                 \
      ADD_FAILURE() << "expected " #a " == " #b << " (" << (a) << " vs " \
                    << (b) << ")";                                       \
      co_return;                                                         \
    }                                                                    \
  } while (0)

#endif  // TESTS_TEST_UTIL_H_
