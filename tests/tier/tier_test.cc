// Storage-class tiering (src/tier): inline small objects, background
// demotion of cold replica objects to K+M erasure-coded stripes, degraded
// reads with reconstruction repair, and demotion racing foreground ops.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/common/crc32c.h"
#include "src/common/random.h"
#include "src/core/scrubber.h"
#include "src/core/testbed.h"
#include "src/tier/engine.h"
#include "src/tier/policy.h"
#include "src/tier/striper.h"

namespace cheetah::core {
namespace {

std::string RandomData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::string out(n, '\0');
  for (auto& c : out) {
    c = static_cast<char>(rng.Uniform(256));
  }
  return out;
}

// Enough PVs for 8 replica LVs (3 PVs each) plus 8 RS(2,1) stripes (3 PVs
// each): 4 machines x 2 disks x 6 PVs = 48.
TestbedConfig EcConfig() {
  TestbedConfig config;
  config.meta_machines = 3;
  config.data_machines = 4;
  config.proxies = 2;
  config.pg_count = 8;
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 6;
  config.lv_capacity_bytes = MiB(128);
  config.options.tier.ec_k = 2;
  config.options.tier.ec_m = 1;
  config.options.tier.min_ec_object_bytes = 4096;
  config.options.tier.demote_after = Millis(200);
  return config;
}

void TierAllNow(Testbed& bed) {
  auto pending = std::make_shared<int>(bed.num_meta());
  for (int i = 0; i < bed.num_meta(); ++i) {
    bed.meta_machine(i).actor().Spawn(
        [](MetaServer* server, std::shared_ptr<int> pending) -> sim::Task<> {
          co_await server->TierNow();
          --*pending;
        }(&bed.meta(i), pending));
  }
  while (*pending > 0 && bed.loop().RunOne()) {
  }
}

void ScrubAllNow(Testbed& bed) {
  auto pending = std::make_shared<int>(bed.num_meta());
  for (int i = 0; i < bed.num_meta(); ++i) {
    bed.meta_machine(i).actor().Spawn(
        [](MetaServer* server, std::shared_ptr<int> pending) -> sim::Task<> {
          co_await server->ScrubNow();
          --*pending;
        }(&bed.meta(i), pending));
  }
  while (*pending > 0 && bed.loop().RunOne()) {
  }
}

tier::TierEngine::Stats TierStats(Testbed& bed) {
  tier::TierEngine::Stats sum;
  for (int i = 0; i < bed.num_meta(); ++i) {
    auto s = bed.meta(i).tier_engine().stats();
    sum.scanned += s.scanned;
    sum.demotions += s.demotions;
    sum.demote_aborts += s.demote_aborts;
    sum.demote_failures += s.demote_failures;
    sum.bytes_demoted += s.bytes_demoted;
  }
  return sum;
}

uint64_t DataWrites(Testbed& bed) {
  uint64_t writes = 0;
  for (int i = 0; i < bed.num_data(); ++i) {
    writes += bed.data(i).stats().writes;
  }
  return writes;
}

TEST(TierPolicyTest, ClassAndDemotionRules) {
  TierOptions t;
  t.inline_threshold = 1024;
  t.ec_k = 4;
  t.ec_m = 2;
  t.min_ec_object_bytes = 8192;
  t.demote_after = Seconds(1);
  EXPECT_EQ(tier::ChooseClass(t, 100), StorageClass::kInline);
  EXPECT_EQ(tier::ChooseClass(t, 1024), StorageClass::kInline);
  EXPECT_EQ(tier::ChooseClass(t, 1025), StorageClass::kReplica);
  t.inline_threshold = 0;
  EXPECT_EQ(tier::ChooseClass(t, 100), StorageClass::kReplica);

  EXPECT_FALSE(tier::EligibleForDemotion(t, 8192, Nanos{0}, Millis(500)));  // hot
  EXPECT_TRUE(tier::EligibleForDemotion(t, 8192, Nanos{0}, Seconds(2)));
  EXPECT_FALSE(tier::EligibleForDemotion(t, 8191, Nanos{0}, Seconds(2)));  // small
  t.ec_k = 0;
  EXPECT_FALSE(tier::EligibleForDemotion(t, 8192, Nanos{0}, Seconds(2)));  // no EC
}

TEST(TierTest, InlinePutServedFromMetaXWithoutDataWrites) {
  TestbedConfig config = EcConfig();
  config.options.tier.inline_threshold = 2048;
  Testbed bed(std::move(config));
  ASSERT_TRUE(bed.Boot().ok());

  const std::string payload = RandomData(777, 11);
  const uint64_t writes_before = DataWrites(bed);
  ASSERT_TRUE(bed.PutObject(0, "tiny", payload).ok());
  EXPECT_EQ(DataWrites(bed), writes_before) << "inline put touched the data plane";
  EXPECT_EQ(bed.proxy(0).stats().inline_puts, 1u);

  // Both the putting proxy (cache hit) and a cold proxy (GetMeta carries the
  // payload) read it back byte-identically.
  for (int p = 0; p < 2; ++p) {
    auto got = bed.GetObject(p, "tiny");
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, payload);
  }
  EXPECT_EQ(DataWrites(bed), writes_before);

  // Above the threshold the replica path still runs.
  ASSERT_TRUE(bed.PutObject(0, "big", RandomData(8192, 12)).ok());
  EXPECT_GT(DataWrites(bed), writes_before);
  EXPECT_EQ(bed.proxy(0).stats().inline_puts, 1u);

  // Inline objects survive settle + scrub + delete like any other.
  bed.RunFor(Seconds(2));
  ScrubAllNow(bed);
  auto got = bed.GetObject(1, "tiny");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, payload);
  ASSERT_TRUE(bed.DeleteObject(0, "tiny").ok());
  EXPECT_TRUE(bed.GetObject(1, "tiny").status().IsNotFound());
}

TEST(TierTest, ColdObjectDemotesToEcAndReadsBack) {
  Testbed bed(EcConfig());
  ASSERT_TRUE(bed.Boot().ok());

  const std::string payload = RandomData(65536, 21);
  ASSERT_TRUE(bed.PutObject(0, "cold", payload).ok());
  bed.RunFor(Seconds(2));  // settle, and age past demote_after

  TierAllNow(bed);
  auto ts = TierStats(bed);
  EXPECT_EQ(ts.demotions, 1u);
  EXPECT_EQ(ts.bytes_demoted, payload.size());

  // Reads are byte-identical from both proxies: the putter's stale cached
  // replica metadata falls back to the authoritative EC record, and the cold
  // proxy reads the stripe directly.
  for (int p = 0; p < 2; ++p) {
    for (int trial = 0; trial < 3; ++trial) {
      auto got = bed.GetObject(p, "cold");
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, payload);
    }
  }
  EXPECT_EQ(bed.proxy(1).stats().ec_degraded_reads, 0u) << "healthy stripe read degraded";

  // A demoted object is not re-demoted, and the scrubber audits the stripe.
  TierAllNow(bed);
  EXPECT_EQ(TierStats(bed).demotions, 1u);
  ScrubAllNow(bed);
  uint64_t corrupt = 0;
  for (int i = 0; i < bed.num_meta(); ++i) {
    corrupt += bed.meta(i).scrubber().stats().corrupt_found;
  }
  EXPECT_EQ(corrupt, 0u);

  // Delete of an EC object sticks.
  ASSERT_TRUE(bed.DeleteObject(1, "cold").ok());
  EXPECT_TRUE(bed.GetObject(0, "cold").status().IsNotFound());
}

TEST(TierTest, DegradedReadReconstructsAndRepairsChunk) {
  Testbed bed(EcConfig());
  ASSERT_TRUE(bed.Boot().ok());

  const std::string payload = RandomData(65536, 31);
  ASSERT_TRUE(bed.PutObject(0, "striped", payload).ok());
  bed.RunFor(Seconds(2));
  TierAllNow(bed);
  ASSERT_EQ(TierStats(bed).demotions, 1u);

  // Corrupt every extent of exactly one stripe chunk (one PV of an ec_stripe
  // LV that actually holds data).
  const auto& topo = bed.meta(0).topology();
  int corrupted_chunks = 0;
  for (const auto& [lv_id, lv] : topo.lvs) {
    if (!lv.ec_stripe || corrupted_chunks > 0) {
      continue;
    }
    for (cluster::PvId pv_id : lv.replicas) {
      const cluster::PhysicalVolume* pv = topo.FindPv(pv_id);
      ASSERT_NE(pv, nullptr);
      for (int d = 0; d < bed.num_data(); ++d) {
        auto& machine = bed.data_machine(d);
        if (pv->data_server != machine.node_id()) {
          continue;
        }
        auto extents = machine.disk(pv->disk_index).ListVolumeExtents(pv->DeviceName());
        if (extents.empty()) {
          continue;
        }
        for (const auto& info : extents) {
          ASSERT_TRUE(machine.disk(pv->disk_index).CorruptExtent(pv->DeviceName(), info.offset));
        }
        ++corrupted_chunks;
        break;
      }
      if (corrupted_chunks > 0) {
        break;
      }
    }
  }
  ASSERT_EQ(corrupted_chunks, 1) << "no stripe chunk found to damage";

  // The get still returns the exact bytes (reconstruction from the k healthy
  // chunks) and spawns the background chunk rewrite.
  auto got = bed.GetObject(1, "striped");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, payload);
  const auto after_first = bed.proxy(1).stats();
  // The damaged chunk might be parity, in which case the fast path never saw
  // it; scrub it out below either way. If a data chunk was hit, the read was
  // degraded and repaired.
  if (after_first.ec_degraded_reads > 0) {
    EXPECT_GT(after_first.corrupt_replica_reads, 0u);
    bed.RunFor(Seconds(1));  // fire-and-forget repair lands
    EXPECT_GT(bed.proxy(1).stats().ec_chunk_repairs, 0u);
    auto again = bed.GetObject(1, "striped");
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, payload);
    EXPECT_EQ(bed.proxy(1).stats().ec_degraded_reads, after_first.ec_degraded_reads)
        << "chunk repair did not stick";
  }

  // The scrubber rebuilds whatever the reads did not touch; a second pass is
  // clean.
  ScrubAllNow(bed);
  bed.RunFor(Seconds(1));
  ScrubAllNow(bed);
  uint64_t corrupt_last = 0;
  for (int i = 0; i < bed.num_meta(); ++i) {
    corrupt_last += bed.meta(i).scrubber().stats().corrupt_found;
  }
  ScrubAllNow(bed);
  uint64_t corrupt_final = 0;
  for (int i = 0; i < bed.num_meta(); ++i) {
    corrupt_final += bed.meta(i).scrubber().stats().corrupt_found;
  }
  EXPECT_EQ(corrupt_final, corrupt_last);
  auto final_got = bed.GetObject(0, "striped");
  ASSERT_TRUE(final_got.ok());
  EXPECT_EQ(*final_got, payload);
}

// Demotion racing a delete: whichever side wins the metadata swap, the name
// ends up deleted, no reader ever sees foreign bytes, and the name is
// immediately reusable (mirrors ScrubRaceTest.ReadRepairRacingDeleteStaysConsistent).
TEST(TierRaceTest, DemotionRacingDeleteStaysConsistent) {
  Testbed bed(EcConfig());
  ASSERT_TRUE(bed.Boot().ok());

  const std::string payload = RandomData(65536, 41);
  ASSERT_TRUE(bed.PutObject(0, "victim", payload).ok());
  bed.RunFor(Seconds(2));

  // Kick the demotion scan and delete the object while the stripe build is
  // in flight; a reader hammers the name throughout.
  auto pending = std::make_shared<int>(bed.num_meta());
  for (int i = 0; i < bed.num_meta(); ++i) {
    bed.meta_machine(i).actor().Spawn(
        [](MetaServer* server, std::shared_ptr<int> pending) -> sim::Task<> {
          co_await server->TierNow();
          --*pending;
        }(&bed.meta(i), pending));
  }
  auto done = std::make_shared<int>(0);
  auto wrong_bytes = std::make_shared<int>(0);
  bed.RunOnProxy(0, [payload, done, wrong_bytes](ClientProxy& proxy) -> sim::Task<> {
    for (int i = 0; i < 10; ++i) {
      auto r = co_await proxy.Get("victim");
      if (r.ok() && *r != payload) {
        ++*wrong_bytes;  // silent corruption — never allowed
      }
      co_await sim::SleepFor(Millis(1));
    }
    ++*done;
  }, Nanos{0});
  bed.RunOnProxy(1, [done](ClientProxy& proxy) -> sim::Task<> {
    co_await sim::SleepFor(Millis(2));
    Status s = co_await proxy.Delete("victim");
    EXPECT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
    ++*done;
  }, Nanos{0});
  const Nanos deadline = bed.loop().Now() + Seconds(60);
  while ((*done < 2 || *pending > 0) && bed.loop().Now() < deadline && bed.loop().RunOne()) {
  }
  ASSERT_EQ(*done, 2);
  ASSERT_EQ(*pending, 0);
  EXPECT_EQ(*wrong_bytes, 0);
  bed.RunFor(Seconds(2));  // stragglers (revokes, repairs) land

  // The delete sticks everywhere.
  EXPECT_TRUE(bed.GetObject(0, "victim").status().IsNotFound());
  EXPECT_TRUE(bed.GetObject(1, "victim").status().IsNotFound());

  // The name is reusable and the new bytes win.
  const std::string reborn = RandomData(32768, 42);
  ASSERT_TRUE(bed.PutObject(1, "victim", reborn).ok());
  for (int p = 0; p < 2; ++p) {
    auto got = bed.GetObject(p, "victim");
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, reborn);
  }

  // Converged: two scrub passes, the second finds nothing new.
  bed.RunFor(Seconds(2));
  ScrubAllNow(bed);
  uint64_t corrupt_before = 0;
  for (int i = 0; i < bed.num_meta(); ++i) {
    corrupt_before += bed.meta(i).scrubber().stats().corrupt_found;
  }
  ScrubAllNow(bed);
  uint64_t corrupt_after = 0;
  for (int i = 0; i < bed.num_meta(); ++i) {
    corrupt_after += bed.meta(i).scrubber().stats().corrupt_found;
  }
  EXPECT_EQ(corrupt_after, corrupt_before);
}

// Demotion racing delete + recreate of the same name: the swap's re-check
// (checksum/reqid/lvid) or the post-persist audit must notice the recreate,
// so the new object's bytes always win and the stale stripe is revoked.
TEST(TierRaceTest, DemotionRacingRecreateKeepsNewBytes) {
  Testbed bed(EcConfig());
  ASSERT_TRUE(bed.Boot().ok());

  const std::string v1 = RandomData(65536, 51);
  const std::string v2 = RandomData(32768, 52);
  ASSERT_TRUE(bed.PutObject(0, "obj", v1).ok());
  bed.RunFor(Seconds(2));

  auto pending = std::make_shared<int>(bed.num_meta());
  for (int i = 0; i < bed.num_meta(); ++i) {
    bed.meta_machine(i).actor().Spawn(
        [](MetaServer* server, std::shared_ptr<int> pending) -> sim::Task<> {
          co_await server->TierNow();
          --*pending;
        }(&bed.meta(i), pending));
  }
  auto done = std::make_shared<int>(0);
  bed.RunOnProxy(1, [&v2, done](ClientProxy& proxy) -> sim::Task<> {
    co_await sim::SleepFor(Millis(2));
    Status del = co_await proxy.Delete("obj");
    EXPECT_TRUE(del.ok() || del.IsNotFound()) << del.ToString();
    Status put = co_await proxy.Put("obj", v2);
    EXPECT_TRUE(put.ok()) << put.ToString();
    ++*done;
  }, Nanos{0});
  const Nanos deadline = bed.loop().Now() + Seconds(60);
  while ((*done < 1 || *pending > 0) && bed.loop().Now() < deadline && bed.loop().RunOne()) {
  }
  ASSERT_EQ(*done, 1);
  ASSERT_EQ(*pending, 0);
  bed.RunFor(Seconds(2));

  // v2 is what every proxy reads, repeatedly (random replica choice).
  for (int p = 0; p < 2; ++p) {
    for (int trial = 0; trial < 4; ++trial) {
      auto got = bed.GetObject(p, "obj");
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, v2);
    }
  }

  // Let v2 go cold and demote it too: the pipeline works end-to-end on a
  // name that went through the race.
  bed.RunFor(Seconds(1));
  TierAllNow(bed);
  auto got = bed.GetObject(0, "obj");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, v2);

  ScrubAllNow(bed);
  uint64_t corrupt_before = 0;
  for (int i = 0; i < bed.num_meta(); ++i) {
    corrupt_before += bed.meta(i).scrubber().stats().corrupt_found;
  }
  ScrubAllNow(bed);
  uint64_t corrupt_after = 0;
  for (int i = 0; i < bed.num_meta(); ++i) {
    corrupt_after += bed.meta(i).scrubber().stats().corrupt_found;
  }
  EXPECT_EQ(corrupt_after, corrupt_before);
}

// The periodic driver: with tier_scan_interval set, cold objects demote with
// no manual kick.
TEST(TierTest, PeriodicScanDemotesWhenEnabled) {
  TestbedConfig config = EcConfig();
  config.options.tier.tier_scan_interval = Millis(500);
  Testbed bed(std::move(config));
  ASSERT_TRUE(bed.Boot().ok());

  const std::string payload = RandomData(65536, 61);
  ASSERT_TRUE(bed.PutObject(0, "auto-cold", payload).ok());
  bed.RunFor(Seconds(4));
  EXPECT_GE(TierStats(bed).demotions, 1u);
  auto got = bed.GetObject(1, "auto-cold");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, payload);
}

}  // namespace
}  // namespace cheetah::core
