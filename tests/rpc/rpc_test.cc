#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/rpc/node.h"

namespace cheetah::rpc {
namespace {

using sim::EventLoop;
using sim::Machine;
using sim::MachineParams;
using sim::Network;
using sim::NodeId;
using sim::Task;

// All message types carry a user-declared constructor so they are not
// aggregates (see the RpcRequest concept / GCC 12 caution in src/sim/task.h).
struct EchoReply {
  EchoReply() = default;
  explicit EchoReply(std::string t) : text(std::move(t)) {}
  std::string text;
  size_t wire_size() const { return text.size() + 8; }
};
struct EchoRequest {
  using Response = EchoReply;
  EchoRequest() = default;
  explicit EchoRequest(std::string t) : text(std::move(t)) {}
  std::string text;
  size_t wire_size() const { return text.size() + 8; }
};

struct SlowReply {
  SlowReply() = default;
  size_t wire_size() const { return 8; }
};
struct SlowRequest {
  using Response = SlowReply;
  SlowRequest() = default;
  explicit SlowRequest(Nanos d) : delay(d) {}
  Nanos delay = 0;
  size_t wire_size() const { return 16; }
};

struct NoteReply {
  NoteReply() = default;
  size_t wire_size() const { return 8; }
};
struct NoteRequest {
  using Response = NoteReply;
  NoteRequest() = default;
  explicit NoteRequest(int v) : value(v) {}
  int value = 0;
  size_t wire_size() const { return 16; }
};

class RpcTest : public ::testing::Test {
 protected:
  RpcTest()
      : net_(loop_, sim::NetParams{}),
        server_machine_(loop_, 1, "server", MachineParams{}),
        client_machine_(loop_, 2, "client", MachineParams{}),
        server_(server_machine_, net_),
        client_(client_machine_, net_) {
    server_.Attach();
    client_.Attach();
  }

  EventLoop loop_;
  Network net_;
  Machine server_machine_;
  Machine client_machine_;
  Node server_;
  Node client_;
};

TEST_F(RpcTest, RoundTrip) {
  server_.Serve<EchoRequest>([](NodeId src, EchoRequest req) -> Task<Result<EchoReply>> {
    co_return EchoReply("echo:" + req.text);
  });
  std::string got;
  client_machine_.actor().Spawn([](Node* c, std::string* out) -> Task<> {
    auto r = co_await c->Call(1, EchoRequest("hi"), Millis(100));
    *out = r.ok() ? r->text : r.status().ToString();
  }(&client_, &got));
  loop_.Run();
  EXPECT_EQ(got, "echo:hi");
}

TEST_F(RpcTest, ErrorStatusPropagates) {
  server_.Serve<EchoRequest>([](NodeId, EchoRequest) -> Task<Result<EchoReply>> {
    co_return Status::NotFound("nope");
  });
  Status got = Status::Ok();
  client_machine_.actor().Spawn([](Node* c, Status* out) -> Task<> {
    auto r = co_await c->Call(1, EchoRequest("x"), Millis(100));
    *out = r.status();
  }(&client_, &got));
  loop_.Run();
  EXPECT_TRUE(got.IsNotFound());
}

TEST_F(RpcTest, TimeoutWhenServerDead) {
  server_.Serve<EchoRequest>([](NodeId, EchoRequest req) -> Task<Result<EchoReply>> {
    co_return EchoReply(req.text);
  });
  server_machine_.CrashProcess();
  server_.Detach();
  Status got = Status::Ok();
  Nanos when = 0;
  client_machine_.actor().Spawn([](Node* c, sim::Actor* a, Status* out, Nanos* w) -> Task<> {
    auto r = co_await c->Call(1, EchoRequest("x"), Millis(50));
    *out = r.status();
    *w = a->Now();
  }(&client_, &client_machine_.actor(), &got, &when));
  loop_.Run();
  EXPECT_TRUE(got.IsTimeout());
  EXPECT_EQ(when, Millis(50));
}

TEST_F(RpcTest, TimeoutWhenHandlerTooSlow) {
  server_.Serve<SlowRequest>([](NodeId, SlowRequest req) -> Task<Result<SlowReply>> {
    co_await sim::SleepFor(req.delay);
    co_return SlowReply{};
  });
  Status got = Status::Ok();
  client_machine_.actor().Spawn([](Node* c, Status* out) -> Task<> {
    auto r = co_await c->Call(1, SlowRequest(Millis(200)), Millis(20));
    *out = r.status();
  }(&client_, &got));
  loop_.Run();
  EXPECT_TRUE(got.IsTimeout());
}

TEST_F(RpcTest, ServerCrashMidHandlerTimesOutCaller) {
  server_.Serve<SlowRequest>([](NodeId, SlowRequest req) -> Task<Result<SlowReply>> {
    co_await sim::SleepFor(req.delay);
    co_return SlowReply{};
  });
  Status got = Status::Ok();
  client_machine_.actor().Spawn([](Node* c, Status* out) -> Task<> {
    auto r = co_await c->Call(1, SlowRequest(Millis(30)), Millis(100));
    *out = r.status();
  }(&client_, &got));
  loop_.RunUntil(Millis(10));  // handler is mid-sleep
  server_machine_.CrashProcess();
  server_.Detach();
  loop_.Run();
  EXPECT_TRUE(got.IsTimeout());
}

TEST_F(RpcTest, LateReplyAfterTimeoutIsDropped) {
  server_.Serve<SlowRequest>([](NodeId, SlowRequest req) -> Task<Result<SlowReply>> {
    co_await sim::SleepFor(req.delay);
    co_return SlowReply{};
  });
  obs::Counter* dropped = obs::Registry::Global().counter("rpc.late_replies_dropped");
  const uint64_t dropped_before = dropped->value();
  Status got = Status::Ok();
  client_machine_.actor().Spawn([](Node* c, Status* out) -> Task<> {
    auto r = co_await c->Call(1, SlowRequest(Millis(80)), Millis(20));
    *out = r.status();
  }(&client_, &got));
  loop_.RunUntil(Millis(40));  // past the timeout, before the reply exists
  EXPECT_TRUE(got.IsTimeout());
  EXPECT_EQ(client_.pending_calls(), 0u);  // the timeout erased the pending slot
  loop_.Run();  // the reply lands at ~80ms and must be dropped without crashing
  EXPECT_EQ(client_.pending_calls(), 0u);
  EXPECT_EQ(dropped->value(), dropped_before + 1);
}

TEST_F(RpcTest, NotifyIsFireAndForget) {
  int received = 0;
  server_.Serve<NoteRequest>([&](NodeId, NoteRequest req) -> Task<Result<NoteReply>> {
    received += req.value;
    co_return NoteReply{};
  });
  client_.Notify(1, NoteRequest(5));
  client_.Notify(1, NoteRequest(7));
  loop_.Run();
  EXPECT_EQ(received, 12);
}

TEST_F(RpcTest, ConcurrentCallsKeepIdentity) {
  server_.Serve<SlowRequest>([](NodeId, SlowRequest req) -> Task<Result<SlowReply>> {
    co_await sim::SleepFor(req.delay);
    co_return SlowReply{};
  });
  server_.Serve<EchoRequest>([](NodeId, EchoRequest req) -> Task<Result<EchoReply>> {
    co_return EchoReply(req.text);
  });
  std::string fast_result;
  Nanos fast_done = 0, slow_done = 0;
  client_machine_.actor().Spawn([](Node* c, sim::Actor* a, Nanos* out) -> Task<> {
    (void)co_await c->Call(1, SlowRequest(Millis(50)), Millis(500));
    *out = a->Now();
  }(&client_, &client_machine_.actor(), &slow_done));
  client_machine_.actor().Spawn(
      [](Node* c, sim::Actor* a, std::string* out, Nanos* t) -> Task<> {
        auto r = co_await c->Call(1, EchoRequest("fast"), Millis(500));
        *out = r.ok() ? r->text : "ERR";
        *t = a->Now();
      }(&client_, &client_machine_.actor(), &fast_result, &fast_done));
  loop_.Run();
  EXPECT_EQ(fast_result, "fast");
  EXPECT_LT(fast_done, slow_done);  // replies matched to the right callers
}

TEST_F(RpcTest, RestartedServerServesAgain) {
  server_.Serve<EchoRequest>([](NodeId, EchoRequest req) -> Task<Result<EchoReply>> {
    co_return EchoReply("v2:" + req.text);
  });
  server_machine_.CrashProcess();
  server_.Detach();
  server_machine_.Restart();
  server_.Attach();  // handlers persist across Detach/Attach
  std::string got;
  client_machine_.actor().Spawn([](Node* c, std::string* out) -> Task<> {
    auto r = co_await c->Call(1, EchoRequest("x"), Millis(100));
    *out = r.ok() ? r->text : "ERR";
  }(&client_, &got));
  loop_.Run();
  EXPECT_EQ(got, "v2:x");
}

}  // namespace
}  // namespace cheetah::rpc
