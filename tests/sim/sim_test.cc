#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/sim/actor.h"
#include "src/sim/event_loop.h"
#include "src/sim/machine.h"
#include "src/sim/network.h"
#include "src/sim/resource.h"
#include "src/sim/storage.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace cheetah::sim {
namespace {

TEST(EventLoopTest, AdvancesVirtualTime) {
  EventLoop loop;
  Nanos seen = 0;
  loop.ScheduleAt(Millis(5), [&] { seen = loop.Now(); });
  loop.Run();
  EXPECT_EQ(seen, Millis(5));
  EXPECT_EQ(loop.Now(), Millis(5));
}

TEST(EventLoopTest, FifoWithinSameTimestamp) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(10, [&] { order.push_back(1); });
  loop.ScheduleAt(10, [&] { order.push_back(2); });
  loop.ScheduleAt(5, [&] { order.push_back(0); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int ran = 0;
  loop.ScheduleAt(10, [&] { ++ran; });
  loop.ScheduleAt(100, [&] { ++ran; });
  loop.RunUntil(50);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.Now(), 50u);
  loop.Run();
  EXPECT_EQ(ran, 2);
}

TEST(EventLoopTest, NestedScheduling) {
  EventLoop loop;
  int depth = 0;
  loop.ScheduleAt(1, [&] {
    loop.ScheduleAfter(1, [&] {
      loop.ScheduleAfter(1, [&] { depth = 3; });
    });
  });
  loop.Run();
  EXPECT_EQ(depth, 3);
  EXPECT_EQ(loop.Now(), 3u);
}

TEST(TaskTest, SimpleCoroutineCompletes) {
  EventLoop loop;
  Actor actor(loop);
  int result = 0;
  actor.Spawn([](int* out) -> Task<> {
    auto inner = []() -> Task<int> { co_return 21; };
    int a = co_await inner();
    int b = co_await inner();
    *out = a + b;
  }(&result));
  loop.Run();
  EXPECT_EQ(result, 42);
}

TEST(TaskTest, SleepAdvancesTime) {
  EventLoop loop;
  Actor actor(loop);
  Nanos woke = 0;
  actor.Spawn([](Actor* a, Nanos* out) -> Task<> {
    co_await SleepFor(Millis(3));
    co_await SleepFor(Millis(4));
    *out = a->Now();
  }(&actor, &woke));
  loop.Run();
  EXPECT_EQ(woke, Millis(7));
}

TEST(TaskTest, NestedTasksPropagateActor) {
  EventLoop loop;
  Actor actor(loop);
  Actor* observed = nullptr;
  actor.Spawn([](Actor** out) -> Task<> {
    auto inner = [](Actor** out) -> Task<> {
      co_await SleepFor(1);  // requires actor propagation to work
      *out = co_await CurrentActor{};
    };
    co_await inner(out);
  }(&observed));
  loop.Run();
  EXPECT_EQ(observed, &actor);
}

TEST(ActorTest, KillStopsCoroutines) {
  EventLoop loop;
  Actor actor(loop);
  int progress = 0;
  actor.Spawn([](int* p) -> Task<> {
    *p = 1;
    co_await SleepFor(Millis(10));
    *p = 2;  // must never run
  }(&progress));
  loop.RunUntil(Millis(1));
  actor.Kill();
  loop.Run();
  EXPECT_EQ(progress, 1);
}

TEST(ActorTest, KillRunsDestructorsOfFrames) {
  EventLoop loop;
  Actor actor(loop);
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> weak = token;
  actor.Spawn([](std::shared_ptr<int> t) -> Task<> {
    co_await SleepFor(Millis(10));
    (void)*t;
  }(std::move(token)));
  loop.RunUntil(Millis(1));
  EXPECT_FALSE(weak.expired());  // frame holds the token
  actor.Kill();
  EXPECT_TRUE(weak.expired());  // frame destroyed, token released
}

TEST(ActorTest, ReviveAllowsNewWork) {
  EventLoop loop;
  Actor actor(loop);
  actor.Kill();
  actor.Revive();
  int ran = 0;
  actor.Spawn([](int* r) -> Task<> {
    *r = 1;
    co_return;
  }(&ran));
  loop.Run();
  EXPECT_EQ(ran, 1);
}

TEST(ActorTest, StaleTimerAfterKillIsIgnored) {
  EventLoop loop;
  Actor actor(loop);
  int hits = 0;
  actor.Spawn([](int* h) -> Task<> {
    co_await SleepFor(Millis(5));
    ++*h;
  }(&hits));
  actor.Kill();
  actor.Revive();
  actor.Spawn([](int* h) -> Task<> {
    co_await SleepFor(Millis(5));
    *h += 10;
  }(&hits));
  loop.Run();
  EXPECT_EQ(hits, 10);  // only the post-revive coroutine ran
}

TEST(SyncTest, EventWakesWaiter) {
  EventLoop loop;
  Actor actor(loop);
  Event event;
  int stage = 0;
  actor.Spawn([](Event* e, int* s) -> Task<> {
    *s = 1;
    co_await e->Wait();
    *s = 2;
  }(&event, &stage));
  loop.Run();
  EXPECT_EQ(stage, 1);
  event.Set();
  loop.Run();
  EXPECT_EQ(stage, 2);
}

TEST(SyncTest, WaitAfterSetCompletesImmediately) {
  EventLoop loop;
  Actor actor(loop);
  Event event;
  event.Set();
  int done = 0;
  actor.Spawn([](Event* e, int* d) -> Task<> {
    co_await e->Wait();
    *d = 1;
  }(&event, &done));
  loop.Run();
  EXPECT_EQ(done, 1);
}

TEST(SyncTest, TimedWaitTimesOut) {
  EventLoop loop;
  Actor actor(loop);
  Event event;
  bool fired = true;
  Nanos when = 0;
  actor.Spawn([](Actor* a, Event* e, bool* f, Nanos* w) -> Task<> {
    *f = co_await e->TimedWait(Millis(10));
    *w = a->Now();
  }(&actor, &event, &fired, &when));
  loop.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(when, Millis(10));
}

TEST(SyncTest, TimedWaitSeesEvent) {
  EventLoop loop;
  Actor actor(loop);
  Event event;
  bool fired = false;
  Nanos woke = 0;
  actor.Spawn([](Actor* a, Event* e, bool* f, Nanos* w) -> Task<> {
    *f = co_await e->TimedWait(Millis(10));
    *w = a->Now();
  }(&actor, &event, &fired, &woke));
  loop.ScheduleAt(Millis(2), [&] { event.Set(); });
  loop.Run();
  EXPECT_TRUE(fired);
  EXPECT_LT(woke, Millis(10));  // woke on the event, not the timeout
}

TEST(SyncTest, LatchCountsDown) {
  EventLoop loop;
  Actor actor(loop);
  Latch latch(3);
  int done = 0;
  actor.Spawn([](Latch* l, int* d) -> Task<> {
    co_await l->Wait();
    *d = 1;
  }(&latch, &done));
  loop.Run();
  latch.CountDown();
  latch.CountDown();
  loop.Run();
  EXPECT_EQ(done, 0);
  latch.CountDown();
  loop.Run();
  EXPECT_EQ(done, 1);
}

TEST(SyncTest, QueueDeliversInOrder) {
  EventLoop loop;
  Actor actor(loop);
  Queue<int> queue;
  std::vector<int> got;
  actor.Spawn([](Queue<int>* q, std::vector<int>* out) -> Task<> {
    for (int i = 0; i < 3; ++i) {
      out->push_back(co_await q->Pop());
    }
  }(&queue, &got));
  queue.Push(1);
  queue.Push(2);
  loop.Run();
  queue.Push(3);
  loop.Run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(SyncTest, WhenAllJoinsResults) {
  EventLoop loop;
  Actor actor(loop);
  std::vector<int> results;
  actor.Spawn([](std::vector<int>* out) -> Task<> {
    auto make = [](Nanos d, int v) -> Task<int> {
      co_await SleepFor(d);
      co_return v;
    };
    std::vector<Task<int>> tasks;
    tasks.push_back(make(Millis(3), 30));
    tasks.push_back(make(Millis(1), 10));
    tasks.push_back(make(Millis(2), 20));
    *out = co_await WhenAll(std::move(tasks));
  }(&results));
  loop.Run();
  EXPECT_EQ(results, (std::vector<int>{30, 10, 20}));
  EXPECT_EQ(loop.Now(), Millis(3));  // parallel, not sequential (6ms)
}

TEST(ResourceTest, SingleServerSerializes) {
  EventLoop loop;
  Actor actor(loop);
  Resource res(loop, 1);
  std::vector<Nanos> done;
  for (int i = 0; i < 3; ++i) {
    actor.Spawn([](Actor* a, Resource* r, std::vector<Nanos>* out) -> Task<> {
      co_await r->Use(Millis(10));
      out->push_back(a->Now());
    }(&actor, &res, &done));
  }
  loop.Run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], Millis(10));
  EXPECT_EQ(done[1], Millis(20));
  EXPECT_EQ(done[2], Millis(30));
}

TEST(ResourceTest, ParallelServersOverlap) {
  EventLoop loop;
  Actor actor(loop);
  Resource res(loop, 2);
  std::vector<Nanos> done;
  for (int i = 0; i < 4; ++i) {
    actor.Spawn([](Actor* a, Resource* r, std::vector<Nanos>* out) -> Task<> {
      co_await r->Use(Millis(10));
      out->push_back(a->Now());
    }(&actor, &res, &done));
  }
  loop.Run();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_EQ(done[0], Millis(10));
  EXPECT_EQ(done[1], Millis(10));
  EXPECT_EQ(done[2], Millis(20));
  EXPECT_EQ(done[3], Millis(20));
}

class StorageTest : public ::testing::Test {
 protected:
  EventLoop loop_;
  Actor actor_{loop_};
  Storage storage_{loop_, DiskParams{}};

  void RunTask(Task<> t) {
    actor_.Spawn(std::move(t));
    loop_.Run();
  }
};

TEST_F(StorageTest, AppendAndReadBack) {
  std::string got;
  RunTask([](Storage* s, std::string* out) -> Task<> {
    (void)co_await s->Append("wal", "hello ", true);
    (void)co_await s->Append("wal", "world", true);
    auto r = co_await s->ReadFile("wal");
    *out = r.ok() ? *r : "ERR";
  }(&storage_, &got));
  EXPECT_EQ(got, "hello world");
}

TEST_F(StorageTest, ReadAtSlices) {
  std::string got;
  RunTask([](Storage* s, std::string* out) -> Task<> {
    (void)co_await s->Append("f", "0123456789", true);
    auto r = co_await s->ReadAt("f", 3, 4);
    *out = r.ok() ? *r : "ERR";
  }(&storage_, &got));
  EXPECT_EQ(got, "3456");
}

TEST_F(StorageTest, PowerLossDropsUnsyncedTail) {
  std::string got;
  RunTask([](Storage* s, std::string* out) -> Task<> {
    (void)co_await s->Append("wal", "durable|", true);
    (void)co_await s->Append("wal", "volatile", false);
    s->PowerLoss();
    auto r = co_await s->ReadFile("wal");
    *out = r.ok() ? *r : "ERR";
  }(&storage_, &got));
  EXPECT_EQ(got, "durable|");
}

TEST_F(StorageTest, PowerLossDropsNeverSyncedFile) {
  bool exists = true;
  RunTask([](Storage* s, bool* out) -> Task<> {
    (void)co_await s->Append("tmp", "data", false);
    s->PowerLoss();
    *out = s->FileExists("tmp");
  }(&storage_, &exists));
  EXPECT_FALSE(exists);
}

TEST_F(StorageTest, WriteFileReplaces) {
  std::string got;
  RunTask([](Storage* s, std::string* out) -> Task<> {
    (void)co_await s->WriteFile("m", "v1", true);
    (void)co_await s->WriteFile("m", "version2", true);
    auto r = co_await s->ReadFile("m");
    *out = r.ok() ? *r : "ERR";
  }(&storage_, &got));
  EXPECT_EQ(got, "version2");
}

TEST_F(StorageTest, ListFilesByPrefix) {
  RunTask([](Storage* s) -> Task<> {
    (void)co_await s->Append("sst_1", "a", true);
    (void)co_await s->Append("sst_2", "b", true);
    (void)co_await s->Append("wal_1", "c", true);
  }(&storage_));
  EXPECT_EQ(storage_.ListFiles("sst_").size(), 2u);
  EXPECT_EQ(storage_.ListFiles("wal_").size(), 1u);
}

TEST_F(StorageTest, BlockVolumeRoundTrip) {
  std::string got;
  uint32_t crc = 0;
  RunTask([](Storage* s, std::string* out, uint32_t* crc_out) -> Task<> {
    (void)co_await s->WriteBlocks("vol0", 4096, "blockdata", 77);
    auto r = co_await s->ReadBlocks("vol0", 4096, 9);
    *out = r.ok() ? *r : "ERR";
    auto p = co_await s->ProbeChecksum("vol0", 4096);
    *crc_out = p.ok() ? *p : 0;
  }(&storage_, &got, &crc));
  EXPECT_EQ(got, "blockdata");
  EXPECT_EQ(crc, 77u);
}

TEST_F(StorageTest, BlockVolumesSurvivePowerLoss) {
  std::string got;
  RunTask([](Storage* s, std::string* out) -> Task<> {
    (void)co_await s->WriteBlocks("vol0", 0, "persist", 1);
    s->PowerLoss();
    auto r = co_await s->ReadBlocks("vol0", 0, 7);
    *out = r.ok() ? *r : "ERR";
  }(&storage_, &got));
  EXPECT_EQ(got, "persist");
}

TEST_F(StorageTest, DiscardFreesAccounting) {
  RunTask([](Storage* s) -> Task<> {
    (void)co_await s->WriteBlocks("vol0", 0, "aaaa", 1);
    (void)co_await s->WriteBlocks("vol0", 100, "bbbb", 2);
  }(&storage_));
  EXPECT_EQ(storage_.VolumeBytesUsed("vol0"), 8u);
  storage_.DiscardBlocks("vol0", 0);
  EXPECT_EQ(storage_.VolumeBytesUsed("vol0"), 4u);
}

TEST_F(StorageTest, WriteLatencyScalesWithSize) {
  Nanos small_done = 0, large_done = 0;
  actor_.Spawn([](Actor* a, Storage* s, Nanos* out) -> Task<> {
    (void)co_await s->Append("small", std::string(4096, 'x'), true);
    *out = a->Now();
  }(&actor_, &storage_, &small_done));
  loop_.Run();
  EventLoop loop2;
  Actor actor2(loop2);
  Storage storage2(loop2, DiskParams{});
  actor2.Spawn([](Actor* a, Storage* s, Nanos* out) -> Task<> {
    (void)co_await s->Append("large", std::string(4 * 1024 * 1024, 'x'), true);
    *out = a->Now();
  }(&actor2, &storage2, &large_done));
  loop2.Run();
  EXPECT_GT(large_done, small_done * 10);
}

TEST(NetworkTest, DeliversWithLatency) {
  EventLoop loop;
  Network net(loop, NetParams{});
  Nanos arrived = 0;
  net.Register(1, [](auto...) {});
  net.Register(2, [&](NodeId src, sim::AnyMsg msg, size_t bytes) { arrived = loop.Now(); });
  net.Send(1, 2, std::string("hi"), 100);
  loop.Run();
  EXPECT_GE(arrived, Micros(60));
}

TEST(NetworkTest, DropsToUnregistered) {
  EventLoop loop;
  Network net(loop, NetParams{});
  net.Register(1, [](auto...) {});
  int delivered = 0;
  net.Send(1, 9, std::string("hi"), 100);
  loop.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.messages_dropped(), 1u);
}

TEST(NetworkTest, PartitionBlocksBothDirections) {
  EventLoop loop;
  Network net(loop, NetParams{});
  int delivered = 0;
  net.Register(1, [&](auto...) { ++delivered; });
  net.Register(2, [&](auto...) { ++delivered; });
  net.SetPartitioned(1, 2, true);
  net.Send(1, 2, 0, 10);
  net.Send(2, 1, 0, 10);
  loop.Run();
  EXPECT_EQ(delivered, 0);
  net.SetPartitioned(1, 2, false);
  net.Send(1, 2, 0, 10);
  loop.Run();
  EXPECT_EQ(delivered, 1);
}

TEST(NetworkTest, BandwidthSerializesLargeSends) {
  EventLoop loop;
  NetParams params;
  params.nic_lanes = 1;
  params.bw_bytes_per_sec = 1.25e9;  // pin: the test asserts exact timing
  Network net(loop, params);
  std::vector<Nanos> arrivals;
  net.Register(1, [](auto...) {});
  net.Register(2, [&](auto...) { arrivals.push_back(loop.Now()); });
  // Two 1.25MB messages on a 1.25GB/s NIC: 1ms serialization each.
  net.Send(1, 2, 0, 1250000);
  net.Send(1, 2, 0, 1250000);
  loop.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GE(arrivals[1] - arrivals[0], Millis(1) - Micros(10));
}

TEST(MachineTest, CrashAndRestart) {
  EventLoop loop;
  Machine m(loop, 1, "m1", MachineParams{});
  int progress = 0;
  m.actor().Spawn([](int* p) -> Task<> {
    *p = 1;
    co_await SleepFor(Millis(100));
    *p = 2;
  }(&progress));
  loop.RunUntil(Millis(1));
  m.CrashProcess();
  EXPECT_FALSE(m.alive());
  m.Restart();
  EXPECT_TRUE(m.alive());
  loop.Run();
  EXPECT_EQ(progress, 1);
}

TEST(MachineTest, PowerFailureDropsUnsynced) {
  EventLoop loop;
  Machine m(loop, 1, "m1", MachineParams{});
  m.actor().Spawn([](Machine* mm) -> Task<> {
    (void)co_await mm->disk().Append("f", "synced", true);
    (void)co_await mm->disk().Append("f", "unsynced", false);
  }(&m));
  loop.Run();
  m.PowerFailure();
  EXPECT_EQ(m.disk().FileSize("f"), 6u);
}

}  // namespace
}  // namespace cheetah::sim
