// Additional simulator coverage: mailbox multi-consumer behavior, void
// joins, loopback delivery, file-vs-volume bandwidth separation, and the
// open-queue resource model under bursts.
#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/sim/actor.h"
#include "src/sim/event_loop.h"
#include "src/sim/network.h"
#include "src/sim/storage.h"
#include "src/sim/sync.h"

namespace cheetah::sim {
namespace {

TEST(SyncExtraTest, QueueFansOutToMultipleConsumers) {
  EventLoop loop;
  Actor actor(loop);
  Queue<int> queue;
  std::vector<int> got;
  for (int c = 0; c < 3; ++c) {
    actor.Spawn([](Queue<int>* q, std::vector<int>* out) -> Task<> {
      out->push_back(co_await q->Pop());
    }(&queue, &got));
  }
  loop.Run();
  EXPECT_TRUE(got.empty());
  for (int i = 1; i <= 3; ++i) {
    queue.Push(i * 10);
  }
  loop.Run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0] + got[1] + got[2], 60);
}

TEST(SyncExtraTest, WhenAllVoidJoins) {
  EventLoop loop;
  Actor actor(loop);
  int completed = 0;
  Nanos finished = 0;
  actor.Spawn([](Actor* a, int* completed, Nanos* finished) -> Task<> {
    auto work = [](Nanos d, int* c) -> Task<> {
      co_await SleepFor(d);
      ++*c;
    };
    std::vector<Task<>> tasks;
    tasks.push_back(work(Millis(5), completed));
    tasks.push_back(work(Millis(1), completed));
    tasks.push_back(work(Millis(3), completed));
    co_await WhenAllVoid(std::move(tasks));
    *finished = a->Now();
  }(&actor, &completed, &finished));
  loop.Run();
  EXPECT_EQ(completed, 3);
  EXPECT_EQ(finished, Millis(5));  // parallel
}

TEST(SyncExtraTest, EventSetIsIdempotent) {
  EventLoop loop;
  Actor actor(loop);
  Event event;
  int wakes = 0;
  actor.Spawn([](Event* e, int* w) -> Task<> {
    co_await e->Wait();
    ++*w;
  }(&event, &wakes));
  loop.Run();
  event.Set();
  event.Set();
  event.Set();
  loop.Run();
  EXPECT_EQ(wakes, 1);
}

TEST(NetworkExtraTest, LoopbackIsFastAndUnpartitionable) {
  EventLoop loop;
  NetParams params;
  Network net(loop, params);
  Nanos arrived = 0;
  net.Register(5, [&](NodeId, sim::AnyMsg, size_t) { arrived = loop.Now(); });
  net.SetPartitioned(5, 5, true);  // self-partition must be ignored
  net.Send(5, 5, 0, 100);
  loop.Run();
  EXPECT_EQ(arrived, params.loopback_latency);
}

TEST(StorageExtraTest, FileAndVolumeBandwidthAreIndependent) {
  // A huge sequential file write (SSTable flush) must not head-of-line-block
  // a small volume write, and vice versa.
  EventLoop loop;
  Actor actor(loop);
  Storage storage(loop, DiskParams{});
  Nanos small_done = 0;
  actor.Spawn([](Storage* s) -> Task<> {
    (void)co_await s->WriteFile("huge.sst", std::string(64 << 20, 'x'), true);
  }(&storage));
  actor.Spawn([](Actor* a, Storage* s, Nanos* done) -> Task<> {
    (void)co_await s->WriteBlocks("pv", 0, std::string(4096, 'y'), 1);
    *done = a->Now();
  }(&actor, &storage, &small_done));
  loop.Run();
  // 64MB at 1.2GB/s is ~53ms; the 4KB volume write must finish way earlier.
  EXPECT_LT(small_done, Millis(5));
}

TEST(StorageExtraTest, VolumeBusSerializesLargeTransfers) {
  EventLoop loop;
  Actor actor(loop);
  Storage storage(loop, DiskParams{});
  std::vector<Nanos> done;
  for (int i = 0; i < 2; ++i) {
    actor.Spawn([](Actor* a, Storage* s, int i, std::vector<Nanos>* done) -> Task<> {
      // 12MB at 1.2GB/s = 10ms of bus each.
      (void)co_await s->WriteBlocks("pv" + std::to_string(i), 0,
                                    std::string(12 << 20, 'z'), 1);
      done->push_back(a->Now());
    }(&actor, &storage, i, &done));
  }
  loop.Run();
  ASSERT_EQ(done.size(), 2u);
  // The second completes roughly one transfer after the first.
  EXPECT_GE(done[1], done[0] + Millis(9));
}

TEST(ResourceExtraTest, BurstThenIdleDrains) {
  EventLoop loop;
  Actor actor(loop);
  Resource res(loop, 2);
  int finished = 0;
  for (int i = 0; i < 10; ++i) {
    actor.Spawn([](Resource* r, int* f) -> Task<> {
      co_await r->Use(Millis(1));
      ++*f;
    }(&res, &finished));
  }
  loop.Run();
  EXPECT_EQ(finished, 10);
  EXPECT_EQ(loop.Now(), Millis(5));  // 10 jobs / 2 servers x 1ms
}

TEST(NetworkExtraTest, UncontendedArrivalIsUnchangedByReceiveModel) {
  // A lone message must arrive at exactly departed + base_latency — the
  // receive-side occupancy is invisible unless receptions overlap.
  EventLoop loop;
  NetParams params;
  Network net(loop, params);
  Nanos arrived = 0;
  net.Register(1, [](NodeId, sim::AnyMsg, size_t) {});
  net.Register(2, [&](NodeId, sim::AnyMsg, size_t) { arrived = loop.Now(); });
  const size_t bytes = 31 << 20;  // 31MB at 3.1GB/s = 10ms serialization
  const Nanos tx =
      static_cast<Nanos>(static_cast<double>(bytes) / params.bw_bytes_per_sec * 1e9);
  net.Send(1, 2, 0, bytes);
  loop.Run();
  EXPECT_EQ(arrived, tx + params.base_latency);
}

TEST(NetworkExtraTest, ConcurrentBulkReceivesContendForBandwidth) {
  // Two simultaneous bulk sends from different sources into one receiver
  // must take ~2x the wall-clock of one: the receiver's NIC is not free.
  EventLoop loop;
  NetParams params;
  Network net(loop, params);
  std::vector<Nanos> arrived;
  net.Register(1, [](NodeId, sim::AnyMsg, size_t) {});
  net.Register(2, [](NodeId, sim::AnyMsg, size_t) {});
  net.Register(3, [&](NodeId, sim::AnyMsg, size_t) { arrived.push_back(loop.Now()); });
  const size_t bytes = 31 << 20;  // 10ms of wire each
  const Nanos tx =
      static_cast<Nanos>(static_cast<double>(bytes) / params.bw_bytes_per_sec * 1e9);
  net.Send(1, 3, 0, bytes);
  net.Send(2, 3, 0, bytes);
  loop.Run();
  ASSERT_EQ(arrived.size(), 2u);
  // Senders have independent transmit NICs, so both would land at
  // tx + base_latency if reception were free; instead the second queues
  // behind the first for a full serialization time.
  EXPECT_EQ(arrived[0], tx + params.base_latency);
  EXPECT_EQ(arrived[1], 2 * tx + params.base_latency);
}

TEST(ActorExtraTest, KillSoonFromInsideOwnCoroutine) {
  EventLoop loop;
  Actor actor(loop);
  int stage = 0;
  actor.Spawn([](Actor* a, int* s) -> Task<> {
    *s = 1;
    a->KillSoon();  // safe self-crash: takes effect after this frame suspends
    co_await SleepFor(Millis(1));
    *s = 2;  // must never run
  }(&actor, &stage));
  loop.Run();
  EXPECT_EQ(stage, 1);
  EXPECT_FALSE(actor.alive());
}

}  // namespace
}  // namespace cheetah::sim
