// Simulator engine internals: the hierarchical timer wheel vs the reference
// heap engine, InlineFn small-buffer callbacks, the bump-pointer Arena, and
// the AnyMsg arena-backed message box.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/arena.h"
#include "src/common/inline_fn.h"
#include "src/common/random.h"
#include "src/common/units.h"
#include "src/sim/any_msg.h"
#include "src/sim/event_loop.h"
#include "src/sim/network.h"

namespace cheetah::sim {
namespace {

// ---- timer wheel vs reference heap ---------------------------------------

// Ties at one timestamp must fire in schedule order, including when the
// events were inserted across a bucket-staging boundary (some before the
// slot was staged into the active heap, some after).
TEST(TimerWheel, SeqTieBreakAcrossBucketBoundary) {
  EventLoop loop(EventLoop::Engine::kWheel);
  std::vector<int> order;
  const Nanos t = 3 * 4096 + 7;  // mid-slot, a few buckets out
  loop.ScheduleAt(t, [&] { order.push_back(0); });
  loop.ScheduleAt(t, [&] { order.push_back(1); });
  // An earlier event whose firing schedules two more ties at t: by then t's
  // bucket may already be staged, so these take the tick<=active insert path.
  loop.ScheduleAt(t - 1, [&loop, &order, t] {
    loop.ScheduleAt(t, [&] { order.push_back(2); });
    loop.ScheduleAt(t, [&] { order.push_back(3); });
  });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// Events beyond the wheel horizon park in the overflow heap and are promoted
// when their tick comes up, interleaved correctly with in-wheel events.
TEST(TimerWheel, FarFutureOverflowPromotion) {
  EventLoop loop(EventLoop::Engine::kWheel);
  std::vector<int> order;
  const Nanos horizon = 4096 * 4096;  // kSlots << kSlotBits
  loop.ScheduleAt(3 * horizon + 5, [&] { order.push_back(2); });      // overflow
  loop.ScheduleAt(3 * horizon + 4, [&] { order.push_back(1); });      // overflow
  loop.ScheduleAt(100, [&loop, &order, horizon] {                     // in-wheel
    order.push_back(0);
    loop.ScheduleAt(3 * horizon + 6, [&] { order.push_back(3); });    // overflow again
  });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(loop.pending_events(), 0u);
}

// A randomized schedule (mixed near/far/tied timestamps, reschedules from
// inside callbacks) must fire in the identical order on both engines, and
// RunUntil must drain exactly the same prefix at every deadline.
TEST(TimerWheel, RandomizedScheduleMatchesReferenceHeap) {
  auto drive = [](EventLoop::Engine engine) {
    EventLoop loop(engine);
    std::vector<std::pair<Nanos, int>> fired;
    Rng rng(0xfeedu);
    struct Ctx {
      EventLoop* loop;
      std::vector<std::pair<Nanos, int>>* fired;
      Rng* rng;
      int next_id = 1000;
    } ctx{&loop, &fired, &rng};
    for (int i = 0; i < 200; ++i) {
      const Nanos t = rng.Uniform(50'000'000);  // spans ~3000 wheel ticks
      loop.ScheduleAt(t, [&ctx, i] {
        ctx.fired->emplace_back(ctx.loop->Now(), i);
        if (ctx.fired->size() % 3 == 0) {  // reschedule churn from callbacks
          const int id = ctx.next_id++;
          ctx.loop->ScheduleAfter(ctx.rng->Uniform(20'000'000),
                                  [&ctx, id] { ctx.fired->emplace_back(ctx.loop->Now(), id); });
        }
      });
    }
    // Drain in uneven RunUntil steps, then finish with Run(); the clock must
    // land exactly on each deadline even when the queue is briefly empty.
    loop.RunUntil(10'000'000);
    EXPECT_EQ(loop.Now(), 10'000'000);
    const size_t after_first = fired.size();
    loop.RunUntil(10'000'000);  // idempotent: nothing left at/below deadline
    EXPECT_EQ(fired.size(), after_first);
    loop.RunUntil(31'234'567);
    EXPECT_EQ(loop.Now(), 31'234'567);
    loop.Run();
    return fired;
  };
  const auto wheel = drive(EventLoop::Engine::kWheel);
  const auto heap = drive(EventLoop::Engine::kHeap);
  EXPECT_EQ(wheel, heap);
  EXPECT_GT(wheel.size(), 200u);
}

TEST(TimerWheel, RunUntilAdvancesClockOnEmptyQueue) {
  EventLoop loop;
  loop.RunUntil(Millis(5));
  EXPECT_EQ(loop.Now(), Millis(5));
  bool fired = false;
  loop.ScheduleAfter(Micros(1), [&] { fired = true; });
  loop.RunFor(Micros(2));
  EXPECT_TRUE(fired);
  EXPECT_EQ(loop.Now(), Millis(5) + Micros(2));
}

TEST(TimerWheel, EnvAndOverrideSelectEngine) {
  EventLoop::OverrideDefaultEngine(EventLoop::Engine::kHeap);
  EventLoop as_heap;
  EXPECT_EQ(as_heap.engine(), EventLoop::Engine::kHeap);
  EventLoop::OverrideDefaultEngine(std::nullopt);
  EventLoop as_default;
  EXPECT_EQ(as_default.engine(), EventLoop::Engine::kWheel);
}

// ---- callback lifecycle (the old priority_queue::top() const-cast bug) ----

// A callback must be moved out of the queue and destroyed exactly once after
// firing — never copied. Tracks every special member; with the old
// std::function-based queue a copyable callable could be silently copied by
// the const_cast-move workaround's fallback paths.
struct LifecycleProbe {
  int* copies;
  int* destroys;
  LifecycleProbe(int* c, int* d) : copies(c), destroys(d) {}
  LifecycleProbe(const LifecycleProbe& o) : copies(o.copies), destroys(o.destroys) {
    ++*copies;
  }
  LifecycleProbe(LifecycleProbe&& o) noexcept : copies(o.copies), destroys(o.destroys) {
    o.copies = nullptr;
    o.destroys = nullptr;
  }
  ~LifecycleProbe() {
    if (destroys != nullptr) {
      ++*destroys;
    }
  }
};

TEST(CallbackLifecycle, FiredCallbackIsNeverCopied) {
  int copies = 0;
  int destroys = 0;
  {
    EventLoop loop;
    loop.ScheduleAfter(10, [p = LifecycleProbe(&copies, &destroys)] { (void)p; });
    loop.Run();
    EXPECT_EQ(copies, 0);
    EXPECT_EQ(destroys, 1);  // destroyed right after firing, not at loop teardown
  }
  EXPECT_EQ(copies, 0);
  EXPECT_EQ(destroys, 1);
}

TEST(CallbackLifecycle, UnfiredCallbackDestroyedAtTeardown) {
  int copies = 0;
  int destroys = 0;
  {
    EventLoop loop;
    loop.ScheduleAfter(10, [p = LifecycleProbe(&copies, &destroys)] { (void)p; });
    // Never run: teardown must destroy the pending callback exactly once.
  }
  EXPECT_EQ(copies, 0);
  EXPECT_EQ(destroys, 1);
}

// Move-only captures must compile and work (std::function required copyable).
TEST(CallbackLifecycle, MoveOnlyCapture) {
  EventLoop loop;
  auto owned = std::make_unique<int>(42);
  int got = 0;
  loop.ScheduleAfter(5, [o = std::move(owned), &got] { got = *o; });
  loop.Run();
  EXPECT_EQ(got, 42);
}

// ---- InlineFn -------------------------------------------------------------

TEST(InlineFn, SmallCaptureStaysInline) {
  int x = 7;
  InlineFn<int()> fn([&x] { return x + 1; });
  EXPECT_FALSE(fn.heap_allocated());
  EXPECT_EQ(fn(), 8);
}

TEST(InlineFn, LargeCaptureFallsBackToHeap) {
  struct Big {
    char bytes[96];
  } big{};
  big.bytes[0] = 3;
  InlineFn<int()> fn([big] { return static_cast<int>(big.bytes[0]); });
  EXPECT_TRUE(fn.heap_allocated());
  EXPECT_EQ(fn(), 3);
}

TEST(InlineFn, MoveTransfersOwnership) {
  auto owned = std::make_unique<std::string>("hello");
  InlineFn<size_t()> a([o = std::move(owned)] { return o->size(); });
  InlineFn<size_t()> b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): post-move emptiness is the contract
  ASSERT_TRUE(b);
  EXPECT_EQ(b(), 5u);
  InlineFn<size_t()> c;
  c = std::move(b);
  EXPECT_EQ(c(), 5u);
}

TEST(InlineFn, ArgumentsArePassedThrough) {
  InlineFn<int(int, int)> add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(2, 40), 42);
}

// ---- Arena ----------------------------------------------------------------

TEST(Arena, RecyclesFreedBlocksBySizeClass) {
  Arena arena(4096);
  void* a = arena.Alloc(48);
  arena.Free(a, 48);
  void* b = arena.Alloc(40);  // same 48-byte class: must reuse the block
  EXPECT_EQ(a, b);
  arena.Free(b, 40);
  EXPECT_EQ(arena.live(), 0u);
}

TEST(Arena, NewDeleteRunConstructorsAndRecycle) {
  Arena arena(4096);
  auto* s = arena.New<std::string>("arena-backed string long enough to heap-allocate");
  EXPECT_EQ(s->substr(0, 5), "arena");
  arena.Delete(s);
  EXPECT_EQ(arena.live(), 0u);
  EXPECT_EQ(arena.allocs(), 1u);
}

TEST(Arena, OversizedAllocationsPassThrough) {
  Arena arena(4096);
  void* big = arena.Alloc(5000);
  EXPECT_EQ(arena.oversized_allocs(), 1u);
  arena.Free(big, 5000);
  EXPECT_EQ(arena.live(), 0u);
}

TEST(Arena, ResetRewindsAndKeepsOneChunk) {
  Arena arena(256);
  std::vector<void*> blocks;
  for (int i = 0; i < 64; ++i) {
    blocks.push_back(arena.Alloc(64));  // forces several chunks
  }
  const size_t grown = arena.bytes_reserved();
  EXPECT_GT(grown, 256u);
  for (void* b : blocks) {
    arena.Free(b, 64);
  }
  arena.Reset();
  EXPECT_EQ(arena.bytes_reserved(), 256u);
  EXPECT_EQ(arena.resets(), 1u);
}

TEST(Arena, ArenaPtrOwnsAndReleasesOnDestruction) {
  Arena arena(4096);
  {
    ArenaPtr<std::string> p = MakeArenaPtr<std::string>(arena, "owned");
    EXPECT_EQ(*p, "owned");
    EXPECT_EQ(arena.live(), 1u);
  }
  EXPECT_EQ(arena.live(), 0u);
}

// The loop's arena resets at quiescent points, so steady-state runs stop
// growing: schedule-fire cycles that allocate via the arena reconverge.
TEST(Arena, LoopArenaQuiescesBetweenBursts) {
  EventLoop loop;
  for (int burst = 0; burst < 3; ++burst) {
    for (int i = 0; i < 100; ++i) {
      auto rec = MakeArenaPtr<std::string>(loop.arena(), "payload");
      loop.ScheduleAfter(i + 1, [r = std::move(rec)] { (void)*r; });
    }
    loop.Run();
    EXPECT_EQ(loop.arena().live(), 0u);
  }
  EXPECT_GE(loop.arena().resets(), 3u);
}

// ---- AnyMsg ---------------------------------------------------------------

TEST(AnyMsg, RoundTripsValueThroughArena) {
  Arena arena(4096);
  AnyMsg m = AnyMsg::Make<std::string>(arena, "message body");
  EXPECT_TRUE(m.has_value());
  EXPECT_TRUE(m.Is<std::string>());
  EXPECT_FALSE(m.Is<int>());
  EXPECT_EQ(m.Take<std::string>(), "message body");
  EXPECT_FALSE(m.has_value());
  EXPECT_EQ(arena.live(), 0u);
}

TEST(AnyMsg, MoveOnlyPayloadsWork) {
  Arena arena(4096);
  AnyMsg m = AnyMsg::Make<std::unique_ptr<int>>(arena, std::make_unique<int>(9));
  AnyMsg n = std::move(m);
  EXPECT_FALSE(m.has_value());  // NOLINT(bugprone-use-after-move)
  auto p = n.Take<std::unique_ptr<int>>();
  EXPECT_EQ(*p, 9);
}

TEST(AnyMsg, DeepCopyForChaosDuplication) {
  Arena arena(4096);
  AnyMsg m = AnyMsg::Make<std::string>(arena, "dup me");
  AnyMsg copy = m;  // the chaos-dup path
  EXPECT_EQ(m.Take<std::string>(), "dup me");
  EXPECT_EQ(copy.Take<std::string>(), "dup me");
  EXPECT_EQ(arena.live(), 0u);
}

TEST(AnyMsg, DroppedMessageReleasesSlot) {
  Arena arena(4096);
  {
    AnyMsg m = AnyMsg::Make<std::string>(arena, "never delivered");
    EXPECT_EQ(arena.live(), 1u);
  }
  EXPECT_EQ(arena.live(), 0u);
}

// ---- Network fault-free fast path -----------------------------------------

TEST(NetworkFastPath, SkipsFaultLookupUntilFaultsRegistered) {
  EventLoop loop;
  Network net(loop, NetParams{});
  int delivered = 0;
  net.Register(1, [](auto...) {});
  net.Register(2, [&](NodeId, AnyMsg, size_t) { ++delivered; });

  net.Send(1, 2, std::string("clean"), 100);
  loop.Run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.fault_free_fast_path(), 1u);
  EXPECT_FALSE(net.dup_faults_possible());

  // Registering any active fault disables the fast path for later sends.
  LinkFaults f;
  f.dup_prob = 1.0;
  f.max_extra_delay = 10;
  net.SeedFaults(7);
  net.SetDefaultLinkFaults(f);
  net.Send(1, 2, std::string("dup me"), 100);
  loop.Run();
  EXPECT_EQ(delivered, 3);  // original + duplicated copy
  EXPECT_EQ(net.fault_free_fast_path(), 1u);  // unchanged: slow path taken
  EXPECT_EQ(net.messages_duplicated(), 1u);

  // dup_faults_possible is sticky across ClearLinkFaults: in-flight
  // duplicates must still be caught by rpc dedup after faults are cleared.
  net.ClearLinkFaults();
  EXPECT_TRUE(net.dup_faults_possible());
  net.Send(1, 2, std::string("clean again"), 100);
  loop.Run();
  EXPECT_EQ(net.fault_free_fast_path(), 2u);  // inactive faults: fast again
}

}  // namespace
}  // namespace cheetah::sim
