// Unit tests for the chaos fault knobs: network drop/dup/delay, storage gray
// failures, and determinism of both under a fixed seed.
#include <gtest/gtest.h>

#include <any>
#include <string>
#include <vector>

#include "src/sim/event_loop.h"
#include "src/sim/machine.h"
#include "src/sim/network.h"
#include "src/sim/storage.h"
#include "tests/test_util.h"

namespace cheetah::sim {
namespace {

TEST(NetworkFaults, DropProbabilityOneLosesEverything) {
  EventLoop loop;
  Network net(loop, NetParams{});
  int delivered = 0;
  net.Register(1, [](auto...) {});
  net.Register(2, [&](auto...) { ++delivered; });
  LinkFaults f;
  f.drop_prob = 1.0;
  net.SetDefaultLinkFaults(f);
  net.SeedFaults(7);
  for (int i = 0; i < 10; ++i) {
    net.Send(1, 2, 0, 100);
  }
  loop.RunFor(Seconds(1));
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.messages_fault_dropped(), 10u);
}

TEST(NetworkFaults, LoopbackIsExempt) {
  EventLoop loop;
  Network net(loop, NetParams{});
  int delivered = 0;
  net.Register(1, [&](auto...) { ++delivered; });
  LinkFaults f;
  f.drop_prob = 1.0;
  net.SetDefaultLinkFaults(f);
  net.Send(1, 1, 0, 100);
  loop.RunFor(Seconds(1));
  EXPECT_EQ(delivered, 1);
}

TEST(NetworkFaults, DuplicateDeliversTwice) {
  EventLoop loop;
  Network net(loop, NetParams{});
  std::vector<std::string> got;
  net.Register(1, [](auto...) {});
  net.Register(2, [&](NodeId, sim::AnyMsg msg, size_t) {
    got.push_back(msg.Take<std::string>());
  });
  LinkFaults f;
  f.dup_prob = 1.0;
  f.max_extra_delay = Millis(1);
  net.SetDefaultLinkFaults(f);
  net.SeedFaults(7);
  net.Send(1, 2, std::string("payload"), 100);
  loop.RunFor(Seconds(1));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "payload");
  EXPECT_EQ(got[1], "payload");
  EXPECT_EQ(net.messages_duplicated(), 1u);
}

TEST(NetworkFaults, DelayIsBoundedAndBreaksNoMessages) {
  EventLoop loop;
  NetParams params;
  Network net(loop, params);
  std::vector<Nanos> arrivals;
  net.Register(1, [](auto...) {});
  net.Register(2, [&](auto...) { arrivals.push_back(loop.Now()); });
  LinkFaults f;
  f.delay_prob = 1.0;
  f.max_extra_delay = Millis(2);
  net.SetDefaultLinkFaults(f);
  net.SeedFaults(7);
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    net.Send(1, 2, 0, 100);
  }
  loop.RunFor(Seconds(1));
  ASSERT_EQ(arrivals.size(), static_cast<size_t>(n));
  EXPECT_EQ(net.messages_delayed(), static_cast<uint64_t>(n));
  for (Nanos t : arrivals) {
    EXPECT_GT(t, params.base_latency);  // delayed beyond the undisturbed time
    EXPECT_LE(t, Seconds(1));
  }
}

TEST(NetworkFaults, PerLinkOverridesDefault) {
  EventLoop loop;
  Network net(loop, NetParams{});
  int to2 = 0, to3 = 0;
  net.Register(1, [](auto...) {});
  net.Register(2, [&](auto...) { ++to2; });
  net.Register(3, [&](auto...) { ++to3; });
  LinkFaults drop_all;
  drop_all.drop_prob = 1.0;
  net.SetLinkFaults(1, 2, drop_all);  // only the 1<->2 link is lossy
  net.SeedFaults(7);
  net.Send(1, 2, 0, 100);
  net.Send(1, 3, 0, 100);
  loop.RunFor(Seconds(1));
  EXPECT_EQ(to2, 0);
  EXPECT_EQ(to3, 1);
  net.ClearLinkFaults();
  net.Send(1, 2, 0, 100);
  loop.RunFor(Seconds(1));
  EXPECT_EQ(to2, 1);
}

TEST(NetworkFaults, IdenticalSeedsReplayIdentically) {
  auto run = [](uint64_t seed) {
    EventLoop loop;
    Network net(loop, NetParams{});
    std::vector<Nanos> arrivals;
    net.Register(1, [](auto...) {});
    net.Register(2, [&](auto...) { arrivals.push_back(loop.Now()); });
    LinkFaults f;
    f.drop_prob = 0.2;
    f.dup_prob = 0.2;
    f.delay_prob = 0.3;
    f.max_extra_delay = Millis(3);
    net.SetDefaultLinkFaults(f);
    net.SeedFaults(seed);
    for (int i = 0; i < 200; ++i) {
      net.Send(1, 2, 0, 100 + i);
    }
    loop.RunFor(Seconds(5));
    return arrivals;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

// ---- storage gray failures ----

Nanos TimeOneWrite(Storage& disk, Machine& m, uint64_t bytes) {
  EventLoop& loop = m.loop();
  const Nanos t0 = loop.Now();
  Nanos done = 0;
  m.actor().Spawn([](Storage* d, uint64_t bytes, Nanos* done, EventLoop* loop) -> Task<> {
    (void)co_await d->WriteBlocks("vol", 0, std::string(bytes, 'x'), 1);
    *done = loop->Now();
  }(&disk, bytes, &done, &loop));
  loop.RunFor(Seconds(5));
  return done - t0;
}

TEST(StorageGray, LatencyMultiplierSlowsIo) {
  EventLoop loop;
  Machine m(loop, 1, "m", MachineParams{});
  const Nanos healthy = TimeOneWrite(m.disk(), m, 4096);
  GrayFailure g;
  g.latency_multiplier = 10.0;
  m.SetGrayFailure(g);
  const Nanos degraded = TimeOneWrite(m.disk(), m, 4096);
  EXPECT_GE(degraded, 5 * healthy);
  m.ClearGrayFailure();
  EXPECT_EQ(TimeOneWrite(m.disk(), m, 4096), healthy);
}

TEST(StorageGray, StuckFsyncBlocksUntilDeadline) {
  EventLoop loop;
  Machine m(loop, 1, "m", MachineParams{});
  GrayFailure g;
  g.fsync_stuck_for = Millis(50);
  m.SetGrayFailure(g);
  const Nanos t = TimeOneWrite(m.disk(), m, 4096);  // WriteBlocks fsyncs
  EXPECT_GE(t, Millis(50));
  // After the stuck window passes, fsyncs are normal again even without
  // ClearGrayFailure (the device "recovered").
  const Nanos t2 = TimeOneWrite(m.disk(), m, 4096);
  EXPECT_LT(t2, Millis(5));
}

TEST(StorageGray, FlakyMediaCorruptsChecksum) {
  EventLoop loop;
  Machine m(loop, 1, "m", MachineParams{});
  Storage& disk = m.disk();
  GrayFailure g;
  g.write_corrupt_prob = 1.0;
  disk.SetGrayFailure(g);
  bool wrote = false;
  m.actor().Spawn([](Storage* d, bool* wrote) -> Task<> {
    (void)co_await d->WriteBlocks("vol", 0, std::string(4096, 'x'), 0xabcdu);
    *wrote = true;
  }(&disk, &wrote));
  loop.RunFor(Seconds(1));
  ASSERT_TRUE(wrote);
  EXPECT_EQ(disk.writes_corrupted(), 1u);
  auto cs = disk.PeekChecksum("vol", 0);
  ASSERT_TRUE(cs.has_value());
  EXPECT_NE(*cs, 0xabcdu);  // a read-path verify will reject this replica
}

TEST(StorageGray, FlakyMediaCorruptionIsProbeObservable) {
  // The write-path corruption must be visible to every checksum surface the
  // integrity pipeline uses: PeekChecksum (verified reads), ProbeChecksum
  // (scrub probes), and the writes_corrupted counter (obs).
  EventLoop loop;
  Machine m(loop, 1, "m", MachineParams{});
  Storage& disk = m.disk();
  GrayFailure g;
  g.write_corrupt_prob = 1.0;
  disk.SetGrayFailure(g);
  bool done = false;
  Result<uint32_t> probed = Status::Internal("unset");
  m.actor().Spawn([](Storage* d, Result<uint32_t>* probed, bool* done) -> Task<> {
    (void)co_await d->WriteBlocks("vol", 0, std::string(4096, 'x'), 0x1234u);
    *probed = co_await d->ProbeChecksum("vol", 0);
    *done = true;
  }(&disk, &probed, &done));
  loop.RunFor(Seconds(1));
  ASSERT_TRUE(done);
  EXPECT_EQ(disk.writes_corrupted(), 1u);
  ASSERT_TRUE(probed.ok());
  EXPECT_NE(*probed, 0x1234u);  // the scrub probe sees the damage
  ASSERT_TRUE(disk.PeekChecksum("vol", 0).has_value());
  EXPECT_EQ(*disk.PeekChecksum("vol", 0), *probed);
}

// ---- at-rest fault injection ----

// Writes `n` 4KB extents with checksum = extent index + 1.
void Populate(Machine& m, Storage& disk, int n) {
  bool done = false;
  m.actor().Spawn([](Storage* d, int n, bool* done) -> Task<> {
    for (int i = 0; i < n; ++i) {
      (void)co_await d->WriteBlocks("vol", static_cast<uint64_t>(i) * 4096,
                                    std::string(4096, 'x'),
                                    static_cast<uint32_t>(i + 1));
    }
    *done = true;
  }(&disk, n, &done));
  m.loop().RunFor(Seconds(5));
  ASSERT_TRUE(done);
}

TEST(StorageAtRest, InjectBitRotFlipsStoredChecksums) {
  EventLoop loop;
  Machine m(loop, 1, "m", MachineParams{});
  Storage& disk = m.disk();
  Populate(m, disk, 8);
  EXPECT_EQ(disk.InjectBitRot(0.0, 99), 0u);
  EXPECT_EQ(disk.bitrot_extents(), 0u);
  const uint64_t hits = disk.InjectBitRot(1.0, 99);
  EXPECT_EQ(hits, 8u);
  EXPECT_EQ(disk.bitrot_extents(), 8u);
  for (int i = 0; i < 8; ++i) {
    auto cs = disk.PeekChecksum("vol", static_cast<uint64_t>(i) * 4096);
    ASSERT_TRUE(cs.has_value());
    EXPECT_NE(*cs, static_cast<uint32_t>(i + 1));  // verify/probe will reject
  }
}

TEST(StorageAtRest, InjectBitRotIsDeterministicPerSeed) {
  auto damage_set = [](uint64_t seed) {
    EventLoop loop;
    Machine m(loop, 1, "m", MachineParams{});
    Storage& disk = m.disk();
    Populate(m, disk, 32);
    disk.InjectBitRot(0.5, seed);
    std::vector<bool> hit;
    for (int i = 0; i < 32; ++i) {
      auto cs = disk.PeekChecksum("vol", static_cast<uint64_t>(i) * 4096);
      hit.push_back(cs.has_value() && *cs != static_cast<uint32_t>(i + 1));
    }
    return hit;
  };
  EXPECT_EQ(damage_set(7), damage_set(7));
  EXPECT_NE(damage_set(7), damage_set(8));
}

TEST(StorageAtRest, LatentSectorErrorsMakeExtentsUnreadableUntilRewritten) {
  EventLoop loop;
  Machine m(loop, 1, "m", MachineParams{});
  Storage& disk = m.disk();
  Populate(m, disk, 4);
  EXPECT_EQ(disk.InjectLatentSectorErrors(1.0, 5), 4u);
  EXPECT_EQ(disk.lse_extents(), 4u);
  // Reads and probes fail with an I/O error; Peek sees nothing.
  bool done = false;
  Status read_status = Status::Ok();
  Result<uint32_t> probed = 0u;  // overwritten by the probe below
  m.actor().Spawn([](Storage* d, Status* rs, Result<uint32_t>* probed, bool* done) -> Task<> {
    auto r = co_await d->ReadBlocks("vol", 0, 4096);
    *rs = r.status();
    *probed = co_await d->ProbeChecksum("vol", 0);
    // A rewrite remaps the sector: the extent is whole again.
    (void)co_await d->WriteBlocks("vol", 0, std::string(4096, 'y'), 0xfeedu);
    *done = true;
  }(&disk, &read_status, &probed, &done));
  loop.RunFor(Seconds(5));
  ASSERT_TRUE(done);
  EXPECT_EQ(read_status.code(), ErrorCode::kIoError);
  EXPECT_FALSE(probed.ok());
  EXPECT_FALSE(disk.PeekChecksum("vol", 4096).has_value());  // still bad
  EXPECT_EQ(*disk.PeekChecksum("vol", 0), 0xfeedu);          // repaired
}

TEST(StorageAtRest, CorruptExtentTargetsExactlyOneExtent) {
  EventLoop loop;
  Machine m(loop, 1, "m", MachineParams{});
  Storage& disk = m.disk();
  Populate(m, disk, 2);
  EXPECT_TRUE(disk.CorruptExtent("vol", 0));
  EXPECT_FALSE(disk.CorruptExtent("vol", 12345));     // no extent there
  EXPECT_FALSE(disk.CorruptExtent("other-vol", 0));   // no such volume
  EXPECT_NE(*disk.PeekChecksum("vol", 0), 1u);
  EXPECT_EQ(*disk.PeekChecksum("vol", 4096), 2u);  // neighbor untouched
}

TEST(StorageGray, HealthyDiskIsExactlyUnchanged) {
  EventLoop loop;
  Machine m(loop, 1, "m", MachineParams{});
  Storage& disk = m.disk();
  bool ok = false;
  m.actor().Spawn([](Storage* d, bool* ok) -> Task<> {
    (void)co_await d->WriteBlocks("vol", 0, std::string(64, 'x'), 7u);
    auto r = co_await d->ReadBlocks("vol", 0, 64);
    *ok = r.ok() && r->size() == 64;
  }(&disk, &ok));
  loop.RunFor(Seconds(1));
  EXPECT_TRUE(ok);
  EXPECT_EQ(disk.writes_corrupted(), 0u);
  EXPECT_EQ(*disk.PeekChecksum("vol", 0), 7u);
}

}  // namespace
}  // namespace cheetah::sim
