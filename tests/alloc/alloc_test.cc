#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/alloc/bitmap_allocator.h"
#include "src/common/random.h"

namespace cheetah::alloc {
namespace {

constexpr uint32_t kBlock = 4096;

TEST(BitmapAllocatorTest, AllocatesContiguous) {
  BitmapAllocator alloc(1024, kBlock);
  auto ext = alloc.Allocate(10 * kBlock);
  ASSERT_TRUE(ext.ok());
  ASSERT_EQ(ext->size(), 1u);
  EXPECT_EQ((*ext)[0].count, 10u);
  EXPECT_EQ(alloc.used_blocks(), 10u);
}

TEST(BitmapAllocatorTest, RoundsUpPartialBlocks) {
  BitmapAllocator alloc(1024, kBlock);
  auto ext = alloc.Allocate(kBlock + 1);
  ASSERT_TRUE(ext.ok());
  EXPECT_EQ((*ext)[0].count, 2u);
}

TEST(BitmapAllocatorTest, RejectsZeroBytes) {
  BitmapAllocator alloc(16, kBlock);
  EXPECT_FALSE(alloc.Allocate(0).ok());
}

TEST(BitmapAllocatorTest, ExhaustsAndReports) {
  BitmapAllocator alloc(8, kBlock);
  ASSERT_TRUE(alloc.Allocate(8 * kBlock).ok());
  auto more = alloc.Allocate(kBlock);
  EXPECT_EQ(more.status().code(), ErrorCode::kResourceExhausted);
}

TEST(BitmapAllocatorTest, FreeMakesSpaceImmediatelyReusable) {
  // The property behind Cheetah's compaction-free delete (§4.3.3).
  BitmapAllocator alloc(16, kBlock);
  auto a = alloc.Allocate(16 * kBlock);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(alloc.Allocate(kBlock).ok());
  alloc.Free(*a);
  EXPECT_EQ(alloc.free_blocks(), 16u);
  EXPECT_TRUE(alloc.Allocate(16 * kBlock).ok());
}

TEST(BitmapAllocatorTest, FragmentedAllocationSpansHoles) {
  BitmapAllocator alloc(16, kBlock);
  // Occupy all, free two disjoint 3-block holes.
  auto all = alloc.Allocate(16 * kBlock);
  ASSERT_TRUE(all.ok());
  alloc.Free({Extent(2, 3)});
  alloc.Free({Extent(9, 3)});
  auto ext = alloc.Allocate(6 * kBlock);
  ASSERT_TRUE(ext.ok());
  EXPECT_EQ(ext->size(), 2u);
  uint64_t total = 0;
  for (const auto& e : *ext) {
    total += e.count;
  }
  EXPECT_EQ(total, 6u);
  EXPECT_EQ(alloc.free_blocks(), 0u);
}

TEST(BitmapAllocatorTest, NoDoubleAllocation) {
  BitmapAllocator alloc(256, kBlock);
  Rng rng(42);
  std::set<uint64_t> owned;
  std::vector<std::vector<Extent>> live;
  for (int round = 0; round < 200; ++round) {
    if (rng.Bernoulli(0.6) || live.empty()) {
      auto ext = alloc.Allocate(rng.UniformRange(1, 8) * kBlock);
      if (!ext.ok()) {
        continue;
      }
      for (const auto& e : *ext) {
        for (uint64_t b = e.block; b < e.block + e.count; ++b) {
          EXPECT_TRUE(owned.insert(b).second) << "block " << b << " double-allocated";
        }
      }
      live.push_back(std::move(*ext));
    } else {
      const size_t idx = rng.Uniform(live.size());
      for (const auto& e : live[idx]) {
        for (uint64_t b = e.block; b < e.block + e.count; ++b) {
          owned.erase(b);
        }
      }
      alloc.Free(live[idx]);
      live.erase(live.begin() + idx);
    }
    EXPECT_EQ(alloc.used_blocks(), owned.size());
  }
}

TEST(BitmapAllocatorTest, MarkAllocatedForRecovery) {
  BitmapAllocator alloc(64, kBlock);
  alloc.MarkAllocated({Extent(10, 5)});
  EXPECT_EQ(alloc.used_blocks(), 5u);
  EXPECT_TRUE(alloc.IsAllocated(12));
  EXPECT_FALSE(alloc.IsAllocated(15));
  // New allocations avoid the recovered extents.
  auto ext = alloc.Allocate(64 * kBlock - 5 * kBlock);
  ASSERT_TRUE(ext.ok());
  for (const auto& e : *ext) {
    EXPECT_TRUE(e.block + e.count <= 10 || e.block >= 15);
  }
}

TEST(BitmapAllocatorTest, SerializeRoundTrip) {
  BitmapAllocator alloc(128, kBlock);
  (void)alloc.Allocate(7 * kBlock);
  alloc.MarkAllocated({Extent(100, 4)});
  auto restored = BitmapAllocator::Deserialize(alloc.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->total_blocks(), 128u);
  EXPECT_EQ(restored->used_blocks(), 11u);
  for (uint64_t b = 0; b < 128; ++b) {
    EXPECT_EQ(restored->IsAllocated(b), alloc.IsAllocated(b)) << "block " << b;
  }
}

TEST(BitmapAllocatorTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(BitmapAllocator::Deserialize("nonsense").ok());
  EXPECT_FALSE(BitmapAllocator::Deserialize("").ok());
}

TEST(BitmapAllocatorTest, FragmentationMetric) {
  BitmapAllocator alloc(64, kBlock);
  EXPECT_DOUBLE_EQ(alloc.Fragmentation(), 0.0);  // one big run
  auto all = alloc.Allocate(64 * kBlock);
  ASSERT_TRUE(all.ok());
  // Free alternating single blocks: maximal fragmentation.
  std::vector<Extent> holes;
  for (uint64_t b = 0; b < 64; b += 2) {
    holes.emplace_back(b, 1);
  }
  alloc.Free(holes);
  EXPECT_GT(alloc.Fragmentation(), 0.9);
}

TEST(BitmapAllocatorTest, CursorSpreadsAllocations) {
  BitmapAllocator alloc(1024, kBlock);
  auto a = alloc.Allocate(4 * kBlock);
  auto b = alloc.Allocate(4 * kBlock);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE((*a)[0].block, (*b)[0].block);
}

}  // namespace
}  // namespace cheetah::alloc
