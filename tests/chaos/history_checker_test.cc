// Unit tests for the per-key linearizability checker: known-good histories
// must pass, known-bad ones must be flagged, and the ambiguity rules
// (timeouts that may land later, delete-NotFound duality) must not produce
// false positives.
#include <gtest/gtest.h>

#include <string>

#include "src/chaos/history.h"

namespace cheetah::chaos {
namespace {

// Shorthand for composing histories at explicit virtual times.
struct Builder {
  History h;
  uint64_t Op(int client, OpType t, const std::string& key, const std::string& val,
              Nanos inv, Nanos ret, Outcome out, const std::string& observed = "") {
    const uint64_t id = h.Invoke(client, t, key, val, inv);
    h.Return(id, out, observed, ret);
    return id;
  }
  uint64_t Pending(int client, OpType t, const std::string& key, const std::string& val,
                   Nanos inv) {
    return h.Invoke(client, t, key, val, inv);
  }
};

TEST(HistoryChecker, EmptyHistoryIsLinearizable) {
  History h;
  EXPECT_TRUE(CheckLinearizable(h).empty());
}

TEST(HistoryChecker, SimplePutGetDelete) {
  Builder b;
  b.Op(0, OpType::kPut, "k", "v1", 0, 10, Outcome::kOk);
  b.Op(0, OpType::kGet, "k", "", 20, 30, Outcome::kOk, "v1");
  b.Op(0, OpType::kDelete, "k", "", 40, 50, Outcome::kOk);
  b.Op(0, OpType::kGet, "k", "", 60, 70, Outcome::kNotFound);
  EXPECT_TRUE(CheckLinearizable(b.h).empty());
}

TEST(HistoryChecker, StaleReadAfterAckedWriteIsViolation) {
  Builder b;
  // Put acked at t=10, but a later get claims the key is absent.
  b.Op(0, OpType::kPut, "k", "v1", 0, 10, Outcome::kOk);
  b.Op(1, OpType::kGet, "k", "", 20, 30, Outcome::kNotFound);
  auto v = CheckLinearizable(b.h);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].key, "k");
}

TEST(HistoryChecker, ResurrectionAfterAckedDeleteIsViolation) {
  Builder b;
  b.Op(0, OpType::kPut, "k", "v1", 0, 10, Outcome::kOk);
  b.Op(0, OpType::kDelete, "k", "", 20, 30, Outcome::kOk);
  b.Op(1, OpType::kGet, "k", "", 40, 50, Outcome::kOk, "v1");  // came back!
  EXPECT_EQ(CheckLinearizable(b.h).size(), 1u);
}

TEST(HistoryChecker, TornReadIsViolation) {
  Builder b;
  b.Op(0, OpType::kPut, "k", "v1", 0, 10, Outcome::kOk);
  b.Op(1, OpType::kGet, "k", "", 20, 30, Outcome::kOk, "v1-torn");
  auto v = CheckLinearizable(b.h);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].reason.find("no put wrote"), std::string::npos);
}

TEST(HistoryChecker, AmbiguousPutMayLandLate) {
  Builder b;
  // The put timed out at t=10, but the cleaner completed it server-side:
  // a much later get legitimately observes it.
  b.Op(0, OpType::kPut, "k", "v1", 0, 10, Outcome::kAmbiguous);
  b.Op(1, OpType::kGet, "k", "", 100, 110, Outcome::kOk, "v1");
  EXPECT_TRUE(CheckLinearizable(b.h).empty());
}

TEST(HistoryChecker, AmbiguousPutMayNeverLand) {
  Builder b;
  b.Op(0, OpType::kPut, "k", "v1", 0, 10, Outcome::kAmbiguous);
  b.Op(1, OpType::kGet, "k", "", 100, 110, Outcome::kNotFound);
  EXPECT_TRUE(CheckLinearizable(b.h).empty());
}

TEST(HistoryChecker, AmbiguousPutCannotFlipFlop) {
  Builder b;
  // Observed, then gone, with no delete anywhere: the single ambiguous put
  // cannot explain both observations.
  b.Op(0, OpType::kPut, "k", "v1", 0, 10, Outcome::kAmbiguous);
  b.Op(1, OpType::kGet, "k", "", 100, 110, Outcome::kOk, "v1");
  b.Op(1, OpType::kGet, "k", "", 120, 130, Outcome::kNotFound);
  EXPECT_EQ(CheckLinearizable(b.h).size(), 1u);
}

TEST(HistoryChecker, DeleteNotFoundAfterOwnTimedOutAttempt) {
  Builder b;
  // The proxy's first delete attempt landed server-side but the reply was
  // lost; the retry observed NotFound. The object must stay deleted.
  b.Op(0, OpType::kPut, "k", "v1", 0, 10, Outcome::kOk);
  b.Op(0, OpType::kDelete, "k", "", 20, 40, Outcome::kNotFound);
  b.Op(1, OpType::kGet, "k", "", 50, 60, Outcome::kNotFound);
  EXPECT_TRUE(CheckLinearizable(b.h).empty());
}

TEST(HistoryChecker, CreateOnceSemantics) {
  Builder b;
  // Two concurrent puts to the same fresh key: one Ok, one AlreadyExists.
  b.Op(0, OpType::kPut, "k", "v1", 0, 20, Outcome::kOk);
  b.Op(1, OpType::kPut, "k", "v2", 5, 25, Outcome::kNoEffect);
  b.Op(0, OpType::kGet, "k", "", 30, 40, Outcome::kOk, "v1");
  EXPECT_TRUE(CheckLinearizable(b.h).empty());
}

TEST(HistoryChecker, ObservingTheLoserIsViolation) {
  Builder b;
  // If the AlreadyExists put's value becomes visible, that's a bug.
  b.Op(0, OpType::kPut, "k", "v1", 0, 20, Outcome::kOk);
  b.Op(1, OpType::kPut, "k", "v2", 5, 25, Outcome::kNoEffect);
  b.Op(0, OpType::kGet, "k", "", 30, 40, Outcome::kOk, "v2");
  EXPECT_EQ(CheckLinearizable(b.h).size(), 1u);
}

TEST(HistoryChecker, DeleteThenRecreate) {
  Builder b;
  b.Op(0, OpType::kPut, "k", "v1", 0, 10, Outcome::kOk);
  b.Op(0, OpType::kDelete, "k", "", 20, 30, Outcome::kOk);
  b.Op(0, OpType::kPut, "k", "v2", 40, 50, Outcome::kOk);
  b.Op(1, OpType::kGet, "k", "", 60, 70, Outcome::kOk, "v2");
  EXPECT_TRUE(CheckLinearizable(b.h).empty());
}

TEST(HistoryChecker, ReadMustRespectRealTimeOrder) {
  Builder b;
  // v2 was observed before v1's delete+recreate sequence even started — but
  // here there is no such sequence, so observing v1 after v2's ack is stale.
  b.Op(0, OpType::kPut, "k", "v1", 0, 10, Outcome::kOk);
  b.Op(0, OpType::kDelete, "k", "", 20, 30, Outcome::kOk);
  b.Op(0, OpType::kPut, "k", "v2", 40, 50, Outcome::kOk);
  b.Op(1, OpType::kGet, "k", "", 60, 70, Outcome::kOk, "v1");  // stale value
  EXPECT_EQ(CheckLinearizable(b.h).size(), 1u);
}

TEST(HistoryChecker, ConcurrentReadsMayDisagreeDuringWindow) {
  Builder b;
  // A get concurrent with the put may see either state.
  b.Op(0, OpType::kPut, "k", "v1", 0, 50, Outcome::kOk);
  b.Op(1, OpType::kGet, "k", "", 10, 20, Outcome::kNotFound);
  b.Op(2, OpType::kGet, "k", "", 30, 45, Outcome::kOk, "v1");
  EXPECT_TRUE(CheckLinearizable(b.h).empty());
}

TEST(HistoryChecker, PendingOpIsAmbiguous) {
  Builder b;
  b.Pending(0, OpType::kPut, "k", "v1", 0);  // client never saw a reply
  b.Op(1, OpType::kGet, "k", "", 100, 110, Outcome::kOk, "v1");
  EXPECT_TRUE(CheckLinearizable(b.h).empty());
}

TEST(HistoryChecker, MultiKeyHistoriesAreIndependent) {
  Builder b;
  b.Op(0, OpType::kPut, "a", "v1", 0, 10, Outcome::kOk);
  b.Op(0, OpType::kPut, "b", "v2", 20, 30, Outcome::kOk);
  b.Op(1, OpType::kGet, "a", "", 40, 50, Outcome::kNotFound);  // a is broken
  b.Op(1, OpType::kGet, "b", "", 40, 50, Outcome::kOk, "v2");  // b is fine
  auto v = CheckLinearizable(b.h);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].key, "a");
}

TEST(HistoryChecker, SerializeIsStable) {
  Builder b;
  b.Op(0, OpType::kPut, "k", "v1", 0, 10, Outcome::kOk);
  b.Op(1, OpType::kGet, "k", "", 20, 30, Outcome::kOk, "v1");
  const std::string once = b.h.Serialize();
  EXPECT_FALSE(once.empty());
  EXPECT_EQ(once, b.h.Serialize());
  EXPECT_NE(once.find("put"), std::string::npos);
}

TEST(HistoryChecker, OverlongHistoryIsLoudNotSilent) {
  Builder b;
  for (int i = 0; i < 70; ++i) {
    b.Op(0, OpType::kGet, "k", "", i * 10, i * 10 + 5, Outcome::kNotFound);
  }
  auto v = CheckLinearizable(b.h);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].reason.find("too long"), std::string::npos);
}

}  // namespace
}  // namespace cheetah::chaos
