// Chaos with QoS enabled: a nemesis schedule (crashes, partitions, link
// faults) runs against a cluster whose schedulers are live, while an explicit
// background PG-pull storm keeps the low classes busy. Asserts that
//   (1) every per-key history is linearizable — admission control and
//       retry-after bounces never break client semantics,
//   (2) no foreground request was shed anywhere while background classes
//       were actively dispatched — the shed ladder stops above foreground,
//   (3) the whole run replays byte-for-byte (history serialization equality
//       across two identical runs).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "src/chaos/history.h"
#include "src/chaos/nemesis.h"
#include "src/core/messages.h"
#include "src/core/testbed.h"
#include "src/obs/metrics.h"
#include "src/qos/qos.h"

namespace cheetah::chaos {
namespace {

using core::ClientProxy;
using core::Testbed;
using core::TestbedConfig;

// Sums every "qos@<node>#<instance>.<field>" counter in the global registry.
// Schedulers are recreated (with fresh Scope instances) on every restart, so
// the per-run total has to be collected from the registry rather than from
// the testbed's current scheduler objects.
uint64_t SumQosCounters(const std::string& field) {
  const std::string json = obs::Registry::Global().ToJson();
  const std::string needle = "." + field + "\":";
  uint64_t total = 0;
  size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    const size_t key_start = json.rfind('"', pos);
    if (key_start != std::string::npos &&
        json.compare(key_start + 1, 4, "qos@") == 0) {
      total += std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
    }
    pos += needle.size();
  }
  return total;
}

std::string Payload(int worker, int i, const std::string& key) {
  std::string out =
      "v-w" + std::to_string(worker) + "-" + std::to_string(i) + "|" + key + "|";
  out.resize(1024, 'x');
  return out;
}

// Keeps the background class busy for the whole run: pull PGs from the meta
// servers in a loop, honoring retry-after pushback like a polite scrubber.
sim::Task<> BgPuller(rpc::Node* rpc, Testbed* bed, std::shared_ptr<bool> stop,
                     int idx) {
  uint32_t pg = static_cast<uint32_t>(idx);
  while (!*stop) {
    core::PgPullRequest req;
    req.pg = pg++ % bed->config().pg_count;
    req.limit = 64;
    const int meta = static_cast<int>(pg) % bed->num_meta();
    auto r = co_await rpc->Call(bed->meta_node(meta), std::move(req), Millis(300));
    if (!r.ok() && r.status().IsOverloaded()) {
      co_await sim::SleepFor(qos::RetryAfterOf(r.status(), Millis(20)));
    }
    co_await sim::SleepFor(Millis(10));
  }
}

struct QosChaosResult {
  std::string history;      // serialized, for the determinism comparison
  std::string schedule_str;
  bool workers_done = false;
  bool linearizable = false;
  std::string violations;
  uint64_t fg_sheds = 0;
  uint64_t bg_dispatched = 0;
};

// Pure function of `seed` (modulo obs instance numbering, which the history
// comparison deliberately ignores).
QosChaosResult RunQosChaos(uint64_t seed) {
  QosChaosResult result;
  TestbedConfig config;
  config.meta_machines = 4;
  config.data_machines = 4;
  config.proxies = 3;
  config.pg_count = 8;
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 3;
  config.lv_capacity_bytes = MiB(128);
  config.options.qos.enabled = true;
  const int meta_count = config.meta_machines;
  const int data_count = config.data_machines;
  Testbed bed(std::move(config));
  if (!bed.Boot().ok()) {
    ADD_FAILURE() << "boot failed";
    return result;
  }

  const uint64_t fg_sheds_before = SumQosCounters("shed.foreground");
  const uint64_t bg_dispatched_before = SumQosCounters("dispatched.background");

  const Nanos span = Seconds(4);
  bed.network().SeedFaults(seed * 7919 + 42);
  NemesisSchedule schedule =
      StandardSchedules(seed, meta_count, data_count, span).back();  // Combined
  result.schedule_str = schedule.ToString();
  schedule.Install(bed);

  auto stop_pullers = std::make_shared<bool>(false);
  for (int i = 0; i < 2; ++i) {
    bed.proxy_machine(2).actor().Spawn(
        BgPuller(&bed.proxy_rpc(2), &bed, stop_pullers, i));
  }

  auto history = std::make_shared<History>();
  auto done_workers = std::make_shared<int>(0);
  constexpr int kWorkers = 3;
  constexpr int kKeys = 8;
  constexpr int kRounds = 12;
  for (int w = 0; w < kWorkers; ++w) {
    bed.RunOnProxy(w, [w, seed, history, done_workers,
                       &loop = bed.loop()](ClientProxy& proxy) -> sim::Task<> {
      Rng rng(seed * 1000003 + static_cast<uint64_t>(w));
      for (int i = 0; i < kRounds; ++i) {
        const std::string key = "obj-" + std::to_string(rng.Uniform(kKeys));
        const uint64_t dice = rng.Uniform(100);
        if (dice < 50) {
          const std::string value = Payload(w, i, key);
          const uint64_t id = history->Invoke(w, OpType::kPut, key, value, loop.Now());
          Status s = co_await proxy.Put(key, value);
          Outcome out = Outcome::kAmbiguous;
          if (s.ok()) {
            out = Outcome::kOk;
          } else if (s.code() == ErrorCode::kAlreadyExists ||
                     s.code() == ErrorCode::kResourceExhausted) {
            out = Outcome::kNoEffect;
          }
          history->Return(id, out, "", loop.Now());
        } else if (dice < 80) {
          const uint64_t id = history->Invoke(w, OpType::kGet, key, "", loop.Now());
          auto r = co_await proxy.Get(key);
          if (r.ok()) {
            history->Return(id, Outcome::kOk, *r, loop.Now());
          } else if (r.status().IsNotFound()) {
            history->Return(id, Outcome::kNotFound, "", loop.Now());
          } else {
            history->Return(id, Outcome::kNoEffect, "", loop.Now());
          }
        } else {
          const uint64_t id = history->Invoke(w, OpType::kDelete, key, "", loop.Now());
          Status s = co_await proxy.Delete(key);
          Outcome out = Outcome::kAmbiguous;
          if (s.ok()) {
            out = Outcome::kOk;
          } else if (s.IsNotFound()) {
            out = Outcome::kNotFound;
          }
          history->Return(id, out, "", loop.Now());
        }
        co_await sim::SleepFor(Millis(40) + rng.Uniform(Millis(160)));
      }
      ++*done_workers;
    }, Nanos{0});
  }
  const Nanos deadline = bed.loop().Now() + Seconds(120);
  while (*done_workers < kWorkers && bed.loop().Now() < deadline) {
    if (!bed.loop().RunOne()) {
      break;
    }
  }
  result.workers_done = *done_workers == kWorkers;

  // Restore, settle, audit every key into the same history.
  *stop_pullers = true;
  bed.Heal();
  bed.network().ClearLinkFaults();
  for (int i = 0; i < bed.num_data(); ++i) {
    bed.data_machine(i).ClearGrayFailure();
  }
  for (sim::NodeId node : bed.AllNodes()) {
    bed.Restart(node);
  }
  bed.RunFor(Seconds(5));
  for (int k = 0; k < kKeys; ++k) {
    const std::string key = "obj-" + std::to_string(k);
    const uint64_t id = history->Invoke(99, OpType::kGet, key, "", bed.loop().Now());
    auto r = bed.GetObject(0, key);
    if (r.ok()) {
      history->Return(id, Outcome::kOk, *r, bed.loop().Now());
    } else if (r.status().IsNotFound()) {
      history->Return(id, Outcome::kNotFound, "", bed.loop().Now());
    } else {
      history->Return(id, Outcome::kNoEffect, "", bed.loop().Now());
    }
  }

  result.fg_sheds = SumQosCounters("shed.foreground") - fg_sheds_before;
  result.bg_dispatched =
      SumQosCounters("dispatched.background") - bg_dispatched_before;
  auto violations = CheckLinearizable(*history);
  result.linearizable = violations.empty();
  result.violations = FormatViolations(violations);
  result.history = history->Serialize();
  return result;
}

TEST(QosChaosTest, CombinedNemesisWithQosStaysLinearizableAndNeverShedsForeground) {
  const uint64_t seed = 1;
  QosChaosResult r = RunQosChaos(seed);
  EXPECT_TRUE(r.workers_done) << "workload hung under schedule:\n" << r.schedule_str;
  EXPECT_TRUE(r.linearizable) << r.violations << "schedule (seed " << seed << "):\n"
                              << r.schedule_str;
  // Background traffic (explicit pullers + crash-recovery PG pulls) must
  // actually have flowed through the schedulers...
  EXPECT_GT(r.bg_dispatched, 0u);
  // ...while foreground was never shed: the ladder stops above it, and the
  // chaos workload is far below any foreground queue bound.
  EXPECT_EQ(r.fg_sheds, 0u);
}

TEST(QosChaosTest, QosChaosRunIsDeterministic) {
  QosChaosResult a = RunQosChaos(2);
  QosChaosResult b = RunQosChaos(2);
  ASSERT_TRUE(a.workers_done);
  ASSERT_TRUE(b.workers_done);
  EXPECT_EQ(a.history, b.history);
  EXPECT_EQ(a.schedule_str, b.schedule_str);
  EXPECT_EQ(a.fg_sheds, b.fg_sheds);
}

}  // namespace
}  // namespace cheetah::chaos
