// Erasure-coding chaos sweep: the full tiering pipeline — inline puts,
// replica puts, background demotion to RS(k,m) stripes — under chunk loss
// (a crashed data machine), at-rest bit rot, and a gray-corrupting disk,
// while writers and deleters race the demotion engine. Invariants, per seed:
//
//   1. Client histories stay linearizable under create-once register
//      semantics: demotion is invisible to clients except as availability.
//   2. Zero corrupt payload bytes are ever acked — degraded reads
//      reconstruct, they never guess.
//   3. Damage is repaired within a fixed virtual-time budget after the fault
//      window closes: a final scrub pass finds nothing left.
//   4. The whole run is a pure function of the seed (replayable).
//
// Seed policy mirrors the other sweeps: CHEETAH_EC_SEEDS is a comma-separated
// list (default "1,2"); failures print the seed + schedule for replay.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/chaos/history.h"
#include "src/chaos/nemesis.h"
#include "src/common/crc32c.h"
#include "src/core/scrubber.h"
#include "src/core/testbed.h"
#include "src/sim/event_loop.h"
#include "src/tier/engine.h"

namespace cheetah::chaos {
namespace {

using core::ClientProxy;
using core::MetaServer;
using core::Testbed;
using core::TestbedConfig;

constexpr int kKeys = 8;
constexpr int kWorkers = 3;
constexpr int kRounds = 12;

std::vector<uint64_t> EcSeeds() {
  std::vector<uint64_t> seeds;
  const char* env = std::getenv("CHEETAH_EC_SEEDS");
  std::string spec = env != nullptr ? env : "1,2";
  std::stringstream ss(spec);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) {
      seeds.push_back(std::strtoull(tok.c_str(), nullptr, 10));
    }
  }
  if (seeds.empty()) {
    seeds.push_back(1);
  }
  return seeds;
}

// RS(2,1) stripes next to 3-way replica LVs: 4 machines x 2 disks x 6 PVs.
// Byte-for-byte payload storage so reconstruction is actually checked.
TestbedConfig EcChaosConfig() {
  TestbedConfig config;
  config.meta_machines = 3;
  config.data_machines = 4;
  config.proxies = kWorkers;
  config.pg_count = 8;
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 6;
  config.lv_capacity_bytes = MiB(128);
  config.options.qos.enabled = true;  // tier/scrub I/O rides maintenance
  config.options.scrub_interval = Millis(250);
  config.options.tier.inline_threshold = 512;
  config.options.tier.ec_k = 2;
  config.options.tier.ec_m = 1;
  config.options.tier.min_ec_object_bytes = 4096;
  config.options.tier.demote_after = Millis(150);
  config.options.tier.tier_scan_interval = Millis(300);
  return config;
}

// Payload sizes cycle through the three storage classes: inline (<= 512),
// replica-for-now (2KB, below min_ec_object_bytes), and demotion candidates
// (16KB). Deterministic bytes per (seed, key, version).
std::string Payload(uint64_t seed, const std::string& key, int version) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + Crc32c(key) + static_cast<uint64_t>(version));
  const size_t sizes[] = {256, 2048, 16384};
  std::string out = key + "#" + std::to_string(version) + "|";
  const size_t target = sizes[rng.Uniform(3)];
  while (out.size() < target) {
    out += static_cast<char>('a' + rng.Uniform(26));
  }
  return out;
}

struct EcSweepResult {
  std::string schedule_str;
  bool workers_done = false;
  History history;
  uint64_t demotions = 0;
  uint64_t inline_puts = 0;
  uint64_t ec_degraded_reads = 0;
  uint64_t corrupt_acked = 0;     // OK gets whose bytes were not a put value
  uint64_t residual_corrupt = 0;  // probe failures in the final audit pass
  std::string fingerprint;
};

void ScrubAllOnce(Testbed& bed) {
  auto pending = std::make_shared<int>(bed.num_meta());
  for (int i = 0; i < bed.num_meta(); ++i) {
    bed.meta_machine(i).actor().Spawn(
        [](MetaServer* server, std::shared_ptr<int> pending) -> sim::Task<> {
          co_await server->ScrubNow();
          --*pending;
        }(&bed.meta(i), pending));
  }
  while (*pending > 0 && bed.loop().RunOne()) {
  }
}

uint64_t TotalCorruptFound(Testbed& bed) {
  uint64_t total = 0;
  for (int i = 0; i < bed.num_meta(); ++i) {
    total += bed.meta(i).scrubber().stats().corrupt_found;
  }
  return total;
}

// One full EC chaos run; a pure function of the seed.
EcSweepResult RunEcSweep(uint64_t seed) {
  EcSweepResult result;
  TestbedConfig config = EcChaosConfig();
  const int data_count = config.data_machines;
  Testbed bed(std::move(config));
  if (!bed.Boot().ok()) {
    ADD_FAILURE() << "boot failed";
    return result;
  }

  // Phase 1: populate every key (version 0), then let the cleaner settle the
  // puts and the first demotion waves run — the chaos arrives with stripes
  // already on disk.
  auto history = std::make_shared<History>();
  for (int k = 0; k < kKeys; ++k) {
    const std::string key = "ec-" + std::to_string(k);
    const std::string value = Payload(seed, key, 0);
    const uint64_t id = history->Invoke(98, OpType::kPut, key, value, bed.loop().Now());
    Status s = bed.PutObject(0, key, value);
    history->Return(id, s.ok() ? Outcome::kOk : Outcome::kAmbiguous, "",
                    bed.loop().Now());
  }
  bed.RunFor(Seconds(2));

  // Phase 2: chunk loss + rot + wild writes while workers mutate and read.
  const Nanos span = Seconds(3);
  bed.network().SeedFaults(seed * 7919);
  NemesisSchedule schedule = EcChunkChaos(seed, data_count, span);
  result.schedule_str = schedule.ToString();
  schedule.Install(bed);

  auto done_workers = std::make_shared<int>(0);
  for (int w = 0; w < kWorkers; ++w) {
    bed.RunOnProxy(w, [w, seed, history, done_workers,
                       &loop = bed.loop()](ClientProxy& proxy) -> sim::Task<> {
      Rng rng(seed * 1000003 + static_cast<uint64_t>(w));
      for (int i = 0; i < kRounds; ++i) {
        const std::string key = "ec-" + std::to_string(rng.Uniform(kKeys));
        const uint64_t dice = rng.Uniform(100);
        if (dice < 25) {
          // Recreate with a fresh version: races demotion's swap phase.
          const std::string value =
              Payload(seed, key, w * 1000 + i + 1);
          const uint64_t id = history->Invoke(w, OpType::kPut, key, value, loop.Now());
          Status s = co_await proxy.Put(key, value);
          Outcome out = Outcome::kAmbiguous;
          if (s.ok()) {
            out = Outcome::kOk;
          } else if (s.code() == ErrorCode::kAlreadyExists ||
                     s.code() == ErrorCode::kResourceExhausted) {
            out = Outcome::kNoEffect;
          }
          history->Return(id, out, "", loop.Now());
        } else if (dice < 80) {
          const uint64_t id = history->Invoke(w, OpType::kGet, key, "", loop.Now());
          auto r = co_await proxy.Get(key);
          if (r.ok()) {
            history->Return(id, Outcome::kOk, *r, loop.Now());
          } else if (r.status().IsNotFound()) {
            history->Return(id, Outcome::kNotFound, "", loop.Now());
          } else {
            history->Return(id, Outcome::kNoEffect, "", loop.Now());
          }
        } else {
          const uint64_t id = history->Invoke(w, OpType::kDelete, key, "", loop.Now());
          Status s = co_await proxy.Delete(key);
          Outcome out = Outcome::kAmbiguous;
          if (s.ok()) {
            out = Outcome::kOk;
          } else if (s.IsNotFound()) {
            out = Outcome::kNotFound;
          }
          history->Return(id, out, "", loop.Now());
        }
        co_await sim::SleepFor(Millis(40) + rng.Uniform(Millis(160)));
      }
      ++*done_workers;
    }, Nanos{0});
  }
  const Nanos deadline = bed.loop().Now() + Seconds(120);
  while (*done_workers < kWorkers && bed.loop().Now() < deadline) {
    if (!bed.loop().RunOne()) {
      break;
    }
  }
  result.workers_done = *done_workers == kWorkers;

  // Phase 3: restore, give scrub + tier a fixed repair budget, then audit.
  for (int i = 0; i < bed.num_data(); ++i) {
    bed.data_machine(i).ClearGrayFailure();
  }
  bed.RunFor(Seconds(4));
  ScrubAllOnce(bed);
  bed.RunFor(Millis(500));

  const uint64_t corrupt_before_audit = TotalCorruptFound(bed);
  ScrubAllOnce(bed);
  result.residual_corrupt = TotalCorruptFound(bed) - corrupt_before_audit;

  // Final reads join the history; the checker then owns end-state validity.
  for (int k = 0; k < kKeys; ++k) {
    const std::string key = "ec-" + std::to_string(k);
    const uint64_t id = history->Invoke(99, OpType::kGet, key, "", bed.loop().Now());
    auto r = bed.GetObject(0, key);
    if (r.ok()) {
      history->Return(id, Outcome::kOk, *r, bed.loop().Now());
    } else if (r.status().IsNotFound()) {
      history->Return(id, Outcome::kNotFound, "", bed.loop().Now());
    } else {
      history->Return(id, Outcome::kNoEffect, "", bed.loop().Now());
    }
  }

  // Every acked get must be byte-identical to some version actually written
  // to that key — reconstruction may never hand back invented bytes.
  for (const Op& op : history->ops()) {
    if (op.type != OpType::kGet || op.outcome != Outcome::kOk) {
      continue;
    }
    bool known = false;
    for (const Op& put : history->ops()) {
      if (put.type == OpType::kPut && put.key == op.key && put.value == op.value) {
        known = true;
        break;
      }
    }
    if (!known) {
      ++result.corrupt_acked;
    }
  }

  for (int i = 0; i < bed.num_meta(); ++i) {
    auto ts = bed.meta(i).tier_engine().stats();
    result.demotions += ts.demotions;
  }
  for (int w = 0; w < kWorkers; ++w) {
    result.inline_puts += bed.proxy(w).stats().inline_puts;
    result.ec_degraded_reads += bed.proxy(w).stats().ec_degraded_reads;
  }
  result.history = *history;
  std::ostringstream fp;
  fp << "hist=" << Crc32c(history->Serialize()) << " demotions=" << result.demotions
     << " inline=" << result.inline_puts << " degraded=" << result.ec_degraded_reads
     << " corrupt_acked=" << result.corrupt_acked
     << " residual=" << result.residual_corrupt;
  result.fingerprint = fp.str();
  return result;
}

class EcSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EcSweep, LinearizableAndRepairedUnderChunkLoss) {
  const uint64_t seed = GetParam();
  EcSweepResult r = RunEcSweep(seed);
  const std::string replay =
      "replay: CHEETAH_EC_SEEDS=" + std::to_string(seed) +
      " ./build/tests/ec_sweep_test --gtest_filter='*Seed" + std::to_string(seed) +
      "'\nschedule:\n" + r.schedule_str;
  EXPECT_TRUE(r.workers_done) << "workload hung\n" << replay;
  // The tiering pipeline actually ran: objects were demoted to stripes and
  // small objects rode inline.
  EXPECT_GT(r.demotions, 0u) << "no object was ever demoted to EC\n" << replay;
  EXPECT_GT(r.inline_puts, 0u) << "no put ever went inline\n" << replay;
  // Invariant 2: no invented bytes, ever.
  EXPECT_EQ(r.corrupt_acked, 0u) << replay;
  // Invariant 3: the repair budget sufficed; the audit scrub is clean.
  EXPECT_EQ(r.residual_corrupt, 0u) << replay;
  // Invariant 1: the client-visible history is linearizable.
  auto violations = CheckLinearizable(r.history);
  EXPECT_TRUE(violations.empty()) << FormatViolations(violations) << replay;
}

std::string SeedName(const ::testing::TestParamInfo<uint64_t>& info) {
  return "Seed" + std::to_string(info.param);
}

INSTANTIATE_TEST_SUITE_P(Matrix, EcSweep, ::testing::ValuesIn(EcSeeds()), SeedName);

// Invariant 4: replayability — same seed, same schedule, same history, same
// repair stats.
TEST(EcDeterminism, SameSeedSameRun) {
  EcSweepResult a = RunEcSweep(1);
  EcSweepResult b = RunEcSweep(1);
  EXPECT_EQ(a.schedule_str, b.schedule_str);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_FALSE(a.fingerprint.empty());
  // Cross-engine guard: the reference heap engine must replay the identical
  // run byte for byte — the timer wheel is only allowed to be faster, never
  // different.
  sim::EventLoop::OverrideDefaultEngine(sim::EventLoop::Engine::kHeap);
  EcSweepResult c = RunEcSweep(1);
  sim::EventLoop::OverrideDefaultEngine(std::nullopt);
  EXPECT_EQ(a.schedule_str, c.schedule_str);
  EXPECT_EQ(a.fingerprint, c.fingerprint);
}

}  // namespace
}  // namespace cheetah::chaos
