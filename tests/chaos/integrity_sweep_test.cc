// Integrity chaos sweep: at-rest bit rot, latent sector errors, and a
// gray-corrupting disk against a cluster with verified reads, read-repair,
// and the background scrubber. The invariants, per seed:
//
//   1. Zero corrupt payload bytes are ever acked to a client — a damaged
//      replica may cost latency or an error, never wrong data.
//   2. Every injected at-rest fault is detected and repaired within the
//      fixed virtual-time budget after the fault window closes: a final
//      explicit scrub pass finds nothing left to fix, and every object reads
//      back byte-identical.
//   3. The whole run is a pure function of the seed (replayable).
//
// Seed policy mirrors the chaos sweep: CHEETAH_INTEGRITY_SEEDS is a
// comma-separated list (default "1,2" — the fixed CI set); the failure
// message prints the seed + schedule, which reproduce the run byte-for-byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/chaos/nemesis.h"
#include "src/common/crc32c.h"
#include "src/core/scrubber.h"
#include "src/core/testbed.h"
#include "src/sim/event_loop.h"
#include "tests/test_util.h"

namespace cheetah::chaos {
namespace {

using core::ClientProxy;
using core::MetaServer;
using core::Testbed;
using core::TestbedConfig;

constexpr int kObjects = 24;
constexpr int kWorkers = 2;
constexpr int kRounds = 30;

std::vector<uint64_t> IntegritySeeds() {
  std::vector<uint64_t> seeds;
  const char* env = std::getenv("CHEETAH_INTEGRITY_SEEDS");
  std::string spec = env != nullptr ? env : "1,2";
  std::stringstream ss(spec);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) {
      seeds.push_back(std::strtoull(tok.c_str(), nullptr, 10));
    }
  }
  if (seeds.empty()) {
    seeds.push_back(1);
  }
  return seeds;
}

TestbedConfig IntegrityConfig(bool scrub_on) {
  TestbedConfig config;
  config.meta_machines = 3;
  config.data_machines = 4;
  config.proxies = kWorkers;
  config.pg_count = 8;
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 3;
  config.lv_capacity_bytes = MiB(128);
  config.options.qos.enabled = true;  // repair rides the maintenance class
  if (scrub_on) {
    config.options.scrub_interval = Millis(250);
  }
  return config;
}

std::string ObjName(int k) { return "int-" + std::to_string(k); }

// Deterministic ~2KB payload, unique per (seed, object).
std::string ExpectedPayload(uint64_t seed, int k) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(k));
  std::string out = "obj" + std::to_string(k) + "|";
  while (out.size() < 2048) {
    out += static_cast<char>('a' + rng.Uniform(26));
  }
  return out;
}

struct IntegrityResult {
  std::string schedule_str;
  bool workers_done = false;
  uint64_t corrupt_acked = 0;     // gets that returned wrong bytes — must be 0
  uint64_t failed_gets = 0;       // gets that errored mid-chaos (allowed)
  uint64_t ok_gets = 0;
  uint64_t injected = 0;          // bit-rot + LSE + gray-corrupted writes
  uint64_t read_repairs = 0;
  uint64_t scrub_repairs = 0;
  uint64_t residual_corrupt = 0;  // probe failures in the final audit pass
  uint64_t final_mismatches = 0;  // audit reads that failed or diverged
  std::vector<Nanos> get_lat;     // successful foreground get latencies
  std::string fingerprint;        // determinism: stats + final payload CRCs
};

void ScrubAllOnce(Testbed& bed) {
  auto pending = std::make_shared<int>(bed.num_meta());
  for (int i = 0; i < bed.num_meta(); ++i) {
    bed.meta_machine(i).actor().Spawn(
        [](MetaServer* server, std::shared_ptr<int> pending) -> sim::Task<> {
          co_await server->ScrubNow();
          --*pending;
        }(&bed.meta(i), pending));
  }
  while (*pending > 0 && bed.loop().RunOne()) {
  }
}

uint64_t TotalCorruptFound(Testbed& bed) {
  uint64_t total = 0;
  for (int i = 0; i < bed.num_meta(); ++i) {
    total += bed.meta(i).scrubber().stats().corrupt_found;
  }
  return total;
}

// One full integrity run; a pure function of (seed, with_nemesis, scrub_on).
IntegrityResult RunIntegrity(uint64_t seed, bool with_nemesis, bool scrub_on) {
  IntegrityResult result;
  TestbedConfig config = IntegrityConfig(scrub_on);
  const int data_count = config.data_machines;
  Testbed bed(std::move(config));
  if (!bed.Boot().ok()) {
    ADD_FAILURE() << "boot failed";
    return result;
  }

  // Phase 1: populate, and let the cleaner settle the puts so the scrubber
  // covers every object.
  for (int k = 0; k < kObjects; ++k) {
    Status s = bed.PutObject(0, ObjName(k), ExpectedPayload(seed, k));
    if (!s.ok()) {
      ADD_FAILURE() << "put failed: " << s.ToString();
      return result;
    }
  }
  bed.RunFor(Seconds(2));

  // Phase 2: damage arrives while readers hammer the objects.
  const Nanos span = Seconds(3);
  if (with_nemesis) {
    bed.network().SeedFaults(seed * 7919);
    NemesisSchedule schedule = IntegrityChaos(seed, data_count, span);
    result.schedule_str = schedule.ToString();
    schedule.Install(bed);
  }
  auto shared = std::make_shared<IntegrityResult>();
  auto done_workers = std::make_shared<int>(0);
  for (int w = 0; w < kWorkers; ++w) {
    bed.RunOnProxy(w, [w, seed, shared, done_workers, span,
                       &loop = bed.loop()](ClientProxy& proxy) -> sim::Task<> {
      Rng rng(seed * 1000003 + static_cast<uint64_t>(w));
      for (int i = 0; i < kRounds; ++i) {
        const int k = static_cast<int>(rng.Uniform(kObjects));
        const Nanos begin = loop.Now();
        auto r = co_await proxy.Get(ObjName(k));
        if (r.ok()) {
          ++shared->ok_gets;
          shared->get_lat.push_back(loop.Now() - begin);
          if (*r != ExpectedPayload(seed, k)) {
            ++shared->corrupt_acked;  // silent corruption reached a client
          }
        } else {
          ++shared->failed_gets;
        }
        co_await sim::SleepFor(span / kRounds / 2 + rng.Uniform(span / kRounds));
      }
      ++*done_workers;
    }, Nanos{0});
  }
  const Nanos deadline = bed.loop().Now() + Seconds(120);
  while (*done_workers < kWorkers && bed.loop().Now() < deadline) {
    if (!bed.loop().RunOne()) {
      break;
    }
  }
  result = std::move(*shared);
  result.workers_done = *done_workers == kWorkers;
  if (with_nemesis) {
    NemesisSchedule schedule = IntegrityChaos(seed, data_count, span);
    result.schedule_str = schedule.ToString();
  }

  // Phase 3: the repair budget. The fault window is closed (IntegrityChaos
  // clears its own gray failure); the periodic scrubber gets a fixed slice
  // of virtual time, then one explicit pass mops up anything it missed.
  for (int i = 0; i < bed.num_data(); ++i) {
    bed.data_machine(i).ClearGrayFailure();
  }
  bed.RunFor(Seconds(3));
  ScrubAllOnce(bed);
  bed.RunFor(Millis(500));

  // Audit pass: a fresh scrub must find nothing left to repair, and every
  // object must read back byte-identical.
  const uint64_t corrupt_before_audit = TotalCorruptFound(bed);
  ScrubAllOnce(bed);
  result.residual_corrupt = TotalCorruptFound(bed) - corrupt_before_audit;
  std::ostringstream fp;
  for (int k = 0; k < kObjects; ++k) {
    auto r = bed.GetObject(0, ObjName(k));
    if (!r.ok() || *r != ExpectedPayload(seed, k)) {
      ++result.final_mismatches;
      fp << "k" << k << "=BAD ";
    } else {
      fp << "k" << k << "=" << Crc32c(*r) << " ";
    }
  }

  for (int i = 0; i < bed.num_data(); ++i) {
    auto& m = bed.data_machine(i);
    for (uint32_t di = 0; di < m.num_disks(); ++di) {
      result.injected += m.disk(di).bitrot_extents() + m.disk(di).lse_extents() +
                         m.disk(di).writes_corrupted();
    }
  }
  for (int i = 0; i < bed.num_meta(); ++i) {
    result.scrub_repairs += bed.meta(i).scrubber().stats().repairs;
  }
  for (int w = 0; w < kWorkers; ++w) {
    result.read_repairs += bed.proxy(w).stats().read_repairs;
  }
  fp << "| injected=" << result.injected << " scrub_repairs=" << result.scrub_repairs
     << " read_repairs=" << result.read_repairs
     << " corrupt_acked=" << result.corrupt_acked
     << " ok=" << result.ok_gets << " failed=" << result.failed_gets;
  result.fingerprint = fp.str();
  return result;
}

Nanos P99(std::vector<Nanos> lat) {
  if (lat.empty()) {
    return 0;
  }
  std::sort(lat.begin(), lat.end());
  return lat[std::min(lat.size() - 1, (lat.size() * 99) / 100)];
}

class IntegritySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntegritySweep, NoCorruptionAckedAndAllDamageRepaired) {
  const uint64_t seed = GetParam();
  IntegrityResult r = RunIntegrity(seed, /*with_nemesis=*/true, /*scrub_on=*/true);
  const std::string replay =
      "replay: CHEETAH_INTEGRITY_SEEDS=" + std::to_string(seed) +
      " ./build/tests/integrity_sweep_test --gtest_filter='*Seed" +
      std::to_string(seed) + "'\nschedule:\n" + r.schedule_str;
  EXPECT_TRUE(r.workers_done) << "reader workload hung\n" << replay;
  EXPECT_GT(r.injected, 0u) << "nemesis injected no damage\n" << replay;
  EXPECT_GT(r.ok_gets, 0u) << "no get ever succeeded\n" << replay;
  // Invariant 1: never wrong bytes, no matter what rotted underneath.
  EXPECT_EQ(r.corrupt_acked, 0u) << replay;
  // Invariant 2: within the fixed post-fault budget, the scrubber has found
  // and fixed everything — the audit pass has nothing left to flag, and the
  // cluster serves every object byte-identical again.
  EXPECT_EQ(r.residual_corrupt, 0u) << replay;
  EXPECT_EQ(r.final_mismatches, 0u) << replay;
  // The pipeline was actually exercised: something repaired the damage.
  EXPECT_GT(r.scrub_repairs + r.read_repairs, 0u) << replay;
}

std::string SeedName(const ::testing::TestParamInfo<uint64_t>& info) {
  return "Seed" + std::to_string(info.param);
}

INSTANTIATE_TEST_SUITE_P(Matrix, IntegritySweep,
                         ::testing::ValuesIn(IntegritySeeds()), SeedName);

// Invariant 3: replayability. Two runs of the same seed produce identical
// schedules, stats, and final payload checksums.
TEST(IntegrityDeterminism, SameSeedSameRun) {
  IntegrityResult a = RunIntegrity(1, /*with_nemesis=*/true, /*scrub_on=*/true);
  IntegrityResult b = RunIntegrity(1, /*with_nemesis=*/true, /*scrub_on=*/true);
  EXPECT_EQ(a.schedule_str, b.schedule_str);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_FALSE(a.fingerprint.empty());
  // Cross-engine guard: the reference heap engine must replay the identical
  // run byte for byte — the timer wheel is only allowed to be faster, never
  // different.
  sim::EventLoop::OverrideDefaultEngine(sim::EventLoop::Engine::kHeap);
  IntegrityResult c = RunIntegrity(1, /*with_nemesis=*/true, /*scrub_on=*/true);
  sim::EventLoop::OverrideDefaultEngine(std::nullopt);
  EXPECT_EQ(a.schedule_str, c.schedule_str);
  EXPECT_EQ(a.fingerprint, c.fingerprint);
}

// Scrub overhead: with no faults at all, foreground get p99 with the
// periodic scrubber active stays within 2x of the scrub-off baseline — the
// maintenance QoS class keeps audit I/O out of the foreground's way.
TEST(IntegrityScrubOverhead, ForegroundP99Bounded) {
  IntegrityResult off = RunIntegrity(1, /*with_nemesis=*/false, /*scrub_on=*/false);
  IntegrityResult on = RunIntegrity(1, /*with_nemesis=*/false, /*scrub_on=*/true);
  ASSERT_TRUE(off.workers_done);
  ASSERT_TRUE(on.workers_done);
  EXPECT_EQ(off.corrupt_acked, 0u);
  EXPECT_EQ(on.corrupt_acked, 0u);
  EXPECT_EQ(off.failed_gets, 0u);
  EXPECT_EQ(on.failed_gets, 0u);
  const Nanos p99_off = P99(off.get_lat);
  const Nanos p99_on = P99(on.get_lat);
  EXPECT_GT(p99_off, 0);
  EXPECT_LE(p99_on, 2 * p99_off)
      << "get p99 " << p99_on << "ns with scrub vs " << p99_off << "ns without";
}

}  // namespace
}  // namespace cheetah::chaos
