// Resize-under-fire chaos: a planned drain runs mid-workload while a nemesis
// attacks a different leg of the live-migration state machine — the source
// dies mid-DoubleWrite, the destination dies mid-Catchup, or the manager
// leader is partitioned around Cutover. Every client operation is recorded
// and each per-key history is checked for linearizability; the final audit
// proves no lost or ghost objects. Any failure prints the seed + schedule,
// which reproduce the run byte-for-byte.
//
// Seed policy mirrors the chaos sweep: CHEETAH_MIGRATE_SEEDS is a
// comma-separated list (default "1,2,3" — the fixed CI set; pass larger sets
// for local hunts, scripts/chaos.sh style).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/chaos/history.h"
#include "src/chaos/nemesis.h"
#include "src/core/testbed.h"
#include "src/sim/event_loop.h"
#include "tests/test_util.h"

namespace cheetah::chaos {
namespace {

using core::ClientProxy;
using core::Testbed;
using core::TestbedConfig;

constexpr const char* kFaultNames[] = {"CrashSource", "CrashDestination",
                                       "PartitionLeader"};

std::vector<uint64_t> MigrateSeeds() {
  std::vector<uint64_t> seeds;
  const char* env = std::getenv("CHEETAH_MIGRATE_SEEDS");
  std::string spec = env != nullptr ? env : "1,2,3";
  std::stringstream ss(spec);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) {
      seeds.push_back(std::strtoull(tok.c_str(), nullptr, 10));
    }
  }
  if (seeds.empty()) {
    seeds.push_back(1);
  }
  return seeds;
}

// Four meta machines: a drained node needs a destination among the survivors
// (replication 3 of the remaining 3).
TestbedConfig MigrateChaosConfig() {
  TestbedConfig config;
  config.meta_machines = 4;
  config.data_machines = 4;
  config.proxies = 3;
  config.pg_count = 8;
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 3;
  config.lv_capacity_bytes = MiB(128);
  return config;
}

std::string Payload(int worker, int i, const std::string& key) {
  std::string tag = "v-w" + std::to_string(worker) + "-" + std::to_string(i);
  std::string out = tag + "|" + key + "|";
  out.resize(1024, 'x');
  return out;
}

struct SweepResult {
  History history;
  std::string schedule_str;
  bool workers_done = false;
  bool audit_healthy = true;
  bool migrations_settled = false;  // no in-flight migration after the run
};

// One full run: pure function of (fault_idx, seed) — the determinism test
// relies on it.
SweepResult RunSweep(int fault_idx, uint64_t seed) {
  SweepResult result;
  TestbedConfig config = MigrateChaosConfig();
  const int meta_count = config.meta_machines;
  Testbed bed(std::move(config));
  if (!bed.Boot().ok()) {
    ADD_FAILURE() << "boot failed";
    return result;
  }
  const Nanos span = Seconds(4);
  bed.network().SeedFaults(seed * 7919 + static_cast<uint64_t>(fault_idx));
  NemesisSchedule schedule = MigrationSchedules(seed, meta_count, span).at(fault_idx);
  result.schedule_str = schedule.ToString();
  schedule.Install(bed);

  auto history = std::make_shared<History>();
  auto done_workers = std::make_shared<int>(0);
  constexpr int kWorkers = 3;
  constexpr int kKeys = 8;
  constexpr int kRounds = 14;
  for (int w = 0; w < kWorkers; ++w) {
    bed.RunOnProxy(w, [w, seed, history, done_workers,
                       &loop = bed.loop()](ClientProxy& proxy) -> sim::Task<> {
      Rng rng(seed * 1000003 + static_cast<uint64_t>(w));
      for (int i = 0; i < kRounds; ++i) {
        const std::string key = "obj-" + std::to_string(rng.Uniform(kKeys));
        const uint64_t dice = rng.Uniform(100);
        if (dice < 50) {
          const std::string value = Payload(w, i, key);
          const uint64_t id = history->Invoke(w, OpType::kPut, key, value, loop.Now());
          Status s = co_await proxy.Put(key, value);
          Outcome out = Outcome::kAmbiguous;
          if (s.ok()) {
            out = Outcome::kOk;
          } else if (s.code() == ErrorCode::kAlreadyExists ||
                     s.code() == ErrorCode::kResourceExhausted) {
            out = Outcome::kNoEffect;
          }
          history->Return(id, out, "", loop.Now());
        } else if (dice < 80) {
          const uint64_t id = history->Invoke(w, OpType::kGet, key, "", loop.Now());
          auto r = co_await proxy.Get(key);
          if (r.ok()) {
            history->Return(id, Outcome::kOk, *r, loop.Now());
          } else if (r.status().IsNotFound()) {
            history->Return(id, Outcome::kNotFound, "", loop.Now());
          } else {
            history->Return(id, Outcome::kNoEffect, "", loop.Now());
          }
        } else {
          const uint64_t id = history->Invoke(w, OpType::kDelete, key, "", loop.Now());
          Status s = co_await proxy.Delete(key);
          Outcome out = Outcome::kAmbiguous;
          if (s.ok()) {
            out = Outcome::kOk;
          } else if (s.IsNotFound()) {
            out = Outcome::kNotFound;
          }
          history->Return(id, out, "", loop.Now());
        }
        co_await sim::SleepFor(Millis(40) + rng.Uniform(Millis(160)));
      }
      ++*done_workers;
    }, Nanos{0});
  }
  const Nanos deadline = bed.loop().Now() + Seconds(120);
  while (*done_workers < kWorkers && bed.loop().Now() < deadline) {
    if (!bed.loop().RunOne()) {
      break;
    }
  }
  result.workers_done = *done_workers == kWorkers;

  // Heal, restart, settle. A drain may legitimately still be running (the
  // schedules re-issue one late); give it room to finish, then require that
  // no migration entry is stuck in the topology.
  bed.Heal();
  bed.network().ClearLinkFaults();
  for (sim::NodeId node : bed.AllNodes()) {
    bed.Restart(node);  // no-op for alive nodes
  }
  bed.RunFor(Seconds(5));
  const Nanos settle_deadline = bed.loop().Now() + Seconds(30);
  while (bed.loop().Now() < settle_deadline) {
    const int leader = bed.LeaderManager();
    if (leader >= 0 && bed.manager(leader).topology().migrations.empty() &&
        !bed.manager(leader).drain_running()) {
      result.migrations_settled = true;
      break;
    }
    bed.RunFor(Millis(100));
  }

  // Audit every key: the final reads join the history like any other ops.
  for (int k = 0; k < kKeys; ++k) {
    const std::string key = "obj-" + std::to_string(k);
    const uint64_t id = history->Invoke(99, OpType::kGet, key, "", bed.loop().Now());
    auto r = bed.GetObject(0, key);
    if (r.ok()) {
      history->Return(id, Outcome::kOk, *r, bed.loop().Now());
    } else if (r.status().IsNotFound()) {
      history->Return(id, Outcome::kNotFound, "", bed.loop().Now());
    } else {
      history->Return(id, Outcome::kNoEffect, "", bed.loop().Now());
      result.audit_healthy = false;
    }
  }
  result.history = *history;
  return result;
}

struct Param {
  int fault;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  return std::string(kFaultNames[info.param.fault]) + "Seed" +
         std::to_string(info.param.seed);
}

class MigrationSweep : public ::testing::TestWithParam<Param> {};

TEST_P(MigrationSweep, HistoriesAreLinearizable) {
  const Param p = GetParam();
  SweepResult r = RunSweep(p.fault, p.seed);
  const std::string replay =
      "replay: CHEETAH_MIGRATE_SEEDS=" + std::to_string(p.seed) +
      " ./build/tests/migration_sweep_test --gtest_filter='*" +
      ParamName({p, 0}) + "'";
  EXPECT_TRUE(r.workers_done) << "workload hung under schedule:\n"
                              << r.schedule_str << replay;
  EXPECT_TRUE(r.audit_healthy) << "cluster unhealthy at audit time\n"
                               << r.schedule_str << replay;
  EXPECT_TRUE(r.migrations_settled)
      << "migration state stuck in the topology after the run\n"
      << r.schedule_str << replay;
  auto violations = CheckLinearizable(r.history);
  EXPECT_TRUE(violations.empty())
      << FormatViolations(violations) << "schedule (seed " << p.seed << "):\n"
      << r.schedule_str << replay;
}

std::vector<Param> MakeParams() {
  std::vector<Param> out;
  for (uint64_t seed : MigrateSeeds()) {
    for (int fault = 0; fault < 3; ++fault) {
      out.push_back({fault, seed});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Matrix, MigrationSweep, ::testing::ValuesIn(MakeParams()),
                         ParamName);

// Two runs of the same (fault, seed) must produce byte-identical histories —
// this is what makes a printed seed+schedule a full reproduction.
TEST(MigrationDeterminism, SameSeedSameHistory) {
  SweepResult a = RunSweep(/*fault_idx=*/0, /*seed=*/1);
  SweepResult b = RunSweep(/*fault_idx=*/0, /*seed=*/1);
  EXPECT_EQ(a.schedule_str, b.schedule_str);
  EXPECT_EQ(a.history.Serialize(), b.history.Serialize());
  EXPECT_FALSE(a.history.Serialize().empty());
  // Cross-engine guard: the reference heap engine must replay the identical
  // run byte for byte — the timer wheel is only allowed to be faster, never
  // different.
  sim::EventLoop::OverrideDefaultEngine(sim::EventLoop::Engine::kHeap);
  SweepResult c = RunSweep(/*fault_idx=*/0, /*seed=*/1);
  sim::EventLoop::OverrideDefaultEngine(std::nullopt);
  EXPECT_EQ(a.schedule_str, c.schedule_str);
  EXPECT_EQ(a.history.Serialize(), c.history.Serialize());
}

}  // namespace
}  // namespace cheetah::chaos
