// Randomized chaos sweep: Cheetah variants x nemesis schedules x seeds, with
// every client operation recorded and each per-key history checked for
// linearizability afterwards. Any failure prints the seed + schedule, which
// reproduce the run byte-for-byte (the whole simulator is deterministic).
//
// Seed policy: CHEETAH_CHAOS_SEEDS is a comma-separated list (default
// "1,2,3" — the fixed CI set; scripts/chaos.sh passes larger sets for local
// hunts). The same seed drives the workload RNG, the network fault RNG, and
// the schedule composition, so one integer pins the entire run.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/chaos/history.h"
#include "src/chaos/nemesis.h"
#include "src/core/testbed.h"
#include "src/sim/event_loop.h"
#include "tests/test_util.h"

namespace cheetah::chaos {
namespace {

using core::ClientProxy;
using core::Testbed;
using core::TestbedConfig;

enum class Variant { kBase, kOrderedWrites, kFsBacked };

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kBase: return "Base";
    case Variant::kOrderedWrites: return "OW";
    case Variant::kFsBacked: return "FS";
  }
  return "?";
}

constexpr const char* kScheduleNames[] = {
    "MetaCrashRestartLoop", "MetaPowerFailViewChange", "PartitionHealMeta",
    "GrayDataDisk",         "NetChaos",                "Combined",
};

std::vector<uint64_t> ChaosSeeds() {
  std::vector<uint64_t> seeds;
  const char* env = std::getenv("CHEETAH_CHAOS_SEEDS");
  std::string spec = env != nullptr ? env : "1,2,3";
  std::stringstream ss(spec);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) {
      seeds.push_back(std::strtoull(tok.c_str(), nullptr, 10));
    }
  }
  if (seeds.empty()) {
    seeds.push_back(1);
  }
  return seeds;
}

TestbedConfig ChaosConfig(Variant variant) {
  TestbedConfig config;
  config.meta_machines = 4;
  config.data_machines = 4;
  config.proxies = 3;
  config.pg_count = 8;
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 3;
  config.lv_capacity_bytes = MiB(128);
  switch (variant) {
    case Variant::kBase:
      break;
    case Variant::kOrderedWrites:
      config.options.ordered_writes = true;
      break;
    case Variant::kFsBacked:
      config.options.fs_backed_data = true;
      break;
  }
  return config;
}

// Deterministic ~1KB payload, unique per (worker, op index).
std::string Payload(int worker, int i, const std::string& key) {
  std::string tag = "v-w" + std::to_string(worker) + "-" + std::to_string(i);
  std::string out = tag + "|" + key + "|";
  out.resize(1024, 'x');
  return out;
}

struct SweepResult {
  History history;
  std::string schedule_str;
  bool workers_done = false;
  bool audit_healthy = true;
};

// One full chaos run. Everything inside is a pure function of
// (variant, schedule_idx, seed) — the determinism test relies on it.
SweepResult RunSweep(Variant variant, int schedule_idx, uint64_t seed,
                     bool unsafe_skip_persist_wait = false) {
  SweepResult result;
  TestbedConfig config = ChaosConfig(variant);
  config.options.unsafe_skip_persist_wait = unsafe_skip_persist_wait;
  const int meta_count = config.meta_machines;
  const int data_count = config.data_machines;
  Testbed bed(std::move(config));
  if (!bed.Boot().ok()) {
    ADD_FAILURE() << "boot failed";
    return result;
  }
  const Nanos span = Seconds(4);
  bed.network().SeedFaults(seed * 7919 + static_cast<uint64_t>(schedule_idx));
  NemesisSchedule schedule =
      StandardSchedules(seed, meta_count, data_count, span).at(schedule_idx);
  result.schedule_str = schedule.ToString();
  schedule.Install(bed);

  // Workload: three workers over eight shared keys, mixed put/get/delete.
  auto history = std::make_shared<History>();
  auto done_workers = std::make_shared<int>(0);
  constexpr int kWorkers = 3;
  constexpr int kKeys = 8;
  constexpr int kRounds = 14;
  for (int w = 0; w < kWorkers; ++w) {
    bed.RunOnProxy(w, [w, seed, history, done_workers,
                       &loop = bed.loop()](ClientProxy& proxy) -> sim::Task<> {
      Rng rng(seed * 1000003 + static_cast<uint64_t>(w));
      for (int i = 0; i < kRounds; ++i) {
        const std::string key = "obj-" + std::to_string(rng.Uniform(kKeys));
        const uint64_t dice = rng.Uniform(100);
        if (dice < 50) {
          const std::string value = Payload(w, i, key);
          const uint64_t id = history->Invoke(w, OpType::kPut, key, value, loop.Now());
          Status s = co_await proxy.Put(key, value);
          Outcome out = Outcome::kAmbiguous;
          if (s.ok()) {
            out = Outcome::kOk;
          } else if (s.code() == ErrorCode::kAlreadyExists ||
                     s.code() == ErrorCode::kResourceExhausted) {
            out = Outcome::kNoEffect;
          }
          history->Return(id, out, "", loop.Now());
        } else if (dice < 80) {
          const uint64_t id = history->Invoke(w, OpType::kGet, key, "", loop.Now());
          auto r = co_await proxy.Get(key);
          if (r.ok()) {
            history->Return(id, Outcome::kOk, *r, loop.Now());
          } else if (r.status().IsNotFound()) {
            history->Return(id, Outcome::kNotFound, "", loop.Now());
          } else {
            history->Return(id, Outcome::kNoEffect, "", loop.Now());
          }
        } else {
          const uint64_t id = history->Invoke(w, OpType::kDelete, key, "", loop.Now());
          Status s = co_await proxy.Delete(key);
          Outcome out = Outcome::kAmbiguous;
          if (s.ok()) {
            out = Outcome::kOk;
          } else if (s.IsNotFound()) {
            out = Outcome::kNotFound;
          }
          history->Return(id, out, "", loop.Now());
        }
        co_await sim::SleepFor(Millis(40) + rng.Uniform(Millis(160)));
      }
      ++*done_workers;
    }, Nanos{0});
  }
  const Nanos deadline = bed.loop().Now() + Seconds(120);
  while (*done_workers < kWorkers && bed.loop().Now() < deadline) {
    if (!bed.loop().RunOne()) {
      break;
    }
  }
  result.workers_done = *done_workers == kWorkers;

  // Restore everything (schedules end restorative, this is belt-and-braces),
  // let recovery and the cleaner settle, then audit every key: the final
  // reads join the history like any other ops.
  bed.Heal();
  bed.network().ClearLinkFaults();
  for (int i = 0; i < bed.num_data(); ++i) {
    bed.data_machine(i).ClearGrayFailure();
  }
  for (sim::NodeId node : bed.AllNodes()) {
    bed.Restart(node);  // no-op for alive nodes
  }
  bed.RunFor(Seconds(5));
  for (int k = 0; k < kKeys; ++k) {
    const std::string key = "obj-" + std::to_string(k);
    const uint64_t id = history->Invoke(99, OpType::kGet, key, "", bed.loop().Now());
    auto r = bed.GetObject(0, key);
    if (r.ok()) {
      history->Return(id, Outcome::kOk, *r, bed.loop().Now());
    } else if (r.status().IsNotFound()) {
      history->Return(id, Outcome::kNotFound, "", bed.loop().Now());
    } else {
      history->Return(id, Outcome::kNoEffect, "", bed.loop().Now());
      result.audit_healthy = false;
    }
  }
  result.history = *history;
  return result;
}

struct Param {
  Variant variant;
  int schedule;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  return std::string(VariantName(info.param.variant)) +
         kScheduleNames[info.param.schedule] + "Seed" +
         std::to_string(info.param.seed);
}

class ChaosSweep : public ::testing::TestWithParam<Param> {};

TEST_P(ChaosSweep, HistoriesAreLinearizable) {
  const Param p = GetParam();
  SweepResult r = RunSweep(p.variant, p.schedule, p.seed);
  // ctest only knows the default-seed test names, so replay goes through the
  // binary: the filter name embeds the seed and the env re-registers it.
  const std::string replay =
      "replay: CHEETAH_CHAOS_SEEDS=" + std::to_string(p.seed) +
      " ./build/tests/chaos_sweep_test --gtest_filter='*" + ParamName({p, 0}) +
      "'";
  EXPECT_TRUE(r.workers_done) << "workload hung under schedule:\n"
                              << r.schedule_str << replay;
  EXPECT_TRUE(r.audit_healthy) << "cluster unhealthy at audit time\n"
                               << r.schedule_str << replay;
  auto violations = CheckLinearizable(r.history);
  EXPECT_TRUE(violations.empty())
      << FormatViolations(violations) << "schedule (seed " << p.seed << "):\n"
      << r.schedule_str << replay;
}

std::vector<Param> MakeParams() {
  std::vector<Param> out;
  for (uint64_t seed : ChaosSeeds()) {
    // Base gets the full battery; the ablation variants get the heaviest
    // schedules (power-fail view change, combined) to bound suite runtime.
    for (int sched = 0; sched < 6; ++sched) {
      out.push_back({Variant::kBase, sched, seed});
    }
    for (int sched : {1, 5}) {
      out.push_back({Variant::kOrderedWrites, sched, seed});
      out.push_back({Variant::kFsBacked, sched, seed});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Matrix, ChaosSweep, ::testing::ValuesIn(MakeParams()),
                         ParamName);

// Two runs of the same (variant, schedule, seed) must produce byte-identical
// histories — this is what makes a printed seed+schedule a full reproduction.
TEST(ChaosDeterminism, SameSeedSameHistory) {
  SweepResult a = RunSweep(Variant::kBase, /*schedule=*/5, /*seed=*/1);
  SweepResult b = RunSweep(Variant::kBase, /*schedule=*/5, /*seed=*/1);
  EXPECT_EQ(a.schedule_str, b.schedule_str);
  EXPECT_EQ(a.history.Serialize(), b.history.Serialize());
  EXPECT_FALSE(a.history.Serialize().empty());
  // Cross-engine guard: the reference heap engine must replay the identical
  // run byte for byte — the timer wheel is only allowed to be faster, never
  // different.
  sim::EventLoop::OverrideDefaultEngine(sim::EventLoop::Engine::kHeap);
  SweepResult c = RunSweep(Variant::kBase, /*schedule=*/5, /*seed=*/1);
  sim::EventLoop::OverrideDefaultEngine(std::nullopt);
  EXPECT_EQ(a.schedule_str, c.schedule_str);
  EXPECT_EQ(a.history.Serialize(), c.history.Serialize());
}

// The checker must catch a real consistency bug: with the persist-ack wait
// skipped (options.unsafe_skip_persist_wait), an acked put whose MetaX has
// not reached any replica's WAL dies with a cluster-wide meta power failure.
// Slow meta disks widen that window from microseconds to milliseconds so a
// scripted power failure reliably lands inside it.
TEST(ChaosInjectedBug, SkippedPersistWaitIsCaught) {
  auto run_with_bug_schedule = [](uint64_t seed, bool bug) {
    TestbedConfig config = ChaosConfig(Variant::kBase);
    config.options.unsafe_skip_persist_wait = bug;
    const int meta_count = config.meta_machines;
    Testbed bed(std::move(config));
    EXPECT_TRUE(bed.Boot().ok());
    bed.network().SeedFaults(seed);

    NemesisSchedule schedule;
    schedule.Add(Millis(150), "gray ALL meta disks x25",
                 [meta_count](Testbed& b) {
                   sim::GrayFailure g;
                   g.latency_multiplier = 100.0;
                   for (int i = 0; i < meta_count; ++i) {
                     b.meta_machine(i).SetGrayFailure(g);
                   }
                 });
    schedule.Add(Millis(650), "power-fail ALL meta machines",
                 [meta_count](Testbed& b) {
                   for (int i = 0; i < meta_count; ++i) {
                     b.Crash(b.meta_node(i), /*power_loss=*/true);
                   }
                 });
    schedule.Add(Millis(1300), "restore meta disks",
                 [meta_count](Testbed& b) {
                   for (int i = 0; i < meta_count; ++i) {
                     b.meta_machine(i).ClearGrayFailure();
                   }
                 });
    schedule.Add(Millis(1350), "restart ALL meta machines",
                 [meta_count](Testbed& b) {
                   for (int i = 0; i < meta_count; ++i) {
                     b.Restart(b.meta_node(i));
                   }
                 });
    schedule.Install(bed);

    auto history = std::make_shared<History>();
    auto done_workers = std::make_shared<int>(0);
    auto put_count = std::make_shared<int>(0);
    constexpr int kWorkers = 3;
    for (int w = 0; w < kWorkers; ++w) {
      bed.RunOnProxy(w, [w, seed, history, done_workers, put_count,
                         &loop = bed.loop()](ClientProxy& proxy) -> sim::Task<> {
        Rng rng(seed * 31 + static_cast<uint64_t>(w));
        const Nanos start = loop.Now();
        // No op-count cap below the time cutoff: the workers must still be
        // putting when the scripted power failure lands, or the vulnerable
        // ack-before-persist window is empty and the bug never manifests.
        for (int i = 0; i < 100000; ++i) {
          const std::string key =
              "bug-w" + std::to_string(w) + "-" + std::to_string(i);
          const std::string value = Payload(w, i, key);
          const uint64_t id =
              history->Invoke(w, OpType::kPut, key, value, loop.Now());
          Status s = co_await proxy.Put(key, value);
          Outcome out = Outcome::kAmbiguous;
          if (s.ok()) {
            out = Outcome::kOk;
            ++*put_count;
          } else if (s.code() == ErrorCode::kAlreadyExists ||
                     s.code() == ErrorCode::kResourceExhausted) {
            out = Outcome::kNoEffect;
          }
          history->Return(id, out, "", loop.Now());
          if (loop.Now() > start + Millis(800)) {
            break;  // past the interesting window; stop early
          }
          co_await sim::SleepFor(Millis(2) + rng.Uniform(Millis(4)));
        }
        ++*done_workers;
      }, Nanos{0});
    }
    const Nanos deadline = bed.loop().Now() + Seconds(120);
    while (*done_workers < kWorkers && bed.loop().Now() < deadline) {
      if (!bed.loop().RunOne()) {
        break;
      }
    }
    EXPECT_EQ(*done_workers, kWorkers) << "bug workload hung";
    EXPECT_GT(*put_count, 0) << "no put was ever acked";
    bed.RunFor(Seconds(5));
    // Audit every key the workers touched.
    std::vector<std::string> keys;
    for (const auto& op : history->ops()) {
      if (op.type == OpType::kPut) {
        keys.push_back(op.key);
      }
    }
    for (const std::string& key : keys) {
      const uint64_t id =
          history->Invoke(99, OpType::kGet, key, "", bed.loop().Now());
      auto r = bed.GetObject(0, key);
      if (r.ok()) {
        history->Return(id, Outcome::kOk, *r, bed.loop().Now());
      } else if (r.status().IsNotFound()) {
        history->Return(id, Outcome::kNotFound, "", bed.loop().Now());
      } else {
        history->Return(id, Outcome::kNoEffect, "", bed.loop().Now());
      }
    }
    return CheckLinearizable(*history);
  };

  // The checker must flag the bug under at least one seed...
  bool caught = false;
  uint64_t caught_seed = 0;
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    auto violations = run_with_bug_schedule(seed, /*bug=*/true);
    if (!violations.empty()) {
      caught = true;
      caught_seed = seed;
      break;
    }
  }
  EXPECT_TRUE(caught) << "injected persist-wait bug escaped the checker";
  // ...and the identical schedule with the bug reverted must be clean.
  auto control = run_with_bug_schedule(caught ? caught_seed : 1, /*bug=*/false);
  EXPECT_TRUE(control.empty()) << FormatViolations(control);
}

}  // namespace
}  // namespace cheetah::chaos
