// Recovery regressions for the chaos PR:
//  * a partitioned-then-healed meta primary must not make in-flight puts
//    exhaust their retries — the RE-META path (§5.3) finishes them on the
//    post-view-change primary;
//  * crashing the meta server that is itself mid-way through pulling PGs
//    (crash during view change) must still converge to a view where every
//    acknowledged object is readable.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "src/core/testbed.h"
#include "tests/test_util.h"

namespace cheetah::core {
namespace {

TestbedConfig SmallConfig() {
  TestbedConfig config;
  config.meta_machines = 4;
  config.data_machines = 4;
  config.proxies = 2;
  config.pg_count = 8;
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 3;
  config.lv_capacity_bytes = MiB(128);
  return config;
}

TEST(Recovery, HealedMetaPartitionCompletesInflightPutsViaReMeta) {
  Testbed bed(SmallConfig());
  ASSERT_TRUE(bed.Boot().ok());

  // Cut one meta machine off from the whole cluster, then immediately start
  // puts. Names spread across all PGs, so some target the isolated primary;
  // those must ride RE-META onto the post-view-change primary instead of
  // burning all retries against the black hole.
  bed.Isolate(bed.meta_node(0));
  auto oks = std::make_shared<int>(0);
  auto fails = std::make_shared<int>(0);
  auto done = std::make_shared<int>(0);
  constexpr int kPuts = 16;
  bed.RunOnProxy(0, [oks, fails, done](ClientProxy& proxy) -> sim::Task<> {
    for (int i = 0; i < kPuts; ++i) {
      Status s = co_await proxy.Put("inflight-" + std::to_string(i),
                                    std::string(4096, static_cast<char>('a' + i % 26)));
      if (s.ok()) {
        ++*oks;
      } else {
        ++*fails;
      }
    }
    ++*done;
  }, Nanos{0});
  const Nanos deadline = bed.loop().Now() + Seconds(60);
  while (*done < 1 && bed.loop().Now() < deadline) {
    if (!bed.loop().RunOne()) {
      break;
    }
  }
  ASSERT_EQ(*done, 1) << "puts hung";
  EXPECT_EQ(*fails, 0) << "puts exhausted retries during the partition";
  EXPECT_EQ(*oks, kPuts);

  // Heal; the evicted meta rejoins as the topology dictates, and the data
  // stays readable afterwards.
  bed.Heal();
  bed.RunFor(Seconds(2));
  for (int i = 0; i < kPuts; ++i) {
    auto got = bed.GetObject(1, "inflight-" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
    EXPECT_EQ(got->size(), 4096u);
  }
}

TEST(Recovery, CrashDuringViewChangeConvergesWithoutLoss) {
  TestbedConfig config = SmallConfig();
  config.meta_machines = 5;  // survive two dead metas with replication 3
  Testbed bed(std::move(config));
  ASSERT_TRUE(bed.Boot().ok());

  // Seed enough objects that the post-crash PG pulls do real work.
  std::map<std::string, char> acked;
  for (int i = 0; i < 48; ++i) {
    const std::string name = "vc-" + std::to_string(i);
    const char fill = static_cast<char>('a' + i % 26);
    ASSERT_TRUE(bed.PutObject(0, name, std::string(2048, fill)).ok()) << name;
    acked[name] = fill;
  }

  // First crash forces a view change; catch a surviving meta mid-adoption
  // (actively pulling PGs) and kill it too.
  bed.CrashMetaMachine(0, /*power_loss=*/false);
  int second_victim = -1;
  const Nanos hunt_deadline = bed.loop().Now() + Seconds(5);
  while (second_victim < 0 && bed.loop().Now() < hunt_deadline) {
    if (!bed.loop().RunOne()) {
      break;
    }
    for (int i = 1; i < bed.num_meta(); ++i) {
      if (bed.meta_machine(i).alive() && bed.meta(i).adopting()) {
        second_victim = i;
        break;
      }
    }
  }
  ASSERT_GE(second_victim, 0) << "never observed a meta mid-adoption";
  bed.CrashMetaMachine(second_victim, /*power_loss=*/true);

  // The next view must converge on the three remaining metas.
  bed.RunFor(Seconds(3));
  for (int i = 0; i < bed.num_meta(); ++i) {
    if (!bed.meta_machine(i).alive()) {
      continue;
    }
    EXPECT_TRUE(bed.meta(i).HasLease()) << "meta " << i;
    EXPECT_GT(bed.meta(i).view(), 1u) << "meta " << i;
  }

  // No acknowledged object lost, reading through the survivors...
  for (const auto& [name, fill] : acked) {
    auto got = bed.GetObject(0, name);
    ASSERT_TRUE(got.ok()) << name << ": " << got.status().ToString();
    ASSERT_EQ(got->size(), 2048u) << name;
    EXPECT_EQ((*got)[0], fill) << name;
  }

  // ...and still none after both casualties return and re-adopt.
  bed.RestartMetaMachine(0);
  bed.RestartMetaMachine(second_victim);
  bed.RunFor(Seconds(3));
  for (const auto& [name, fill] : acked) {
    auto got = bed.GetObject(1, name);
    ASSERT_TRUE(got.ok()) << name << " after restarts: " << got.status().ToString();
    EXPECT_EQ((*got)[0], fill) << name;
  }
}

}  // namespace
}  // namespace cheetah::core
