// Consistency sweep: Lemma 1/2 of the paper's Appendix A, checked
// empirically. Traffic runs while a fault is injected; afterwards every
// acknowledged put must be fully readable with byte-correct content, every
// acknowledged delete must stay deleted, and unacknowledged puts must be
// all-or-nothing. Parameterized over Cheetah variants x fault kinds.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "src/core/testbed.h"
#include "tests/test_util.h"

namespace cheetah::core {
namespace {

enum class Fault {
  kNone,
  kMetaCrash,
  kMetaPowerLoss,
  kDataCrash,
  kProxyCrash,
  kManagerCrash,
};

enum class Variant { kBase, kOrderedWrites, kFsBacked };

struct Param {
  Variant variant;
  Fault fault;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  std::string out;
  switch (info.param.variant) {
    case Variant::kBase:
      out = "Base";
      break;
    case Variant::kOrderedWrites:
      out = "OW";
      break;
    case Variant::kFsBacked:
      out = "FS";
      break;
  }
  switch (info.param.fault) {
    case Fault::kNone:
      out += "NoFault";
      break;
    case Fault::kMetaCrash:
      out += "MetaCrash";
      break;
    case Fault::kMetaPowerLoss:
      out += "MetaPower";
      break;
    case Fault::kDataCrash:
      out += "DataCrash";
      break;
    case Fault::kProxyCrash:
      out += "ProxyCrash";
      break;
    case Fault::kManagerCrash:
      out += "ManagerCrash";
      break;
  }
  return out + "Seed" + std::to_string(info.param.seed);
}

class ConsistencySweep : public ::testing::TestWithParam<Param> {};

TEST_P(ConsistencySweep, AckedOperationsSurviveFaults) {
  const Param p = GetParam();
  TestbedConfig config;
  config.meta_machines = 4;  // PGs on 3 of 4: crashes force pulls
  config.data_machines = 4;
  config.proxies = 3;  // proxy 2 is the crash victim; 0/1 drive traffic
  config.pg_count = 8;
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 3;
  config.lv_capacity_bytes = MiB(128);
  switch (p.variant) {
    case Variant::kBase:
      break;
    case Variant::kOrderedWrites:
      config.options.ordered_writes = true;
      break;
    case Variant::kFsBacked:
      config.options.fs_backed_data = true;
      break;
  }
  Testbed bed(std::move(config));
  ASSERT_TRUE(bed.Boot().ok());

  // Traffic: two proxies putting and occasionally deleting; the ledger
  // records only ACKNOWLEDGED effects.
  auto committed = std::make_shared<std::map<std::string, char>>();
  auto deleted = std::make_shared<std::map<std::string, bool>>();
  auto done_workers = std::make_shared<int>(0);
  for (int w = 0; w < 2; ++w) {
    bed.RunOnProxy(w, [w, committed, deleted, seed = p.seed,
                       done_workers](ClientProxy& proxy) -> sim::Task<> {
      Rng rng(seed * 17 + w);
      for (int i = 0; i < 40; ++i) {
        const std::string name = "w" + std::to_string(w) + "-" + std::to_string(i);
        const char fill = static_cast<char>('a' + (i + w) % 26);
        Status s = co_await proxy.Put(name, std::string(4096, fill));
        if (s.ok()) {
          (*committed)[name] = fill;
          if (rng.Bernoulli(0.25)) {
            Status d = co_await proxy.Delete(name);
            if (d.ok()) {
              (*deleted)[name] = true;
            } else if (d.IsNotFound()) {
              // A timed-out first attempt may have landed server-side; the
              // retry then observes NotFound. Either outcome is consistent.
              (*deleted)[name] = false;  // false = "maybe deleted"
            }
          }
        }
      }
      ++*done_workers;
    }, Nanos{0});
  }
  // A doomed in-flight put on proxy 2 (interesting for the proxy-crash case).
  bed.RunOnProxy(2, [](ClientProxy& proxy) -> sim::Task<> {
    (void)co_await proxy.Put("doomed-object", std::string(262144, 'z'));
  }, Nanos{0});

  // Run some traffic, inject the fault, keep running.
  bed.RunFor(Millis(30));
  switch (p.fault) {
    case Fault::kNone:
      break;
    case Fault::kMetaCrash:
      bed.CrashMetaMachine(static_cast<int>(p.seed % 4), false);
      break;
    case Fault::kMetaPowerLoss:
      bed.CrashMetaMachine(static_cast<int>(p.seed % 4), true);
      break;
    case Fault::kDataCrash:
      bed.CrashDataMachine(static_cast<int>(p.seed % 4), false);
      break;
    case Fault::kProxyCrash:
      bed.CrashProxy(2);
      break;
    case Fault::kManagerCrash: {
      const int leader = bed.LeaderManager();
      if (leader >= 0) {
        bed.CrashManager(leader, false);
      }
      break;
    }
  }
  const Nanos deadline = bed.loop().Now() + Seconds(60);
  while (*done_workers < 2 && bed.loop().Now() < deadline) {
    if (!bed.loop().RunOne()) {
      break;
    }
  }
  ASSERT_EQ(*done_workers, 2) << "traffic did not complete after the fault";
  bed.RunFor(Seconds(4));  // recovery + cleaner settle

  // Lemma 1: every committed (and not deleted) put is readable with the
  // exact bytes that were written; every acknowledged delete stays deleted.
  for (const auto& [name, fill] : *committed) {
    auto got = bed.GetObject(0, name);
    if (auto it = deleted->find(name); it != deleted->end()) {
      if (it->second) {
        EXPECT_TRUE(got.status().IsNotFound()) << name << " resurrected";
      } else if (!got.ok()) {
        EXPECT_TRUE(got.status().IsNotFound()) << name;  // maybe-deleted
      }
      continue;
    }
    ASSERT_TRUE(got.ok()) << name << ": " << got.status().ToString();
    ASSERT_EQ(got->size(), 4096u) << name;
    EXPECT_EQ((*got)[0], fill) << name;
    EXPECT_EQ((*got)[4095], fill) << name;
  }
  // The doomed object is all-or-nothing.
  auto doomed = bed.GetObject(1, "doomed-object");
  if (doomed.ok()) {
    EXPECT_EQ(doomed->size(), 262144u);
  } else {
    EXPECT_TRUE(doomed.status().IsNotFound()) << doomed.status().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConsistencySweep,
    ::testing::Values(
        Param{Variant::kBase, Fault::kNone, 1}, Param{Variant::kBase, Fault::kMetaCrash, 1},
        Param{Variant::kBase, Fault::kMetaCrash, 2},
        Param{Variant::kBase, Fault::kMetaPowerLoss, 3},
        Param{Variant::kBase, Fault::kDataCrash, 1},
        Param{Variant::kBase, Fault::kDataCrash, 2},
        Param{Variant::kBase, Fault::kProxyCrash, 1},
        Param{Variant::kBase, Fault::kManagerCrash, 1},
        Param{Variant::kOrderedWrites, Fault::kNone, 1},
        Param{Variant::kOrderedWrites, Fault::kMetaCrash, 1},
        Param{Variant::kOrderedWrites, Fault::kDataCrash, 1},
        Param{Variant::kFsBacked, Fault::kNone, 1},
        Param{Variant::kFsBacked, Fault::kMetaPowerLoss, 1},
        Param{Variant::kFsBacked, Fault::kProxyCrash, 2}),
    ParamName);

}  // namespace
}  // namespace cheetah::core
