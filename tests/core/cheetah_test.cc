// End-to-end tests of the Cheetah object store on the simulated cluster:
// the normal put/get/delete paths, the paper's consistency guarantees, and
// every §5.3 recovery scenario (meta/data/proxy/manager crashes, power loss,
// expansion).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/core/testbed.h"
#include "tests/test_util.h"

namespace cheetah::core {
namespace {

TestbedConfig SmallConfig() {
  TestbedConfig config;
  config.meta_machines = 3;
  config.data_machines = 4;
  config.proxies = 2;
  config.pg_count = 8;  // 4*2*3 = 24 PVs -> 8 LVs, one per PG
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 3;
  config.lv_capacity_bytes = MiB(64);
  return config;
}

std::string Payload(size_t n, char seed) { return std::string(n, seed); }

class CheetahTest : public ::testing::Test {
 public:
  void Boot(TestbedConfig config) {
    bed_ = std::make_unique<Testbed>(std::move(config));
    Status s = bed_->Boot();
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  Testbed& bed() { return *bed_; }

 private:
  std::unique_ptr<Testbed> bed_;
};

TEST_F(CheetahTest, BootBringsUpCluster) {
  Boot(SmallConfig());
  EXPECT_GE(bed().LeaderManager(), 0);
  for (int i = 0; i < bed().num_meta(); ++i) {
    EXPECT_TRUE(bed().meta(i).HasLease());
    EXPECT_GT(bed().meta(i).view(), 0u);
  }
}

TEST_F(CheetahTest, PutGetRoundTrip) {
  Boot(SmallConfig());
  ASSERT_TRUE(bed().PutObject(0, "photo-1", Payload(8192, 'a')).ok());
  auto got = bed().GetObject(0, "photo-1");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, Payload(8192, 'a'));
}

TEST_F(CheetahTest, GetFromDifferentProxy) {
  Boot(SmallConfig());
  ASSERT_TRUE(bed().PutObject(0, "shared-obj", Payload(4096, 'x')).ok());
  auto got = bed().GetObject(1, "shared-obj");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->size(), 4096u);
}

TEST_F(CheetahTest, GetMissingObject) {
  Boot(SmallConfig());
  EXPECT_TRUE(bed().GetObject(0, "never-put").status().IsNotFound());
}

TEST_F(CheetahTest, DeleteRemovesObject) {
  Boot(SmallConfig());
  ASSERT_TRUE(bed().PutObject(0, "doomed", Payload(8192, 'd')).ok());
  ASSERT_TRUE(bed().DeleteObject(0, "doomed").ok());
  EXPECT_TRUE(bed().GetObject(0, "doomed").status().IsNotFound());
  EXPECT_TRUE(bed().GetObject(1, "doomed").status().IsNotFound());
}

TEST_F(CheetahTest, DeleteMissingIsNotFound) {
  Boot(SmallConfig());
  EXPECT_TRUE(bed().DeleteObject(0, "ghost").IsNotFound());
}

TEST_F(CheetahTest, ImmutabilityRejectsSecondPut) {
  Boot(SmallConfig());
  ASSERT_TRUE(bed().PutObject(0, "fixed", Payload(1024, '1')).ok());
  Status s = bed().PutObject(1, "fixed", Payload(1024, '2'));
  EXPECT_EQ(s.code(), ErrorCode::kAlreadyExists);
  auto got = bed().GetObject(0, "fixed");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Payload(1024, '1'));  // original data intact
}

TEST_F(CheetahTest, DeleteThenReputSameName) {
  // §4.3.1: "an object can be updated by deleting it and then putting a new
  // one with the same name".
  Boot(SmallConfig());
  ASSERT_TRUE(bed().PutObject(0, "versioned", Payload(2048, 'v')).ok());
  ASSERT_TRUE(bed().DeleteObject(0, "versioned").ok());
  ASSERT_TRUE(bed().PutObject(0, "versioned", Payload(2048, 'w')).ok());
  auto got = bed().GetObject(1, "versioned");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Payload(2048, 'w'));
}

TEST_F(CheetahTest, ManyObjectsManySizes) {
  Boot(SmallConfig());
  for (int i = 0; i < 60; ++i) {
    const size_t size = 512 + (i * 977) % 65536;
    ASSERT_TRUE(
        bed().PutObject(i % 2, "obj-" + std::to_string(i), Payload(size, 'a' + i % 26)).ok())
        << "object " << i;
  }
  for (int i = 0; i < 60; ++i) {
    const size_t size = 512 + (i * 977) % 65536;
    auto got = bed().GetObject((i + 1) % 2, "obj-" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << "object " << i << ": " << got.status().ToString();
    EXPECT_EQ(got->size(), size);
    EXPECT_EQ((*got)[0], static_cast<char>('a' + i % 26));
  }
}

TEST_F(CheetahTest, SpaceIsReusedAfterDelete) {
  // §4.3.3: immediate reclamation without compaction. Fill a small cluster,
  // delete everything, and fill it again.
  TestbedConfig config = SmallConfig();
  config.data_machines = 3;
  config.disks_per_data_machine = 1;
  config.pvs_per_disk = 3;
  config.pg_count = 3;  // 3 LVs
  config.lv_capacity_bytes = MiB(1);
  Boot(config);
  const size_t obj_size = 64 * 1024;
  int fit = 0;
  while (fit < 200) {
    Status s = bed().PutObject(0, "fill-" + std::to_string(fit), Payload(obj_size, 'f'));
    if (!s.ok()) {
      EXPECT_EQ(s.code(), ErrorCode::kResourceExhausted);
      break;
    }
    ++fit;
  }
  ASSERT_GT(fit, 5);
  for (int i = 0; i < fit; ++i) {
    ASSERT_TRUE(bed().DeleteObject(0, "fill-" + std::to_string(i)).ok());
  }
  // The same objects must fit again (same names -> same PG distribution),
  // with no compaction.
  for (int i = 0; i < fit; ++i) {
    ASSERT_TRUE(bed().PutObject(0, "fill-" + std::to_string(i), Payload(obj_size, 'r')).ok())
        << "refill " << i << " of " << fit;
  }
}

TEST_F(CheetahTest, OrderedWritesVariantStillCorrect) {
  TestbedConfig config = SmallConfig();
  config.options.ordered_writes = true;
  Boot(config);
  ASSERT_TRUE(bed().PutObject(0, "ow-obj", Payload(8192, 'o')).ok());
  auto got = bed().GetObject(1, "ow-obj");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 8192u);
}

TEST_F(CheetahTest, FsBackedVariantStillCorrect) {
  TestbedConfig config = SmallConfig();
  config.options.fs_backed_data = true;
  Boot(config);
  ASSERT_TRUE(bed().PutObject(0, "fs-obj", Payload(8192, 'f')).ok());
  auto got = bed().GetObject(0, "fs-obj");
  ASSERT_TRUE(got.ok());
}

TEST_F(CheetahTest, ReadCacheServesRepeatGets) {
  Boot(SmallConfig());
  ASSERT_TRUE(bed().PutObject(0, "hot", Payload(8192, 'h')).ok());
  for (int i = 0; i < 5; ++i) {
    auto got = bed().GetObject(0, "hot");
    ASSERT_TRUE(got.ok());
  }
  EXPECT_GT(bed().proxy(0).stats().cache_hits, 0u);
}

TEST_F(CheetahTest, MetaxKvsCleanedAfterCommit) {
  Boot(SmallConfig());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(bed().PutObject(0, "clean-" + std::to_string(i), Payload(1024, 'c')).ok());
  }
  bed().RunFor(Seconds(2));  // cleaner interval
  uint64_t pending = 0;
  uint64_t cleaned = 0;
  for (int i = 0; i < bed().num_meta(); ++i) {
    pending += bed().meta(i).pending_puts();
    cleaned += bed().meta(i).stats().logs_cleaned;
  }
  EXPECT_EQ(pending, 0u);
  EXPECT_GE(cleaned, 10u);
}

// ---- §5.3 crash scenarios ----

TEST_F(CheetahTest, MetaServerCrashIsRecovered) {
  // Four meta machines with 3-way replication: each PG lives on 3 of the 4,
  // so the post-crash remap forces actual PG pulls.
  TestbedConfig config = SmallConfig();
  config.meta_machines = 4;
  Boot(config);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(bed().PutObject(0, "pre-" + std::to_string(i), Payload(4096, 'p')).ok());
  }
  const uint64_t view_before = bed().proxy(0).view();
  bed().CrashMetaMachine(0, /*power_loss=*/false);
  bed().RunFor(Seconds(3));  // detection + view change + PG pulls

  // All old objects still readable, new puts land.
  for (int i = 0; i < 20; ++i) {
    auto got = bed().GetObject(0, "pre-" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << "object " << i << ": " << got.status().ToString();
  }
  ASSERT_TRUE(bed().PutObject(1, "post-crash", Payload(4096, 'q')).ok());
  EXPECT_GT(bed().proxy(0).view(), view_before);
  // The surviving servers pulled the dead server's PGs.
  uint64_t recovered = 0;
  for (int i = 1; i < bed().num_meta(); ++i) {
    recovered += bed().meta(i).stats().recovered_kvs;
  }
  EXPECT_GT(recovered, 0u);
}

TEST_F(CheetahTest, MetaServerPowerLossDurability) {
  // MetaX is synced before the ack, so a power failure after commit loses
  // nothing once the server's PGs move to the survivors.
  Boot(SmallConfig());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(bed().PutObject(0, "durable-" + std::to_string(i), Payload(2048, 'd')).ok());
  }
  bed().CrashMetaMachine(1, /*power_loss=*/true);
  bed().RunFor(Seconds(3));
  for (int i = 0; i < 10; ++i) {
    auto got = bed().GetObject(0, "durable-" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
  }
}

TEST_F(CheetahTest, DataServerCrashReplicasServeReads) {
  Boot(SmallConfig());
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(bed().PutObject(0, "rep-" + std::to_string(i), Payload(8192, 'r')).ok());
  }
  bed().CrashDataMachine(0, /*power_loss=*/false);
  bed().RunFor(Millis(200));
  // Reads keep working off the surviving replicas even before recovery.
  for (int i = 0; i < 15; ++i) {
    auto got = bed().GetObject(0, "rep-" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
  }
}

TEST_F(CheetahTest, DataServerCrashVolumesRecovered) {
  Boot(SmallConfig());
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(bed().PutObject(0, "vol-" + std::to_string(i), Payload(8192, 'v')).ok());
  }
  bed().CrashDataMachine(0, /*power_loss=*/false);
  bed().RunFor(Seconds(4));  // detection + replacement + parallel pulls
  uint64_t recovered = 0;
  for (int i = 1; i < bed().num_data(); ++i) {
    recovered += bed().data(i).stats().volumes_recovered;
  }
  EXPECT_GT(recovered, 0u);
  // Writes proceed and all data remains readable after recovery.
  ASSERT_TRUE(bed().PutObject(0, "after-data-crash", Payload(8192, 'a')).ok());
  for (int i = 0; i < 15; ++i) {
    auto got = bed().GetObject(1, "vol-" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
  }
}

TEST_F(CheetahTest, ProxyCrashMidPutLeavesNoOrphans) {
  Boot(SmallConfig());
  // Start a put on proxy 0 and kill the proxy shortly after it begins.
  bed().RunOnProxy(0, [](ClientProxy& p) -> sim::Task<> {
    (void)co_await p.Put("orphan-candidate", std::string(262144, 'z'));
  }, Micros(200));  // budget expires long before the put resolves
  bed().CrashProxy(0);
  // The cleaner verifies the pending put and completes or revokes it.
  bed().RunFor(Seconds(4));
  auto got = bed().GetObject(1, "orphan-candidate");
  if (got.ok()) {
    EXPECT_EQ(got->size(), 262144u);  // completed: full data visible
  } else {
    EXPECT_TRUE(got.status().IsNotFound());  // revoked: no trace
  }
  // Either way no pending entries linger.
  uint64_t pending = 0;
  for (int i = 0; i < bed().num_meta(); ++i) {
    pending += bed().meta(i).pending_puts();
  }
  EXPECT_EQ(pending, 0u);
}

TEST_F(CheetahTest, ManagerLeaderCrashClusterContinues) {
  Boot(SmallConfig());
  ASSERT_TRUE(bed().PutObject(0, "before-mgr-crash", Payload(4096, 'm')).ok());
  const int leader = bed().LeaderManager();
  ASSERT_GE(leader, 0);
  bed().CrashManager(leader, /*power_loss=*/false);
  bed().RunFor(Seconds(2));  // new raft leader; leases renew
  ASSERT_TRUE(bed().PutObject(0, "after-mgr-crash", Payload(4096, 'n')).ok());
  auto got = bed().GetObject(1, "before-mgr-crash");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
}

TEST_F(CheetahTest, WholeClusterPowerLoss) {
  // §5.3 "If a power loss causes all servers/clients down".
  Boot(SmallConfig());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(bed().PutObject(0, "survivor-" + std::to_string(i), Payload(4096, 's')).ok());
  }
  bed().RunFor(Seconds(2));  // let logs clean
  for (int i = 0; i < 3; ++i) {
    bed().CrashManager(i, /*power_loss=*/true);
  }
  for (int i = 0; i < bed().num_meta(); ++i) {
    bed().CrashMetaMachine(i, /*power_loss=*/true);
  }
  for (int i = 0; i < bed().num_data(); ++i) {
    bed().CrashDataMachine(i, /*power_loss=*/true);
  }
  bed().RunFor(Millis(100));
  for (int i = 0; i < 3; ++i) {
    bed().RestartManager(i);
  }
  for (int i = 0; i < bed().num_meta(); ++i) {
    bed().RestartMetaMachine(i);
  }
  for (int i = 0; i < bed().num_data(); ++i) {
    bed().RestartDataMachine(i);
  }
  bed().RunFor(Seconds(5));  // elections, topology dissemination, leases
  for (int i = 0; i < 12; ++i) {
    auto got = bed().GetObject(0, "survivor-" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << "object " << i << ": " << got.status().ToString();
    EXPECT_EQ(got->size(), 4096u);
  }
}

// ---- expansion (§4.2 / §6.3) ----

TEST_F(CheetahTest, DataExpansionIsMigrationFree) {
  Boot(SmallConfig());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(bed().PutObject(0, "old-" + std::to_string(i), Payload(8192, 'o')).ok());
  }
  auto added = bed().AddDataMachine(2, 3);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  bed().RunFor(Seconds(1));
  // No recovery/migration traffic hit any data server.
  for (int i = 0; i < bed().num_data(); ++i) {
    EXPECT_EQ(bed().data(i).stats().recovery_bytes, 0u);
  }
  // Old objects unaffected; new puts work (and can land on new volumes).
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(bed().GetObject(0, "old-" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(bed().PutObject(0, "new-" + std::to_string(i), Payload(8192, 'n')).ok());
  }
}

TEST_F(CheetahTest, MetaExpansionMovesMetadataNotData) {
  Boot(SmallConfig());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(bed().PutObject(0, "pin-" + std::to_string(i), Payload(8192, 'p')).ok());
  }
  bed().RunFor(Seconds(2));  // clean logs so stats are quiescent
  uint64_t writes_before = 0;
  for (int i = 0; i < bed().num_data(); ++i) {
    writes_before += bed().data(i).stats().writes;
  }
  auto added = bed().AddMetaMachine();
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  bed().RunFor(Seconds(2));
  // Metadata moved to the new server (CRUSH remap)...
  EXPECT_GT(bed().meta(*added).stats().recovered_kvs, 0u);
  // ...but not a single byte of object data.
  uint64_t writes_after = 0;
  for (int i = 0; i < bed().num_data(); ++i) {
    writes_after += bed().data(i).stats().writes;
  }
  EXPECT_EQ(writes_after, writes_before);
  uint64_t migrated = 0;
  for (int i = 0; i < bed().num_meta(); ++i) {
    migrated += bed().meta(i).stats().migrated_objects;
  }
  EXPECT_EQ(migrated, 0u);
  // Everything still readable.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(bed().GetObject(1, "pin-" + std::to_string(i)).ok()) << i;
  }
}

TEST_F(CheetahTest, NoVgVariantMigratesOnMetaExpansion) {
  TestbedConfig config = SmallConfig();
  config.options.no_volume_groups = true;
  Boot(config);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(bed().PutObject(0, "novg-" + std::to_string(i), Payload(8192, 'x')).ok());
  }
  auto added = bed().AddMetaMachine();
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  bed().RunFor(Seconds(5));  // migration traffic
  uint64_t migrated = 0;
  for (int i = 0; i < bed().num_meta(); ++i) {
    migrated += bed().meta(i).stats().migrated_objects;
  }
  EXPECT_GT(migrated, 0u);
  for (int i = 0; i < 30; ++i) {
    auto got = bed().GetObject(1, "novg-" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << "object " << i << ": " << got.status().ToString();
  }
}

TEST_F(CheetahTest, ConcurrentClientsDistinctObjects) {
  Boot(SmallConfig());
  // Drive both proxies concurrently on one loop.
  auto done = std::make_shared<int>(0);
  for (int p = 0; p < 2; ++p) {
    bed().RunOnProxy(p, [p, done](ClientProxy& proxy) -> sim::Task<> {
      for (int i = 0; i < 20; ++i) {
        Status s = co_await proxy.Put("c" + std::to_string(p) + "-" + std::to_string(i),
                                      std::string(4096, 'c'));
        EXPECT_TRUE(s.ok()) << s.ToString();
      }
      ++*done;
    }, Nanos{0});  // don't drive the loop yet
  }
  const Nanos deadline = bed().loop().Now() + Seconds(60);
  while (*done < 2 && bed().loop().Now() < deadline) {
    if (!bed().loop().RunOne()) {
      break;
    }
  }
  ASSERT_EQ(*done, 2);
  for (int p = 0; p < 2; ++p) {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(
          bed().GetObject(1 - p, "c" + std::to_string(p) + "-" + std::to_string(i)).ok());
    }
  }
}

}  // namespace
}  // namespace cheetah::core
