// Background scrub/audit (§2.1 lists auditing among directory-based stores'
// management benefits): the primary compares MetaX checksums against every
// data replica and repairs divergent copies.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/scrubber.h"
#include "src/core/testbed.h"
#include "tests/test_util.h"

namespace cheetah::core {
namespace {

class ScrubTest : public ::testing::Test {
 public:
  void SetUp() override {
    TestbedConfig config;
    config.meta_machines = 3;
    config.data_machines = 4;
    config.proxies = 1;
    config.pg_count = 8;
    config.disks_per_data_machine = 2;
    config.pvs_per_disk = 3;
    config.lv_capacity_bytes = MiB(128);
    bed_ = std::make_unique<Testbed>(std::move(config));
    ASSERT_TRUE(bed_->Boot().ok());
  }

  void ScrubAll() {
    auto pending = std::make_shared<int>(bed_->num_meta());
    for (int i = 0; i < bed_->num_meta(); ++i) {
      bed_->meta_machine(i).actor().Spawn(
          [](MetaServer* server, std::shared_ptr<int> pending) -> sim::Task<> {
            co_await server->ScrubNow();
            --*pending;
          }(&bed_->meta(i), pending));
    }
    while (*pending > 0 && bed_->loop().RunOne()) {
    }
  }

  std::unique_ptr<Testbed> bed_;
};

TEST_F(ScrubTest, CleanClusterScrubsWithoutRepairs) {
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(bed_->PutObject(0, "s-" + std::to_string(i), std::string(8192, 's')).ok());
  }
  bed_->RunFor(Seconds(2));  // let logs clean so objects are settled
  ScrubAll();
  uint64_t scrubbed = 0, repairs = 0;
  for (int i = 0; i < bed_->num_meta(); ++i) {
    scrubbed += bed_->meta(i).stats().scrubbed_objects;
    repairs += bed_->meta(i).stats().scrub_repairs;
  }
  EXPECT_EQ(scrubbed, 20u);
  EXPECT_EQ(repairs, 0u);
}

TEST_F(ScrubTest, ScrubRepairsLostReplica) {
  ASSERT_TRUE(bed_->PutObject(0, "victim", std::string(8192, 'v')).ok());
  bed_->RunFor(Seconds(2));

  // Simulate silent loss of one replica: discard the object's extents on one
  // physical volume (the device, not the metadata, loses the data).
  const auto& topo = bed_->meta(0).topology();
  int discarded_on = -1;
  for (int d = 0; d < bed_->num_data() && discarded_on < 0; ++d) {
    auto& machine = bed_->data_machine(d);
    for (size_t disk = 0; disk < machine.num_disks() && discarded_on < 0; ++disk) {
      for (const auto& [pv_id, pv] : topo.pvs) {
        if (pv.data_server != machine.node_id() ||
            pv.disk_index != static_cast<uint32_t>(disk)) {
          continue;
        }
        auto extents = machine.disk(disk).ListVolumeExtents(pv.DeviceName());
        if (!extents.empty()) {
          machine.disk(disk).DiscardBlocks(pv.DeviceName(), extents[0].offset);
          discarded_on = d;
          break;
        }
      }
    }
  }
  ASSERT_GE(discarded_on, 0) << "no replica found to damage";

  ScrubAll();
  uint64_t repairs = 0;
  for (int i = 0; i < bed_->num_meta(); ++i) {
    repairs += bed_->meta(i).stats().scrub_repairs;
  }
  EXPECT_GE(repairs, 1u);

  // After repair, a second scrub is clean and the object reads everywhere.
  ScrubAll();
  uint64_t repairs_after = 0;
  for (int i = 0; i < bed_->num_meta(); ++i) {
    repairs_after += bed_->meta(i).stats().scrub_repairs;
  }
  EXPECT_EQ(repairs_after, repairs);
  for (int trial = 0; trial < 6; ++trial) {  // random replica choice
    auto got = bed_->GetObject(0, "victim");
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->size(), 8192u);
  }
}

// Transparent read-repair: a verified get that sees a corrupt replica but
// finds a healthy one rewrites the damaged copy in the background.
TEST_F(ScrubTest, VerifiedGetTriggersReadRepair) {
  const std::string payload(8192, 'r');
  ASSERT_TRUE(bed_->PutObject(0, "heal-me", payload).ok());
  bed_->RunFor(Seconds(2));

  // Rot every extent of every replica but one, so any get must observe at
  // least one damaged copy before it finds the healthy replica.
  const auto& topo = bed_->meta(0).topology();
  int rotted_replicas = 0;
  bool spared_one = false;
  for (int d = 0; d < bed_->num_data(); ++d) {
    auto& machine = bed_->data_machine(d);
    for (size_t disk = 0; disk < machine.num_disks(); ++disk) {
      for (const auto& [pv_id, pv] : topo.pvs) {
        if (pv.data_server != machine.node_id() ||
            pv.disk_index != static_cast<uint32_t>(disk)) {
          continue;
        }
        auto extents = machine.disk(disk).ListVolumeExtents(pv.DeviceName());
        if (extents.empty()) {
          continue;
        }
        if (!spared_one) {
          spared_one = true;  // the repair source
          continue;
        }
        for (const auto& info : extents) {
          ASSERT_TRUE(machine.disk(disk).CorruptExtent(pv.DeviceName(), info.offset));
        }
        ++rotted_replicas;
      }
    }
  }
  ASSERT_GT(rotted_replicas, 0) << "no replica found to damage";

  // Gets never return damaged bytes, and once one observes the corruption it
  // spawns the background repair.
  uint64_t observed = 0;
  for (int trial = 0; trial < 12 && observed == 0; ++trial) {
    auto got = bed_->GetObject(0, "heal-me");
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, payload);
    observed = bed_->proxy(0).stats().corrupt_replica_reads;
  }
  ASSERT_GT(observed, 0u) << "no get ever touched a damaged replica";
  bed_->RunFor(Seconds(1));  // let the fire-and-forget repair land
  EXPECT_GT(bed_->proxy(0).stats().read_repairs, 0u);

  // Read-repair only heals replicas the gets actually touched; one scrub
  // pass mops up any replica no get ever routed to, after which a second
  // pass finds nothing left.
  ScrubAll();
  uint64_t corrupt_first = 0;
  for (int i = 0; i < bed_->num_meta(); ++i) {
    corrupt_first += bed_->meta(i).scrubber().stats().corrupt_found;
  }
  ScrubAll();
  uint64_t corrupt_second = 0;
  for (int i = 0; i < bed_->num_meta(); ++i) {
    corrupt_second += bed_->meta(i).scrubber().stats().corrupt_found;
  }
  EXPECT_EQ(corrupt_second, corrupt_first);
  // Read-repair got there first for at least one replica: the scrub pass had
  // fewer damaged copies left than were injected.
  EXPECT_LT(corrupt_first, static_cast<uint64_t>(rotted_replicas))
      << "read-repair healed nothing before the scrub pass";
}

// Read-repair racing a concurrent delete: the repair write is fire-and-forget
// and may land after the delete freed the object's blocks. Deletes never
// touch data servers (visibility is governed by MetaX tombstones), so a late
// repair write is benign: the name stays deleted, a re-put of the name works,
// and the cluster converges to a state a scrub pass finds clean.
TEST(ScrubRaceTest, ReadRepairRacingDeleteStaysConsistent) {
  TestbedConfig config;
  config.meta_machines = 3;
  config.data_machines = 4;
  config.proxies = 2;
  config.pg_count = 8;
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 3;
  config.lv_capacity_bytes = MiB(128);
  Testbed bed(std::move(config));
  ASSERT_TRUE(bed.Boot().ok());

  const std::string payload(8192, 'v');
  ASSERT_TRUE(bed.PutObject(0, "victim", payload).ok());
  bed.RunFor(Seconds(2));

  // Damage all replicas but one (same setup as the repair test above).
  const auto& topo = bed.meta(0).topology();
  bool spared_one = false;
  int rotted = 0;
  for (int d = 0; d < bed.num_data(); ++d) {
    auto& machine = bed.data_machine(d);
    for (size_t disk = 0; disk < machine.num_disks(); ++disk) {
      for (const auto& [pv_id, pv] : topo.pvs) {
        if (pv.data_server != machine.node_id() ||
            pv.disk_index != static_cast<uint32_t>(disk)) {
          continue;
        }
        auto extents = machine.disk(disk).ListVolumeExtents(pv.DeviceName());
        if (extents.empty()) {
          continue;
        }
        if (!spared_one) {
          spared_one = true;
          continue;
        }
        for (const auto& info : extents) {
          machine.disk(disk).CorruptExtent(pv.DeviceName(), info.offset);
          ++rotted;
        }
      }
    }
  }
  ASSERT_GT(rotted, 0);

  // Proxy 0 reads (observing the corruption and spawning repairs) while
  // proxy 1 deletes the object mid-stream.
  auto done = std::make_shared<int>(0);
  auto wrong_bytes = std::make_shared<int>(0);
  bed.RunOnProxy(0, [payload, done, wrong_bytes](ClientProxy& proxy) -> sim::Task<> {
    for (int i = 0; i < 10; ++i) {
      auto r = co_await proxy.Get("victim");
      if (r.ok() && *r != payload) {
        ++*wrong_bytes;  // silent corruption — never allowed
      }
      co_await sim::SleepFor(Millis(2));
    }
    ++*done;
  }, Nanos{0});
  bed.RunOnProxy(1, [done](ClientProxy& proxy) -> sim::Task<> {
    co_await sim::SleepFor(Millis(8));  // a few reads in flight first
    Status s = co_await proxy.Delete("victim");
    EXPECT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
    ++*done;
  }, Nanos{0});
  const Nanos deadline = bed.loop().Now() + Seconds(60);
  while (*done < 2 && bed.loop().Now() < deadline && bed.loop().RunOne()) {
  }
  ASSERT_EQ(*done, 2);
  EXPECT_EQ(*wrong_bytes, 0);

  // Any straggler repair writes land here.
  bed.RunFor(Seconds(2));

  // The delete sticks on every proxy, even if a repair wrote freed blocks.
  EXPECT_TRUE(bed.GetObject(0, "victim").status().IsNotFound());
  EXPECT_TRUE(bed.GetObject(1, "victim").status().IsNotFound());

  // The name is reusable, and the new bytes win everywhere.
  const std::string reborn(8192, 'w');
  ASSERT_TRUE(bed.PutObject(1, "victim", reborn).ok());
  bed.RunFor(Seconds(2));
  for (int p = 0; p < 2; ++p) {
    for (int trial = 0; trial < 6; ++trial) {  // random replica choice
      auto got = bed.GetObject(p, "victim");
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, reborn);
    }
  }

  // Converged: two scrub passes, the second finds nothing to repair.
  auto scrub_all = [&bed] {
    auto pending = std::make_shared<int>(bed.num_meta());
    for (int i = 0; i < bed.num_meta(); ++i) {
      bed.meta_machine(i).actor().Spawn(
          [](MetaServer* server, std::shared_ptr<int> pending) -> sim::Task<> {
            co_await server->ScrubNow();
            --*pending;
          }(&bed.meta(i), pending));
    }
    while (*pending > 0 && bed.loop().RunOne()) {
    }
  };
  scrub_all();
  uint64_t corrupt_before = 0;
  for (int i = 0; i < bed.num_meta(); ++i) {
    corrupt_before += bed.meta(i).scrubber().stats().corrupt_found;
  }
  scrub_all();
  uint64_t corrupt_after = 0;
  for (int i = 0; i < bed.num_meta(); ++i) {
    corrupt_after += bed.meta(i).scrubber().stats().corrupt_found;
  }
  EXPECT_EQ(corrupt_after, corrupt_before);
}

TEST_F(ScrubTest, PeriodicScrubRunsWhenEnabled) {
  TestbedConfig config;
  config.meta_machines = 3;
  config.data_machines = 4;
  config.proxies = 1;
  config.pg_count = 8;
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 3;
  config.lv_capacity_bytes = MiB(128);
  config.options.scrub_interval = Millis(500);
  Testbed bed(std::move(config));
  ASSERT_TRUE(bed.Boot().ok());
  ASSERT_TRUE(bed.PutObject(0, "periodic", std::string(4096, 'p')).ok());
  bed.RunFor(Seconds(3));
  uint64_t scrubbed = 0;
  for (int i = 0; i < bed.num_meta(); ++i) {
    scrubbed += bed.meta(i).stats().scrubbed_objects;
  }
  EXPECT_GT(scrubbed, 0u);
}

}  // namespace
}  // namespace cheetah::core
