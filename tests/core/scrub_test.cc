// Background scrub/audit (§2.1 lists auditing among directory-based stores'
// management benefits): the primary compares MetaX checksums against every
// data replica and repairs divergent copies.
#include <gtest/gtest.h>

#include "src/core/testbed.h"
#include "tests/test_util.h"

namespace cheetah::core {
namespace {

class ScrubTest : public ::testing::Test {
 public:
  void SetUp() override {
    TestbedConfig config;
    config.meta_machines = 3;
    config.data_machines = 4;
    config.proxies = 1;
    config.pg_count = 8;
    config.disks_per_data_machine = 2;
    config.pvs_per_disk = 3;
    config.lv_capacity_bytes = MiB(128);
    bed_ = std::make_unique<Testbed>(std::move(config));
    ASSERT_TRUE(bed_->Boot().ok());
  }

  void ScrubAll() {
    auto pending = std::make_shared<int>(bed_->num_meta());
    for (int i = 0; i < bed_->num_meta(); ++i) {
      bed_->meta_machine(i).actor().Spawn(
          [](MetaServer* server, std::shared_ptr<int> pending) -> sim::Task<> {
            co_await server->ScrubNow();
            --*pending;
          }(&bed_->meta(i), pending));
    }
    while (*pending > 0 && bed_->loop().RunOne()) {
    }
  }

  std::unique_ptr<Testbed> bed_;
};

TEST_F(ScrubTest, CleanClusterScrubsWithoutRepairs) {
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(bed_->PutObject(0, "s-" + std::to_string(i), std::string(8192, 's')).ok());
  }
  bed_->RunFor(Seconds(2));  // let logs clean so objects are settled
  ScrubAll();
  uint64_t scrubbed = 0, repairs = 0;
  for (int i = 0; i < bed_->num_meta(); ++i) {
    scrubbed += bed_->meta(i).stats().scrubbed_objects;
    repairs += bed_->meta(i).stats().scrub_repairs;
  }
  EXPECT_EQ(scrubbed, 20u);
  EXPECT_EQ(repairs, 0u);
}

TEST_F(ScrubTest, ScrubRepairsLostReplica) {
  ASSERT_TRUE(bed_->PutObject(0, "victim", std::string(8192, 'v')).ok());
  bed_->RunFor(Seconds(2));

  // Simulate silent loss of one replica: discard the object's extents on one
  // physical volume (the device, not the metadata, loses the data).
  const auto& topo = bed_->meta(0).topology();
  int discarded_on = -1;
  for (int d = 0; d < bed_->num_data() && discarded_on < 0; ++d) {
    auto& machine = bed_->data_machine(d);
    for (size_t disk = 0; disk < machine.num_disks() && discarded_on < 0; ++disk) {
      for (const auto& [pv_id, pv] : topo.pvs) {
        if (pv.data_server != machine.node_id() ||
            pv.disk_index != static_cast<uint32_t>(disk)) {
          continue;
        }
        auto extents = machine.disk(disk).ListVolumeExtents(pv.DeviceName());
        if (!extents.empty()) {
          machine.disk(disk).DiscardBlocks(pv.DeviceName(), extents[0].offset);
          discarded_on = d;
          break;
        }
      }
    }
  }
  ASSERT_GE(discarded_on, 0) << "no replica found to damage";

  ScrubAll();
  uint64_t repairs = 0;
  for (int i = 0; i < bed_->num_meta(); ++i) {
    repairs += bed_->meta(i).stats().scrub_repairs;
  }
  EXPECT_GE(repairs, 1u);

  // After repair, a second scrub is clean and the object reads everywhere.
  ScrubAll();
  uint64_t repairs_after = 0;
  for (int i = 0; i < bed_->num_meta(); ++i) {
    repairs_after += bed_->meta(i).stats().scrub_repairs;
  }
  EXPECT_EQ(repairs_after, repairs);
  for (int trial = 0; trial < 6; ++trial) {  // random replica choice
    auto got = bed_->GetObject(0, "victim");
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->size(), 8192u);
  }
}

TEST_F(ScrubTest, PeriodicScrubRunsWhenEnabled) {
  TestbedConfig config;
  config.meta_machines = 3;
  config.data_machines = 4;
  config.proxies = 1;
  config.pg_count = 8;
  config.disks_per_data_machine = 2;
  config.pvs_per_disk = 3;
  config.lv_capacity_bytes = MiB(128);
  config.options.scrub_interval = Millis(500);
  Testbed bed(std::move(config));
  ASSERT_TRUE(bed.Boot().ok());
  ASSERT_TRUE(bed.PutObject(0, "periodic", std::string(4096, 'p')).ok());
  bed.RunFor(Seconds(3));
  uint64_t scrubbed = 0;
  for (int i = 0; i < bed.num_meta(); ++i) {
    scrubbed += bed.meta(i).stats().scrubbed_objects;
  }
  EXPECT_GT(scrubbed, 0u);
}

}  // namespace
}  // namespace cheetah::core
