// Protocol-level behaviors of the meta and data servers, exercised with raw
// RPCs: view-number checks, primary-ship checks, lease expiry, probe
// semantics, and notification idempotence.
#include <gtest/gtest.h>

#include "src/common/crc32c.h"
#include "src/core/testbed.h"
#include "tests/test_util.h"

namespace cheetah::core {
namespace {

class ProtocolTest : public ::testing::Test {
 public:
  void SetUp() override {
    TestbedConfig config;
    config.meta_machines = 3;
    config.data_machines = 4;
    config.proxies = 2;
    config.pg_count = 8;
    config.disks_per_data_machine = 2;
    config.pvs_per_disk = 3;
    config.lv_capacity_bytes = MiB(128);
    bed_ = std::make_unique<Testbed>(std::move(config));
    ASSERT_TRUE(bed_->Boot().ok());
  }

  // Runs a raw-RPC coroutine from proxy 0's node.
  template <typename Fn>
  void Raw(Fn body) {
    auto done = std::make_shared<bool>(false);
    bed_->proxy_machine(0).actor().Spawn(
        [](Fn body, rpc::Node* node, Testbed* bed, std::shared_ptr<bool> done) -> sim::Task<> {
          co_await body(*node, *bed);
          *done = true;
        }(std::move(body), &bed_->proxy_rpc(0), bed_.get(), done));
    const Nanos deadline = bed_->loop().Now() + Seconds(30);
    while (!*done && bed_->loop().Now() < deadline && bed_->loop().RunOne()) {
    }
    ASSERT_TRUE(*done);
  }

  std::unique_ptr<Testbed> bed_;
};

TEST_F(ProtocolTest, StaleViewIsRejected) {
  Raw([](rpc::Node& node, Testbed& bed) -> sim::Task<> {
    const auto& topo = bed.meta(0).topology();
    const cluster::PgId pg = topo.PgOf("stale-obj");
    GetMetaRequest req;
    req.view = topo.view + 7;  // from the future
    req.name = "stale-obj";
    auto r = co_await node.Call(topo.PrimaryOf(pg), std::move(req), Millis(200));
    EXPECT_TRUE(r.status().IsStaleView()) << r.status().ToString();

    GetMetaRequest old_req;
    old_req.view = 0;  // from the past
    old_req.name = "stale-obj";
    auto r2 = co_await node.Call(topo.PrimaryOf(pg), std::move(old_req), Millis(200));
    EXPECT_TRUE(r2.status().IsStaleView());
  });
}

TEST_F(ProtocolTest, NonPrimaryRejectsPrimaryOps) {
  Raw([](rpc::Node& node, Testbed& bed) -> sim::Task<> {
    const auto& topo = bed.meta(0).topology();
    const cluster::PgId pg = topo.PgOf("misdirected");
    auto servers = topo.MetaServersOf(pg);
    CO_ASSERT_TRUE(servers.size() >= 2);
    GetMetaRequest req;
    req.view = topo.view;
    req.name = "misdirected";
    // The backup holds the data but must not serve primary-only requests.
    auto r = co_await node.Call(servers[1], std::move(req), Millis(200));
    EXPECT_TRUE(r.status().IsStaleView()) << r.status().ToString();
  });
}

TEST_F(ProtocolTest, LeaseExpiryStopsService) {
  ASSERT_TRUE(bed_->PutObject(0, "leased", std::string(4096, 'l')).ok());
  // Partition every meta server from every manager: leases can't renew. The
  // managers also stop seeing heartbeats, but fail_timeout > lease_duration
  // so the lease lapses first (§5.1's safety order).
  for (int m = 0; m < bed_->num_meta(); ++m) {
    for (sim::NodeId mgr : bed_->manager_nodes()) {
      bed_->network().SetPartitioned(bed_->meta_machine(m).node_id(), mgr, true);
    }
  }
  bed_->RunFor(Millis(350));  // lease_duration is 300ms
  for (int m = 0; m < bed_->num_meta(); ++m) {
    EXPECT_FALSE(bed_->meta(m).HasLease()) << "meta " << m;
  }
  Raw([](rpc::Node& node, Testbed& bed) -> sim::Task<> {
    const auto& topo = bed.meta(0).topology();
    const cluster::PgId pg = topo.PgOf("leased");
    GetMetaRequest req;
    req.view = bed.meta(0).view();
    req.name = "leased";
    auto r = co_await node.Call(topo.PrimaryOf(pg), std::move(req), Millis(200));
    EXPECT_FALSE(r.ok());  // lease expired (or the view moved on)
  });
  // Heal; service resumes.
  bed_->network().ClearPartitions();
  bed_->RunFor(Seconds(3));
  auto got = bed_->GetObject(0, "leased");
  EXPECT_TRUE(got.ok()) << got.status().ToString();
}

TEST_F(ProtocolTest, ProbeVerifiesChecksumAndPresence) {
  ASSERT_TRUE(bed_->PutObject(0, "probed", std::string(8192, 'p')).ok());
  Raw([](rpc::Node& node, Testbed& bed) -> sim::Task<> {
    // Fetch the authoritative metadata, then probe the data servers like a
    // recovering meta server would (§5.3).
    const auto& topo = bed.meta(0).topology();
    const cluster::PgId pg = topo.PgOf("probed");
    GetMetaRequest req;
    req.view = topo.view;
    req.name = "probed";
    auto meta = co_await node.Call(topo.PrimaryOf(pg), std::move(req), Millis(500));
    CO_ASSERT_OK(meta);
    const cluster::LogicalVolume* lv = topo.FindLv(meta->meta.lvid);
    CO_ASSERT_TRUE(lv != nullptr);
    const cluster::PhysicalVolume* pv = topo.FindPv(lv->replicas[0]);
    CO_ASSERT_TRUE(pv != nullptr);

    DataProbeRequest good;
    good.device = pv->DeviceName();
    good.disk_index = pv->disk_index;
    good.block_size = lv->block_size;
    good.extents = meta->meta.extents;
    good.expected_checksum = meta->meta.checksum;
    auto ok_probe = co_await node.Call(pv->data_server, std::move(good), Millis(500));
    CO_ASSERT_OK(ok_probe);
    EXPECT_TRUE(ok_probe->present);

    DataProbeRequest bad;
    bad.device = pv->DeviceName();
    bad.disk_index = pv->disk_index;
    bad.block_size = lv->block_size;
    bad.extents = meta->meta.extents;
    bad.expected_checksum = meta->meta.checksum ^ 0xff;
    auto bad_probe = co_await node.Call(pv->data_server, std::move(bad), Millis(500));
    CO_ASSERT_OK(bad_probe);
    EXPECT_FALSE(bad_probe->present);

    DataProbeRequest absent;
    absent.device = pv->DeviceName();
    absent.disk_index = pv->disk_index;
    absent.block_size = lv->block_size;
    absent.extents = {alloc::Extent(999999, 4)};
    absent.expected_checksum = 0;
    auto absent_probe = co_await node.Call(pv->data_server, std::move(absent), Millis(500));
    CO_ASSERT_OK(absent_probe);
    EXPECT_FALSE(absent_probe->present);
  });
}

TEST_F(ProtocolTest, CommitNotifyIsIdempotentAndTolerant) {
  ASSERT_TRUE(bed_->PutObject(0, "notified", std::string(4096, 'n')).ok());
  Raw([](rpc::Node& node, Testbed& bed) -> sim::Task<> {
    const auto& topo = bed.meta(0).topology();
    const cluster::PgId pg = topo.PgOf("notified");
    // Duplicate and bogus commit notifications must be harmless.
    for (int i = 0; i < 3; ++i) {
      PutCommitNotify dup;
      dup.view = topo.view;
      dup.name = "notified";
      dup.reqid = 0xdeadbeef;  // unknown request id
      auto r = co_await node.Call(topo.PrimaryOf(pg), std::move(dup), Millis(200));
      EXPECT_TRUE(r.ok());
    }
  });
  auto got = bed_->GetObject(0, "notified");
  EXPECT_TRUE(got.ok());
}

TEST_F(ProtocolTest, DataServerIsObjectAgnostic) {
  // A data server accepts raw block writes/reads with no knowledge of names
  // or objects — the §3.1 agnosticism.
  Raw([](rpc::Node& node, Testbed& bed) -> sim::Task<> {
    const sim::NodeId ds = bed.data_machine(0).node_id();
    DataWriteRequest write;
    write.view = bed.meta(0).view();
    write.device = "adhoc_volume";
    write.disk_index = 0;
    write.block_size = 4096;
    write.extents = {alloc::Extent(10, 2)};
    write.data = std::string(8192, 'r');
    write.checksum = Crc32c(write.data);
    auto w = co_await node.Call(ds, std::move(write), Millis(500));
    CO_ASSERT_OK(w);

    DataReadRequest read;
    read.device = "adhoc_volume";
    read.disk_index = 0;
    read.block_size = 4096;
    read.extents = {alloc::Extent(10, 2)};
    read.length = 8192;
    auto r = co_await node.Call(ds, std::move(read), Millis(500));
    CO_ASSERT_OK(r);
    EXPECT_EQ(r->data.size(), 8192u);
    EXPECT_EQ(r->data[0], 'r');
  });
}

}  // namespace
}  // namespace cheetah::core
