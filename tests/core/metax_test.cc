#include <gtest/gtest.h>

#include "src/core/metax.h"

namespace cheetah::core {
namespace {

TEST(MetaXKeysTest, Table1KeyShapes) {
  EXPECT_EQ(ObMetaKey(3, "photo.jpg"), "OBMETA_00000003_photo.jpg");
  EXPECT_EQ(PgLogKey(3, 7), "PGLOG_00000003_0000000000000007");
  EXPECT_EQ(PxLogKey(2, 9), "PXLOG_00000002_0000000000000009");
}

TEST(MetaXKeysTest, PgLogKeysSortByOpseq) {
  EXPECT_LT(PgLogKey(1, 5), PgLogKey(1, 6));
  EXPECT_LT(PgLogKey(1, 9), PgLogKey(1, 10));  // hex padding keeps order
  EXPECT_LT(PgLogKey(1, 0xff), PgLogKey(1, 0x100));
}

TEST(MetaXKeysTest, PrefixesIsolatePgs) {
  EXPECT_TRUE(ObMetaKey(7, "x").starts_with(ObMetaPrefix(7)));
  EXPECT_FALSE(ObMetaKey(8, "x").starts_with(ObMetaPrefix(7)));
  EXPECT_TRUE(PgLogKey(7, 1).starts_with(PgLogPrefix(7)));
  EXPECT_TRUE(PxLogKey(4, 1).starts_with(PxLogPrefix(4)));
}

TEST(MetaXKeysTest, ParsePgLogKeyRoundTrip) {
  cluster::PgId pg = 0;
  uint64_t opseq = 0;
  ASSERT_TRUE(ParsePgLogKey(PgLogKey(42, 77), &pg, &opseq));
  EXPECT_EQ(pg, 42u);
  EXPECT_EQ(opseq, 77u);
  EXPECT_FALSE(ParsePgLogKey("OBMETA_00000001_x", &pg, &opseq));
  EXPECT_FALSE(ParsePgLogKey("PGLOG_zzz", &pg, &opseq));
}

TEST(MetaXKeysTest, ParseObMetaKeyRoundTrip) {
  cluster::PgId pg = 0;
  std::string name;
  ASSERT_TRUE(ParseObMetaKey(ObMetaKey(9, "obj/with_underscores"), &pg, &name));
  EXPECT_EQ(pg, 9u);
  EXPECT_EQ(name, "obj/with_underscores");
}

TEST(MetaXKeysTest, ParsePxLogKeyRoundTrip) {
  uint32_t px = 0;
  ReqId reqid = 0;
  ASSERT_TRUE(ParsePxLogKey(PxLogKey(5, 0xdeadbeefull), &px, &reqid));
  EXPECT_EQ(px, 5u);
  EXPECT_EQ(reqid, 0xdeadbeefull);
}

TEST(MetaXValuesTest, ObMetaRoundTrip) {
  ObMeta m;
  m.lvid = 12;
  m.extents = {{100, 4}, {500, 2}};
  m.checksum = 0xabcdef01;
  m.size = 24000;
  auto decoded = ObMeta::Decode(m.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->lvid, 12u);
  EXPECT_EQ(decoded->extents, m.extents);
  EXPECT_EQ(decoded->checksum, m.checksum);
  EXPECT_EQ(decoded->size, m.size);
}

TEST(MetaXValuesTest, ObMetaRejectsGarbage) {
  EXPECT_FALSE(ObMeta::Decode("").ok());
  EXPECT_FALSE(ObMeta::Decode("\xff\xff\xff").ok());
}

TEST(MetaXValuesTest, PgLogAndPxLogRoundTrip) {
  PgLog pglog;
  pglog.name = "object-1";
  pglog.pxlogkey = PxLogKey(1, 2);
  auto d1 = PgLog::Decode(pglog.Encode());
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(d1->name, "object-1");
  EXPECT_EQ(d1->pxlogkey, pglog.pxlogkey);

  PxLog pxlog;
  pxlog.name = "object-1";
  pxlog.pglogkey = PgLogKey(3, 4);
  auto d2 = PxLog::Decode(pxlog.Encode());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d2->pglogkey, pxlog.pglogkey);
}

TEST(MetaXValuesTest, ExtentBytes) {
  std::vector<alloc::Extent> extents = {{0, 3}, {10, 1}};
  EXPECT_EQ(ExtentBytes(extents, 4096), 4u * 4096u);
}

}  // namespace
}  // namespace cheetah::core
