#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/common/coding.h"
#include "src/common/crc32c.h"
#include "src/common/hash.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/common/units.h"

namespace cheetah {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::NotFound("missing object");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing object");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Timeout("slow");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTimeout());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zeros.
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8a9136aau);
  // "123456789" -> 0xe3069283 is the canonical CRC-32C check value.
  EXPECT_EQ(Crc32c("123456789"), 0xe3069283u);
}

TEST(Crc32cTest, ExtendMatchesWhole) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t whole = Crc32c(data);
  uint32_t split = Crc32cExtend(Crc32c(data.substr(0, 17)), data.substr(17));
  EXPECT_EQ(whole, split);
}

TEST(Crc32cTest, DifferentDataDifferentCrc) {
  EXPECT_NE(Crc32c("object-a"), Crc32c("object-b"));
}

TEST(HashTest, CrushHashDeterministic) {
  EXPECT_EQ(CrushHash32_2(17, 42), CrushHash32_2(17, 42));
  EXPECT_NE(CrushHash32_2(17, 42), CrushHash32_2(17, 43));
  EXPECT_NE(CrushHash32(0), CrushHash32(1));
}

TEST(HashTest, Fnv1a64Spread) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(Fnv1a64("object-" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeefu);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(DecodeFixed32(buf.data()), 0xdeadbeefu);
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789abcdefull);
  ASSERT_EQ(buf.size(), 8u);
  EXPECT_EQ(DecodeFixed64(buf.data()), 0x0123456789abcdefull);
}

TEST(CodingTest, VarintRoundTrip) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull, 1ull << 32, ~0ull}) {
    std::string buf;
    PutVarint64(&buf, v);
    std::string_view input = buf;
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(&input, &out));
    EXPECT_EQ(out, v);
    EXPECT_TRUE(input.empty());
  }
}

TEST(CodingTest, VarintTruncated) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf.resize(buf.size() - 1);
  std::string_view input = buf;
  uint64_t out = 0;
  EXPECT_FALSE(GetVarint64(&input, &out));
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, "world!");
  std::string_view input = buf;
  std::string_view a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&input, &a));
  ASSERT_TRUE(GetLengthPrefixed(&input, &b));
  ASSERT_TRUE(GetLengthPrefixed(&input, &c));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, "world!");
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, LengthPrefixedTruncated) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  buf.resize(3);
  std::string_view input = buf;
  std::string_view out;
  EXPECT_FALSE(GetLengthPrefixed(&input, &out));
}

TEST(RngTest, Deterministic) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (a.Next() == b.Next());
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.Bernoulli(0.3);
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(Micros(1), 1000u);
  EXPECT_EQ(Millis(1), 1000000u);
  EXPECT_EQ(Seconds(1), 1000000000u);
  EXPECT_DOUBLE_EQ(ToMillisF(Millis(5)), 5.0);
  EXPECT_EQ(KiB(8), 8192u);
}

}  // namespace
}  // namespace cheetah
