// Nemesis: scripted fault schedules against a core::Testbed.
//
// A schedule is a list of (virtual time, fault action) events; Install()
// registers them on the testbed's event loop, so faults fire while the
// workload runs without any test-side bookkeeping. All randomness used to
// *compose* a schedule comes from one seed, and every action is itself
// deterministic, so printing {seed, schedule} is a complete reproduction
// recipe — replaying the same seed and schedule yields a byte-identical run.
//
// Schedules end with the restorative actions (heal, restart, restore) so a
// test can always settle the cluster and run its final audit reads.
#ifndef SRC_CHAOS_NEMESIS_H_
#define SRC_CHAOS_NEMESIS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/core/testbed.h"

namespace cheetah::chaos {

struct NemesisEvent {
  Nanos at = 0;             // relative to Install() time
  std::string describe;     // replay documentation, e.g. "crash meta[1]"
  std::function<void(core::Testbed&)> action;
};

class NemesisSchedule {
 public:
  NemesisSchedule() = default;

  void Add(Nanos at, std::string describe, std::function<void(core::Testbed&)> action) {
    events_.push_back({at, std::move(describe), std::move(action)});
  }

  // Concatenates another schedule's events (composition). Events fire by
  // their scheduled time, so insertion order does not affect execution.
  void Append(const NemesisSchedule& other) {
    events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  }

  // Registers every event on the testbed's loop at now + event.at.
  void Install(core::Testbed& bed) const;

  // One line per event: "+1.250s crash meta[1]". This, plus the seed, is the
  // replay recipe printed on failure.
  std::string ToString() const;

  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }

 private:
  std::vector<NemesisEvent> events_;
};

// ---- schedule builders -----------------------------------------------------
// All builders take the testbed config implicitly through role counts and a
// seed; they never consult wall-clock randomness. `span` is the window the
// workload runs in; restorative events land inside it so the cluster is
// healthy again before the post-workload audit.

// Crash (or power-fail) one meta machine, restart it, repeat.
NemesisSchedule MetaCrashRestartLoop(uint64_t seed, int meta_count, Nanos span,
                                     bool power_fail);

// Power-fail the meta primary mid-workload; the view change runs while it is
// down; restart late. Aimed at the put persist-wait window.
NemesisSchedule MetaPowerFailViewChange(uint64_t seed, int meta_count, Nanos span);

// Partition one meta machine from everything, let a view change evict it,
// then heal. Exercises RE-META and stale-view recovery.
NemesisSchedule PartitionHealMeta(uint64_t seed, int meta_count, Nanos span);

// Degrade one data machine's disks (slow + briefly stuck fsync), restore.
NemesisSchedule GrayDataDisk(uint64_t seed, int data_count, Nanos span);

// Lossy network: probabilistic drop/dup/delay on all links for a stretch.
NemesisSchedule NetChaos(uint64_t seed, Nanos span);

// At-rest damage: several waves of silent bit rot plus latent sector errors
// across the data machines' disks. Each wave's damage set is a pure function
// of (disk contents at fire time, wave seed), so the whole schedule replays
// byte-identically. Restorative by design: damage is repaired by verified
// reads and the scrubber, not by a heal event.
NemesisSchedule BitRot(uint64_t seed, int data_count, Nanos span);

// The integrity battery: bit rot + latent sector errors + a window where one
// data machine's disks silently corrupt a fraction of incoming writes
// (write_corrupt_prob gray failure), cleared before the audit.
NemesisSchedule IntegrityChaos(uint64_t seed, int data_count, Nanos span);

// Composition of the above picked by seed: crash + gray disk + lossy net.
NemesisSchedule Combined(uint64_t seed, int meta_count, int data_count, Nanos span);

// Erasure-coding battery over three disjoint fault domains: at-rest bit-rot
// waves pinned to one data machine, a crash-restart of a second (its chunks
// go dark mid-run, forcing degraded reads), and a gray-corrupting-writes
// window on a third. Stripe chunks live on distinct servers, so at most one
// chunk per stripe is ever damaged at rest — within m, always repairable —
// while the crash adds transient unavailability on top.
NemesisSchedule EcChunkChaos(uint64_t seed, int data_count, Nanos span);

// ---- membership lifecycle chaos ----
// Each schedule begins a planned drain of one meta machine mid-workload and
// then attacks a different leg of the live-migration state machine. A drain
// resumes from replicated state across manager leader changes and aborts
// cleanly (eviction instead of retirement) when the drain target itself
// dies, so correctness — linearizability plus no lost/ghost objects — must
// hold whether or not the drain completes. A late re-issued drain exercises
// the full Prepare -> DoubleWrite -> Catchup -> Cutover path even on the
// aborting flavors.
enum class MigrationFault {
  kCrashSource = 0,       // kill the draining node mid-DoubleWrite
  kCrashDestination = 1,  // kill a catchup destination mid-Catchup
  kPartitionLeader = 2,   // isolate the manager leader around Cutover
};
NemesisSchedule MigrationChaos(uint64_t seed, int meta_count, Nanos span,
                               MigrationFault fault);

// The migration sweep's battery: one schedule per fault flavor.
std::vector<NemesisSchedule> MigrationSchedules(uint64_t seed, int meta_count,
                                                Nanos span);

// The sweep's standard battery for a given seed.
std::vector<NemesisSchedule> StandardSchedules(uint64_t seed, int meta_count,
                                               int data_count, Nanos span);

}  // namespace cheetah::chaos

#endif  // SRC_CHAOS_NEMESIS_H_
