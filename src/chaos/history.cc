#include "src/chaos/history.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

namespace cheetah::chaos {

namespace {

const char* TypeName(OpType t) {
  switch (t) {
    case OpType::kPut: return "put";
    case OpType::kGet: return "get";
    case OpType::kDelete: return "del";
  }
  return "?";
}

const char* OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kOk: return "ok";
    case Outcome::kNotFound: return "notfound";
    case Outcome::kNoEffect: return "noeffect";
    case Outcome::kAmbiguous: return "ambiguous";
  }
  return "?";
}

}  // namespace

std::string Op::ToString() const {
  std::ostringstream os;
  os << "#" << id << " c" << client << " " << TypeName(type) << "(" << key;
  if (type == OpType::kPut || (type == OpType::kGet && outcome == Outcome::kOk)) {
    os << "=" << (value.size() <= 24 ? value : value.substr(0, 24) + "...");
  }
  os << ")->" << OutcomeName(outcome) << " [" << invoke << ",";
  if (EffectiveRet() == kNeverReturned) {
    os << "inf";
  } else {
    os << ret;
  }
  os << "]";
  return os.str();
}

uint64_t History::Invoke(int client, OpType type, const std::string& key,
                         const std::string& value, Nanos now) {
  Op op;
  op.id = next_id_++;
  op.client = client;
  op.type = type;
  op.key = key;
  op.value = value;
  op.invoke = now;
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

void History::Return(uint64_t id, Outcome outcome, const std::string& observed,
                     Nanos now) {
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    if (it->id == id) {
      it->outcome = outcome;
      it->ret = now;
      it->done = true;
      if (it->type == OpType::kGet && outcome == Outcome::kOk) {
        it->value = observed;
      }
      return;
    }
  }
}

std::map<std::string, std::vector<Op>> History::PerKey() const {
  std::map<std::string, std::vector<Op>> out;
  for (const Op& op : ops_) {
    Op copy = op;
    if (!copy.done) {
      copy.outcome = Outcome::kAmbiguous;  // client never saw a response
    }
    out[copy.key].push_back(std::move(copy));
  }
  return out;
}

std::string History::Serialize() const {
  std::ostringstream os;
  for (const Op& op : ops_) {
    os << op.id << "\t" << op.client << "\t" << TypeName(op.type) << "\t" << op.key
       << "\t" << op.value << "\t" << (op.done ? OutcomeName(op.outcome) : "undone")
       << "\t" << op.invoke << "\t" << op.ret << "\n";
  }
  return os.str();
}

namespace {

// Per-key Wing&Gong search. State of the create-once register is encoded as
// a value index: 0 = absent, i+1 = ops[i]'s put value is visible. Memoizing
// (linearized-mask, state) prunes re-exploration of equivalent prefixes.
class KeyChecker {
 public:
  explicit KeyChecker(const std::vector<Op>& ops) : ops_(ops) {}

  bool Check() { return Dfs(0, 0); }

 private:
  using StateKey = std::pair<uint64_t, uint32_t>;

  bool Dfs(uint64_t mask, uint32_t state) {
    const uint64_t full = (ops_.size() == 64) ? ~0ull : ((1ull << ops_.size()) - 1);
    if (mask == full) {
      return true;
    }
    if (!visited_.insert({mask, state}).second) {
      return false;
    }
    // An op can linearize next only if no other pending op returned before
    // its invocation (real-time order must be respected).
    Nanos min_ret = Op::kNeverReturned;
    for (size_t i = 0; i < ops_.size(); ++i) {
      if ((mask >> i) & 1) {
        continue;
      }
      min_ret = std::min(min_ret, ops_[i].EffectiveRet());
    }
    for (size_t i = 0; i < ops_.size(); ++i) {
      if ((mask >> i) & 1) {
        continue;
      }
      const Op& op = ops_[i];
      if (op.invoke > min_ret) {
        continue;  // some pending op precedes it in real time
      }
      const uint64_t next_mask = mask | (1ull << i);
      for (uint32_t next : NextStates(i, state)) {
        if (Dfs(next_mask, next)) {
          return true;
        }
      }
    }
    return false;
  }

  static constexpr uint32_t kNoState = ~0u;

  // Legal post-states of linearizing ops_[i] in `state` (empty = illegal).
  std::vector<uint32_t> NextStates(size_t i, uint32_t state) {
    const Op& op = ops_[i];
    const bool present = state != 0;
    std::vector<uint32_t> out;
    switch (op.type) {
      case OpType::kPut:
        switch (op.outcome) {
          case Outcome::kOk:
            if (!present) {
              out.push_back(static_cast<uint32_t>(i) + 1);
            }
            break;
          case Outcome::kAmbiguous:
            out.push_back(state);  // lost / revoked: no effect
            if (!present) {
              out.push_back(static_cast<uint32_t>(i) + 1);  // landed server-side
            }
            break;
          default:  // AlreadyExists / ResourceExhausted: definite no-op
            out.push_back(state);
            break;
        }
        break;
      case OpType::kGet:
        switch (op.outcome) {
          case Outcome::kOk:
            if (present && ops_[state - 1].value == op.value) {
              out.push_back(state);
            }
            break;
          case Outcome::kNotFound:
            if (!present) {
              out.push_back(state);
            }
            break;
          default:  // failed get observed nothing
            out.push_back(state);
            break;
        }
        break;
      case OpType::kDelete:
        switch (op.outcome) {
          case Outcome::kOk:
            if (present) {
              out.push_back(0);
            }
            break;
          case Outcome::kNotFound:
            // Either genuinely absent, or this logical delete's earlier
            // (internally retried) attempt removed the key and the final
            // attempt found it gone.
            if (!present) {
              out.push_back(state);
            } else {
              out.push_back(0);
            }
            break;
          case Outcome::kAmbiguous:
            out.push_back(state);  // never applied
            if (present) {
              out.push_back(0);    // applied server-side
            }
            break;
          default:
            out.push_back(state);
            break;
        }
        break;
    }
    return out;
  }

  const std::vector<Op>& ops_;
  std::set<StateKey> visited_;
};

}  // namespace

std::vector<Violation> CheckLinearizable(const History& history) {
  std::vector<Violation> out;
  for (const auto& [key, ops] : history.PerKey()) {
    if (ops.size() > 63) {
      out.push_back({key, "history too long to check (" + std::to_string(ops.size()) +
                              " ops > 63); shorten the workload per key"});
      continue;
    }
    // Fast pre-check: every successful get must observe a value some put of
    // this key wrote — anything else is a torn or fabricated read, and the
    // search below would only report it less directly.
    bool torn = false;
    for (const Op& g : ops) {
      if (g.type != OpType::kGet || g.outcome != Outcome::kOk) {
        continue;
      }
      bool written = false;
      for (const Op& p : ops) {
        if (p.type == OpType::kPut && p.value == g.value) {
          written = true;
          break;
        }
      }
      if (!written) {
        out.push_back({key, "read observed a value no put wrote: " + g.ToString()});
        torn = true;
      }
    }
    if (torn) {
      continue;
    }
    KeyChecker checker(ops);
    if (!checker.Check()) {
      std::ostringstream os;
      os << "no linearization of " << ops.size() << " ops:";
      for (const Op& op : ops) {
        os << "\n    " << op.ToString();
      }
      out.push_back({key, os.str()});
    }
  }
  return out;
}

std::string FormatViolations(const std::vector<Violation>& violations) {
  std::ostringstream os;
  for (const Violation& v : violations) {
    os << "key '" << v.key << "': " << v.reason << "\n";
  }
  return os.str();
}

}  // namespace cheetah::chaos
