#include "src/chaos/nemesis.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <utility>
#include <vector>

#include "src/common/random.h"

namespace cheetah::chaos {

namespace {

std::string Secs(Nanos t) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << static_cast<double>(t) / 1e9 << "s";
  return os.str();
}

}  // namespace

void NemesisSchedule::Install(core::Testbed& bed) const {
  const Nanos base = bed.loop().Now();
  for (const NemesisEvent& e : events_) {
    bed.loop().ScheduleAt(base + e.at, [&bed, action = e.action]() { action(bed); });
  }
}

std::string NemesisSchedule::ToString() const {
  std::ostringstream os;
  for (const NemesisEvent& e : events_) {
    os << "  +" << Secs(e.at) << " " << e.describe << "\n";
  }
  return os.str();
}

NemesisSchedule MetaCrashRestartLoop(uint64_t seed, int meta_count, Nanos span,
                                     bool power_fail) {
  Rng rng(seed ^ 0xc7a5ull);
  NemesisSchedule s;
  Nanos t = span / 8 + rng.Uniform(span / 8);
  while (true) {
    const int victim = static_cast<int>(rng.Uniform(static_cast<uint64_t>(meta_count)));
    const Nanos down = Millis(700) + rng.Uniform(Millis(300));
    if (t + down + Millis(500) > (span * 3) / 4) {
      break;
    }
    s.Add(t, std::string(power_fail ? "power-fail" : "crash") + " meta[" +
                 std::to_string(victim) + "]",
          [victim, power_fail](core::Testbed& bed) {
            bed.Crash(bed.meta_node(victim), power_fail);
          });
    s.Add(t + down, "restart meta[" + std::to_string(victim) + "]",
          [victim](core::Testbed& bed) { bed.Restart(bed.meta_node(victim)); });
    t += down + Millis(600) + rng.Uniform(Millis(400));
  }
  return s;
}

NemesisSchedule MetaPowerFailViewChange(uint64_t seed, int meta_count, Nanos span) {
  Rng rng(seed ^ 0xbadf00dull);
  NemesisSchedule s;
  const int victim = static_cast<int>(rng.Uniform(static_cast<uint64_t>(meta_count)));
  // Land the power failure in the thick of the workload so some put is
  // inside its data-written-but-not-yet-persisted window; keep it down past
  // the failure detector (450ms) so a view change runs without it.
  const Nanos hit = span / 4 + rng.Uniform(span / 4);
  s.Add(hit, "power-fail meta[" + std::to_string(victim) + "]",
        [victim](core::Testbed& bed) { bed.Crash(bed.meta_node(victim), true); });
  s.Add(hit + Millis(1200), "restart meta[" + std::to_string(victim) + "]",
        [victim](core::Testbed& bed) { bed.Restart(bed.meta_node(victim)); });
  return s;
}

NemesisSchedule PartitionHealMeta(uint64_t seed, int meta_count, Nanos span) {
  Rng rng(seed ^ 0x9a27ull);
  NemesisSchedule s;
  const int victim = static_cast<int>(rng.Uniform(static_cast<uint64_t>(meta_count)));
  const Nanos hit = span / 5 + rng.Uniform(span / 5);
  const Nanos held = Millis(800) + rng.Uniform(Millis(400));
  s.Add(hit, "isolate meta[" + std::to_string(victim) + "]",
        [victim](core::Testbed& bed) { bed.Isolate(bed.meta_node(victim)); });
  s.Add(hit + held, "heal all partitions",
        [](core::Testbed& bed) { bed.Heal(); });
  return s;
}

NemesisSchedule GrayDataDisk(uint64_t seed, int data_count, Nanos span) {
  Rng rng(seed ^ 0x6a4ull);
  NemesisSchedule s;
  const int victim = static_cast<int>(rng.Uniform(static_cast<uint64_t>(data_count)));
  const double mult = 4.0 + static_cast<double>(rng.Uniform(8));
  const Nanos stuck = Millis(40) + rng.Uniform(Millis(80));
  const Nanos hit = span / 6 + rng.Uniform(span / 4);
  const Nanos held = Millis(900) + rng.Uniform(Millis(600));
  std::ostringstream d;
  d << "gray data[" << victim << "] x" << mult << " fsync-stuck " << Secs(stuck);
  s.Add(hit, d.str(), [victim, mult, stuck](core::Testbed& bed) {
    sim::GrayFailure g;
    g.latency_multiplier = mult;
    g.fsync_stuck_for = stuck;
    bed.data_machine(victim).SetGrayFailure(g);
  });
  s.Add(hit + held, "restore data[" + std::to_string(victim) + "]",
        [victim](core::Testbed& bed) { bed.data_machine(victim).ClearGrayFailure(); });
  return s;
}

NemesisSchedule NetChaos(uint64_t seed, Nanos span) {
  Rng rng(seed ^ 0x2e7ull);
  NemesisSchedule s;
  sim::LinkFaults f;
  f.drop_prob = 0.005 + 0.005 * static_cast<double>(rng.Uniform(4));
  f.dup_prob = 0.01 + 0.005 * static_cast<double>(rng.Uniform(4));
  f.delay_prob = 0.02 + 0.01 * static_cast<double>(rng.Uniform(4));
  f.max_extra_delay = Millis(1) + rng.Uniform(Millis(3));
  const Nanos hit = span / 8 + rng.Uniform(span / 8);
  const Nanos held = span / 2;
  std::ostringstream d;
  d << "lossy net drop=" << f.drop_prob << " dup=" << f.dup_prob
    << " delay=" << f.delay_prob << " max_extra=" << Secs(f.max_extra_delay);
  s.Add(hit, d.str(), [f](core::Testbed& bed) { bed.network().SetDefaultLinkFaults(f); });
  s.Add(hit + held, "clear link faults",
        [](core::Testbed& bed) { bed.network().ClearLinkFaults(); });
  return s;
}

NemesisSchedule BitRot(uint64_t seed, int data_count, Nanos span) {
  Rng rng(seed ^ 0xb17207ull);
  NemesisSchedule s;
  // Waves of at-rest damage spread over the middle of the run, each hitting
  // one machine's disks. The last wave lands by 3/4 span so the scrubber has
  // the rest of the window to find and repair everything before the audit.
  const int waves = 2 + static_cast<int>(rng.Uniform(3));
  for (int w = 0; w < waves; ++w) {
    const int victim = static_cast<int>(rng.Uniform(static_cast<uint64_t>(data_count)));
    const double rot_prob = 0.05 + 0.05 * static_cast<double>(rng.Uniform(4));
    const double lse_prob = 0.02 + 0.02 * static_cast<double>(rng.Uniform(3));
    const uint64_t wave_seed = rng.Next();
    const Nanos hit = span / 6 + (w * span) / (2 * waves) + rng.Uniform(span / 12);
    std::ostringstream d;
    d << "bit-rot data[" << victim << "] rot=" << rot_prob << " lse=" << lse_prob
      << " wave_seed=" << wave_seed;
    s.Add(hit, d.str(), [victim, rot_prob, lse_prob, wave_seed](core::Testbed& bed) {
      sim::Machine& m = bed.data_machine(victim);
      for (uint32_t di = 0; di < m.num_disks(); ++di) {
        m.disk(di).InjectBitRot(rot_prob, wave_seed ^ di);
        m.disk(di).InjectLatentSectorErrors(lse_prob, wave_seed ^ di);
      }
    });
  }
  return s;
}

NemesisSchedule IntegrityChaos(uint64_t seed, int data_count, Nanos span) {
  // Independent sub-seeds, same idiom as Combined().
  NemesisSchedule out = BitRot(seed * 3 + 1, data_count, span);
  Rng rng(seed ^ 0xfee1badull);
  const int victim = static_cast<int>(rng.Uniform(static_cast<uint64_t>(data_count)));
  const double corrupt = 0.1 + 0.1 * static_cast<double>(rng.Uniform(3));
  const Nanos hit = span / 5 + rng.Uniform(span / 5);
  const Nanos held = span / 4;
  std::ostringstream d;
  d << "gray-corrupt data[" << victim << "] write_corrupt=" << corrupt;
  out.Add(hit, d.str(), [victim, corrupt](core::Testbed& bed) {
    sim::GrayFailure g;
    g.write_corrupt_prob = corrupt;
    bed.data_machine(victim).SetGrayFailure(g);
  });
  out.Add(hit + held, "restore data[" + std::to_string(victim) + "]",
          [victim](core::Testbed& bed) { bed.data_machine(victim).ClearGrayFailure(); });
  return out;
}

NemesisSchedule EcChunkChaos(uint64_t seed, int data_count, Nanos span) {
  Rng rng(seed ^ 0xecc0deull);
  NemesisSchedule out;
  // Helper: draw a machine index outside the already-claimed fault domains
  // (falls back to overlapping when the cluster is too narrow to separate).
  auto pick_outside = [&rng, data_count](std::vector<int> taken) {
    std::vector<int> candidates;
    for (int i = 0; i < data_count; ++i) {
      if (std::find(taken.begin(), taken.end(), i) == taken.end()) {
        candidates.push_back(i);
      }
    }
    if (candidates.empty()) {
      return static_cast<int>(rng.Uniform(static_cast<uint64_t>(data_count)));
    }
    return candidates[rng.Uniform(candidates.size())];
  };
  // At-rest rot stays pinned to ONE machine for the whole run. Stripe carving
  // places every chunk of an RS(k,m) LV on a distinct server, so one rotted
  // domain damages at most one chunk per stripe — always reconstructible.
  // Waves on independent machines could rot two chunks of the same stripe,
  // which is real data loss for m=1, not a repair bug.
  const int rotted = static_cast<int>(rng.Uniform(static_cast<uint64_t>(data_count)));
  const int waves = 2 + static_cast<int>(rng.Uniform(3));
  for (int w = 0; w < waves; ++w) {
    const double rot_prob = 0.05 + 0.05 * static_cast<double>(rng.Uniform(4));
    const double lse_prob = 0.02 + 0.02 * static_cast<double>(rng.Uniform(3));
    const uint64_t wave_seed = rng.Next();
    const Nanos hit = span / 6 + (w * span) / (2 * waves) + rng.Uniform(span / 12);
    std::ostringstream d;
    d << "bit-rot data[" << rotted << "] rot=" << rot_prob << " lse=" << lse_prob
      << " wave_seed=" << wave_seed;
    out.Add(hit, d.str(), [rotted, rot_prob, lse_prob, wave_seed](core::Testbed& bed) {
      sim::Machine& m = bed.data_machine(rotted);
      for (uint32_t di = 0; di < m.num_disks(); ++di) {
        m.disk(di).InjectBitRot(rot_prob, wave_seed ^ di);
        m.disk(di).InjectLatentSectorErrors(lse_prob, wave_seed ^ di);
      }
    });
  }
  // Whole-machine chunk loss: crash a second domain. Chunks there are only
  // unavailable, not damaged — they come back intact on restart.
  const int crashed = pick_outside({rotted});
  const Nanos hit = span / 5 + rng.Uniform(span / 5);
  const Nanos down = Millis(800) + rng.Uniform(Millis(500));
  out.Add(hit, "crash data[" + std::to_string(crashed) + "]",
          [crashed](core::Testbed& bed) { bed.CrashDataMachine(crashed, false); });
  out.Add(hit + down, "restart data[" + std::to_string(crashed) + "]",
          [crashed](core::Testbed& bed) { bed.RestartDataMachine(crashed); });
  // Gray-corrupt a third domain: acked writes land flipped on media. The
  // demotion read-back audit must catch these before a stripe goes live.
  const int corrupter = pick_outside({rotted, crashed});
  const double corrupt = 0.1 + 0.1 * static_cast<double>(rng.Uniform(3));
  const Nanos ghit = span / 4 + rng.Uniform(span / 5);
  const Nanos held = span / 5;
  std::ostringstream d;
  d << "gray-corrupt data[" << corrupter << "] write_corrupt=" << corrupt;
  out.Add(ghit, d.str(), [corrupter, corrupt](core::Testbed& bed) {
    sim::GrayFailure g;
    g.write_corrupt_prob = corrupt;
    bed.data_machine(corrupter).SetGrayFailure(g);
  });
  out.Add(ghit + held, "restore data[" + std::to_string(corrupter) + "]",
          [corrupter](core::Testbed& bed) {
            bed.data_machine(corrupter).ClearGrayFailure();
          });
  return out;
}

NemesisSchedule MigrationChaos(uint64_t seed, int meta_count, Nanos span,
                               MigrationFault fault) {
  Rng rng(seed ^ 0xd2a10ull);
  NemesisSchedule s;
  const int victim = static_cast<int>(rng.Uniform(static_cast<uint64_t>(meta_count)));
  const Nanos start = span / 6 + rng.Uniform(span / 6);
  s.Add(start, "begin drain meta[" + std::to_string(victim) + "]",
        [victim](core::Testbed& bed) { (void)bed.BeginDrainMetaMachine(victim); });
  // The fault lands a beat after the drain starts, inside the
  // DoubleWrite/Catchup/Cutover window (phases are tens of ms apart, so the
  // seed decides exactly which leg takes the hit).
  const Nanos hit = start + Millis(20) + rng.Uniform(Millis(100));
  switch (fault) {
    case MigrationFault::kCrashSource: {
      const Nanos down = Millis(800) + rng.Uniform(Millis(400));
      s.Add(hit, "crash drain source meta[" + std::to_string(victim) + "]",
            [victim](core::Testbed& bed) {
              bed.Crash(bed.meta_node(victim), /*power_loss=*/false);
            });
      s.Add(hit + down, "restart meta[" + std::to_string(victim) + "]",
            [victim](core::Testbed& bed) { bed.Restart(bed.meta_node(victim)); });
      break;
    }
    case MigrationFault::kCrashDestination: {
      // The destination is CRUSH's choice at drain time, unknown when the
      // schedule is composed; the action reads it out of the replicated
      // migration state at fire time (still deterministic per run).
      const Nanos down = Millis(800) + rng.Uniform(Millis(400));
      s.Add(hit, "crash first catchup destination (from migration state)",
            [](core::Testbed& bed) {
              const int leader = bed.LeaderManager();
              if (leader < 0) {
                return;
              }
              for (const auto& [pg, mig] :
                   bed.manager(leader).topology().migrations) {
                if (mig.destination != sim::kInvalidNode) {
                  bed.Crash(mig.destination, /*power_loss=*/false);
                  return;
                }
              }
            });
      s.Add(hit + down, "restart any dead meta machine",
            [](core::Testbed& bed) {
              for (int i = 0; i < bed.num_meta(); ++i) {
                if (!bed.meta_machine(i).alive()) {
                  bed.RestartMetaMachine(i);
                }
              }
            });
      break;
    }
    case MigrationFault::kPartitionLeader: {
      const Nanos held = Millis(900) + rng.Uniform(Millis(500));
      s.Add(hit, "isolate manager leader (cutover window)",
            [](core::Testbed& bed) {
              const int leader = bed.LeaderManager();
              if (leader >= 0) {
                bed.Isolate(bed.manager_node(leader));
              }
            });
      s.Add(hit + held, "heal all partitions",
            [](core::Testbed& bed) { bed.Heal(); });
      break;
    }
  }
  // Re-issue the drain late in the window: a drain aborted by the fault above
  // is retried and must complete; a drain that already cut over answers
  // NotFound (the node is gone from the CRUSH map) and this is a no-op.
  s.Add((span * 3) / 5, "re-issue drain meta[" + std::to_string(victim) + "]",
        [victim](core::Testbed& bed) { (void)bed.BeginDrainMetaMachine(victim); });
  return s;
}

std::vector<NemesisSchedule> MigrationSchedules(uint64_t seed, int meta_count,
                                                Nanos span) {
  std::vector<NemesisSchedule> out;
  out.push_back(MigrationChaos(seed, meta_count, span, MigrationFault::kCrashSource));
  out.push_back(
      MigrationChaos(seed, meta_count, span, MigrationFault::kCrashDestination));
  out.push_back(
      MigrationChaos(seed, meta_count, span, MigrationFault::kPartitionLeader));
  return out;
}

NemesisSchedule Combined(uint64_t seed, int meta_count, int data_count, Nanos span) {
  // Independent sub-seeds so each ingredient draws its own fault sequence.
  NemesisSchedule out = NetChaos(seed * 3 + 1, span);
  out.Append(MetaCrashRestartLoop(seed * 3 + 2, meta_count, span,
                                  /*power_fail=*/(seed % 2) == 0));
  out.Append(GrayDataDisk(seed * 3 + 3, data_count, span));
  return out;
}

std::vector<NemesisSchedule> StandardSchedules(uint64_t seed, int meta_count,
                                               int data_count, Nanos span) {
  std::vector<NemesisSchedule> out;
  out.push_back(MetaCrashRestartLoop(seed, meta_count, span, /*power_fail=*/true));
  out.push_back(MetaPowerFailViewChange(seed, meta_count, span));
  out.push_back(PartitionHealMeta(seed, meta_count, span));
  out.push_back(GrayDataDisk(seed, data_count, span));
  out.push_back(NetChaos(seed, span));
  out.push_back(Combined(seed, meta_count, data_count, span));
  return out;
}

}  // namespace cheetah::chaos
