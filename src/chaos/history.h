// Client-observed operation history and a per-key linearizability checker.
//
// The recorder logs every client invocation/response with virtual timestamps;
// the checker then verifies each key's history against Cheetah's object
// semantics: objects are immutable create-once registers (a put to a visible
// name returns AlreadyExists), deletes remove them, gets observe them.
//
// Checking is a Wing&Gong-style search: find a total order of the operations,
// consistent with real-time precedence (an op that returned before another
// was invoked must be ordered first), under which every response is legal.
// Histories are per-key and short (tests keep them under ~60 ops), so the
// exponential worst case never bites; memoization on (linearized-set, state)
// keeps typical runs linear.
//
// Ambiguity rules (what makes checking storage systems subtle):
//  * An op whose response was a timeout/failure is AMBIGUOUS: the server may
//    have applied it — possibly long after the client gave up (the cleaner
//    completes orphaned puts, §5.3) — or never seen it. Such an op may take
//    effect at any point from its invocation to the end of the history, or
//    not at all (except ambiguous puts, whose effect can also be revoked;
//    modeling revocation as "no effect" is equivalent for the checker).
//  * delete -> NotFound is dual: either the key was genuinely absent, or the
//    delete raced its own earlier ambiguous attempt (we model it as "key was
//    absent at its linearization point", which covers both).
//  * put -> AlreadyExists / ResourceExhausted are definite no-effect ops.
#ifndef SRC_CHAOS_HISTORY_H_
#define SRC_CHAOS_HISTORY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace cheetah::chaos {

enum class OpType { kPut, kGet, kDelete };

enum class Outcome {
  kOk,         // definite success
  kNotFound,   // definite "key absent" observation (get/delete)
  kNoEffect,   // definite failure with no state change (AlreadyExists, ...)
  kAmbiguous,  // timeout / unavailable: may or may not have taken effect
};

struct Op {
  uint64_t id = 0;          // unique per history, assigned by Invoke
  int client = 0;           // worker index (diagnostics only)
  OpType type = OpType::kGet;
  std::string key;
  std::string value;        // put: written value; get: observed value
  Outcome outcome = Outcome::kAmbiguous;
  Nanos invoke = 0;
  Nanos ret = 0;            // response time; ambiguous ops extend to +inf
  bool done = false;        // Return() recorded

  // Effective return for real-time ordering: an ambiguous op may take effect
  // any time after its invocation.
  Nanos EffectiveRet() const {
    return outcome == Outcome::kAmbiguous ? kNeverReturned : ret;
  }
  static constexpr Nanos kNeverReturned = ~0ull;

  std::string ToString() const;
};

// Append-only recorder. Single-threaded (the simulator is), so no locking;
// ops are recorded in invocation order which is also virtual-time order.
class History {
 public:
  // Returns the op id. value is the payload being written (puts) only.
  uint64_t Invoke(int client, OpType type, const std::string& key,
                  const std::string& value, Nanos now);
  // observed: get's returned payload (empty otherwise).
  void Return(uint64_t id, Outcome outcome, const std::string& observed, Nanos now);

  const std::vector<Op>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }

  // Ops grouped per key, in invocation order. Undone ops (client crashed or
  // never got a response before the test ended) become ambiguous.
  std::map<std::string, std::vector<Op>> PerKey() const;

  // Byte-exact serialization; two runs of the same seed+schedule must match.
  std::string Serialize() const;

 private:
  std::vector<Op> ops_;
  uint64_t next_id_ = 1;
};

struct Violation {
  std::string key;
  std::string reason;  // human-readable explanation with the offending ops
};

// Checks every key's sub-history for linearizability under create-once
// register semantics. Returns all violations (empty = linearizable).
std::vector<Violation> CheckLinearizable(const History& history);

std::string FormatViolations(const std::vector<Violation>& violations);

}  // namespace cheetah::chaos

#endif  // SRC_CHAOS_HISTORY_H_
