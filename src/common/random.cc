#include "src/common/random.h"

#include <cmath>

namespace cheetah {

double Rng::Exponential(double mean) {
  double u = NextDouble();
  if (u <= 0.0) {
    u = 1e-18;
  }
  return -mean * std::log(u);
}

uint64_t Rng::Zipf(uint64_t n, double theta) {
  // Rejection-free inverse-CDF approximation (Gray et al., as used by YCSB).
  const double zetan = [&] {
    double z = 0;
    for (uint64_t i = 1; i <= n; ++i) {
      z += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return z;
  }();
  const double alpha = 1.0 / (1.0 - theta);
  const double zeta2 = 1.0 + std::pow(0.5, theta);
  const double eta = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
                     (1.0 - zeta2 / zetan);
  const double u = NextDouble();
  const double uz = u * zetan;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta)) {
    return 1;
  }
  return static_cast<uint64_t>(static_cast<double>(n) *
                               std::pow(eta * u - eta + 1.0, alpha));
}

}  // namespace cheetah
