// InlineFn: a move-only callable wrapper with small-buffer optimization.
//
// The simulator schedules tens of millions of callbacks per run; wrapping
// each one in std::function costs a heap allocation whenever the capture
// exceeds libstdc++'s 16-byte inline buffer (almost always — a typical
// resume captures an actor pointer, a coroutine handle, an epoch, and an op
// context). InlineFn stores captures up to 48 bytes directly in the object,
// falling back to the heap only for oversized or throwing-move captures, and
// is move-only so storing move-only types (arena handles, coroutine frames)
// needs no shared_ptr laundering. `heap_allocated()` lets the event loop
// count inline-vs-heap scheduling so regressions show up in obs output.
#ifndef SRC_COMMON_INLINE_FN_H_
#define SRC_COMMON_INLINE_FN_H_

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cheetah {

template <typename Sig>
class InlineFn;

template <typename R, typename... Args>
class InlineFn<R(Args...)> {
 public:
  static constexpr size_t kInlineBytes = 48;
  static constexpr size_t kAlign = alignof(std::max_align_t);

  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFn> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= kAlign &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &kInlineVt<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &kHeapVt<Fn>;
    }
  }

  InlineFn(InlineFn&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) {
      vt_->relocate(other.buf_, buf_);
      other.vt_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      Reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(other.buf_, buf_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { Reset(); }

  explicit operator bool() const { return vt_ != nullptr; }
  bool heap_allocated() const { return vt_ != nullptr && vt_->heap; }

  R operator()(Args... args) {
    assert(vt_ != nullptr && "calling an empty InlineFn");
    return vt_->call(buf_, std::forward<Args>(args)...);
  }

 private:
  struct VTable {
    R (*call)(void*, Args&&...);
    void (*relocate)(void* src, void* dst) noexcept;  // move into dst, destroy src
    void (*destroy)(void*) noexcept;
    bool heap;
  };

  template <typename Fn>
  static Fn* Inline(void* b) {
    return std::launder(reinterpret_cast<Fn*>(b));
  }
  template <typename Fn>
  static Fn* Heap(void* b) {
    return *std::launder(reinterpret_cast<Fn**>(b));
  }

  template <typename Fn>
  static R CallInline(void* b, Args&&... args) {
    return (*Inline<Fn>(b))(std::forward<Args>(args)...);
  }
  template <typename Fn>
  static void RelocateInline(void* src, void* dst) noexcept {
    Fn* s = Inline<Fn>(src);
    ::new (dst) Fn(std::move(*s));
    s->~Fn();
  }
  template <typename Fn>
  static void DestroyInline(void* b) noexcept {
    Inline<Fn>(b)->~Fn();
  }

  template <typename Fn>
  static R CallHeap(void* b, Args&&... args) {
    return (*Heap<Fn>(b))(std::forward<Args>(args)...);
  }
  template <typename Fn>
  static void RelocateHeap(void* src, void* dst) noexcept {
    ::new (dst) Fn*(Heap<Fn>(src));
  }
  template <typename Fn>
  static void DestroyHeap(void* b) noexcept {
    delete Heap<Fn>(b);
  }

  template <typename Fn>
  static constexpr VTable kInlineVt{&CallInline<Fn>, &RelocateInline<Fn>,
                                    &DestroyInline<Fn>, /*heap=*/false};
  template <typename Fn>
  static constexpr VTable kHeapVt{&CallHeap<Fn>, &RelocateHeap<Fn>, &DestroyHeap<Fn>,
                                  /*heap=*/true};

  void Reset() {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(kAlign) unsigned char buf_[kInlineBytes];
};

}  // namespace cheetah

#endif  // SRC_COMMON_INLINE_FN_H_
