// Hash functions used across the system.
//
//  - Rjenkins1: the Robert Jenkins mix used by CRUSH; stable across runs and
//    platforms so placement is reproducible.
//  - Fnv1a64 / XxLike64: general-purpose 64-bit hashes for object names.
#ifndef SRC_COMMON_HASH_H_
#define SRC_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace cheetah {

// CRUSH's rjenkins1 32-bit hash over up to five 32-bit inputs.
uint32_t CrushHash32(uint32_t a);
uint32_t CrushHash32_2(uint32_t a, uint32_t b);
uint32_t CrushHash32_3(uint32_t a, uint32_t b, uint32_t c);
uint32_t CrushHash32_4(uint32_t a, uint32_t b, uint32_t c, uint32_t d);

// 64-bit FNV-1a over bytes; used for name -> PG hashing.
uint64_t Fnv1a64(std::string_view data);

// A fast 64-bit avalanche mix (splitmix64 finalizer).
uint64_t Mix64(uint64_t x);

// xxhash-style single-word avalanche (XXH3's rrmxmx-derived finalizer):
// multiply-rotate-xor with the xxhash prime constants. Used to key the flat
// hash tables on the simulator hot path (link faults, pending RPC calls),
// where the default identity hash of libstdc++ would cluster sequential ids.
inline uint64_t Xx64(uint64_t x) {
  x ^= x >> 33;
  x *= 0x9e3779b185ebca87ULL;  // XXH_PRIME64_1
  x ^= x >> 29;
  x *= 0xc2b2ae3d27d4eb4fULL;  // XXH_PRIME64_2
  x ^= x >> 32;
  return x;
}

// Hasher functor for 64-bit keys in unordered containers.
struct XxU64Hash {
  size_t operator()(uint64_t x) const { return static_cast<size_t>(Xx64(x)); }
};

}  // namespace cheetah

#endif  // SRC_COMMON_HASH_H_
