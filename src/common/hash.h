// Hash functions used across the system.
//
//  - Rjenkins1: the Robert Jenkins mix used by CRUSH; stable across runs and
//    platforms so placement is reproducible.
//  - Fnv1a64 / XxLike64: general-purpose 64-bit hashes for object names.
#ifndef SRC_COMMON_HASH_H_
#define SRC_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace cheetah {

// CRUSH's rjenkins1 32-bit hash over up to five 32-bit inputs.
uint32_t CrushHash32(uint32_t a);
uint32_t CrushHash32_2(uint32_t a, uint32_t b);
uint32_t CrushHash32_3(uint32_t a, uint32_t b, uint32_t c);
uint32_t CrushHash32_4(uint32_t a, uint32_t b, uint32_t c, uint32_t d);

// 64-bit FNV-1a over bytes; used for name -> PG hashing.
uint64_t Fnv1a64(std::string_view data);

// A fast 64-bit avalanche mix (splitmix64 finalizer).
uint64_t Mix64(uint64_t x);

}  // namespace cheetah

#endif  // SRC_COMMON_HASH_H_
