// Virtual-time and size units. All simulator time is in nanoseconds carried in
// a uint64_t; these helpers keep call sites readable.
#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <cstdint>

namespace cheetah {

using Nanos = uint64_t;

constexpr Nanos kMicrosecond = 1000ull;
constexpr Nanos kMillisecond = 1000ull * kMicrosecond;
constexpr Nanos kSecond = 1000ull * kMillisecond;

constexpr Nanos Micros(uint64_t n) { return n * kMicrosecond; }
constexpr Nanos Millis(uint64_t n) { return n * kMillisecond; }
constexpr Nanos Seconds(uint64_t n) { return n * kSecond; }

constexpr double ToMillisF(Nanos t) { return static_cast<double>(t) / 1e6; }
constexpr double ToMicrosF(Nanos t) { return static_cast<double>(t) / 1e3; }
constexpr double ToSecondsF(Nanos t) { return static_cast<double>(t) / 1e9; }

constexpr uint64_t KiB(uint64_t n) { return n * 1024ull; }
constexpr uint64_t MiB(uint64_t n) { return n * 1024ull * 1024ull; }
constexpr uint64_t GiB(uint64_t n) { return n * 1024ull * 1024ull * 1024ull; }

}  // namespace cheetah

#endif  // SRC_COMMON_UNITS_H_
