// Deterministic PRNG (xoshiro256**). All randomness in the simulator and the
// workload generators flows through explicitly-seeded instances of this class
// so that every experiment is reproducible bit-for-bit.
#ifndef SRC_COMMON_RANDOM_H_
#define SRC_COMMON_RANDOM_H_

#include <array>
#include <cstdint>

#include "src/common/hash.h"

namespace cheetah {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      x = Mix64(x);
      s = x;
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Uniform integer in [lo, hi].
  uint64_t UniformRange(uint64_t lo, uint64_t hi) { return lo + Uniform(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / (1ull << 53)); }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Exponential with the given mean (used for request inter-arrival jitter).
  double Exponential(double mean);

  // Zipfian in [0, n) with skew theta (used by YCSB-style key popularity).
  uint64_t Zipf(uint64_t n, double theta);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<uint64_t, 4> state_;
};

}  // namespace cheetah

#endif  // SRC_COMMON_RANDOM_H_
