// Lightweight error-handling primitives used across the code base.
//
// Status carries an error code plus a human-readable message; Result<T> is a
// Status-or-value union. Both are modeled on absl::Status / absl::StatusOr but
// kept dependency-free.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace cheetah {

enum class ErrorCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kCorruption,
  kIoError,
  kTimeout,
  kUnavailable,       // server dead / partitioned / lease expired
  kStaleView,         // request's view number does not match the server's
  kAborted,           // request revoked by recovery
  kResourceExhausted, // out of space
  kOverloaded,        // admission control pushback; retry after a delay
  kInternal,
};

// Returns a stable, human-readable name for an error code.
std::string_view ErrorCodeName(ErrorCode code);

class [[nodiscard]] Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = "") { return {ErrorCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m = "") {
    return {ErrorCode::kAlreadyExists, std::move(m)};
  }
  static Status InvalidArgument(std::string m = "") {
    return {ErrorCode::kInvalidArgument, std::move(m)};
  }
  static Status Corruption(std::string m = "") { return {ErrorCode::kCorruption, std::move(m)}; }
  static Status IoError(std::string m = "") { return {ErrorCode::kIoError, std::move(m)}; }
  static Status Timeout(std::string m = "") { return {ErrorCode::kTimeout, std::move(m)}; }
  static Status Unavailable(std::string m = "") { return {ErrorCode::kUnavailable, std::move(m)}; }
  static Status StaleView(std::string m = "") { return {ErrorCode::kStaleView, std::move(m)}; }
  static Status Aborted(std::string m = "") { return {ErrorCode::kAborted, std::move(m)}; }
  static Status ResourceExhausted(std::string m = "") {
    return {ErrorCode::kResourceExhausted, std::move(m)};
  }
  static Status Overloaded(std::string m = "") { return {ErrorCode::kOverloaded, std::move(m)}; }
  static Status Internal(std::string m = "") { return {ErrorCode::kInternal, std::move(m)}; }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == ErrorCode::kNotFound; }
  bool IsTimeout() const { return code_ == ErrorCode::kTimeout; }
  bool IsStaleView() const { return code_ == ErrorCode::kStaleView; }
  bool IsUnavailable() const { return code_ == ErrorCode::kUnavailable; }
  bool IsOverloaded() const { return code_ == ErrorCode::kOverloaded; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit conversions keep call sites terse: `return Status::NotFound();`
  // or `return value;` both work inside functions returning Result<T>.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status out of the enclosing function.
#define RETURN_IF_ERROR(expr)          \
  do {                                 \
    ::cheetah::Status _s = (expr);     \
    if (!_s.ok()) {                    \
      return _s;                       \
    }                                  \
  } while (0)

// Coroutine-friendly variant (enclosing function must co_return).
#define CO_RETURN_IF_ERROR(expr)       \
  do {                                 \
    ::cheetah::Status _s = (expr);     \
    if (!_s.ok()) {                    \
      co_return _s;                    \
    }                                  \
  } while (0)

}  // namespace cheetah

#endif  // SRC_COMMON_STATUS_H_
