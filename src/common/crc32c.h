// CRC-32C (Castagnoli) — the checksum used for object data and MetaX records.
#ifndef SRC_COMMON_CRC32C_H_
#define SRC_COMMON_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace cheetah {

// Extends `crc` with `data`. Pass 0 to start a fresh checksum. Dispatches to
// the SSE4.2 crc32 instruction when available; bit-identical to the portable
// path either way.
uint32_t Crc32cExtend(uint32_t crc, std::string_view data);

// Portable slice-by-8 implementation, exposed so tests can assert the
// hardware and software paths agree.
uint32_t Crc32cExtendPortable(uint32_t crc, std::string_view data);

inline uint32_t Crc32c(std::string_view data) { return Crc32cExtend(0, data); }

}  // namespace cheetah

#endif  // SRC_COMMON_CRC32C_H_
