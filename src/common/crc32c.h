// CRC-32C (Castagnoli) — the checksum used for object data and MetaX records.
#ifndef SRC_COMMON_CRC32C_H_
#define SRC_COMMON_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace cheetah {

// Extends `crc` with `data`. Pass 0 to start a fresh checksum.
uint32_t Crc32cExtend(uint32_t crc, std::string_view data);

inline uint32_t Crc32c(std::string_view data) { return Crc32cExtend(0, data); }

}  // namespace cheetah

#endif  // SRC_COMMON_CRC32C_H_
