// Arena: a bump-pointer allocator with size-class recycling for the
// simulator's transient objects (event captures, RPC envelopes, delivery
// records).
//
// Allocation bumps a pointer inside a large chunk; freeing pushes the block
// onto a per-size-class free list that subsequent allocations of the same
// class pop in O(1). Memory is therefore bounded by the peak number of
// objects live at once, not by the total allocated over the run, while the
// common alloc/free pair costs a handful of instructions and never touches
// malloc. Reset() — legal only at quiescent points, when nothing is live —
// rewinds the bump pointer and drops the free lists so long runs reconverge
// to densely packed chunks.
//
// Single-threaded, like everything else in the simulator. Blocks larger than
// kMaxPooled bytes pass through to operator new (counted, so oversized hot
// paths are visible in stats).
#ifndef SRC_COMMON_ARENA_H_
#define SRC_COMMON_ARENA_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace cheetah {

class Arena {
 public:
  static constexpr size_t kGranule = 16;
  static constexpr size_t kMaxPooled = 1024;

  explicit Arena(size_t chunk_bytes = 256 * 1024) : chunk_bytes_(chunk_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* Alloc(size_t size) {
    ++allocs_;
    ++live_;
    if (size > kMaxPooled) {
      ++oversized_;
      return ::operator new(size);
    }
    const size_t cls = ClassOf(size);
    if (FreeNode* node = free_[cls]) {
      free_[cls] = node->next;
      return node;
    }
    const size_t bytes = (cls + 1) * kGranule;
    if (chunks_.empty() || cur_off_ + bytes > chunk_bytes_) {
      NewChunk();
    }
    void* p = chunks_.back().get() + cur_off_;
    cur_off_ += bytes;
    return p;
  }

  void Free(void* p, size_t size) {
    assert(live_ > 0);
    --live_;
    if (size > kMaxPooled) {
      ::operator delete(p);
      return;
    }
    auto* node = static_cast<FreeNode*>(p);
    const size_t cls = ClassOf(size);
    node->next = free_[cls];
    free_[cls] = node;
  }

  template <typename T, typename... A>
  T* New(A&&... args) {
    static_assert(alignof(T) <= kGranule, "over-aligned type in arena");
    return ::new (Alloc(sizeof(T))) T(std::forward<A>(args)...);
  }

  template <typename T>
  void Delete(T* p) {
    p->~T();
    Free(p, sizeof(T));
  }

  // Rewinds the bump pointer and clears the free lists. Only legal when
  // nothing is live; chunks are kept so steady-state runs stop allocating.
  void Reset() {
    assert(live_ == 0 && "arena reset with live allocations");
    for (auto& head : free_) {
      head = nullptr;
    }
    cur_off_ = 0;
    if (chunks_.size() > 1) {
      chunks_.resize(1);
    }
    ++resets_;
  }

  size_t live() const { return live_; }
  uint64_t allocs() const { return allocs_; }
  uint64_t oversized_allocs() const { return oversized_; }
  uint64_t resets() const { return resets_; }
  size_t bytes_reserved() const { return chunks_.size() * chunk_bytes_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  static_assert(sizeof(FreeNode) <= kGranule);

  static size_t ClassOf(size_t size) { return (size + kGranule - 1) / kGranule - (size > 0); }

  void NewChunk() {
    chunks_.push_back(std::make_unique<unsigned char[]>(chunk_bytes_));
    cur_off_ = 0;
  }

  size_t chunk_bytes_;
  std::vector<std::unique_ptr<unsigned char[]>> chunks_;
  size_t cur_off_ = 0;
  FreeNode* free_[kMaxPooled / kGranule] = {};
  size_t live_ = 0;
  uint64_t allocs_ = 0;
  uint64_t oversized_ = 0;
  uint64_t resets_ = 0;
};

// Owning handle to an arena-allocated object: destroys and recycles the slot
// on destruction. Move-only, two words — small enough to live inline in an
// InlineFn capture, which is how event callbacks carry arena objects without
// leaking them when an event loop is torn down with events still queued.
template <typename T>
class ArenaPtr {
 public:
  ArenaPtr() = default;
  ArenaPtr(Arena& arena, T* p) : arena_(&arena), p_(p) {}
  ArenaPtr(ArenaPtr&& o) noexcept
      : arena_(std::exchange(o.arena_, nullptr)), p_(std::exchange(o.p_, nullptr)) {}
  ArenaPtr& operator=(ArenaPtr&& o) noexcept {
    if (this != &o) {
      Reset();
      arena_ = std::exchange(o.arena_, nullptr);
      p_ = std::exchange(o.p_, nullptr);
    }
    return *this;
  }
  ArenaPtr(const ArenaPtr&) = delete;
  ArenaPtr& operator=(const ArenaPtr&) = delete;
  ~ArenaPtr() { Reset(); }

  T* get() const { return p_; }
  T* operator->() const { return p_; }
  T& operator*() const { return *p_; }
  explicit operator bool() const { return p_ != nullptr; }

 private:
  void Reset() {
    if (p_ != nullptr) {
      arena_->Delete(p_);
      p_ = nullptr;
    }
  }

  Arena* arena_ = nullptr;
  T* p_ = nullptr;
};

template <typename T, typename... A>
ArenaPtr<T> MakeArenaPtr(Arena& arena, A&&... args) {
  return ArenaPtr<T>(arena, arena.New<T>(std::forward<A>(args)...));
}

// Process-wide pool for allocations that are small, frequent, and paired with
// the simulated event that made them — coroutine frames, timed-wait state,
// QoS envelope boxes. Unlike per-loop arenas it is never Reset; steady state
// is pure free-list recycling with no malloc traffic.
inline Arena& GlobalPool() {
  static Arena pool(1 << 20);
  return pool;
}

// Out-of-line GlobalPool() entry points for coroutine frame pooling (see
// arena.cc for why these are not inline).
void* PoolAlloc(size_t size);
void PoolFree(void* p, size_t size) noexcept;

// Minimal std allocator over GlobalPool(), for allocate_shared and friends.
template <typename T>
struct PoolAllocator {
  using value_type = T;
  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) {}  // NOLINT(google-explicit-constructor)
  T* allocate(size_t n) { return static_cast<T*>(GlobalPool().Alloc(n * sizeof(T))); }
  void deallocate(T* p, size_t n) { GlobalPool().Free(p, n * sizeof(T)); }
  bool operator==(const PoolAllocator&) const { return true; }
};

}  // namespace cheetah

#endif  // SRC_COMMON_ARENA_H_
