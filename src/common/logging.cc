#include "src/common/logging.h"

namespace cheetah {
namespace {

LogLevel g_level = LogLevel::kOff;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() { std::cerr << stream_.str() << "\n"; }

}  // namespace internal
}  // namespace cheetah
