#include "src/common/status.h"

namespace cheetah {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kCorruption:
      return "CORRUPTION";
    case ErrorCode::kIoError:
      return "IO_ERROR";
    case ErrorCode::kTimeout:
      return "TIMEOUT";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kStaleView:
      return "STALE_VIEW";
    case ErrorCode::kAborted:
      return "ABORTED";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kOverloaded:
      return "OVERLOADED";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace cheetah
