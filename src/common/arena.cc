#include "src/common/arena.h"

namespace cheetah {

// Out of line deliberately: coroutine frame allocation routes through these
// so the compiler cannot trace the pointer back to the oversized path's
// ::operator new and mispair it with the promise's sized operator delete
// (-Wmismatched-new-delete false positive).
void* PoolAlloc(size_t size) { return GlobalPool().Alloc(size); }
void PoolFree(void* p, size_t size) noexcept { GlobalPool().Free(p, size); }

}  // namespace cheetah
