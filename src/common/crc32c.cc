#include "src/common/crc32c.h"

#include <array>

namespace cheetah {
namespace {

constexpr uint32_t kPoly = 0x82f63b78u;  // reflected CRC-32C polynomial

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, std::string_view data) {
  const auto& table = Table();
  crc = ~crc;
  for (unsigned char c : data) {
    crc = table[(crc ^ c) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace cheetah
