#include "src/common/crc32c.h"

#include <array>
#include <cstring>

namespace cheetah {
namespace {

constexpr uint32_t kPoly = 0x82f63b78u;  // reflected CRC-32C polynomial

// Slice-by-8 tables: table[0] is the classic byte-at-a-time table; table[j]
// advances a byte through j additional zero bytes, so eight table lookups
// consume eight input bytes per iteration with no loop-carried dependency
// between lookups.
std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    t[0][i] = crc;
  }
  for (int j = 1; j < 8; ++j) {
    for (uint32_t i = 0; i < 256; ++i) {
      t[j][i] = (t[j - 1][i] >> 8) ^ t[0][t[j - 1][i] & 0xff];
    }
  }
  return t;
}

const std::array<std::array<uint32_t, 256>, 8>& Tables() {
  static const auto tables = MakeTables();
  return tables;
}

// `crc` here and below is the raw (already-inverted) register value; the
// public entry point handles the ~ pre/post conditioning.
uint32_t ExtendSw(uint32_t crc, const unsigned char* p, size_t n) {
  const auto& t = Tables();
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    chunk ^= crc;
    crc = t[7][chunk & 0xff] ^ t[6][(chunk >> 8) & 0xff] ^ t[5][(chunk >> 16) & 0xff] ^
          t[4][(chunk >> 24) & 0xff] ^ t[3][(chunk >> 32) & 0xff] ^
          t[2][(chunk >> 40) & 0xff] ^ t[1][(chunk >> 48) & 0xff] ^ t[0][chunk >> 56];
    p += 8;
    n -= 8;
  }
  for (; n > 0; --n, ++p) {
    crc = t[0][(crc ^ *p) & 0xff] ^ (crc >> 8);
  }
  return crc;
}

#if defined(__x86_64__)
// SSE4.2 crc32 instruction implements exactly this polynomial (reflected
// CRC-32C), so the hardware and software paths are bit-identical — required,
// since checksums feed deterministic fingerprints.
__attribute__((target("sse4.2"))) uint32_t ExtendHw(uint32_t crc, const unsigned char* p,
                                                    size_t n) {
  uint64_t c = crc;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    c = __builtin_ia32_crc32di(c, chunk);
    p += 8;
    n -= 8;
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  for (; n > 0; --n, ++p) {
    c32 = __builtin_ia32_crc32qi(c32, *p);
  }
  return c32;
}

uint32_t (*PickExtend())(uint32_t, const unsigned char*, size_t) {
  if (__builtin_cpu_supports("sse4.2")) {
    return &ExtendHw;
  }
  Tables();  // force table construction before first use
  return &ExtendSw;
}
#else
uint32_t (*PickExtend())(uint32_t, const unsigned char*, size_t) {
  Tables();
  return &ExtendSw;
}
#endif

uint32_t (*const kExtend)(uint32_t, const unsigned char*, size_t) = PickExtend();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, std::string_view data) {
  return ~kExtend(~crc, reinterpret_cast<const unsigned char*>(data.data()), data.size());
}

// Test hook: the portable implementation, for hw/sw equivalence checks.
uint32_t Crc32cExtendPortable(uint32_t crc, std::string_view data) {
  return ~ExtendSw(~crc, reinterpret_cast<const unsigned char*>(data.data()), data.size());
}

}  // namespace cheetah
