// Binary encoding helpers (fixed-width little-endian and varint), used by the
// KV store's WAL/SSTable formats and by persisted cluster state.
#ifndef SRC_COMMON_CODING_H_
#define SRC_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace cheetah {

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v);
  buf[1] = static_cast<char>(v >> 8);
  buf[2] = static_cast<char>(v >> 16);
  buf[3] = static_cast<char>(v >> 24);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  PutFixed32(dst, static_cast<uint32_t>(v));
  PutFixed32(dst, static_cast<uint32_t>(v >> 32));
}

inline uint32_t DecodeFixed32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

inline uint64_t DecodeFixed64(const char* p) {
  return static_cast<uint64_t>(DecodeFixed32(p)) |
         (static_cast<uint64_t>(DecodeFixed32(p + 4)) << 32);
}

inline void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

// Returns false on malformed input or truncation.
inline bool GetVarint64(std::string_view* input, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint64_t byte = static_cast<unsigned char>(input->front());
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return true;
    }
  }
  return false;
}

inline void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutVarint64(dst, s.size());
  dst->append(s.data(), s.size());
}

inline bool GetLengthPrefixed(std::string_view* input, std::string_view* out) {
  uint64_t len = 0;
  if (!GetVarint64(input, &len) || input->size() < len) {
    return false;
  }
  *out = input->substr(0, len);
  input->remove_prefix(len);
  return true;
}

inline bool GetFixed32(std::string_view* input, uint32_t* v) {
  if (input->size() < 4) {
    return false;
  }
  *v = DecodeFixed32(input->data());
  input->remove_prefix(4);
  return true;
}

inline bool GetFixed64(std::string_view* input, uint64_t* v) {
  if (input->size() < 8) {
    return false;
  }
  *v = DecodeFixed64(input->data());
  input->remove_prefix(8);
  return true;
}

}  // namespace cheetah

#endif  // SRC_COMMON_CODING_H_
