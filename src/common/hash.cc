#include "src/common/hash.h"

namespace cheetah {
namespace {

// Robert Jenkins' 96-bit mix, as used by Ceph's CRUSH (crush/hash.c).
constexpr uint32_t kCrushHashSeed = 1315423911u;

void CrushHashMix(uint32_t& a, uint32_t& b, uint32_t& c) {
  a = a - b;
  a = a - c;
  a = a ^ (c >> 13);
  b = b - c;
  b = b - a;
  b = b ^ (a << 8);
  c = c - a;
  c = c - b;
  c = c ^ (b >> 13);
  a = a - b;
  a = a - c;
  a = a ^ (c >> 12);
  b = b - c;
  b = b - a;
  b = b ^ (a << 16);
  c = c - a;
  c = c - b;
  c = c ^ (b >> 5);
  a = a - b;
  a = a - c;
  a = a ^ (c >> 3);
  b = b - c;
  b = b - a;
  b = b ^ (a << 10);
  c = c - a;
  c = c - b;
  c = c ^ (b >> 15);
}

}  // namespace

uint32_t CrushHash32(uint32_t a) {
  uint32_t hash = kCrushHashSeed ^ a;
  uint32_t b = a;
  uint32_t x = 231232u;
  uint32_t y = 1232u;
  CrushHashMix(b, x, hash);
  CrushHashMix(y, a, hash);
  return hash;
}

uint32_t CrushHash32_2(uint32_t a, uint32_t b) {
  uint32_t hash = kCrushHashSeed ^ a ^ b;
  uint32_t x = 231232u;
  uint32_t y = 1232u;
  CrushHashMix(a, b, hash);
  CrushHashMix(x, a, hash);
  CrushHashMix(b, y, hash);
  return hash;
}

uint32_t CrushHash32_3(uint32_t a, uint32_t b, uint32_t c) {
  uint32_t hash = kCrushHashSeed ^ a ^ b ^ c;
  uint32_t x = 231232u;
  uint32_t y = 1232u;
  CrushHashMix(a, b, hash);
  CrushHashMix(c, x, hash);
  CrushHashMix(y, a, hash);
  CrushHashMix(b, x, hash);
  return hash;
}

uint32_t CrushHash32_4(uint32_t a, uint32_t b, uint32_t c, uint32_t d) {
  uint32_t hash = kCrushHashSeed ^ a ^ b ^ c ^ d;
  uint32_t x = 231232u;
  uint32_t y = 1232u;
  CrushHashMix(a, b, hash);
  CrushHashMix(c, d, hash);
  CrushHashMix(a, x, hash);
  CrushHashMix(y, b, hash);
  return hash;
}

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace cheetah
