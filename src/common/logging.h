// Minimal leveled logging. Off by default so benchmark output stays clean;
// tests and examples can raise the level.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>

namespace cheetah {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace cheetah

#define CHEETAH_LOG(level)                                                       \
  if (::cheetah::LogLevel::level < ::cheetah::GetLogLevel()) {                   \
  } else                                                                         \
    ::cheetah::internal::LogMessage(::cheetah::LogLevel::level, __FILE__, __LINE__).stream()

#define LOG_DEBUG CHEETAH_LOG(kDebug)
#define LOG_INFO CHEETAH_LOG(kInfo)
#define LOG_WARN CHEETAH_LOG(kWarn)
#define LOG_ERROR CHEETAH_LOG(kError)

#endif  // SRC_COMMON_LOGGING_H_
