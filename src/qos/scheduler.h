// Per-node request scheduler: admission control + weighted-fair dispatch.
//
// rpc::Node hands every class-tagged inbound request to Submit() instead of
// spawning its handler directly. The scheduler either rejects it immediately
// (token bucket empty, per-class queue full, or the CoDel detector says this
// node is overloaded and the class is shed at the current level) with a
// retry-after hint, or queues it in the weighted-fair queue and dispatches up
// to `max_concurrency` handlers at a time in virtual-time fair order.
//
// Determinism: dispatch order is a pure function of arrival order, costs, and
// the event-loop clock; ties break by sequence number. Reset() (on node
// detach/crash) bumps an epoch so completion callbacks from killed handlers
// can't double-free concurrency slots.
#ifndef SRC_QOS_SCHEDULER_H_
#define SRC_QOS_SCHEDULER_H_

#include <array>
#include <cstdint>
#include <functional>

#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/qos/codel.h"
#include "src/qos/qos.h"
#include "src/qos/token_bucket.h"
#include "src/qos/wfq.h"
#include "src/sim/event_loop.h"

namespace cheetah::qos {

class Scheduler {
 public:
  // `run(done)` starts the handler; the handler (or its teardown path) must
  // invoke `done` exactly once to release the concurrency slot.
  using RunFn = std::function<void(std::function<void()> done)>;
  // Called instead of `run` on rejection; null means drop silently
  // (fire-and-forget traffic has nobody to tell).
  using RejectFn = std::function<void(Nanos retry_after)>;

  Scheduler(sim::EventLoop& loop, uint32_t node, const QosParams& params);

  void Submit(TrafficClass cls, size_t bytes, RunFn run, RejectFn reject);

  // Drops all queued work and forgets in-flight handlers (they were killed
  // with the node's actor); stale `done` callbacks become no-ops.
  void Reset();

  const QosParams& params() const { return params_; }
  int active() const { return active_; }
  size_t depth(TrafficClass cls) const { return queue_.depth(cls); }
  uint64_t submitted(TrafficClass cls) const { return submitted_[Ord(cls)]; }
  uint64_t dispatched(TrafficClass cls) const { return dispatched_[Ord(cls)]; }
  uint64_t sheds(TrafficClass cls) const { return sheds_[Ord(cls)]; }
  int shed_level() const;

 private:
  static int Ord(TrafficClass cls) { return static_cast<int>(cls); }
  // Cost unit: KiB of wire bytes, min 1 — shared by the WFQ (finish tags) and
  // the token buckets (rate caps).
  static double CostOf(size_t bytes) {
    const double kib = static_cast<double>(bytes) / 1024.0;
    return kib > 1.0 ? kib : 1.0;
  }

  void RejectWith(TrafficClass cls, const char* reason, Nanos retry_after,
                  const RejectFn& reject);
  void TryDispatch();
  void OnComplete();

  struct Pending {
    TrafficClass cls;
    double cost;
    Nanos enqueued;
    RunFn run;
  };

  sim::EventLoop& loop_;
  QosParams params_;
  WeightedFairQueue<Pending> queue_;
  std::array<TokenBucket, kNumClasses> buckets_;
  CodelDetector codel_;
  int active_ = 0;
  uint64_t epoch_ = 0;

  std::array<uint64_t, kNumClasses> submitted_{};
  std::array<uint64_t, kNumClasses> dispatched_{};
  std::array<uint64_t, kNumClasses> sheds_{};

  obs::Scope scope_;
  std::array<obs::Counter*, kNumClasses> submitted_ctr_;
  std::array<obs::Counter*, kNumClasses> dispatched_ctr_;
  std::array<obs::Counter*, kNumClasses> shed_ctr_;
  std::array<obs::Gauge*, kNumClasses> depth_gauge_;
  std::array<obs::Histogram*, kNumClasses> sojourn_hist_;
  obs::Gauge* active_gauge_;
  obs::Gauge* shed_level_gauge_;
};

}  // namespace cheetah::qos

#endif  // SRC_QOS_SCHEDULER_H_
