#include "src/qos/scheduler.h"

#include <cassert>
#include <string>
#include <utility>

namespace cheetah::qos {

Scheduler::Scheduler(sim::EventLoop& loop, uint32_t node, const QosParams& params)
    : loop_(loop),
      params_(params),
      queue_(params.weights),
      codel_(params.codel_target, params.codel_interval),
      scope_("qos@" + std::to_string(node)) {
  for (int c = 0; c < kNumClasses; ++c) {
    buckets_[c] = TokenBucket(params_.rate_per_sec[c], params_.burst_cost);
    const std::string name = TrafficClassName(static_cast<TrafficClass>(c));
    submitted_ctr_[c] = scope_.counter("submitted." + name);
    dispatched_ctr_[c] = scope_.counter("dispatched." + name);
    shed_ctr_[c] = scope_.counter("shed." + name);
    depth_gauge_[c] = scope_.gauge("depth." + name);
    sojourn_hist_[c] = scope_.histogram("sojourn_ns." + name);
  }
  active_gauge_ = scope_.gauge("active");
  shed_level_gauge_ = scope_.gauge("shed_level");
}

int Scheduler::shed_level() const {
  const int level = codel_.shed_level(loop_.Now());
  return level < params_.max_shed_level ? level : params_.max_shed_level;
}

void Scheduler::RejectWith(TrafficClass cls, const char* reason,
                           Nanos retry_after, const RejectFn& reject) {
  const int c = Ord(cls);
  ++sheds_[c];
  shed_ctr_[c]->Add();
  scope_.counter(std::string("shed_reason.") + reason)->Add();
  if (reject) {
    reject(retry_after);
  }
}

void Scheduler::Submit(TrafficClass cls, size_t bytes, RunFn run,
                       RejectFn reject) {
  assert(cls != TrafficClass::kControl &&
         "control traffic bypasses the scheduler");
  const Nanos now = loop_.Now();
  const int c = Ord(cls);
  const double cost = CostOf(bytes);
  ++submitted_[c];
  submitted_ctr_[c]->Add();

  // Admission checks, cheapest signal first. Each rejection carries the
  // earliest time at which retrying could plausibly succeed.
  if (!buckets_[c].TryTake(cost, now)) {
    RejectWith(cls, "rate", buckets_[c].NextAvailable(cost, now) - now, reject);
    return;
  }
  const int level = shed_level();
  shed_level_gauge_->Set(level);
  if (level > 0 && c >= kNumClasses - level) {
    RejectWith(cls, "overload", params_.codel_interval, reject);
    return;
  }
  if (params_.queue_limit[c] > 0 && queue_.depth(cls) >= params_.queue_limit[c]) {
    RejectWith(cls, "queue_full", params_.codel_interval, reject);
    return;
  }

  queue_.Push(cls, cost, Pending{cls, cost, now, std::move(run)});
  depth_gauge_[c]->Set(static_cast<int64_t>(queue_.depth(cls)));
  TryDispatch();
}

void Scheduler::TryDispatch() {
  const Nanos now = loop_.Now();
  while (active_ < params_.max_concurrency && !queue_.empty()) {
    Pending p = queue_.Pop();
    const int c = Ord(p.cls);
    depth_gauge_[c]->Set(static_cast<int64_t>(queue_.depth(p.cls)));
    const Nanos sojourn = now - p.enqueued;
    sojourn_hist_[c]->Record(static_cast<uint64_t>(sojourn));
    // Only latency-sensitive classes drive the overload verdict: a long
    // maintenance sojourn is the scheduler working as intended, not a signal
    // that foreground service is degraded.
    if (p.cls == TrafficClass::kForeground || p.cls == TrafficClass::kReplication) {
      codel_.Record(sojourn, now);
    }
    ++dispatched_[c];
    dispatched_ctr_[c]->Add();
    ++active_;
    active_gauge_->Set(active_);
    p.run([this, epoch = epoch_] {
      if (epoch == epoch_) {
        OnComplete();
      }
    });
  }
}

void Scheduler::OnComplete() {
  assert(active_ > 0);
  --active_;
  active_gauge_->Set(active_);
  if (active_ == 0 && queue_.empty()) {
    codel_.NoteIdle();
    shed_level_gauge_->Set(0);
  }
  TryDispatch();
}

void Scheduler::Reset() {
  queue_.Clear();
  active_ = 0;
  ++epoch_;
  codel_.NoteIdle();
  active_gauge_->Set(0);
  shed_level_gauge_->Set(0);
  for (int c = 0; c < kNumClasses; ++c) {
    depth_gauge_[c]->Set(0);
  }
}

}  // namespace cheetah::qos
