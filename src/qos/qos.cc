#include "src/qos/qos.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cheetah::qos {

const char* TrafficClassName(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kControl:
      return "control";
    case TrafficClass::kForeground:
      return "foreground";
    case TrafficClass::kReplication:
      return "replication";
    case TrafficClass::kBackground:
      return "background";
    case TrafficClass::kMaintenance:
      return "maintenance";
  }
  return "unknown";
}

namespace {
constexpr char kRetryAfterKey[] = "retry_after_ns=";
}  // namespace

Status OverloadedStatus(Nanos retry_after) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%lld", kRetryAfterKey,
                static_cast<long long>(retry_after));
  return Status::Overloaded(buf);
}

Nanos RetryAfterOf(const Status& status, Nanos fallback) {
  const std::string& m = status.message();
  const size_t pos = m.find(kRetryAfterKey);
  if (pos == std::string::npos) {
    return fallback;
  }
  const long long v = std::atoll(m.c_str() + pos + std::strlen(kRetryAfterKey));
  return v > 0 ? static_cast<Nanos>(v) : fallback;
}

}  // namespace cheetah::qos
