// Deterministic token bucket in virtual time. Clock-free: every method takes
// `now` explicitly, so units can be tested without an event loop and the
// scheduler never reads a clock the simulator doesn't control.
#ifndef SRC_QOS_TOKEN_BUCKET_H_
#define SRC_QOS_TOKEN_BUCKET_H_

#include <algorithm>

#include "src/common/units.h"

namespace cheetah::qos {

class TokenBucket {
 public:
  // rate_per_sec <= 0 means unlimited (TryTake always succeeds).
  TokenBucket() = default;
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

  bool unlimited() const { return rate_ <= 0.0; }
  double tokens(Nanos now) {
    Refill(now);
    return tokens_;
  }

  // Takes `cost` tokens if available after refilling to `now`.
  bool TryTake(double cost, Nanos now) {
    if (unlimited()) {
      return true;
    }
    Refill(now);
    if (tokens_ >= cost) {
      tokens_ -= cost;
      return true;
    }
    return false;
  }

  // Earliest virtual time at which `cost` tokens will exist (== `now` when
  // they already do). Does not take them.
  Nanos NextAvailable(double cost, Nanos now) {
    if (unlimited()) {
      return now;
    }
    Refill(now);
    if (tokens_ >= cost) {
      return now;
    }
    const double deficit = std::min(cost, burst_) - tokens_;
    return now + static_cast<Nanos>(deficit / rate_ * 1e9) + 1;
  }

 private:
  void Refill(Nanos now) {
    if (now > last_) {
      tokens_ = std::min(
          burst_, tokens_ + rate_ * static_cast<double>(now - last_) / 1e9);
      last_ = now;
    }
  }

  double rate_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  Nanos last_ = 0;
};

}  // namespace cheetah::qos

#endif  // SRC_QOS_TOKEN_BUCKET_H_
