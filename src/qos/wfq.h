// Start-time fair queueing over traffic classes.
//
// Each item gets a start tag max(V, last_finish[class]) and a finish tag
// start + cost/weight; items dequeue in start-tag order (sequence number
// breaks ties, so the order is total and deterministic) and V advances to
// the dequeued item's start tag. Classes share capacity in proportion to
// their weights when backlogged, and an idle class's tags catch up to V on
// its next arrival instead of letting it bank credit — the standard SFQ
// construction, which is starvation-free: a backlogged class's start tags
// grow at rate cost/weight relative to V, so every queued item's tag is
// eventually the minimum.
#ifndef SRC_QOS_WFQ_H_
#define SRC_QOS_WFQ_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <map>
#include <utility>

#include "src/qos/qos.h"

namespace cheetah::qos {

template <typename T>
class WeightedFairQueue {
 public:
  explicit WeightedFairQueue(std::array<double, kNumClasses> weights)
      : weights_(weights) {}

  void Push(TrafficClass cls, double cost, T payload) {
    const int c = static_cast<int>(cls);
    assert(c > 0 && c < kNumClasses && weights_[c] > 0.0);
    const double start = last_finish_[c] > vtime_ ? last_finish_[c] : vtime_;
    last_finish_[c] = start + cost / weights_[c];
    items_.emplace(Key{start, next_seq_++}, Entry{cls, std::move(payload)});
    ++depth_[c];
  }

  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }
  size_t depth(TrafficClass cls) const { return depth_[static_cast<int>(cls)]; }

  T Pop(TrafficClass* cls_out = nullptr) {
    assert(!items_.empty());
    auto it = items_.begin();
    vtime_ = it->first.start;
    Entry entry = std::move(it->second);
    items_.erase(it);
    --depth_[static_cast<int>(entry.cls)];
    if (cls_out != nullptr) {
      *cls_out = entry.cls;
    }
    return std::move(entry.payload);
  }

  void Clear() {
    items_.clear();
    depth_ = {};
    // Tags keep their values: V never runs backwards, so items queued after
    // a Clear still order correctly against the virtual clock.
  }

 private:
  struct Key {
    double start;
    uint64_t seq;
    bool operator<(const Key& o) const {
      if (start != o.start) {
        return start < o.start;
      }
      return seq < o.seq;
    }
  };
  struct Entry {
    TrafficClass cls;
    T payload;
  };

  std::array<double, kNumClasses> weights_;
  std::array<double, kNumClasses> last_finish_{};
  std::array<size_t, kNumClasses> depth_{};
  double vtime_ = 0.0;
  uint64_t next_seq_ = 0;
  std::map<Key, Entry> items_;
};

}  // namespace cheetah::qos

#endif  // SRC_QOS_WFQ_H_
