// CoDel-style overload detector over handler queue sojourn times.
//
// Classic CoDel decides per-packet drops; here we only need a binary-ish
// verdict — "is this node persistently congested, and how badly?" — that the
// scheduler maps to a shed level. The node is overloaded once every observed
// sojourn stays above `target` for a full `interval` (a single slow dispatch
// doesn't trip it), and the level escalates by one per further interval spent
// overloaded. Any sojourn back under target resets everything.
//
// Clock-free like the token bucket: callers pass the event-loop time, so the
// detector is a pure function of the dispatch sequence and replays exactly.
#ifndef SRC_QOS_CODEL_H_
#define SRC_QOS_CODEL_H_

#include "src/common/units.h"
#include "src/qos/qos.h"

namespace cheetah::qos {

class CodelDetector {
 public:
  CodelDetector(Nanos target, Nanos interval)
      : target_(target), interval_(interval) {}

  void Record(Nanos sojourn, Nanos now) {
    if (sojourn <= target_) {
      above_ = false;
      overloaded_ = false;
      return;
    }
    if (!above_) {
      above_ = true;
      above_since_ = now;
    }
    if (!overloaded_ && now - above_since_ >= interval_) {
      overloaded_ = true;
      tripped_at_ = now;
    }
  }

  // The scheduler drains to empty from time to time; a detector that last saw
  // a sample long ago shouldn't still claim overload.
  void NoteIdle() {
    above_ = false;
    overloaded_ = false;
  }

  bool overloaded() const { return overloaded_; }

  // 0 = healthy; level L asks the scheduler to reject classes with ordinal
  // >= kNumClasses - L (caller clamps against QosParams::max_shed_level).
  int shed_level(Nanos now) const {
    if (!overloaded_) {
      return 0;
    }
    return 1 + static_cast<int>((now - tripped_at_) / interval_);
  }

 private:
  Nanos target_;
  Nanos interval_;
  bool above_ = false;
  bool overloaded_ = false;
  Nanos above_since_ = 0;
  Nanos tripped_at_ = 0;
};

}  // namespace cheetah::qos

#endif  // SRC_QOS_CODEL_H_
