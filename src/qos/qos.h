// Overload control & QoS: shared vocabulary.
//
// Every server-side request belongs to a traffic class. The per-node
// scheduler (scheduler.h) queues and dispatches data-plane requests in
// weighted-fair order, rate-limits classes with token buckets, and — when a
// CoDel-style sojourn detector says the node is overloaded — rejects the
// lowest classes with an explicit retry-after hint that proxies honor via
// AIMD concurrency windows (aimd.h). Everything is a pure function of the
// event-loop clock and the arrival order, so chaos/benchmark runs replay
// byte-for-byte from their seeds.
#ifndef SRC_QOS_QOS_H_
#define SRC_QOS_QOS_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/common/units.h"

namespace cheetah::qos {

// Priority order: lower ordinal = more latency-sensitive = shed last.
// kControl (topology pushes, heartbeats, raft) bypasses the scheduler
// entirely: starving the control plane turns an overload into an outage.
enum class TrafficClass : uint8_t {
  kControl = 0,     // cluster manager / raft / heartbeats — never queued
  kForeground = 1,  // client puts/gets/deletes and their data I/O
  kReplication = 2, // MetaX replication between meta servers
  kBackground = 3,  // PG pulls, RE-META re-pulls, volume recovery
  kMaintenance = 4, // discards, probes, compaction-adjacent traffic
};

inline constexpr int kNumClasses = 5;

const char* TrafficClassName(TrafficClass cls);

// Tuning for one node's scheduler. Defaults are deliberately permissive:
// foreground/replication are never rate-limited, and the shed escalation
// stops at kBackground, so enabling QoS on a healthy cluster is a no-op
// apart from dispatch order.
struct QosParams {
  QosParams() = default;

  bool enabled = false;

  // Handlers dispatched concurrently per node. Queued-but-undispatched work
  // is what the WFQ reorders; once dispatched, a handler contends on the
  // machine's CPU/disk resources like any other coroutine.
  int max_concurrency = 16;

  // WFQ weights by class ordinal (kControl slot unused).
  std::array<double, kNumClasses> weights{0.0, 8.0, 4.0, 2.0, 1.0};

  // Token-bucket rate caps in cost units (KiB of wire bytes, min 1 per
  // request) per second; 0 = unlimited. Burst = one interval's worth.
  std::array<double, kNumClasses> rate_per_sec{0.0, 0.0, 0.0, 0.0, 0.0};
  double burst_cost = 256.0;

  // Per-class queue depth bounds; arrivals beyond the bound are rejected
  // with retry-after (bounded queue => bounded sojourn => bounded p99).
  std::array<uint32_t, kNumClasses> queue_limit{0, 4096, 4096, 1024, 256};

  // CoDel-style overload detector over the sojourn of latency-sensitive
  // (foreground/replication) dispatches: overloaded once sojourn stays
  // above `codel_target` for `codel_interval`, escalating one shed level
  // per additional interval.
  Nanos codel_target = Millis(5);
  Nanos codel_interval = Millis(100);

  // Highest shed level the detector may escalate to. Level L rejects
  // classes with ordinal >= kNumClasses - L: 1 sheds maintenance, 2 also
  // background, 3 also replication, 4 everything. The default never sheds
  // replication or foreground; only per-class queue overflow can push back
  // on those, which is what keeps foreground loss impossible while lower
  // classes still have work queued.
  int max_shed_level = 2;
};

// Proxy-side AIMD tuning (see aimd.h).
struct AimdParams {
  AimdParams() = default;
  double initial_window = 8.0;
  double min_window = 1.0;
  double max_window = 256.0;
  double backoff = 0.5;  // multiplicative decrease on pushback
};

// The wire encoding of pushback: a kOverloaded status whose message carries
// the server's retry-after hint. Kept as a string payload so the generic
// Status type stays dependency-free.
Status OverloadedStatus(Nanos retry_after);
Nanos RetryAfterOf(const Status& status, Nanos fallback);

}  // namespace cheetah::qos

#endif  // SRC_QOS_QOS_H_
