// Proxy-side adaptive concurrency: one AIMD window per remote meta server.
//
// The window bounds how many RPCs a proxy keeps in flight toward one node.
// Successes grow it additively (+1/window per completion, i.e. +1 per RTT of
// full utilization); an explicit kOverloaded pushback or a timeout halves it.
// Combined with the server-side scheduler this closes the control loop: the
// server sheds with retry-after, proxies shrink their windows, queue sojourn
// falls back under the CoDel target, and windows grow again.
#ifndef SRC_QOS_AIMD_H_
#define SRC_QOS_AIMD_H_

#include <algorithm>
#include <cassert>
#include <coroutine>
#include <deque>

#include "src/qos/qos.h"
#include "src/sim/actor.h"

namespace cheetah::qos {

class AimdWindow {
 public:
  explicit AimdWindow(const AimdParams& params)
      : params_(params), window_(params.initial_window) {}

  enum class Signal {
    kSuccess,   // additive increase
    kPushback,  // kOverloaded or timeout: multiplicative decrease
    kNeutral,   // application-level error; don't steer the window
  };

  double window() const { return window_; }
  int in_flight() const { return in_flight_; }
  int limit() const { return std::max(1, static_cast<int>(window_)); }

  struct AcquireAwaiter {
    AimdWindow& win;
    sim::Actor* actor = nullptr;

    void SetActor(sim::Actor* a) { actor = a; }
    bool await_ready() noexcept {
      if (win.in_flight_ < win.limit()) {
        ++win.in_flight_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      assert(actor && "AimdWindow::Acquire outside an actor coroutine");
      win.waiters_.push_back({actor, actor->epoch(), h, obs::ThisContext()});
    }
    void await_resume() const noexcept {}
  };

  // `co_await window.Acquire()` — suspends until an in-flight slot frees up.
  AcquireAwaiter Acquire() { return AcquireAwaiter{*this}; }

  void Release(Signal signal) {
    switch (signal) {
      case Signal::kSuccess:
        window_ = std::min(params_.max_window, window_ + 1.0 / window_);
        break;
      case Signal::kPushback:
        window_ = std::max(params_.min_window, window_ * params_.backoff);
        break;
      case Signal::kNeutral:
        break;
    }
    assert(in_flight_ > 0);
    --in_flight_;
    GrantWaiters();
  }

 private:
  void GrantWaiters() {
    while (!waiters_.empty() && in_flight_ < limit()) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      if (!w.actor->AliveAt(w.epoch)) {
        continue;  // killed while queued; its slot stays free
      }
      // Count the slot at grant time so a backoff between grant and resume
      // can't over-admit.
      ++in_flight_;
      w.actor->ResumeSoon(w.handle, w.epoch, w.ctx);
    }
  }

  struct Waiter {
    sim::Actor* actor;
    uint64_t epoch;
    std::coroutine_handle<> handle;
    obs::OpContext ctx;
  };

  AimdParams params_;
  double window_;
  int in_flight_ = 0;
  std::deque<Waiter> waiters_;
};

}  // namespace cheetah::qos

#endif  // SRC_QOS_AIMD_H_
