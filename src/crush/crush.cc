#include "src/crush/crush.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cheetah::crush {

void Map::AddItem(ItemId id, double weight) {
  assert(!HasItem(id));
  items_.push_back(Item{id, weight});
  ++epoch_;
}

void Map::RemoveItem(ItemId id) {
  items_.erase(std::remove_if(items_.begin(), items_.end(),
                              [id](const Item& it) { return it.id == id; }),
               items_.end());
  ++epoch_;
}

bool Map::HasItem(ItemId id) const {
  return std::any_of(items_.begin(), items_.end(),
                     [id](const Item& it) { return it.id == id; });
}

double Map::Straw2Score(ItemId item, double weight, uint32_t pg, uint32_t trial) const {
  // straw2: score = ln(u) / weight with u uniform in (0,1] derived from a
  // stable hash of (pg, item, trial); the item with the max score wins.
  const uint32_t h = CrushHash32_3(pg, item, trial);
  const double u = (static_cast<double>(h & 0xffff) + 1.0) / 65536.0;
  return std::log(u) / weight;
}

std::vector<ItemId> Map::Select(uint32_t pg, uint32_t n) const {
  // Rendezvous/straw2 "firstn": every item draws one weighted score for this
  // PG and the n best win, primary first. Adding an item perturbs each PG's
  // list only where the newcomer's score lands, which yields the ~1/n minimal
  // remap that §4.2's hybrid mapping depends on.
  std::vector<std::pair<double, ItemId>> scored;
  scored.reserve(items_.size());
  for (const Item& item : items_) {
    scored.emplace_back(Straw2Score(item.id, item.weight, pg, /*trial=*/0), item.id);
  }
  const uint32_t want = std::min<uint32_t>(n, static_cast<uint32_t>(scored.size()));
  std::partial_sort(scored.begin(), scored.begin() + want, scored.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) {
                        return a.first > b.first;
                      }
                      return a.second < b.second;
                    });
  std::vector<ItemId> out;
  out.reserve(want);
  for (uint32_t i = 0; i < want; ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

ItemId Map::Primary(uint32_t pg) const {
  auto sel = Select(pg, 1);
  assert(!sel.empty() && "Primary() on an empty CRUSH map");
  return sel[0];
}

}  // namespace cheetah::crush
