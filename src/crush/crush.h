// CRUSH: controlled, scalable, decentralized placement (Weil et al., SC'06).
//
// We model the cluster as a two-level tree (root -> hosts -> devices is
// collapsed to root -> items, where an item is a meta machine or an OSD) and
// use straw2 selection, which has the property the paper's hybrid mapping
// relies on: adding or removing an item only remaps the minimal fraction of
// placement groups (~1/n), and the mapping is a pure function of (map,
// pg, replica) so every client computes it identically.
#ifndef SRC_CRUSH_CRUSH_H_
#define SRC_CRUSH_CRUSH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/hash.h"

namespace cheetah::crush {

using ItemId = uint32_t;

struct Item {
  Item() = default;
  Item(ItemId id, double weight) : id(id), weight(weight) {}
  ItemId id = 0;
  double weight = 1.0;
};

class Map {
 public:
  Map() = default;

  void AddItem(ItemId id, double weight = 1.0);
  void RemoveItem(ItemId id);
  bool HasItem(ItemId id) const;
  size_t size() const { return items_.size(); }
  const std::vector<Item>& items() const { return items_; }

  // Epoch increments on every mutation; used by callers to invalidate caches.
  uint64_t epoch() const { return epoch_; }

  // Maps an object name to its placement group.
  static uint32_t NameToPg(std::string_view name, uint32_t pg_count) {
    return static_cast<uint32_t>(Fnv1a64(name) % pg_count);
  }

  // Selects `n` distinct items for `pg` (straw2, replica rank r as the
  // hash salt). Returns fewer than n if the map has fewer items.
  std::vector<ItemId> Select(uint32_t pg, uint32_t n) const;

  // First selected item = the PG's primary.
  ItemId Primary(uint32_t pg) const;

 private:
  double Straw2Score(ItemId item, double weight, uint32_t pg, uint32_t trial) const;

  std::vector<Item> items_;
  uint64_t epoch_ = 0;
};

}  // namespace cheetah::crush

#endif  // SRC_CRUSH_CRUSH_H_
