// Closed-loop load generator in the style of Intel COSBench (§6.1): N
// concurrent workers per run, each issuing the next operation as soon as the
// previous completes. Latency is request completion time at the client;
// throughput is completed ops over the measured virtual interval.
#ifndef SRC_WORKLOAD_RUNNER_H_
#define SRC_WORKLOAD_RUNNER_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/sim/actor.h"
#include "src/sim/event_loop.h"
#include "src/workload/generator.h"
#include "src/workload/object_store.h"
#include "src/workload/stats.h"

namespace cheetah::workload {

struct RunnerConfig {
  RunnerConfig() = default;
  int concurrency = 20;
  uint64_t total_ops = 1000;  // 0 = run until `duration` elapses
  Nanos duration = 0;
  uint64_t seed = 1;
};

struct RunnerResults {
  LatencyRecorder put;
  LatencyRecorder get;
  LatencyRecorder del;
  LatencyRecorder all;
  Throughput throughput;
  uint64_t errors = 0;
  uint64_t not_found = 0;  // gets/deletes that raced a concurrent delete
};

class Runner {
 public:
  // Each client pairs an actor (the simulated client machine) with the store
  // stub it drives; workers are assigned round-robin.
  Runner(sim::EventLoop& loop,
         std::vector<std::pair<sim::Actor*, ObjectStore*>> clients, RunnerConfig config)
      : loop_(loop), clients_(std::move(clients)), config_(config) {}

  // Blocks (drives the loop) until all workers finish. `next_op` is invoked
  // once per operation; it may be stateful (e.g. MixedWorkload::Next).
  // `on_put_success` (optional) fires when a put commits — use it to add the
  // object to the live pool so gets/deletes never target in-flight puts.
  RunnerResults Run(std::function<Op(Rng&)> next_op,
                    std::function<void(const std::string&)> on_put_success = nullptr);

 private:
  struct Shared;

  sim::EventLoop& loop_;
  std::vector<std::pair<sim::Actor*, ObjectStore*>> clients_;
  RunnerConfig config_;
};

// Loads `count` objects of `size` bytes named "<prefix><i>" with the given
// concurrency; returns names put successfully. Used to pre-populate stores.
std::vector<std::string> Preload(sim::EventLoop& loop,
                                 std::vector<std::pair<sim::Actor*, ObjectStore*>> clients,
                                 const std::string& prefix, uint64_t count, uint64_t size,
                                 int concurrency = 64);

}  // namespace cheetah::workload

#endif  // SRC_WORKLOAD_RUNNER_H_
