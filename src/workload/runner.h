// Load generator with two arrival modes.
//
// Closed loop (COSBench style, §6.1): N concurrent workers, each issuing the
// next operation as soon as the previous completes. Offered load is an
// *output* — it collapses to whatever the system can serve, which hides
// overload entirely (and closed-loop latency suffers coordinated omission:
// a stalled worker stops sampling exactly when the system is slow).
//
// Open loop: operations arrive on a seeded Poisson schedule at a configured
// rate, regardless of how the system is doing — offered load is an *input*.
// Latency is measured from each operation's *intended* (scheduled) start, so
// backlog shows up as latency instead of silently thinning the sample
// stream; RunnerResults::service additionally records completion minus
// actual issue time for comparison (the gap between the two distributions is
// the coordinated-omission error a closed-loop bench would have made).
#ifndef SRC_WORKLOAD_RUNNER_H_
#define SRC_WORKLOAD_RUNNER_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/sim/actor.h"
#include "src/sim/event_loop.h"
#include "src/workload/generator.h"
#include "src/workload/object_store.h"
#include "src/workload/stats.h"

namespace cheetah::workload {

enum class ArrivalMode {
  kClosed,  // `concurrency` workers, issue-on-completion
  kOpen,    // Poisson arrivals at `offered_ops_per_sec`, unbounded outstanding
};

struct RunnerConfig {
  RunnerConfig() = default;
  int concurrency = 20;       // closed-loop worker count (ignored in open loop)
  uint64_t total_ops = 1000;  // 0 = run until `duration` elapses
  Nanos duration = 0;
  uint64_t seed = 1;
  ArrivalMode arrival = ArrivalMode::kClosed;
  double offered_ops_per_sec = 0.0;  // required > 0 in open-loop mode
};

struct RunnerResults {
  // In open-loop mode these measure from the intended (scheduled) start.
  LatencyRecorder put;
  LatencyRecorder get;
  LatencyRecorder del;
  LatencyRecorder all;
  // Completion minus actual issue time. Identical to `all` in closed loop;
  // in open loop the difference to `all` is the coordinated-omission error.
  LatencyRecorder service;
  Throughput throughput;
  uint64_t errors = 0;
  uint64_t not_found = 0;  // gets/deletes that raced a concurrent delete
};

class Runner {
 public:
  // Each client pairs an actor (the simulated client machine) with the store
  // stub it drives; workers are assigned round-robin.
  Runner(sim::EventLoop& loop,
         std::vector<std::pair<sim::Actor*, ObjectStore*>> clients, RunnerConfig config)
      : loop_(loop), clients_(std::move(clients)), config_(config) {}

  // Blocks (drives the loop) until all workers finish. `next_op` is invoked
  // once per operation; it may be stateful (e.g. MixedWorkload::Next).
  // `on_put_success` (optional) fires when a put commits — use it to add the
  // object to the live pool so gets/deletes never target in-flight puts.
  RunnerResults Run(std::function<Op(Rng&)> next_op,
                    std::function<void(const std::string&)> on_put_success = nullptr);

  // Implementation detail, public so runner.cc's free helper coroutines can
  // name it (it is forward-declared only; not part of the API).
  struct Shared;

 private:
  sim::EventLoop& loop_;
  std::vector<std::pair<sim::Actor*, ObjectStore*>> clients_;
  RunnerConfig config_;
};

// Loads `count` objects of `size` bytes named "<prefix><i>" with the given
// concurrency; returns names put successfully. Used to pre-populate stores.
std::vector<std::string> Preload(sim::EventLoop& loop,
                                 std::vector<std::pair<sim::Actor*, ObjectStore*>> clients,
                                 const std::string& prefix, uint64_t count, uint64_t size,
                                 int concurrency = 64);

}  // namespace cheetah::workload

#endif  // SRC_WORKLOAD_RUNNER_H_
