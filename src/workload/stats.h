// Measurement helpers: latency recorders with percentiles and windowed
// throughput counters, all in virtual time.
#ifndef SRC_WORKLOAD_STATS_H_
#define SRC_WORKLOAD_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace cheetah::workload {

class LatencyRecorder {
 public:
  void Record(Nanos latency) {
    samples_.push_back(latency);
    sum_ += static_cast<double>(latency);
    sorted_ = false;
  }

  uint64_t count() const { return samples_.size(); }
  double MeanMillis() const {
    return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size()) / 1e6;
  }
  // Sorts lazily: the first percentile query after a Record/Merge pays the
  // O(n log n) sort; subsequent queries (p50, p99, p999, ...) are O(1).
  double PercentileMillis(double p) const {
    if (samples_.empty()) {
      return 0.0;
    }
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    const size_t idx = std::min(samples_.size() - 1,
                                static_cast<size_t>(p * static_cast<double>(samples_.size())));
    return static_cast<double>(samples_[idx]) / 1e6;
  }
  void Clear() {
    samples_.clear();
    sum_ = 0;
    sorted_ = false;
  }

  void Merge(const LatencyRecorder& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sum_ += other.sum_;
    sorted_ = false;
  }

  // Raw samples in recording order (unless a percentile query sorted them);
  // the determinism guard test compares these across runs.
  const std::vector<Nanos>& samples() const { return samples_; }

 private:
  mutable std::vector<Nanos> samples_;
  mutable bool sorted_ = false;
  double sum_ = 0;
};

// Completed operations over a measured virtual-time interval.
struct Throughput {
  uint64_t ops = 0;
  Nanos interval = 0;

  double OpsPerSec() const {
    return interval == 0 ? 0.0
                         : static_cast<double>(ops) / (static_cast<double>(interval) / 1e9);
  }
};

// Records completions bucketed into fixed windows (time series, Fig. 15).
class TimeSeries {
 public:
  explicit TimeSeries(Nanos bucket_width) : width_(bucket_width) {}

  void Record(Nanos when, uint64_t count = 1) {
    const size_t bucket = static_cast<size_t>(when / width_);
    if (buckets_.size() <= bucket) {
      buckets_.resize(bucket + 1, 0);
    }
    buckets_[bucket] += count;
  }

  const std::vector<uint64_t>& buckets() const { return buckets_; }
  Nanos bucket_width() const { return width_; }

 private:
  Nanos width_;
  std::vector<uint64_t> buckets_;
};

}  // namespace cheetah::workload

#endif  // SRC_WORKLOAD_STATS_H_
