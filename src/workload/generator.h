// Request-stream generators: object sizes (including the production trace's
// size histogram, Fig. 16b), op mixes (YCSB-style, Fig. 20), and the
// synthesized 21-day trace (Fig. 16).
#ifndef SRC_WORKLOAD_GENERATOR_H_
#define SRC_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/units.h"

namespace cheetah::workload {

enum class OpType { kPut, kGet, kDelete };

struct Op {
  OpType type = OpType::kPut;
  std::string name;
  uint64_t size = 0;  // puts only
};

// ---- size distributions ----

using SizeDist = std::function<uint64_t(Rng&)>;

SizeDist FixedSize(uint64_t bytes);
SizeDist UniformSize(uint64_t lo, uint64_t hi);

// Fig. 16b: production object-size histogram (KB buckets -> percentage).
//   0-64: 3.7  64-128: 14.3  128-192: 8.9  192-256: 4.5
//   256-320: 3.8  320-384: 3.4  384-448: 5.1  448-512: 56.3
SizeDist TraceSize();

// ---- name pools ----

// Generates unique names and tracks the live population for get/delete
// sampling. Single-threaded (one per runner).
class NamePool {
 public:
  explicit NamePool(std::string prefix) : prefix_(std::move(prefix)) {}

  std::string NextName() { return prefix_ + std::to_string(next_++); }
  void Add(std::string name) { live_.push_back(std::move(name)); }

  bool empty() const { return live_.empty(); }
  size_t size() const { return live_.size(); }

  // Samples a live name uniformly; removal swaps with the back.
  std::string Sample(Rng& rng) const { return live_[rng.Uniform(live_.size())]; }
  std::string Take(Rng& rng) {
    const size_t idx = rng.Uniform(live_.size());
    std::string name = std::move(live_[idx]);
    live_[idx] = std::move(live_.back());
    live_.pop_back();
    return name;
  }

 private:
  std::string prefix_;
  uint64_t next_ = 0;
  std::vector<std::string> live_;
};

// ---- op mixes ----

// Draws ops with the given ratios; gets/deletes target live objects (falls
// back to put while the pool is empty). Ratios must sum to <= 1; the
// remainder goes to gets.
class MixedWorkload {
 public:
  MixedWorkload(double put_ratio, double delete_ratio, SizeDist sizes, NamePool* pool)
      : put_ratio_(put_ratio),
        delete_ratio_(delete_ratio),
        sizes_(std::move(sizes)),
        pool_(pool) {}

  Op Next(Rng& rng);

 private:
  double put_ratio_;
  double delete_ratio_;
  SizeDist sizes_;
  NamePool* pool_;
};

// ---- the 21-day production trace (Fig. 16) ----

struct TraceDay {
  double put_ratio;
  double get_ratio;
  double delete_ratio;
};

// Per-day op ratios shaped like Fig. 16a: writes dominate, deletes are heavy
// because objects have lifecycles, with day-to-day variation.
std::vector<TraceDay> TraceOpRatios(int days = 21);

}  // namespace cheetah::workload

#endif  // SRC_WORKLOAD_GENERATOR_H_
