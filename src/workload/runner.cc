#include "src/workload/runner.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"

namespace cheetah::workload {

struct Runner::Shared {
  RunnerResults results;
  uint64_t issued = 0;
  int live_workers = 0;
  int in_flight = 0;  // open-loop ops spawned but not yet completed
  Nanos start = 0;
  Nanos deadline = 0;
  uint64_t total_ops = 0;
  std::function<Op(Rng&)> next_op;
  std::function<void(const std::string&)> on_put_success;
};

namespace {

// Executes one operation and records its latency against `intended` — the
// scheduled arrival in open loop, the actual issue instant in closed loop.
sim::Task<> ExecuteOp(ObjectStore* store, std::shared_ptr<Runner::Shared> shared, Op op,
                      Nanos intended) {
  sim::Actor* actor = co_await sim::CurrentActor{};
  const Nanos issued = actor->Now();
  RunnerResults& results = shared->results;
  switch (op.type) {
    case OpType::kPut: {
      Status s = co_await store->Put(op.name, std::string(op.size, 'd'));
      const Nanos now = actor->Now();
      if (s.ok()) {
        results.put.Record(now - intended);
        results.all.Record(now - intended);
        results.service.Record(now - issued);
        if (shared->on_put_success) {
          shared->on_put_success(op.name);
        }
      } else {
        ++results.errors;
      }
      break;
    }
    case OpType::kGet: {
      auto r = co_await store->Get(op.name);
      const Nanos now = actor->Now();
      if (r.ok()) {
        results.get.Record(now - intended);
        results.all.Record(now - intended);
        results.service.Record(now - issued);
      } else if (r.status().IsNotFound()) {
        ++results.not_found;
      } else {
        ++results.errors;
      }
      break;
    }
    case OpType::kDelete: {
      Status s = co_await store->Delete(op.name);
      const Nanos now = actor->Now();
      if (s.ok()) {
        results.del.Record(now - intended);
        results.all.Record(now - intended);
        results.service.Record(now - issued);
      } else if (s.IsNotFound()) {
        ++results.not_found;
      } else {
        ++results.errors;
      }
      break;
    }
  }
}

sim::Task<> OpenLoopOp(ObjectStore* store, std::shared_ptr<Runner::Shared> shared, Op op,
                       Nanos intended) {
  co_await ExecuteOp(store, shared, std::move(op), intended);
  --shared->in_flight;
}

}  // namespace

RunnerResults Runner::Run(std::function<Op(Rng&)> next_op,
                          std::function<void(const std::string&)> on_put_success) {
  auto shared = std::make_shared<Shared>();
  shared->next_op = std::move(next_op);
  shared->on_put_success = std::move(on_put_success);
  shared->start = loop_.Now();
  shared->total_ops = config_.total_ops;
  shared->deadline = config_.duration > 0 ? loop_.Now() + config_.duration : 0;

  if (config_.arrival == ArrivalMode::kOpen) {
    assert(config_.offered_ops_per_sec > 0.0 &&
           "open-loop mode needs an offered rate");
    shared->live_workers = 1;  // the dispatcher
    auto dispatcher = [](std::vector<std::pair<sim::Actor*, ObjectStore*>> clients,
                         std::shared_ptr<Shared> shared, RunnerConfig config) -> sim::Task<> {
      // The arrival schedule has its own stream, disjoint from the per-op
      // generator draws, so the same seed yields the same schedule whatever
      // the op mix does.
      Rng arrivals(config.seed * 7919 + 13);
      Rng ops(config.seed * 1000003);
      const double mean_gap = 1e9 / config.offered_ops_per_sec;
      Nanos next = (co_await sim::CurrentActor{})->Now();
      size_t rr = 0;
      for (;;) {
        if (config.total_ops > 0 && shared->issued >= config.total_ops) {
          break;
        }
        if (shared->deadline > 0 && next >= shared->deadline) {
          break;
        }
        co_await sim::SleepUntil(next);
        ++shared->issued;
        Op op = shared->next_op(ops);
        auto& [actor, store] = clients[rr++ % clients.size()];
        ++shared->in_flight;
        // `next` (the scheduled arrival), not Now(): if dispatch ever lags,
        // the backlog must be charged to latency, not silently absorbed.
        actor->Spawn(OpenLoopOp(store, shared, std::move(op), next));
        next += std::max<Nanos>(1, static_cast<Nanos>(arrivals.Exponential(mean_gap)));
      }
      --shared->live_workers;
    };
    clients_[0].first->Spawn(dispatcher(clients_, shared, config_));
  } else {
    shared->live_workers = config_.concurrency;
    auto worker = [](ObjectStore* store, std::shared_ptr<Shared> shared,
                     uint64_t seed) -> sim::Task<> {
      Rng rng(seed);
      sim::Actor* actor = co_await sim::CurrentActor{};
      for (;;) {
        if (shared->total_ops > 0 && shared->issued >= shared->total_ops) {
          break;
        }
        if (shared->deadline > 0 && actor->Now() >= shared->deadline) {
          break;
        }
        ++shared->issued;
        Op op = shared->next_op(rng);
        co_await ExecuteOp(store, shared, std::move(op), actor->Now());
      }
      --shared->live_workers;
    };
    for (int w = 0; w < config_.concurrency; ++w) {
      auto& [actor, store] = clients_[w % clients_.size()];
      actor->Spawn(worker(store, shared, config_.seed * 1000003 + w));
    }
  }

  while (shared->live_workers > 0 || shared->in_flight > 0) {
    if (!loop_.RunOne()) {
      LOG_WARN << "runner: event loop drained with " << shared->live_workers
               << " workers and " << shared->in_flight << " ops still live";
      break;
    }
  }
  shared->results.throughput.ops = shared->results.all.count();
  shared->results.throughput.interval = loop_.Now() - shared->start;
  return shared->results;
}

std::vector<std::string> Preload(sim::EventLoop& loop,
                                 std::vector<std::pair<sim::Actor*, ObjectStore*>> clients,
                                 const std::string& prefix, uint64_t count, uint64_t size,
                                 int concurrency) {
  auto loaded = std::make_shared<std::vector<std::string>>();
  auto next = std::make_shared<uint64_t>(0);
  auto live = std::make_shared<int>(concurrency);
  auto worker = [](ObjectStore* store, std::shared_ptr<std::vector<std::string>> loaded,
                   std::shared_ptr<uint64_t> next, std::shared_ptr<int> live,
                   std::string prefix, uint64_t count, uint64_t size) -> sim::Task<> {
    for (;;) {
      const uint64_t i = (*next)++;
      if (i >= count) {
        break;
      }
      std::string name = prefix + std::to_string(i);
      Status s = co_await store->Put(name, std::string(size, 'p'));
      if (s.ok()) {
        loaded->push_back(std::move(name));
      }
    }
    --*live;
  };
  for (int w = 0; w < concurrency; ++w) {
    auto& [actor, store] = clients[w % clients.size()];
    actor->Spawn(worker(store, loaded, next, live, prefix, count, size));
  }
  while (*live > 0 && loop.RunOne()) {
  }
  return *loaded;
}

}  // namespace cheetah::workload
