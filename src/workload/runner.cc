#include "src/workload/runner.h"

#include "src/common/logging.h"

namespace cheetah::workload {

struct Runner::Shared {
  RunnerResults results;
  uint64_t issued = 0;
  int live_workers = 0;
  Nanos start = 0;
  Nanos deadline = 0;
  uint64_t total_ops = 0;
  std::function<Op(Rng&)> next_op;
  std::function<void(const std::string&)> on_put_success;
};

RunnerResults Runner::Run(std::function<Op(Rng&)> next_op,
                          std::function<void(const std::string&)> on_put_success) {
  auto shared = std::make_shared<Shared>();
  shared->next_op = std::move(next_op);
  shared->on_put_success = std::move(on_put_success);
  shared->start = loop_.Now();
  shared->total_ops = config_.total_ops;
  shared->deadline = config_.duration > 0 ? loop_.Now() + config_.duration : 0;
  shared->live_workers = config_.concurrency;

  auto worker = [](ObjectStore* store, std::shared_ptr<Shared> shared,
                   uint64_t seed) -> sim::Task<> {
    Rng rng(seed);
    sim::Actor* actor = co_await sim::CurrentActor{};
    for (;;) {
      if (shared->total_ops > 0 && shared->issued >= shared->total_ops) {
        break;
      }
      if (shared->deadline > 0 && actor->Now() >= shared->deadline) {
        break;
      }
      ++shared->issued;
      Op op = shared->next_op(rng);
      const Nanos t0 = actor->Now();
      switch (op.type) {
        case OpType::kPut: {
          Status s = co_await store->Put(op.name, std::string(op.size, 'd'));
          const Nanos dt = actor->Now() - t0;
          if (s.ok()) {
            shared->results.put.Record(dt);
            shared->results.all.Record(dt);
            if (shared->on_put_success) {
              shared->on_put_success(op.name);
            }
          } else {
            ++shared->results.errors;
          }
          break;
        }
        case OpType::kGet: {
          auto r = co_await store->Get(op.name);
          const Nanos dt = actor->Now() - t0;
          if (r.ok()) {
            shared->results.get.Record(dt);
            shared->results.all.Record(dt);
          } else if (r.status().IsNotFound()) {
            ++shared->results.not_found;
          } else {
            ++shared->results.errors;
          }
          break;
        }
        case OpType::kDelete: {
          Status s = co_await store->Delete(op.name);
          const Nanos dt = actor->Now() - t0;
          if (s.ok()) {
            shared->results.del.Record(dt);
            shared->results.all.Record(dt);
          } else if (s.IsNotFound()) {
            ++shared->results.not_found;
          } else {
            ++shared->results.errors;
          }
          break;
        }
      }
    }
    --shared->live_workers;
  };

  for (int w = 0; w < config_.concurrency; ++w) {
    auto& [actor, store] = clients_[w % clients_.size()];
    actor->Spawn(worker(store, shared, config_.seed * 1000003 + w));
  }
  while (shared->live_workers > 0) {
    if (!loop_.RunOne()) {
      LOG_WARN << "runner: event loop drained with " << shared->live_workers
               << " workers still live";
      break;
    }
  }
  shared->results.throughput.ops = shared->results.all.count();
  shared->results.throughput.interval = loop_.Now() - shared->start;
  return shared->results;
}

std::vector<std::string> Preload(sim::EventLoop& loop,
                                 std::vector<std::pair<sim::Actor*, ObjectStore*>> clients,
                                 const std::string& prefix, uint64_t count, uint64_t size,
                                 int concurrency) {
  auto loaded = std::make_shared<std::vector<std::string>>();
  auto next = std::make_shared<uint64_t>(0);
  auto live = std::make_shared<int>(concurrency);
  auto worker = [](ObjectStore* store, std::shared_ptr<std::vector<std::string>> loaded,
                   std::shared_ptr<uint64_t> next, std::shared_ptr<int> live,
                   std::string prefix, uint64_t count, uint64_t size) -> sim::Task<> {
    for (;;) {
      const uint64_t i = (*next)++;
      if (i >= count) {
        break;
      }
      std::string name = prefix + std::to_string(i);
      Status s = co_await store->Put(name, std::string(size, 'p'));
      if (s.ok()) {
        loaded->push_back(std::move(name));
      }
    }
    --*live;
  };
  for (int w = 0; w < concurrency; ++w) {
    auto& [actor, store] = clients[w % clients.size()];
    actor->Spawn(worker(store, loaded, next, live, prefix, count, size));
  }
  while (*live > 0 && loop.RunOne()) {
  }
  return *loaded;
}

}  // namespace cheetah::workload
