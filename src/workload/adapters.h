// ObjectStore adapter for Cheetah's client proxy, so the workload runner can
// drive Cheetah and the baselines through one interface.
#ifndef SRC_WORKLOAD_ADAPTERS_H_
#define SRC_WORKLOAD_ADAPTERS_H_

#include "src/core/client_proxy.h"
#include "src/workload/object_store.h"

namespace cheetah::workload {

class CheetahStore : public ObjectStore {
 public:
  explicit CheetahStore(core::ClientProxy* proxy) : proxy_(proxy) {}

  sim::Task<Status> Put(std::string name, std::string data) override {
    return proxy_->Put(std::move(name), std::move(data));
  }
  sim::Task<Result<std::string>> Get(std::string name) override {
    return proxy_->Get(std::move(name));
  }
  sim::Task<Status> Delete(std::string name) override {
    return proxy_->Delete(std::move(name));
  }

 private:
  core::ClientProxy* proxy_;
};

}  // namespace cheetah::workload

#endif  // SRC_WORKLOAD_ADAPTERS_H_
