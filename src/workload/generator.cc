#include "src/workload/generator.h"

namespace cheetah::workload {

SizeDist FixedSize(uint64_t bytes) {
  return [bytes](Rng&) { return bytes; };
}

SizeDist UniformSize(uint64_t lo, uint64_t hi) {
  return [lo, hi](Rng& rng) { return rng.UniformRange(lo, hi); };
}

SizeDist TraceSize() {
  // Fig. 16b buckets: (upper bound KB, cumulative probability).
  struct Bucket {
    uint64_t lo_kb;
    uint64_t hi_kb;
    double prob;
  };
  static const Bucket kBuckets[] = {
      {1, 64, 0.037},   {64, 128, 0.143},  {128, 192, 0.089}, {192, 256, 0.045},
      {256, 320, 0.038}, {320, 384, 0.034}, {384, 448, 0.051}, {448, 512, 0.563},
  };
  return [](Rng& rng) {
    double u = rng.NextDouble();
    for (const auto& b : kBuckets) {
      if (u < b.prob) {
        return KiB(rng.UniformRange(b.lo_kb, b.hi_kb));
      }
      u -= b.prob;
    }
    return KiB(rng.UniformRange(448, 512));
  };
}

Op MixedWorkload::Next(Rng& rng) {
  const double u = rng.NextDouble();
  Op op;
  if (u < put_ratio_ || pool_->empty()) {
    op.type = OpType::kPut;
    op.name = pool_->NextName();
    op.size = sizes_(rng);
    return op;
  }
  if (u < put_ratio_ + delete_ratio_) {
    op.type = OpType::kDelete;
    op.name = pool_->Take(rng);
    return op;
  }
  op.type = OpType::kGet;
  op.name = pool_->Sample(rng);
  return op;
}

std::vector<TraceDay> TraceOpRatios(int days) {
  // Fig. 16a: put dominates (~0.5-0.65), deletes are substantial (~0.2-0.35)
  // because "most objects have a lifecycle", gets are the remainder.
  std::vector<TraceDay> out;
  Rng rng(0x7ace);
  for (int d = 0; d < days; ++d) {
    TraceDay day;
    day.put_ratio = 0.50 + 0.15 * rng.NextDouble();
    day.delete_ratio = 0.20 + 0.15 * rng.NextDouble();
    day.get_ratio = 1.0 - day.put_ratio - day.delete_ratio;
    out.push_back(day);
  }
  return out;
}

}  // namespace cheetah::workload
