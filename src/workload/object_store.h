// The client-facing object store interface (put/get/delete, §1) that every
// evaluated system implements: Cheetah (and its variants), Haystack,
// Tectonic, and the Ceph-like store. The workload runner drives this
// interface so all systems see byte-identical request streams.
#ifndef SRC_WORKLOAD_OBJECT_STORE_H_
#define SRC_WORKLOAD_OBJECT_STORE_H_

#include <string>

#include "src/common/status.h"
#include "src/sim/task.h"

namespace cheetah::workload {

class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  virtual sim::Task<Status> Put(std::string name, std::string data) = 0;
  virtual sim::Task<Result<std::string>> Get(std::string name) = 0;
  virtual sim::Task<Status> Delete(std::string name) = 0;
};

}  // namespace cheetah::workload

#endif  // SRC_WORKLOAD_OBJECT_STORE_H_
