#include "src/baselines/haystack.h"

#include <algorithm>

#include "src/common/coding.h"
#include "src/common/crc32c.h"
#include "src/common/logging.h"
#include "src/sim/sync.h"

namespace cheetah::baselines {

namespace {

std::string EncodeDirEntry(uint32_t volume) {
  std::string out;
  PutVarint64(&out, volume);
  return out;
}

Result<uint32_t> DecodeDirEntry(std::string_view data) {
  uint64_t v = 0;
  if (!GetVarint64(&data, &v)) {
    return Status::Corruption("dir entry");
  }
  return static_cast<uint32_t>(v);
}

}  // namespace

// ---- directory ----

HaystackDirectory::HaystackDirectory(rpc::Node& rpc, const HaystackConfig& config,
                                     bool primary, std::vector<sim::NodeId> dir_peers)
    : rpc_(rpc), config_(config), primary_(primary), dir_peers_(std::move(dir_peers)) {}

sim::Task<Status> HaystackDirectory::Start() {
  kv::Options opts;
  opts.name = "hsdir";
  auto db = co_await kv::DB::Open(std::move(opts), &rpc_.machine().disk(0));
  if (!db.ok()) {
    co_return db.status();
  }
  db_ = std::move(*db);
  rpc_.Serve<HsAssignRequest>([this](sim::NodeId src, HsAssignRequest req) {
    return HandleAssign(src, std::move(req));
  });
  rpc_.Serve<HsLookupRequest>([this](sim::NodeId src, HsLookupRequest req) {
    return HandleLookup(src, std::move(req));
  });
  rpc_.Serve<HsDirDeleteRequest>([this](sim::NodeId src, HsDirDeleteRequest req) {
    return HandleDelete(src, std::move(req));
  });
  rpc_.Serve<HsDirReplicateRequest>([this](sim::NodeId src, HsDirReplicateRequest req) {
    return HandleReplicate(src, std::move(req));
  });
  co_return Status::Ok();
}

sim::Task<Status> HaystackDirectory::ReplicateToPeers(std::string key, std::string value) {
  std::vector<sim::Task<Status>> tasks;
  for (sim::NodeId peer : dir_peers_) {
    if (peer == rpc_.id()) {
      continue;
    }
    tasks.push_back([](HaystackDirectory* self, sim::NodeId peer, std::string key,
                       std::string value) -> sim::Task<Status> {
      HsDirReplicateRequest rep;
      rep.key = std::move(key);
      rep.value = std::move(value);
      auto r = co_await self->rpc_.Call(peer, std::move(rep), self->config_.rpc_timeout);
      co_return r.ok() ? Status::Ok() : r.status();
    }(this, peer, key, value));
  }
  auto results = co_await sim::WhenAll(std::move(tasks));
  for (const Status& s : results) {
    if (!s.ok()) {
      co_return s;
    }
  }
  co_return Status::Ok();
}

sim::Task<Result<HsAssignReply>> HaystackDirectory::HandleAssign(sim::NodeId src,
                                                                 HsAssignRequest req) {
  if (!primary_ || db_ == nullptr) {
    co_return Status::Unavailable("not the primary directory");
  }
  co_await rpc_.machine().cpu().Use(config_.dir_op_cpu);
  // Immutability: reject a second put of a live name.
  auto existing = co_await db_->Get("V_" + req.name);
  if (existing.ok()) {
    co_return Status::AlreadyExists("object exists (immutable)");
  }
  // Round-robin over volumes with room.
  VolumeInfo* chosen = nullptr;
  for (size_t i = 0; i < volumes_.size(); ++i) {
    VolumeInfo& v = volumes_[(assign_cursor_ + i) % volumes_.size()];
    if (v.assigned_bytes + req.size <= v.capacity) {
      chosen = &v;
      assign_cursor_ = (assign_cursor_ + i + 1) % volumes_.size();
      break;
    }
  }
  if (chosen == nullptr) {
    co_return Status::ResourceExhausted("all volumes full");
  }
  chosen->assigned_bytes += req.size;
  // Persist the volume metadata Mv before replying (Fig. 1 step (3)); the
  // reply may not precede persistence or a failed put could orphan data.
  const std::string key = "V_" + req.name;
  const std::string value = EncodeDirEntry(chosen->id);
  std::vector<sim::Task<Status>> tasks;
  tasks.push_back(db_->Put(key, value));
  tasks.push_back(ReplicateToPeers(key, value));
  auto results = co_await sim::WhenAll(std::move(tasks));
  for (const Status& s : results) {
    if (!s.ok()) {
      co_return s;
    }
  }
  HsAssignReply reply;
  reply.volume = chosen->id;
  reply.stores = chosen->stores;
  co_return reply;
}

sim::Task<Result<HsLookupReply>> HaystackDirectory::HandleLookup(sim::NodeId src,
                                                                 HsLookupRequest req) {
  if (db_ == nullptr) {
    co_return Status::Unavailable("initializing");
  }
  co_await rpc_.machine().cpu().Use(config_.dir_op_cpu);
  auto value = co_await db_->Get("V_" + req.name);
  if (!value.ok()) {
    co_return value.status();
  }
  auto volume = DecodeDirEntry(*value);
  if (!volume.ok()) {
    co_return volume.status();
  }
  HsLookupReply reply;
  reply.volume = *volume;
  for (const auto& v : volumes_) {
    if (v.id == *volume) {
      reply.stores = v.stores;
      break;
    }
  }
  co_return reply;
}

sim::Task<Result<HsDirDeleteReply>> HaystackDirectory::HandleDelete(sim::NodeId src,
                                                                    HsDirDeleteRequest req) {
  if (!primary_ || db_ == nullptr) {
    co_return Status::Unavailable("not the primary directory");
  }
  co_await rpc_.machine().cpu().Use(config_.dir_op_cpu);
  auto existing = co_await db_->Get("V_" + req.name);
  if (!existing.ok()) {
    co_return existing.status();
  }
  std::vector<sim::Task<Status>> tasks;
  tasks.push_back(db_->Delete("V_" + req.name));
  tasks.push_back(ReplicateToPeers("V_" + req.name, ""));
  auto results = co_await sim::WhenAll(std::move(tasks));
  for (const Status& s : results) {
    if (!s.ok()) {
      co_return s;
    }
  }
  co_return HsDirDeleteReply{};
}

sim::Task<Result<HsDirReplicateReply>> HaystackDirectory::HandleReplicate(
    sim::NodeId src, HsDirReplicateRequest req) {
  if (db_ == nullptr) {
    co_return Status::Unavailable("initializing");
  }
  // Note: two separate statements — GCC 12 miscompiles co_await inside a
  // conditional expression.
  Status s;
  if (req.value.empty()) {
    s = co_await db_->Delete(req.key);
  } else {
    s = co_await db_->Put(req.key, req.value);
  }
  if (!s.ok()) {
    co_return s;
  }
  co_return HsDirReplicateReply{};
}

// ---- store ----

HaystackStore::HaystackStore(rpc::Node& rpc, const HaystackConfig& config)
    : rpc_(rpc),
      config_(config),
      scope_("haystack@" + std::to_string(rpc.id())),
      counters_{scope_.counter("writes"),      scope_.counter("reads"),
                scope_.counter("flags"),       scope_.counter("checkpoints"),
                scope_.counter("compactions"), scope_.counter("compacted_bytes")} {}

void HaystackStore::Start() {
  rpc_.Serve<HsWriteRequest>([this](sim::NodeId src, HsWriteRequest req) {
    return HandleWrite(src, std::move(req));
  });
  rpc_.Serve<HsReadRequest>([this](sim::NodeId src, HsReadRequest req) {
    return HandleRead(src, std::move(req));
  });
  rpc_.Serve<HsFlagRequest>([this](sim::NodeId src, HsFlagRequest req) {
    return HandleFlag(src, std::move(req));
  });
  rpc_.Serve<HsCompactRequest>([this](sim::NodeId src, HsCompactRequest req) {
    return HandleCompact(src, std::move(req));
  });
  rpc_.machine().actor().Spawn(CheckpointLoop());
}

sim::Task<Result<HsWriteReply>> HaystackStore::HandleWrite(sim::NodeId src,
                                                           HsWriteRequest req) {
  sim::Storage& disk = rpc_.machine().disk(0);
  Volume& vol = volumes_[req.volume];
  // Appending through the filesystem costs a metadata update per needle.
  co_await disk.ChargeWrite(config_.fs_overhead_bytes);
  const uint64_t offset = vol.tail;
  const uint64_t size = req.data.size();
  Status s = co_await disk.WriteBlocks(DeviceName(req.volume, vol.generation), offset,
                                       std::move(req.data), req.checksum);
  if (!s.ok()) {
    co_return s;
  }
  vol.tail += size;
  vol.index[req.name] = Needle{offset, size, req.checksum, false};
  ++vol.dirty;  // Mo lives in memory; the on-disk index lags (§2.2)
  live_bytes_ += size;
  total_bytes_ += size;
  counters_.writes->Add();
  HsWriteReply reply;
  reply.offset = offset;
  co_return reply;
}

sim::Task<Result<HsReadReply>> HaystackStore::HandleRead(sim::NodeId src, HsReadRequest req) {
  auto vit = volumes_.find(req.volume);
  if (vit == volumes_.end()) {
    co_return Status::NotFound("no such volume");
  }
  auto nit = vit->second.index.find(req.name);
  if (nit == vit->second.index.end() || nit->second.deleted) {
    co_return Status::NotFound("needle absent or deleted");
  }
  sim::Storage& disk = rpc_.machine().disk(0);
  // Read in-volume filesystem metadata, then the needle (§6.1's explanation
  // of the get gap).
  co_await disk.ChargeRead(config_.fs_overhead_bytes);
  auto data = co_await disk.ReadBlocks(DeviceName(req.volume, vit->second.generation),
                                       nit->second.offset, nit->second.size);
  if (!data.ok()) {
    co_return data.status();
  }
  counters_.reads->Add();
  HsReadReply reply;
  reply.data = std::move(*data);
  reply.checksum = nit->second.checksum;
  co_return reply;
}

sim::Task<Result<HsFlagReply>> HaystackStore::HandleFlag(sim::NodeId src, HsFlagRequest req) {
  auto vit = volumes_.find(req.volume);
  if (vit == volumes_.end()) {
    co_return Status::NotFound("no such volume");
  }
  auto nit = vit->second.index.find(req.name);
  if (nit == vit->second.index.end() || nit->second.deleted) {
    co_return Status::NotFound("needle absent");
  }
  // Persist the deletion flag (a small synchronous write into the volume).
  sim::Storage& disk = rpc_.machine().disk(0);
  co_await disk.ChargeWrite(config_.fs_overhead_bytes);
  co_await disk.ChargeFsync();
  nit->second.deleted = true;
  vit->second.dead_bytes += nit->second.size;
  live_bytes_ -= nit->second.size;
  ++vit->second.dirty;
  counters_.flags->Add();
  co_return HsFlagReply{};
}

sim::Task<Result<HsCompactReply>> HaystackStore::HandleCompact(sim::NodeId src,
                                                               HsCompactRequest req) {
  auto vit = volumes_.find(req.volume);
  if (vit == volumes_.end()) {
    co_return Status::NotFound("no such volume");
  }
  Volume& vol = vit->second;
  sim::Storage& disk = rpc_.machine().disk(0);
  // Rewrite live needles into a fresh volume file (next generation): read +
  // write every live byte — the I/O amplification §4.3.3 describes.
  uint64_t new_tail = 0;
  uint64_t rewritten = 0;
  std::unordered_map<std::string, Needle> new_index;
  const std::string old_dev = DeviceName(req.volume, vol.generation);
  const std::string new_dev = DeviceName(req.volume, vol.generation + 1);
  for (auto& [name, needle] : vol.index) {
    if (needle.deleted) {
      disk.DiscardBlocks(old_dev, needle.offset);
      continue;
    }
    auto data = co_await disk.ReadBlocks(old_dev, needle.offset, needle.size);
    if (!data.ok()) {
      continue;
    }
    disk.DiscardBlocks(old_dev, needle.offset);
    co_await disk.ChargeWrite(config_.fs_overhead_bytes);
    (void)co_await disk.WriteBlocks(new_dev, new_tail, std::move(*data), needle.checksum);
    new_index[name] = Needle{new_tail, needle.size, needle.checksum, false};
    new_tail += needle.size;
    rewritten += needle.size;
  }
  total_bytes_ -= vol.dead_bytes;
  vol.index = std::move(new_index);
  vol.tail = new_tail;
  vol.dead_bytes = 0;
  ++vol.generation;
  ++vol.dirty;
  counters_.compactions->Add();
  counters_.compacted_bytes->Add(rewritten);
  HsCompactReply reply;
  reply.bytes_rewritten = rewritten;
  co_return reply;
}

sim::Task<> HaystackStore::CheckpointLoop() {
  // Asynchronous checkpoint of the in-memory index (§2.2: effective for
  // read-heavy loads, but under write-heavy loads the on-disk index lags).
  for (;;) {
    co_await sim::SleepFor(config_.checkpoint_interval);
    sim::Storage& disk = rpc_.machine().disk(0);
    for (auto& [id, vol] : volumes_) {
      if (vol.dirty == 0) {
        continue;
      }
      const uint64_t bytes = vol.index.size() * 64 + 1024;
      (void)co_await disk.WriteFile(IndexFile(id), std::string(1, 'i'), /*sync=*/true);
      co_await disk.ChargeWrite(bytes);
      vol.dirty = 0;
      counters_.checkpoints->Add();
    }
  }
}

// ---- client ----

HaystackClient::HaystackClient(rpc::Node& rpc, const HaystackConfig& config,
                               sim::NodeId primary_dir, uint64_t seed)
    : rpc_(rpc), config_(config), primary_dir_(primary_dir), rng_(seed) {}

sim::Task<Status> HaystackClient::Put(std::string name, std::string data) {
  const uint32_t checksum = Crc32c(data);
  // (1) Write-ahead meta-log Ml on the client's own disk (Fig. 1 step 1).
  const std::string log_entry = name + "|" + std::to_string(checksum);
  CO_RETURN_IF_ERROR(
      co_await rpc_.machine().disk(0).Append("hs_mlog", log_entry, /*sync=*/true));
  // (2) Directory assigns and persists Mv, then replies.
  HsAssignRequest assign;
  assign.name = name;
  assign.size = data.size();
  auto assigned = co_await rpc_.Call(primary_dir_, std::move(assign), config_.rpc_timeout);
  if (!assigned.ok()) {
    co_return assigned.status();
  }
  // (3) Write the needle to all n stores in parallel; each persists data+Mo.
  std::vector<sim::Task<Status>> tasks;
  for (sim::NodeId store : assigned->stores) {
    tasks.push_back([](HaystackClient* self, sim::NodeId store, uint32_t volume,
                       std::string name, std::string data,
                       uint32_t checksum) -> sim::Task<Status> {
      HsWriteRequest write;
      write.volume = volume;
      write.name = std::move(name);
      write.data = std::move(data);
      write.checksum = checksum;
      auto r = co_await self->rpc_.Call(store, std::move(write), self->config_.rpc_timeout);
      co_return r.ok() ? Status::Ok() : r.status();
    }(this, store, assigned->volume, name, data, checksum));
  }
  auto results = co_await sim::WhenAll(std::move(tasks));
  for (const Status& s : results) {
    if (!s.ok()) {
      co_return s;
    }
  }
  co_return Status::Ok();
}

sim::Task<Result<std::string>> HaystackClient::Get(std::string name) {
  HsLookupRequest lookup;
  lookup.name = name;
  auto found = co_await rpc_.Call(primary_dir_, std::move(lookup), config_.rpc_timeout);
  if (!found.ok()) {
    co_return found.status();
  }
  if (found->stores.empty()) {
    co_return Status::Internal("volume without stores");
  }
  const sim::NodeId store = found->stores[rng_.Uniform(found->stores.size())];
  HsReadRequest read;
  read.volume = found->volume;
  read.name = std::move(name);
  auto r = co_await rpc_.Call(store, std::move(read), config_.rpc_timeout);
  if (!r.ok()) {
    co_return r.status();
  }
  co_return std::move(r->data);
}

sim::Task<Status> HaystackClient::Delete(std::string name) {
  // §2.2's three steps: query the directory, update every store's offset
  // metadata, update the directory.
  HsLookupRequest lookup;
  lookup.name = name;
  auto found = co_await rpc_.Call(primary_dir_, std::move(lookup), config_.rpc_timeout);
  if (!found.ok()) {
    co_return found.status();
  }
  std::vector<sim::Task<Status>> tasks;
  for (sim::NodeId store : found->stores) {
    tasks.push_back([](HaystackClient* self, sim::NodeId store, uint32_t volume,
                       std::string name) -> sim::Task<Status> {
      HsFlagRequest flag;
      flag.volume = volume;
      flag.name = std::move(name);
      auto r = co_await self->rpc_.Call(store, std::move(flag), self->config_.rpc_timeout);
      co_return r.ok() ? Status::Ok() : r.status();
    }(this, store, found->volume, name));
  }
  auto results = co_await sim::WhenAll(std::move(tasks));
  for (const Status& s : results) {
    if (!s.ok()) {
      co_return s;
    }
  }
  HsDirDeleteRequest del;
  del.name = std::move(name);
  auto r = co_await rpc_.Call(primary_dir_, std::move(del), config_.rpc_timeout);
  co_return r.ok() ? Status::Ok() : r.status();
}

// ---- cluster ----

HaystackCluster::HaystackCluster(sim::EventLoop& loop, HaystackConfig config)
    : loop_(loop), config_(std::move(config)), net_(loop, config_.net) {
  sim::NodeId next_id = 1000;
  std::vector<sim::NodeId> dir_nodes;
  for (int i = 0; i < config_.directory_machines; ++i) {
    dir_nodes.push_back(next_id + i);
  }
  for (int i = 0; i < config_.directory_machines; ++i) {
    DirBundle b;
    sim::MachineParams params;
    params.disk = config_.disk;
    b.machine = std::make_unique<sim::Machine>(loop_, dir_nodes[i],
                                               "hsdir" + std::to_string(i), params);
    b.rpc = std::make_unique<rpc::Node>(*b.machine, net_);
    b.rpc->Attach();
    b.server = std::make_unique<HaystackDirectory>(*b.rpc, config_, i == 0, dir_nodes);
    dirs_.push_back(std::move(b));
  }
  next_id += config_.directory_machines;
  for (int i = 0; i < config_.store_machines; ++i) {
    StoreBundle b;
    sim::MachineParams params;
    params.disk = config_.disk;
    b.machine = std::make_unique<sim::Machine>(loop_, next_id + i,
                                               "hstore" + std::to_string(i), params);
    b.machine->disk(0).set_store_volume_content(config_.store_volume_content);
    b.rpc = std::make_unique<rpc::Node>(*b.machine, net_);
    b.rpc->Attach();
    b.server = std::make_unique<HaystackStore>(*b.rpc, config_);
    stores_.push_back(std::move(b));
  }
  next_id += config_.store_machines;
  for (int i = 0; i < config_.client_machines; ++i) {
    ClientBundle b;
    sim::MachineParams params;
    params.disk = config_.disk;
    b.machine = std::make_unique<sim::Machine>(loop_, next_id + i,
                                               "hsclient" + std::to_string(i), params);
    b.rpc = std::make_unique<rpc::Node>(*b.machine, net_);
    b.rpc->Attach();
    b.client = std::make_unique<HaystackClient>(*b.rpc, config_, dirs_[0].machine->node_id(),
                                                0xba5e + i);
    clients_.push_back(std::move(b));
  }

  // Logical volumes: anchor `volumes_per_store` per store, replicas on the
  // next n-1 stores round-robin.
  uint32_t vol_id = 1;
  for (int s = 0; s < config_.store_machines; ++s) {
    for (uint32_t v = 0; v < config_.volumes_per_store; ++v) {
      HaystackDirectory::VolumeInfo info;
      info.id = vol_id++;
      info.capacity = config_.volume_capacity;
      for (uint32_t r = 0; r < config_.replication; ++r) {
        info.stores.push_back(
            stores_[(s + r) % config_.store_machines].machine->node_id());
      }
      volumes_.push_back(std::move(info));
    }
  }
}

HaystackCluster::~HaystackCluster() = default;

Status HaystackCluster::Boot() {
  auto pending = std::make_shared<int>(static_cast<int>(dirs_.size()));
  auto failed = std::make_shared<bool>(false);
  for (auto& d : dirs_) {
    d.server->InstallVolumes(volumes_);
    d.machine->actor().Spawn(
        [](HaystackDirectory* dir, std::shared_ptr<int> pending,
           std::shared_ptr<bool> failed) -> sim::Task<> {
          Status s = co_await dir->Start();
          if (!s.ok()) {
            *failed = true;
          }
          --*pending;
        }(d.server.get(), pending, failed));
  }
  for (auto& s : stores_) {
    s.server->Start();
  }
  while (*pending > 0 && loop_.RunOne()) {
  }
  loop_.RunFor(Millis(10));
  return *failed ? Status::Internal("directory failed to start") : Status::Ok();
}

void HaystackCluster::TriggerCompactionAll() {
  for (auto& s : stores_) {
    for (const auto& vol : volumes_) {
      if (std::find(vol.stores.begin(), vol.stores.end(), s.machine->node_id()) !=
          vol.stores.end()) {
        HsCompactRequest req;
        req.volume = vol.id;
        clients_[0].rpc->Notify(s.machine->node_id(), std::move(req));
      }
    }
  }
}

}  // namespace cheetah::baselines
