// Ceph-like baseline (Weil et al., OSDI'06; BlueStore), as characterized in
// §6.1 of the Cheetah paper: hash-based placement (CRUSH maps objects' PGs
// straight onto OSDs), a layered OSD pipeline whose processing cost hurts
// latency, local write ordering on the data path (journal before data for
// small objects — the "write logs for small (<=32KB) objects"), and
// expansion-triggered backfill migration (Fig. 14's "Ceph in migration").
//
// The primary OSD coordinates: it journals + writes locally and replicates
// to the n-1 secondaries, acking the client only after every replica
// persisted. get/delete also go through the primary.
#ifndef SRC_BASELINES_CEPH_H_
#define SRC_BASELINES_CEPH_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/crush/crush.h"
#include "src/kv/db.h"
#include "src/obs/metrics.h"
#include "src/rpc/node.h"
#include "src/sim/sync.h"
#include "src/workload/object_store.h"

namespace cheetah::baselines {

struct CephConfig {
  CephConfig() = default;
  int osd_machines = 9;
  int client_machines = 3;
  uint32_t pg_count = 64;
  uint32_t replication = 3;
  Nanos rpc_timeout = Millis(500);
  // Per-op OSD pipeline cost (transaction build, queue hops, crc): the
  // layered-design overhead §6.1 attributes Ceph's latency to.
  Nanos osd_op_cpu = Micros(250);
  uint64_t journal_threshold = KiB(32);  // objects <= this are double-written
  sim::NetParams net;
  sim::DiskParams disk;
  bool store_volume_content = true;
};

// ---- messages ----

struct CWriteReply {
  CWriteReply() = default;
  size_t wire_size() const { return 8; }
};
struct CWriteRequest {
  using Response = CWriteReply;
  CWriteRequest() = default;
  uint64_t epoch = 0;
  uint32_t pg = 0;
  std::string name;
  std::string data;
  uint32_t checksum = 0;
  size_t wire_size() const { return 40 + name.size() + data.size(); }
};

struct CRepWriteReply {
  CRepWriteReply() = default;
  size_t wire_size() const { return 8; }
};
struct CRepWriteRequest {
  using Response = CRepWriteReply;
  CRepWriteRequest() = default;
  uint64_t epoch = 0;
  uint32_t pg = 0;
  std::string name;
  std::string data;
  uint32_t checksum = 0;
  size_t wire_size() const { return 40 + name.size() + data.size(); }
};

struct CReadReply {
  CReadReply() = default;
  std::string data;
  uint32_t checksum = 0;
  size_t wire_size() const { return 16 + data.size(); }
};
struct CReadRequest {
  using Response = CReadReply;
  CReadRequest() = default;
  uint64_t epoch = 0;
  uint32_t pg = 0;
  std::string name;
  size_t wire_size() const { return 32 + name.size(); }
};

struct CDeleteReply {
  CDeleteReply() = default;
  size_t wire_size() const { return 8; }
};
struct CDeleteRequest {
  using Response = CDeleteReply;
  CDeleteRequest() = default;
  uint64_t epoch = 0;
  uint32_t pg = 0;
  std::string name;
  bool replicate = true;  // false on the secondary hop
  size_t wire_size() const { return 32 + name.size(); }
};

// Backfill: the new acting member pulls a PG's objects from a veteran.
struct CBackfillReply {
  CBackfillReply() = default;
  struct Obj {
    Obj() = default;
    std::string name;
    std::string data;
    uint32_t checksum = 0;
  };
  std::vector<Obj> objects;
  uint64_t total_bytes = 0;
  size_t wire_size() const { return 16 + total_bytes + objects.size() * 32; }
};
struct CBackfillRequest {
  using Response = CBackfillReply;
  CBackfillRequest() = default;
  uint32_t pg = 0;
  size_t wire_size() const { return 16; }
};

// ---- OSD ----

class CephOsd {
 public:
  CephOsd(rpc::Node& rpc, const CephConfig& config);
  sim::Task<Status> Start();

  // Installs a new OSD map; backfill of newly-acquired PGs starts in the
  // background against `veteran_of` (the previous acting primary).
  void InstallMap(crush::Map map, uint64_t epoch,
                  const std::map<uint32_t, sim::NodeId>& previous_primaries);

  // Value snapshot of the registry-backed counters ("ceph@<node>#<i>.*").
  struct Stats {
    uint64_t writes = 0;
    uint64_t reads = 0;
    uint64_t journal_bytes = 0;
    uint64_t backfilled_objects = 0;
    uint64_t backfill_bytes = 0;
  };
  Stats stats() const {
    return Stats{counters_.writes->value(), counters_.reads->value(),
                 counters_.journal_bytes->value(), counters_.backfilled_objects->value(),
                 counters_.backfill_bytes->value()};
  }

 private:
  struct ObjInfo {
    uint64_t offset = 0;
    uint64_t size = 0;
    uint32_t checksum = 0;
  };

  // FIFO async mutex: Ceph serializes all ops within a PG (the PG lock).
  struct PgLock {
    bool held = false;
    std::deque<std::shared_ptr<sim::Event>> waiters;
  };
  sim::Task<> LockPg(uint32_t pg);
  void UnlockPg(uint32_t pg);

  sim::Task<Status> LocalWrite(const std::string& name, std::string data,
                               uint32_t checksum);
  sim::Task<Result<CWriteReply>> HandleWrite(sim::NodeId, CWriteRequest req);
  sim::Task<Result<CRepWriteReply>> HandleRepWrite(sim::NodeId, CRepWriteRequest req);
  sim::Task<Result<CReadReply>> HandleRead(sim::NodeId, CReadRequest req);
  sim::Task<Result<CDeleteReply>> HandleDelete(sim::NodeId, CDeleteRequest req);
  sim::Task<Result<CBackfillReply>> HandleBackfill(sim::NodeId, CBackfillRequest req);
  sim::Task<> BackfillPg(uint32_t pg, sim::NodeId source);

  rpc::Node& rpc_;
  CephConfig config_;
  crush::Map map_;
  uint64_t epoch_ = 0;
  std::unique_ptr<kv::DB> db_;  // BlueStore's RocksDB (object metadata)
  std::unordered_map<std::string, ObjInfo> objects_;
  std::map<uint32_t, PgLock> pg_locks_;
  uint64_t tail_ = 0;
  obs::Scope scope_;
  struct {
    obs::Counter* writes;
    obs::Counter* reads;
    obs::Counter* journal_bytes;
    obs::Counter* backfilled_objects;
    obs::Counter* backfill_bytes;
  } counters_;
};

// ---- client ----

class CephClient : public workload::ObjectStore {
 public:
  CephClient(rpc::Node& rpc, const CephConfig& config, uint64_t seed);

  void InstallMap(crush::Map map, uint64_t epoch) {
    map_ = std::move(map);
    epoch_ = epoch;
  }

  sim::Task<Status> Put(std::string name, std::string data) override;
  sim::Task<Result<std::string>> Get(std::string name) override;
  sim::Task<Status> Delete(std::string name) override;

 private:
  rpc::Node& rpc_;
  CephConfig config_;
  crush::Map map_;
  uint64_t epoch_ = 0;
  Rng rng_;
};

// ---- cluster ----

class CephCluster {
 public:
  CephCluster(sim::EventLoop& loop, CephConfig config);
  ~CephCluster();

  Status Boot();

  int num_clients() const { return static_cast<int>(clients_.size()); }
  CephClient& client(int i) { return *clients_.at(i).client; }
  sim::Actor& client_actor(int i) { return clients_.at(i).machine->actor(); }
  CephOsd& osd(int i) { return *osds_.at(i).server; }
  int num_osds() const { return static_cast<int>(osds_.size()); }
  sim::EventLoop& loop() { return loop_; }

  // Expansion: adds an OSD machine, bumps the map epoch, and kicks off
  // backfill of the remapped PGs (the Fig. 14 migration scenario).
  void AddOsd();

  // Failure: removes OSD i from the map (and kills its machine); the new
  // acting members re-replicate its PGs from the surviving replicas
  // (the §6.3 disk-failure recovery comparison).
  void FailOsd(int i);

 private:
  struct OsdBundle {
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<rpc::Node> rpc;
    std::unique_ptr<CephOsd> server;
  };
  struct ClientBundle {
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<rpc::Node> rpc;
    std::unique_ptr<CephClient> client;
  };

  void DisseminateMap(const std::map<uint32_t, sim::NodeId>& previous_primaries);

  sim::EventLoop& loop_;
  CephConfig config_;
  sim::Network net_;
  crush::Map map_;
  uint64_t epoch_ = 1;
  sim::NodeId next_osd_id_ = 3000;
  std::vector<OsdBundle> osds_;
  std::vector<ClientBundle> clients_;
};

}  // namespace cheetah::baselines

#endif  // SRC_BASELINES_CEPH_H_
