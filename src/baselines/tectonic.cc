#include "src/baselines/tectonic.h"

#include "src/common/coding.h"
#include "src/common/crc32c.h"
#include "src/sim/sync.h"

namespace cheetah::baselines {

namespace {

std::string NameKey(const std::string& name) { return "N_" + name; }
std::string FileKey(uint64_t id) { return "F_" + std::to_string(id); }
std::string BlockKey(uint64_t id) { return "B_" + std::to_string(id); }

std::string EncodeU64(uint64_t v) {
  std::string out;
  PutVarint64(&out, v);
  return out;
}
uint64_t DecodeU64(std::string_view data) {
  uint64_t v = 0;
  GetVarint64(&data, &v);
  return v;
}

}  // namespace

// ---- meta server ----

TectonicMetaServer::TectonicMetaServer(rpc::Node& rpc, const TectonicConfig& config,
                                       std::vector<sim::NodeId> stores, uint64_t seed)
    : rpc_(rpc), config_(config), stores_(std::move(stores)), next_id_(seed << 32 | 1) {}

sim::Task<Status> TectonicMetaServer::Start() {
  kv::Options opts;
  opts.name = "tnmeta";
  auto db = co_await kv::DB::Open(std::move(opts), &rpc_.machine().disk(0));
  if (!db.ok()) {
    co_return db.status();
  }
  db_ = std::move(*db);
  rpc_.Serve<TnCreateNameRequest>([this](sim::NodeId src, TnCreateNameRequest req) {
    return HandleCreate(src, std::move(req));
  });
  rpc_.Serve<TnLookupNameRequest>([this](sim::NodeId src, TnLookupNameRequest req) {
    return HandleLookup(src, std::move(req));
  });
  rpc_.Serve<TnDeleteNameRequest>([this](sim::NodeId src, TnDeleteNameRequest req) {
    return HandleDeleteName(src, std::move(req));
  });
  rpc_.Serve<TnFileOpRequest>([this](sim::NodeId src, TnFileOpRequest req) {
    return HandleFileOp(src, std::move(req));
  });
  rpc_.Serve<TnBlockOpRequest>([this](sim::NodeId src, TnBlockOpRequest req) {
    return HandleBlockOp(src, std::move(req));
  });
  co_return Status::Ok();
}

sim::Task<Result<TnCreateNameReply>> TectonicMetaServer::HandleCreate(
    sim::NodeId, TnCreateNameRequest req) {
  if (db_ == nullptr) {
    co_return Status::Unavailable("initializing");
  }
  auto existing = co_await db_->Get(NameKey(req.name));
  if (existing.ok()) {
    co_return Status::AlreadyExists("name exists (immutable)");
  }
  const uint64_t file_id = next_id_++;
  CO_RETURN_IF_ERROR(co_await db_->Put(NameKey(req.name), EncodeU64(file_id)));
  TnCreateNameReply reply;
  reply.file_id = file_id;
  co_return reply;
}

sim::Task<Result<TnLookupNameReply>> TectonicMetaServer::HandleLookup(
    sim::NodeId, TnLookupNameRequest req) {
  if (db_ == nullptr) {
    co_return Status::Unavailable("initializing");
  }
  auto value = co_await db_->Get(NameKey(req.name));
  if (!value.ok()) {
    co_return value.status();
  }
  TnLookupNameReply reply;
  reply.file_id = DecodeU64(*value);
  co_return reply;
}

sim::Task<Result<TnDeleteNameReply>> TectonicMetaServer::HandleDeleteName(
    sim::NodeId, TnDeleteNameRequest req) {
  if (db_ == nullptr) {
    co_return Status::Unavailable("initializing");
  }
  auto value = co_await db_->Get(NameKey(req.name));
  if (!value.ok()) {
    co_return value.status();
  }
  CO_RETURN_IF_ERROR(co_await db_->Delete(NameKey(req.name)));
  co_return TnDeleteNameReply{};
}

sim::Task<Result<TnFileOpReply>> TectonicMetaServer::HandleFileOp(sim::NodeId,
                                                                  TnFileOpRequest req) {
  if (db_ == nullptr) {
    co_return Status::Unavailable("initializing");
  }
  TnFileOpReply reply;
  switch (req.op) {
    case 0: {  // append a block to the file
      const uint64_t block_id = next_id_++;
      CO_RETURN_IF_ERROR(co_await db_->Put(FileKey(req.file_id), EncodeU64(block_id)));
      reply.block_id = block_id;
      co_return reply;
    }
    case 1: {  // lookup
      auto value = co_await db_->Get(FileKey(req.file_id));
      if (!value.ok()) {
        co_return value.status();
      }
      reply.block_id = DecodeU64(*value);
      co_return reply;
    }
    case 2: {  // remove
      CO_RETURN_IF_ERROR(co_await db_->Delete(FileKey(req.file_id)));
      co_return reply;
    }
    default:
      co_return Status::InvalidArgument("file op");
  }
}

sim::Task<Result<TnBlockOpReply>> TectonicMetaServer::HandleBlockOp(sim::NodeId,
                                                                    TnBlockOpRequest req) {
  if (db_ == nullptr) {
    co_return Status::Unavailable("initializing");
  }
  TnBlockOpReply reply;
  switch (req.op) {
    case 0: {  // allocate: choose n chunk stores round-robin, persist
      const uint64_t chunk_id = next_id_++;
      std::string value;
      PutVarint64(&value, chunk_id);
      PutVarint64(&value, config_.replication);
      for (uint32_t r = 0; r < config_.replication; ++r) {
        const sim::NodeId store = stores_[(store_cursor_ + r) % stores_.size()];
        PutVarint64(&value, store);
        reply.stores.push_back(store);
      }
      store_cursor_ = (store_cursor_ + 1) % stores_.size();
      CO_RETURN_IF_ERROR(co_await db_->Put(BlockKey(req.block_id), value));
      reply.chunk_id = chunk_id;
      co_return reply;
    }
    case 1: {  // lookup
      auto value = co_await db_->Get(BlockKey(req.block_id));
      if (!value.ok()) {
        co_return value.status();
      }
      std::string_view data = *value;
      uint64_t chunk = 0, n = 0;
      GetVarint64(&data, &chunk);
      GetVarint64(&data, &n);
      reply.chunk_id = chunk;
      for (uint64_t i = 0; i < n; ++i) {
        uint64_t s = 0;
        GetVarint64(&data, &s);
        reply.stores.push_back(static_cast<sim::NodeId>(s));
      }
      co_return reply;
    }
    case 2: {  // seal (persist the commit record)
      CO_RETURN_IF_ERROR(
          co_await db_->Put(BlockKey(req.block_id) + "_sealed", "1"));
      co_return reply;
    }
    case 3: {  // remove
      kv::WriteBatch batch;
      batch.Delete(BlockKey(req.block_id));
      batch.Delete(BlockKey(req.block_id) + "_sealed");
      CO_RETURN_IF_ERROR(co_await db_->Write(std::move(batch)));
      co_return reply;
    }
    default:
      co_return Status::InvalidArgument("block op");
  }
}

// ---- store server ----

TectonicStoreServer::TectonicStoreServer(rpc::Node& rpc, const TectonicConfig& config)
    : rpc_(rpc), config_(config) {}

void TectonicStoreServer::Start() {
  rpc_.Serve<TnChunkWriteRequest>(
      [this](sim::NodeId, TnChunkWriteRequest req) -> sim::Task<Result<TnChunkWriteReply>> {
        sim::Storage& disk = rpc_.machine().disk(0);
        co_await disk.ChargeWrite(config_.fs_overhead_bytes);  // chunk-file metadata
        const uint64_t offset = tail_;
        const uint64_t size = req.data.size();
        Status s = co_await disk.WriteBlocks("tchunks", offset, std::move(req.data),
                                             req.checksum);
        if (!s.ok()) {
          co_return s;
        }
        chunk_offsets_[req.chunk_id] = {offset, size};
        tail_ += size;
        co_return TnChunkWriteReply{};
      });
  rpc_.Serve<TnChunkReadRequest>(
      [this](sim::NodeId, TnChunkReadRequest req) -> sim::Task<Result<TnChunkReadReply>> {
        auto it = chunk_offsets_.find(req.chunk_id);
        if (it == chunk_offsets_.end()) {
          co_return Status::NotFound("no such chunk");
        }
        sim::Storage& disk = rpc_.machine().disk(0);
        co_await disk.ChargeRead(config_.fs_overhead_bytes);
        auto data = co_await disk.ReadBlocks("tchunks", it->second.first, it->second.second);
        if (!data.ok()) {
          co_return data.status();
        }
        TnChunkReadReply reply;
        reply.data = std::move(*data);
        if (auto crc = disk.PeekChecksum("tchunks", it->second.first)) {
          reply.checksum = *crc;
        }
        co_return reply;
      });
  rpc_.Serve<TnChunkDropRequest>(
      [this](sim::NodeId, TnChunkDropRequest req) -> sim::Task<Result<TnChunkDropReply>> {
        auto it = chunk_offsets_.find(req.chunk_id);
        if (it != chunk_offsets_.end()) {
          rpc_.machine().disk(0).DiscardBlocks("tchunks", it->second.first);
          chunk_offsets_.erase(it);
        }
        co_return TnChunkDropReply{};
      });
}

// ---- client ----

TectonicClient::TectonicClient(rpc::Node& rpc, const TectonicConfig& config,
                               std::vector<sim::NodeId> meta_nodes, uint64_t seed)
    : rpc_(rpc), config_(config), meta_nodes_(std::move(meta_nodes)), rng_(seed) {}

sim::Task<Status> TectonicClient::Put(std::string name, std::string data) {
  const uint32_t checksum = Crc32c(data);
  // Layer walk, each hop persisting before replying (recursive RPCs).
  TnCreateNameRequest create;
  create.name = name;
  auto created = co_await rpc_.Call(ShardForName(name), std::move(create),
                                    config_.rpc_timeout);
  if (!created.ok()) {
    co_return created.status();
  }
  TnFileOpRequest file_op;
  file_op.file_id = created->file_id;
  file_op.op = 0;
  auto block = co_await rpc_.Call(ShardFor(created->file_id), std::move(file_op),
                                  config_.rpc_timeout);
  if (!block.ok()) {
    co_return block.status();
  }
  TnBlockOpRequest alloc;
  alloc.block_id = block->block_id;
  alloc.size = data.size();
  alloc.op = 0;
  auto placed = co_await rpc_.Call(ShardFor(block->block_id), std::move(alloc),
                                   config_.rpc_timeout);
  if (!placed.ok()) {
    co_return placed.status();
  }
  // Chunk writes go to the n stores in parallel.
  std::vector<sim::Task<Status>> tasks;
  for (sim::NodeId store : placed->stores) {
    tasks.push_back([](TectonicClient* self, sim::NodeId store, uint64_t chunk_id,
                       std::string data, uint32_t checksum) -> sim::Task<Status> {
      TnChunkWriteRequest write;
      write.chunk_id = chunk_id;
      write.data = std::move(data);
      write.checksum = checksum;
      auto r = co_await self->rpc_.Call(store, std::move(write), self->config_.rpc_timeout);
      co_return r.ok() ? Status::Ok() : r.status();
    }(this, store, placed->chunk_id, data, checksum));
  }
  auto results = co_await sim::WhenAll(std::move(tasks));
  for (const Status& s : results) {
    if (!s.ok()) {
      co_return s;
    }
  }
  // Seal/commit.
  TnBlockOpRequest seal;
  seal.block_id = block->block_id;
  seal.op = 2;
  auto sealed = co_await rpc_.Call(ShardFor(block->block_id), std::move(seal),
                                   config_.rpc_timeout);
  co_return sealed.ok() ? Status::Ok() : sealed.status();
}

sim::Task<Result<std::string>> TectonicClient::Get(std::string name) {
  TnLookupNameRequest lookup;
  lookup.name = name;
  auto found = co_await rpc_.Call(ShardForName(name), std::move(lookup),
                                  config_.rpc_timeout);
  if (!found.ok()) {
    co_return found.status();
  }
  TnFileOpRequest file_op;
  file_op.file_id = found->file_id;
  file_op.op = 1;
  auto block = co_await rpc_.Call(ShardFor(found->file_id), std::move(file_op),
                                  config_.rpc_timeout);
  if (!block.ok()) {
    co_return block.status();
  }
  TnBlockOpRequest block_op;
  block_op.block_id = block->block_id;
  block_op.op = 1;
  auto placed = co_await rpc_.Call(ShardFor(block->block_id), std::move(block_op),
                                   config_.rpc_timeout);
  if (!placed.ok()) {
    co_return placed.status();
  }
  if (placed->stores.empty()) {
    co_return Status::Internal("block without stores");
  }
  TnChunkReadRequest read;
  read.chunk_id = placed->chunk_id;
  const sim::NodeId store = placed->stores[rng_.Uniform(placed->stores.size())];
  auto data = co_await rpc_.Call(store, std::move(read), config_.rpc_timeout);
  if (!data.ok()) {
    co_return data.status();
  }
  co_return std::move(data->data);
}

sim::Task<Status> TectonicClient::Delete(std::string name) {
  const sim::NodeId name_shard = ShardForName(name);
  TnLookupNameRequest lookup;
  lookup.name = name;
  auto found = co_await rpc_.Call(name_shard, std::move(lookup), config_.rpc_timeout);
  if (!found.ok()) {
    co_return found.status();
  }
  TnFileOpRequest file_op;
  file_op.file_id = found->file_id;
  file_op.op = 1;
  auto block = co_await rpc_.Call(ShardFor(found->file_id), std::move(file_op),
                                  config_.rpc_timeout);
  if (!block.ok()) {
    co_return block.status();
  }
  TnBlockOpRequest block_op;
  block_op.block_id = block->block_id;
  block_op.op = 1;
  auto placed = co_await rpc_.Call(ShardFor(block->block_id), std::move(block_op),
                                   config_.rpc_timeout);

  TnDeleteNameRequest del;
  del.name = std::move(name);
  auto deleted = co_await rpc_.Call(name_shard, std::move(del), config_.rpc_timeout);
  if (!deleted.ok()) {
    co_return deleted.status();
  }
  TnFileOpRequest remove_file;
  remove_file.file_id = found->file_id;
  remove_file.op = 2;
  (void)co_await rpc_.Call(ShardFor(found->file_id), std::move(remove_file),
                           config_.rpc_timeout);
  TnBlockOpRequest remove_block;
  remove_block.block_id = block->block_id;
  remove_block.op = 3;
  (void)co_await rpc_.Call(ShardFor(block->block_id), std::move(remove_block),
                           config_.rpc_timeout);
  if (placed.ok()) {
    for (sim::NodeId store : placed->stores) {
      TnChunkDropRequest drop;
      drop.chunk_id = placed->chunk_id;
      rpc_.Notify(store, std::move(drop));
    }
  }
  co_return Status::Ok();
}

// ---- cluster ----

TectonicCluster::TectonicCluster(sim::EventLoop& loop, TectonicConfig config)
    : loop_(loop), config_(std::move(config)), net_(loop, config_.net) {
  sim::NodeId next_id = 2000;
  std::vector<sim::NodeId> meta_nodes;
  std::vector<sim::NodeId> store_nodes;
  for (int i = 0; i < config_.meta_machines; ++i) {
    meta_nodes.push_back(next_id++);
  }
  for (int i = 0; i < config_.store_machines; ++i) {
    store_nodes.push_back(next_id++);
  }
  for (int i = 0; i < config_.meta_machines; ++i) {
    MetaBundle b;
    sim::MachineParams params;
    params.disk = config_.disk;
    b.machine = std::make_unique<sim::Machine>(loop_, meta_nodes[i],
                                               "tnmeta" + std::to_string(i), params);
    b.rpc = std::make_unique<rpc::Node>(*b.machine, net_);
    b.rpc->Attach();
    b.server = std::make_unique<TectonicMetaServer>(*b.rpc, config_, store_nodes, i + 1);
    metas_.push_back(std::move(b));
  }
  for (int i = 0; i < config_.store_machines; ++i) {
    StoreBundle b;
    sim::MachineParams params;
    params.disk = config_.disk;
    b.machine = std::make_unique<sim::Machine>(loop_, store_nodes[i],
                                               "tnstore" + std::to_string(i), params);
    b.machine->disk(0).set_store_volume_content(config_.store_volume_content);
    b.rpc = std::make_unique<rpc::Node>(*b.machine, net_);
    b.rpc->Attach();
    b.server = std::make_unique<TectonicStoreServer>(*b.rpc, config_);
    stores_.push_back(std::move(b));
  }
  for (int i = 0; i < config_.client_machines; ++i) {
    ClientBundle b;
    sim::MachineParams params;
    params.disk = config_.disk;
    b.machine = std::make_unique<sim::Machine>(loop_, next_id + i,
                                               "tnclient" + std::to_string(i), params);
    b.rpc = std::make_unique<rpc::Node>(*b.machine, net_);
    b.rpc->Attach();
    b.client = std::make_unique<TectonicClient>(*b.rpc, config_, meta_nodes, 0x7ec70 + i);
    clients_.push_back(std::move(b));
  }
}

TectonicCluster::~TectonicCluster() = default;

Status TectonicCluster::Boot() {
  auto pending = std::make_shared<int>(static_cast<int>(metas_.size()));
  auto failed = std::make_shared<bool>(false);
  for (auto& m : metas_) {
    m.machine->actor().Spawn([](TectonicMetaServer* server, std::shared_ptr<int> pending,
                                std::shared_ptr<bool> failed) -> sim::Task<> {
      Status s = co_await server->Start();
      if (!s.ok()) {
        *failed = true;
      }
      --*pending;
    }(m.server.get(), pending, failed));
  }
  for (auto& s : stores_) {
    s.server->Start();
  }
  while (*pending > 0 && loop_.RunOne()) {
  }
  loop_.RunFor(Millis(10));
  return *failed ? Status::Internal("tectonic meta failed to start") : Status::Ok();
}

}  // namespace cheetah::baselines
