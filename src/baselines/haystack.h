// Haystack baseline (Beaver et al., OSDI'10), as characterized in §2.2/§2.3
// of the Cheetah paper: a directory service holds the volume metadata Mv; the
// store machines append needles to large volume files, keeping the offset
// metadata Mo in an in-memory index that is checkpointed asynchronously.
//
// The put path enforces the paper's Fig. 1 distributed write ordering:
//   (1) the client persists a write-ahead meta-log Ml on its own disk, then
//   (2) the directory persists Mv (replicated synchronously) and replies, then
//   (3) the n stores persist needle data + Mo and reply.
// Each arrow is a wait on persistence — the serialization Cheetah removes.
//
// delete is the three-step §2.2 sequence: query the directory, flag the
// needle on every store, update the directory. Space comes back only via
// compaction (Fig. 19), which rewrites a volume's live needles.
#ifndef SRC_BASELINES_HAYSTACK_H_
#define SRC_BASELINES_HAYSTACK_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/kv/db.h"
#include "src/obs/metrics.h"
#include "src/rpc/node.h"
#include "src/workload/object_store.h"

namespace cheetah::baselines {

struct HaystackConfig {
  HaystackConfig() = default;
  int directory_machines = 3;  // one primary + synchronous replicas
  int store_machines = 9;
  int client_machines = 3;
  uint32_t replication = 3;          // store replicas per logical volume
  uint32_t volumes_per_store = 8;    // logical volumes anchored per store
  uint64_t volume_capacity = GiB(4);
  Nanos rpc_timeout = Millis(500);
  Nanos checkpoint_interval = Millis(500);  // async index checkpoint cadence
  // Per-request directory processing cost (§7: "the centralized directory
  // service becomes a significant bottleneck when numerous clients ...
  // access object storage in parallel").
  Nanos dir_op_cpu = Micros(150);
  uint64_t fs_overhead_bytes = 4096;        // XFS metadata per needle op
  sim::NetParams net;
  sim::DiskParams disk;
  bool store_volume_content = true;
};

// ---- messages ----

struct HsAssignReply {
  HsAssignReply() = default;
  uint32_t volume = 0;
  std::vector<sim::NodeId> stores;
  size_t wire_size() const { return 24 + stores.size() * 8; }
};
struct HsAssignRequest {
  using Response = HsAssignReply;
  HsAssignRequest() = default;
  std::string name;
  uint64_t size = 0;
  size_t wire_size() const { return 24 + name.size(); }
};

struct HsLookupReply {
  HsLookupReply() = default;
  uint32_t volume = 0;
  std::vector<sim::NodeId> stores;
  size_t wire_size() const { return 24 + stores.size() * 8; }
};
struct HsLookupRequest {
  using Response = HsLookupReply;
  HsLookupRequest() = default;
  std::string name;
  size_t wire_size() const { return 16 + name.size(); }
};

struct HsDirDeleteReply {
  HsDirDeleteReply() = default;
  size_t wire_size() const { return 8; }
};
struct HsDirDeleteRequest {
  using Response = HsDirDeleteReply;
  HsDirDeleteRequest() = default;
  std::string name;
  size_t wire_size() const { return 16 + name.size(); }
};

struct HsDirReplicateReply {
  HsDirReplicateReply() = default;
  size_t wire_size() const { return 8; }
};
struct HsDirReplicateRequest {
  using Response = HsDirReplicateReply;
  HsDirReplicateRequest() = default;
  std::string key;
  std::string value;  // empty = delete
  size_t wire_size() const { return 16 + key.size() + value.size(); }
};

struct HsWriteReply {
  HsWriteReply() = default;
  uint64_t offset = 0;
  size_t wire_size() const { return 16; }
};
struct HsWriteRequest {
  using Response = HsWriteReply;
  HsWriteRequest() = default;
  uint32_t volume = 0;
  std::string name;
  std::string data;
  uint32_t checksum = 0;
  size_t wire_size() const { return 32 + name.size() + data.size(); }
};

struct HsReadReply {
  HsReadReply() = default;
  std::string data;
  uint32_t checksum = 0;
  size_t wire_size() const { return 16 + data.size(); }
};
struct HsReadRequest {
  using Response = HsReadReply;
  HsReadRequest() = default;
  uint32_t volume = 0;
  std::string name;
  size_t wire_size() const { return 24 + name.size(); }
};

struct HsFlagReply {
  HsFlagReply() = default;
  size_t wire_size() const { return 8; }
};
struct HsFlagRequest {
  using Response = HsFlagReply;
  HsFlagRequest() = default;
  uint32_t volume = 0;
  std::string name;
  size_t wire_size() const { return 24 + name.size(); }
};

struct HsCompactReply {
  HsCompactReply() = default;
  uint64_t bytes_rewritten = 0;
  size_t wire_size() const { return 16; }
};
struct HsCompactRequest {
  using Response = HsCompactReply;
  HsCompactRequest() = default;
  uint32_t volume = 0;
  size_t wire_size() const { return 16; }
};

// ---- servers ----

class HaystackDirectory {
 public:
  HaystackDirectory(rpc::Node& rpc, const HaystackConfig& config, bool primary,
                    std::vector<sim::NodeId> dir_peers);
  sim::Task<Status> Start();

  // Volume layout is installed at boot by the cluster builder.
  struct VolumeInfo {
    uint32_t id = 0;
    std::vector<sim::NodeId> stores;
    uint64_t assigned_bytes = 0;
    uint64_t capacity = 0;
  };
  void InstallVolumes(std::vector<VolumeInfo> volumes) { volumes_ = std::move(volumes); }

 private:
  sim::Task<Result<HsAssignReply>> HandleAssign(sim::NodeId src, HsAssignRequest req);
  sim::Task<Result<HsLookupReply>> HandleLookup(sim::NodeId src, HsLookupRequest req);
  sim::Task<Result<HsDirDeleteReply>> HandleDelete(sim::NodeId src, HsDirDeleteRequest req);
  sim::Task<Result<HsDirReplicateReply>> HandleReplicate(sim::NodeId src,
                                                         HsDirReplicateRequest req);
  sim::Task<Status> ReplicateToPeers(std::string key, std::string value);

  rpc::Node& rpc_;
  HaystackConfig config_;
  bool primary_;
  std::vector<sim::NodeId> dir_peers_;
  std::unique_ptr<kv::DB> db_;
  std::vector<VolumeInfo> volumes_;
  uint32_t assign_cursor_ = 0;
};

class HaystackStore {
 public:
  HaystackStore(rpc::Node& rpc, const HaystackConfig& config);
  void Start();

  // Value snapshot of the registry-backed counters ("haystack@<node>#<i>.*").
  struct Stats {
    uint64_t writes = 0;
    uint64_t reads = 0;
    uint64_t flags = 0;
    uint64_t checkpoints = 0;
    uint64_t compactions = 0;
    uint64_t compacted_bytes = 0;
  };
  Stats stats() const {
    return Stats{counters_.writes->value(),      counters_.reads->value(),
                 counters_.flags->value(),       counters_.checkpoints->value(),
                 counters_.compactions->value(), counters_.compacted_bytes->value()};
  }

  // Bytes of live vs total needle data (storage efficiency, Fig. 18).
  uint64_t live_bytes() const { return live_bytes_; }
  uint64_t total_bytes() const { return total_bytes_; }

 private:
  struct Needle {
    uint64_t offset = 0;
    uint64_t size = 0;
    uint32_t checksum = 0;
    bool deleted = false;
  };
  struct Volume {
    uint64_t tail = 0;
    uint64_t dead_bytes = 0;
    uint32_t generation = 0;  // bumped by compaction (new volume file)
    std::unordered_map<std::string, Needle> index;  // the in-memory Mo KV
    uint64_t dirty = 0;  // index mutations since the last checkpoint
  };

  std::string DeviceName(uint32_t volume, uint32_t generation) const {
    return "hvol_" + std::to_string(volume) + "_g" + std::to_string(generation);
  }
  std::string IndexFile(uint32_t volume) const {
    return "hidx_" + std::to_string(volume);
  }

  sim::Task<Result<HsWriteReply>> HandleWrite(sim::NodeId src, HsWriteRequest req);
  sim::Task<Result<HsReadReply>> HandleRead(sim::NodeId src, HsReadRequest req);
  sim::Task<Result<HsFlagReply>> HandleFlag(sim::NodeId src, HsFlagRequest req);
  sim::Task<Result<HsCompactReply>> HandleCompact(sim::NodeId src, HsCompactRequest req);
  sim::Task<> CheckpointLoop();

  rpc::Node& rpc_;
  HaystackConfig config_;
  std::map<uint32_t, Volume> volumes_;
  uint64_t live_bytes_ = 0;
  uint64_t total_bytes_ = 0;
  obs::Scope scope_;
  struct {
    obs::Counter* writes;
    obs::Counter* reads;
    obs::Counter* flags;
    obs::Counter* checkpoints;
    obs::Counter* compactions;
    obs::Counter* compacted_bytes;
  } counters_;
};

// ---- client ----

class HaystackClient : public workload::ObjectStore {
 public:
  HaystackClient(rpc::Node& rpc, const HaystackConfig& config, sim::NodeId primary_dir,
                 uint64_t seed);

  sim::Task<Status> Put(std::string name, std::string data) override;
  sim::Task<Result<std::string>> Get(std::string name) override;
  sim::Task<Status> Delete(std::string name) override;

 private:
  rpc::Node& rpc_;
  HaystackConfig config_;
  sim::NodeId primary_dir_;
  Rng rng_;
  uint64_t next_log_ = 0;
};

// ---- cluster builder ----

class HaystackCluster {
 public:
  HaystackCluster(sim::EventLoop& loop, HaystackConfig config);
  ~HaystackCluster();

  Status Boot();

  int num_clients() const { return static_cast<int>(clients_.size()); }
  HaystackClient& client(int i) { return *clients_.at(i).client; }
  sim::Actor& client_actor(int i) { return clients_.at(i).machine->actor(); }
  HaystackStore& store(int i) { return *stores_.at(i).server; }
  int num_stores() const { return static_cast<int>(stores_.size()); }

  // Triggers compaction of every volume on every store (Fig. 19) and returns
  // once all compaction RPCs are issued (they proceed in the background).
  void TriggerCompactionAll();

  sim::EventLoop& loop() { return loop_; }

 private:
  struct DirBundle {
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<rpc::Node> rpc;
    std::unique_ptr<HaystackDirectory> server;
  };
  struct StoreBundle {
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<rpc::Node> rpc;
    std::unique_ptr<HaystackStore> server;
  };
  struct ClientBundle {
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<rpc::Node> rpc;
    std::unique_ptr<HaystackClient> client;
  };

  sim::EventLoop& loop_;
  HaystackConfig config_;
  sim::Network net_;
  std::vector<DirBundle> dirs_;
  std::vector<StoreBundle> stores_;
  std::vector<ClientBundle> clients_;
  std::vector<HaystackDirectory::VolumeInfo> volumes_;
};

}  // namespace cheetah::baselines

#endif  // SRC_BASELINES_HAYSTACK_H_
