#include "src/baselines/ceph.h"

#include "src/common/coding.h"
#include "src/common/crc32c.h"
#include "src/common/logging.h"
#include "src/sim/sync.h"

namespace cheetah::baselines {

namespace {
constexpr const char* kDevice = "bluestore";

std::string EncodeObjInfo(uint64_t offset, uint64_t size, uint32_t crc) {
  std::string out;
  PutVarint64(&out, offset);
  PutVarint64(&out, size);
  PutFixed32(&out, crc);
  return out;
}
}  // namespace

// ---- OSD ----

CephOsd::CephOsd(rpc::Node& rpc, const CephConfig& config)
    : rpc_(rpc),
      config_(config),
      scope_("ceph@" + std::to_string(rpc.id())),
      counters_{scope_.counter("writes"), scope_.counter("reads"),
                scope_.counter("journal_bytes"), scope_.counter("backfilled_objects"),
                scope_.counter("backfill_bytes")} {}

sim::Task<Status> CephOsd::Start() {
  kv::Options opts;
  opts.name = "bluekv";
  auto db = co_await kv::DB::Open(std::move(opts), &rpc_.machine().disk(0));
  if (!db.ok()) {
    co_return db.status();
  }
  db_ = std::move(*db);
  rpc_.Serve<CWriteRequest>([this](sim::NodeId src, CWriteRequest req) {
    return HandleWrite(src, std::move(req));
  });
  rpc_.Serve<CRepWriteRequest>([this](sim::NodeId src, CRepWriteRequest req) {
    return HandleRepWrite(src, std::move(req));
  });
  rpc_.Serve<CReadRequest>([this](sim::NodeId src, CReadRequest req) {
    return HandleRead(src, std::move(req));
  });
  rpc_.Serve<CDeleteRequest>([this](sim::NodeId src, CDeleteRequest req) {
    return HandleDelete(src, std::move(req));
  });
  rpc_.Serve<CBackfillRequest>([this](sim::NodeId src, CBackfillRequest req) {
    return HandleBackfill(src, std::move(req));
  });
  co_return Status::Ok();
}

void CephOsd::InstallMap(crush::Map map, uint64_t epoch,
                         const std::map<uint32_t, sim::NodeId>& previous_primaries) {
  const crush::Map old = std::move(map_);
  map_ = std::move(map);
  epoch_ = epoch;
  if (previous_primaries.empty()) {
    return;  // initial map; nothing to backfill
  }
  // PGs whose acting set now includes this OSD but did not before are pulled
  // from the previous primary (backfill). A freshly-added OSD has no old map
  // at all, so every acting PG of its counts as newly acquired.
  for (uint32_t pg = 0; pg < config_.pg_count; ++pg) {
    auto now = map_.Select(pg, config_.replication);
    const bool mine_now =
        std::find(now.begin(), now.end(), rpc_.id()) != now.end();
    bool mine_before = false;
    if (old.size() > 0) {
      auto before = old.Select(pg, config_.replication);
      mine_before = std::find(before.begin(), before.end(), rpc_.id()) != before.end();
    }
    if (mine_now && !mine_before) {
      auto it = previous_primaries.find(pg);
      if (it != previous_primaries.end() && it->second != rpc_.id()) {
        rpc_.machine().actor().Spawn(BackfillPg(pg, it->second));
      }
    }
  }
}

sim::Task<> CephOsd::LockPg(uint32_t pg) {
  PgLock& lock = pg_locks_[pg];
  if (!lock.held) {
    lock.held = true;
    co_return;
  }
  auto waiter = std::make_shared<sim::Event>();
  lock.waiters.push_back(waiter);
  co_await waiter->Wait();  // ownership transferred by UnlockPg
}

void CephOsd::UnlockPg(uint32_t pg) {
  PgLock& lock = pg_locks_[pg];
  if (lock.waiters.empty()) {
    lock.held = false;
    return;
  }
  auto next = lock.waiters.front();
  lock.waiters.pop_front();
  next->Set();
}

sim::Task<Status> CephOsd::LocalWrite(const std::string& name, std::string data,
                                      uint32_t checksum) {
  sim::Storage& disk = rpc_.machine().disk(0);
  const uint64_t size = data.size();
  // Local ordering: journal first (small objects carry their data in the
  // journal — the double write), then data blocks, then the metadata KV.
  const uint64_t journal_bytes = size <= config_.journal_threshold ? size + 512 : 512;
  CO_RETURN_IF_ERROR(co_await disk.Append("journal", std::string(1, 'j'), /*sync=*/false));
  co_await disk.ChargeWrite(journal_bytes);
  co_await disk.ChargeFsync();
  counters_.journal_bytes->Add(journal_bytes);
  const uint64_t offset = tail_;
  CO_RETURN_IF_ERROR(co_await disk.WriteBlocks(kDevice, offset, std::move(data), checksum));
  CO_RETURN_IF_ERROR(co_await db_->Put("O_" + name, EncodeObjInfo(offset, size, checksum)));
  objects_[name] = ObjInfo{offset, size, checksum};
  tail_ += size;
  counters_.writes->Add();
  co_return Status::Ok();
}

sim::Task<Result<CWriteReply>> CephOsd::HandleWrite(sim::NodeId, CWriteRequest req) {
  if (db_ == nullptr) {
    co_return Status::Unavailable("initializing");
  }
  co_await LockPg(req.pg);
  struct Unlocker {
    CephOsd* osd;
    uint32_t pg;
    ~Unlocker() { osd->UnlockPg(pg); }
  } unlocker{this, req.pg};
  co_await rpc_.machine().cpu().Use(config_.osd_op_cpu);
  if (objects_.contains(req.name)) {
    co_return Status::AlreadyExists("object exists (immutable)");
  }
  // Replicate to the secondaries in parallel with the local write.
  auto acting = map_.Select(req.pg, config_.replication);
  std::vector<sim::Task<Status>> tasks;
  tasks.push_back(LocalWrite(req.name, req.data, req.checksum));
  for (crush::ItemId peer : acting) {
    if (peer == rpc_.id()) {
      continue;
    }
    tasks.push_back([](CephOsd* self, sim::NodeId peer, CWriteRequest req)
                        -> sim::Task<Status> {
      CRepWriteRequest rep;
      rep.epoch = req.epoch;
      rep.pg = req.pg;
      rep.name = std::move(req.name);
      rep.data = std::move(req.data);
      rep.checksum = req.checksum;
      auto r = co_await self->rpc_.Call(peer, std::move(rep), self->config_.rpc_timeout);
      co_return r.ok() ? Status::Ok() : r.status();
    }(this, static_cast<sim::NodeId>(peer), req));
  }
  auto results = co_await sim::WhenAll(std::move(tasks));
  for (const Status& s : results) {
    if (!s.ok()) {
      co_return s;
    }
  }
  co_return CWriteReply{};
}

sim::Task<Result<CRepWriteReply>> CephOsd::HandleRepWrite(sim::NodeId, CRepWriteRequest req) {
  if (db_ == nullptr) {
    co_return Status::Unavailable("initializing");
  }
  co_await LockPg(req.pg);
  struct Unlocker {
    CephOsd* osd;
    uint32_t pg;
    ~Unlocker() { osd->UnlockPg(pg); }
  } unlocker{this, req.pg};
  co_await rpc_.machine().cpu().Use(config_.osd_op_cpu);
  CO_RETURN_IF_ERROR(co_await LocalWrite(req.name, std::move(req.data), req.checksum));
  co_return CRepWriteReply{};
}

sim::Task<Result<CReadReply>> CephOsd::HandleRead(sim::NodeId, CReadRequest req) {
  if (db_ == nullptr) {
    co_return Status::Unavailable("initializing");
  }
  co_await LockPg(req.pg);
  struct Unlocker {
    CephOsd* osd;
    uint32_t pg;
    ~Unlocker() { osd->UnlockPg(pg); }
  } unlocker{this, req.pg};
  co_await rpc_.machine().cpu().Use(config_.osd_op_cpu);
  auto it = objects_.find(req.name);
  if (it == objects_.end()) {
    co_return Status::NotFound("no such object");
  }
  sim::Storage& disk = rpc_.machine().disk(0);
  // BlueStore reads metadata from its KV, then the data blocks — the get
  // "needs to read both metadata and data on data servers" (§6.1).
  auto meta = co_await db_->Get("O_" + req.name);
  if (!meta.ok()) {
    co_return meta.status();
  }
  co_await disk.ChargeRead(4096);  // cold metadata block
  auto data = co_await disk.ReadBlocks(kDevice, it->second.offset, it->second.size);
  if (!data.ok()) {
    co_return data.status();
  }
  counters_.reads->Add();
  CReadReply reply;
  reply.data = std::move(*data);
  reply.checksum = it->second.checksum;
  co_return reply;
}

sim::Task<Result<CDeleteReply>> CephOsd::HandleDelete(sim::NodeId, CDeleteRequest req) {
  if (db_ == nullptr) {
    co_return Status::Unavailable("initializing");
  }
  co_await LockPg(req.pg);
  struct Unlocker {
    CephOsd* osd;
    uint32_t pg;
    ~Unlocker() { osd->UnlockPg(pg); }
  } unlocker{this, req.pg};
  co_await rpc_.machine().cpu().Use(config_.osd_op_cpu);
  auto it = objects_.find(req.name);
  if (it == objects_.end()) {
    co_return Status::NotFound("no such object");
  }
  rpc_.machine().disk(0).DiscardBlocks(kDevice, it->second.offset);
  CO_RETURN_IF_ERROR(co_await db_->Delete("O_" + req.name));
  objects_.erase(it);
  if (req.replicate) {
    auto acting = map_.Select(req.pg, config_.replication);
    std::vector<sim::Task<Status>> tasks;
    for (crush::ItemId peer : acting) {
      if (peer == rpc_.id()) {
        continue;
      }
      tasks.push_back([](CephOsd* self, sim::NodeId peer, CDeleteRequest req)
                          -> sim::Task<Status> {
        req.replicate = false;
        auto r = co_await self->rpc_.Call(peer, std::move(req), self->config_.rpc_timeout);
        co_return r.ok() ? Status::Ok() : r.status();
      }(this, static_cast<sim::NodeId>(peer), req));
    }
    auto results = co_await sim::WhenAll(std::move(tasks));
    for (const Status& s : results) {
      if (!s.ok() && !s.IsNotFound()) {
        co_return s;
      }
    }
  }
  co_return CDeleteReply{};
}

sim::Task<Result<CBackfillReply>> CephOsd::HandleBackfill(sim::NodeId, CBackfillRequest req) {
  if (db_ == nullptr) {
    co_return Status::Unavailable("initializing");
  }
  CBackfillReply reply;
  sim::Storage& disk = rpc_.machine().disk(0);
  for (const auto& [name, info] : objects_) {
    if (crush::Map::NameToPg(name, config_.pg_count) != req.pg) {
      continue;
    }
    auto data = co_await disk.ReadBlocks(kDevice, info.offset, info.size);
    if (!data.ok()) {
      continue;
    }
    CBackfillReply::Obj obj;
    obj.name = name;
    obj.data = std::move(*data);
    obj.checksum = info.checksum;
    reply.total_bytes += info.size;
    reply.objects.push_back(std::move(obj));
  }
  co_return reply;
}

sim::Task<> CephOsd::BackfillPg(uint32_t pg, sim::NodeId source) {
  CBackfillRequest req;
  req.pg = pg;
  auto pulled = co_await rpc_.Call(source, std::move(req), Seconds(120));
  if (!pulled.ok()) {
    co_return;
  }
  for (auto& obj : pulled->objects) {
    if (objects_.contains(obj.name)) {
      continue;
    }
    (void)co_await LocalWrite(obj.name, std::move(obj.data), obj.checksum);
    counters_.backfilled_objects->Add();
  }
  counters_.backfill_bytes->Add(pulled->total_bytes);
}

// ---- client ----

CephClient::CephClient(rpc::Node& rpc, const CephConfig& config, uint64_t seed)
    : rpc_(rpc), config_(config), rng_(seed) {}

sim::Task<Status> CephClient::Put(std::string name, std::string data) {
  const uint32_t pg = crush::Map::NameToPg(name, config_.pg_count);
  const sim::NodeId primary = static_cast<sim::NodeId>(map_.Primary(pg));
  CWriteRequest req;
  req.epoch = epoch_;
  req.pg = pg;
  req.checksum = Crc32c(data);
  req.name = std::move(name);
  req.data = std::move(data);
  auto r = co_await rpc_.Call(primary, std::move(req), config_.rpc_timeout);
  co_return r.ok() ? Status::Ok() : r.status();
}

sim::Task<Result<std::string>> CephClient::Get(std::string name) {
  const uint32_t pg = crush::Map::NameToPg(name, config_.pg_count);
  const sim::NodeId primary = static_cast<sim::NodeId>(map_.Primary(pg));
  CReadRequest req;
  req.epoch = epoch_;
  req.pg = pg;
  req.name = std::move(name);
  auto r = co_await rpc_.Call(primary, std::move(req), config_.rpc_timeout);
  if (!r.ok()) {
    co_return r.status();
  }
  co_return std::move(r->data);
}

sim::Task<Status> CephClient::Delete(std::string name) {
  const uint32_t pg = crush::Map::NameToPg(name, config_.pg_count);
  const sim::NodeId primary = static_cast<sim::NodeId>(map_.Primary(pg));
  CDeleteRequest req;
  req.epoch = epoch_;
  req.pg = pg;
  req.name = std::move(name);
  auto r = co_await rpc_.Call(primary, std::move(req), config_.rpc_timeout);
  co_return r.ok() ? Status::Ok() : r.status();
}

// ---- cluster ----

CephCluster::CephCluster(sim::EventLoop& loop, CephConfig config)
    : loop_(loop), config_(std::move(config)), net_(loop, config_.net) {
  for (int i = 0; i < config_.osd_machines; ++i) {
    OsdBundle b;
    sim::MachineParams params;
    params.disk = config_.disk;
    b.machine = std::make_unique<sim::Machine>(loop_, next_osd_id_,
                                               "osd" + std::to_string(i), params);
    b.machine->disk(0).set_store_volume_content(config_.store_volume_content);
    b.rpc = std::make_unique<rpc::Node>(*b.machine, net_);
    b.rpc->Attach();
    b.server = std::make_unique<CephOsd>(*b.rpc, config_);
    map_.AddItem(next_osd_id_);
    ++next_osd_id_;
    osds_.push_back(std::move(b));
  }
  for (int i = 0; i < config_.client_machines; ++i) {
    ClientBundle b;
    sim::MachineParams params;
    params.disk = config_.disk;
    b.machine = std::make_unique<sim::Machine>(loop_, 3500 + i,
                                               "cclient" + std::to_string(i), params);
    b.rpc = std::make_unique<rpc::Node>(*b.machine, net_);
    b.rpc->Attach();
    b.client = std::make_unique<CephClient>(*b.rpc, config_, 0xcef + i);
    clients_.push_back(std::move(b));
  }
}

CephCluster::~CephCluster() = default;

Status CephCluster::Boot() {
  auto pending = std::make_shared<int>(static_cast<int>(osds_.size()));
  auto failed = std::make_shared<bool>(false);
  for (auto& o : osds_) {
    o.machine->actor().Spawn([](CephOsd* osd, std::shared_ptr<int> pending,
                                std::shared_ptr<bool> failed) -> sim::Task<> {
      Status s = co_await osd->Start();
      if (!s.ok()) {
        *failed = true;
      }
      --*pending;
    }(o.server.get(), pending, failed));
  }
  while (*pending > 0 && loop_.RunOne()) {
  }
  DisseminateMap({});
  loop_.RunFor(Millis(10));
  return *failed ? Status::Internal("osd failed to start") : Status::Ok();
}

void CephCluster::DisseminateMap(const std::map<uint32_t, sim::NodeId>& previous_primaries) {
  for (auto& o : osds_) {
    if (o.machine->alive()) {
      o.server->InstallMap(map_, epoch_, previous_primaries);
    }
  }
  for (auto& c : clients_) {
    c.client->InstallMap(map_, epoch_);
  }
}

void CephCluster::FailOsd(int i) {
  std::map<uint32_t, sim::NodeId> previous_primaries;
  const sim::NodeId dead = osds_.at(i).machine->node_id();
  for (uint32_t pg = 0; pg < config_.pg_count; ++pg) {
    // Backfill sources must be survivors: pick the first acting member that
    // is not the dead OSD.
    for (crush::ItemId member : map_.Select(pg, config_.replication)) {
      if (static_cast<sim::NodeId>(member) != dead) {
        previous_primaries[pg] = static_cast<sim::NodeId>(member);
        break;
      }
    }
  }
  osds_[i].machine->CrashProcess();
  osds_[i].rpc->Detach();
  map_.RemoveItem(dead);
  ++epoch_;
  DisseminateMap(previous_primaries);
}

void CephCluster::AddOsd() {
  std::map<uint32_t, sim::NodeId> previous_primaries;
  for (uint32_t pg = 0; pg < config_.pg_count; ++pg) {
    previous_primaries[pg] = static_cast<sim::NodeId>(map_.Primary(pg));
  }
  OsdBundle b;
  sim::MachineParams params;
  params.disk = config_.disk;
  b.machine = std::make_unique<sim::Machine>(
      loop_, next_osd_id_, "osd" + std::to_string(osds_.size()), params);
  b.machine->disk(0).set_store_volume_content(config_.store_volume_content);
  b.rpc = std::make_unique<rpc::Node>(*b.machine, net_);
  b.rpc->Attach();
  b.server = std::make_unique<CephOsd>(*b.rpc, config_);
  auto started = std::make_shared<bool>(false);
  b.machine->actor().Spawn([](CephOsd* osd, std::shared_ptr<bool> started) -> sim::Task<> {
    (void)co_await osd->Start();
    *started = true;
  }(b.server.get(), started));
  map_.AddItem(next_osd_id_);
  ++next_osd_id_;
  osds_.push_back(std::move(b));
  ++epoch_;
  while (!*started && loop_.RunOne()) {
  }
  DisseminateMap(previous_primaries);
}

}  // namespace cheetah::baselines
