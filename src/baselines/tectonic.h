// Tectonic baseline (Pan et al., FAST'21), as characterized in §6 of the
// Cheetah paper: filesystem metadata disaggregated into Name, File, and
// Block layers, each hash-sharded over metadata servers and stored in a KV
// store; object data lives in chunks on store machines.
//
// A put walks the layers with sequential, individually-persisted RPCs
// (name -> file -> block -> chunk write -> seal) — the "multiple recursive
// RPCs" the paper blames for Tectonic's highest put latency; a get resolves
// the same chain before touching data.
#ifndef SRC_BASELINES_TECTONIC_H_
#define SRC_BASELINES_TECTONIC_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/kv/db.h"
#include "src/rpc/node.h"
#include "src/workload/object_store.h"

namespace cheetah::baselines {

struct TectonicConfig {
  TectonicConfig() = default;
  int meta_machines = 3;   // host all three layers' shards
  int store_machines = 9;
  int client_machines = 3;
  uint32_t replication = 3;
  Nanos rpc_timeout = Millis(500);
  uint64_t fs_overhead_bytes = 4096;  // chunk-file metadata per data op
  sim::NetParams net;
  sim::DiskParams disk;
  bool store_volume_content = true;
};

// ---- layer messages (one request type per layer hop) ----

struct TnCreateNameReply {
  TnCreateNameReply() = default;
  uint64_t file_id = 0;
  size_t wire_size() const { return 16; }
};
struct TnCreateNameRequest {
  using Response = TnCreateNameReply;
  TnCreateNameRequest() = default;
  std::string name;
  size_t wire_size() const { return 16 + name.size(); }
};

struct TnLookupNameReply {
  TnLookupNameReply() = default;
  uint64_t file_id = 0;
  size_t wire_size() const { return 16; }
};
struct TnLookupNameRequest {
  using Response = TnLookupNameReply;
  TnLookupNameRequest() = default;
  std::string name;
  size_t wire_size() const { return 16 + name.size(); }
};

struct TnDeleteNameReply {
  TnDeleteNameReply() = default;
  size_t wire_size() const { return 8; }
};
struct TnDeleteNameRequest {
  using Response = TnDeleteNameReply;
  TnDeleteNameRequest() = default;
  std::string name;
  size_t wire_size() const { return 16 + name.size(); }
};

struct TnFileOpReply {
  TnFileOpReply() = default;
  uint64_t block_id = 0;
  size_t wire_size() const { return 16; }
};
struct TnFileOpRequest {  // op: 0 = append block, 1 = lookup, 2 = remove
  using Response = TnFileOpReply;
  TnFileOpRequest() = default;
  uint64_t file_id = 0;
  int op = 0;
  size_t wire_size() const { return 24; }
};

struct TnBlockOpReply {
  TnBlockOpReply() = default;
  std::vector<sim::NodeId> stores;
  uint64_t chunk_id = 0;
  size_t wire_size() const { return 24 + stores.size() * 8; }
};
struct TnBlockOpRequest {  // op: 0 = allocate, 1 = lookup, 2 = seal, 3 = remove
  using Response = TnBlockOpReply;
  TnBlockOpRequest() = default;
  uint64_t block_id = 0;
  uint64_t size = 0;
  int op = 0;
  size_t wire_size() const { return 32; }
};

struct TnChunkWriteReply {
  TnChunkWriteReply() = default;
  size_t wire_size() const { return 8; }
};
struct TnChunkWriteRequest {
  using Response = TnChunkWriteReply;
  TnChunkWriteRequest() = default;
  uint64_t chunk_id = 0;
  std::string data;
  uint32_t checksum = 0;
  size_t wire_size() const { return 24 + data.size(); }
};

struct TnChunkReadReply {
  TnChunkReadReply() = default;
  std::string data;
  uint32_t checksum = 0;
  size_t wire_size() const { return 16 + data.size(); }
};
struct TnChunkReadRequest {
  using Response = TnChunkReadReply;
  TnChunkReadRequest() = default;
  uint64_t chunk_id = 0;
  size_t wire_size() const { return 16; }
};

struct TnChunkDropReply {
  TnChunkDropReply() = default;
  size_t wire_size() const { return 8; }
};
struct TnChunkDropRequest {
  using Response = TnChunkDropReply;
  TnChunkDropRequest() = default;
  uint64_t chunk_id = 0;
  size_t wire_size() const { return 16; }
};

// ---- servers ----

// One per meta machine; serves the shards of all three layers that hash to it.
class TectonicMetaServer {
 public:
  TectonicMetaServer(rpc::Node& rpc, const TectonicConfig& config,
                     std::vector<sim::NodeId> stores, uint64_t seed);
  sim::Task<Status> Start();

 private:
  sim::Task<Result<TnCreateNameReply>> HandleCreate(sim::NodeId, TnCreateNameRequest);
  sim::Task<Result<TnLookupNameReply>> HandleLookup(sim::NodeId, TnLookupNameRequest);
  sim::Task<Result<TnDeleteNameReply>> HandleDeleteName(sim::NodeId, TnDeleteNameRequest);
  sim::Task<Result<TnFileOpReply>> HandleFileOp(sim::NodeId, TnFileOpRequest);
  sim::Task<Result<TnBlockOpReply>> HandleBlockOp(sim::NodeId, TnBlockOpRequest);

  rpc::Node& rpc_;
  TectonicConfig config_;
  std::vector<sim::NodeId> stores_;
  std::unique_ptr<kv::DB> db_;
  uint64_t next_id_;
  uint32_t store_cursor_ = 0;
};

class TectonicStoreServer {
 public:
  TectonicStoreServer(rpc::Node& rpc, const TectonicConfig& config);
  void Start();

 private:
  rpc::Node& rpc_;
  TectonicConfig config_;
  uint64_t tail_ = 0;
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> chunk_offsets_;  // id -> (off, len)
};

class TectonicClient : public workload::ObjectStore {
 public:
  TectonicClient(rpc::Node& rpc, const TectonicConfig& config,
                 std::vector<sim::NodeId> meta_nodes, uint64_t seed);

  sim::Task<Status> Put(std::string name, std::string data) override;
  sim::Task<Result<std::string>> Get(std::string name) override;
  sim::Task<Status> Delete(std::string name) override;

 private:
  sim::NodeId ShardFor(uint64_t key) const {
    return meta_nodes_[Mix64(key) % meta_nodes_.size()];
  }
  sim::NodeId ShardForName(const std::string& name) const {
    return meta_nodes_[Fnv1a64(name) % meta_nodes_.size()];
  }

  rpc::Node& rpc_;
  TectonicConfig config_;
  std::vector<sim::NodeId> meta_nodes_;
  Rng rng_;
};

class TectonicCluster {
 public:
  TectonicCluster(sim::EventLoop& loop, TectonicConfig config);
  ~TectonicCluster();

  Status Boot();

  int num_clients() const { return static_cast<int>(clients_.size()); }
  TectonicClient& client(int i) { return *clients_.at(i).client; }
  sim::Actor& client_actor(int i) { return clients_.at(i).machine->actor(); }
  sim::EventLoop& loop() { return loop_; }

 private:
  struct MetaBundle {
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<rpc::Node> rpc;
    std::unique_ptr<TectonicMetaServer> server;
  };
  struct StoreBundle {
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<rpc::Node> rpc;
    std::unique_ptr<TectonicStoreServer> server;
  };
  struct ClientBundle {
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<rpc::Node> rpc;
    std::unique_ptr<TectonicClient> client;
  };

  sim::EventLoop& loop_;
  TectonicConfig config_;
  sim::Network net_;
  std::vector<MetaBundle> metas_;
  std::vector<StoreBundle> stores_;
  std::vector<ClientBundle> clients_;
};

}  // namespace cheetah::baselines

#endif  // SRC_BASELINES_TECTONIC_H_
