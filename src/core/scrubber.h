// Background integrity scrubber (§2.1 lists auditing among the flexible
// management that directory-based stores enable).
//
// The scrubber is a meta-server-resident actor that walks every PG this
// server is primary for, probes each healthy data replica's stored checksum
// against MetaX, and repairs divergent replicas by copying from a replica
// that still verifies. Because Cheetah aggregates all object metadata on the
// meta servers, the audit needs no data-server-side index to cross-check —
// a scan of the PG's key range names every extent that should exist.
//
// All scrub I/O rides the maintenance QoS class: probes go out as
// DataProbeRequest and the copy uses RepairRead/RepairWrite, so a scrub pass
// never contends with foreground puts/gets for scheduler credit.
#ifndef SRC_CORE_SCRUBBER_H_
#define SRC_CORE_SCRUBBER_H_

#include <vector>

#include "src/cluster/messages.h"
#include "src/core/metax.h"
#include "src/core/options.h"
#include "src/obs/metrics.h"
#include "src/rpc/node.h"

namespace cheetah::core {

class MetaServer;

class Scrubber {
 public:
  Scrubber(MetaServer& ms, rpc::Node& rpc, const CheetahOptions& options);

  // Periodic driver: sleeps options.scrub_interval between full passes.
  // Spawned by MetaServer::Init when scrubbing is enabled.
  sim::Task<> Loop();

  // One full audit of every ready PG this server is primary for.
  sim::Task<> ScrubAll();

  // Value snapshot of the registry-backed counters ("scrub@<node>.*").
  struct Stats {
    uint64_t objects = 0;          // objects audited (all replicas probed)
    uint64_t corrupt_found = 0;    // replicas that failed their probe
    uint64_t repairs = 0;          // divergent replicas rewritten
    uint64_t repair_failures = 0;  // rewrites that errored (retried next pass)
    uint64_t probe_errors = 0;     // indeterminate probes (RPC-level failure)
    uint64_t bytes_repaired = 0;
  };
  Stats stats() const {
    return Stats{counters_.objects->value(),
                 counters_.corrupt_found->value(),
                 counters_.repairs->value(),
                 counters_.repair_failures->value(),
                 counters_.probe_errors->value(),
                 counters_.bytes_repaired->value()};
  }

 private:
  sim::Task<> ScrubPg(cluster::PgId pg);
  // EC objects: probe every stripe chunk against its recorded CRC; rebuild
  // damaged chunks from any k survivors (src/tier degraded-repair path).
  sim::Task<> ScrubEcObject(ObMeta meta);

  MetaServer& ms_;
  rpc::Node& rpc_;
  const CheetahOptions& options_;

  obs::Scope scope_;
  struct {
    obs::Counter* objects;
    obs::Counter* corrupt_found;
    obs::Counter* repairs;
    obs::Counter* repair_failures;
    obs::Counter* probe_errors;
    obs::Counter* bytes_repaired;
  } counters_;
};

}  // namespace cheetah::core

#endif  // SRC_CORE_SCRUBBER_H_
