// Testbed: wires a complete Cheetah cluster inside one simulator — manager
// machines running Raft, meta machines, data machines, and client proxies —
// mirroring the paper's fifteen-machine setup at configurable scale. Used by
// the integration tests, every benchmark, and the examples.
#ifndef SRC_CORE_TESTBED_H_
#define SRC_CORE_TESTBED_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/manager.h"
#include "src/core/client_proxy.h"
#include "src/core/data_server.h"
#include "src/core/meta_server.h"
#include "src/core/options.h"
#include "src/qos/scheduler.h"
#include "src/rpc/node.h"

namespace cheetah::core {

struct TestbedConfig {
  TestbedConfig() = default;

  int managers = 3;
  int meta_machines = 3;
  int data_machines = 9;
  int proxies = 3;

  uint32_t pg_count = 64;
  uint32_t replication = 3;
  uint32_t disks_per_data_machine = 4;
  uint32_t pvs_per_disk = 6;  // must yield >= pg_count logical volumes
  uint64_t lv_capacity_bytes = GiB(4);
  uint32_t block_size = 4096;

  CheetahOptions options;

  // Overload-bench knobs: cap meta-server CPU cores (0 = MachineParams
  // default) and set per-request handler CPU costs on every rpc node, so a
  // benchmark can place the saturation point where it wants it.
  int meta_cpu_cores = 0;
  rpc::Node::HandlerCosts handler_costs;

  sim::NetParams net;
  sim::DiskParams data_disk;
  sim::DiskParams meta_disk;
  cluster::ManagerConfig manager;

  // Store object payloads byte-for-byte (tests) or metadata-only (benches).
  bool store_volume_content = true;

  // Virtual time Boot() runs to let elections/bootstrap/leases settle.
  Nanos boot_warmup = Seconds(3);
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);
  ~Testbed();
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  // Elects a manager leader, bootstraps the topology, starts all servers,
  // and runs until meta servers hold leases and PGs are ready.
  Status Boot();

  sim::EventLoop& loop() { return loop_; }
  sim::Network& network() { return net_; }

  int num_proxies() const { return static_cast<int>(proxies_.size()); }
  int num_meta() const { return static_cast<int>(metas_.size()); }
  int num_data() const { return static_cast<int>(datas_.size()); }
  int num_managers() const { return static_cast<int>(managers_.size()); }
  ClientProxy& proxy(int i) { return *proxies_.at(i).proxy; }
  MetaServer& meta(int i) { return *metas_.at(i).server; }
  DataServer& data(int i) { return *datas_.at(i).server; }
  cluster::Manager& manager(int i) { return *managers_.at(i).manager; }
  sim::Machine& meta_machine(int i) { return *metas_.at(i).machine; }
  sim::Machine& data_machine(int i) { return *datas_.at(i).machine; }
  sim::Machine& proxy_machine(int i) { return *proxies_.at(i).machine; }
  sim::Machine& manager_machine(int i) { return *managers_.at(i).machine; }
  rpc::Node& proxy_rpc(int i) { return *proxies_.at(i).rpc; }  // protocol tests
  rpc::Node& meta_rpc(int i) { return *metas_.at(i).rpc; }

  // Null when options.qos.enabled is false.
  qos::Scheduler* meta_scheduler(int i) { return metas_.at(i).sched.get(); }
  qos::Scheduler* data_scheduler(int i) { return datas_.at(i).sched.get(); }

  // Node ids, for schedule/partition composition by role + index.
  sim::NodeId meta_node(int i) const { return metas_.at(i).machine->node_id(); }
  sim::NodeId data_node(int i) const { return datas_.at(i).machine->node_id(); }
  sim::NodeId manager_node(int i) const { return manager_nodes_.at(i); }
  sim::NodeId proxy_node(int i) const { return proxies_.at(i).machine->node_id(); }
  std::vector<sim::NodeId> AllNodes() const;

  // Returns the current Raft-leader manager, or -1.
  int LeaderManager() const;

  // ---- blocking convenience operations (drive the loop until done) ----
  Status PutObject(int proxy, std::string name, std::string data);
  Result<std::string> GetObject(int proxy, std::string name);
  Status DeleteObject(int proxy, std::string name);

  // Spawns `task` on proxy i's actor and runs the loop until it resolves or
  // `budget` virtual time elapses. Returns false on budget exhaustion.
  bool RunOnProxy(int i, std::function<sim::Task<>(ClientProxy&)> body,
                  Nanos budget = Seconds(30));

  // Runs the loop for `d` of virtual time (background activity continues).
  void RunFor(Nanos d) { loop_.RunFor(d); }

  // ---- failure injection ----
  void CrashMetaMachine(int i, bool power_loss);
  void RestartMetaMachine(int i);
  void CrashDataMachine(int i, bool power_loss);
  void RestartDataMachine(int i);
  void CrashProxy(int i);
  void RestartProxy(int i);
  void CrashManager(int i, bool power_loss);
  void RestartManager(int i);

  // Role-agnostic conveniences keyed by node id, so nemesis schedules and
  // tests compose faults declaratively without tracking bundle indices.
  void Partition(sim::NodeId a, sim::NodeId b) { net_.SetPartitioned(a, b, true); }
  void Isolate(sim::NodeId node);   // partition `node` from every other node
  void Heal() { net_.ClearPartitions(); }
  void Crash(sim::NodeId node, bool power_loss = false);
  void Restart(sim::NodeId node);

  // ---- expansion (§6.3 / Fig. 14) ----
  // Adds a fresh meta machine+server and maps it via CRUSH. Returns its
  // index. With settle=false the call returns as soon as the view change
  // commits, so callers can measure while adoption/migration is in flight.
  Result<int> AddMetaMachine(bool settle = true);
  Result<int> AddDataMachine(uint32_t disks, uint32_t pvs_per_disk);

  // ---- membership lifecycle (non-blocking variants) ----
  // The blocking helpers above drive the event loop internally, so they can't
  // be called from inside the loop (a nemesis callback, a workload coroutine,
  // or a bench that is already pumping the loop). These Begin* variants wire
  // any new hardware synchronously, spawn the manager-side mutation on the
  // current Raft leader's actor, and return immediately; callers observe the
  // result through the topology (view bump / retired_metas).
  int BeginAddMetaMachine();
  int BeginAddDataMachine(uint32_t disks, uint32_t pvs_per_disk);
  // Starts a planned drain of meta machine i on the current leader. The drain
  // itself survives leader changes (it is resumed from replicated state), so
  // one successful Begin is enough. Returns false when no leader is up.
  bool BeginDrainMetaMachine(int i);
  // Blocking drain: begins the drain and drives the loop until the node is
  // retired from the topology or `budget` virtual time elapses.
  Status DrainMetaMachine(int i, Nanos budget = Seconds(60));

  const TestbedConfig& config() const { return config_; }
  std::vector<sim::NodeId> manager_nodes() const { return manager_nodes_; }

 private:
  struct ManagerBundle {
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<rpc::Node> rpc;
    std::unique_ptr<cluster::Manager> manager;
  };
  // `sched` is declared before `rpc`: ~Node calls Scheduler::Reset(), so the
  // scheduler must be destroyed after the node.
  struct MetaBundle {
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<qos::Scheduler> sched;
    std::unique_ptr<rpc::Node> rpc;
    std::unique_ptr<MetaServer> server;
  };
  struct DataBundle {
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<qos::Scheduler> sched;
    std::unique_ptr<rpc::Node> rpc;
    std::unique_ptr<DataServer> server;
  };
  struct ProxyBundle {
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<rpc::Node> rpc;
    std::unique_ptr<ClientProxy> proxy;
  };

  MetaBundle MakeMetaBundle(sim::NodeId id, int seed);
  DataBundle MakeDataBundle(sim::NodeId id, uint32_t disks);

  // Runs a leader-only manager action, retrying across leader changes.
  Status RunManagerAction(std::function<sim::Task<Status>(cluster::Manager&)> action);
  // Fire-and-forget variant: spawns the action on the current leader's actor
  // without driving the loop. Returns false when no leader is known.
  bool SpawnManagerAction(std::function<sim::Task<Status>(cluster::Manager&)> action);

  TestbedConfig config_;
  sim::EventLoop loop_;
  sim::Network net_;
  std::vector<sim::NodeId> manager_nodes_;
  std::vector<ManagerBundle> managers_;
  std::vector<MetaBundle> metas_;
  std::vector<DataBundle> datas_;
  std::vector<ProxyBundle> proxies_;
  sim::NodeId next_meta_id_ = 100;
  sim::NodeId next_data_id_ = 200;
};

}  // namespace cheetah::core

#endif  // SRC_CORE_TESTBED_H_
