#include "src/core/metax.h"

#include <cinttypes>
#include <cstdio>

#include "src/common/coding.h"

namespace cheetah::core {

namespace {
std::string Hex8(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%08" PRIx64, v);
  return buf;
}
std::string Hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}
}  // namespace

std::string ObMetaKey(cluster::PgId pg, std::string_view name) {
  return ObMetaPrefix(pg) + std::string(name);
}
std::string ObMetaPrefix(cluster::PgId pg) { return "OBMETA_" + Hex8(pg) + "_"; }

std::string PgLogKey(cluster::PgId pg, uint64_t opseq) {
  return PgLogPrefix(pg) + Hex16(opseq);
}
std::string PgLogPrefix(cluster::PgId pg) { return "PGLOG_" + Hex8(pg) + "_"; }

std::string PxLogKey(uint32_t proxy_id, ReqId reqid) {
  return PxLogPrefix(proxy_id) + Hex16(reqid);
}
std::string PxLogPrefix(uint32_t proxy_id) { return "PXLOG_" + Hex8(proxy_id) + "_"; }

std::string OpDoneKey(cluster::PgId pg, uint32_t proxy_id, ReqId reqid) {
  return OpDonePrefix(pg) + Hex8(proxy_id) + "_" + Hex16(reqid);
}
std::string OpDonePrefix(cluster::PgId pg) { return "OPDONE_" + Hex8(pg) + "_"; }

bool ParsePgLogKey(std::string_view key, cluster::PgId* pg, uint64_t* opseq) {
  if (!key.starts_with("PGLOG_") || key.size() != 6 + 8 + 1 + 16) {
    return false;
  }
  *pg = static_cast<cluster::PgId>(std::stoul(std::string(key.substr(6, 8)), nullptr, 16));
  *opseq = std::stoull(std::string(key.substr(15, 16)), nullptr, 16);
  return true;
}

bool ParseObMetaKey(std::string_view key, cluster::PgId* pg, std::string* name) {
  if (!key.starts_with("OBMETA_") || key.size() < 7 + 8 + 1) {
    return false;
  }
  *pg = static_cast<cluster::PgId>(std::stoul(std::string(key.substr(7, 8)), nullptr, 16));
  *name = std::string(key.substr(7 + 8 + 1));
  return true;
}

bool ParsePxLogKey(std::string_view key, uint32_t* proxy_id, ReqId* reqid) {
  if (!key.starts_with("PXLOG_") || key.size() != 6 + 8 + 1 + 16) {
    return false;
  }
  *proxy_id = static_cast<uint32_t>(std::stoul(std::string(key.substr(6, 8)), nullptr, 16));
  *reqid = std::stoull(std::string(key.substr(15, 16)), nullptr, 16);
  return true;
}

void EncodeExtents(std::string* out, const std::vector<alloc::Extent>& extents) {
  PutVarint64(out, extents.size());
  for (const auto& e : extents) {
    PutVarint64(out, e.block);
    PutVarint64(out, e.count);
  }
}

bool DecodeExtents(std::string_view* in, std::vector<alloc::Extent>* extents) {
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) {
    return false;
  }
  extents->clear();
  for (uint64_t i = 0; i < n; ++i) {
    alloc::Extent e;
    if (!GetVarint64(in, &e.block) || !GetVarint64(in, &e.count)) {
      return false;
    }
    extents->push_back(e);
  }
  return true;
}

uint64_t ExtentBytes(const std::vector<alloc::Extent>& extents, uint32_t block_size) {
  uint64_t blocks = 0;
  for (const auto& e : extents) {
    blocks += e.count;
  }
  return blocks * block_size;
}

std::string ObMeta::Encode() const {
  std::string out;
  PutVarint64(&out, lvid);
  EncodeExtents(&out, extents);
  PutFixed32(&out, checksum);
  PutVarint64(&out, size);
  PutVarint64(&out, proxy_id);
  PutVarint64(&out, reqid);
  PutVarint64(&out, static_cast<uint64_t>(storage_class));
  PutVarint64(&out, born_ns);
  switch (storage_class) {
    case StorageClass::kReplica:
      break;
    case StorageClass::kInline:
      PutLengthPrefixed(&out, inline_data);
      break;
    case StorageClass::kEc:
      PutVarint64(&out, ec_k);
      PutVarint64(&out, ec_m);
      PutVarint64(&out, chunk_crcs.size());
      for (uint32_t crc : chunk_crcs) {
        PutFixed32(&out, crc);
      }
      break;
  }
  return out;
}

Result<ObMeta> ObMeta::Decode(std::string_view data) {
  ObMeta m;
  uint64_t lvid = 0;
  if (!GetVarint64(&data, &lvid) || !DecodeExtents(&data, &m.extents) ||
      !GetFixed32(&data, &m.checksum) || !GetVarint64(&data, &m.size)) {
    return Status::Corruption("ObMeta");
  }
  m.lvid = static_cast<cluster::LvId>(lvid);
  // Creator op, absent in encodings that predate it (hand-built test
  // records): missing means unknown, not corrupt.
  uint64_t proxy_id = 0;
  uint64_t reqid = 0;
  if (GetVarint64(&data, &proxy_id) && GetVarint64(&data, &reqid)) {
    m.proxy_id = static_cast<uint32_t>(proxy_id);
    m.reqid = reqid;
  } else {
    return m;
  }
  // Storage class, absent in pre-tiering encodings: missing means kReplica.
  uint64_t cls = 0;
  if (!GetVarint64(&data, &cls)) {
    return m;
  }
  if (cls > static_cast<uint64_t>(StorageClass::kEc) ||
      !GetVarint64(&data, &m.born_ns)) {
    return Status::Corruption("ObMeta storage class");
  }
  m.storage_class = static_cast<StorageClass>(cls);
  switch (m.storage_class) {
    case StorageClass::kReplica:
      break;
    case StorageClass::kInline: {
      std::string_view payload;
      if (!GetLengthPrefixed(&data, &payload)) {
        return Status::Corruption("ObMeta inline payload");
      }
      m.inline_data = std::string(payload);
      break;
    }
    case StorageClass::kEc: {
      uint64_t k = 0, mm = 0, nchunks = 0;
      if (!GetVarint64(&data, &k) || !GetVarint64(&data, &mm) ||
          !GetVarint64(&data, &nchunks) || k == 0 || nchunks != k + mm) {
        return Status::Corruption("ObMeta ec geometry");
      }
      m.ec_k = static_cast<uint32_t>(k);
      m.ec_m = static_cast<uint32_t>(mm);
      m.chunk_crcs.resize(nchunks);
      for (uint64_t i = 0; i < nchunks; ++i) {
        if (!GetFixed32(&data, &m.chunk_crcs[i])) {
          return Status::Corruption("ObMeta chunk crcs");
        }
      }
      break;
    }
  }
  return m;
}

// 0xff never begins a valid ObMeta encoding's final varint sequence, so the
// sentinel cannot collide with a live record.
static constexpr std::string_view kObMetaTombstone = "\xffTOMB";

std::string ObMetaTombstone() { return std::string(kObMetaTombstone); }
bool IsObMetaTombstone(std::string_view value) { return value == kObMetaTombstone; }

std::string PgLog::Encode() const {
  std::string out;
  PutLengthPrefixed(&out, name);
  PutLengthPrefixed(&out, pxlogkey);
  return out;
}

Result<PgLog> PgLog::Decode(std::string_view data) {
  PgLog log;
  std::string_view n, p;
  if (!GetLengthPrefixed(&data, &n) || !GetLengthPrefixed(&data, &p)) {
    return Status::Corruption("PgLog");
  }
  log.name = std::string(n);
  log.pxlogkey = std::string(p);
  return log;
}

std::string PxLog::Encode() const {
  std::string out;
  PutLengthPrefixed(&out, name);
  PutLengthPrefixed(&out, pglogkey);
  return out;
}

Result<PxLog> PxLog::Decode(std::string_view data) {
  PxLog log;
  std::string_view n, p;
  if (!GetLengthPrefixed(&data, &n) || !GetLengthPrefixed(&data, &p)) {
    return Status::Corruption("PxLog");
  }
  log.name = std::string(n);
  log.pglogkey = std::string(p);
  return log;
}

}  // namespace cheetah::core
