// Data-plane RPC messages: proxy <-> meta server, proxy <-> data server,
// meta <-> meta (replication / PG transfer), meta <-> data (probes), and
// data <-> data (volume recovery pulls).
//
// Every message is a non-aggregate (defaulted constructor): see the GCC 12
// caution in src/sim/task.h.
#ifndef SRC_CORE_MESSAGES_H_
#define SRC_CORE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/alloc/bitmap_allocator.h"
#include "src/cluster/topology.h"
#include "src/core/metax.h"

namespace cheetah::core {

// ---- proxy -> meta: put allocation (Pseudocode 1, lines 2-6) ----

struct PutAllocReply {
  PutAllocReply() = default;
  cluster::LvId lvid = 0;
  std::vector<alloc::Extent> extents;
  uint64_t opseq = 0;
  // Set when the reply already implies persistence (Cheetah-OW): the proxy
  // must not wait for a separate MetaPersisted notification.
  bool persisted = false;
  // The op's effect already happened and was settled by a later delete — the
  // proxy reports success without writing data (there is nowhere to write).
  bool already_done = false;
  // Inline placement accepted: the payload rode in with the request and now
  // lives in the MetaX triple — the proxy skips the data plane entirely.
  bool inline_stored = false;
  size_t wire_size() const { return 40 + extents.size() * 16; }
};
struct PutAllocRequest {
  using Response = PutAllocReply;
  PutAllocRequest() = default;
  uint64_t view = 0;
  std::string name;
  uint64_t size = 0;
  uint32_t checksum = 0;
  ReqId reqid = 0;
  uint32_t proxy_id = 0;
  sim::NodeId proxy_node = sim::kInvalidNode;
  bool re_meta = false;  // §5.3: resend after meta server recovery
  bool re_data = false;  // §5.3: reallocate after data server failure
  // Inline placement (src/tier): the payload itself rides in the alloc
  // request so the put completes in one metadata round trip.
  bool is_inline = false;
  std::string inline_data;
  size_t wire_size() const { return 64 + name.size() + inline_data.size(); }
};

// ---- meta -> proxy: MetaX persisted on all n meta servers (Fig. 4 (3)) ----
struct MetaPersistedAck {
  MetaPersistedAck() = default;
  size_t wire_size() const { return 8; }
};
struct MetaPersistedNotify {
  using Response = MetaPersistedAck;
  MetaPersistedNotify() = default;
  ReqId reqid = 0;
  bool ok = false;
  size_t wire_size() const { return 24; }
};

// ---- proxy -> meta: commit notification (Pseudocode 1, line 10) ----
struct PutCommitAck {
  PutCommitAck() = default;
  size_t wire_size() const { return 8; }
};
struct PutCommitNotify {
  using Response = PutCommitAck;
  PutCommitNotify() = default;
  uint64_t view = 0;
  std::string name;
  ReqId reqid = 0;
  size_t wire_size() const { return 32 + name.size(); }
};

// ---- proxy -> meta: get / delete ----

struct GetMetaReply {
  GetMetaReply() = default;
  ObMeta meta;
  size_t wire_size() const {
    return 48 + meta.extents.size() * 16 + meta.inline_data.size() +
           meta.chunk_crcs.size() * 4;
  }
};
struct GetMetaRequest {
  using Response = GetMetaReply;
  GetMetaRequest() = default;
  uint64_t view = 0;
  std::string name;
  size_t wire_size() const { return 24 + name.size(); }
};

struct DeleteReply {
  DeleteReply() = default;
  size_t wire_size() const { return 8; }
};
struct DeleteRequest {
  using Response = DeleteReply;
  DeleteRequest() = default;
  uint64_t view = 0;
  std::string name;
  // Stable across retries: lets the primary recognize a resent delete whose
  // first attempt already landed (the ack was lost) and answer OK instead of
  // deleting an object recreated in between.
  ReqId reqid = 0;
  uint32_t proxy_id = 0;
  size_t wire_size() const { return 40 + name.size(); }
};

// ---- meta -> meta: MetaX replication and PG transfer ----

struct ReplicateMetaXReply {
  ReplicateMetaXReply() = default;
  size_t wire_size() const { return 8; }
};
struct ReplicateMetaXRequest {
  using Response = ReplicateMetaXReply;
  ReplicateMetaXRequest() = default;
  uint64_t view = 0;
  cluster::PgId pg = 0;
  // Atomic batch mirrored from the primary: puts then deletes.
  std::vector<std::pair<std::string, std::string>> puts;
  std::vector<std::string> deletes;
  size_t wire_size() const {
    size_t n = 32;
    for (const auto& [k, v] : puts) {
      n += k.size() + v.size() + 8;
    }
    for (const auto& k : deletes) {
      n += k.size() + 4;
    }
    return n;
  }
};

struct PgPullReply {
  PgPullReply() = default;
  std::vector<std::pair<std::string, std::string>> kvs;
  // Last OBMETA key of this page; resend with start_after = this to
  // continue. Empty = the PG transfer is complete.
  std::string next_start_after;
  size_t wire_size() const {
    size_t n = 16 + next_start_after.size();
    for (const auto& [k, v] : kvs) {
      n += k.size() + v.size() + 8;
    }
    return n;
  }
};
struct PgPullRequest {
  using Response = PgPullReply;
  PgPullRequest() = default;
  uint64_t view = 0;
  cluster::PgId pg = 0;
  // Pagination: resume the OBMETA scan after this key ("" = from the start).
  // PG/PX logs ride with the final page.
  std::string start_after;
  uint32_t limit = 4096;  // max OBMETA rows per page
  // When non-zero the source must have adopted at least this view before
  // serving the pull. Migration catchup sets it to the DoubleWrite view: a
  // source still on the older view is not forwarding writes yet, so a scan
  // against it could miss writes that land after the page passes them.
  uint64_t min_view = 0;
  size_t wire_size() const { return 36 + start_after.size(); }
};

// ---- proxy/meta -> data server ----

struct DataWriteReply {
  DataWriteReply() = default;
  uint32_t checksum = 0;  // whole-object checksum as stored
  size_t wire_size() const { return 16; }
};
struct DataWriteRequest {
  using Response = DataWriteReply;
  DataWriteRequest() = default;
  uint64_t view = 0;
  std::string device;      // physical volume device name
  uint32_t disk_index = 0;
  uint32_t block_size = 4096;
  std::vector<alloc::Extent> extents;
  std::string data;
  uint32_t checksum = 0;   // whole-object checksum
  size_t wire_size() const { return 64 + device.size() + data.size(); }
};

struct DataReadReply {
  DataReadReply() = default;
  std::string data;
  uint32_t checksum = 0;  // whole-object checksum as stored at write time
  // False when the device runs in metadata-only mode and `data` is
  // synthesized — the caller verifies against `checksum` instead of
  // recomputing.
  bool content_valid = true;
  size_t wire_size() const { return 24 + data.size(); }
};
struct DataReadRequest {
  using Response = DataReadReply;
  DataReadRequest() = default;
  std::string device;
  uint32_t disk_index = 0;
  uint32_t block_size = 4096;
  std::vector<alloc::Extent> extents;
  uint64_t length = 0;  // object size (may be < extent bytes)
  // Verified read: the server compares every extent's stored checksum (and,
  // in full-content mode, the recomputed payload CRC) against
  // expected_checksum and answers kCorruption instead of shipping damaged
  // bytes. End-to-end integrity needs the check server-side too: a reply
  // that never leaves the data server can't be acked to a client by
  // accident.
  bool verify = false;
  uint32_t expected_checksum = 0;
  size_t wire_size() const { return 64 + device.size() + extents.size() * 16; }
};

// ---- repair traffic (read-repair and scrub) ----
// Wire-identical to the data read/write requests but registered under the
// maintenance QoS class: traffic classes attach to request *types* at
// Serve() time, so repair I/O gets its own type to keep it from contending
// with foreground puts/gets for scheduler credit. Handlers slice to the base
// request and share the foreground code path.

struct RepairReadRequest : DataReadRequest {
  RepairReadRequest() = default;
};

struct RepairWriteRequest : DataWriteRequest {
  RepairWriteRequest() = default;
};

// Meta server probe: is the object's data fully persisted with the expected
// checksum? (§4.3.2 pending gets, §5.3 proxy-crash recovery.)
struct DataProbeReply {
  DataProbeReply() = default;
  bool present = false;
  uint32_t checksum = 0;
  size_t wire_size() const { return 16; }
};
struct DataProbeRequest {
  using Response = DataProbeReply;
  DataProbeRequest() = default;
  std::string device;
  uint32_t disk_index = 0;
  uint32_t block_size = 4096;
  std::vector<alloc::Extent> extents;
  uint32_t expected_checksum = 0;
  size_t wire_size() const { return 48 + device.size() + extents.size() * 16; }
};

// Frees blocks on the data-server side view of a volume (revoked puts and
// deletes; the device itself is agnostic, this just drops stored extents).
struct DataDiscardReply {
  DataDiscardReply() = default;
  size_t wire_size() const { return 8; }
};
struct DataDiscardRequest {
  using Response = DataDiscardReply;
  DataDiscardRequest() = default;
  std::string device;
  uint32_t disk_index = 0;
  uint32_t block_size = 4096;
  std::vector<alloc::Extent> extents;
  size_t wire_size() const { return 40 + device.size() + extents.size() * 16; }
};

// ---- data -> data: whole-volume pull for disk recovery ----

struct VolumePullReply {
  VolumePullReply() = default;
  struct ExtentData {
    ExtentData() = default;
    uint64_t offset = 0;
    std::string data;
    uint32_t checksum = 0;
  };
  std::vector<ExtentData> extents;
  uint64_t total_bytes = 0;
  size_t wire_size() const { return 24 + total_bytes + extents.size() * 24; }
};
struct VolumePullRequest {
  using Response = VolumePullReply;
  VolumePullRequest() = default;
  std::string device;
  uint32_t disk_index = 0;
  size_t wire_size() const { return 24 + device.size(); }
};

}  // namespace cheetah::core

#endif  // SRC_CORE_MESSAGES_H_
