#include "src/core/scrubber.h"

#include <string>
#include <utility>

#include "src/common/crc32c.h"
#include "src/common/logging.h"
#include "src/core/meta_server.h"
#include "src/core/messages.h"
#include "src/core/metax.h"
#include "src/sim/sync.h"
#include "src/tier/striper.h"

namespace cheetah::core {

Scrubber::Scrubber(MetaServer& ms, rpc::Node& rpc, const CheetahOptions& options)
    : ms_(ms),
      rpc_(rpc),
      options_(options),
      scope_("scrub@" + std::to_string(rpc.id())),
      counters_{scope_.counter("objects"),
                scope_.counter("corrupt_found"),
                scope_.counter("repairs"),
                scope_.counter("repair_failures"),
                scope_.counter("probe_errors"),
                scope_.counter("bytes_repaired")} {}

sim::Task<> Scrubber::Loop() {
  for (;;) {
    co_await sim::SleepFor(options_.scrub_interval);
    co_await ScrubAll();
  }
}

sim::Task<> Scrubber::ScrubAll() {
  if (ms_.db_ == nullptr || ms_.topo_.view == 0) {
    co_return;
  }
  for (cluster::PgId pg = 0; pg < ms_.topo_.pg_count; ++pg) {
    // PGs mid-migration are skipped outright: a scrub repair racing the
    // cutover could write through topology targets the next view retires.
    if (ms_.IsPrimary(pg) && ms_.ready_pgs_.contains(pg) &&
        ms_.topo_.MigrationOf(pg) == nullptr) {
      co_await ScrubPg(pg);
    }
  }
}

sim::Task<> Scrubber::ScrubPg(cluster::PgId pg) {
  // Audit: for every settled object of the PG, probe each data replica's
  // stored checksum against MetaX; repair divergent replicas from a healthy
  // one. A replica counts as damaged whether the probe sees a checksum
  // mismatch (bit rot, torn write) or an I/O error (latent sector error) —
  // the repair write remaps either way.
  const uint64_t scrub_view = ms_.topo_.view;
  auto rows = co_await ms_.db_->Scan(ObMetaPrefix(pg), 0);
  if (!rows.ok()) {
    co_return;
  }
  for (const auto& [key, value] : *rows) {
    if (ms_.topo_.view != scrub_view || !ms_.IsPrimary(pg) ||
        ms_.topo_.MigrationOf(pg) != nullptr) {
      co_return;  // superseded by a view change or an in-flight migration
    }
    cluster::PgId key_pg = 0;
    std::string name;
    if (!ParseObMetaKey(key, &key_pg, &name) || ms_.pending_names_.contains(name)) {
      continue;  // unresolved puts are the cleaner's job
    }
    auto meta = ObMeta::Decode(value);
    if (!meta.ok()) {
      continue;
    }
    if (meta->storage_class == StorageClass::kInline) {
      // The payload lives in MetaX itself; the KV layer's own block CRCs and
      // WAL recovery audit it. Nothing on the data plane to probe.
      counters_.objects->Add();
      continue;
    }
    if (meta->storage_class == StorageClass::kEc) {
      co_await ScrubEcObject(std::move(*meta));
      continue;
    }
    // Copy every topology-derived target before the first co_await: a
    // topology push reassigns topo_ mid-suspension, freeing the LogicalVolume
    // and PhysicalVolume records any held pointer would dangle into.
    struct Target {
      std::string device;
      uint32_t disk_index = 0;
      sim::NodeId node = sim::kInvalidNode;
    };
    std::vector<Target> replicas;
    uint32_t block_size = 4096;
    {
      const cluster::LogicalVolume* lv = ms_.topo_.FindLv(meta->lvid);
      if (lv == nullptr) {
        continue;
      }
      block_size = lv->block_size;
      for (cluster::PvId pv_id : lv->replicas) {
        const cluster::PhysicalVolume* pv = ms_.topo_.FindPv(pv_id);
        if (pv == nullptr || !pv->healthy) {
          continue;
        }
        replicas.push_back(Target{pv->DeviceName(), pv->disk_index, pv->data_server});
      }
    }
    const Target* good = nullptr;
    std::vector<const Target*> bad;
    for (const Target& pv : replicas) {
      DataProbeRequest probe;
      probe.device = pv.device;
      probe.disk_index = pv.disk_index;
      probe.block_size = block_size;
      probe.extents = meta->extents;
      probe.expected_checksum = meta->checksum;
      auto r = co_await rpc_.Call(pv.node, std::move(probe),
                                  options_.rpc_timeout);
      if (!r.ok()) {
        counters_.probe_errors->Add();
        continue;  // indeterminate; next scrub retries
      }
      if (r->present) {
        good = &pv;
      } else {
        counters_.corrupt_found->Add();
        bad.push_back(&pv);
      }
    }
    counters_.objects->Add();
    if (bad.empty() || good == nullptr) {
      continue;
    }
    // Repair: copy the healthy replica over the divergent ones. The source
    // read is verified against MetaX so a race (probe passed, then the
    // source rotted) can never propagate a damaged payload.
    RepairReadRequest read;
    read.device = good->device;
    read.disk_index = good->disk_index;
    read.block_size = block_size;
    read.extents = meta->extents;
    read.length = meta->size;
    read.verify = true;
    read.expected_checksum = meta->checksum;
    auto data = co_await rpc_.Call(good->node, std::move(read),
                                   options_.rpc_timeout);
    if (!data.ok()) {
      counters_.repair_failures->Add();
      continue;
    }
    for (const Target* pv : bad) {
      RepairWriteRequest write;
      write.view = ms_.topo_.view;
      write.device = pv->device;
      write.disk_index = pv->disk_index;
      write.block_size = block_size;
      write.extents = meta->extents;
      write.data = data->data;
      write.checksum = meta->checksum;
      const uint64_t repaired_bytes = write.data.size();
      auto w = co_await rpc_.Call(pv->node, std::move(write),
                                  options_.rpc_timeout);
      if (w.ok()) {
        counters_.repairs->Add();
        counters_.bytes_repaired->Add(repaired_bytes);
      } else {
        counters_.repair_failures->Add();
      }
    }
  }
}

sim::Task<> Scrubber::ScrubEcObject(ObMeta meta) {
  // Audit each stripe chunk against its recorded CRC32C, then rebuild any
  // damaged chunk from k verified survivors. Same detection rules as the
  // replica path: a checksum mismatch and an I/O error both count as damage.
  struct Target {
    std::string device;
    uint32_t disk_index = 0;
    sim::NodeId node = sim::kInvalidNode;
  };
  std::vector<Target> targets;
  uint32_t block_size = 4096;
  {
    const cluster::LogicalVolume* lv = ms_.topo_.FindLv(meta.lvid);
    if (lv == nullptr || meta.ec_k == 0 ||
        meta.chunk_crcs.size() != lv->replicas.size()) {
      co_return;
    }
    block_size = lv->block_size;
    for (cluster::PvId pv_id : lv->replicas) {
      const cluster::PhysicalVolume* pv = ms_.topo_.FindPv(pv_id);
      if (pv == nullptr) {
        co_return;
      }
      targets.push_back(Target{pv->DeviceName(), pv->disk_index, pv->data_server});
    }
  }
  const uint32_t k = meta.ec_k;
  const uint32_t total = k + meta.ec_m;
  const uint64_t shard_bytes = (meta.size + k - 1) / k;
  std::vector<size_t> good;
  std::vector<size_t> bad;
  for (size_t j = 0; j < targets.size(); ++j) {
    DataProbeRequest probe;
    probe.device = targets[j].device;
    probe.disk_index = targets[j].disk_index;
    probe.block_size = block_size;
    probe.extents = meta.extents;
    probe.expected_checksum = meta.chunk_crcs[j];
    auto r = co_await rpc_.Call(targets[j].node, std::move(probe), options_.rpc_timeout);
    if (!r.ok()) {
      counters_.probe_errors->Add();
      continue;  // indeterminate; next scrub retries
    }
    if (r->present) {
      good.push_back(j);
    } else {
      counters_.corrupt_found->Add();
      bad.push_back(j);
    }
  }
  counters_.objects->Add();
  if (bad.empty()) {
    co_return;
  }
  if (good.size() < k) {
    counters_.repair_failures->Add();  // beyond m losses; nothing to rebuild from
    co_return;
  }
  // Verified reads of k surviving chunks, then Reed-Solomon reconstruction.
  std::vector<std::optional<std::string>> chunks(total);
  uint32_t have = 0;
  for (size_t j : good) {
    if (have == k) {
      break;
    }
    RepairReadRequest read;
    read.device = targets[j].device;
    read.disk_index = targets[j].disk_index;
    read.block_size = block_size;
    read.extents = meta.extents;
    read.length = shard_bytes;
    read.verify = true;
    read.expected_checksum = meta.chunk_crcs[j];
    auto r = co_await rpc_.Call(targets[j].node, std::move(read), options_.rpc_timeout);
    if (r.ok() && r->content_valid) {
      chunks[j] = std::move(r->data);
      ++have;
    }
  }
  if (have < k) {
    counters_.repair_failures->Add();
    co_return;
  }
  auto rebuilt = tier::ReconstructChunks(chunks, k, meta.ec_m);
  if (!rebuilt.ok()) {
    counters_.repair_failures->Add();
    co_return;
  }
  for (size_t j : bad) {
    // Only write back a chunk whose rebuilt bytes match the recorded CRC — a
    // reconstruction from a racing state must never overwrite with garbage.
    if (Crc32c((*rebuilt)[j]) != meta.chunk_crcs[j]) {
      counters_.repair_failures->Add();
      continue;
    }
    RepairWriteRequest write;
    write.view = ms_.topo_.view;
    write.device = targets[j].device;
    write.disk_index = targets[j].disk_index;
    write.block_size = block_size;
    write.extents = meta.extents;
    write.data = (*rebuilt)[j];
    write.checksum = meta.chunk_crcs[j];
    const uint64_t repaired_bytes = write.data.size();
    auto w = co_await rpc_.Call(targets[j].node, std::move(write), options_.rpc_timeout);
    if (w.ok()) {
      counters_.repairs->Add();
      counters_.bytes_repaired->Add(repaired_bytes);
    } else {
      counters_.repair_failures->Add();
    }
  }
}

}  // namespace cheetah::core
