#include "src/core/scrubber.h"

#include <string>
#include <utility>

#include "src/common/logging.h"
#include "src/core/meta_server.h"
#include "src/core/messages.h"
#include "src/core/metax.h"
#include "src/sim/sync.h"

namespace cheetah::core {

Scrubber::Scrubber(MetaServer& ms, rpc::Node& rpc, const CheetahOptions& options)
    : ms_(ms),
      rpc_(rpc),
      options_(options),
      scope_("scrub@" + std::to_string(rpc.id())),
      counters_{scope_.counter("objects"),
                scope_.counter("corrupt_found"),
                scope_.counter("repairs"),
                scope_.counter("repair_failures"),
                scope_.counter("probe_errors"),
                scope_.counter("bytes_repaired")} {}

sim::Task<> Scrubber::Loop() {
  for (;;) {
    co_await sim::SleepFor(options_.scrub_interval);
    co_await ScrubAll();
  }
}

sim::Task<> Scrubber::ScrubAll() {
  if (ms_.db_ == nullptr || ms_.topo_.view == 0) {
    co_return;
  }
  for (cluster::PgId pg = 0; pg < ms_.topo_.pg_count; ++pg) {
    if (ms_.IsPrimary(pg) && ms_.ready_pgs_.contains(pg)) {
      co_await ScrubPg(pg);
    }
  }
}

sim::Task<> Scrubber::ScrubPg(cluster::PgId pg) {
  // Audit: for every settled object of the PG, probe each data replica's
  // stored checksum against MetaX; repair divergent replicas from a healthy
  // one. A replica counts as damaged whether the probe sees a checksum
  // mismatch (bit rot, torn write) or an I/O error (latent sector error) —
  // the repair write remaps either way.
  const uint64_t scrub_view = ms_.topo_.view;
  auto rows = co_await ms_.db_->Scan(ObMetaPrefix(pg), 0);
  if (!rows.ok()) {
    co_return;
  }
  for (const auto& [key, value] : *rows) {
    if (ms_.topo_.view != scrub_view || !ms_.IsPrimary(pg)) {
      co_return;  // superseded by a view change
    }
    cluster::PgId key_pg = 0;
    std::string name;
    if (!ParseObMetaKey(key, &key_pg, &name) || ms_.pending_names_.contains(name)) {
      continue;  // unresolved puts are the cleaner's job
    }
    auto meta = ObMeta::Decode(value);
    if (!meta.ok()) {
      continue;
    }
    const cluster::LogicalVolume* lv = ms_.topo_.FindLv(meta->lvid);
    if (lv == nullptr) {
      continue;
    }
    const cluster::PhysicalVolume* good = nullptr;
    std::vector<const cluster::PhysicalVolume*> bad;
    for (cluster::PvId pv_id : lv->replicas) {
      const cluster::PhysicalVolume* pv = ms_.topo_.FindPv(pv_id);
      if (pv == nullptr || !pv->healthy) {
        continue;
      }
      DataProbeRequest probe;
      probe.device = pv->DeviceName();
      probe.disk_index = pv->disk_index;
      probe.block_size = lv->block_size;
      probe.extents = meta->extents;
      probe.expected_checksum = meta->checksum;
      auto r = co_await rpc_.Call(pv->data_server, std::move(probe),
                                  options_.rpc_timeout);
      if (!r.ok()) {
        counters_.probe_errors->Add();
        continue;  // indeterminate; next scrub retries
      }
      if (r->present) {
        good = pv;
      } else {
        counters_.corrupt_found->Add();
        bad.push_back(pv);
      }
    }
    counters_.objects->Add();
    if (bad.empty() || good == nullptr) {
      continue;
    }
    // Repair: copy the healthy replica over the divergent ones. The source
    // read is verified against MetaX so a race (probe passed, then the
    // source rotted) can never propagate a damaged payload.
    RepairReadRequest read;
    read.device = good->DeviceName();
    read.disk_index = good->disk_index;
    read.block_size = lv->block_size;
    read.extents = meta->extents;
    read.length = meta->size;
    read.verify = true;
    read.expected_checksum = meta->checksum;
    auto data = co_await rpc_.Call(good->data_server, std::move(read),
                                   options_.rpc_timeout);
    if (!data.ok()) {
      counters_.repair_failures->Add();
      continue;
    }
    for (const cluster::PhysicalVolume* pv : bad) {
      RepairWriteRequest write;
      write.view = ms_.topo_.view;
      write.device = pv->DeviceName();
      write.disk_index = pv->disk_index;
      write.block_size = lv->block_size;
      write.extents = meta->extents;
      write.data = data->data;
      write.checksum = meta->checksum;
      const uint64_t repaired_bytes = write.data.size();
      auto w = co_await rpc_.Call(pv->data_server, std::move(write),
                                  options_.rpc_timeout);
      if (w.ok()) {
        counters_.repairs->Add();
        counters_.bytes_repaired->Add(repaired_bytes);
      } else {
        counters_.repair_failures->Add();
      }
    }
  }
}

}  // namespace cheetah::core
