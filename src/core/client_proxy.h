// Cheetah client proxy: the application's portal (§4.1).
//
// Put runs the paper's parallel pipeline (Pseudocode 1 / Fig. 4): after the
// primary meta server returns the allocation, the proxy streams object data
// to the n data servers while MetaX persists on the n meta servers; the put
// commits once both complete, and the proxy fire-and-forgets the commit
// notification. Failures surface as RE-META / RE-DATA retries (§5.3), and
// kStaleView replies trigger a topology refresh.
//
// The §7 read optimization: the proxy caches (lvid, extents, checksum) of
// objects it recently put or fetched, and on a cache hit issues the metadata
// lookup and the data read in parallel.
#ifndef SRC_CORE_CLIENT_PROXY_H_
#define SRC_CORE_CLIENT_PROXY_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cluster/messages.h"
#include "src/common/random.h"
#include "src/core/messages.h"
#include "src/core/options.h"
#include "src/obs/metrics.h"
#include "src/qos/aimd.h"
#include "src/rpc/node.h"
#include "src/sim/sync.h"

namespace cheetah::core {

class ClientProxy {
 public:
  ClientProxy(rpc::Node& rpc, CheetahOptions options,
              std::vector<sim::NodeId> manager_nodes, uint32_t proxy_id);

  void Start();

  // Blocking object operations (complete when committed / data verified).
  // Each is the root of a traced operation: the obs::Tracer records a kOp
  // span whose children (RPCs, disk I/O, persistence waits) reconstruct the
  // critical path — bench/fig6_decomposition.cc derives the paper's latency
  // breakdown from these instead of hand-placed timers.
  sim::Task<Status> Put(std::string name, std::string data);
  sim::Task<Result<std::string>> Get(std::string name);
  sim::Task<Status> Delete(std::string name);

  // Value snapshot of the registry-backed counters ("proxy@<node>#<i>.*").
  struct Stats {
    uint64_t puts = 0;
    uint64_t gets = 0;
    uint64_t deletes = 0;
    uint64_t retries = 0;
    uint64_t failures = 0;
    uint64_t cache_hits = 0;
    uint64_t corrupt_replica_reads = 0;  // replicas rejected by verification
    uint64_t read_repairs = 0;           // damaged replicas rewritten
    uint64_t inline_puts = 0;            // objects stored in the MetaX record
    uint64_t ec_degraded_reads = 0;      // EC gets that needed reconstruction
    uint64_t ec_chunk_repairs = 0;       // stripe chunks rewritten after a get
    uint64_t fast_redirects = 0;         // stale-view NACKs chased sans backoff
  };
  Stats stats() const {
    return Stats{counters_.puts->value(),    counters_.gets->value(),
                 counters_.deletes->value(), counters_.retries->value(),
                 counters_.failures->value(), counters_.cache_hits->value(),
                 counters_.corrupt_replica_reads->value(),
                 counters_.read_repairs->value(),
                 counters_.inline_puts->value(),
                 counters_.ec_degraded_reads->value(),
                 counters_.ec_chunk_repairs->value(),
                 counters_.fast_redirects->value()};
  }

  uint64_t view() const { return topo_.view; }
  const cluster::TopologyMap& topology() const { return topo_; }
  uint32_t proxy_id() const { return proxy_id_; }

  // Stale-view NACKs from meta servers carry the server's view number
  // ("server at view N"); returns it, or 0 when the message has no hint.
  // Public (and static) so the parsing contract is unit-testable.
  static uint64_t StaleViewHint(const Status& s);

 private:
  struct PersistWait {
    sim::Event done;
    bool ok = false;
  };

  // Op bodies; the public wrappers open/close the root trace span.
  sim::Task<Status> PutImpl(std::string name, std::string data);
  sim::Task<Result<std::string>> GetImpl(std::string name);
  sim::Task<Status> DeleteImpl(std::string name);

  // Meta-server RPC with proxy-side admission: under QoS every call toward a
  // meta server passes through that server's AIMD window, so pushback
  // (kOverloaded or timeout) shrinks this proxy's concurrency toward the
  // node instead of hammering it with retries. Member template so both the
  // put/delete and get paths share it; `req` arrives as an xvalue of a named
  // object (see the GCC 12 coroutine-argument caution in rpc/node.h).
  template <rpc::RpcRequest Req>
  sim::Task<Result<typename Req::Response>> CallMeta(sim::NodeId dst, Req req) {
    if (!options_.qos.enabled) {
      co_return co_await rpc_.Call(dst, std::move(req), options_.rpc_timeout);
    }
    MetaWindow& mw = WindowFor(dst);
    co_await mw.win.Acquire();
    Result<typename Req::Response> r =
        co_await rpc_.Call(dst, std::move(req), options_.rpc_timeout);
    if (r.ok()) {
      mw.win.Release(qos::AimdWindow::Signal::kSuccess);
    } else if (r.status().IsOverloaded() || r.status().IsTimeout()) {
      mw.win.Release(qos::AimdWindow::Signal::kPushback);
    } else {
      mw.win.Release(qos::AimdWindow::Signal::kNeutral);
    }
    mw.window_gauge->Set(static_cast<int64_t>(mw.win.window()));
    co_return r;
  }

  sim::Task<Status> EnsureTopology();
  sim::Task<Status> RefreshTopology();
  void ReportSuspect(sim::NodeId node);
  sim::Task<> BackoffAndRefresh(int attempt);

  // Fast redirect: chase the managers for a topology at least as fresh as the
  // NACK's view hint, retrying immediately instead of entering the
  // decorrelated-jitter backoff cycle. Used after a migration cutover bumps
  // the view: the proxy re-pulls and re-sends to the new owner right away.
  sim::Task<> ChaseStaleView(const Status& s);

  // One full put attempt; the caller loops on retryable failures.
  sim::Task<Status> PutAttempt(const std::string& name, const std::string& data,
                               uint32_t checksum, ReqId reqid, bool re_meta, bool re_data);
  sim::Task<Status> WriteDataReplicas(const cluster::LogicalVolume& lv,
                                      const std::vector<alloc::Extent>& extents,
                                      const std::string& data, uint32_t checksum);
  sim::Task<Result<std::string>> ReadData(const ObMeta& meta, bool verify);
  // EC stripe read: verified reads of the k data chunks (systematic layout);
  // on damage, pulls parity and reconstructs from any k of k+m. Degraded
  // successes fire-and-forget a rewrite of the damaged chunks.
  sim::Task<Result<std::string>> ReadEcData(const ObMeta& meta);

  // A replica that positively failed verification (server-side kCorruption /
  // kIoError or client-side checksum mismatch) — everything a repair write
  // needs, copied out of the topology.
  struct DamagedReplica {
    std::string device;
    uint32_t disk_index = 0;
    sim::NodeId data_server = sim::kInvalidNode;
  };
  // Fire-and-forget maintenance-class rewrite of damaged replicas from the
  // verified payload the get just returned.
  void SpawnReadRepair(const ObMeta& meta, uint32_t block_size,
                       std::vector<DamagedReplica> damaged, std::string data);

  sim::Task<Result<MetaPersistedAck>> HandlePersisted(sim::NodeId src,
                                                      MetaPersistedNotify req);
  sim::Task<Result<cluster::TopologyPushReply>> HandleTopologyPush(sim::NodeId src,
                                                                   cluster::TopologyPush req);
  sim::Task<> HeartbeatLoop();

  struct MetaWindow {
    explicit MetaWindow(const qos::AimdParams& params) : win(params) {}
    qos::AimdWindow win;
    obs::Gauge* window_gauge = nullptr;
  };
  MetaWindow& WindowFor(sim::NodeId dst);

  rpc::Node& rpc_;
  CheetahOptions options_;
  std::vector<sim::NodeId> manager_nodes_;
  uint32_t proxy_id_;
  Rng rng_;
  Nanos backoff_ = 0;  // previous retry sleep (decorrelated jitter state)
  std::map<sim::NodeId, std::unique_ptr<MetaWindow>> windows_;

  cluster::TopologyMap topo_;
  uint64_t next_req_ = 1;
  std::map<ReqId, std::shared_ptr<PersistWait>> persist_waits_;
  std::unordered_map<std::string, ObMeta> meta_cache_;

  obs::Scope scope_;
  struct {
    obs::Counter* puts;
    obs::Counter* gets;
    obs::Counter* deletes;
    obs::Counter* retries;
    obs::Counter* failures;
    obs::Counter* cache_hits;
    obs::Counter* corrupt_replica_reads;
    obs::Counter* read_repairs;
    obs::Counter* inline_puts;
    obs::Counter* ec_degraded_reads;
    obs::Counter* ec_chunk_repairs;
    obs::Counter* fast_redirects;
  } counters_;
};

}  // namespace cheetah::core

#endif  // SRC_CORE_CLIENT_PROXY_H_
