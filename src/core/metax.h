// MetaX: the write-optimal aggregated metadata structure (§3, §5.2).
//
// All metadata of a put — the volume metadata Mv (lvid), the offset metadata
// Mo (extents) with the data checksum, and the meta-log Ml (object name,
// client proxy, PG) — is stored as three KV pairs written in one atomic
// batch (Table 1):
//
//   OBMETA_<pgid>_<name>   -> lvid, extents, checksum, size
//   PGLOG_<pgid>_<opseq>   -> name, pxlogkey
//   PXLOG_<pxid>_<reqid>   -> name, pglogkey
//
// Deviation from the paper's Table 1: the OBMETA key embeds the PG id so a
// PG's metadata is one contiguous key range, which is what lets a new
// primary pull or rebuild a PG with a single prefix scan (§5.3). The paper
// implies the same per-PG organization via its PG-granular replication.
#ifndef SRC_CORE_METAX_H_
#define SRC_CORE_METAX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/alloc/bitmap_allocator.h"
#include "src/cluster/topology.h"
#include "src/common/status.h"

namespace cheetah::core {

using ReqId = uint64_t;

// ---- key builders ----
std::string ObMetaKey(cluster::PgId pg, std::string_view name);
std::string ObMetaPrefix(cluster::PgId pg);
std::string PgLogKey(cluster::PgId pg, uint64_t opseq);
std::string PgLogPrefix(cluster::PgId pg);
std::string PxLogKey(uint32_t proxy_id, ReqId reqid);
std::string PxLogPrefix(uint32_t proxy_id);
// Op-finality marker: records that client op (proxy_id, reqid) took effect
// and that effect is settled — written by deletes for themselves and for the
// creating put of the object they consume. A retried put or delete that
// finds its own marker answers success without re-executing, which is what
// keeps retries idempotent once the object they touched is gone. Keyed in
// the PG's keyspace so PG pulls carry markers to new replicas.
std::string OpDoneKey(cluster::PgId pg, uint32_t proxy_id, ReqId reqid);
std::string OpDonePrefix(cluster::PgId pg);

// Parses <pg> and <opseq> back out of a PGLOG key. Returns false on mismatch.
bool ParsePgLogKey(std::string_view key, cluster::PgId* pg, uint64_t* opseq);
bool ParseObMetaKey(std::string_view key, cluster::PgId* pg, std::string* name);
bool ParsePxLogKey(std::string_view key, uint32_t* proxy_id, ReqId* reqid);

// ---- values ----

// Storage class of an object's data (src/tier). Replica is the paper's
// path; Inline keeps the payload inside the ObMeta record itself (no data
// server involved); Ec stripes the payload as K data + M parity chunks, one
// chunk per PV of an ec_stripe LV, with a CRC32C per chunk.
enum class StorageClass : uint8_t {
  kReplica = 0,
  kInline = 1,
  kEc = 2,
};

struct ObMeta {
  ObMeta() = default;
  cluster::LvId lvid = 0;                 // Mv: volume metadata
  std::vector<alloc::Extent> extents;     // Mo: offset metadata
  uint32_t checksum = 0;                  // data checksum c
  uint64_t size = 0;                      // object data size in bytes
  // Creating op (Ml carries the proxy identity per Table 1): lets a delete
  // write the creator's OpDone marker when it consumes the object.
  uint32_t proxy_id = 0;
  ReqId reqid = 0;

  // Storage class + class-specific payload (encoded after the creator op so
  // pre-tiering records decode as kReplica).
  StorageClass storage_class = StorageClass::kReplica;
  // Virtual time the record was written; demotion treats it as the floor of
  // the object's last-access time across meta-server restarts.
  uint64_t born_ns = 0;
  // kInline: the object payload itself.
  std::string inline_data;
  // kEc: Reed-Solomon geometry and one CRC32C per chunk (k data chunks then
  // m parity chunks, chunk j living on replicas[j] of the stripe LV).
  uint32_t ec_k = 0;
  uint32_t ec_m = 0;
  std::vector<uint32_t> chunk_crcs;

  std::string Encode() const;
  static Result<ObMeta> Decode(std::string_view data);
};

// A deleted object leaves a tombstone in place of its ObMeta record rather
// than a bare key removal. Deletes must be a positive, replicable fact: PG
// pulls merge records between replicas, so an absence proves nothing, and a
// replica that missed the delete would silently resurrect the object the
// next time it serves the PG. A put to a tombstoned name overwrites the
// tombstone (delete-then-recreate is legal; create-once applies only to
// visible objects). The sim never garbage-collects tombstones.
std::string ObMetaTombstone();
bool IsObMetaTombstone(std::string_view value);

struct PgLog {
  PgLog() = default;
  std::string name;
  std::string pxlogkey;

  std::string Encode() const;
  static Result<PgLog> Decode(std::string_view data);
};

struct PxLog {
  PxLog() = default;
  std::string name;
  std::string pglogkey;

  std::string Encode() const;
  static Result<PxLog> Decode(std::string_view data);
};

// Extent list helpers shared by messages and values.
void EncodeExtents(std::string* out, const std::vector<alloc::Extent>& extents);
bool DecodeExtents(std::string_view* in, std::vector<alloc::Extent>* extents);

// Total bytes covered by the extents.
uint64_t ExtentBytes(const std::vector<alloc::Extent>& extents, uint32_t block_size);

}  // namespace cheetah::core

#endif  // SRC_CORE_METAX_H_
