// Cheetah configuration, including the ablation variants the paper evaluates:
//   - Cheetah-OW  (Fig. 9): the meta server replies to the proxy only after
//     MetaX is persisted and replicated, restoring the distributed ordering
//     that stock Cheetah removes.
//   - Cheetah-FS  (Fig. 10): data servers pay filesystem overhead per data
//     operation instead of raw block access.
//   - Cheetah-NoVG (Fig. 14): no volume groups; a PG's usable volumes are a
//     function of the CRUSH epoch, so meta-server expansion forces object
//     data migration.
#ifndef SRC_CORE_OPTIONS_H_
#define SRC_CORE_OPTIONS_H_

#include <cstdint>

#include "src/common/units.h"
#include "src/kv/options.h"
#include "src/qos/qos.h"

namespace cheetah::core {

// Storage-class tiering (src/tier): inline small objects in MetaX, land
// everything else as replicas, and demote cold replica objects to K+M
// erasure-coded stripes in the background under the maintenance QoS class.
struct TierOptions {
  TierOptions() = default;

  // Objects at or below this size are stored inline in the ObMeta record —
  // one metadata round trip, no data server touched. 0 disables inlining.
  uint64_t inline_threshold = 0;

  // Reed-Solomon geometry for the EC storage class. ec_k == 0 disables the
  // EC tier entirely (no stripe LVs are carved at bootstrap).
  uint32_t ec_k = 0;
  uint32_t ec_m = 0;

  // Demotion policy: a settled replica object becomes an EC candidate once
  // it is at least this large and has not been written or read for
  // demote_after of virtual time.
  uint64_t min_ec_object_bytes = 0;
  Nanos demote_after = Seconds(1);

  // Background demotion engine scan period. 0 disables the engine (placement
  // classes still work; nothing moves between them).
  Nanos tier_scan_interval = 0;
};

struct CheetahOptions {
  CheetahOptions() = default;

  // --- variants (all false = the full Cheetah design) ---
  bool ordered_writes = false;   // Cheetah-OW
  bool fs_backed_data = false;   // Cheetah-FS
  bool no_volume_groups = false; // Cheetah-NoVG

  // Proxy-side metadata cache for the §7 read optimization.
  bool enable_read_cache = true;

  // Transparent read-repair: when a verified get finds a corrupt or
  // unreadable replica but another replica answers clean, the proxy
  // fire-and-forgets a maintenance-class rewrite of the damaged copy. The
  // get's latency never waits on the repair. Deletes stay safe: repair only
  // touches the data plane, and object visibility is governed entirely by
  // MetaX tombstones.
  bool enable_read_repair = true;

  // Evaluation-only (Fig. 13): store just the volume metadata KV per put,
  // like a traditional thin directory, instead of the full MetaX triple.
  // Recovery guarantees do not hold in this mode.
  bool thin_directory_mode = false;

  // --- timing ---
  Nanos rpc_timeout = Millis(500);
  // Proxy retry backoff: capped exponential with decorrelated jitter (AWS
  // architecture-blog style: sleep = min(cap, rand(base, 3*prev))), so many
  // proxies retrying into a recovering cluster don't synchronize into
  // thundering herds. Deterministic per proxy seed.
  Nanos backoff_base = Millis(5);
  Nanos backoff_cap = Millis(320);
  Nanos heartbeat_interval = Millis(100);
  Nanos log_clean_interval = Millis(500);
  // Background scrub: audit object checksums against the data servers and
  // repair divergent replicas (§2.1 lists auditing among the flexible
  // management directory-based stores enable). 0 disables.
  Nanos scrub_interval = 0;
  Nanos pending_put_timeout = Millis(1500);  // unresolved puts get verified
  int max_retries = 6;

  // Filesystem overhead charged per data op in Cheetah-FS (journal + inode
  // update, roughly one extra 4KB metadata write).
  uint64_t fs_overhead_bytes = 4096;

  // FAULT-INJECTION ONLY. Ack puts without waiting for MetaX persistence
  // (violates Appendix A Lemma 1: a power failure inside the vulnerable
  // window loses an acknowledged object). Exists so the chaos suite can
  // prove the linearizability checker catches a real consistency bug; never
  // enable outside tests/chaos.
  bool unsafe_skip_persist_wait = false;

  // --- overload control (src/qos) ---
  // When qos.enabled, the testbed installs a per-node scheduler on every
  // meta/data server and proxies run an AIMD concurrency window per meta
  // server, honoring kOverloaded pushback (sleep retry-after, halve window).
  qos::QosParams qos;
  qos::AimdParams aimd;

  // --- storage classes & tiering (src/tier) ---
  TierOptions tier;

  // MetaX KV store tuning (Fig. 11 sweeps these).
  kv::Options metax_kv;
};

}  // namespace cheetah::core

#endif  // SRC_CORE_OPTIONS_H_
