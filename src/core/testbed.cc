#include "src/core/testbed.h"

#include <cassert>

#include "src/common/logging.h"

namespace cheetah::core {

namespace {
constexpr sim::NodeId kManagerBase = 1;
constexpr sim::NodeId kProxyBase = 300;
}  // namespace

Testbed::Testbed(TestbedConfig config) : config_(std::move(config)), net_(loop_, config_.net) {
  // Managers (the paper co-locates them with the clients; node identity is
  // what matters here).
  raft::Config raft_config;
  for (int i = 0; i < config_.managers; ++i) {
    manager_nodes_.push_back(kManagerBase + i);
    raft_config.members.push_back(kManagerBase + i);
  }
  for (int i = 0; i < config_.managers; ++i) {
    ManagerBundle b;
    sim::MachineParams params;
    params.disk = config_.meta_disk;
    b.machine = std::make_unique<sim::Machine>(loop_, manager_nodes_[i],
                                               "manager" + std::to_string(i), params);
    b.rpc = std::make_unique<rpc::Node>(*b.machine, net_);
    b.rpc->SetHandlerCosts(config_.handler_costs);
    b.rpc->Attach();
    b.manager = std::make_unique<cluster::Manager>(*b.rpc, b.machine->disk(), raft_config,
                                                   config_.manager, 0xa11ce + i);
    managers_.push_back(std::move(b));
  }
  for (int i = 0; i < config_.meta_machines; ++i) {
    metas_.push_back(MakeMetaBundle(next_meta_id_++, i));
  }
  for (int i = 0; i < config_.data_machines; ++i) {
    datas_.push_back(MakeDataBundle(next_data_id_++, config_.disks_per_data_machine));
  }
  for (int i = 0; i < config_.proxies; ++i) {
    ProxyBundle b;
    sim::MachineParams params;
    params.disk = config_.meta_disk;
    b.machine = std::make_unique<sim::Machine>(loop_, kProxyBase + i,
                                               "proxy" + std::to_string(i), params);
    b.rpc = std::make_unique<rpc::Node>(*b.machine, net_);
    b.rpc->SetHandlerCosts(config_.handler_costs);
    b.rpc->Attach();
    b.proxy = std::make_unique<ClientProxy>(*b.rpc, config_.options, manager_nodes_,
                                            static_cast<uint32_t>(i + 1));
    proxies_.push_back(std::move(b));
  }
}

Testbed::~Testbed() = default;

Testbed::MetaBundle Testbed::MakeMetaBundle(sim::NodeId id, int seed) {
  MetaBundle b;
  sim::MachineParams params;
  params.num_disks = 1;
  params.disk = config_.meta_disk;
  if (config_.meta_cpu_cores > 0) {
    params.cpu_cores = config_.meta_cpu_cores;
  }
  b.machine = std::make_unique<sim::Machine>(loop_, id, "meta" + std::to_string(id), params);
  b.rpc = std::make_unique<rpc::Node>(*b.machine, net_);
  b.rpc->SetHandlerCosts(config_.handler_costs);
  if (config_.options.qos.enabled) {
    b.sched = std::make_unique<qos::Scheduler>(loop_, id, config_.options.qos);
    b.rpc->SetScheduler(b.sched.get());
  }
  b.rpc->Attach();
  b.server = std::make_unique<MetaServer>(*b.rpc, config_.options, manager_nodes_,
                                          0x5eed + seed);
  return b;
}

Testbed::DataBundle Testbed::MakeDataBundle(sim::NodeId id, uint32_t disks) {
  DataBundle b;
  sim::MachineParams params;
  params.num_disks = static_cast<int>(disks);
  params.disk = config_.data_disk;
  b.machine = std::make_unique<sim::Machine>(loop_, id, "data" + std::to_string(id), params);
  for (size_t d = 0; d < b.machine->num_disks(); ++d) {
    b.machine->disk(d).set_store_volume_content(config_.store_volume_content);
  }
  b.rpc = std::make_unique<rpc::Node>(*b.machine, net_);
  b.rpc->SetHandlerCosts(config_.handler_costs);
  if (config_.options.qos.enabled) {
    b.sched = std::make_unique<qos::Scheduler>(loop_, id, config_.options.qos);
    b.rpc->SetScheduler(b.sched.get());
  }
  b.rpc->Attach();
  b.server = std::make_unique<DataServer>(*b.rpc, config_.options, manager_nodes_);
  return b;
}

int Testbed::LeaderManager() const {
  for (size_t i = 0; i < managers_.size(); ++i) {
    if (managers_[i].machine->alive() && managers_[i].manager->is_raft_leader()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Status Testbed::RunManagerAction(std::function<sim::Task<Status>(cluster::Manager&)> action) {
  for (int round = 0; round < 10; ++round) {
    int leader = LeaderManager();
    if (leader < 0) {
      loop_.RunFor(Millis(200));
      continue;
    }
    auto result = std::make_shared<Result<int>>(Status::Internal("unresolved"));
    managers_[leader].machine->actor().Spawn(
        [](cluster::Manager* m, std::function<sim::Task<Status>(cluster::Manager&)> action,
           std::shared_ptr<Result<int>> out) -> sim::Task<> {
          Status s = co_await action(*m);
          *out = s.ok() ? Result<int>(1) : Result<int>(s);
        }(managers_[leader].manager.get(), action, result));
    const Nanos deadline = loop_.Now() + Seconds(10);
    while (!result->ok() && result->status().code() == ErrorCode::kInternal &&
           loop_.Now() < deadline) {
      if (!loop_.RunOne()) {
        break;
      }
    }
    if (result->ok()) {
      return Status::Ok();
    }
    if (!result->status().IsUnavailable()) {
      return result->status();
    }
    loop_.RunFor(Millis(200));  // leader moved; retry
  }
  return Status::Unavailable("manager action failed across retries");
}

bool Testbed::SpawnManagerAction(std::function<sim::Task<Status>(cluster::Manager&)> action) {
  const int leader = LeaderManager();
  if (leader < 0) {
    return false;
  }
  managers_[leader].machine->actor().Spawn(
      [](cluster::Manager* m,
         std::function<sim::Task<Status>(cluster::Manager&)> action) -> sim::Task<> {
        Status s = co_await action(*m);
        if (!s.ok()) {
          LOG_DEBUG << "manager action: " << s.ToString();
        }
      }(managers_[leader].manager.get(), std::move(action)));
  return true;
}

Status Testbed::Boot() {
  for (auto& m : managers_) {
    m.machine->actor().Spawn([](cluster::Manager* mgr) -> sim::Task<> {
      Status s = co_await mgr->Start();
      if (!s.ok()) {
        LOG_ERROR << "manager start failed: " << s.ToString();
      }
    }(m.manager.get()));
  }
  // Elect a leader.
  const Nanos deadline = loop_.Now() + Seconds(10);
  while (LeaderManager() < 0 && loop_.Now() < deadline) {
    loop_.RunFor(Millis(50));
  }
  if (LeaderManager() < 0) {
    return Status::Unavailable("no manager leader elected");
  }
  // Bootstrap topology.
  cluster::BootstrapSpec spec;
  spec.pg_count = config_.pg_count;
  spec.replication = config_.replication;
  for (auto& m : metas_) {
    spec.meta_servers.push_back(m.machine->node_id());
  }
  for (auto& d : datas_) {
    spec.data_servers.push_back(d.machine->node_id());
  }
  spec.disks_per_data_server = config_.disks_per_data_machine;
  spec.pvs_per_disk = config_.pvs_per_disk;
  spec.lv_capacity_bytes = config_.lv_capacity_bytes;
  spec.block_size = config_.block_size;
  spec.ec_k = config_.options.tier.ec_k;
  spec.ec_m = config_.options.tier.ec_m;
  RETURN_IF_ERROR(RunManagerAction(
      [spec](cluster::Manager& m) { return m.Bootstrap(spec); }));

  // Start the data plane.
  for (auto& m : metas_) {
    m.server->Start();
  }
  for (auto& d : datas_) {
    d.server->Start();
  }
  for (auto& p : proxies_) {
    p.proxy->Start();
  }
  loop_.RunFor(config_.boot_warmup);

  for (auto& m : metas_) {
    if (!m.server->HasLease() || m.server->view() == 0) {
      return Status::Unavailable("meta server failed to come up");
    }
  }
  return Status::Ok();
}

bool Testbed::RunOnProxy(int i, std::function<sim::Task<>(ClientProxy&)> body, Nanos budget) {
  auto done = std::make_shared<bool>(false);
  proxies_.at(i).machine->actor().Spawn(
      [](ClientProxy* proxy, std::function<sim::Task<>(ClientProxy&)> body,
         std::shared_ptr<bool> done) -> sim::Task<> {
        co_await body(*proxy);
        *done = true;
      }(proxies_.at(i).proxy.get(), std::move(body), done));
  const Nanos deadline = loop_.Now() + budget;
  while (!*done && loop_.Now() < deadline) {
    if (!loop_.RunOne()) {
      break;
    }
  }
  return *done;
}

Status Testbed::PutObject(int proxy, std::string name, std::string data) {
  auto result = std::make_shared<Status>(Status::Internal("unresolved"));
  const bool done = RunOnProxy(proxy, [name = std::move(name), data = std::move(data),
                                       result](ClientProxy& p) -> sim::Task<> {
    *result = co_await p.Put(name, data);
  });
  return done ? *result : Status::Timeout("put did not resolve in budget");
}

Result<std::string> Testbed::GetObject(int proxy, std::string name) {
  auto result =
      std::make_shared<Result<std::string>>(Status::Internal("unresolved"));
  const bool done =
      RunOnProxy(proxy, [name = std::move(name), result](ClientProxy& p) -> sim::Task<> {
        *result = co_await p.Get(name);
      });
  if (!done) {
    return Status::Timeout("get did not resolve in budget");
  }
  return *result;
}

Status Testbed::DeleteObject(int proxy, std::string name) {
  auto result = std::make_shared<Status>(Status::Internal("unresolved"));
  const bool done =
      RunOnProxy(proxy, [name = std::move(name), result](ClientProxy& p) -> sim::Task<> {
        *result = co_await p.Delete(name);
      });
  return done ? *result : Status::Timeout("delete did not resolve in budget");
}

void Testbed::CrashMetaMachine(int i, bool power_loss) {
  auto& b = metas_.at(i);
  if (power_loss) {
    b.machine->PowerFailure();
  } else {
    b.machine->CrashProcess();
  }
  b.rpc->Detach();
}

void Testbed::RestartMetaMachine(int i) {
  auto& b = metas_.at(i);
  b.machine->Restart();
  if (config_.options.qos.enabled) {
    b.sched = std::make_unique<qos::Scheduler>(loop_, b.machine->node_id(),
                                               config_.options.qos);
    b.rpc->SetScheduler(b.sched.get());
  }
  b.rpc->Attach();
  b.server = std::make_unique<MetaServer>(*b.rpc, config_.options, manager_nodes_,
                                          0xfeed + i);
  b.server->Start();
}

void Testbed::CrashDataMachine(int i, bool power_loss) {
  auto& b = datas_.at(i);
  if (power_loss) {
    b.machine->PowerFailure();
  } else {
    b.machine->CrashProcess();
  }
  b.rpc->Detach();
}

void Testbed::RestartDataMachine(int i) {
  auto& b = datas_.at(i);
  b.machine->Restart();
  if (config_.options.qos.enabled) {
    b.sched = std::make_unique<qos::Scheduler>(loop_, b.machine->node_id(),
                                               config_.options.qos);
    b.rpc->SetScheduler(b.sched.get());
  }
  b.rpc->Attach();
  b.server = std::make_unique<DataServer>(*b.rpc, config_.options, manager_nodes_);
  b.server->Start();
}

void Testbed::CrashProxy(int i) {
  auto& b = proxies_.at(i);
  b.machine->CrashProcess();
  b.rpc->Detach();
}

void Testbed::RestartProxy(int i) {
  auto& b = proxies_.at(i);
  b.machine->Restart();
  b.rpc->Attach();
  b.proxy = std::make_unique<ClientProxy>(*b.rpc, config_.options, manager_nodes_,
                                          static_cast<uint32_t>(i + 1));
  b.proxy->Start();
}

void Testbed::CrashManager(int i, bool power_loss) {
  auto& b = managers_.at(i);
  if (power_loss) {
    b.machine->PowerFailure();
  } else {
    b.machine->CrashProcess();
  }
  b.rpc->Detach();
}

void Testbed::RestartManager(int i) {
  auto& b = managers_.at(i);
  b.machine->Restart();
  b.rpc->Attach();
  raft::Config raft_config;
  raft_config.members = manager_nodes_;
  b.manager = std::make_unique<cluster::Manager>(*b.rpc, b.machine->disk(), raft_config,
                                                 config_.manager, 0xbeef + i);
  b.machine->actor().Spawn([](cluster::Manager* mgr) -> sim::Task<> {
    Status s = co_await mgr->Start();
    if (!s.ok()) {
      LOG_ERROR << "manager restart failed: " << s.ToString();
    }
  }(b.manager.get()));
}

std::vector<sim::NodeId> Testbed::AllNodes() const {
  std::vector<sim::NodeId> out;
  for (const auto& m : managers_) {
    out.push_back(m.machine->node_id());
  }
  for (const auto& m : metas_) {
    out.push_back(m.machine->node_id());
  }
  for (const auto& d : datas_) {
    out.push_back(d.machine->node_id());
  }
  for (const auto& p : proxies_) {
    out.push_back(p.machine->node_id());
  }
  return out;
}

void Testbed::Isolate(sim::NodeId node) {
  for (sim::NodeId other : AllNodes()) {
    if (other != node) {
      net_.SetPartitioned(node, other, true);
    }
  }
}

void Testbed::Crash(sim::NodeId node, bool power_loss) {
  for (size_t i = 0; i < metas_.size(); ++i) {
    if (metas_[i].machine->node_id() == node) {
      if (metas_[i].machine->alive()) {
        CrashMetaMachine(static_cast<int>(i), power_loss);
      }
      return;
    }
  }
  for (size_t i = 0; i < datas_.size(); ++i) {
    if (datas_[i].machine->node_id() == node) {
      if (datas_[i].machine->alive()) {
        CrashDataMachine(static_cast<int>(i), power_loss);
      }
      return;
    }
  }
  for (size_t i = 0; i < managers_.size(); ++i) {
    if (managers_[i].machine->node_id() == node) {
      if (managers_[i].machine->alive()) {
        CrashManager(static_cast<int>(i), power_loss);
      }
      return;
    }
  }
  for (size_t i = 0; i < proxies_.size(); ++i) {
    if (proxies_[i].machine->node_id() == node) {
      if (proxies_[i].machine->alive()) {
        CrashProxy(static_cast<int>(i));
      }
      return;
    }
  }
}

void Testbed::Restart(sim::NodeId node) {
  for (size_t i = 0; i < metas_.size(); ++i) {
    if (metas_[i].machine->node_id() == node) {
      if (!metas_[i].machine->alive()) {
        RestartMetaMachine(static_cast<int>(i));
      }
      return;
    }
  }
  for (size_t i = 0; i < datas_.size(); ++i) {
    if (datas_[i].machine->node_id() == node) {
      if (!datas_[i].machine->alive()) {
        RestartDataMachine(static_cast<int>(i));
      }
      return;
    }
  }
  for (size_t i = 0; i < managers_.size(); ++i) {
    if (managers_[i].machine->node_id() == node) {
      if (!managers_[i].machine->alive()) {
        RestartManager(static_cast<int>(i));
      }
      return;
    }
  }
  for (size_t i = 0; i < proxies_.size(); ++i) {
    if (proxies_[i].machine->node_id() == node) {
      if (!proxies_[i].machine->alive()) {
        RestartProxy(static_cast<int>(i));
      }
      return;
    }
  }
}

Result<int> Testbed::AddMetaMachine(bool settle) {
  metas_.push_back(MakeMetaBundle(next_meta_id_, static_cast<int>(metas_.size())));
  const sim::NodeId id = next_meta_id_++;
  metas_.back().server->Start();
  Status s = RunManagerAction(
      [id](cluster::Manager& m) { return m.AddMetaServer(id); });
  if (!s.ok()) {
    return s;
  }
  if (settle) {
    loop_.RunFor(Seconds(1));  // let adoption/pulls settle
  }
  return static_cast<int>(metas_.size() - 1);
}

int Testbed::BeginAddMetaMachine() {
  metas_.push_back(MakeMetaBundle(next_meta_id_, static_cast<int>(metas_.size())));
  const sim::NodeId id = next_meta_id_++;
  metas_.back().server->Start();
  (void)SpawnManagerAction(
      [id](cluster::Manager& m) { return m.AddMetaServer(id); });
  return static_cast<int>(metas_.size() - 1);
}

int Testbed::BeginAddDataMachine(uint32_t disks, uint32_t pvs_per_disk) {
  datas_.push_back(MakeDataBundle(next_data_id_, disks));
  const sim::NodeId id = next_data_id_++;
  datas_.back().server->Start();
  (void)SpawnManagerAction([id, disks, pvs_per_disk](cluster::Manager& m) {
    return m.AddDataServer(id, disks, pvs_per_disk);
  });
  return static_cast<int>(datas_.size() - 1);
}

bool Testbed::BeginDrainMetaMachine(int i) {
  const sim::NodeId node = meta_node(i);
  return SpawnManagerAction(
      [node](cluster::Manager& m) { return m.DrainMetaServer(node); });
}

Status Testbed::DrainMetaMachine(int i, Nanos budget) {
  const sim::NodeId node = meta_node(i);
  if (!BeginDrainMetaMachine(i)) {
    return Status::Unavailable("no manager leader to start the drain");
  }
  const Nanos deadline = loop_.Now() + budget;
  while (loop_.Now() < deadline) {
    const int leader = LeaderManager();
    if (leader >= 0) {
      const cluster::TopologyMap& topo = managers_[leader].manager->topology();
      if (topo.IsRetired(node)) {
        return Status::Ok();
      }
      // Aborted: the drain target died mid-drain and was evicted instead.
      if (!topo.meta_crush.HasItem(node) && !topo.IsDraining(node)) {
        return Status::Unavailable("drain target evicted before retirement");
      }
    }
    loop_.RunFor(Millis(50));
  }
  return Status::Timeout("drain did not complete in budget");
}

Result<int> Testbed::AddDataMachine(uint32_t disks, uint32_t pvs_per_disk) {
  datas_.push_back(MakeDataBundle(next_data_id_, disks));
  const sim::NodeId id = next_data_id_++;
  datas_.back().server->Start();
  Status s = RunManagerAction([id, disks, pvs_per_disk](cluster::Manager& m) {
    return m.AddDataServer(id, disks, pvs_per_disk);
  });
  if (!s.ok()) {
    return s;
  }
  loop_.RunFor(Seconds(1));
  return static_cast<int>(datas_.size() - 1);
}

}  // namespace cheetah::core
