#include "src/core/data_server.h"

#include <algorithm>

#include "src/common/crc32c.h"
#include "src/common/logging.h"
#include "src/qos/qos.h"
#include "src/sim/actor.h"

namespace cheetah::core {

DataServer::DataServer(rpc::Node& rpc, CheetahOptions options,
                       std::vector<sim::NodeId> manager_nodes)
    : rpc_(rpc),
      options_(std::move(options)),
      manager_nodes_(std::move(manager_nodes)),
      scope_("data@" + std::to_string(rpc.id())),
      counters_{scope_.counter("writes"),          scope_.counter("reads"),
                scope_.counter("probes"),          scope_.counter("bytes_written"),
                scope_.counter("bytes_read"),      scope_.counter("volumes_recovered"),
                scope_.counter("recovery_bytes"),  scope_.counter("verify_failures")} {}

void DataServer::Start() {
  rpc_.Serve<DataWriteRequest>(
      [this](sim::NodeId src, DataWriteRequest req) {
        return HandleWrite(src, std::move(req));
      },
      qos::TrafficClass::kForeground);
  rpc_.Serve<DataReadRequest>(
      [this](sim::NodeId src, DataReadRequest req) {
        return HandleRead(src, std::move(req));
      },
      qos::TrafficClass::kForeground);
  // Repair traffic shares the read/write handlers (the derived request
  // slices to its base) but rides the maintenance class, so scrub and
  // read-repair I/O never contends with foreground puts/gets for credit.
  rpc_.Serve<RepairReadRequest>(
      [this](sim::NodeId src, RepairReadRequest req) {
        return HandleRead(src, std::move(req));
      },
      qos::TrafficClass::kMaintenance);
  rpc_.Serve<RepairWriteRequest>(
      [this](sim::NodeId src, RepairWriteRequest req) {
        return HandleWrite(src, std::move(req));
      },
      qos::TrafficClass::kMaintenance);
  rpc_.Serve<DataProbeRequest>(
      [this](sim::NodeId src, DataProbeRequest req) {
        return HandleProbe(src, std::move(req));
      },
      qos::TrafficClass::kMaintenance);
  rpc_.Serve<DataDiscardRequest>(
      [this](sim::NodeId src, DataDiscardRequest req) {
        return HandleDiscard(src, std::move(req));
      },
      qos::TrafficClass::kMaintenance);
  rpc_.Serve<VolumePullRequest>(
      [this](sim::NodeId src, VolumePullRequest req) {
        return HandlePull(src, std::move(req));
      },
      qos::TrafficClass::kBackground);
  rpc_.Serve<cluster::RecoverVolumeRequest>(
      [this](sim::NodeId src, cluster::RecoverVolumeRequest req) {
        return HandleRecover(src, std::move(req));
      },
      qos::TrafficClass::kBackground);
  rpc_.machine().actor().Spawn(HeartbeatLoop());
}

sim::Task<> DataServer::ChargeFsOverhead(uint32_t disk_index) {
  if (options_.fs_backed_data) {
    // One extra metadata write (journal/inode) per file-backed data op.
    co_await DiskFor(disk_index).ChargeWrite(options_.fs_overhead_bytes);
  }
}

sim::Task<Result<DataWriteReply>> DataServer::HandleWrite(sim::NodeId src,
                                                          DataWriteRequest req) {
  sim::Storage& disk = DiskFor(req.disk_index);
  co_await ChargeFsOverhead(req.disk_index);
  // Split the object payload across the extents in order. Each stored extent
  // carries the whole-object checksum so probes and metadata-only reads can
  // report it without reassembling the payload.
  uint64_t consumed = 0;
  for (const auto& e : req.extents) {
    const uint64_t extent_bytes = e.count * req.block_size;
    const uint64_t take = std::min<uint64_t>(extent_bytes, req.data.size() - consumed);
    std::string slice = req.data.substr(consumed, take);
    consumed += take;
    Status s = co_await disk.WriteBlocks(req.device, e.block * req.block_size,
                                         std::move(slice), req.checksum);
    if (!s.ok()) {
      co_return s;
    }
  }
  counters_.writes->Add();
  counters_.bytes_written->Add(req.data.size());
  DataWriteReply reply;
  reply.checksum = req.checksum;
  co_return reply;
}

sim::Task<Result<DataReadReply>> DataServer::HandleRead(sim::NodeId src,
                                                        DataReadRequest req) {
  sim::Storage& disk = DiskFor(req.disk_index);
  co_await ChargeFsOverhead(req.disk_index);
  DataReadReply reply;
  reply.content_valid = disk.store_volume_content();
  uint64_t remaining = req.length;
  for (const auto& e : req.extents) {
    const uint64_t offset = e.block * req.block_size;
    const uint64_t extent_bytes = e.count * req.block_size;
    const uint64_t want = std::min<uint64_t>(extent_bytes, remaining);
    auto data = co_await disk.ReadBlocks(req.device, offset, want);
    if (!data.ok()) {
      co_return data.status();
    }
    // All extents of an object store the same whole-object checksum.
    auto crc = disk.PeekChecksum(req.device, offset);
    if (crc) {
      reply.checksum = *crc;
    }
    // Verified read: reject per extent, before any damaged byte is framed
    // into a reply.
    if (req.verify && (!crc || *crc != req.expected_checksum)) {
      counters_.verify_failures->Add();
      co_return Status::Corruption("extent checksum mismatch at " + req.device +
                                   "+" + std::to_string(offset));
    }
    reply.data += *data;
    remaining -= want;
  }
  if (req.verify && reply.content_valid && Crc32c(reply.data) != req.expected_checksum) {
    // Belt and suspenders for full-content mode: the payload itself rotted
    // while the stored checksum stayed intact.
    counters_.verify_failures->Add();
    co_return Status::Corruption("payload checksum mismatch on " + req.device);
  }
  counters_.reads->Add();
  counters_.bytes_read->Add(reply.data.size());
  co_return reply;
}

sim::Task<Result<DataProbeReply>> DataServer::HandleProbe(sim::NodeId src,
                                                          DataProbeRequest req) {
  sim::Storage& disk = DiskFor(req.disk_index);
  DataProbeReply reply;
  reply.present = true;
  for (const auto& e : req.extents) {
    auto crc = co_await disk.ProbeChecksum(req.device, e.block * req.block_size);
    if (!crc.ok() || *crc != req.expected_checksum) {
      reply.present = false;
      reply.checksum = crc.ok() ? *crc : 0;
      counters_.probes->Add();
      co_return reply;
    }
    reply.checksum = *crc;
  }
  counters_.probes->Add();
  co_return reply;
}

sim::Task<Result<DataDiscardReply>> DataServer::HandleDiscard(sim::NodeId src,
                                                              DataDiscardRequest req) {
  sim::Storage& disk = DiskFor(req.disk_index);
  for (const auto& e : req.extents) {
    disk.DiscardBlocks(req.device, e.block * req.block_size);
  }
  co_return DataDiscardReply{};
}

sim::Task<Result<VolumePullReply>> DataServer::HandlePull(sim::NodeId src,
                                                          VolumePullRequest req) {
  sim::Storage& disk = DiskFor(req.disk_index);
  VolumePullReply reply;
  for (const auto& info : disk.ListVolumeExtents(req.device)) {
    auto data = co_await disk.ReadBlocks(req.device, info.offset, info.length);
    if (!data.ok()) {
      co_return data.status();
    }
    VolumePullReply::ExtentData extent;
    extent.offset = info.offset;
    extent.data = std::move(*data);
    extent.checksum = info.checksum;
    reply.total_bytes += info.length;
    reply.extents.push_back(std::move(extent));
  }
  co_return reply;
}

sim::Task<Result<cluster::RecoverVolumeReply>> DataServer::HandleRecover(
    sim::NodeId src, cluster::RecoverVolumeRequest req) {
  // Pull the healthy replica's contents and materialize the replacement PV.
  cluster::PhysicalVolume source;
  source.id = req.source_pv;
  VolumePullRequest pull;
  pull.device = source.DeviceName();
  pull.disk_index = req.source_disk;
  auto pulled = co_await rpc_.Call(req.source_server, std::move(pull),
                                   Seconds(60));
  if (!pulled.ok()) {
    co_return pulled.status();
  }
  cluster::PhysicalVolume target;
  target.id = req.target_pv;
  sim::Storage& disk = DiskFor(req.target_disk);
  uint64_t copied = 0;
  for (auto& extent : pulled->extents) {
    const uint64_t len = std::max<uint64_t>(extent.data.size(), 1);
    copied += len;
    Status s = co_await disk.WriteBlocks(target.DeviceName(), extent.offset,
                                         std::move(extent.data), extent.checksum);
    if (!s.ok()) {
      co_return s;
    }
  }
  counters_.volumes_recovered->Add();
  counters_.recovery_bytes->Add(copied);
  // Tell the manager the volume is whole again.
  for (sim::NodeId mgr : manager_nodes_) {
    cluster::RecoveryDoneRequest done;
    done.lv = req.lv;
    done.target_pv = req.target_pv;
    done.bytes_copied = copied;
    rpc_.Notify(mgr, std::move(done));
  }
  cluster::RecoverVolumeReply reply;
  reply.bytes_copied = copied;
  co_return reply;
}

sim::Task<> DataServer::HeartbeatLoop() {
  for (;;) {
    for (sim::NodeId mgr : manager_nodes_) {
      cluster::HeartbeatRequest hb;
      hb.node = rpc_.id();
      hb.kind = cluster::ServerKind::kDataServer;
      auto r = co_await rpc_.Call(mgr, std::move(hb), options_.rpc_timeout);
      if (r.ok() && r->is_leader) {
        break;
      }
    }
    co_await sim::SleepFor(options_.heartbeat_interval);
  }
}

}  // namespace cheetah::core
