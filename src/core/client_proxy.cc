#include "src/core/client_proxy.h"

#include <algorithm>

#include "src/common/crc32c.h"
#include "src/common/logging.h"
#include "src/obs/trace.h"
#include "src/qos/qos.h"
#include "src/sim/actor.h"
#include "src/tier/striper.h"

namespace cheetah::core {

ClientProxy::ClientProxy(rpc::Node& rpc, CheetahOptions options,
                         std::vector<sim::NodeId> manager_nodes, uint32_t proxy_id)
    : rpc_(rpc),
      options_(std::move(options)),
      manager_nodes_(std::move(manager_nodes)),
      proxy_id_(proxy_id),
      rng_(0x9c0ffee0ull + proxy_id),
      scope_("proxy@" + std::to_string(rpc.id())),
      counters_{scope_.counter("puts"),    scope_.counter("gets"),
                scope_.counter("deletes"), scope_.counter("retries"),
                scope_.counter("failures"), scope_.counter("cache_hits"),
                scope_.counter("corrupt_replica_reads"),
                scope_.counter("read_repairs"),
                scope_.counter("inline_puts"),
                scope_.counter("ec_degraded_reads"),
                scope_.counter("ec_chunk_repairs"),
                scope_.counter("fast_redirects")} {}

ClientProxy::MetaWindow& ClientProxy::WindowFor(sim::NodeId dst) {
  auto it = windows_.find(dst);
  if (it == windows_.end()) {
    auto mw = std::make_unique<MetaWindow>(options_.aimd);
    mw->window_gauge = scope_.gauge("aimd_window." + std::to_string(dst));
    it = windows_.emplace(dst, std::move(mw)).first;
  }
  return *it->second;
}

void ClientProxy::Start() {
  rpc_.Serve<MetaPersistedNotify>([this](sim::NodeId src, MetaPersistedNotify req) {
    return HandlePersisted(src, std::move(req));
  });
  rpc_.Serve<cluster::TopologyPush>([this](sim::NodeId src, cluster::TopologyPush req) {
    return HandleTopologyPush(src, std::move(req));
  });
  rpc_.machine().actor().Spawn(HeartbeatLoop());
}

sim::Task<Result<MetaPersistedAck>> ClientProxy::HandlePersisted(sim::NodeId src,
                                                                 MetaPersistedNotify req) {
  auto it = persist_waits_.find(req.reqid);
  if (it != persist_waits_.end()) {
    it->second->ok = req.ok;
    it->second->done.Set();
  }
  co_return MetaPersistedAck{};
}

sim::Task<Result<cluster::TopologyPushReply>> ClientProxy::HandleTopologyPush(
    sim::NodeId src, cluster::TopologyPush req) {
  auto map = cluster::TopologyMap::Deserialize(req.serialized_map);
  if (map.ok() && map->view > topo_.view) {
    topo_ = std::move(*map);
    meta_cache_.clear();  // volume assignments may have changed
  }
  co_return cluster::TopologyPushReply{};
}

sim::Task<> ClientProxy::HeartbeatLoop() {
  for (;;) {
    for (sim::NodeId mgr : manager_nodes_) {
      cluster::HeartbeatRequest hb;
      hb.node = rpc_.id();
      hb.kind = cluster::ServerKind::kClientProxy;
      hb.view = topo_.view;
      auto r = co_await rpc_.Call(mgr, std::move(hb), options_.rpc_timeout);
      if (r.ok() && r->is_leader) {
        if (r->current_view > topo_.view) {
          (void)co_await RefreshTopology();
        }
        break;
      }
    }
    co_await sim::SleepFor(options_.heartbeat_interval * 4);
  }
}

sim::Task<Status> ClientProxy::EnsureTopology() {
  if (topo_.view > 0) {
    co_return Status::Ok();
  }
  co_return co_await RefreshTopology();
}

sim::Task<Status> ClientProxy::RefreshTopology() {
  for (sim::NodeId mgr : manager_nodes_) {
    cluster::GetTopologyRequest get;
    get.have_view = 0;  // always fetch the full map
    auto r = co_await rpc_.Call(mgr, std::move(get), options_.rpc_timeout);
    if (!r.ok() || !r->changed) {
      continue;
    }
    auto map = cluster::TopologyMap::Deserialize(r->serialized_map);
    if (!map.ok()) {
      continue;
    }
    if (map->view > topo_.view) {
      topo_ = std::move(*map);
      meta_cache_.clear();
    }
    co_return Status::Ok();
  }
  co_return Status::Unavailable("no manager answered with a topology");
}

void ClientProxy::ReportSuspect(sim::NodeId node) {
  for (sim::NodeId mgr : manager_nodes_) {
    cluster::ReportFailureRequest report;
    report.suspect = node;
    rpc_.Notify(mgr, std::move(report));
  }
}

sim::Task<> ClientProxy::BackoffAndRefresh(int attempt) {
  // Capped exponential backoff with decorrelated jitter: the sleep is drawn
  // from [floor, min(cap, 3 * previous)], where the floor doubles each
  // attempt. The floor guarantees later retries wait out a view change's
  // adoption window instead of burning all attempts against a server that
  // fast-fails while initializing; the draw (from the proxy's own seeded
  // RNG, so runs stay reproducible) decorrelates proxies so recovery traffic
  // doesn't stampede in lockstep.
  const Nanos base = options_.backoff_base;
  const Nanos cap = options_.backoff_cap;
  const Nanos floor = std::min(cap, base << std::min(attempt, 10));
  const Nanos hi =
      std::max(floor, std::min(cap, 3 * std::max(backoff_, base)));
  backoff_ = floor + rng_.Uniform(hi - floor + 1);
  co_await sim::SleepFor(backoff_);
  (void)co_await RefreshTopology();
}

uint64_t ClientProxy::StaleViewHint(const Status& s) {
  const std::string& msg = s.message();
  static constexpr const char kTag[] = "server at view ";
  const size_t pos = msg.rfind(kTag);
  if (pos == std::string::npos) {
    return 0;
  }
  uint64_t view = 0;
  for (size_t i = pos + sizeof(kTag) - 1;
       i < msg.size() && msg[i] >= '0' && msg[i] <= '9'; ++i) {
    view = view * 10 + static_cast<uint64_t>(msg[i] - '0');
  }
  return view;
}

sim::Task<> ClientProxy::ChaseStaleView(const Status& s) {
  const uint64_t hint = StaleViewHint(s);
  if (hint > topo_.view) {
    counters_.fast_redirects->Add();
    // The server is provably ahead: poll the managers until the replicated
    // topology catches up to the hinted view. No jittered sleep between
    // rounds — the view is already committed somewhere, the only latency is
    // Raft apply + push propagation, which the short fixed pause covers.
    for (int round = 0; round < 8 && topo_.view < hint; ++round) {
      (void)co_await RefreshTopology();
      if (topo_.view >= hint) {
        break;
      }
      co_await sim::SleepFor(Millis(5) * (round + 1));
    }
    co_return;
  }
  // No usable hint (e.g. "not the primary of this pg"): plain refresh.
  (void)co_await RefreshTopology();
}

// ---- put ----

sim::Task<Status> ClientProxy::Put(std::string name, std::string data) {
  auto& tracer = obs::Tracer::Global();
  const uint64_t op =
      tracer.enabled() ? tracer.BeginOp("put", rpc_.id(), rpc_.machine().loop().Now()) : 0;
  Status s = co_await PutImpl(std::move(name), std::move(data));
  tracer.EndOp(op, rpc_.machine().loop().Now(), s.ok());
  co_return s;
}

sim::Task<Status> ClientProxy::PutImpl(std::string name, std::string data) {
  CO_RETURN_IF_ERROR(co_await EnsureTopology());
  const uint32_t checksum = Crc32c(data);
  const ReqId reqid = (static_cast<uint64_t>(proxy_id_) << 32) | next_req_++;
  bool re_meta = false;
  bool re_data = false;
  for (int attempt = 0; attempt < options_.max_retries; ++attempt) {
    Status s = co_await PutAttempt(name, data, checksum, reqid, re_meta, re_data);
    if (s.ok()) {
      counters_.puts->Add();
      co_return s;
    }
    if (s.code() == ErrorCode::kAlreadyExists ||
        s.code() == ErrorCode::kResourceExhausted) {
      counters_.failures->Add();
      co_return s;  // terminal
    }
    counters_.retries->Add();
    if (s.IsStaleView()) {
      co_await ChaseStaleView(s);
    } else if (s.IsOverloaded()) {
      // Admission-control pushback, not a failure: honor the server's
      // retry-after hint without escalating to RE-META or refreshing views.
      co_await sim::SleepFor(qos::RetryAfterOf(s, options_.backoff_base));
    } else if (s.code() == ErrorCode::kIoError) {
      re_data = true;  // a data server failed us mid-write (§5.3 RE-DATA)
      co_await BackoffAndRefresh(attempt);
    } else {
      re_meta = true;  // meta path failed; resume after recovery (§5.3 RE-META)
      co_await BackoffAndRefresh(attempt);
    }
  }
  counters_.failures->Add();
  co_return Status::Unavailable("put exhausted retries");
}

sim::Task<Status> ClientProxy::PutAttempt(const std::string& name, const std::string& data,
                                          uint32_t checksum, ReqId reqid, bool re_meta,
                                          bool re_data) {
  const cluster::PgId pg = topo_.PgOf(name);
  const sim::NodeId primary = topo_.PrimaryOf(pg);

  auto wait = std::make_shared<PersistWait>();
  persist_waits_[reqid] = wait;
  PutAllocRequest alloc;
  alloc.view = topo_.view;
  alloc.name = name;
  alloc.size = data.size();
  alloc.checksum = checksum;
  alloc.reqid = reqid;
  alloc.proxy_id = proxy_id_;
  alloc.proxy_node = rpc_.id();
  alloc.re_meta = re_meta;
  alloc.re_data = re_data;
  // Small objects ride inside the MetaX record itself: one round trip to the
  // meta primary, no data-server writes at all. The primary decides (it may
  // decline, e.g. during recovery), so the reply's inline_stored flag — not
  // the request hint — gates the data fan-out below.
  if (options_.tier.inline_threshold > 0 &&
      data.size() <= options_.tier.inline_threshold) {
    alloc.is_inline = true;
    alloc.inline_data = data;
  }
  auto reply = co_await CallMeta(primary, std::move(alloc));
  if (!reply.ok()) {
    persist_waits_.erase(reqid);
    if (reply.status().IsTimeout()) {
      ReportSuspect(primary);
    }
    co_return reply.status();
  }

  if (reply->already_done) {
    // An earlier attempt took effect and a delete has since settled it; the
    // extents are gone, so there is no data to (re)write.
    persist_waits_.erase(reqid);
    co_return Status::Ok();
  }
  if (!reply->inline_stored) {
    const cluster::LogicalVolume* lv = topo_.FindLv(reply->lvid);
    if (lv == nullptr) {
      persist_waits_.erase(reqid);
      co_return Status::StaleView("allocated volume unknown to this proxy");
    }
    Status ws = co_await WriteDataReplicas(*lv, reply->extents, data, checksum);
    if (!ws.ok()) {
      persist_waits_.erase(reqid);
      co_return Status::IoError("data write failed: " + ws.ToString());
    }
  } else {
    counters_.inline_puts->Add();
  }

  // Wait for the MetaX-persisted ack (already satisfied in Cheetah-OW). The
  // wait span is what distinguishes a stock put from an OW put in traces —
  // the protocol regression test keys off it. Skipping this wait is the
  // canonical injected bug the chaos suite must catch (see options.h).
  if (!reply->persisted && !options_.unsafe_skip_persist_wait) {
    auto& tracer = obs::Tracer::Global();
    const uint64_t wspan =
        tracer.enabled() ? tracer.Begin(obs::SpanKind::kWait, "put.persist_wait", rpc_.id(),
                                        rpc_.machine().loop().Now())
                         : 0;
    const bool fired = co_await wait->done.TimedWait(options_.rpc_timeout);
    tracer.End(wspan, rpc_.machine().loop().Now(), fired && wait->ok);
    if (!fired || !wait->ok) {
      persist_waits_.erase(reqid);
      co_return Status::Unavailable("MetaX persistence did not complete");
    }
  }
  persist_waits_.erase(reqid);

  // Committed (Pseudocode 1 line 9); notify the primary (line 10).
  PutCommitNotify commit;
  commit.view = topo_.view;
  commit.name = name;
  commit.reqid = reqid;
  rpc_.Notify(primary, std::move(commit));

  if (options_.enable_read_cache) {
    ObMeta cached;
    if (reply->inline_stored) {
      cached.storage_class = StorageClass::kInline;
      cached.inline_data = data;
    } else {
      cached.lvid = reply->lvid;
      cached.extents = reply->extents;
    }
    cached.checksum = checksum;
    cached.size = data.size();
    meta_cache_[name] = std::move(cached);
  }
  co_return Status::Ok();
}

sim::Task<Status> ClientProxy::WriteDataReplicas(const cluster::LogicalVolume& lv,
                                                 const std::vector<alloc::Extent>& extents,
                                                 const std::string& data, uint32_t checksum) {
  std::vector<sim::Task<Status>> tasks;
  for (cluster::PvId pv_id : lv.replicas) {
    const cluster::PhysicalVolume* pv = topo_.FindPv(pv_id);
    if (pv == nullptr) {
      co_return Status::StaleView("physical volume unknown");
    }
    tasks.push_back([](ClientProxy* self, const cluster::PhysicalVolume* pv,
                       uint32_t block_size, std::vector<alloc::Extent> extents,
                       std::string data, uint32_t checksum) -> sim::Task<Status> {
      DataWriteRequest write;
      write.view = self->topo_.view;
      write.device = pv->DeviceName();
      write.disk_index = pv->disk_index;
      write.block_size = block_size;
      write.extents = std::move(extents);
      write.data = std::move(data);
      write.checksum = checksum;
      const sim::NodeId target = pv->data_server;
      auto r = co_await self->rpc_.Call(target, std::move(write), self->options_.rpc_timeout);
      if (!r.ok()) {
        if (r.status().IsTimeout()) {
          self->ReportSuspect(target);
        }
        co_return r.status();
      }
      co_return Status::Ok();
    }(this, pv, lv.block_size, extents, data, checksum));
  }
  auto results = co_await sim::WhenAll(std::move(tasks));
  for (const Status& s : results) {
    if (!s.ok()) {
      co_return s;
    }
  }
  co_return Status::Ok();
}

// ---- get ----

sim::Task<Result<std::string>> ClientProxy::Get(std::string name) {
  auto& tracer = obs::Tracer::Global();
  const uint64_t op =
      tracer.enabled() ? tracer.BeginOp("get", rpc_.id(), rpc_.machine().loop().Now()) : 0;
  Result<std::string> r = co_await GetImpl(std::move(name));
  tracer.EndOp(op, rpc_.machine().loop().Now(), r.ok());
  co_return r;
}

sim::Task<Result<std::string>> ClientProxy::GetImpl(std::string name) {
  CO_RETURN_IF_ERROR(co_await EnsureTopology());
  for (int attempt = 0; attempt < options_.max_retries; ++attempt) {
    const cluster::PgId pg = topo_.PgOf(name);
    const sim::NodeId primary = topo_.PrimaryOf(pg);

    // §7 read optimization: with cached metadata, overlap the authoritative
    // metadata lookup with the data read.
    auto cached = options_.enable_read_cache ? meta_cache_.find(name) : meta_cache_.end();
    if (cached != meta_cache_.end()) {
      counters_.cache_hits->Add();
      // Concurrent ops on this proxy can mutate meta_cache_ while the
      // parallel lookup below is suspended, invalidating the iterator —
      // work from a copy.
      const ObMeta cached_meta = cached->second;
      struct ParallelGet {
        Result<std::string> data = Status::Internal("unresolved");
        Result<GetMetaReply> meta = Status::Internal("unresolved");
      };
      auto par = std::make_shared<ParallelGet>();
      std::vector<sim::Task<>> tasks;
      tasks.push_back([](ClientProxy* self, ObMeta m,
                         std::shared_ptr<ParallelGet> par) -> sim::Task<> {
        par->data = co_await self->ReadData(m, /*verify=*/true);
      }(this, cached_meta, par));
      GetMetaRequest req;
      req.view = topo_.view;
      req.name = name;
      tasks.push_back([](ClientProxy* self, sim::NodeId primary, GetMetaRequest req,
                         std::shared_ptr<ParallelGet> par) -> sim::Task<> {
        par->meta = co_await self->CallMeta(primary, std::move(req));
      }(this, primary, std::move(req), par));
      co_await sim::WhenAllVoid(std::move(tasks));
      auto& meta = par->meta;
      auto& data0 = par->data;
      if (meta.ok() && data0.ok() && meta->meta.checksum == cached_meta.checksum) {
        counters_.gets->Add();
        co_return std::move(data0);
      }
      meta_cache_.erase(name);
      if (meta.ok() && !data0.ok()) {
        // Metadata moved (migration/recovery): retry the read at the fresh
        // location using the authoritative metadata.
        auto data = co_await ReadData(par->meta->meta, /*verify=*/true);
        if (data.ok()) {
          counters_.gets->Add();
          co_return data;
        }
      }
      if (!meta.ok() && meta.status().IsNotFound()) {
        co_return meta.status();
      }
      // fall through into the uncached path for error handling
    }

    GetMetaRequest req;
    req.view = topo_.view;
    req.name = name;
    auto meta = co_await CallMeta(primary, std::move(req));
    if (!meta.ok()) {
      if (meta.status().IsNotFound()) {
        co_return meta.status();
      }
      LOG_DEBUG << "proxy " << proxy_id_ << " get " << name << " attempt " << attempt
                << " meta: " << meta.status().ToString();
      counters_.retries->Add();
      if (meta.status().IsTimeout()) {
        ReportSuspect(primary);
      }
      if (meta.status().IsStaleView()) {
        co_await ChaseStaleView(meta.status());
      } else if (meta.status().IsOverloaded()) {
        co_await sim::SleepFor(
            qos::RetryAfterOf(meta.status(), options_.backoff_base));
      } else {
        co_await BackoffAndRefresh(attempt);
      }
      continue;
    }
    auto data = co_await ReadData(meta->meta, /*verify=*/true);
    if (data.ok()) {
      if (options_.enable_read_cache) {
        meta_cache_[name] = meta->meta;
      }
      counters_.gets->Add();
      co_return data;
    }
    LOG_DEBUG << "proxy " << proxy_id_ << " get " << name << " attempt " << attempt
              << " data: " << data.status().ToString();
    counters_.retries->Add();
    co_await BackoffAndRefresh(attempt);
  }
  counters_.failures->Add();
  co_return Status::Unavailable("get exhausted retries");
}

sim::Task<Result<std::string>> ClientProxy::ReadData(const ObMeta& meta, bool verify) {
  if (meta.storage_class == StorageClass::kInline) {
    // The payload rode inside the MetaX record; nothing on the data plane.
    if (verify && Crc32c(meta.inline_data) != meta.checksum) {
      co_return Status::Corruption("inline payload checksum mismatch");
    }
    co_return meta.inline_data;
  }
  if (meta.storage_class == StorageClass::kEc) {
    co_return co_await ReadEcData(meta);
  }
  const cluster::LogicalVolume* lv = topo_.FindLv(meta.lvid);
  if (lv == nullptr) {
    co_return Status::StaleView("volume unknown");
  }
  // Copy what the reads need out of the topology now: a TopologyPush handled
  // while a read below is suspended reassigns topo_, dangling lv (and any pv
  // pointer held across an await).
  const std::vector<cluster::PvId> order = lv->replicas;
  const uint32_t block_size = lv->block_size;
  std::vector<DamagedReplica> damaged;
  // The lease lets a get read from any one of the n data servers (§5.1).
  const size_t start = rng_.Uniform(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    const cluster::PhysicalVolume* pv = topo_.FindPv(order[(start + i) % order.size()]);
    if (pv == nullptr || !pv->healthy) {
      continue;
    }
    DataReadRequest read;
    read.device = pv->DeviceName();
    read.disk_index = pv->disk_index;
    read.block_size = block_size;
    read.extents = meta.extents;
    read.length = meta.size;
    read.verify = verify;
    read.expected_checksum = meta.checksum;
    const sim::NodeId target = pv->data_server;
    const DamagedReplica as_damaged{pv->DeviceName(), pv->disk_index, target};
    auto r = co_await rpc_.Call(target, std::move(read), options_.rpc_timeout);
    if (!r.ok()) {
      if (r.status().IsTimeout()) {
        ReportSuspect(target);
      }
      // A server-side verification failure or an unreadable sector is
      // positive evidence of damage (unlike a timeout or a stale view):
      // remember the replica for repair.
      if (r.status().code() == ErrorCode::kCorruption ||
          r.status().code() == ErrorCode::kIoError) {
        counters_.corrupt_replica_reads->Add();
        damaged.push_back(as_damaged);
      }
      continue;
    }
    if (verify) {
      // Full-content mode: recompute; metadata-only mode: the device reports
      // the checksum it stored at write time.
      const uint32_t crc = r->content_valid ? Crc32c(r->data) : r->checksum;
      if (crc != meta.checksum || r->checksum != meta.checksum) {
        counters_.corrupt_replica_reads->Add();
        damaged.push_back(as_damaged);
        continue;  // corrupt/partial replica; try another
      }
    }
    if (verify && !damaged.empty() && options_.enable_read_repair) {
      SpawnReadRepair(meta, block_size, std::move(damaged), r->data);
    }
    co_return std::move(r->data);
  }
  co_return Status::Unavailable("no data replica answered");
}

sim::Task<Result<std::string>> ClientProxy::ReadEcData(const ObMeta& meta) {
  const uint32_t k = meta.ec_k;
  const uint32_t m = meta.ec_m;
  // Everything the chunk I/O needs, copied out of the topology before the
  // first co_await (same dangling-pointer hazard as ReadData).
  struct ChunkTarget {
    std::string device;
    uint32_t disk_index = 0;
    sim::NodeId node = sim::kInvalidNode;
  };
  std::vector<ChunkTarget> targets;
  uint32_t block_size = 4096;
  {
    const cluster::LogicalVolume* lv = topo_.FindLv(meta.lvid);
    if (lv == nullptr) {
      co_return Status::StaleView("stripe volume unknown");
    }
    if (k == 0 || lv->replicas.size() != static_cast<size_t>(k) + m ||
        meta.chunk_crcs.size() != lv->replicas.size()) {
      co_return Status::Corruption("inconsistent EC stripe metadata");
    }
    block_size = lv->block_size;
    for (cluster::PvId pv_id : lv->replicas) {
      const cluster::PhysicalVolume* pv = topo_.FindPv(pv_id);
      if (pv == nullptr) {
        co_return Status::StaleView("stripe member volume unknown");
      }
      targets.push_back(ChunkTarget{pv->DeviceName(), pv->disk_index, pv->data_server});
    }
  }
  const uint64_t shard_bytes = tier::ShardBytes(meta.size, k);

  struct StripeState {
    std::vector<std::optional<std::string>> chunks;  // verified survivors
    std::vector<char> damaged;  // positive evidence of damage, per chunk
  };
  auto st = std::make_shared<StripeState>();
  st->chunks.resize(targets.size());
  st->damaged.assign(targets.size(), 0);

  // Fast path: the k data chunks in parallel. The code is systematic, so
  // their concatenation (minus padding) is the object — no decode needed.
  std::vector<sim::Task<>> reads;
  for (uint32_t j = 0; j < k; ++j) {
    reads.push_back([](ClientProxy* self, ChunkTarget t, size_t j,
                       uint32_t block_size, std::vector<alloc::Extent> extents,
                       uint64_t shard_bytes, uint32_t crc,
                       std::shared_ptr<StripeState> st) -> sim::Task<> {
      DataReadRequest read;
      read.device = t.device;
      read.disk_index = t.disk_index;
      read.block_size = block_size;
      read.extents = std::move(extents);
      read.length = shard_bytes;
      read.verify = true;
      read.expected_checksum = crc;
      auto r = co_await self->rpc_.Call(t.node, std::move(read), self->options_.rpc_timeout);
      if (!r.ok()) {
        if (r.status().IsTimeout()) {
          self->ReportSuspect(t.node);
        }
        if (r.status().code() == ErrorCode::kCorruption ||
            r.status().code() == ErrorCode::kIoError) {
          self->counters_.corrupt_replica_reads->Add();
          st->damaged[j] = 1;
        }
        co_return;
      }
      const uint32_t got = r->content_valid ? Crc32c(r->data) : r->checksum;
      if (got != crc) {
        self->counters_.corrupt_replica_reads->Add();
        st->damaged[j] = 1;
        co_return;
      }
      st->chunks[j] = std::move(r->data);
    }(this, targets[j], j, block_size, meta.extents, shard_bytes,
      meta.chunk_crcs[j], st));
  }
  co_await sim::WhenAllVoid(std::move(reads));

  size_t have = 0;
  for (uint32_t j = 0; j < k; ++j) {
    have += st->chunks[j].has_value() ? 1 : 0;
  }
  if (have == k) {
    std::string data;
    data.reserve(static_cast<size_t>(shard_bytes) * k);
    for (uint32_t j = 0; j < k; ++j) {
      data += *st->chunks[j];
    }
    data.resize(meta.size);
    co_return data;
  }

  // Degraded: pull parity chunks until any k survive, then decode. Parity is
  // fetched one at a time — the fast path already has most of the stripe, and
  // the sequential tail keeps parity traffic off healthy gets entirely.
  for (size_t j = k; j < targets.size() && have < k; ++j) {
    DataReadRequest read;
    read.device = targets[j].device;
    read.disk_index = targets[j].disk_index;
    read.block_size = block_size;
    read.extents = meta.extents;
    read.length = shard_bytes;
    read.verify = true;
    read.expected_checksum = meta.chunk_crcs[j];
    auto r = co_await rpc_.Call(targets[j].node, std::move(read), options_.rpc_timeout);
    if (!r.ok()) {
      if (r.status().IsTimeout()) {
        ReportSuspect(targets[j].node);
      }
      if (r.status().code() == ErrorCode::kCorruption ||
          r.status().code() == ErrorCode::kIoError) {
        counters_.corrupt_replica_reads->Add();
        st->damaged[j] = 1;
      }
      continue;
    }
    const uint32_t got = r->content_valid ? Crc32c(r->data) : r->checksum;
    if (got != meta.chunk_crcs[j]) {
      counters_.corrupt_replica_reads->Add();
      st->damaged[j] = 1;
      continue;
    }
    st->chunks[j] = std::move(r->data);
    ++have;
  }
  if (have < static_cast<size_t>(k)) {
    co_return Status::Unavailable("stripe lost more than m chunks");
  }
  auto decoded = tier::DecodeChunks(st->chunks, k, m, meta.size);
  if (!decoded.ok()) {
    co_return decoded.status();
  }
  counters_.ec_degraded_reads->Add();

  if (options_.enable_read_repair) {
    // Fire-and-forget reconstruction repair of the positively-damaged chunks
    // (maintenance class, same rationale as SpawnReadRepair). A rebuilt chunk
    // is written back only if its bytes match the CRC recorded in MetaX — a
    // reconstruction racing a demotion swap can never plant garbage.
    rpc_.machine().actor().Spawn([](ClientProxy* self, ObMeta meta,
                                    uint32_t block_size,
                                    std::vector<ChunkTarget> targets,
                                    std::shared_ptr<StripeState> st) -> sim::Task<> {
      auto rebuilt = tier::ReconstructChunks(st->chunks, meta.ec_k, meta.ec_m);
      if (!rebuilt.ok()) {
        co_return;
      }
      for (size_t j = 0; j < targets.size(); ++j) {
        if (!st->damaged[j] || Crc32c((*rebuilt)[j]) != meta.chunk_crcs[j]) {
          continue;
        }
        RepairWriteRequest write;
        write.view = self->topo_.view;
        write.device = targets[j].device;
        write.disk_index = targets[j].disk_index;
        write.block_size = block_size;
        write.extents = meta.extents;
        write.data = (*rebuilt)[j];
        write.checksum = meta.chunk_crcs[j];
        auto w = co_await self->rpc_.Call(targets[j].node, std::move(write),
                                          self->options_.rpc_timeout);
        if (w.ok()) {
          self->counters_.ec_chunk_repairs->Add();
        }
      }
    }(this, meta, block_size, std::move(targets), st));
  }
  co_return std::move(*decoded);
}

void ClientProxy::SpawnReadRepair(const ObMeta& meta, uint32_t block_size,
                                  std::vector<DamagedReplica> damaged, std::string data) {
  // Fire-and-forget on the proxy's actor: the get that discovered the damage
  // has already returned by the time these writes land. Everything the task
  // needs is copied in — a concurrent delete or topology push can't dangle
  // it. Writing to a deleted object's old extents is benign: visibility is
  // governed by MetaX, and the blocks are either unallocated (the write is
  // superseded by the next put to reuse them, which lands later than this
  // repair in virtual time or overwrites it) or already reused (the repair
  // write is itself overwritten; scrub re-heals if it races in between).
  rpc_.machine().actor().Spawn([](ClientProxy* self, ObMeta meta, uint32_t block_size,
                                  std::vector<DamagedReplica> damaged,
                                  std::string data) -> sim::Task<> {
    for (const DamagedReplica& d : damaged) {
      RepairWriteRequest write;
      write.view = self->topo_.view;
      write.device = d.device;
      write.disk_index = d.disk_index;
      write.block_size = block_size;
      write.extents = meta.extents;
      write.data = data;
      write.checksum = meta.checksum;
      auto w = co_await self->rpc_.Call(d.data_server, std::move(write),
                                        self->options_.rpc_timeout);
      if (w.ok()) {
        self->counters_.read_repairs->Add();
      }
    }
  }(this, meta, block_size, std::move(damaged), std::move(data)));
}

// ---- delete ----

sim::Task<Status> ClientProxy::Delete(std::string name) {
  auto& tracer = obs::Tracer::Global();
  const uint64_t op =
      tracer.enabled() ? tracer.BeginOp("delete", rpc_.id(), rpc_.machine().loop().Now()) : 0;
  Status s = co_await DeleteImpl(std::move(name));
  tracer.EndOp(op, rpc_.machine().loop().Now(), s.ok());
  co_return s;
}

sim::Task<Status> ClientProxy::DeleteImpl(std::string name) {
  CO_RETURN_IF_ERROR(co_await EnsureTopology());
  meta_cache_.erase(name);
  const ReqId reqid = (static_cast<uint64_t>(proxy_id_) << 32) | next_req_++;
  for (int attempt = 0; attempt < options_.max_retries; ++attempt) {
    const cluster::PgId pg = topo_.PgOf(name);
    const sim::NodeId primary = topo_.PrimaryOf(pg);
    DeleteRequest req;
    req.view = topo_.view;
    req.name = name;
    req.reqid = reqid;
    req.proxy_id = proxy_id_;
    auto r = co_await CallMeta(primary, std::move(req));
    if (r.ok()) {
      counters_.deletes->Add();
      co_return Status::Ok();
    }
    if (r.status().IsNotFound()) {
      co_return r.status();
    }
    counters_.retries->Add();
    if (r.status().IsTimeout()) {
      ReportSuspect(primary);
    }
    if (r.status().IsStaleView()) {
      co_await ChaseStaleView(r.status());
    } else if (r.status().IsOverloaded()) {
      co_await sim::SleepFor(
          qos::RetryAfterOf(r.status(), options_.backoff_base));
    } else {
      co_await BackoffAndRefresh(attempt);
    }
  }
  counters_.failures->Add();
  co_return Status::Unavailable("delete exhausted retries");
}

}  // namespace cheetah::core
