#include "src/core/meta_server.h"

#include <algorithm>

#include "src/common/crc32c.h"
#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/core/scrubber.h"
#include "src/qos/qos.h"
#include "src/sim/actor.h"
#include "src/sim/sync.h"
#include "src/tier/engine.h"
#include "src/tier/policy.h"

namespace cheetah::core {

namespace {

std::string BitmapFile(cluster::LvId lv) { return "bitmap_" + std::to_string(lv); }

}  // namespace

MetaServer::MetaServer(rpc::Node& rpc, CheetahOptions options,
                       std::vector<sim::NodeId> manager_nodes, uint64_t seed)
    : rpc_(rpc),
      options_(std::move(options)),
      manager_nodes_(std::move(manager_nodes)),
      seed_(seed),
      scope_("meta@" + std::to_string(rpc.id())),
      counters_{scope_.counter("put_allocs"),
                scope_.counter("gets"),
                scope_.counter("deletes"),
                scope_.counter("replications"),
                scope_.counter("pg_pulls_served"),
                scope_.counter("recovered_kvs"),
                scope_.counter("completed_puts"),
                scope_.counter("revoked_puts"),
                scope_.counter("logs_cleaned"),
                scope_.counter("migrated_objects")} {
  scrubber_ = std::make_unique<Scrubber>(*this, rpc_, options_);
  tier_ = std::make_unique<tier::TierEngine>(*this, rpc_, options_);
}

MetaServer::~MetaServer() = default;

MetaServer::Stats MetaServer::stats() const {
  const Scrubber::Stats scrub = scrubber_->stats();
  return Stats{counters_.put_allocs->value(),
               counters_.gets->value(),
               counters_.deletes->value(),
               counters_.replications->value(),
               counters_.pg_pulls_served->value(),
               counters_.recovered_kvs->value(),
               counters_.completed_puts->value(),
               counters_.revoked_puts->value(),
               counters_.logs_cleaned->value(),
               counters_.migrated_objects->value(),
               scrub.objects,
               scrub.repairs};
}

void MetaServer::Start() {
  rpc_.Serve<PutAllocRequest>(
      [this](sim::NodeId src, PutAllocRequest req) {
        return HandlePutAlloc(src, std::move(req));
      },
      qos::TrafficClass::kForeground);
  rpc_.Serve<PutCommitNotify>(
      [this](sim::NodeId src, PutCommitNotify req) {
        return HandleCommit(src, std::move(req));
      },
      qos::TrafficClass::kForeground);
  rpc_.Serve<GetMetaRequest>(
      [this](sim::NodeId src, GetMetaRequest req) {
        return HandleGet(src, std::move(req));
      },
      qos::TrafficClass::kForeground);
  rpc_.Serve<DeleteRequest>(
      [this](sim::NodeId src, DeleteRequest req) {
        return HandleDelete(src, std::move(req));
      },
      qos::TrafficClass::kForeground);
  rpc_.Serve<ReplicateMetaXRequest>(
      [this](sim::NodeId src, ReplicateMetaXRequest req) {
        return HandleReplicate(src, std::move(req));
      },
      qos::TrafficClass::kReplication);
  rpc_.Serve<PgPullRequest>(
      [this](sim::NodeId src, PgPullRequest req) {
        return HandlePgPull(src, std::move(req));
      },
      qos::TrafficClass::kBackground);
  rpc_.Serve<cluster::MigratePgRequest>(
      [this](sim::NodeId src, cluster::MigratePgRequest req) {
        return HandleMigratePg(src, std::move(req));
      },
      qos::TrafficClass::kMaintenance);
  rpc_.Serve<cluster::TopologyPush>([this](sim::NodeId src, cluster::TopologyPush req) {
    return HandleTopologyPush(src, std::move(req));
  });
  rpc_.machine().actor().Spawn(Init());
}

sim::Task<> MetaServer::Init() {
  kv::Options kv_opts = options_.metax_kv;
  kv_opts.name = "metax";
  auto db = co_await kv::DB::Open(std::move(kv_opts), &rpc_.machine().disk(0));
  if (!db.ok()) {
    LOG_ERROR << "meta server " << rpc_.id() << ": db open failed: "
              << db.status().ToString();
    co_return;
  }
  db_ = std::move(*db);
  rpc_.machine().actor().Spawn(HeartbeatLoop());
  rpc_.machine().actor().Spawn(CleanerLoop());
  if (options_.scrub_interval > 0) {
    rpc_.machine().actor().Spawn(scrubber_->Loop());
  }
  if (options_.tier.tier_scan_interval > 0 && options_.tier.ec_k > 0) {
    rpc_.machine().actor().Spawn(tier_->Loop());
  }
}

bool MetaServer::HasLease() const {
  return rpc_.machine().loop().Now() < lease_until_;
}

bool MetaServer::IsPrimary(cluster::PgId pg) const {
  return topo_.pg_count > 0 && topo_.PrimaryOf(pg) == rpc_.id();
}

Status MetaServer::CheckRequest(uint64_t view, cluster::PgId pg, bool need_primary) const {
  if (db_ == nullptr || topo_.view == 0) {
    return Status::Unavailable("meta server initializing");
  }
  if (view != topo_.view) {
    return Status::StaleView("server at view " + std::to_string(topo_.view));
  }
  if (!HasLease()) {
    return Status::Unavailable("lease expired");
  }
  if (!ready_pgs_.contains(pg)) {
    return Status::Unavailable("pg not ready");
  }
  if (need_primary && !IsPrimary(pg)) {
    return Status::StaleView("not the primary of this pg");
  }
  return Status::Ok();
}

std::vector<cluster::LvId> MetaServer::EffectiveVg(cluster::PgId pg) const {
  if (!options_.no_volume_groups) {
    auto it = topo_.vgs.find(pg);
    return it == topo_.vgs.end() ? std::vector<cluster::LvId>{} : it->second;
  }
  // Cheetah-NoVG: volumes are partitioned over PGs in an order keyed by the
  // meta membership, so meta expansion reshuffles which volumes belong to
  // which PG and object data must chase its PG's new volumes (Fig. 14).
  uint64_t meta_seed = 0;
  for (const auto& item : topo_.meta_crush.items()) {
    meta_seed = Mix64(meta_seed ^ item.id);
  }
  std::vector<std::pair<uint64_t, cluster::LvId>> shuffled;
  for (const auto& [id, lv] : topo_.lvs) {
    if (lv.ec_stripe) {
      continue;  // stripe LVs never serve replica allocations
    }
    shuffled.emplace_back(Mix64(id * 0x9e3779b97f4a7c15ull ^ meta_seed), id);
  }
  std::sort(shuffled.begin(), shuffled.end());
  std::vector<cluster::LvId> out;
  for (size_t i = 0; i < shuffled.size(); ++i) {
    if (i % topo_.pg_count == pg) {
      out.push_back(shuffled[i].second);
    }
  }
  return out;
}

alloc::BitmapAllocator* MetaServer::AllocatorFor(cluster::LvId lv_id) {
  auto it = allocators_.find(lv_id);
  if (it != allocators_.end()) {
    return &it->second;
  }
  const cluster::LogicalVolume* lv = topo_.FindLv(lv_id);
  if (lv == nullptr) {
    return nullptr;
  }
  auto [nit, inserted] =
      allocators_.emplace(lv_id, alloc::BitmapAllocator(lv->TotalBlocks(), lv->block_size));
  return &nit->second;
}

Result<std::pair<cluster::LvId, std::vector<alloc::Extent>>> MetaServer::AllocateSpace(
    cluster::PgId pg, uint64_t bytes) {
  std::vector<cluster::LvId> candidates = EffectiveVg(pg);
  // Prefer the volume with the most free space (simple load balancing).
  std::sort(candidates.begin(), candidates.end(),
            [this](cluster::LvId a, cluster::LvId b) {
              auto* aa = allocators_.find(a) != allocators_.end() ? &allocators_.at(a) : nullptr;
              auto* bb = allocators_.find(b) != allocators_.end() ? &allocators_.at(b) : nullptr;
              const uint64_t fa = aa ? aa->free_blocks() : ~0ull;
              const uint64_t fb = bb ? bb->free_blocks() : ~0ull;
              return fa > fb;
            });
  for (cluster::LvId lv_id : candidates) {
    const cluster::LogicalVolume* lv = topo_.FindLv(lv_id);
    if (lv == nullptr || !lv->writable) {
      continue;
    }
    alloc::BitmapAllocator* allocator = AllocatorFor(lv_id);
    if (allocator == nullptr) {
      continue;
    }
    auto extents = allocator->Allocate(bytes);
    if (extents.ok()) {
      return std::make_pair(lv_id, std::move(*extents));
    }
  }
  return Status::ResourceExhausted("no writable volume can fit the object");
}

Result<std::pair<cluster::LvId, std::vector<alloc::Extent>>> MetaServer::AllocateEcStripe(
    cluster::PgId pg, uint64_t chunk_bytes) {
  auto it = topo_.ec_vgs.find(pg);
  if (it == topo_.ec_vgs.end() || it->second.empty()) {
    return Status::ResourceExhausted("pg has no ec stripe volumes");
  }
  std::vector<cluster::LvId> candidates = it->second;
  std::sort(candidates.begin(), candidates.end(),
            [this](cluster::LvId a, cluster::LvId b) {
              auto* aa = allocators_.find(a) != allocators_.end() ? &allocators_.at(a) : nullptr;
              auto* bb = allocators_.find(b) != allocators_.end() ? &allocators_.at(b) : nullptr;
              const uint64_t fa = aa ? aa->free_blocks() : ~0ull;
              const uint64_t fb = bb ? bb->free_blocks() : ~0ull;
              return fa > fb;
            });
  for (cluster::LvId lv_id : candidates) {
    const cluster::LogicalVolume* lv = topo_.FindLv(lv_id);
    if (lv == nullptr || !lv->writable || !lv->ec_stripe) {
      continue;
    }
    alloc::BitmapAllocator* allocator = AllocatorFor(lv_id);
    if (allocator == nullptr) {
      continue;
    }
    auto extents = allocator->Allocate(chunk_bytes);
    if (extents.ok()) {
      return std::make_pair(lv_id, std::move(*extents));
    }
  }
  return Status::ResourceExhausted("no ec stripe can fit the chunk");
}

// ---- put ----

sim::Task<Result<PutAllocReply>> MetaServer::HandlePutAlloc(sim::NodeId src,
                                                            PutAllocRequest req) {
  const cluster::PgId pg = topo_.pg_count ? topo_.PgOf(req.name) : 0;
  CO_RETURN_IF_ERROR(CheckRequest(req.view, pg, /*need_primary=*/true));
  if (tiering_names_.contains(req.name)) {
    // Mid-demotion metadata swap (src/tier): bounce for the one persist
    // round the swap takes; the proxy's retry loop absorbs it.
    co_return Status::Unavailable("object is moving between storage classes");
  }
  counters_.put_allocs->Add();

  // A retry may be chasing a put whose effect already came AND went: the
  // first attempt landed, a concurrent delete consumed the object, and only
  // then did the resend arrive. Re-executing would recreate an object the
  // delete was acked for removing. The delete left this op's OpDone marker
  // precisely so the resend can be answered "done" without re-running.
  if ((req.re_meta || req.re_data) &&
      (co_await db_->Get(OpDoneKey(pg, req.proxy_id, req.reqid))).ok()) {
    PutAllocReply reply;
    reply.already_done = true;
    reply.persisted = true;
    co_return reply;
  }

  // Resume path (§5.3 RE-META): the put already allocated — return the same
  // allocation and re-replicate MetaX so the backups converge.
  if (auto it = pending_names_.find(req.name); it != pending_names_.end()) {
    PendingPut& p = pending_[it->second];
    if (p.reqid == req.reqid) {
      if (req.re_data && p.meta.storage_class != StorageClass::kInline) {
        // §5.3 RE-DATA: atomically pick a new volume and revoke the old
        // allocation on the problematic one. Allocate before freeing: if no
        // volume can fit the object the put must be revoked outright —
        // leaving the pending entry (and its replicated MetaX) behind would
        // let the cleaner complete a put the proxy was told failed.
        auto alloc = AllocateSpace(pg, req.size);
        if (!alloc.ok()) {
          PendingPut doomed = p;
          co_await RevokePut(std::move(doomed));
          co_return alloc.status();
        }
        if (alloc::BitmapAllocator* a = AllocatorFor(p.meta.lvid)) {
          a->Free(p.meta.extents);
        }
        co_await DiscardData(p.meta);
        p.meta.lvid = alloc->first;
        p.meta.extents = std::move(alloc->second);
      }
      std::vector<std::pair<std::string, std::string>> puts;
      puts.emplace_back(ObMetaKey(pg, req.name), p.meta.Encode());
      PgLog pglog;
      pglog.name = req.name;
      pglog.pxlogkey = PxLogKey(p.proxy_id, p.reqid);
      puts.emplace_back(PgLogKey(pg, p.opseq), pglog.Encode());
      PxLog pxlog;
      pxlog.name = req.name;
      pxlog.pglogkey = PgLogKey(pg, p.opseq);
      puts.emplace_back(PxLogKey(p.proxy_id, p.reqid), pxlog.Encode());
      Status ps = co_await PersistAndReplicate(pg, std::move(puts), {});
      PutAllocReply reply;
      reply.lvid = p.meta.lvid;
      reply.extents = p.meta.extents;
      reply.opseq = p.opseq;
      reply.persisted = true;
      reply.inline_stored = p.meta.storage_class == StorageClass::kInline;
      if (!ps.ok()) {
        co_return ps;
      }
      p.persisted = true;
      co_return reply;
    }
    co_return Status::AlreadyExists("object has an in-flight put");
  }

  // Immutability: an existing (visible) object cannot be overwritten. A
  // tombstone is not an object — recreating a deleted name is legal and
  // simply overwrites the tombstone.
  {
    auto existing = co_await db_->Get(ObMetaKey(pg, req.name));
    if (existing.ok() && !IsObMetaTombstone(*existing)) {
      // A retry (RE-META or RE-DATA) may be chasing its own success: the
      // first attempt's MetaX survived — or a get-triggered verification
      // (§4.3.2) completed the pending put — but the proxy never saw the
      // ack. For immutable objects the create is idempotent per content, so
      // the same bytes re-put is answered with the original allocation — the
      // proxy re-writes the same extents and completes normally instead of
      // being told AlreadyExists about a put whose effect is visible.
      if (req.re_meta || req.re_data) {
        auto meta = ObMeta::Decode(*existing);
        if (meta.ok() && meta->checksum == req.checksum && meta->size == req.size) {
          PutAllocReply reply;
          reply.lvid = meta->lvid;
          reply.extents = meta->extents;
          reply.persisted = true;
          reply.inline_stored = meta->storage_class == StorageClass::kInline;
          co_return reply;
        }
      }
      co_return Status::AlreadyExists("object exists (immutable)");
    }
  }

  // Inline placement (src/tier): the payload lives in the ObMeta record
  // itself — no allocation, no data servers, and the put is complete once
  // the MetaX triple persists.
  const bool inline_put = req.is_inline && req.inline_data.size() == req.size;
  std::pair<cluster::LvId, std::vector<alloc::Extent>> placement;
  if (!inline_put) {
    auto alloc = AllocateSpace(pg, req.size);
    if (!alloc.ok()) {
      co_return alloc.status();
    }
    placement = std::move(*alloc);
  }
  const uint64_t opseq = ++pg_opseq_[pg];

  PendingPut p;
  p.reqid = req.reqid;
  p.name = req.name;
  p.pg = pg;
  p.opseq = opseq;
  p.proxy_id = req.proxy_id;
  p.proxy_node = req.proxy_node;
  if (inline_put) {
    p.meta.storage_class = StorageClass::kInline;
    p.meta.inline_data = std::move(req.inline_data);
  } else {
    p.meta.lvid = placement.first;
    p.meta.extents = std::move(placement.second);
  }
  p.meta.checksum = req.checksum;
  p.meta.size = req.size;
  p.meta.proxy_id = req.proxy_id;
  p.meta.reqid = req.reqid;
  p.meta.born_ns = static_cast<uint64_t>(rpc_.machine().loop().Now());
  p.born = rpc_.machine().loop().Now();

  std::vector<std::pair<std::string, std::string>> puts;
  puts.emplace_back(ObMetaKey(pg, req.name), p.meta.Encode());
  if (!options_.thin_directory_mode) {
    PgLog pglog;
    pglog.name = req.name;
    pglog.pxlogkey = PxLogKey(req.proxy_id, req.reqid);
    puts.emplace_back(PgLogKey(pg, opseq), pglog.Encode());
    PxLog pxlog;
    pxlog.name = req.name;
    pxlog.pglogkey = PgLogKey(pg, opseq);
    puts.emplace_back(PxLogKey(req.proxy_id, req.reqid), pxlog.Encode());
  }

  PutAllocReply reply;
  reply.lvid = p.meta.lvid;
  reply.extents = p.meta.extents;
  reply.opseq = opseq;
  reply.inline_stored = inline_put;

  pending_[req.reqid] = p;
  pending_names_[req.name] = req.reqid;

  if (options_.ordered_writes) {
    // Cheetah-OW (Fig. 9): restore the ordering constraint — do not reply
    // until MetaX is persisted everywhere.
    Status ps = co_await PersistAndReplicate(pg, std::move(puts), {});
    if (!ps.ok()) {
      PendingPut doomed = pending_[req.reqid];
      co_await RevokePut(std::move(doomed));
      co_return ps;
    }
    if (auto it = pending_.find(req.reqid); it != pending_.end()) {
      it->second.persisted = true;
    }
    reply.persisted = true;
    co_return reply;
  }

  // Full Cheetah: reply NOW; persist + replicate in parallel and notify the
  // proxy when done (Fig. 4 steps (2)(3)).
  rpc_.machine().actor().Spawn(
      [](MetaServer* self, cluster::PgId pg, ReqId reqid, sim::NodeId proxy_node,
         std::vector<std::pair<std::string, std::string>> puts) -> sim::Task<> {
        Status ps = co_await self->PersistAndReplicate(pg, std::move(puts), {});
        if (auto it = self->pending_.find(reqid); it != self->pending_.end()) {
          it->second.persisted = ps.ok();
        }
        MetaPersistedNotify note;
        note.reqid = reqid;
        note.ok = ps.ok();
        self->rpc_.Notify(proxy_node, std::move(note));
      }(this, pg, req.reqid, req.proxy_node, std::move(puts)));
  co_return reply;
}

sim::Task<Status> MetaServer::PersistAndReplicate(
    cluster::PgId pg, std::vector<std::pair<std::string, std::string>> puts,
    std::vector<std::string> deletes) {
  kv::WriteBatch batch;
  for (auto& [k, v] : puts) {
    batch.Put(k, v);
  }
  for (auto& k : deletes) {
    batch.Delete(k);
  }
  std::vector<sim::Task<Status>> tasks;
  tasks.push_back(db_->Write(std::move(batch)));
  std::vector<sim::NodeId> targets = topo_.MetaServersOf(pg);
  // Live migration double-write: from the DoubleWrite phase on, every batch
  // also lands on the migration destination, so anything written after the
  // catchup scan started is already there when cutover makes it the owner.
  if (const cluster::PgMigration* mig = topo_.MigrationOf(pg);
      mig != nullptr && mig->phase >= cluster::MigrationPhase::kDoubleWrite &&
      mig->destination != sim::kInvalidNode &&
      std::find(targets.begin(), targets.end(), mig->destination) == targets.end()) {
    targets.push_back(mig->destination);
  }
  for (sim::NodeId backup : targets) {
    if (backup == rpc_.id()) {
      continue;
    }
    tasks.push_back([](MetaServer* self, sim::NodeId backup, cluster::PgId pg,
                       std::vector<std::pair<std::string, std::string>> puts,
                       std::vector<std::string> deletes) -> sim::Task<Status> {
      ReplicateMetaXRequest rep;
      rep.view = self->topo_.view;
      rep.pg = pg;
      rep.puts = std::move(puts);
      rep.deletes = std::move(deletes);
      auto r = co_await self->rpc_.Call(backup, std::move(rep), self->options_.rpc_timeout);
      co_return r.ok() ? Status::Ok() : r.status();
    }(this, backup, pg, puts, deletes));
  }
  auto results = co_await sim::WhenAll(std::move(tasks));
  for (const Status& s : results) {
    if (!s.ok()) {
      co_return s;
    }
  }
  co_return Status::Ok();
}

sim::Task<Result<ReplicateMetaXReply>> MetaServer::HandleReplicate(
    sim::NodeId src, ReplicateMetaXRequest req) {
  if (db_ == nullptr) {
    co_return Status::Unavailable("initializing");
  }
  if (req.view < topo_.view) {
    co_return Status::StaleView("replica at newer view");
  }
  kv::WriteBatch batch;
  for (auto& [k, v] : req.puts) {
    batch.Put(k, v);
  }
  for (auto& k : req.deletes) {
    batch.Delete(k);
  }
  Status s = co_await db_->Write(std::move(batch));
  if (!s.ok()) {
    co_return s;
  }
  counters_.replications->Add();
  co_return ReplicateMetaXReply{};
}

sim::Task<Result<PutCommitAck>> MetaServer::HandleCommit(sim::NodeId src,
                                                         PutCommitNotify req) {
  auto it = pending_.find(req.reqid);
  if (it != pending_.end()) {
    it->second.committed = true;
    pending_names_.erase(it->second.name);  // object becomes visible
  }
  co_return PutCommitAck{};
}

// ---- get ----

sim::Task<Result<GetMetaReply>> MetaServer::HandleGet(sim::NodeId src, GetMetaRequest req) {
  const cluster::PgId pg = topo_.pg_count ? topo_.PgOf(req.name) : 0;
  CO_RETURN_IF_ERROR(CheckRequest(req.view, pg, /*need_primary=*/true));
  counters_.gets->Add();

  if (auto it = pending_names_.find(req.name); it != pending_names_.end()) {
    // A recovered entry will never see its commit notification (see
    // PendingPut::recovered) — waiting for one would make the first get of
    // every adopted object eat the full budget, turning a view change into a
    // visible latency spike. Go straight to verification instead.
    auto pit = pending_.find(it->second);
    if (pit == pending_.end() || !pit->second.recovered) {
      co_await WaitPendingResolved(req.name, Millis(5));
    }
  }
  if (auto it = pending_names_.find(req.name); it != pending_names_.end()) {
    // §4.3.2: a get for a pending object makes the primary check whether the
    // data actually landed on the data servers (the proxy may have died
    // after the data was persisted but before notifying us).
    Status s = co_await VerifyPending(it->second);
    if (!s.ok()) {
      LOG_DEBUG << "get " << req.name << " pending verify: " << s.ToString();
      co_return s;
    }
  }
  auto value = co_await db_->Get(ObMetaKey(pg, req.name));
  if (!value.ok()) {
    co_return value.status();
  }
  if (IsObMetaTombstone(*value)) {
    co_return Status::NotFound("object deleted");
  }
  auto meta = ObMeta::Decode(*value);
  if (!meta.ok()) {
    co_return meta.status();
  }
  // Access recency feeds the demotion policy: a get keeps the object hot.
  last_access_[req.name] = rpc_.machine().loop().Now();
  GetMetaReply reply;
  reply.meta = std::move(*meta);
  co_return reply;
}

sim::Task<> MetaServer::WaitPendingResolved(const std::string& name, Nanos budget) {
  // §4.3.2: "If M encounters a pending get, it will wait." Commit
  // notifications arrive within a network round trip, so a short wait
  // resolves the common case without the proxy-side retry/backoff path.
  const Nanos deadline = rpc_.machine().loop().Now() + budget;
  while (pending_names_.contains(name) && rpc_.machine().loop().Now() < deadline) {
    co_await sim::SleepFor(Micros(200));
  }
}

sim::Task<Status> MetaServer::VerifyPending(ReqId reqid) {
  auto it = pending_.find(reqid);
  if (it == pending_.end()) {
    co_return Status::Ok();
  }
  PendingPut p = it->second;
  // Re-read the authoritative record: a concurrent migration or RE-DATA may
  // have moved the object since this pending entry was built.
  {
    auto value = co_await db_->Get(ObMetaKey(p.pg, p.name));
    if (!value.ok() || IsObMetaTombstone(*value)) {
      pending_names_.erase(p.name);
      pending_.erase(reqid);
      co_return Status::NotFound("put already revoked");
    }
    auto meta = ObMeta::Decode(*value);
    if (meta.ok()) {
      p.meta = std::move(*meta);
      it->second.meta = p.meta;
    }
  }
  if (p.meta.storage_class == StorageClass::kInline) {
    // The payload IS the (already persisted and replicated) MetaX record:
    // there is nothing on the data plane to probe.
    if (auto pit = pending_.find(reqid); pit != pending_.end()) {
      pit->second.committed = true;
      pending_names_.erase(pit->second.name);
    }
    counters_.completed_puts->Add();
    co_return Status::Ok();
  }
  // Snapshot every topology-derived field before the first co_await: a
  // topology push move-assigns topo_ while this coroutine is suspended,
  // invalidating any LogicalVolume/PhysicalVolume pointer held across it.
  struct ProbeTarget {
    std::string device;
    uint32_t disk_index = 0;
    sim::NodeId data_server = sim::kInvalidNode;
  };
  uint32_t block_size = 0;
  std::vector<ProbeTarget> targets;
  {
    const cluster::LogicalVolume* lv = topo_.FindLv(p.meta.lvid);
    if (lv == nullptr) {
      co_return Status::Unavailable("volume missing during verify");
    }
    block_size = lv->block_size;
    for (cluster::PvId pv_id : lv->replicas) {
      const cluster::PhysicalVolume* pv = topo_.FindPv(pv_id);
      if (pv == nullptr) {
        continue;
      }
      targets.push_back({pv->DeviceName(), pv->disk_index, pv->data_server});
    }
  }
  int present = 0;
  int definitive = 0;
  std::vector<const ProbeTarget*> missing;
  const ProbeTarget* good = nullptr;
  for (const ProbeTarget& t : targets) {
    DataProbeRequest probe;
    probe.device = t.device;
    probe.disk_index = t.disk_index;
    probe.block_size = block_size;
    probe.extents = p.meta.extents;
    probe.expected_checksum = p.meta.checksum;
    auto r = co_await rpc_.Call(t.data_server, std::move(probe), options_.rpc_timeout);
    if (!r.ok()) {
      continue;  // indeterminate
    }
    ++definitive;
    if (r->present) {
      ++present;
      good = &t;
    } else {
      missing.push_back(&t);
    }
  }
  if (definitive == 0) {
    LOG_DEBUG << "verify " << p.name << ": no definitive probe";
    co_return Status::Unavailable("data servers unreachable during verify");
  }
  if (present == 0) {
    // The data never landed anywhere: the put is unfinished — revoke (§5.3).
    co_await RevokePut(std::move(p));
    co_return Status::NotFound("put revoked");
  }
  if (!missing.empty() && good != nullptr) {
    // Partially replicated: complete the put by copying from a good replica.
    DataReadRequest read;
    read.device = good->device;
    read.disk_index = good->disk_index;
    read.block_size = block_size;
    read.extents = p.meta.extents;
    read.length = p.meta.size;
    auto data = co_await rpc_.Call(good->data_server, std::move(read), options_.rpc_timeout);
    if (!data.ok()) {
      co_return Status::Unavailable("repair read failed");
    }
    for (const ProbeTarget* t : missing) {
      DataWriteRequest write;
      write.view = topo_.view;
      write.device = t->device;
      write.disk_index = t->disk_index;
      write.block_size = block_size;
      write.extents = p.meta.extents;
      write.data = data->data;
      write.checksum = p.meta.checksum;
      auto w = co_await rpc_.Call(t->data_server, std::move(write), options_.rpc_timeout);
      if (!w.ok()) {
        co_return Status::Unavailable("repair write failed");
      }
    }
  }
  // Complete: the put's effects are fully in place.
  if (auto pit = pending_.find(reqid); pit != pending_.end()) {
    pit->second.committed = true;
    pending_names_.erase(pit->second.name);
  }
  counters_.completed_puts->Add();
  co_return Status::Ok();
}

sim::Task<> MetaServer::RevokePut(PendingPut p) {
  // The ObMeta slot gets a tombstone (a revoked put must not resurrect via a
  // PG pull merge); the per-op log entries are plain removals — a merged-back
  // log entry is harmless, the cleaner re-resolves it against the tombstone.
  std::vector<std::pair<std::string, std::string>> puts;
  puts.emplace_back(ObMetaKey(p.pg, p.name), ObMetaTombstone());
  std::vector<std::string> deletes;
  deletes.push_back(PgLogKey(p.pg, p.opseq));
  deletes.push_back(PxLogKey(p.proxy_id, p.reqid));
  (void)co_await PersistAndReplicate(p.pg, std::move(puts), std::move(deletes));
  if (alloc::BitmapAllocator* a = AllocatorFor(p.meta.lvid)) {
    a->Free(p.meta.extents);
  }
  co_await DiscardData(p.meta);
  pending_names_.erase(p.name);
  pending_.erase(p.reqid);
  counters_.revoked_puts->Add();
}

sim::Task<> MetaServer::DiscardData(const ObMeta& meta) {
  const cluster::LogicalVolume* lv = topo_.FindLv(meta.lvid);
  if (lv == nullptr) {
    co_return;
  }
  for (cluster::PvId pv_id : lv->replicas) {
    const cluster::PhysicalVolume* pv = topo_.FindPv(pv_id);
    if (pv == nullptr) {
      continue;
    }
    DataDiscardRequest req;
    req.device = pv->DeviceName();
    req.disk_index = pv->disk_index;
    req.block_size = lv->block_size;
    req.extents = meta.extents;
    rpc_.Notify(pv->data_server, std::move(req));
  }
}

// ---- delete ----

sim::Task<Result<DeleteReply>> MetaServer::HandleDelete(sim::NodeId src, DeleteRequest req) {
  const cluster::PgId pg = topo_.pg_count ? topo_.PgOf(req.name) : 0;
  CO_RETURN_IF_ERROR(CheckRequest(req.view, pg, /*need_primary=*/true));
  if (tiering_names_.contains(req.name)) {
    // Mid-demotion metadata swap (src/tier): bounce for the one persist
    // round the swap takes; the proxy's retry loop absorbs it.
    co_return Status::Unavailable("object is moving between storage classes");
  }
  // Idempotency: a delete whose first attempt landed but whose ack was lost
  // must not take effect twice — by the time the retry arrives the name may
  // have been recreated, and deleting *that* object would erase an acked put
  // this delete never saw. The marker is written atomically with the
  // tombstone and travels with the PG (pulls transfer the OPDONE range), so
  // any primary the retry reaches recognizes it. The sim keeps markers
  // forever; a real system would GC them past the client retry horizon.
  if (req.reqid != 0) {
    auto marker = co_await db_->Get(OpDoneKey(pg, req.proxy_id, req.reqid));
    if (marker.ok()) {
      co_return DeleteReply{};
    }
  }
  if (auto it = pending_names_.find(req.name); it != pending_names_.end()) {
    auto pit = pending_.find(it->second);
    if (pit != pending_.end() && pit->second.recovered) {
      // No commit notification is coming for a recovered entry; resolve it
      // by probing the data servers rather than waiting out the budget and
      // bouncing the delete.
      (void)co_await VerifyPending(it->second);
    } else {
      co_await WaitPendingResolved(req.name, Millis(5));
    }
    if (pending_names_.contains(req.name)) {
      co_return Status::Unavailable("object has an in-flight put");
    }
  }
  auto value = co_await db_->Get(ObMetaKey(pg, req.name));
  if (!value.ok()) {
    co_return value.status();
  }
  if (IsObMetaTombstone(*value)) {
    co_return Status::NotFound("object deleted");
  }
  auto meta = ObMeta::Decode(*value);
  if (!meta.ok()) {
    co_return meta.status();
  }
  counters_.deletes->Add();
  // §4.3.3: delete = retire the MetaX record and clear the allocator bits —
  // the reclaimed space is immediately reusable; data servers are untouched
  // (the extents are dropped lazily via a discard notification). The record
  // is replaced by a tombstone, not removed: PG pulls merge records, so the
  // delete must survive as a positive fact (see ObMetaTombstone()).
  std::vector<std::pair<std::string, std::string>> puts;
  puts.emplace_back(ObMetaKey(pg, req.name), ObMetaTombstone());
  if (req.reqid != 0) {
    puts.emplace_back(OpDoneKey(pg, req.proxy_id, req.reqid), req.name);
  }
  // The consumed object's creating put is settled too: a late resend of that
  // put must not resurrect what this delete was acked for removing.
  if (meta->reqid != 0) {
    puts.emplace_back(OpDoneKey(pg, meta->proxy_id, meta->reqid), req.name);
  }
  Status s = co_await PersistAndReplicate(pg, std::move(puts), {});
  if (!s.ok()) {
    co_return s;
  }
  if (alloc::BitmapAllocator* a = AllocatorFor(meta->lvid)) {
    a->Free(meta->extents);
  }
  // The in-memory bitmap is updated now (space immediately reusable); the
  // on-disk copy syncs with the next log-clean cycle (§5.2).
  dirty_bitmaps_.insert(meta->lvid);
  last_access_.erase(req.name);
  co_await DiscardData(*meta);
  co_return DeleteReply{};
}

sim::Task<Status> MetaServer::FlushBitmap(cluster::LvId lv) {
  auto it = allocators_.find(lv);
  if (it == allocators_.end()) {
    co_return Status::Ok();
  }
  co_return co_await rpc_.machine().disk(0).WriteFile(BitmapFile(lv),
                                                      it->second.Serialize(),
                                                      /*sync=*/true);
}

// ---- PG pull (recovery / rebalancing) ----

sim::Task<Result<PgPullReply>> MetaServer::HandlePgPull(sim::NodeId src, PgPullRequest req) {
  if (db_ == nullptr) {
    co_return Status::Unavailable("initializing");
  }
  if (req.min_view > topo_.view) {
    // Migration catchup: until this server adopts the DoubleWrite view it is
    // not forwarding writes, so serving the scan now could hand the puller a
    // page that a subsequent un-forwarded write silently invalidates.
    co_return Status::StaleView("server at view " + std::to_string(topo_.view));
  }
  PgPullReply reply;
  // Paged OBMETA scan: transferring a PG in bounded chunks keeps any single
  // message (and the puller's memory) bounded during recovery.
  auto obmeta = co_await db_->Scan(ObMetaPrefix(req.pg), 0);
  if (!obmeta.ok()) {
    co_return obmeta.status();
  }
  size_t taken = 0;
  bool exhausted = true;
  for (auto& [key, value] : *obmeta) {
    if (!req.start_after.empty() && key <= req.start_after) {
      continue;
    }
    if (taken >= req.limit) {
      exhausted = false;
      break;
    }
    reply.next_start_after = key;
    reply.kvs.emplace_back(std::move(key), std::move(value));
    ++taken;
  }
  if (exhausted) {
    reply.next_start_after.clear();  // final page: append the PG/PX logs
    auto pglogs = co_await db_->Scan(PgLogPrefix(req.pg), 0);
    if (!pglogs.ok()) {
      co_return pglogs.status();
    }
    for (auto& [key, value] : *pglogs) {
      auto log = PgLog::Decode(value);
      if (log.ok()) {
        auto pxlog = co_await db_->Get(log->pxlogkey);
        if (pxlog.ok()) {
          reply.kvs.emplace_back(log->pxlogkey, std::move(*pxlog));
        }
      }
      reply.kvs.emplace_back(key, std::move(value));
    }
    // Op-finality markers travel with the PG so a newly joined replica
    // recognizes retried puts/deletes whose effect is settled (HandleDelete,
    // HandlePutAlloc).
    auto opdones = co_await db_->Scan(OpDonePrefix(req.pg), 0);
    if (!opdones.ok()) {
      co_return opdones.status();
    }
    for (auto& [key, value] : *opdones) {
      reply.kvs.emplace_back(std::move(key), std::move(value));
    }
    counters_.pg_pulls_served->Add();
  }
  co_return reply;
}

// ---- live migration catchup ----

sim::Task<Result<cluster::MigratePgReply>> MetaServer::HandleMigratePg(
    sim::NodeId src, cluster::MigratePgRequest req) {
  if (db_ == nullptr) {
    co_return Status::Unavailable("initializing");
  }
  // This server is the migration destination: it needs the DoubleWrite
  // topology first (so the source is forwarding before the scan runs). The
  // push usually beat this command here; wait briefly if not.
  for (int i = 0; i < 20 && topo_.view < req.view; ++i) {
    co_await sim::SleepFor(Millis(50));
  }
  if (topo_.view < req.view) {
    co_return Status::Unavailable("destination behind the migration view");
  }
  // Pull the PG page by page from the source and merge (pure merge: deletes
  // are tombstone records, keys are only ever added or overwritten). A page
  // scanned before a concurrent write can land after its forwarded copy and
  // briefly regress that key; the destination's adoption pull at cutover
  // re-reads the source's final state, so the regression cannot outlive the
  // migration. What catchup buys is having the bulk of the PG already
  // persisted here, so cutover never depends on the drained node surviving
  // it.
  sim::NodeId source = req.source;
  if (source == rpc_.id() || source == sim::kInvalidNode) {
    co_return Status::InvalidArgument("bad migration source");
  }
  cluster::MigratePgReply reply;
  std::string cursor;
  for (int page = 0; page < 100000; ++page) {
    PgPullRequest pull;
    pull.view = topo_.view;
    pull.pg = req.pg;
    pull.start_after = cursor;
    pull.limit = 512;
    pull.min_view = req.view;
    auto r = co_await rpc_.Call(source, std::move(pull), options_.rpc_timeout);
    if (!r.ok()) {
      co_return r.status();
    }
    kv::WriteBatch batch;
    for (auto& [k, v] : r->kvs) {
      batch.Put(k, v);
    }
    reply.kvs_pulled += r->kvs.size();
    counters_.recovered_kvs->Add(r->kvs.size());
    CO_RETURN_IF_ERROR(co_await db_->Write(std::move(batch)));
    if (r->next_start_after.empty()) {
      co_return reply;
    }
    cursor = r->next_start_after;
  }
  co_return Status::Internal("migration pull did not terminate");
}

// ---- topology adoption ----

sim::Task<Result<cluster::TopologyPushReply>> MetaServer::HandleTopologyPush(
    sim::NodeId src, cluster::TopologyPush req) {
  auto map = cluster::TopologyMap::Deserialize(req.serialized_map);
  if (map.ok() && map->view > topo_.view) {
    rpc_.machine().actor().Spawn(AdoptTopology(std::move(*map)));
  }
  co_return cluster::TopologyPushReply{};
}

sim::Task<> MetaServer::AdoptTopology(cluster::TopologyMap next) {
  if (next.view <= topo_.view) {
    co_return;
  }
  pending_topo_ = std::move(next);
  if (adopting_ || db_ == nullptr) {
    co_return;  // the running adoption will pick up the latest map
  }
  adopting_ = true;
  while (pending_topo_.has_value()) {
    cluster::TopologyMap map = std::move(*pending_topo_);
    pending_topo_.reset();
    cluster::TopologyMap old = topo_;
    topo_ = std::move(map);
    LOG_INFO << "meta " << rpc_.id() << ": adopting view " << topo_.view;

    // Which PGs is this node responsible for now?
    std::set<cluster::PgId> responsible;
    for (cluster::PgId pg = 0; pg < topo_.pg_count; ++pg) {
      auto servers = topo_.MetaServersOf(pg);
      if (std::find(servers.begin(), servers.end(), rpc_.id()) != servers.end()) {
        responsible.insert(pg);
      }
    }
    std::set<cluster::PgId> previously_ready = std::move(ready_pgs_);
    ready_pgs_.clear();

    // A node that skipped intermediate views (partitioned away while the
    // cluster moved on without it) cannot trust its local PG state: writes
    // were acknowledged by views it never saw. Re-pull everything it is
    // responsible for, preferring the current view's owners as sources —
    // its own stale map may name owners that no longer hold the PG.
    const bool view_gap = old.view > 0 && topo_.view > old.view + 1;

    for (cluster::PgId pg : responsible) {
      const bool had_it = !view_gap && previously_ready.contains(pg);
      if (!had_it) {
        // Pull the PG from a surviving replica of the previous view.
        std::vector<sim::NodeId> sources;
        if (old.view > 0) {
          sources = old.MetaServersOf(pg);
        } else {
          sources = topo_.MetaServersOf(pg);
        }
        if (view_gap) {
          std::vector<sim::NodeId> current = topo_.MetaServersOf(pg);
          for (sim::NodeId s : sources) {
            if (std::find(current.begin(), current.end(), s) == current.end()) {
              current.push_back(s);
            }
          }
          sources = std::move(current);
        }
        // Try sources that remain members of the new view first: a node the
        // manager just evicted is usually evicted because it is unreachable,
        // and every page call against it stalls adoption (and every put to
        // this PG) for a full rpc_timeout before we fall to the next source.
        std::stable_partition(sources.begin(), sources.end(), [&](sim::NodeId s) {
          return topo_.meta_crush.HasItem(s);
        });
        // Retry the source list for a few rounds: after a cluster-wide
        // restart every peer races through DB recovery, and a single
        // "initializing" round-trip must not make this node adopt the PG
        // empty and then serve NotFound for data its peers hold. Bail if a
        // newer view lands mid-pull — the outer loop re-adopts from scratch.
        bool pulled = false;
        for (int round = 0; round < 4 && !pulled && !pending_topo_.has_value();
             ++round) {
          if (round > 0) {
            co_await sim::SleepFor(Millis(100));
          }
          for (sim::NodeId source : sources) {
            if (source == rpc_.id()) {
              continue;
            }
            // Pull the PG page by page; each page is persisted as it lands so
            // the recovery curve (Fig. 15) reflects actual transfer progress.
            std::string cursor;
            bool complete = false;
            for (int page = 0; page < 100000; ++page) {
              PgPullRequest pull;
              pull.view = topo_.view;
              pull.pg = pg;
              pull.start_after = cursor;
              pull.limit = 512;
              auto r = co_await rpc_.Call(source, std::move(pull), options_.rpc_timeout);
              if (!r.ok()) {
                break;
              }
              kv::WriteBatch batch;
              for (auto& [k, v] : r->kvs) {
                batch.Put(k, v);
              }
              counters_.recovered_kvs->Add(r->kvs.size());
              (void)co_await db_->Write(std::move(batch));
              if (r->next_start_after.empty()) {
                complete = true;
                break;
              }
              cursor = r->next_start_after;
            }
            if (complete) {
              // The pull is a pure merge: records only ever get added or
              // overwritten, never inferred-deleted. Deletes arrive as
              // tombstone records like any other write, so a replica's local
              // (possibly the only surviving) copy of a PG is never thrown
              // away because a source that adopted the PG empty lacks it.
              pulled = true;
              break;
            }
          }
        }
        if (pending_topo_.has_value()) {
          break;  // restart adoption under the newer map
        }
        LOG_DEBUG << "meta " << rpc_.id() << ": view " << topo_.view << " pg " << pg
                  << (pulled ? " pulled" : " adopted without a complete pull")
                  << " (sources " << sources.size() << ")";
      }
      if (IsPrimary(pg)) {
        co_await RebuildPgState(pg);
      }
      ready_pgs_.insert(pg);
    }

    // Drop allocators for LVs we no longer manage.
    std::set<cluster::LvId> managed;
    for (cluster::PgId pg : responsible) {
      if (IsPrimary(pg)) {
        for (cluster::LvId lv : EffectiveVg(pg)) {
          managed.insert(lv);
        }
        if (auto it = topo_.ec_vgs.find(pg); it != topo_.ec_vgs.end()) {
          for (cluster::LvId lv : it->second) {
            managed.insert(lv);
          }
        }
      }
    }
    for (auto it = allocators_.begin(); it != allocators_.end();) {
      if (!managed.contains(it->first)) {
        it = allocators_.erase(it);
      } else {
        ++it;
      }
    }

    if (options_.no_volume_groups) {
      for (cluster::PgId pg : responsible) {
        if (IsPrimary(pg)) {
          rpc_.machine().actor().Spawn(MigratePgData(pg));
        }
      }
    }
  }
  adopting_ = false;
}

sim::Task<> MetaServer::RebuildPgState(cluster::PgId pg) {
  // Allocators: fresh bitmaps, then mark every extent recorded in OBMETA.
  std::set<cluster::LvId> my_lvs;
  for (cluster::LvId lv : EffectiveVg(pg)) {
    allocators_.erase(lv);
    (void)AllocatorFor(lv);
    my_lvs.insert(lv);
  }
  // The PG's EC stripe LVs are rebuilt the same way: demoted objects record
  // stripe extents in their ObMeta, so the scan below re-marks them.
  if (auto it = topo_.ec_vgs.find(pg); it != topo_.ec_vgs.end()) {
    for (cluster::LvId lv : it->second) {
      allocators_.erase(lv);
      (void)AllocatorFor(lv);
      my_lvs.insert(lv);
    }
  }
  // With VGs a volume's extents are all recorded under its one PG. Without
  // them (Cheetah-NoVG) another PG's not-yet-migrated objects may still live
  // on volumes this mapping hands to us — the exact sharing hazard §4.2
  // describes — so the rebuild must scan every PG's records to avoid
  // allocating over foreign data.
  const std::string scan_prefix =
      options_.no_volume_groups ? std::string("OBMETA_") : ObMetaPrefix(pg);
  auto rows = co_await db_->Scan(scan_prefix, 0);
  if (rows.ok()) {
    std::set<cluster::LvId> reset_this_pass = my_lvs;
    for (const auto& [key, value] : *rows) {
      auto meta = ObMeta::Decode(value);
      if (!meta.ok()) {
        continue;
      }
      if (options_.no_volume_groups && !my_lvs.contains(meta->lvid)) {
        continue;  // foreign volume; its owning PG tracks it
      }
      // An entry may reference a volume outside the current VG (pre-migration
      // leftovers); give it a fresh allocator once, then accumulate marks.
      if (!reset_this_pass.contains(meta->lvid)) {
        allocators_.erase(meta->lvid);
        reset_this_pass.insert(meta->lvid);
      }
      if (alloc::BitmapAllocator* a = AllocatorFor(meta->lvid)) {
        a->MarkAllocated(meta->extents);
      }
    }
  }
  // opseq and pending puts from the PG log.
  uint64_t max_opseq = pg_opseq_[pg];
  auto logs = co_await db_->Scan(PgLogPrefix(pg), 0);
  if (logs.ok()) {
    const Nanos now = rpc_.machine().loop().Now();
    for (const auto& [key, value] : *logs) {
      cluster::PgId parsed_pg = 0;
      uint64_t opseq = 0;
      if (!ParsePgLogKey(key, &parsed_pg, &opseq)) {
        continue;
      }
      max_opseq = std::max(max_opseq, opseq);
      auto log = PgLog::Decode(value);
      if (!log.ok()) {
        continue;
      }
      uint32_t proxy_id = 0;
      ReqId reqid = 0;
      if (!ParsePxLogKey(log->pxlogkey, &proxy_id, &reqid)) {
        continue;
      }
      auto ob = co_await db_->Get(ObMetaKey(pg, log->name));
      if (!ob.ok()) {
        continue;  // already revoked/cleaned
      }
      auto meta = ObMeta::Decode(*ob);
      if (!meta.ok()) {
        continue;
      }
      if (pending_.contains(reqid)) {
        continue;
      }
      PendingPut p;
      p.reqid = reqid;
      p.name = log->name;
      p.pg = pg;
      p.opseq = opseq;
      p.proxy_id = proxy_id;
      p.meta = std::move(*meta);
      p.persisted = true;  // it is in the KV, after all
      p.recovered = true;
      p.born = now;
      pending_[reqid] = p;
      pending_names_[p.name] = reqid;
    }
  }
  pg_opseq_[pg] = max_opseq;
}

sim::Task<> MetaServer::MigratePgData(cluster::PgId pg) {
  // Cheetah-NoVG: objects whose volume fell out of the PG's (hash-derived)
  // volume set must be copied to a volume the new mapping owns (Fig. 14's
  // migration traffic).
  const uint64_t adopted_view = topo_.view;
  std::vector<cluster::LvId> vg = EffectiveVg(pg);
  auto in_vg = [&vg](cluster::LvId lv) {
    return std::find(vg.begin(), vg.end(), lv) != vg.end();
  };
  auto rows = co_await db_->Scan(ObMetaPrefix(pg), 0);
  if (!rows.ok()) {
    co_return;
  }
  for (const auto& [key, value] : *rows) {
    if (topo_.view != adopted_view || !IsPrimary(pg)) {
      co_return;  // superseded
    }
    cluster::PgId key_pg = 0;
    std::string name;
    if (ParseObMetaKey(key, &key_pg, &name) && pending_names_.contains(name)) {
      continue;  // unresolved put; the cleaner settles it first (§5.3)
    }
    auto meta = ObMeta::Decode(value);
    if (!meta.ok() || in_vg(meta->lvid)) {
      continue;
    }
    const cluster::LogicalVolume* old_lv = topo_.FindLv(meta->lvid);
    if (old_lv == nullptr) {
      continue;
    }
    const cluster::PhysicalVolume* source = topo_.FindPv(old_lv->replicas.front());
    if (source == nullptr) {
      continue;
    }
    // Read from the old location.
    DataReadRequest read;
    read.device = source->DeviceName();
    read.disk_index = source->disk_index;
    read.block_size = old_lv->block_size;
    read.extents = meta->extents;
    read.length = meta->size;
    auto data = co_await rpc_.Call(source->data_server, std::move(read),
                                   options_.rpc_timeout);
    if (!data.ok()) {
      continue;
    }
    // Allocate at the new location and write all replicas.
    auto alloc = AllocateSpace(pg, meta->size);
    if (!alloc.ok()) {
      continue;
    }
    const cluster::LogicalVolume* new_lv = topo_.FindLv(alloc->first);
    bool wrote_all = true;
    for (cluster::PvId pv_id : new_lv->replicas) {
      const cluster::PhysicalVolume* pv = topo_.FindPv(pv_id);
      if (pv == nullptr) {
        wrote_all = false;
        break;
      }
      DataWriteRequest write;
      write.view = topo_.view;
      write.device = pv->DeviceName();
      write.disk_index = pv->disk_index;
      write.block_size = new_lv->block_size;
      write.extents = alloc->second;
      write.data = data->data;
      write.checksum = meta->checksum;
      auto w = co_await rpc_.Call(pv->data_server, std::move(write), options_.rpc_timeout);
      wrote_all &= w.ok();
    }
    if (!wrote_all) {
      if (alloc::BitmapAllocator* a = AllocatorFor(alloc->first)) {
        a->Free(alloc->second);
      }
      continue;
    }
    ObMeta updated = *meta;
    const ObMeta old_meta = *meta;
    updated.lvid = alloc->first;
    updated.extents = std::move(alloc->second);
    std::vector<std::pair<std::string, std::string>> puts;
    puts.emplace_back(key, updated.Encode());
    (void)co_await PersistAndReplicate(pg, std::move(puts), {});
    co_await DiscardData(old_meta);
    counters_.migrated_objects->Add();
  }
}

// ---- background loops ----

sim::Task<> MetaServer::HeartbeatLoop() {
  sim::NodeId last_leader = sim::kInvalidNode;
  for (;;) {
    std::vector<sim::NodeId> order = manager_nodes_;
    if (last_leader != sim::kInvalidNode) {
      std::swap(order.front(),
                *std::find(order.begin(), order.end(), last_leader));
    }
    for (sim::NodeId mgr : order) {
      cluster::HeartbeatRequest hb;
      hb.node = rpc_.id();
      hb.kind = cluster::ServerKind::kMetaServer;
      hb.view = topo_.view;
      auto r = co_await rpc_.Call(mgr, std::move(hb), options_.heartbeat_interval / 2);
      if (!r.ok() || !r->is_leader) {
        continue;
      }
      last_leader = mgr;
      lease_until_ = rpc_.machine().loop().Now() + r->lease_duration;
      if (r->current_view > topo_.view) {
        cluster::GetTopologyRequest get;
        get.have_view = topo_.view;
        auto t = co_await rpc_.Call(mgr, std::move(get), options_.rpc_timeout);
        if (t.ok() && t->changed) {
          auto map = cluster::TopologyMap::Deserialize(t->serialized_map);
          if (map.ok()) {
            co_await AdoptTopology(std::move(*map));
          }
        }
      }
      break;
    }
    co_await sim::SleepFor(options_.heartbeat_interval);
  }
}

sim::Task<> MetaServer::ScrubNow() { return scrubber_->ScrubAll(); }

sim::Task<> MetaServer::TierNow() { return tier_->TierAll(); }

sim::Task<> MetaServer::CleanerLoop() {
  for (;;) {
    co_await sim::SleepFor(options_.log_clean_interval);
    co_await CleanLogs();
  }
}

sim::Task<> MetaServer::CleanLogs() {
  if (db_ == nullptr || topo_.view == 0) {
    co_return;
  }
  const Nanos now = rpc_.machine().loop().Now();
  std::vector<ReqId> committed;
  std::vector<ReqId> stale;
  for (const auto& [reqid, p] : pending_) {
    if (!IsPrimary(p.pg) || !ready_pgs_.contains(p.pg)) {
      continue;
    }
    if (p.committed && p.persisted) {
      committed.push_back(reqid);
    } else if (now - p.born > options_.pending_put_timeout) {
      stale.push_back(reqid);
    }
  }
  // §5.3: verify stale uncommitted puts against the data servers.
  for (ReqId reqid : stale) {
    (void)co_await VerifyPending(reqid);
    auto it = pending_.find(reqid);
    if (it != pending_.end() && it->second.committed) {
      committed.push_back(reqid);
    }
  }
  if (committed.empty() && dirty_bitmaps_.empty()) {
    co_return;
  }
  // Clean the logs of committed puts in one batch; sync bitmaps (§5.2).
  std::map<cluster::PgId, std::vector<std::string>> deletes_by_pg;
  std::set<cluster::LvId> touched;
  for (ReqId reqid : committed) {
    auto it = pending_.find(reqid);
    if (it == pending_.end()) {
      continue;
    }
    const PendingPut& p = it->second;
    deletes_by_pg[p.pg].push_back(PgLogKey(p.pg, p.opseq));
    deletes_by_pg[p.pg].push_back(PxLogKey(p.proxy_id, p.reqid));
    touched.insert(p.meta.lvid);
    pending_names_.erase(p.name);
    pending_.erase(it);
    counters_.logs_cleaned->Add();
  }
  for (auto& [pg, deletes] : deletes_by_pg) {
    (void)co_await PersistAndReplicate(pg, {}, std::move(deletes));
  }
  for (cluster::LvId lv : dirty_bitmaps_) {
    touched.insert(lv);
  }
  dirty_bitmaps_.clear();
  for (cluster::LvId lv : touched) {
    (void)co_await FlushBitmap(lv);
  }
}

}  // namespace cheetah::core
