// Cheetah data server: the ultralight raw data service (§3.1, §4.3.3).
//
// Data servers are object-agnostic: they write and read raw blocks at the
// extents the request names, with no file abstraction and no local metadata
// beyond what the device itself keeps. A delete never touches a data server
// (the meta server just clears allocator bits); space reuse is immediate.
//
// The server also participates in recovery: it answers checksum probes from
// meta servers (§4.3.2/§5.3) and rebuilds replacement physical volumes by
// pulling a healthy replica's contents (§5.3 "restored in parallel").
//
// Cheetah-FS (Fig. 10): when fs_backed_data is set, every data operation
// pays an extra filesystem-metadata write, modeling XFS-style file-backed
// volumes instead of raw block access.
#ifndef SRC_CORE_DATA_SERVER_H_
#define SRC_CORE_DATA_SERVER_H_

#include <memory>
#include <string>

#include "src/cluster/messages.h"
#include "src/core/messages.h"
#include "src/core/options.h"
#include "src/obs/metrics.h"
#include "src/rpc/node.h"

namespace cheetah::core {

class DataServer {
 public:
  DataServer(rpc::Node& rpc, CheetahOptions options,
             std::vector<sim::NodeId> manager_nodes);

  // Registers RPC handlers and starts the heartbeat loop.
  void Start();

  // Value snapshot of the registry-backed counters ("data@<node>#<i>.*").
  struct Stats {
    uint64_t writes = 0;
    uint64_t reads = 0;
    uint64_t probes = 0;
    uint64_t bytes_written = 0;
    uint64_t bytes_read = 0;
    uint64_t volumes_recovered = 0;
    uint64_t recovery_bytes = 0;
    uint64_t verify_failures = 0;  // verified reads refused for corruption
  };
  Stats stats() const {
    return Stats{counters_.writes->value(),          counters_.reads->value(),
                 counters_.probes->value(),          counters_.bytes_written->value(),
                 counters_.bytes_read->value(),      counters_.volumes_recovered->value(),
                 counters_.recovery_bytes->value(),  counters_.verify_failures->value()};
  }

 private:
  sim::Storage& DiskFor(uint32_t disk_index) {
    return rpc_.machine().disk(disk_index % rpc_.machine().num_disks());
  }
  sim::Task<> ChargeFsOverhead(uint32_t disk_index);

  sim::Task<Result<DataWriteReply>> HandleWrite(sim::NodeId src, DataWriteRequest req);
  sim::Task<Result<DataReadReply>> HandleRead(sim::NodeId src, DataReadRequest req);
  sim::Task<Result<DataProbeReply>> HandleProbe(sim::NodeId src, DataProbeRequest req);
  sim::Task<Result<DataDiscardReply>> HandleDiscard(sim::NodeId src, DataDiscardRequest req);
  sim::Task<Result<VolumePullReply>> HandlePull(sim::NodeId src, VolumePullRequest req);
  sim::Task<Result<cluster::RecoverVolumeReply>> HandleRecover(
      sim::NodeId src, cluster::RecoverVolumeRequest req);
  sim::Task<> HeartbeatLoop();

  rpc::Node& rpc_;
  CheetahOptions options_;
  std::vector<sim::NodeId> manager_nodes_;
  obs::Scope scope_;
  struct {
    obs::Counter* writes;
    obs::Counter* reads;
    obs::Counter* probes;
    obs::Counter* bytes_written;
    obs::Counter* bytes_read;
    obs::Counter* volumes_recovered;
    obs::Counter* recovery_bytes;
    obs::Counter* verify_failures;
  } counters_;
};

}  // namespace cheetah::core

#endif  // SRC_CORE_DATA_SERVER_H_
