// Cheetah meta server: the rich meta service (§3.1).
//
// Maintains MetaX (volume metadata Mv + offset metadata Mo + meta-log Ml) in
// an embedded KV store, written atomically per put (§5.2, Table 1). The
// primary of a PG allocates logical volumes from the PG's VG and in-volume
// blocks with a bitmap allocator, replies to the proxy *before* persistence
// (the paper's removal of distributed ordering, Fig. 4), replicates MetaX to
// the backups, and later notifies the proxy when everything is persisted.
//
// Recovery duties (§5.3):
//  - On a view change it pulls newly-responsible PGs from surviving replicas
//    and rebuilds per-LV allocators and per-PG opseq/pending state by
//    scanning the PG's key range.
//  - A cleaner loop deletes the logs of committed puts (syncing the on-disk
//    bitmaps, §5.2), and verifies stale uncommitted puts against the data
//    servers — completing them if the data landed, revoking them otherwise.
//  - Gets on pending objects trigger the same verification synchronously
//    (§4.3.2).
#ifndef SRC_CORE_META_SERVER_H_
#define SRC_CORE_META_SERVER_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/alloc/bitmap_allocator.h"
#include "src/cluster/messages.h"
#include "src/core/messages.h"
#include "src/core/metax.h"
#include "src/core/options.h"
#include "src/kv/db.h"
#include "src/obs/metrics.h"
#include "src/rpc/node.h"

namespace cheetah::tier {
class TierEngine;
}  // namespace cheetah::tier

namespace cheetah::core {

class Scrubber;

class MetaServer {
 public:
  MetaServer(rpc::Node& rpc, CheetahOptions options,
             std::vector<sim::NodeId> manager_nodes, uint64_t seed);
  ~MetaServer();  // out of line: scrubber_/tier_ own incomplete types here

  // Registers handlers and spawns init/heartbeat/cleaner loops.
  void Start();

  // Value snapshot of the registry-backed counters ("meta@<node>#<i>.*").
  struct Stats {
    uint64_t put_allocs = 0;
    uint64_t gets = 0;
    uint64_t deletes = 0;
    uint64_t replications = 0;
    uint64_t pg_pulls_served = 0;
    uint64_t recovered_kvs = 0;     // KVs pulled into this server on adoption
    uint64_t completed_puts = 0;    // §5.3: verified-complete without commit
    uint64_t revoked_puts = 0;
    uint64_t logs_cleaned = 0;
    uint64_t migrated_objects = 0;  // Cheetah-NoVG only
    uint64_t scrubbed_objects = 0;  // mirrored from the Scrubber
    uint64_t scrub_repairs = 0;
  };
  Stats stats() const;

  const cluster::TopologyMap& topology() const { return topo_; }
  uint64_t view() const { return topo_.view; }
  bool HasLease() const;
  bool IsReady(cluster::PgId pg) const { return ready_pgs_.contains(pg); }
  // True while this server is adopting a view (pulling PGs); chaos tests use
  // it to aim crashes at the middle of a view change.
  bool adopting() const { return adopting_; }
  size_t pending_puts() const { return pending_.size(); }
  kv::DB* db() { return db_.get(); }

  // Test hook: runs one cleaner pass immediately.
  sim::Task<> CleanNow() { return CleanLogs(); }
  // Audits every primary PG once (also runs periodically if
  // options.scrub_interval > 0). Delegates to the Scrubber.
  sim::Task<> ScrubNow();
  Scrubber& scrubber() { return *scrubber_; }
  // Runs one tiering (demotion) pass immediately (also runs periodically if
  // options.tier.tier_scan_interval > 0). Delegates to the TierEngine.
  sim::Task<> TierNow();
  tier::TierEngine& tier_engine() { return *tier_; }

 private:
  friend class Scrubber;  // reads db_/topo_/ready_pgs_/pending_names_
  friend class tier::TierEngine;  // drives demotion through private state
  struct PendingPut {
    ReqId reqid = 0;
    std::string name;
    cluster::PgId pg = 0;
    uint64_t opseq = 0;
    uint32_t proxy_id = 0;
    sim::NodeId proxy_node = sim::kInvalidNode;
    ObMeta meta;
    bool committed = false;
    bool persisted = false;
    // Rebuilt from the PG log (restart or PG adoption) rather than created by
    // a live put: the proxy's commit notification went to the replicas of
    // record at put time, so none is coming here — readers should verify
    // immediately instead of waiting for one.
    bool recovered = false;
    Nanos born = 0;
  };

  sim::Task<> Init();
  sim::Task<> HeartbeatLoop();
  sim::Task<> CleanerLoop();
  sim::Task<> CleanLogs();

  // Pulls newly-responsible PGs, rebuilds allocators/opseq/pending.
  sim::Task<> AdoptTopology(cluster::TopologyMap next);
  // Drops local PG keys absent from a completed pull (stale-record sweep).
  sim::Task<> RebuildPgState(cluster::PgId pg);
  sim::Task<> MigratePgData(cluster::PgId pg);  // Cheetah-NoVG

  // Returns the LVs usable for pg's new allocations (VG, or the NoVG hash
  // partition of all LVs).
  std::vector<cluster::LvId> EffectiveVg(cluster::PgId pg) const;
  Status CheckRequest(uint64_t view, cluster::PgId pg, bool need_primary) const;
  bool IsPrimary(cluster::PgId pg) const;
  alloc::BitmapAllocator* AllocatorFor(cluster::LvId lv);
  Result<std::pair<cluster::LvId, std::vector<alloc::Extent>>> AllocateSpace(
      cluster::PgId pg, uint64_t bytes);
  // Allocates `chunk_bytes` of extents on one of the PG's EC stripe LVs; the
  // one allocation reserves the same extent range on all k+m stripe PVs.
  Result<std::pair<cluster::LvId, std::vector<alloc::Extent>>> AllocateEcStripe(
      cluster::PgId pg, uint64_t chunk_bytes);

  // Persists the batch locally and on all backups in parallel; returns OK
  // only if every replica persisted.
  sim::Task<Status> PersistAndReplicate(cluster::PgId pg,
                                        std::vector<std::pair<std::string, std::string>> puts,
                                        std::vector<std::string> deletes);
  // Waits briefly for an in-flight put's commit notification to land.
  sim::Task<> WaitPendingResolved(const std::string& name, Nanos budget);
  // Verifies a pending put against the data servers; completes or revokes.
  sim::Task<Status> VerifyPending(ReqId reqid);
  sim::Task<> RevokePut(PendingPut put);
  sim::Task<> DiscardData(const ObMeta& meta);
  sim::Task<Status> FlushBitmap(cluster::LvId lv);

  sim::Task<Result<PutAllocReply>> HandlePutAlloc(sim::NodeId src, PutAllocRequest req);
  sim::Task<Result<PutCommitAck>> HandleCommit(sim::NodeId src, PutCommitNotify req);
  sim::Task<Result<GetMetaReply>> HandleGet(sim::NodeId src, GetMetaRequest req);
  sim::Task<Result<DeleteReply>> HandleDelete(sim::NodeId src, DeleteRequest req);
  sim::Task<Result<ReplicateMetaXReply>> HandleReplicate(sim::NodeId src,
                                                         ReplicateMetaXRequest req);
  sim::Task<Result<PgPullReply>> HandlePgPull(sim::NodeId src, PgPullRequest req);
  // Migration catchup: this server is the destination; pull the PG from the
  // drain source and merge it (maintenance QoS class).
  sim::Task<Result<cluster::MigratePgReply>> HandleMigratePg(sim::NodeId src,
                                                             cluster::MigratePgRequest req);
  sim::Task<Result<cluster::TopologyPushReply>> HandleTopologyPush(sim::NodeId src,
                                                                   cluster::TopologyPush req);

  rpc::Node& rpc_;
  CheetahOptions options_;
  std::vector<sim::NodeId> manager_nodes_;
  uint64_t seed_;

  std::unique_ptr<kv::DB> db_;
  cluster::TopologyMap topo_;
  Nanos lease_until_ = 0;
  bool adopting_ = false;
  std::optional<cluster::TopologyMap> pending_topo_;

  std::set<cluster::PgId> ready_pgs_;
  std::map<cluster::PgId, uint64_t> pg_opseq_;
  std::map<cluster::LvId, alloc::BitmapAllocator> allocators_;
  std::set<cluster::LvId> dirty_bitmaps_;  // flushed by the next clean cycle
  std::map<ReqId, PendingPut> pending_;
  std::map<std::string, ReqId> pending_names_;
  // Names mid-demotion-swap (src/tier): puts and deletes answer kUnavailable
  // while a name is here, for the single persist round the swap takes.
  std::set<std::string> tiering_names_;
  // Last get time per object name, feeding the demotion recency policy.
  std::map<std::string, Nanos> last_access_;

  std::unique_ptr<Scrubber> scrubber_;
  std::unique_ptr<tier::TierEngine> tier_;

  obs::Scope scope_;
  struct {
    obs::Counter* put_allocs;
    obs::Counter* gets;
    obs::Counter* deletes;
    obs::Counter* replications;
    obs::Counter* pg_pulls_served;
    obs::Counter* recovered_kvs;
    obs::Counter* completed_puts;
    obs::Counter* revoked_puts;
    obs::Counter* logs_cleaned;
    obs::Counter* migrated_objects;
  } counters_;
};

}  // namespace cheetah::core

#endif  // SRC_CORE_META_SERVER_H_
