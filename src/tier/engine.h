// Background promotion/demotion engine for storage-class tiering.
//
// A meta-server-resident actor (the same friend-actor shape as the
// Scrubber): each pass walks every PG this server is primary for and demotes
// settled, cold replica objects to K+M erasure-coded stripes. All movement
// I/O rides the maintenance QoS class (RepairRead/RepairWrite), so a
// demotion wave never contends with foreground puts/gets.
//
// Demotion state machine per object:
//   1. allocate shard-sized extents on one of the PG's EC stripe LVs
//      (RE-DATA-style: the allocation is revoked in full on any failure);
//   2. verified-read the payload from a healthy replica, encode k+m chunks,
//      write chunk j to stripe PV j with its own CRC32C as the stored
//      checksum — the chunks are invisible until the metadata swap, so this
//      whole phase needs no exclusion against foreground ops;
//   3. swap: take the per-name tiering guard (puts/deletes answer
//      kUnavailable and retry), re-read the ObMeta and abort if the object
//      changed underneath (tombstoned, recreated, or pending again), persist
//      the EC record through the normal replication path, then free +
//      discard the old replica extents.
// A delete that slipped past the guard before the swap persisted is caught
// by a post-persist re-read; the stripe is then revoked like any failure.
#ifndef SRC_TIER_ENGINE_H_
#define SRC_TIER_ENGINE_H_

#include <string>
#include <vector>

#include "src/alloc/bitmap_allocator.h"
#include "src/cluster/topology.h"
#include "src/core/metax.h"
#include "src/core/options.h"
#include "src/obs/metrics.h"
#include "src/rpc/node.h"

namespace cheetah::core {
class MetaServer;
}  // namespace cheetah::core

namespace cheetah::tier {

class TierEngine {
 public:
  TierEngine(core::MetaServer& ms, rpc::Node& rpc, const core::CheetahOptions& options);

  // Periodic driver: sleeps options.tier.tier_scan_interval between passes.
  // Spawned by MetaServer::Init when the engine is enabled.
  sim::Task<> Loop();

  // One full demotion scan of every ready PG this server is primary for.
  sim::Task<> TierAll();

  // Value snapshot of the registry-backed counters ("tier@<node>.*").
  struct Stats {
    uint64_t scanned = 0;          // settled replica objects considered
    uint64_t demotions = 0;        // objects swapped to the EC class
    uint64_t demote_aborts = 0;    // swaps abandoned (object changed underneath)
    uint64_t demote_failures = 0;  // stripe I/O or persist errors (retried later)
    uint64_t bytes_demoted = 0;    // object bytes now living as EC stripes
  };
  Stats stats() const {
    return Stats{counters_.scanned->value(),
                 counters_.demotions->value(),
                 counters_.demote_aborts->value(),
                 counters_.demote_failures->value(),
                 counters_.bytes_demoted->value()};
  }

 private:
  sim::Task<> TierPg(cluster::PgId pg);
  sim::Task<> DemoteObject(cluster::PgId pg, std::string name, core::ObMeta meta);
  // Revokes a half-built stripe: frees the allocation and drops any chunks
  // already written.
  sim::Task<> RevokeStripe(cluster::LvId stripe_lvid,
                           std::vector<alloc::Extent> extents);

  core::MetaServer& ms_;
  rpc::Node& rpc_;
  const core::CheetahOptions& options_;

  obs::Scope scope_;
  struct {
    obs::Counter* scanned;
    obs::Counter* demotions;
    obs::Counter* demote_aborts;
    obs::Counter* demote_failures;
    obs::Counter* bytes_demoted;
  } counters_;
};

}  // namespace cheetah::tier

#endif  // SRC_TIER_ENGINE_H_
