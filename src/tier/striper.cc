#include "src/tier/striper.h"

#include "src/common/crc32c.h"
#include "src/ec/reed_solomon.h"

namespace cheetah::tier {

uint64_t ShardBytes(uint64_t size, uint32_t k) {
  return k == 0 ? 0 : (size + k - 1) / k;
}

std::vector<std::string> EncodeChunks(std::string_view data, uint32_t k, uint32_t m) {
  ec::ReedSolomon rs(static_cast<int>(k), static_cast<int>(m));
  return rs.Encode(data);
}

std::vector<uint32_t> ChunkCrcs(const std::vector<std::string>& chunks) {
  std::vector<uint32_t> crcs;
  crcs.reserve(chunks.size());
  for (const auto& c : chunks) {
    crcs.push_back(Crc32c(c));
  }
  return crcs;
}

Result<std::string> DecodeChunks(const std::vector<std::optional<std::string>>& chunks,
                                 uint32_t k, uint32_t m, uint64_t size) {
  ec::ReedSolomon rs(static_cast<int>(k), static_cast<int>(m));
  return rs.Decode(chunks, size);
}

Result<std::vector<std::string>> ReconstructChunks(
    const std::vector<std::optional<std::string>>& chunks, uint32_t k, uint32_t m) {
  ec::ReedSolomon rs(static_cast<int>(k), static_cast<int>(m));
  return rs.Reconstruct(chunks);
}

}  // namespace cheetah::tier
