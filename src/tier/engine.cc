#include "src/tier/engine.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/logging.h"
#include "src/core/meta_server.h"
#include "src/core/messages.h"
#include "src/sim/actor.h"
#include "src/sim/sync.h"
#include "src/tier/policy.h"
#include "src/tier/striper.h"

namespace cheetah::tier {

TierEngine::TierEngine(core::MetaServer& ms, rpc::Node& rpc,
                       const core::CheetahOptions& options)
    : ms_(ms),
      rpc_(rpc),
      options_(options),
      scope_("tier@" + std::to_string(rpc.id())),
      counters_{scope_.counter("scanned"),
                scope_.counter("demotions"),
                scope_.counter("demote_aborts"),
                scope_.counter("demote_failures"),
                scope_.counter("bytes_demoted")} {}

sim::Task<> TierEngine::Loop() {
  for (;;) {
    co_await sim::SleepFor(options_.tier.tier_scan_interval);
    co_await TierAll();
  }
}

sim::Task<> TierEngine::TierAll() {
  if (ms_.db_ == nullptr || ms_.topo_.view == 0 || options_.tier.ec_k == 0) {
    co_return;
  }
  for (cluster::PgId pg = 0; pg < ms_.topo_.pg_count; ++pg) {
    // Never demote out of a PG mid-migration: the multi-step extent swap
    // races both the catchup scan and the cutover's ownership flip.
    if (ms_.IsPrimary(pg) && ms_.ready_pgs_.contains(pg) &&
        ms_.topo_.MigrationOf(pg) == nullptr) {
      co_await TierPg(pg);
    }
  }
}

sim::Task<> TierEngine::TierPg(cluster::PgId pg) {
  // No stripes carved for this PG -> nothing can be demoted out of it.
  auto ec_it = ms_.topo_.ec_vgs.find(pg);
  if (ec_it == ms_.topo_.ec_vgs.end() || ec_it->second.empty()) {
    co_return;
  }
  const uint64_t scan_view = ms_.topo_.view;
  auto rows = co_await ms_.db_->Scan(core::ObMetaPrefix(pg), 0);
  if (!rows.ok()) {
    co_return;
  }
  for (const auto& [key, value] : *rows) {
    if (ms_.topo_.view != scan_view || !ms_.IsPrimary(pg) ||
        ms_.topo_.MigrationOf(pg) != nullptr) {
      co_return;  // superseded by a view change or an in-flight migration
    }
    cluster::PgId key_pg = 0;
    std::string name;
    if (!core::ParseObMetaKey(key, &key_pg, &name) || ms_.pending_names_.contains(name) ||
        ms_.tiering_names_.contains(name) || core::IsObMetaTombstone(value)) {
      continue;  // unsettled, already moving, or deleted
    }
    auto meta = core::ObMeta::Decode(value);
    if (!meta.ok() || meta->storage_class != core::StorageClass::kReplica) {
      continue;
    }
    counters_.scanned->Add();
    // Access recency: the ObMeta's birth time floors it (survives restarts);
    // gets served since then keep the object hot via last_access_.
    Nanos last = static_cast<Nanos>(meta->born_ns);
    if (auto ait = ms_.last_access_.find(name); ait != ms_.last_access_.end()) {
      last = std::max(last, ait->second);
    }
    if (!EligibleForDemotion(options_.tier, meta->size, last,
                             rpc_.machine().loop().Now())) {
      continue;
    }
    co_await DemoteObject(pg, std::move(name), std::move(*meta));
  }
}

sim::Task<> TierEngine::DemoteObject(cluster::PgId pg, std::string name,
                                     core::ObMeta meta) {
  const uint32_t k = options_.tier.ec_k;
  const uint32_t m = options_.tier.ec_m;
  auto alloc = ms_.AllocateEcStripe(pg, ShardBytes(meta.size, k));
  if (!alloc.ok()) {
    counters_.demote_failures->Add();
    co_return;
  }
  const cluster::LvId stripe_lvid = alloc->first;
  std::vector<alloc::Extent> stripe_extents = std::move(alloc->second);

  // Copy every topology-derived target out before the first co_await: a
  // TopologyPush landing mid-suspend swaps topo_ under this coroutine.
  struct Target {
    std::string device;
    uint32_t disk_index = 0;
    sim::NodeId node = sim::kInvalidNode;
  };
  std::vector<Target> chunk_targets;
  std::vector<Target> source_targets;
  uint32_t stripe_block_size = 4096;
  uint32_t src_block_size = 4096;
  {
    const cluster::LogicalVolume* stripe = ms_.topo_.FindLv(stripe_lvid);
    const cluster::LogicalVolume* src_lv = ms_.topo_.FindLv(meta.lvid);
    if (stripe == nullptr || src_lv == nullptr ||
        stripe->replicas.size() != static_cast<size_t>(k) + m) {
      co_await RevokeStripe(stripe_lvid, std::move(stripe_extents));
      counters_.demote_failures->Add();
      co_return;
    }
    stripe_block_size = stripe->block_size;
    src_block_size = src_lv->block_size;
    for (cluster::PvId pv_id : stripe->replicas) {
      const cluster::PhysicalVolume* pv = ms_.topo_.FindPv(pv_id);
      if (pv == nullptr) {
        co_await RevokeStripe(stripe_lvid, std::move(stripe_extents));
        counters_.demote_failures->Add();
        co_return;
      }
      chunk_targets.push_back(Target{pv->DeviceName(), pv->disk_index, pv->data_server});
    }
    for (cluster::PvId pv_id : src_lv->replicas) {
      const cluster::PhysicalVolume* pv = ms_.topo_.FindPv(pv_id);
      if (pv != nullptr && pv->healthy) {
        source_targets.push_back(Target{pv->DeviceName(), pv->disk_index, pv->data_server});
      }
    }
  }

  // Verified source read (maintenance class): the payload is checked against
  // the object checksum server-side, so a rotted replica can never be the
  // bytes that get striped.
  std::string payload;
  bool have_payload = false;
  for (const Target& src : source_targets) {
    core::RepairReadRequest read;
    read.device = src.device;
    read.disk_index = src.disk_index;
    read.block_size = src_block_size;
    read.extents = meta.extents;
    read.length = meta.size;
    read.verify = true;
    read.expected_checksum = meta.checksum;
    auto r = co_await rpc_.Call(src.node, std::move(read), options_.rpc_timeout);
    if (r.ok() && r->content_valid) {
      payload = std::move(r->data);
      have_payload = true;
      break;
    }
  }
  if (!have_payload) {
    // Either every replica is damaged/unreachable right now, or the devices
    // run metadata-only (content_valid=false) and there are no real bytes to
    // restripe. Retry on a later pass.
    co_await RevokeStripe(stripe_lvid, std::move(stripe_extents));
    counters_.demote_failures->Add();
    co_return;
  }

  std::vector<std::string> chunks = EncodeChunks(payload, k, m);
  std::vector<uint32_t> crcs = ChunkCrcs(chunks);

  // Chunk fan-out: chunk j to stripe PV j, each stored under its own CRC so
  // data servers can verify-reject individual chunks later. Still invisible:
  // MetaX points at the replicas until the swap below.
  std::vector<sim::Task<Status>> writes;
  for (size_t j = 0; j < chunk_targets.size(); ++j) {
    writes.push_back(
        [](TierEngine* self, Target target, uint32_t block_size,
           std::vector<alloc::Extent> extents, std::string chunk,
           uint32_t crc) -> sim::Task<Status> {
          core::RepairWriteRequest write;
          write.view = self->ms_.topo_.view;
          write.device = target.device;
          write.disk_index = target.disk_index;
          write.block_size = block_size;
          write.extents = std::move(extents);
          write.data = std::move(chunk);
          write.checksum = crc;
          auto w = co_await self->rpc_.Call(target.node, std::move(write),
                                            self->options_.rpc_timeout);
          co_return w.ok() ? Status::Ok() : w.status();
        }(this, chunk_targets[j], stripe_block_size, stripe_extents,
          std::move(chunks[j]), crcs[j]));
  }
  auto results = co_await sim::WhenAll(std::move(writes));
  for (const Status& s : results) {
    if (!s.ok()) {
      co_await RevokeStripe(stripe_lvid, std::move(stripe_extents));
      counters_.demote_failures->Add();
      co_return;
    }
  }

  // Read-back audit: a gray-failing disk acks writes whose media bytes
  // diverge from the CRC just recorded. Probe every chunk's stored checksum
  // before the swap so a born-corrupt stripe is revoked, never published.
  for (size_t j = 0; j < chunk_targets.size(); ++j) {
    core::DataProbeRequest probe;
    probe.device = chunk_targets[j].device;
    probe.disk_index = chunk_targets[j].disk_index;
    probe.block_size = stripe_block_size;
    probe.extents = stripe_extents;
    probe.expected_checksum = crcs[j];
    auto r = co_await rpc_.Call(chunk_targets[j].node, std::move(probe),
                                options_.rpc_timeout);
    if (!r.ok() || !r->present) {
      co_await RevokeStripe(stripe_lvid, std::move(stripe_extents));
      counters_.demote_failures->Add();
      co_return;
    }
  }

  // Swap: guard the name (puts/deletes bounce with kUnavailable for the one
  // persist round this takes), re-check the record, persist the EC ObMeta.
  ms_.tiering_names_.insert(name);
  bool swapped = false;
  bool persist_error = false;
  core::ObMeta old_meta;
  do {
    if (!ms_.IsPrimary(pg) || ms_.pending_names_.contains(name)) {
      break;
    }
    const std::string obkey = core::ObMetaKey(pg, name);
    auto value = co_await ms_.db_->Get(obkey);
    if (!value.ok() || core::IsObMetaTombstone(*value)) {
      break;  // deleted while the stripe was being built
    }
    auto cur = core::ObMeta::Decode(*value);
    if (!cur.ok() || cur->storage_class != core::StorageClass::kReplica ||
        cur->checksum != meta.checksum || cur->reqid != meta.reqid ||
        cur->lvid != meta.lvid) {
      break;  // recreated or moved underneath us
    }
    old_meta = *cur;
    core::ObMeta ec = std::move(*cur);
    ec.lvid = stripe_lvid;
    ec.extents = stripe_extents;
    ec.storage_class = core::StorageClass::kEc;
    ec.ec_k = k;
    ec.ec_m = m;
    ec.chunk_crcs = crcs;
    ec.born_ns = static_cast<uint64_t>(rpc_.machine().loop().Now());
    const std::string encoded = ec.Encode();
    std::vector<std::pair<std::string, std::string>> puts;
    puts.emplace_back(obkey, encoded);
    Status ps = co_await ms_.PersistAndReplicate(pg, std::move(puts), {});
    if (!ps.ok()) {
      persist_error = true;
      break;
    }
    // Post-persist audit: a delete already past its guard check when the
    // guard went up may have tombstoned over the EC record. If the record is
    // not exactly ours, the old extents are someone else's problem (the
    // delete freed them) and the stripe must be revoked.
    auto after = co_await ms_.db_->Get(obkey);
    if (!after.ok() || *after != encoded) {
      break;
    }
    swapped = true;
  } while (false);

  if (!swapped) {
    co_await RevokeStripe(stripe_lvid, std::move(stripe_extents));
    ms_.tiering_names_.erase(name);
    (persist_error ? counters_.demote_failures : counters_.demote_aborts)->Add();
    co_return;
  }

  // The object now lives as an EC stripe; retire the replica copies.
  if (alloc::BitmapAllocator* a = ms_.AllocatorFor(old_meta.lvid)) {
    a->Free(old_meta.extents);
  }
  ms_.dirty_bitmaps_.insert(old_meta.lvid);
  ms_.dirty_bitmaps_.insert(stripe_lvid);
  co_await ms_.DiscardData(old_meta);
  ms_.tiering_names_.erase(name);
  counters_.demotions->Add();
  counters_.bytes_demoted->Add(meta.size);
  LOG_DEBUG << "tier " << rpc_.id() << ": demoted " << name << " (" << meta.size
            << "B) to rs(" << k << "," << m << ") lv " << stripe_lvid;
}

sim::Task<> TierEngine::RevokeStripe(cluster::LvId stripe_lvid,
                                     std::vector<alloc::Extent> extents) {
  if (alloc::BitmapAllocator* a = ms_.AllocatorFor(stripe_lvid)) {
    a->Free(extents);
  }
  ms_.dirty_bitmaps_.insert(stripe_lvid);
  core::ObMeta doomed;
  doomed.lvid = stripe_lvid;
  doomed.extents = std::move(extents);
  co_await ms_.DiscardData(doomed);
}

}  // namespace cheetah::tier
