// Placement policy for the storage-class tiering subsystem: where does an
// object's data land on put, and when does a settled replica object become a
// demotion candidate?
//
// Write-then-promote (buckets STORAGE_LAYER.md, CFS): puts land on the fast
// path — tiny objects inline in MetaX (one round trip, no data server),
// everything else as n-way replicas — and the background TierEngine later
// demotes cold replica objects to K+M erasure coding for capacity.
#ifndef SRC_TIER_POLICY_H_
#define SRC_TIER_POLICY_H_

#include <cstdint>

#include "src/common/units.h"
#include "src/core/metax.h"
#include "src/core/options.h"

namespace cheetah::tier {

// Storage class for a fresh put of `size` bytes. Never returns kEc: EC is
// reached only by background demotion, so the put critical path never pays
// stripe fan-out.
inline core::StorageClass ChooseClass(const core::TierOptions& opts, uint64_t size) {
  if (opts.inline_threshold > 0 && size <= opts.inline_threshold) {
    return core::StorageClass::kInline;
  }
  return core::StorageClass::kReplica;
}

// Demotion policy: a settled replica object is cold enough to move to EC
// once it is big enough to be worth striping and idle past demote_after.
inline bool EligibleForDemotion(const core::TierOptions& opts, uint64_t size,
                                Nanos last_access, Nanos now) {
  if (opts.ec_k == 0 || size < opts.min_ec_object_bytes) {
    return false;
  }
  return now - last_access >= opts.demote_after;
}

}  // namespace cheetah::tier

#endif  // SRC_TIER_POLICY_H_
