// Striping helpers between whole objects and the per-PV chunks of an EC
// stripe LV: chunk layout, per-chunk CRCs, and reconstruction glue over
// ec::ReedSolomon. Chunk j of an object lives on replicas[j] of the stripe
// LV at the same extent offsets as every other chunk.
#ifndef SRC_TIER_STRIPER_H_
#define SRC_TIER_STRIPER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace cheetah::tier {

// Per-chunk shard size for an object of `size` bytes striped k-wide
// (ceil(size / k); the last data chunk is zero-padded to this).
uint64_t ShardBytes(uint64_t size, uint32_t k);

// Splits `data` into k data chunks + m parity chunks. chunks[i].size() ==
// ShardBytes(data.size(), k) for all i.
std::vector<std::string> EncodeChunks(std::string_view data, uint32_t k, uint32_t m);

// CRC32C of every chunk, in chunk order.
std::vector<uint32_t> ChunkCrcs(const std::vector<std::string>& chunks);

// Reassembles the object from any k surviving chunks (nullopt = lost).
// Truncates the zero padding back off using `size`.
Result<std::string> DecodeChunks(const std::vector<std::optional<std::string>>& chunks,
                                 uint32_t k, uint32_t m, uint64_t size);

// Recomputes the full chunk set from any k survivors — used to rebuild lost
// or corrupt chunks in place during degraded-read repair and scrubbing.
Result<std::vector<std::string>> ReconstructChunks(
    const std::vector<std::optional<std::string>>& chunks, uint32_t k, uint32_t m);

}  // namespace cheetah::tier

#endif  // SRC_TIER_STRIPER_H_
