// An atomic group of puts/deletes. The batch is the unit of WAL logging and
// of crash atomicity: after recovery either every operation of a batch is
// visible or none is. Cheetah relies on this to write the three MetaX KVs of
// a put atomically (Table 1 of the paper).
#ifndef SRC_KV_WRITE_BATCH_H_
#define SRC_KV_WRITE_BATCH_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace cheetah::kv {

class WriteBatch {
 public:
  WriteBatch() = default;

  void Put(std::string key, std::string value) {
    ops_.push_back(Op{std::move(key), std::move(value)});
  }
  void Delete(std::string key) { ops_.push_back(Op{std::move(key), std::nullopt}); }

  bool empty() const { return ops_.empty(); }
  size_t size() const { return ops_.size(); }
  void Clear() { ops_.clear(); }

  // Approximate bytes this batch adds to the memtable.
  uint64_t ByteSize() const;

  struct Op {
    std::string key;
    std::optional<std::string> value;  // nullopt = tombstone
  };
  const std::vector<Op>& ops() const { return ops_; }

  // WAL record payload (without the record header).
  std::string Encode() const;
  static Result<WriteBatch> Decode(std::string_view payload);

 private:
  std::vector<Op> ops_;
};

}  // namespace cheetah::kv

#endif  // SRC_KV_WRITE_BATCH_H_
