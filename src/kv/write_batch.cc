#include "src/kv/write_batch.h"

#include "src/common/coding.h"

namespace cheetah::kv {

uint64_t WriteBatch::ByteSize() const {
  uint64_t total = 0;
  for (const auto& op : ops_) {
    total += op.key.size() + (op.value ? op.value->size() : 0) + 24;
  }
  return total;
}

std::string WriteBatch::Encode() const {
  std::string out;
  PutVarint64(&out, ops_.size());
  for (const auto& op : ops_) {
    out.push_back(op.value ? 'P' : 'D');
    PutLengthPrefixed(&out, op.key);
    if (op.value) {
      PutLengthPrefixed(&out, *op.value);
    }
  }
  return out;
}

Result<WriteBatch> WriteBatch::Decode(std::string_view payload) {
  WriteBatch batch;
  uint64_t count = 0;
  if (!GetVarint64(&payload, &count)) {
    return Status::Corruption("batch header");
  }
  for (uint64_t i = 0; i < count; ++i) {
    if (payload.empty()) {
      return Status::Corruption("batch truncated");
    }
    const char tag = payload.front();
    payload.remove_prefix(1);
    std::string_view key;
    if (!GetLengthPrefixed(&payload, &key)) {
      return Status::Corruption("batch key");
    }
    if (tag == 'P') {
      std::string_view value;
      if (!GetLengthPrefixed(&payload, &value)) {
        return Status::Corruption("batch value");
      }
      batch.Put(std::string(key), std::string(value));
    } else if (tag == 'D') {
      batch.Delete(std::string(key));
    } else {
      return Status::Corruption("batch tag");
    }
  }
  return batch;
}

}  // namespace cheetah::kv
