#include "src/kv/sstable.h"

#include <algorithm>

#include "src/common/coding.h"
#include "src/common/crc32c.h"

namespace cheetah::kv {

Table::Table(std::string file_name, std::vector<Entry> entries)
    : file_name_(std::move(file_name)), entries_(std::move(entries)) {
  if (!entries_.empty()) {
    min_key_ = entries_.front().key;
    max_key_ = entries_.back().key;
  }
  for (const auto& e : entries_) {
    data_bytes_ += e.key.size() + (e.value ? e.value->size() : 0);
  }
}

const Table::Entry* Table::Find(std::string_view key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, std::string_view k) { return e.key < k; });
  if (it == entries_.end() || it->key != key) {
    return nullptr;
  }
  return &*it;
}

std::vector<const Table::Entry*> Table::PrefixRange(std::string_view prefix) const {
  std::vector<const Entry*> out;
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), prefix,
      [](const Entry& e, std::string_view k) { return e.key < k; });
  for (; it != entries_.end() && std::string_view(it->key).starts_with(prefix); ++it) {
    out.push_back(&*it);
  }
  return out;
}

namespace {

// Appends one crc32 | fixed64 len | body block built from [first, last).
void EncodeBlock(std::string* out, const Table::Entry* first, const Table::Entry* last) {
  std::string body;
  PutVarint64(&body, static_cast<uint64_t>(last - first));
  for (const Table::Entry* e = first; e != last; ++e) {
    body.push_back(e->value ? 'P' : 'D');
    PutLengthPrefixed(&body, e->key);
    if (e->value) {
      PutLengthPrefixed(&body, *e->value);
    }
  }
  PutFixed32(out, Crc32c(body));
  PutFixed64(out, body.size());
  *out += body;
}

// Parses one CRC-verified block body into `entries`. Returns false (leaving
// any partially-appended entries removed) if the body is malformed.
bool DecodeBlockBody(std::string_view body, std::vector<Table::Entry>* entries) {
  const size_t restore = entries->size();
  uint64_t count = 0;
  if (!GetVarint64(&body, &count)) {
    return false;
  }
  for (uint64_t i = 0; i < count; ++i) {
    if (body.empty()) {
      entries->resize(restore);
      return false;
    }
    const char tag = body.front();
    body.remove_prefix(1);
    std::string_view key;
    if (!GetLengthPrefixed(&body, &key)) {
      entries->resize(restore);
      return false;
    }
    Table::Entry e;
    e.key = std::string(key);
    if (tag == 'P') {
      std::string_view value;
      if (!GetLengthPrefixed(&body, &value)) {
        entries->resize(restore);
        return false;
      }
      e.value = std::string(value);
    } else if (tag != 'D') {
      entries->resize(restore);
      return false;
    }
    entries->push_back(std::move(e));
  }
  return true;
}

}  // namespace

std::string Table::Encode() const {
  std::string out;
  if (entries_.empty()) {
    EncodeBlock(&out, nullptr, nullptr);
    return out;
  }
  // Cut a new block whenever the accumulated entry payload passes
  // kBlockBytes; every block stays independently decodable.
  size_t begin = 0;
  size_t acc = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    acc += entries_[i].key.size() + (entries_[i].value ? entries_[i].value->size() : 0) + 8;
    if (acc >= kBlockBytes) {
      EncodeBlock(&out, entries_.data() + begin, entries_.data() + i + 1);
      begin = i + 1;
      acc = 0;
    }
  }
  if (begin < entries_.size()) {
    EncodeBlock(&out, entries_.data() + begin, entries_.data() + entries_.size());
  }
  return out;
}

Table::DecodeResult Table::DecodeBlocks(std::string_view file) {
  DecodeResult out;
  std::string_view input = file;
  while (!input.empty()) {
    uint32_t crc = 0;
    uint64_t len = 0;
    if (!GetFixed32(&input, &crc) || !GetFixed64(&input, &len) || input.size() < len) {
      // Header too mangled to even skip past: the rest of the file is lost.
      ++out.blocks;
      ++out.bad_blocks;
      break;
    }
    std::string_view body = input.substr(0, len);
    input.remove_prefix(len);
    ++out.blocks;
    if (Crc32c(body) != crc || !DecodeBlockBody(body, &out.entries)) {
      ++out.bad_blocks;  // skip this block, keep salvaging the next ones
    }
  }
  return out;
}

Result<std::vector<Table::Entry>> Table::DecodeEntries(std::string_view file) {
  DecodeResult r = DecodeBlocks(file);
  if (r.bad_blocks > 0) {
    return Status::Corruption("sstable: " + std::to_string(r.bad_blocks) + "/" +
                              std::to_string(r.blocks) + " blocks corrupt");
  }
  return std::move(r.entries);
}

}  // namespace cheetah::kv
