#include "src/kv/sstable.h"

#include <algorithm>

#include "src/common/coding.h"
#include "src/common/crc32c.h"

namespace cheetah::kv {

Table::Table(std::string file_name, std::vector<Entry> entries)
    : file_name_(std::move(file_name)), entries_(std::move(entries)) {
  if (!entries_.empty()) {
    min_key_ = entries_.front().key;
    max_key_ = entries_.back().key;
  }
  for (const auto& e : entries_) {
    data_bytes_ += e.key.size() + (e.value ? e.value->size() : 0);
  }
}

const Table::Entry* Table::Find(std::string_view key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, std::string_view k) { return e.key < k; });
  if (it == entries_.end() || it->key != key) {
    return nullptr;
  }
  return &*it;
}

std::vector<const Table::Entry*> Table::PrefixRange(std::string_view prefix) const {
  std::vector<const Entry*> out;
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), prefix,
      [](const Entry& e, std::string_view k) { return e.key < k; });
  for (; it != entries_.end() && std::string_view(it->key).starts_with(prefix); ++it) {
    out.push_back(&*it);
  }
  return out;
}

std::string Table::Encode() const {
  std::string body;
  PutVarint64(&body, entries_.size());
  for (const auto& e : entries_) {
    body.push_back(e.value ? 'P' : 'D');
    PutLengthPrefixed(&body, e.key);
    if (e.value) {
      PutLengthPrefixed(&body, *e.value);
    }
  }
  std::string out;
  PutFixed32(&out, Crc32c(body));
  PutFixed64(&out, body.size());
  out += body;
  return out;
}

Result<std::vector<Table::Entry>> Table::DecodeEntries(std::string_view file) {
  std::string_view input = file;
  uint32_t crc = 0;
  uint64_t len = 0;
  if (!GetFixed32(&input, &crc) || !GetFixed64(&input, &len) || input.size() < len) {
    return Status::Corruption("sstable header");
  }
  std::string_view body = input.substr(0, len);
  if (Crc32c(body) != crc) {
    return Status::Corruption("sstable checksum mismatch");
  }
  uint64_t count = 0;
  if (!GetVarint64(&body, &count)) {
    return Status::Corruption("sstable count");
  }
  std::vector<Entry> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (body.empty()) {
      return Status::Corruption("sstable truncated");
    }
    const char tag = body.front();
    body.remove_prefix(1);
    std::string_view key;
    if (!GetLengthPrefixed(&body, &key)) {
      return Status::Corruption("sstable key");
    }
    Entry e;
    e.key = std::string(key);
    if (tag == 'P') {
      std::string_view value;
      if (!GetLengthPrefixed(&body, &value)) {
        return Status::Corruption("sstable value");
      }
      e.value = std::string(value);
    } else if (tag != 'D') {
      return Status::Corruption("sstable tag");
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace cheetah::kv
