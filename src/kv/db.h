// Embedded LSM key-value store over a simulated disk (RocksDB substitute).
//
// Write path: WAL append (optionally fsynced) -> memtable. A full memtable is
// frozen and flushed to a level-0 SSTable in the background; level-0 tables
// are merged into a single level-1 run when l0_compaction_trigger accumulate.
// WriteBatch gives multi-key atomicity (all-or-nothing across crashes), which
// is the property Cheetah's MetaX maintenance relies on (§5.2 of the paper).
//
// Recovery: Open() reads the manifest, loads live SSTables (salvaging around
// CRC-bad blocks), deletes orphans from interrupted flushes/compactions, and
// replays surviving WAL records in order. WAL replay is paranoid: it
// distinguishes a clean tail from a torn final record (benign power-loss
// truncation) from a full-length record whose CRC or decode fails (media
// damage), and keeps salvaging records that follow a damaged one. The
// classification is reported in RecoveryStats and obs counters so a scrub
// or operator can tell silent corruption from an ordinary crash.
#ifndef SRC_KV_DB_H_
#define SRC_KV_DB_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/arena.h"
#include "src/common/status.h"
#include "src/kv/options.h"
#include "src/obs/metrics.h"
#include "src/kv/sstable.h"
#include "src/kv/write_batch.h"
#include "src/sim/storage.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace cheetah::kv {

class DB {
 public:
  // Value snapshot of this DB's registry-backed counters (the counters
  // themselves live in obs::Registry under "kv.<name>#<instance>.*").
  struct Stats {
    uint64_t writes = 0;
    uint64_t flushes = 0;
    uint64_t compactions = 0;
    uint64_t gets = 0;
    uint64_t wal_bytes = 0;
  };

  // What the last Open() found on disk. `clean` means every WAL byte
  // replayed and every SSTable block verified: any other combination is
  // either a benign crash artifact (torn tail) or media damage (corrupt
  // records / bad blocks).
  struct RecoveryStats {
    uint64_t wal_records_replayed = 0;
    uint64_t wal_torn_tail = 0;        // truncated final record (power loss)
    uint64_t wal_corrupt_records = 0;  // full-length record, CRC/decode bad
    uint64_t wal_salvaged_records = 0; // good records found after a corrupt one
    uint64_t sst_blocks_bad = 0;       // SSTable blocks skipped by salvage
    bool clean() const {
      return wal_torn_tail == 0 && wal_corrupt_records == 0 && sst_blocks_bad == 0;
    }
  };
  const RecoveryStats& recovery_stats() const { return recovery_; }

  // Opens (or creates) the database named options.name on `storage`.
  static sim::Task<Result<std::unique_ptr<DB>>> Open(Options options, sim::Storage* storage);

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;
  ~DB() = default;

  // Atomically applies `batch`. Durable (given sync_wal) once this returns.
  sim::Task<Status> Write(WriteBatch batch);

  sim::Task<Status> Put(std::string key, std::string value);
  sim::Task<Status> Delete(std::string key);

  // Point lookup. NotFound if absent or deleted.
  sim::Task<Result<std::string>> Get(std::string key);

  // All live (key, value) pairs whose key starts with `prefix`, sorted by key.
  // limit = 0 means unlimited.
  sim::Task<Result<std::vector<std::pair<std::string, std::string>>>> Scan(std::string prefix,
                                                                           size_t limit);

  // Number of live entries (exact; walks the merged view without disk charge).
  uint64_t CountLiveEntries() const;

  Stats stats() const {
    return Stats{counters_.writes->value(), counters_.flushes->value(),
                 counters_.compactions->value(), counters_.gets->value(),
                 counters_.wal_bytes->value()};
  }
  const Options& options() const { return options_; }

  // Test hook: waits until no flush/compaction is running.
  sim::Task<> WaitForMaintenance();

 private:
  DB(Options options, sim::Storage* storage)
      : options_(std::move(options)),
        storage_(storage),
        scope_("kv." + options_.name),
        counters_{scope_.counter("writes"), scope_.counter("flushes"),
                  scope_.counter("compactions"), scope_.counter("gets"),
                  scope_.counter("wal_bytes"), scope_.counter("wal_torn_tail"),
                  scope_.counter("wal_corrupt_records"),
                  scope_.counter("wal_salvaged_records"),
                  scope_.counter("sst_blocks_bad")} {}

  // Node allocations come from the process-wide pool: the memtable churns one
  // tree node per applied key, and pooling them keeps the write path off
  // malloc (behavior is unchanged — an allocator affects neither ordering nor
  // contents).
  using MemTable =
      std::map<std::string, std::optional<std::string>, std::less<std::string>,
               PoolAllocator<std::pair<const std::string, std::optional<std::string>>>>;

  std::string WalName(uint64_t seq) const;
  std::string SstName(uint64_t file_no) const;
  std::string ManifestName() const { return options_.name + ".MANIFEST"; }

  std::string EncodeManifest() const;
  Status ApplyManifest(std::string_view data);

  sim::Task<Status> PersistManifest();
  sim::Task<> MaybeScheduleFlush();
  sim::Task<> FlushTask();
  sim::Task<> CompactTask();
  void ApplyToMem(const WriteBatch& batch);

  // Merged lookup across memtables and tables without charging the disk;
  // returns nullopt if the key is nowhere, or the entry (maybe tombstone).
  std::optional<std::optional<std::string>> LookupInMemory(std::string_view key,
                                                           uint64_t* charged_bytes) const;

  Options options_;
  sim::Storage* storage_;

  MemTable mem_;
  uint64_t mem_bytes_ = 0;
  uint64_t mem_wal_seq_ = 1;
  MemTable imm_;       // frozen memtable being flushed
  uint64_t imm_wal_seq_ = 0;
  bool has_imm_ = false;

  bool flushing_ = false;
  bool compacting_ = false;
  bool freeze_pending_ = false;  // flush wants to swap memtables; writes stall
  int in_flight_writes_ = 0;     // WAL appends not yet applied to the memtable

  // Table names as listed by the last-read manifest (used during Open).
  std::vector<std::string> manifest_l0_;
  std::vector<std::string> manifest_l1_;

  // L1 runs beyond this are folded into one (dropping tombstones).
  static constexpr size_t kMaxL1Runs = 8;

  uint64_t next_file_no_ = 1;
  std::vector<TablePtr> l0_;  // newest first
  std::vector<TablePtr> l1_;  // tiered runs, newest first

  RecoveryStats recovery_;

  obs::Scope scope_;
  struct {
    obs::Counter* writes;
    obs::Counter* flushes;
    obs::Counter* compactions;
    obs::Counter* gets;
    obs::Counter* wal_bytes;
    obs::Counter* wal_torn_tail;
    obs::Counter* wal_corrupt_records;
    obs::Counter* wal_salvaged_records;
    obs::Counter* sst_blocks_bad;
  } counters_;
};

}  // namespace cheetah::kv

#endif  // SRC_KV_DB_H_
