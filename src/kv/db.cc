#include "src/kv/db.h"

#include <algorithm>
#include <cassert>

#include "src/common/coding.h"
#include "src/common/crc32c.h"
#include "src/common/logging.h"
#include "src/obs/trace.h"
#include "src/sim/actor.h"

namespace cheetah::kv {

namespace {

// WAL record framing: crc32(payload) | fixed64 length | payload.
std::string FrameWalRecord(const std::string& payload) {
  std::string out;
  PutFixed32(&out, Crc32c(payload));
  PutFixed64(&out, payload.size());
  out += payload;
  return out;
}

}  // namespace

std::string DB::WalName(uint64_t seq) const {
  return options_.name + ".wal_" + std::to_string(seq);
}

std::string DB::SstName(uint64_t file_no) const {
  return options_.name + ".sst_" + std::to_string(file_no);
}

std::string DB::EncodeManifest() const {
  std::string body;
  PutVarint64(&body, next_file_no_);
  PutVarint64(&body, l0_.size());
  for (const auto& t : l0_) {
    PutLengthPrefixed(&body, t->file_name());
  }
  PutVarint64(&body, l1_.size());
  for (const auto& t : l1_) {
    PutLengthPrefixed(&body, t->file_name());
  }
  std::string out;
  PutFixed32(&out, Crc32c(body));
  out += body;
  return out;
}

Status DB::ApplyManifest(std::string_view data) {
  uint32_t crc = 0;
  if (!GetFixed32(&data, &crc) || Crc32c(data) != crc) {
    return Status::Corruption("manifest checksum");
  }
  uint64_t next_file = 0, n0 = 0, n1 = 0;
  if (!GetVarint64(&data, &next_file) || !GetVarint64(&data, &n0)) {
    return Status::Corruption("manifest header");
  }
  next_file_no_ = next_file;
  manifest_l0_.clear();
  manifest_l1_.clear();
  for (uint64_t i = 0; i < n0; ++i) {
    std::string_view name;
    if (!GetLengthPrefixed(&data, &name)) {
      return Status::Corruption("manifest l0");
    }
    manifest_l0_.emplace_back(name);
  }
  if (!GetVarint64(&data, &n1)) {
    return Status::Corruption("manifest l1 count");
  }
  for (uint64_t i = 0; i < n1; ++i) {
    std::string_view name;
    if (!GetLengthPrefixed(&data, &name)) {
      return Status::Corruption("manifest l1");
    }
    manifest_l1_.emplace_back(name);
  }
  return Status::Ok();
}

sim::Task<Result<std::unique_ptr<DB>>> DB::Open(Options options, sim::Storage* storage) {
  std::unique_ptr<DB> db(new DB(std::move(options), storage));

  // Load the manifest if one exists.
  if (storage->FileExists(db->ManifestName())) {
    auto manifest = co_await storage->ReadFile(db->ManifestName());
    if (!manifest.ok()) {
      co_return manifest.status();
    }
    Status s = db->ApplyManifest(*manifest);
    if (!s.ok()) {
      co_return s;
    }
  }

  // Load live tables; anything else with our sst prefix is an orphan from an
  // interrupted flush/compaction and is deleted.
  auto load = [&](const std::string& name) -> sim::Task<Result<TablePtr>> {
    auto file = co_await storage->ReadFile(name);
    if (!file.ok()) {
      co_return file.status();
    }
    // Salvaging load: a CRC-bad block loses its own key range only. The
    // missing rows surface as NotFound, which MetaX's verification and
    // re-pull paths treat like any other lost replica state; refusing to
    // open the whole store would turn one flipped bit into a dead server.
    Table::DecodeResult r = Table::DecodeBlocks(*file);
    if (r.bad_blocks > 0) {
      LOG_WARN << "kv " << name << ": salvaged " << (r.blocks - r.bad_blocks)
               << "/" << r.blocks << " blocks";
      db->recovery_.sst_blocks_bad += r.bad_blocks;
      db->counters_.sst_blocks_bad->Add(r.bad_blocks);
    }
    co_return TablePtr(std::make_shared<Table>(name, std::move(r.entries)));
  };
  for (const auto& name : db->manifest_l0_) {
    auto t = co_await load(name);
    if (!t.ok()) {
      co_return t.status();
    }
    db->l0_.push_back(std::move(*t));
  }
  for (const auto& name : db->manifest_l1_) {
    auto t = co_await load(name);
    if (!t.ok()) {
      co_return t.status();
    }
    db->l1_.push_back(std::move(*t));
  }
  for (const auto& name : storage->ListFiles(db->options_.name + ".sst_")) {
    const bool live =
        std::find(db->manifest_l0_.begin(), db->manifest_l0_.end(), name) !=
            db->manifest_l0_.end() ||
        std::find(db->manifest_l1_.begin(), db->manifest_l1_.end(), name) !=
            db->manifest_l1_.end();
    if (!live) {
      (void)storage->DeleteFile(name);
    }
  }

  // Replay surviving WALs in sequence order into the memtable.
  std::vector<std::string> wals = storage->ListFiles(db->options_.name + ".wal_");
  std::vector<std::pair<uint64_t, std::string>> ordered;
  for (const auto& name : wals) {
    const uint64_t seq = std::stoull(name.substr(name.rfind('_') + 1));
    ordered.emplace_back(seq, name);
  }
  std::sort(ordered.begin(), ordered.end());
  uint64_t max_seq = 0;
  for (const auto& [seq, name] : ordered) {
    max_seq = std::max(max_seq, seq);
    auto file = co_await storage->ReadFile(name);
    if (!file.ok()) {
      co_return file.status();
    }
    // Paranoid replay. Three distinct endings, reported separately:
    //  - clean tail: the input ran out exactly at a record boundary;
    //  - torn tail: an incomplete record at EOF — the benign signature of a
    //    power loss mid-append (nothing after it can exist);
    //  - corrupt record: a full-length record whose CRC or decode fails —
    //    media damage, not truncation. Replay skips it by its framed length
    //    and keeps salvaging the records that follow (MetaX rows are
    //    independent KVs; the skipped batch's loss is caught by the put
    //    verification / scrub paths, while stopping here would silently
    //    discard every later record too).
    std::string_view input = *file;
    bool damage_seen = false;
    while (!input.empty()) {
      uint32_t crc = 0;
      uint64_t len = 0;
      if (!GetFixed32(&input, &crc) || !GetFixed64(&input, &len) || input.size() < len) {
        ++db->recovery_.wal_torn_tail;
        db->counters_.wal_torn_tail->Add();
        break;
      }
      std::string_view payload = input.substr(0, len);
      input.remove_prefix(len);
      Result<WriteBatch> batch = Status::Corruption("wal record crc");
      if (Crc32c(payload) == crc) {
        batch = WriteBatch::Decode(payload);
      }
      if (!batch.ok()) {
        damage_seen = true;
        ++db->recovery_.wal_corrupt_records;
        db->counters_.wal_corrupt_records->Add();
        continue;
      }
      db->ApplyToMem(*batch);
      ++db->recovery_.wal_records_replayed;
      if (damage_seen) {
        ++db->recovery_.wal_salvaged_records;
        db->counters_.wal_salvaged_records->Add();
      }
    }
    // Consolidate: older WALs' contents now live in the memtable; keep
    // appending to the newest WAL file.
    if (seq != ordered.back().first) {
      (void)storage->DeleteFile(name);
    }
  }
  db->mem_wal_seq_ = std::max<uint64_t>(max_seq, 1);

  co_return db;
}

void DB::ApplyToMem(const WriteBatch& batch) {
  for (const auto& op : batch.ops()) {
    mem_bytes_ += op.key.size() + (op.value ? op.value->size() : 0) + 24;
    mem_[op.key] = op.value;
  }
}

sim::Task<Status> DB::Write(WriteBatch batch) {
  if (batch.empty()) {
    co_return Status::Ok();
  }
  auto& tracer = obs::Tracer::Global();
  const uint64_t span = tracer.enabled()
                            ? tracer.Begin(obs::SpanKind::kKv, "kv.write",
                                           storage_->node_id(), storage_->Now())
                            : 0;
  // A pending freeze wants a quiescent WAL; let it switch memtables first.
  while (freeze_pending_) {
    co_await sim::SleepFor(Micros(5));
  }
  ++in_flight_writes_;
  const std::string record = FrameWalRecord(batch.Encode());
  counters_.wal_bytes->Add(record.size());
  Status s = co_await storage_->Append(WalName(mem_wal_seq_), record, options_.sync_wal);
  if (!s.ok()) {
    --in_flight_writes_;
    tracer.End(span, storage_->Now(), /*ok=*/false);
    co_return s;
  }
  ApplyToMem(batch);
  counters_.writes->Add();
  --in_flight_writes_;
  co_await MaybeScheduleFlush();
  tracer.End(span, storage_->Now());
  co_return Status::Ok();
}

sim::Task<Status> DB::Put(std::string key, std::string value) {
  WriteBatch batch;
  batch.Put(std::move(key), std::move(value));
  return Write(std::move(batch));
}

sim::Task<Status> DB::Delete(std::string key) {
  WriteBatch batch;
  batch.Delete(std::move(key));
  return Write(std::move(batch));
}

sim::Task<> DB::MaybeScheduleFlush() {
  if (mem_bytes_ < options_.memtable_bytes || flushing_ || freeze_pending_) {
    co_return;
  }
  sim::Actor* actor = co_await sim::CurrentActor{};
  flushing_ = true;
  freeze_pending_ = true;
  actor->Spawn(FlushTask());
}

sim::Task<> DB::FlushTask() {
  auto& tracer = obs::Tracer::Global();
  const uint64_t span = tracer.enabled()
                            ? tracer.Begin(obs::SpanKind::kKv, "kv.flush",
                                           storage_->node_id(), storage_->Now())
                            : 0;
  // Wait for in-flight WAL appends so every record in the old WAL is also in
  // the frozen memtable (otherwise deleting the WAL could lose them).
  while (in_flight_writes_ > 0) {
    co_await sim::SleepFor(Micros(5));
  }
  imm_ = std::move(mem_);
  mem_.clear();
  mem_bytes_ = 0;
  has_imm_ = true;
  imm_wal_seq_ = mem_wal_seq_;
  ++mem_wal_seq_;
  freeze_pending_ = false;

  // Build and persist the level-0 table.
  std::vector<Table::Entry> entries;
  entries.reserve(imm_.size());
  for (auto& [key, value] : imm_) {
    entries.push_back(Table::Entry{key, value});
  }
  const std::string file_name = SstName(next_file_no_++);
  auto table = std::make_shared<Table>(file_name, std::move(entries));
  Status s = co_await storage_->WriteFile(file_name, table->Encode(), /*sync=*/true);
  if (s.ok()) {
    l0_.insert(l0_.begin(), table);  // newest first
    s = co_await PersistManifest();
  }
  if (s.ok()) {
    (void)storage_->DeleteFile(WalName(imm_wal_seq_));
    has_imm_ = false;
    imm_.clear();
    counters_.flushes->Add();
  } else {
    LOG_WARN << "kv flush failed: " << s.ToString();
  }
  tracer.End(span, storage_->Now(), s.ok());
  flushing_ = false;

  if (static_cast<int>(l0_.size()) >= options_.l0_compaction_trigger && !compacting_) {
    compacting_ = true;
    sim::Actor* actor = co_await sim::CurrentActor{};
    actor->Spawn(CompactTask());
  }
}

sim::Task<> DB::CompactTask() {
  // Tiered compaction: merge the current level-0 runs into one new level-1
  // run, prepended to the L1 list (newest first). Tombstones are retained —
  // older L1 runs may still hold the deleted key — so write amplification
  // stays bounded regardless of how aggressive the trigger is (the property
  // behind the paper's Fig. 11 finding that flush/merge rates barely matter).
  // Old L1 runs are folded in only when the L1 list itself grows long.
  auto& tracer = obs::Tracer::Global();
  const uint64_t span = tracer.enabled()
                            ? tracer.Begin(obs::SpanKind::kKv, "kv.compact",
                                           storage_->node_id(), storage_->Now())
                            : 0;
  std::vector<TablePtr> input_l0 = l0_;
  std::vector<TablePtr> input_l1;
  const bool fold_l1 = l1_.size() + 1 > kMaxL1Runs;
  if (fold_l1) {
    input_l1 = l1_;
  }

  // Merge newest-to-oldest so the first writer of a key wins.
  std::map<std::string, std::optional<std::string>> merged;
  auto absorb = [&merged](const TablePtr& t) {
    for (const auto& e : t->entries()) {
      merged.emplace(e.key, e.value);  // emplace keeps the newest
    }
  };
  for (const auto& t : input_l0) {
    absorb(t);
  }
  for (const auto& t : input_l1) {
    absorb(t);
  }
  std::vector<Table::Entry> entries;
  entries.reserve(merged.size());
  for (auto& [key, value] : merged) {
    if (value || !fold_l1) {
      entries.push_back(Table::Entry{key, value});
    }
    // When folding the whole L1 (fold_l1), this run becomes the bottom level
    // and tombstones can finally be dropped.
  }

  const std::string file_name = SstName(next_file_no_++);
  auto table = std::make_shared<Table>(file_name, std::move(entries));
  Status s = co_await storage_->WriteFile(file_name, table->Encode(), /*sync=*/true);
  if (s.ok()) {
    // Remove exactly the consumed inputs (new flushes may have prepended).
    auto consumed_l0 = [&](const TablePtr& t) {
      return std::find(input_l0.begin(), input_l0.end(), t) != input_l0.end();
    };
    l0_.erase(std::remove_if(l0_.begin(), l0_.end(), consumed_l0), l0_.end());
    if (fold_l1) {
      l1_.clear();
    }
    l1_.insert(l1_.begin(), table);  // newest first
    s = co_await PersistManifest();
  }
  if (s.ok()) {
    for (const auto& t : input_l0) {
      (void)storage_->DeleteFile(t->file_name());
    }
    for (const auto& t : input_l1) {
      (void)storage_->DeleteFile(t->file_name());
    }
    counters_.compactions->Add();
  } else {
    LOG_WARN << "kv compaction failed: " << s.ToString();
  }
  tracer.End(span, storage_->Now(), s.ok());
  compacting_ = false;
}

sim::Task<Status> DB::PersistManifest() {
  return storage_->WriteFile(ManifestName(), EncodeManifest(), /*sync=*/true);
}

std::optional<std::optional<std::string>> DB::LookupInMemory(std::string_view key,
                                                             uint64_t* charged_bytes) const {
  std::string k(key);
  if (auto it = mem_.find(k); it != mem_.end()) {
    return it->second;
  }
  if (has_imm_) {
    if (auto it = imm_.find(k); it != imm_.end()) {
      return it->second;
    }
  }
  for (const auto& t : l0_) {
    if (!t->MayContain(key)) {
      continue;
    }
    *charged_bytes += 4096;
    if (const Table::Entry* e = t->Find(key)) {
      *charged_bytes += e->value ? e->value->size() : 0;
      return e->value;
    }
  }
  for (const auto& t : l1_) {
    if (!t->MayContain(key)) {
      continue;
    }
    *charged_bytes += 4096;
    if (const Table::Entry* e = t->Find(key)) {
      *charged_bytes += e->value ? e->value->size() : 0;
      return e->value;
    }
  }
  return std::nullopt;
}

sim::Task<Result<std::string>> DB::Get(std::string key) {
  counters_.gets->Add();
  uint64_t charged = 0;
  auto found = LookupInMemory(key, &charged);
  if (charged > 0) {
    co_await storage_->ChargeRead(charged);
  }
  if (!found || !*found) {
    co_return Status::NotFound("kv: " + key);
  }
  co_return **found;
}

sim::Task<Result<std::vector<std::pair<std::string, std::string>>>> DB::Scan(std::string prefix,
                                                                             size_t limit) {
  // Build the merged view oldest-to-newest so later levels override.
  std::map<std::string, std::optional<std::string>> merged;
  uint64_t charged = 0;
  for (auto it = l1_.rbegin(); it != l1_.rend(); ++it) {
    for (const Table::Entry* e : (*it)->PrefixRange(prefix)) {
      charged += e->key.size() + (e->value ? e->value->size() : 0);
      merged[e->key] = e->value;
    }
  }
  for (auto it = l0_.rbegin(); it != l0_.rend(); ++it) {  // oldest L0 first
    for (const Table::Entry* e : (*it)->PrefixRange(prefix)) {
      charged += e->key.size() + (e->value ? e->value->size() : 0);
      merged[e->key] = e->value;
    }
  }
  auto absorb_mem = [&merged, &prefix](const MemTable& m) {
    for (auto it = m.lower_bound(prefix);
         it != m.end() && std::string_view(it->first).starts_with(prefix); ++it) {
      merged[it->first] = it->second;
    }
  };
  if (has_imm_) {
    absorb_mem(imm_);
  }
  absorb_mem(mem_);
  if (charged > 0) {
    co_await storage_->ChargeRead(charged);
  }
  std::vector<std::pair<std::string, std::string>> out;
  for (auto& [key, value] : merged) {
    if (value) {
      out.emplace_back(key, *value);
      if (limit != 0 && out.size() >= limit) {
        break;
      }
    }
  }
  co_return out;
}

uint64_t DB::CountLiveEntries() const {
  std::map<std::string, std::optional<std::string>> merged;
  for (auto it = l1_.rbegin(); it != l1_.rend(); ++it) {
    for (const auto& e : (*it)->entries()) {
      merged[e.key] = e.value;
    }
  }
  for (auto it = l0_.rbegin(); it != l0_.rend(); ++it) {
    for (const auto& e : (*it)->entries()) {
      merged[e.key] = e.value;
    }
  }
  if (has_imm_) {
    for (const auto& [k, v] : imm_) {
      merged[k] = v;
    }
  }
  for (const auto& [k, v] : mem_) {
    merged[k] = v;
  }
  uint64_t count = 0;
  for (const auto& [k, v] : merged) {
    count += v.has_value();
  }
  return count;
}

sim::Task<> DB::WaitForMaintenance() {
  while (flushing_ || compacting_ || freeze_pending_) {
    co_await sim::SleepFor(Micros(50));
  }
}

}  // namespace cheetah::kv
