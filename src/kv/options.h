// Tuning knobs for the embedded LSM KV store. The defaults mirror the
// RocksDB configuration the paper uses ("buffer_size = 64MB,
// compaction_trigger = 4"); Fig. 11 sweeps these two knobs.
#ifndef SRC_KV_OPTIONS_H_
#define SRC_KV_OPTIONS_H_

#include <cstdint>
#include <string>

#include "src/common/units.h"

namespace cheetah::kv {

struct Options {
  Options() = default;

  // Flush the memtable to an SSTable once it holds this many bytes.
  uint64_t memtable_bytes = MiB(64);
  // Merge level-0 tables into level-1 once this many accumulate.
  int l0_compaction_trigger = 4;
  // fsync the write-ahead log on every write (durability on power loss).
  bool sync_wal = true;
  // File-name prefix, so multiple DBs can share one sim::Storage.
  std::string name = "db";
};

}  // namespace cheetah::kv

#endif  // SRC_KV_OPTIONS_H_
