// Sorted string table: the immutable on-disk unit of the LSM tree.
//
// The file payload is a sorted run of (tag, key[, value]) entries with a
// CRC-protected footer. A parsed copy of the entries is kept in memory for
// lookup logic; disk reads are *charged* to the simulated device when the
// table is consulted, which is what the experiments measure.
#ifndef SRC_KV_SSTABLE_H_
#define SRC_KV_SSTABLE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace cheetah::kv {

class Table {
 public:
  struct Entry {
    std::string key;
    std::optional<std::string> value;  // nullopt = tombstone
  };

  // `entries` must be sorted by key, duplicates resolved.
  Table(std::string file_name, std::vector<Entry> entries);

  const std::string& file_name() const { return file_name_; }
  size_t entry_count() const { return entries_.size(); }
  uint64_t data_bytes() const { return data_bytes_; }
  bool empty() const { return entries_.empty(); }
  const std::string& min_key() const { return min_key_; }
  const std::string& max_key() const { return max_key_; }

  bool MayContain(std::string_view key) const {
    return !entries_.empty() && key >= min_key_ && key <= max_key_;
  }

  // Returns the entry (possibly a tombstone) or nullptr if absent.
  const Entry* Find(std::string_view key) const;

  // All entries whose key starts with `prefix`, in order.
  std::vector<const Entry*> PrefixRange(std::string_view prefix) const;

  const std::vector<Entry>& entries() const { return entries_; }

  // File (de)serialization.
  std::string Encode() const;
  static Result<std::vector<Entry>> DecodeEntries(std::string_view file);

 private:
  std::string file_name_;
  std::vector<Entry> entries_;
  std::string min_key_;
  std::string max_key_;
  uint64_t data_bytes_ = 0;
};

using TablePtr = std::shared_ptr<const Table>;

}  // namespace cheetah::kv

#endif  // SRC_KV_SSTABLE_H_
