// Sorted string table: the immutable on-disk unit of the LSM tree.
//
// The file is a sequence of self-contained blocks, each framed as
// crc32(body) | fixed64 len | body, where a body is a varint entry count
// followed by (tag, key[, value]) entries. Per-block CRCs localize media
// damage: a decode skips a bad block by its declared length and salvages
// every other block, instead of discarding the whole table on one flipped
// bit. A legacy single-block file is exactly a one-block sequence, so old
// tables parse unchanged. A parsed copy of the entries is kept in memory for
// lookup logic; disk reads are *charged* to the simulated device when the
// table is consulted, which is what the experiments measure.
#ifndef SRC_KV_SSTABLE_H_
#define SRC_KV_SSTABLE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace cheetah::kv {

class Table {
 public:
  struct Entry {
    std::string key;
    std::optional<std::string> value;  // nullopt = tombstone
  };

  // `entries` must be sorted by key, duplicates resolved.
  Table(std::string file_name, std::vector<Entry> entries);

  const std::string& file_name() const { return file_name_; }
  size_t entry_count() const { return entries_.size(); }
  uint64_t data_bytes() const { return data_bytes_; }
  bool empty() const { return entries_.empty(); }
  const std::string& min_key() const { return min_key_; }
  const std::string& max_key() const { return max_key_; }

  bool MayContain(std::string_view key) const {
    return !entries_.empty() && key >= min_key_ && key <= max_key_;
  }

  // Returns the entry (possibly a tombstone) or nullptr if absent.
  const Entry* Find(std::string_view key) const;

  // All entries whose key starts with `prefix`, in order.
  std::vector<const Entry*> PrefixRange(std::string_view prefix) const;

  const std::vector<Entry>& entries() const { return entries_; }

  // File (de)serialization. Encode targets ~kBlockBytes of entry payload per
  // block so one damaged block loses a bounded key range.
  static constexpr size_t kBlockBytes = 4096;
  std::string Encode() const;

  // Salvaging decode: parses every block whose CRC verifies, skipping
  // damaged ones. `blocks`/`bad_blocks` report what was lost so recovery can
  // distinguish a clean load from a partial salvage. Fails outright only
  // when a block header is too mangled to skip past (the remainder of the
  // file is then unparseable and also counts as one bad block).
  struct DecodeResult {
    DecodeResult() = default;
    std::vector<Entry> entries;
    uint64_t blocks = 0;
    uint64_t bad_blocks = 0;
  };
  static DecodeResult DecodeBlocks(std::string_view file);

  // Strict variant: Corruption if any block failed to parse.
  static Result<std::vector<Entry>> DecodeEntries(std::string_view file);

 private:
  std::string file_name_;
  std::vector<Entry> entries_;
  std::string min_key_;
  std::string max_key_;
  uint64_t data_bytes_ = 0;
};

using TablePtr = std::shared_ptr<const Table>;

}  // namespace cheetah::kv

#endif  // SRC_KV_SSTABLE_H_
