// Bitmap block allocator in the style of Ceph BlueStore's Allocator (the
// paper adopts it for Cheetah's raw data storage, §4.3.1).
//
// One bit per fixed-size block. Allocation returns a list of extents
// (offset, length in blocks) satisfying the request, preferring a single
// contiguous extent and falling back to fragments; freeing clears bits so the
// space is immediately reusable — the property behind Cheetah's
// compaction-free delete (§4.3.3).
//
// The bitmap serializes to a compact byte string so meta servers can persist
// it and resynchronize the in-memory copy after PG-log cleaning (§5.2).
#ifndef SRC_ALLOC_BITMAP_ALLOCATOR_H_
#define SRC_ALLOC_BITMAP_ALLOCATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace cheetah::alloc {

struct Extent {
  Extent() = default;
  Extent(uint64_t block, uint64_t count) : block(block), count(count) {}
  uint64_t block = 0;  // first block index
  uint64_t count = 0;  // number of blocks

  friend bool operator==(const Extent&, const Extent&) = default;
};

class BitmapAllocator {
 public:
  BitmapAllocator(uint64_t total_blocks, uint32_t block_size);

  uint64_t total_blocks() const { return total_blocks_; }
  uint32_t block_size() const { return block_size_; }
  uint64_t free_blocks() const { return free_blocks_; }
  uint64_t used_blocks() const { return total_blocks_ - free_blocks_; }
  double Fragmentation() const;  // 1 - (largest free run / free blocks)

  // Allocates `bytes` worth of blocks. Returns kResourceExhausted when the
  // volume cannot satisfy the request even fragmented.
  Result<std::vector<Extent>> Allocate(uint64_t bytes);

  // Clears the extents' bits (idempotent for already-free blocks).
  void Free(const std::vector<Extent>& extents);

  // Marks blocks used (recovery: replaying extents recorded in MetaX).
  void MarkAllocated(const std::vector<Extent>& extents);

  bool IsAllocated(uint64_t block) const;

  // Persistence.
  std::string Serialize() const;
  static Result<BitmapAllocator> Deserialize(std::string_view data);

 private:
  uint64_t BlocksFor(uint64_t bytes) const {
    return (bytes + block_size_ - 1) / block_size_;
  }
  // Finds the first free run of exactly-or-more `want` blocks starting the
  // search at cursor_; returns run start or total_blocks_ if none.
  uint64_t FindRun(uint64_t want) const;
  void SetRange(uint64_t start, uint64_t count, bool used);

  uint64_t total_blocks_;
  uint32_t block_size_;
  uint64_t free_blocks_;
  uint64_t cursor_ = 0;  // rotating search start to spread allocations
  std::vector<uint64_t> bits_;  // 1 = used
};

}  // namespace cheetah::alloc

#endif  // SRC_ALLOC_BITMAP_ALLOCATOR_H_
