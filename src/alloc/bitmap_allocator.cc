#include "src/alloc/bitmap_allocator.h"

#include <algorithm>
#include <cassert>

#include "src/common/coding.h"

namespace cheetah::alloc {

namespace {
constexpr uint64_t kWordBits = 64;
}

BitmapAllocator::BitmapAllocator(uint64_t total_blocks, uint32_t block_size)
    : total_blocks_(total_blocks),
      block_size_(block_size),
      free_blocks_(total_blocks),
      bits_((total_blocks + kWordBits - 1) / kWordBits, 0) {
  assert(block_size > 0 && total_blocks > 0);
}

bool BitmapAllocator::IsAllocated(uint64_t block) const {
  assert(block < total_blocks_);
  return (bits_[block / kWordBits] >> (block % kWordBits)) & 1;
}

void BitmapAllocator::SetRange(uint64_t start, uint64_t count, bool used) {
  for (uint64_t b = start; b < start + count; ++b) {
    const uint64_t word = b / kWordBits;
    const uint64_t mask = 1ull << (b % kWordBits);
    const bool was_used = bits_[word] & mask;
    if (used && !was_used) {
      bits_[word] |= mask;
      --free_blocks_;
    } else if (!used && was_used) {
      bits_[word] &= ~mask;
      ++free_blocks_;
    }
  }
}

uint64_t BitmapAllocator::FindRun(uint64_t want) const {
  // Two passes: from the cursor to the end, then from 0 to the cursor.
  auto scan = [&](uint64_t from, uint64_t to) -> uint64_t {
    uint64_t run = 0;
    uint64_t run_start = from;
    for (uint64_t b = from; b < to; ++b) {
      if (IsAllocated(b)) {
        run = 0;
        run_start = b + 1;
      } else if (++run >= want) {
        return run_start;
      }
    }
    return total_blocks_;
  };
  uint64_t found = scan(cursor_, total_blocks_);
  if (found == total_blocks_ && cursor_ > 0) {
    found = scan(0, std::min(cursor_ + want, total_blocks_));
  }
  return found;
}

Result<std::vector<Extent>> BitmapAllocator::Allocate(uint64_t bytes) {
  const uint64_t want = BlocksFor(bytes);
  if (want == 0) {
    return Status::InvalidArgument("zero-byte allocation");
  }
  if (want > free_blocks_) {
    return Status::ResourceExhausted("volume full");
  }
  std::vector<Extent> extents;
  // Fast path: one contiguous run.
  uint64_t start = FindRun(want);
  if (start != total_blocks_) {
    SetRange(start, want, true);
    cursor_ = (start + want) % total_blocks_;
    extents.emplace_back(start, want);
    return extents;
  }
  // Fragmented path: greedily take free runs.
  uint64_t remaining = want;
  uint64_t run_start = 0;
  uint64_t run = 0;
  for (uint64_t b = 0; b < total_blocks_ && remaining > 0; ++b) {
    if (IsAllocated(b)) {
      if (run > 0) {
        const uint64_t take = std::min(run, remaining);
        extents.emplace_back(run_start, take);
        remaining -= take;
      }
      run = 0;
    } else {
      if (run == 0) {
        run_start = b;
      }
      ++run;
    }
  }
  if (remaining > 0 && run > 0) {
    const uint64_t take = std::min(run, remaining);
    extents.emplace_back(run_start, take);
    remaining -= take;
  }
  if (remaining > 0) {
    return Status::ResourceExhausted("volume full (fragmented)");
  }
  for (const Extent& e : extents) {
    SetRange(e.block, e.count, true);
  }
  if (!extents.empty()) {
    cursor_ = (extents.back().block + extents.back().count) % total_blocks_;
  }
  return extents;
}

void BitmapAllocator::Free(const std::vector<Extent>& extents) {
  for (const Extent& e : extents) {
    SetRange(e.block, e.count, false);
  }
}

void BitmapAllocator::MarkAllocated(const std::vector<Extent>& extents) {
  for (const Extent& e : extents) {
    SetRange(e.block, e.count, true);
  }
}

double BitmapAllocator::Fragmentation() const {
  if (free_blocks_ == 0) {
    return 0.0;
  }
  uint64_t largest = 0;
  uint64_t run = 0;
  for (uint64_t b = 0; b < total_blocks_; ++b) {
    if (IsAllocated(b)) {
      run = 0;
    } else {
      largest = std::max(largest, ++run);
    }
  }
  return 1.0 - static_cast<double>(largest) / static_cast<double>(free_blocks_);
}

std::string BitmapAllocator::Serialize() const {
  std::string out;
  PutVarint64(&out, total_blocks_);
  PutVarint64(&out, block_size_);
  for (uint64_t word : bits_) {
    PutFixed64(&out, word);
  }
  return out;
}

Result<BitmapAllocator> BitmapAllocator::Deserialize(std::string_view data) {
  uint64_t total = 0, bs = 0;
  if (!GetVarint64(&data, &total) || !GetVarint64(&data, &bs) || bs == 0 || total == 0) {
    return Status::Corruption("bitmap header");
  }
  BitmapAllocator alloc(total, static_cast<uint32_t>(bs));
  const uint64_t words = (total + kWordBits - 1) / kWordBits;
  if (data.size() < words * 8) {
    return Status::Corruption("bitmap truncated");
  }
  uint64_t used = 0;
  for (uint64_t i = 0; i < words; ++i) {
    uint64_t word = 0;
    GetFixed64(&data, &word);
    alloc.bits_[i] = word;
    used += static_cast<uint64_t>(__builtin_popcountll(word));
  }
  alloc.free_blocks_ = total - used;
  return alloc;
}

}  // namespace cheetah::alloc
