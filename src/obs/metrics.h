// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// latency histograms, all in virtual time.
//
// Single-threaded like the simulator, so increments are plain integer adds.
// Handles returned by the registry are stable for the process lifetime
// (values can be zeroed, the objects are never deallocated), so components
// look their metrics up once at construction and keep raw pointers.
//
// Per-instance metrics (a server's op counters, a DB's write counts) go
// through a Scope, which appends a fresh instance id to the prefix — a
// rebuilt testbed or reopened DB starts its counters at zero instead of
// accumulating into a previous instance's.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <typeinfo>

namespace cheetah::obs {

class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(int64_t v) { value_ = v; }
  void Add(int64_t d) { value_ += d; }
  int64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  int64_t value_ = 0;
};

// Power-of-two-bucket histogram: Record is O(1); p50/p99 are read from the 64
// fixed buckets with linear interpolation inside the hit bucket, clamped to
// the exact observed min/max.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(uint64_t value);

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

  // Approximate value at quantile p in [0, 1].
  uint64_t Percentile(double p) const;
  double PercentileMillis(double p) const {
    return static_cast<double>(Percentile(p)) / 1e6;
  }

  void Reset();

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  double sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

class Registry {
 public:
  static Registry& Global();

  // Find-or-create; the returned pointer stays valid for the process
  // lifetime. Same name -> same object.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  uint64_t NextInstanceId() { return ++instance_seq_; }

  // Zeroes every value without invalidating handles.
  void ZeroAll();

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count, mean,
  // p50, p99, max}}} — names sorted, suitable for machine consumption.
  std::string ToJson() const;

 private:
  Registry() = default;

  uint64_t instance_seq_ = 0;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Per-instance namespace within the global registry: metrics are named
// "<prefix>#<instance>.<field>".
class Scope {
 public:
  explicit Scope(const std::string& prefix)
      : prefix_(prefix + "#" + std::to_string(Registry::Global().NextInstanceId())) {}

  Counter* counter(const std::string& field) const {
    return Registry::Global().counter(prefix_ + "." + field);
  }
  Gauge* gauge(const std::string& field) const {
    return Registry::Global().gauge(prefix_ + "." + field);
  }
  Histogram* histogram(const std::string& field) const {
    return Registry::Global().histogram(prefix_ + "." + field);
  }
  const std::string& prefix() const { return prefix_; }

 private:
  std::string prefix_;
};

// "cheetah::core::PutAllocRequest" -> "PutAllocRequest". Used for
// per-request-type metric and span names.
std::string ShortTypeName(const std::type_info& type);

}  // namespace cheetah::obs

#endif  // SRC_OBS_METRICS_H_
