// Causal op tracer: records spans (operation id, parent span, node, kind,
// start/end virtual time) so the critical-path structure of an operation —
// how many RPCs it issued, what it waited on, where the time went — can be
// derived from data instead of hand-instrumented timers.
//
// Span ids are 1-based indices into the span vector (0 means "no span"), so
// Find is O(1) and instrumentation never allocates beyond vector growth.
// Tracing is off by default; when disabled, Begin* return 0 and End(0) is a
// no-op, so the instrumentation left in the hot paths costs a branch.
//
// The "current operation" travels with control flow via obs::OpContext
// (context.h): BeginOp installs {root, root}; child spans read ThisContext()
// for their op/parent; rpc::Node copies the context into the Envelope so the
// remote handler's spans join the caller's operation.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/obs/context.h"

namespace cheetah::obs {

enum class SpanKind : uint8_t {
  kOp,       // root of a logical client operation (put/get/delete)
  kRpc,      // request/response pair, measured at the caller
  kHandler,  // server-side execution of one request
  kNet,      // one message on the wire
  kDisk,     // one device I/O charge
  kKv,       // kv::DB internal phase (write batch, flush, compaction)
  kQueue,    // time spent queued
  kWait,     // explicit wait on a remote condition (e.g. persistence ack)
};

const char* SpanKindName(SpanKind kind);

struct Span {
  uint64_t id = 0;      // 1-based; == index in spans() + 1
  uint64_t op = 0;      // root span id of the owning operation
  uint64_t parent = 0;  // enclosing span id, 0 for roots
  uint32_t node = 0;    // node the span executed on
  SpanKind kind = SpanKind::kOp;
  std::string name;     // e.g. "put", "rpc.PutAllocRequest", "disk.write"
  Nanos start = 0;
  Nanos end = 0;        // 0 while open
  uint64_t bytes = 0;   // payload size where meaningful
  bool ok = true;       // operation outcome, set by EndOp/End
};

class Tracer {
 public:
  static Tracer& Global();

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }
  void Clear() { spans_.clear(); }

  // Starts a root span and installs it as the current context. Roots are
  // always parentless — an operation is never a child of another operation,
  // whatever context the worker loop happened to leak.
  uint64_t BeginOp(const std::string& name, uint32_t node, Nanos now);
  // Closes the root and clears the context if it still names this op.
  void EndOp(uint64_t id, Nanos now, bool ok = true);

  // Starts a child span of the current context (ThisContext()).
  uint64_t Begin(SpanKind kind, const std::string& name, uint32_t node,
                 Nanos now, uint64_t bytes = 0);
  // Starts a child span of an explicit context (used when the current
  // context belongs to someone else, e.g. rpc::Node::HandleOne before it
  // installs the envelope's context).
  uint64_t BeginWith(const OpContext& ctx, SpanKind kind,
                     const std::string& name, uint32_t node, Nanos now,
                     uint64_t bytes = 0);
  void End(uint64_t id, Nanos now, bool ok = true);

  const std::vector<Span>& spans() const { return spans_; }
  // nullptr for id 0 or out of range.
  const Span* Find(uint64_t id) const;
  // All spans belonging to operation `op`, in creation order.
  std::vector<const Span*> OfOp(uint64_t op) const;
  // All root (kOp) spans, in creation order.
  std::vector<const Span*> Ops() const;

  // JSON array of span objects, machine-readable.
  std::string ToJson() const;

 private:
  Tracer() = default;

  bool enabled_ = false;
  std::vector<Span> spans_;
};

}  // namespace cheetah::obs

#endif  // SRC_OBS_TRACE_H_
