// Operation context: which logical operation the currently-running
// synchronous code segment is working on behalf of.
//
// The simulator threads this through every suspension point: awaiters capture
// ThisContext() when a coroutine suspends (await_suspend runs synchronously
// in the suspender's segment) and the resumption callback restores it around
// h.resume() (see sim::Actor::ResumeAt and the waiter structs in sim/sync.h).
// rpc::Node carries it across the wire in the Envelope, so a handler on
// another node runs in the caller's operation. Propagation is unconditional
// and allocation-free — two u64 copies per suspension — so enabling or
// disabling the tracer never changes simulation behavior.
#ifndef SRC_OBS_CONTEXT_H_
#define SRC_OBS_CONTEXT_H_

#include <cstdint>

namespace cheetah::obs {

struct OpContext {
  uint64_t op = 0;    // root span id of the operation (0 = no operation)
  uint64_t span = 0;  // innermost live span; parent for new child spans
};

namespace internal {
inline OpContext g_context;
}  // namespace internal

inline const OpContext& ThisContext() { return internal::g_context; }
inline void SetContext(OpContext ctx) { internal::g_context = ctx; }

// Installs `ctx` for the current scope and restores the previous context on
// destruction. Every event-loop entry point that resumes a coroutine wraps
// the resumption in one of these.
class ContextGuard {
 public:
  explicit ContextGuard(OpContext ctx) : saved_(internal::g_context) {
    internal::g_context = ctx;
  }
  ~ContextGuard() { internal::g_context = saved_; }
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  OpContext saved_;
};

}  // namespace cheetah::obs

#endif  // SRC_OBS_CONTEXT_H_
