#include "src/obs/trace.h"

#include <cstdio>

namespace cheetah::obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kOp:
      return "op";
    case SpanKind::kRpc:
      return "rpc";
    case SpanKind::kHandler:
      return "handler";
    case SpanKind::kNet:
      return "net";
    case SpanKind::kDisk:
      return "disk";
    case SpanKind::kKv:
      return "kv";
    case SpanKind::kQueue:
      return "queue";
    case SpanKind::kWait:
      return "wait";
  }
  return "?";
}

Tracer& Tracer::Global() {
  static Tracer* instance = new Tracer();
  return *instance;
}

uint64_t Tracer::BeginOp(const std::string& name, uint32_t node, Nanos now) {
  if (!enabled_) {
    return 0;
  }
  const uint64_t id = spans_.size() + 1;
  Span s;
  s.id = id;
  s.op = id;
  s.parent = 0;
  s.node = node;
  s.kind = SpanKind::kOp;
  s.name = name;
  s.start = now;
  spans_.push_back(std::move(s));
  SetContext({id, id});
  return id;
}

void Tracer::EndOp(uint64_t id, Nanos now, bool ok) {
  if (id == 0 || id > spans_.size()) {
    return;
  }
  Span& s = spans_[id - 1];
  s.end = now;
  s.ok = ok;
  if (ThisContext().op == id) {
    SetContext({});
  }
}

uint64_t Tracer::Begin(SpanKind kind, const std::string& name, uint32_t node,
                       Nanos now, uint64_t bytes) {
  return BeginWith(ThisContext(), kind, name, node, now, bytes);
}

uint64_t Tracer::BeginWith(const OpContext& ctx, SpanKind kind,
                           const std::string& name, uint32_t node, Nanos now,
                           uint64_t bytes) {
  if (!enabled_) {
    return 0;
  }
  const uint64_t id = spans_.size() + 1;
  Span s;
  s.id = id;
  s.op = ctx.op;
  s.parent = ctx.span;
  s.node = node;
  s.kind = kind;
  s.name = name;
  s.start = now;
  s.bytes = bytes;
  spans_.push_back(std::move(s));
  return id;
}

void Tracer::End(uint64_t id, Nanos now, bool ok) {
  if (id == 0 || id > spans_.size()) {
    return;
  }
  Span& s = spans_[id - 1];
  s.end = now;
  s.ok = ok;
}

const Span* Tracer::Find(uint64_t id) const {
  if (id == 0 || id > spans_.size()) {
    return nullptr;
  }
  return &spans_[id - 1];
}

std::vector<const Span*> Tracer::OfOp(uint64_t op) const {
  std::vector<const Span*> out;
  for (const Span& s : spans_) {
    if (s.op == op) {
      out.push_back(&s);
    }
  }
  return out;
}

std::vector<const Span*> Tracer::Ops() const {
  std::vector<const Span*> out;
  for (const Span& s : spans_) {
    if (s.kind == SpanKind::kOp) {
      out.push_back(&s);
    }
  }
  return out;
}

std::string Tracer::ToJson() const {
  std::string out = "[";
  char buf[256];
  bool first = true;
  for (const Span& s : spans_) {
    out += first ? "\n" : ",\n";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "  {\"id\": %llu, \"op\": %llu, \"parent\": %llu, "
                  "\"node\": %u, \"kind\": \"%s\", \"name\": \"%s\", "
                  "\"start\": %llu, \"end\": %llu, \"bytes\": %llu, "
                  "\"ok\": %s}",
                  static_cast<unsigned long long>(s.id),
                  static_cast<unsigned long long>(s.op),
                  static_cast<unsigned long long>(s.parent), s.node,
                  SpanKindName(s.kind), s.name.c_str(),
                  static_cast<unsigned long long>(s.start),
                  static_cast<unsigned long long>(s.end),
                  static_cast<unsigned long long>(s.bytes),
                  s.ok ? "true" : "false");
    out += buf;
  }
  out += "\n]";
  return out;
}

}  // namespace cheetah::obs
