#include "src/obs/metrics.h"

#include <bit>
#include <cstdlib>

#include <cxxabi.h>

namespace cheetah::obs {

namespace {

// Bucket i holds values with bit width i+1, i.e. [2^i, 2^(i+1)) for i > 0 and
// {0, 1} for i == 0.
int BucketOf(uint64_t value) {
  return value == 0 ? 0 : std::bit_width(value) - 1;
}

uint64_t BucketLow(int bucket) { return bucket == 0 ? 0 : uint64_t{1} << bucket; }
uint64_t BucketHigh(int bucket) {
  return bucket >= 63 ? ~uint64_t{0} : (uint64_t{1} << (bucket + 1)) - 1;
}

void AppendJsonKey(std::string* out, const std::string& name) {
  out->append("\"");
  out->append(name);  // metric names contain no characters needing escapes
  out->append("\": ");
}

}  // namespace

void Histogram::Record(uint64_t value) {
  ++buckets_[BucketOf(value)];
  min_ = count_ == 0 ? value : std::min(min_, value);
  max_ = std::max(max_, value);
  ++count_;
  sum_ += static_cast<double>(value);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::min(std::max(p, 0.0), 1.0);
  const double target = p * static_cast<double>(count_);
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const uint64_t next = seen + buckets_[i];
    if (static_cast<double>(next) >= target) {
      const double into =
          (target - static_cast<double>(seen)) / static_cast<double>(buckets_[i]);
      const double low = static_cast<double>(BucketLow(i));
      const double high = static_cast<double>(BucketHigh(i));
      const auto value = static_cast<uint64_t>(low + into * (high - low));
      return std::min(std::max(value, min_), max_);
    }
    seen = next;
  }
  return max_;
}

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

Registry& Registry::Global() {
  static Registry* instance = new Registry();  // leaked: handles never dangle
  return *instance;
}

Counter* Registry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

void Registry::ZeroAll() {
  for (auto& [name, c] : counters_) {
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    g->Reset();
  }
  for (auto& [name, h] : histograms_) {
    h->Reset();
  }
}

std::string Registry::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    out += std::to_string(c->value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    out += std::to_string(g->value());
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  char buf[256];
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    std::snprintf(buf, sizeof(buf),
                  "{\"count\": %llu, \"mean_ms\": %.6f, \"p50_ms\": %.6f, "
                  "\"p99_ms\": %.6f, \"max_ms\": %.6f}",
                  static_cast<unsigned long long>(h->count()), h->mean() / 1e6,
                  h->PercentileMillis(0.5), h->PercentileMillis(0.99),
                  static_cast<double>(h->max()) / 1e6);
    out += buf;
  }
  out += "\n  }\n}";
  return out;
}

std::string ShortTypeName(const std::type_info& type) {
  int status = 0;
  char* demangled = abi::__cxa_demangle(type.name(), nullptr, nullptr, &status);
  std::string full = (status == 0 && demangled) ? demangled : type.name();
  std::free(demangled);
  const size_t pos = full.rfind("::");
  return pos == std::string::npos ? full : full.substr(pos + 2);
}

}  // namespace cheetah::obs
