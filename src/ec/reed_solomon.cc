#include "src/ec/reed_solomon.h"

#include <array>
#include <cassert>

namespace cheetah::ec {

namespace {

// Log/antilog tables for GF(2^8) with polynomial 0x11d, generator 2.
struct Tables {
  std::array<uint8_t, 256> log{};
  std::array<uint8_t, 512> exp{};

  Tables() {
    uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<uint8_t>(x);
      log[x] = static_cast<uint8_t>(i);
      x <<= 1;
      if (x & 0x100) {
        x ^= 0x11d;
      }
    }
    for (int i = 255; i < 512; ++i) {
      exp[i] = exp[i - 255];
    }
  }
};

const Tables& T() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint8_t GaloisField::Mul(uint8_t a, uint8_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  return T().exp[T().log[a] + T().log[b]];
}

uint8_t GaloisField::Div(uint8_t a, uint8_t b) {
  assert(b != 0);
  if (a == 0) {
    return 0;
  }
  return T().exp[(T().log[a] + 255 - T().log[b]) % 255];
}

uint8_t GaloisField::Inv(uint8_t a) {
  assert(a != 0);
  return T().exp[255 - T().log[a]];
}

uint8_t GaloisField::Exp(int power) { return T().exp[power % 255]; }

ReedSolomon::ReedSolomon(int k, int m) : k_(k), m_(m) {
  assert(k >= 1 && m >= 0 && k + m <= 255);
  encode_ = BuildEncodeMatrix();
}

ReedSolomon::Matrix ReedSolomon::Identity(int n) {
  Matrix out(n, std::vector<uint8_t>(n, 0));
  for (int i = 0; i < n; ++i) {
    out[i][i] = 1;
  }
  return out;
}

ReedSolomon::Matrix ReedSolomon::BuildEncodeMatrix() const {
  // Vandermonde (k+m) x k with distinct evaluation points, made systematic by
  // right-multiplying with the inverse of its top k x k block:
  //   encode = V * inv(V_top)  =>  top block becomes the identity, and any k
  // rows of `encode` remain invertible (the Vandermonde property survives
  // right-multiplication by an invertible matrix).
  const int rows = k_ + m_;
  Matrix v(rows, std::vector<uint8_t>(k_, 0));
  for (int r = 0; r < rows; ++r) {
    uint8_t x = 1;
    for (int c = 0; c < k_; ++c) {
      v[r][c] = x;
      x = GaloisField::Mul(x, GaloisField::Exp(r));
    }
  }
  Matrix top(k_, std::vector<uint8_t>(k_));
  for (int r = 0; r < k_; ++r) {
    top[r] = v[r];
  }
  auto top_inv = Invert(std::move(top));
  assert(top_inv.ok() && "Vandermonde top block must be invertible");
  Matrix out(rows, std::vector<uint8_t>(k_, 0));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < k_; ++c) {
      uint8_t sum = 0;
      for (int i = 0; i < k_; ++i) {
        sum = GaloisField::Add(sum, GaloisField::Mul(v[r][i], (*top_inv)[i][c]));
      }
      out[r][c] = sum;
    }
  }
  return out;
}

Result<ReedSolomon::Matrix> ReedSolomon::Invert(Matrix m) {
  const int n = static_cast<int>(m.size());
  Matrix inv = Identity(n);
  for (int col = 0; col < n; ++col) {
    if (m[col][col] == 0) {
      bool swapped = false;
      for (int r = col + 1; r < n; ++r) {
        if (m[r][col] != 0) {
          std::swap(m[col], m[r]);
          std::swap(inv[col], inv[r]);
          swapped = true;
          break;
        }
      }
      if (!swapped) {
        return Status::InvalidArgument("singular decode matrix");
      }
    }
    const uint8_t pivot_inv = GaloisField::Inv(m[col][col]);
    for (int c = 0; c < n; ++c) {
      m[col][c] = GaloisField::Mul(m[col][c], pivot_inv);
      inv[col][c] = GaloisField::Mul(inv[col][c], pivot_inv);
    }
    for (int r = 0; r < n; ++r) {
      if (r == col || m[r][col] == 0) {
        continue;
      }
      const uint8_t factor = m[r][col];
      for (int c = 0; c < n; ++c) {
        m[r][c] = GaloisField::Add(m[r][c], GaloisField::Mul(factor, m[col][c]));
        inv[r][c] = GaloisField::Add(inv[r][c], GaloisField::Mul(factor, inv[col][c]));
      }
    }
  }
  return inv;
}

std::vector<std::string> ReedSolomon::Encode(std::string_view data) const {
  const size_t shard_size = (data.size() + k_ - 1) / std::max(k_, 1);
  std::vector<std::string> shards(total_shards(), std::string(shard_size, '\0'));
  for (int i = 0; i < k_; ++i) {
    const size_t offset = static_cast<size_t>(i) * shard_size;
    if (offset < data.size()) {
      const size_t len = std::min(shard_size, data.size() - offset);
      shards[i].replace(0, len, data.substr(offset, len));
    }
  }
  for (int p = 0; p < m_; ++p) {
    const auto& row = encode_[k_ + p];
    std::string& parity = shards[k_ + p];
    for (int d = 0; d < k_; ++d) {
      const uint8_t coef = row[d];
      if (coef == 0) {
        continue;
      }
      const std::string& src = shards[d];
      for (size_t b = 0; b < shard_size; ++b) {
        parity[b] = static_cast<char>(
            GaloisField::Add(static_cast<uint8_t>(parity[b]),
                             GaloisField::Mul(coef, static_cast<uint8_t>(src[b]))));
      }
    }
  }
  return shards;
}

Result<std::vector<std::string>> ReedSolomon::Reconstruct(
    const std::vector<std::optional<std::string>>& shards) const {
  if (static_cast<int>(shards.size()) != total_shards()) {
    return Status::InvalidArgument("wrong shard count");
  }
  // Collect k present shards and the encode rows that produced them.
  std::vector<int> present;
  size_t shard_size = 0;
  for (int i = 0; i < total_shards() && static_cast<int>(present.size()) < k_; ++i) {
    if (shards[i].has_value()) {
      present.push_back(i);
      shard_size = shards[i]->size();
    }
  }
  if (static_cast<int>(present.size()) < k_) {
    return Status::ResourceExhausted("fewer than k shards survive");
  }
  Matrix sub(k_, std::vector<uint8_t>(k_));
  for (int r = 0; r < k_; ++r) {
    sub[r] = encode_[present[r]];
  }
  auto inverse = Invert(std::move(sub));
  if (!inverse.ok()) {
    return inverse.status();
  }
  // data[d] = sum_r inverse[d][r] * shard[present[r]]
  std::vector<std::string> out(total_shards(), std::string(shard_size, '\0'));
  for (int d = 0; d < k_; ++d) {
    std::string& dst = out[d];
    for (int r = 0; r < k_; ++r) {
      const uint8_t coef = (*inverse)[d][r];
      if (coef == 0) {
        continue;
      }
      const std::string& src = *shards[present[r]];
      for (size_t b = 0; b < shard_size; ++b) {
        dst[b] = static_cast<char>(
            GaloisField::Add(static_cast<uint8_t>(dst[b]),
                             GaloisField::Mul(coef, static_cast<uint8_t>(src[b]))));
      }
    }
  }
  // Re-derive parity from the reconstructed data rows.
  for (int p = 0; p < m_; ++p) {
    const auto& row = encode_[k_ + p];
    std::string& parity = out[k_ + p];
    for (int d = 0; d < k_; ++d) {
      const uint8_t coef = row[d];
      if (coef == 0) {
        continue;
      }
      const std::string& src = out[d];
      for (size_t b = 0; b < shard_size; ++b) {
        parity[b] = static_cast<char>(
            GaloisField::Add(static_cast<uint8_t>(parity[b]),
                             GaloisField::Mul(coef, static_cast<uint8_t>(src[b]))));
      }
    }
  }
  return out;
}

Result<std::string> ReedSolomon::Decode(
    const std::vector<std::optional<std::string>>& shards, size_t original_size) const {
  auto full = Reconstruct(shards);
  if (!full.ok()) {
    return full.status();
  }
  std::string out;
  out.reserve(original_size);
  for (int d = 0; d < k_ && out.size() < original_size; ++d) {
    const size_t want = std::min(original_size - out.size(), (*full)[d].size());
    out.append((*full)[d], 0, want);
  }
  if (out.size() != original_size) {
    return Status::Corruption("shards shorter than original size");
  }
  return out;
}

bool ReedSolomon::Verify(const std::vector<std::string>& shards) const {
  if (static_cast<int>(shards.size()) != total_shards()) {
    return false;
  }
  const size_t shard_size = shards.empty() ? 0 : shards[0].size();
  for (int p = 0; p < m_; ++p) {
    const auto& row = encode_[k_ + p];
    for (size_t b = 0; b < shard_size; ++b) {
      uint8_t sum = 0;
      for (int d = 0; d < k_; ++d) {
        sum = GaloisField::Add(
            sum, GaloisField::Mul(row[d], static_cast<uint8_t>(shards[d][b])));
      }
      if (sum != static_cast<uint8_t>(shards[k_ + p][b])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace cheetah::ec
