// Reed-Solomon erasure coding over GF(2^8) — the paper's stated future-work
// integration ("we will integrate Cheetah with erasure coding [32] for high
// efficiency", §8). Systematic code: k data shards + m parity shards; any k
// of the k+m shards reconstruct the object.
//
// The encoding matrix is a Vandermonde-derived systematic matrix (the top
// k x k block is the identity), so data shards are plain slices of the
// object and encode cost is only the m parity rows.
#ifndef SRC_EC_REED_SOLOMON_H_
#define SRC_EC_REED_SOLOMON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace cheetah::ec {

// GF(2^8) arithmetic with the AES polynomial 0x11d.
class GaloisField {
 public:
  static uint8_t Add(uint8_t a, uint8_t b) { return a ^ b; }
  static uint8_t Mul(uint8_t a, uint8_t b);
  static uint8_t Div(uint8_t a, uint8_t b);  // b != 0
  static uint8_t Inv(uint8_t a);             // a != 0
  static uint8_t Exp(int power);             // generator^power
};

class ReedSolomon {
 public:
  // k data shards, m parity shards. Requires 1 <= k, 0 <= m, k + m <= 255.
  ReedSolomon(int k, int m);

  int data_shards() const { return k_; }
  int parity_shards() const { return m_; }
  int total_shards() const { return k_ + m_; }

  // Splits `data` into k equal shards (zero-padded) and appends m parity
  // shards. shards[i].size() == ceil(data.size() / k) for all i.
  std::vector<std::string> Encode(std::string_view data) const;

  // Reconstructs the original data (of `original_size` bytes) from any k
  // present shards. `shards[i] == nullopt` marks shard i as lost.
  Result<std::string> Decode(const std::vector<std::optional<std::string>>& shards,
                             size_t original_size) const;

  // Recomputes the full shard set (e.g. to rebuild lost shards in place).
  Result<std::vector<std::string>> Reconstruct(
      const std::vector<std::optional<std::string>>& shards) const;

  // Verifies that the parity shards are consistent with the data shards.
  bool Verify(const std::vector<std::string>& shards) const;

 private:
  // rows x cols matrix in row-major order.
  using Matrix = std::vector<std::vector<uint8_t>>;

  static Matrix Identity(int n);
  static Result<Matrix> Invert(Matrix m);
  Matrix BuildEncodeMatrix() const;

  int k_;
  int m_;
  Matrix encode_;  // (k+m) x k; top k rows are the identity
};

}  // namespace cheetah::ec

#endif  // SRC_EC_REED_SOLOMON_H_
