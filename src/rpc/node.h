// Typed asynchronous RPC between simulated nodes.
//
// A request type declares its reply type and wire size:
//
//   struct PingRequest {
//     using Response = PingReply;
//     uint64_t nonce;
//     size_t wire_size() const { return 16; }
//   };
//
// Servers register coroutine handlers with Serve<Req>(); clients issue
// Call<Req>() with a timeout. Crashes surface as timeouts: messages to dead
// or partitioned nodes are dropped by the network, and a server that dies
// mid-handler simply never replies.
//
// Hot-path layout: every request type gets a process-wide dense id
// (MsgTypeIdOf<Req>()), so handler dispatch is a flat vector index instead of
// a type_index hash lookup; envelopes and payloads travel in arena-backed
// AnyMsg boxes instead of std::any (no malloc per message); duplicate-request
// bookkeeping — only needed when the chaos network can actually duplicate —
// is skipped entirely on fault-free runs.
#ifndef SRC_RPC_NODE_H_
#define SRC_RPC_NODE_H_

#include <cassert>
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/hash.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/obs/context.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/qos/qos.h"
#include "src/qos/scheduler.h"
#include "src/sim/any_msg.h"
#include "src/sim/machine.h"
#include "src/sim/network.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace cheetah::rpc {

// Message types must NOT be aggregates: GCC 12 bitwise-copies braced
// aggregate temporaries into coroutine frames (see the toolchain caution in
// src/sim/task.h), which corrupts any non-trivial member. Declaring a
// defaulted default constructor (`Msg() = default;`) is enough to make the
// type a non-aggregate, whose temporaries are compiled correctly.
template <typename Req>
concept RpcRequest = requires(const Req r) {
  typename Req::Response;
  { r.wire_size() } -> std::convertible_to<size_t>;
} && !std::is_aggregate_v<Req> && !std::is_aggregate_v<typename Req::Response>;

// Process-wide dense message-type ids, assigned on first use. Deterministic
// for a given binary and schedule (first-touch order is part of the
// deterministic execution), and small enough that per-node handler tables are
// flat vectors.
inline uint32_t& MsgTypeCounter() {
  static uint32_t n = 0;
  return n;
}
template <typename Req>
uint32_t MsgTypeIdOf() {
  static const uint32_t id = MsgTypeCounter()++;
  return id;
}

class Node {
 public:
  Node(sim::Machine& machine, sim::Network& net)
      : machine_(machine),
        net_(net),
        late_replies_(obs::Registry::Global().counter("rpc.late_replies_dropped")) {}
  ~Node() { Detach(); }
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  sim::NodeId id() const { return machine_.node_id(); }
  sim::Machine& machine() { return machine_; }
  sim::Network& network() { return net_; }

  void Attach() {
    net_.Register(machine_.node_id(), [this](sim::NodeId src, sim::AnyMsg msg, size_t bytes) {
      OnMessage(src, std::move(msg), bytes);
    });
    attached_ = true;
  }

  void Detach() {
    if (attached_) {
      net_.Unregister(machine_.node_id());
      attached_ = false;
    }
    // Pending-call records live in their caller coroutines' frames. A crash
    // kills those frames (Machine::CrashProcess) in the same synchronous step
    // as this Detach, so dropping the pointers here is what keeps them from
    // dangling.
    pending_.clear();
    if (scheduler_ != nullptr) {
      // Queued-but-undispatched requests die with the process; in-flight
      // handlers were killed with the actor and will never call done.
      scheduler_->Reset();
    }
  }

  bool attached() const { return attached_; }

  // Installs a per-node QoS scheduler (owned by the caller, must outlive this
  // node). Requests whose handler was registered with a non-control traffic
  // class go through Submit() instead of dispatching immediately; rejected
  // calls get a kOverloaded reply carrying the retry-after hint.
  void SetScheduler(qos::Scheduler* scheduler) { scheduler_ = scheduler; }
  qos::Scheduler* scheduler() { return scheduler_; }

  // CPU service time charged on this machine per handled request: handlers
  // aren't free even in simulation, or offered load could never exceed
  // capacity and overload would be unobservable.
  struct HandlerCosts {
    HandlerCosts() = default;
    Nanos base = Micros(2);
    double per_byte_ns = 0.05;  // ~20 GB/s of deserialization/copy work
  };
  void SetHandlerCosts(HandlerCosts costs) { costs_ = costs; }

  template <RpcRequest Req>
  void Serve(std::function<sim::Task<Result<typename Req::Response>>(sim::NodeId, Req)> fn,
             qos::TrafficClass cls = qos::TrafficClass::kControl) {
    const uint32_t tid = MsgTypeIdOf<Req>();
    if (handlers_.size() <= tid) {
      handlers_.resize(tid + 1);
    }
    handlers_[tid] =
        Handler{true, cls,
                [this, fn = std::move(fn)](sim::NodeId src, Envelope env, size_t bytes,
                                           std::function<void()> done) {
                  machine_.actor().Spawn(
                      HandleOne<Req>(fn, src, std::move(env), bytes, std::move(done)));
                }};
  }

  // NOTE: Call is deliberately a plain function that moves its argument into
  // the CallImpl coroutine. GCC 12 miscompiles braced aggregate prvalues
  // passed directly as by-value coroutine parameters (the parameter is
  // bitwise-copied into the frame, leaving self-referential members dangling);
  // routing through a non-coroutine wrapper turns the argument into an xvalue
  // of a named object, which is compiled correctly. See tests/rpc/rpc_test.cc.
  template <RpcRequest Req>
  sim::Task<Result<typename Req::Response>> Call(sim::NodeId dst, Req req, Nanos timeout) {
    return CallImpl<Req>(dst, std::move(req), timeout);
  }

  // Number of calls still awaiting a reply (test/diagnostic hook).
  size_t pending_calls() const { return pending_.size(); }

 private:
  static constexpr uint32_t kReplyType = 0xffffffffu;

  struct Envelope {
    Envelope() = default;  // non-aggregate; see the coroutine caution above
    uint64_t call_id = 0;
    uint32_t type = kReplyType;  // MsgTypeIdOf<Req>() for requests
    bool is_reply = false;
    bool fire_and_forget = false;
    Status status;
    sim::AnyMsg payload;
    obs::OpContext ctx{};  // caller's operation; remote handler spans join it
  };

  struct PendingCall {
    sim::Event done;
    Status status;
    sim::AnyMsg reply;
  };

  Arena& arena() { return machine_.loop().arena(); }

  template <RpcRequest Req>
  sim::Task<Result<typename Req::Response>> CallImpl(sim::NodeId dst, Req req, Nanos timeout) {
    // One set of metric handles per request type, looked up once.
    static const std::string kName = obs::ShortTypeName(typeid(Req));
    static obs::Histogram* const lat =
        obs::Registry::Global().histogram("rpc." + kName + ".latency");
    static obs::Counter* const calls =
        obs::Registry::Global().counter("rpc." + kName + ".calls");
    static obs::Counter* const timeouts =
        obs::Registry::Global().counter("rpc." + kName + ".timeouts");
    static obs::Counter* const bytes_sent =
        obs::Registry::Global().counter("rpc." + kName + ".bytes_sent");

    const uint64_t call_id = next_call_id_++;
    // The pending record lives in this coroutine frame; pending_ only holds a
    // pointer. The frame always outlives the map entry: the normal path
    // erases below, and crashes destroy the frame in the same synchronous
    // step as the Detach() that clears the map.
    PendingCall state;
    pending_[call_id] = &state;
    const size_t bytes = req.wire_size() + kHeaderBytes;
    calls->Add();
    bytes_sent->Add(bytes);
    const Nanos t0 = machine_.loop().Now();
    auto& tracer = obs::Tracer::Global();
    const obs::OpContext caller = obs::ThisContext();
    const uint64_t span =
        tracer.enabled()
            ? tracer.Begin(obs::SpanKind::kRpc, "rpc." + kName, id(), t0, bytes)
            : 0;
    Envelope env;
    env.call_id = call_id;
    env.type = MsgTypeIdOf<Req>();
    env.payload = sim::AnyMsg::Make<Req>(arena(), std::move(req));
    // The envelope carries the caller's operation with the rpc span as
    // parent, so the remote handler's spans nest under this call.
    env.ctx = obs::OpContext{caller.op, span != 0 ? span : caller.span};
    {
      obs::ContextGuard guard(env.ctx);  // wire span nests under the rpc span
      net_.Send(id(), dst, std::move(env), bytes);
    }
    const bool fired = co_await state.done.TimedWait(timeout);
    pending_.erase(call_id);
    const Nanos t1 = machine_.loop().Now();
    lat->Record(t1 - t0);
    if (!fired) {
      timeouts->Add();
      tracer.End(span, t1, /*ok=*/false);
      co_return Status::Timeout("rpc timeout");
    }
    tracer.End(span, t1, state.status.ok());
    if (!state.status.ok()) {
      co_return state.status;
    }
    co_return state.reply.template Take<typename Req::Response>();
  }

 public:
  // Fire-and-forget notification (no reply expected).
  template <RpcRequest Req>
  void Notify(sim::NodeId dst, Req req) {
    static const std::string kName = obs::ShortTypeName(typeid(Req));
    static obs::Counter* const notifies =
        obs::Registry::Global().counter("rpc." + kName + ".notifies");
    static obs::Counter* const bytes_sent =
        obs::Registry::Global().counter("rpc." + kName + ".bytes_sent");
    const size_t bytes = req.wire_size() + kHeaderBytes;
    notifies->Add();
    bytes_sent->Add(bytes);
    Envelope env;
    env.call_id = next_call_id_++;
    env.type = MsgTypeIdOf<Req>();
    env.payload = sim::AnyMsg::Make<Req>(arena(), std::move(req));
    env.fire_and_forget = true;
    env.ctx = obs::ThisContext();  // handler joins the notifier's operation
    net_.Send(id(), dst, std::move(env), bytes);
  }

 private:
  static constexpr size_t kHeaderBytes = 64;

  template <RpcRequest Req>
  sim::Task<> HandleOne(
      std::function<sim::Task<Result<typename Req::Response>>(sim::NodeId, Req)> fn,
      sim::NodeId src, Envelope env, size_t req_bytes, std::function<void()> done) {
    static const std::string kName = obs::ShortTypeName(typeid(Req));
    static obs::Histogram* const handle_lat =
        obs::Registry::Global().histogram("rpc." + kName + ".handle_latency");
    Req req = env.payload.Take<Req>();
    const bool fire_and_forget = env.fire_and_forget;
    const Nanos t0 = machine_.loop().Now();
    auto& tracer = obs::Tracer::Global();
    const uint64_t span =
        tracer.enabled()
            ? tracer.BeginWith(env.ctx, obs::SpanKind::kHandler, "handle." + kName, id(), t0)
            : 0;
    // Run the handler inside the caller's operation so its disk/kv/nested-rpc
    // spans chain under this handler span.
    obs::SetContext(obs::OpContext{env.ctx.op, span != 0 ? span : env.ctx.span});
    // Deserialization + request processing occupy a CPU core.
    co_await machine_.cpu().Use(
        costs_.base + static_cast<Nanos>(static_cast<double>(req_bytes) * costs_.per_byte_ns));
    Result<typename Req::Response> result = co_await fn(src, std::move(req));
    const Nanos t1 = machine_.loop().Now();
    handle_lat->Record(t1 - t0);
    tracer.End(span, t1, result.ok());
    if (fire_and_forget) {
      if (done) {
        done();
      }
      co_return;
    }
    Envelope reply;
    reply.call_id = env.call_id;
    reply.is_reply = true;
    reply.status = result.ok() ? Status::Ok() : result.status();
    reply.ctx = env.ctx;
    size_t bytes = kHeaderBytes;
    if (result.ok()) {
      bytes += result.value().wire_size();
      reply.payload = sim::AnyMsg::Make<typename Req::Response>(arena(), std::move(result).value());
    }
    // Reply serialization is CPU work too (matters for large GET replies).
    co_await machine_.cpu().Use(
        static_cast<Nanos>(static_cast<double>(bytes) * costs_.per_byte_ns));
    net_.Send(id(), src, std::move(reply), bytes);
    if (done) {
      done();
    }
  }

  void OnMessage(sim::NodeId src, sim::AnyMsg msg, size_t wire_bytes) {
    Envelope env = msg.Take<Envelope>();
    if (env.is_reply) {
      auto it = pending_.find(env.call_id);
      if (it == pending_.end()) {
        late_replies_->Add();
        return;  // caller gave up or restarted
      }
      PendingCall* state = it->second;
      state->status = env.status;
      state->reply = std::move(env.payload);
      state->done.Set();
      return;
    }
    // Duplicate request suppression. The chaos network may deliver a second
    // copy of a message (retransmission); a real RPC stack's transport
    // sequencing discards it before the application sees it. call_ids are
    // per-(src node) monotonic, so a bounded recent-id window per peer
    // suffices. Replies need no dedup: a duplicate reply lands on an
    // already-erased pending call and is dropped above. The whole check is
    // skipped — no window bookkeeping at all — unless the network has ever
    // been configured to duplicate.
    if (net_.dup_faults_possible()) {
      if (IsDuplicateRequest(src, env.call_id)) {
        dup_requests_->Add();
        return;
      }
    } else {
      dedup_skipped_->Add();
    }
    if (env.type >= handlers_.size() || !handlers_[env.type].registered) {
      return;  // no such service here; drop (caller times out)
    }
    Handler& handler = handlers_[env.type];
    if (scheduler_ == nullptr || handler.cls == qos::TrafficClass::kControl) {
      handler.dispatch(src, std::move(env), wire_bytes, nullptr);
      return;
    }
    // Data-plane request under QoS: queue it (span makes the wait visible in
    // traces) or bounce it with a retry-after hint.
    auto& tracer = obs::Tracer::Global();
    const uint64_t qspan =
        tracer.enabled()
            ? tracer.BeginWith(env.ctx, obs::SpanKind::kQueue,
                               std::string("qos.queue.") + qos::TrafficClassName(handler.cls),
                               id(), machine_.loop().Now(), wire_bytes)
            : 0;
    const bool fire_and_forget = env.fire_and_forget;
    const uint64_t call_id = env.call_id;
    const obs::OpContext ctx = env.ctx;
    auto env_ptr = std::allocate_shared<Envelope>(PoolAllocator<Envelope>(), std::move(env));
    qos::Scheduler::RejectFn reject;
    if (fire_and_forget) {
      // Nobody to tell; the notification just evaporates under overload.
      reject = [this, qspan](Nanos) {
        obs::Tracer::Global().End(qspan, machine_.loop().Now(), /*ok=*/false);
      };
    } else {
      reject = [this, src, call_id, ctx, qspan](Nanos retry_after) {
        obs::Tracer::Global().End(qspan, machine_.loop().Now(), /*ok=*/false);
        Envelope bounce;
        bounce.call_id = call_id;
        bounce.is_reply = true;
        bounce.status = qos::OverloadedStatus(retry_after);
        bounce.ctx = ctx;
        net_.Send(id(), src, std::move(bounce), kHeaderBytes);
      };
    }
    scheduler_->Submit(
        handler.cls, wire_bytes,
        [this, hp = &handler, src, env_ptr, wire_bytes, qspan](std::function<void()> done) {
          obs::Tracer::Global().End(qspan, machine_.loop().Now(), /*ok=*/true);
          hp->dispatch(src, std::move(*env_ptr), wire_bytes, std::move(done));
        },
        std::move(reject));
  }

  bool IsDuplicateRequest(sim::NodeId src, uint64_t call_id) {
    static constexpr size_t kWindow = 4096;
    Seen& seen = seen_requests_[src];
    if (call_id <= seen.floor || seen.ids.contains(call_id)) {
      return true;
    }
    seen.ids.insert(call_id);
    while (seen.ids.size() > kWindow) {
      auto first = seen.ids.begin();
      seen.floor = std::max(seen.floor, *first);
      seen.ids.erase(first);
    }
    return false;
  }

  struct Seen {
    uint64_t floor = 0;        // every id <= floor has been seen
    std::set<uint64_t> ids;    // recent ids above the floor
  };

  struct Handler {
    bool registered = false;
    qos::TrafficClass cls = qos::TrafficClass::kControl;
    std::function<void(sim::NodeId, Envelope, size_t, std::function<void()>)> dispatch;
  };

  sim::Machine& machine_;
  sim::Network& net_;
  obs::Counter* late_replies_;
  obs::Counter* dup_requests_ =
      obs::Registry::Global().counter("rpc.duplicate_requests_dropped");
  obs::Counter* dedup_skipped_ =
      obs::Registry::Global().counter("rpc.dedup_fast_path");
  bool attached_ = false;
  uint64_t next_call_id_ = 1;
  qos::Scheduler* scheduler_ = nullptr;
  HandlerCosts costs_;
  std::vector<Handler> handlers_;  // indexed by MsgTypeIdOf<Req>()
  std::unordered_map<sim::NodeId, Seen> seen_requests_;
  std::unordered_map<uint64_t, PendingCall*, XxU64Hash> pending_;
};

}  // namespace cheetah::rpc

#endif  // SRC_RPC_NODE_H_
