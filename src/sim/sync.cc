#include "src/sim/sync.h"

namespace cheetah::sim {

Task<> WhenAllVoid(std::vector<Task<>> tasks) {
  Actor* actor = co_await CurrentActor{};
  auto latch = std::make_shared<Latch>(static_cast<int>(tasks.size()));
  for (auto& t : tasks) {
    actor->Spawn([](std::shared_ptr<Latch> l, Task<> task) -> Task<> {
      co_await std::move(task);
      l->CountDown();
    }(latch, std::move(t)));
  }
  co_await latch->Wait();
}

}  // namespace cheetah::sim
