// Lazy coroutine task type used by all simulated protocol code.
//
// A Task<T> starts suspended; awaiting it transfers control into the child and
// the child resumes its parent at final_suspend (symmetric transfer). Each
// task tree belongs to an Actor (see actor.h): the root carries the Actor
// pointer and it is propagated to children when they are awaited, and to
// actor-aware awaitables (sleeps, event waits, disk/network operations)
// through await_transform. When an actor is killed, root frames are destroyed
// and any in-flight completion callbacks become no-ops via epoch checks.
//
// TOOLCHAIN CAUTION (GCC 12): never pass a braced aggregate prvalue directly
// as a by-value coroutine argument — `co_await Foo(Bar{.x = 1})` with Bar an
// aggregate is miscompiled (the parameter is bitwise-copied into the frame,
// so self-referential members like SSO std::string dangle). Bind to a named
// variable and std::move it, or route through a non-coroutine wrapper as
// rpc::Node::Call does. Strings, non-aggregates, and function-call results
// are unaffected.
#ifndef SRC_SIM_TASK_H_
#define SRC_SIM_TASK_H_

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>
#include <variant>

#include "src/common/arena.h"

namespace cheetah::sim {

class Actor;

// An awaitable can opt in to learning which Actor's coroutine is awaiting it
// by providing `void SetActor(Actor*)`.
template <typename A>
concept ActorAware = requires(A a, Actor* actor) { a.SetActor(actor); };

namespace internal {

struct PromiseBase {
  Actor* actor = nullptr;
  std::coroutine_handle<> continuation;

  // Coroutine frames come from the process-wide size-class pool, not malloc:
  // the simulator creates one or more frames per RPC, and in steady state
  // every allocation here is a free-list pop. The sized delete is what
  // coroutine frame deallocation uses.
  static void* operator new(size_t n) { return PoolAlloc(n); }
  static void operator delete(void* p, size_t n) noexcept { PoolFree(p, n); }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  template <typename A>
  decltype(auto) await_transform(A&& a) {
    if constexpr (ActorAware<std::remove_reference_t<A>>) {
      a.SetActor(actor);
    }
    return std::forward<A>(a);
  }
};

}  // namespace internal

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : internal::PromiseBase {
    std::variant<std::monostate, T, std::exception_ptr> result;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T value) { result.template emplace<1>(std::move(value)); }
    void unhandled_exception() { result.template emplace<2>(std::current_exception()); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }

  // Awaiting a task: propagate the actor, remember the parent, run the child.
  bool await_ready() const noexcept { return false; }
  template <typename ParentPromise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<ParentPromise> parent) {
    assert(handle_ && "awaiting an empty Task");
    if constexpr (std::is_base_of_v<internal::PromiseBase, ParentPromise>) {
      handle_.promise().actor = parent.promise().actor;
    }
    handle_.promise().continuation = parent;
    return handle_;
  }
  T await_resume() {
    auto& result = handle_.promise().result;
    if (result.index() == 2) {
      std::rethrow_exception(std::get<2>(result));
    }
    assert(result.index() == 1 && "task completed without a value");
    return std::move(std::get<1>(result));
  }

  // For the spawn machinery only.
  std::coroutine_handle<promise_type> handle() const { return handle_; }
  std::coroutine_handle<promise_type> Release() { return std::exchange(handle_, nullptr); }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : internal::PromiseBase {
    std::exception_ptr exception;
    bool done = false;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() { done = true; }
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }

  bool await_ready() const noexcept { return false; }
  template <typename ParentPromise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<ParentPromise> parent) {
    assert(handle_ && "awaiting an empty Task");
    if constexpr (std::is_base_of_v<internal::PromiseBase, ParentPromise>) {
      handle_.promise().actor = parent.promise().actor;
    }
    handle_.promise().continuation = parent;
    return handle_;
  }
  void await_resume() {
    if (handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  std::coroutine_handle<promise_type> handle() const { return handle_; }
  std::coroutine_handle<promise_type> Release() { return std::exchange(handle_, nullptr); }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace cheetah::sim

#endif  // SRC_SIM_TASK_H_
