// AnyMsg: type-erased message box backed by the event loop's arena.
//
// Replaces std::any on the network/RPC payload path. A std::any holding an
// rpc envelope heap-allocates on construction and again for the payload it
// wraps; AnyMsg is two words (slot pointer + arena pointer) whose storage
// comes from the simulator arena in O(1) and is recycled the moment the
// message is consumed. Move-only; the chaos duplication fault is the one
// consumer of copies, so copying is supported but asserts the held type is
// copy-constructible.
#ifndef SRC_SIM_ANY_MSG_H_
#define SRC_SIM_ANY_MSG_H_

#include <cassert>
#include <type_traits>
#include <utility>

#include "src/common/arena.h"

namespace cheetah::sim {

class AnyMsg {
 public:
  AnyMsg() = default;

  template <typename T>
  static AnyMsg Make(Arena& arena, T value) {
    static_assert(!std::is_same_v<T, AnyMsg>, "nesting AnyMsg in AnyMsg");
    AnyMsg m;
    m.arena_ = &arena;
    auto* slot = arena.New<Slot<T>>(std::move(value));
    slot->header.destroy = &DestroySlot<T>;
    slot->header.clone = &CloneSlot<T>;
    slot->header.tag = Tag<T>();
    m.slot_ = &slot->header;
    return m;
  }

  AnyMsg(AnyMsg&& o) noexcept
      : arena_(std::exchange(o.arena_, nullptr)), slot_(std::exchange(o.slot_, nullptr)) {}
  AnyMsg& operator=(AnyMsg&& o) noexcept {
    if (this != &o) {
      Reset();
      arena_ = std::exchange(o.arena_, nullptr);
      slot_ = std::exchange(o.slot_, nullptr);
    }
    return *this;
  }

  // Deep copy (chaos duplication faults only). Asserts at runtime if the held
  // type is not copy-constructible.
  AnyMsg(const AnyMsg& o) : arena_(o.arena_) {
    if (o.slot_ != nullptr) {
      slot_ = o.slot_->clone(o.slot_, *arena_);
    }
  }
  AnyMsg& operator=(const AnyMsg& o) {
    if (this != &o) {
      Reset();
      arena_ = o.arena_;
      slot_ = o.slot_ != nullptr ? o.slot_->clone(o.slot_, *arena_) : nullptr;
    }
    return *this;
  }

  ~AnyMsg() { Reset(); }

  bool has_value() const { return slot_ != nullptr; }

  template <typename T>
  bool Is() const {
    return slot_ != nullptr && slot_->tag == Tag<T>();
  }

  // Moves the value out and recycles the slot. The held type must match.
  template <typename T>
  T Take() {
    assert(Is<T>() && "AnyMsg type mismatch");
    auto* slot = reinterpret_cast<Slot<T>*>(slot_);
    T value = std::move(slot->value);
    arena_->Delete(slot);
    slot_ = nullptr;
    return value;
  }

 private:
  struct Header {
    void (*destroy)(Header*, Arena&) noexcept;
    Header* (*clone)(const Header*, Arena&);
    const void* tag;
  };
  template <typename T>
  struct Slot {
    explicit Slot(T v) : value(std::move(v)) {}
    Header header;
    T value;
  };

  template <typename T>
  static const void* Tag() {
    static constexpr char tag = 0;
    return &tag;
  }

  template <typename T>
  static void DestroySlot(Header* h, Arena& arena) noexcept {
    arena.Delete(reinterpret_cast<Slot<T>*>(h));
  }

  template <typename T>
  static Header* CloneSlot(const Header* h, Arena& arena) {
    if constexpr (std::is_copy_constructible_v<T>) {
      const auto* src = reinterpret_cast<const Slot<T>*>(h);
      auto* slot = arena.New<Slot<T>>(src->value);
      slot->header = src->header;
      return &slot->header;
    } else {
      assert(false && "copying an AnyMsg holding a move-only type");
      return nullptr;
    }
  }

  void Reset() {
    if (slot_ != nullptr) {
      slot_->destroy(slot_, *arena_);
      slot_ = nullptr;
    }
  }

  Arena* arena_ = nullptr;
  Header* slot_ = nullptr;
};

}  // namespace cheetah::sim

#endif  // SRC_SIM_ANY_MSG_H_
