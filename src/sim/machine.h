// A simulated machine: one actor (execution domain), a CPU, and some disks.
// Server processes (meta/data/manager) live on machines; crashing a machine
// kills its actor and (optionally, for power failures) drops unsynced data.
#ifndef SRC_SIM_MACHINE_H_
#define SRC_SIM_MACHINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/sim/actor.h"
#include "src/sim/network.h"
#include "src/sim/resource.h"
#include "src/sim/storage.h"

namespace cheetah::sim {

struct MachineParams {
  int cpu_cores = 32;
  int num_disks = 1;
  DiskParams disk;
};

class Machine {
 public:
  Machine(EventLoop& loop, NodeId node_id, std::string name, MachineParams params)
      : node_id_(node_id),
        actor_(loop, name),
        cpu_(loop, params.cpu_cores) {
    for (int i = 0; i < params.num_disks; ++i) {
      disks_.push_back(std::make_unique<Storage>(loop, params.disk));
      disks_.back()->set_node_id(node_id);
      // Per-disk deterministic fault seed: chaos runs replay identically
      // regardless of which other machines exist.
      disks_.back()->set_fault_seed((static_cast<uint64_t>(node_id) << 8) |
                                    static_cast<uint64_t>(i));
    }
  }

  NodeId node_id() const { return node_id_; }
  Actor& actor() { return actor_; }
  Resource& cpu() { return cpu_; }
  Storage& disk(size_t i = 0) { return *disks_.at(i); }
  size_t num_disks() const { return disks_.size(); }
  EventLoop& loop() { return actor_.loop(); }
  bool alive() const { return actor_.alive(); }

  // Process crash: in-memory state lost, durable media intact.
  void CrashProcess() { actor_.Kill(); }

  // Power failure: process dies and unsynced file data is dropped.
  void PowerFailure() {
    actor_.Kill();
    for (auto& d : disks_) {
      d->PowerLoss();
    }
  }

  void Restart() { actor_.Revive(); }

  // Gray failure applied to every disk on the machine (degrade ↔ restore).
  void SetGrayFailure(const GrayFailure& g) {
    for (auto& d : disks_) {
      d->SetGrayFailure(g);
    }
  }
  void ClearGrayFailure() {
    for (auto& d : disks_) {
      d->ClearGrayFailure();
    }
  }

 private:
  NodeId node_id_;
  Actor actor_;
  Resource cpu_;
  std::vector<std::unique_ptr<Storage>> disks_;
};

}  // namespace cheetah::sim

#endif  // SRC_SIM_MACHINE_H_
