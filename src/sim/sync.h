// Coroutine synchronization primitives for the simulator: one-shot events
// (with timed waits), countdown latches, mailboxes, and a parallel-join
// helper. All are single-threaded and epoch-guarded against actor kills.
#ifndef SRC_SIM_SYNC_H_
#define SRC_SIM_SYNC_H_

#include <cassert>
#include <coroutine>
#include <deque>
#include <memory>
#include <vector>

#include "src/common/units.h"
#include "src/sim/actor.h"
#include "src/sim/task.h"

namespace cheetah::sim {

// One-shot event. Waiters suspended before Set() resume when it fires; waits
// after Set() complete immediately. TimedWait resolves to false on timeout.
class Event {
 public:
  bool is_set() const { return set_; }

  void Set() {
    if (set_) {
      return;
    }
    set_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto& w : waiters) {
      if (w.state && w.state->settled) {
        continue;
      }
      if (w.state) {
        w.state->settled = true;
        w.state->event_fired = true;
      }
      // Resume in the waiter's op context (captured at suspension), not the
      // setter's: the setter may be working on an unrelated operation.
      w.actor->ResumeSoon(w.handle, w.epoch, w.ctx);
    }
  }

  struct TimedState {
    bool settled = false;
    bool event_fired = false;
    obs::OpContext ctx{};  // waiter's op context; lives here, not in the
                           // timeout capture, to keep the callback inline
  };

  struct WaitAwaiter {
    Event& event;
    Actor* actor = nullptr;

    void SetActor(Actor* a) { actor = a; }
    bool await_ready() const noexcept { return event.set_; }
    void await_suspend(std::coroutine_handle<> h) {
      assert(actor && "Event::Wait outside an actor coroutine");
      event.waiters_.push_back({actor, actor->epoch(), h, nullptr, obs::ThisContext()});
    }
    void await_resume() const noexcept {}
  };

  struct TimedWaitAwaiter {
    Event& event;
    Nanos timeout;
    Actor* actor = nullptr;
    std::shared_ptr<TimedState> state;

    void SetActor(Actor* a) { actor = a; }
    bool await_ready() const noexcept { return event.set_; }
    void await_suspend(std::coroutine_handle<> h) {
      assert(actor && "Event::TimedWait outside an actor coroutine");
      state = std::allocate_shared<TimedState>(PoolAllocator<TimedState>());
      state->ctx = obs::ThisContext();
      event.waiters_.push_back({actor, actor->epoch(), h, state, state->ctx});
      actor->loop().ScheduleAfter(timeout, [a = actor, e = actor->epoch(), h, s = state] {
        if (s->settled) {
          return;
        }
        s->settled = true;
        s->event_fired = false;
        if (a->AliveAt(e)) {
          obs::ContextGuard guard(s->ctx);
          h.resume();
        }
      });
    }
    bool await_resume() const noexcept { return state ? state->event_fired : true; }
  };

  // `co_await event.Wait()`
  WaitAwaiter Wait() { return WaitAwaiter{*this}; }
  // `bool fired = co_await event.TimedWait(timeout)`
  TimedWaitAwaiter TimedWait(Nanos timeout) {
    return TimedWaitAwaiter{*this, timeout, nullptr, nullptr};
  }

 private:
  struct Waiter {
    Actor* actor;
    uint64_t epoch;
    std::coroutine_handle<> handle;
    std::shared_ptr<TimedState> state;  // null for untimed waits
    obs::OpContext ctx;                 // waiter's op context at suspension
  };

  bool set_ = false;
  std::vector<Waiter> waiters_;
};

// Countdown latch: fires its event when `count` completions arrive.
class Latch {
 public:
  explicit Latch(int count) : remaining_(count) {
    if (remaining_ <= 0) {
      done_.Set();
    }
  }

  void CountDown() {
    if (--remaining_ <= 0) {
      done_.Set();
    }
  }

  Event::WaitAwaiter Wait() { return done_.Wait(); }
  Event::TimedWaitAwaiter TimedWait(Nanos timeout) { return done_.TimedWait(timeout); }

 private:
  int remaining_;
  Event done_;
};

// Unbounded multi-producer multi-consumer mailbox.
template <typename T>
class Queue {
 public:
  void Push(T value) {
    items_.push_back(std::move(value));
    if (!waiters_.empty()) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      w.actor->ResumeSoon(w.handle, w.epoch, w.ctx);
    }
  }

  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }

  struct PopAwaiter {
    Queue& queue;
    Actor* actor = nullptr;

    void SetActor(Actor* a) { actor = a; }
    bool await_ready() const noexcept { return !queue.items_.empty(); }
    void await_suspend(std::coroutine_handle<> h) {
      assert(actor && "Queue::Pop outside an actor coroutine");
      queue.waiters_.push_back({actor, actor->epoch(), h, obs::ThisContext()});
    }
    T await_resume() {
      // A racing consumer may have taken the item; in the single-threaded
      // simulator this only happens if two waiters were resumed for one push,
      // which Push() never does, so the queue is non-empty here.
      assert(!queue.items_.empty());
      T value = std::move(queue.items_.front());
      queue.items_.pop_front();
      return value;
    }
  };

  // `T v = co_await queue.Pop()`
  PopAwaiter Pop() { return PopAwaiter{*this}; }

 private:
  struct Waiter {
    Actor* actor;
    uint64_t epoch;
    std::coroutine_handle<> handle;
    obs::OpContext ctx;
  };

  std::deque<T> items_;
  std::deque<Waiter> waiters_;
};

// Runs all tasks concurrently on the current actor and returns their results
// in order. The tasks become independent coroutine trees of the same actor,
// so a Kill() tears everything down coherently.
template <typename T>
Task<std::vector<T>> WhenAll(std::vector<Task<T>> tasks) {
  Actor* actor = co_await CurrentActor{};
  const size_t n = tasks.size();
  struct State {
    std::vector<T> results;
    Latch latch;
    explicit State(size_t n) : results(n), latch(static_cast<int>(n)) {}
  };
  auto state = std::allocate_shared<State>(PoolAllocator<State>(), n);
  for (size_t i = 0; i < n; ++i) {
    actor->Spawn([](std::shared_ptr<State> s, size_t idx, Task<T> t) -> Task<> {
      s->results[idx] = co_await std::move(t);
      s->latch.CountDown();
    }(state, i, std::move(tasks[i])));
  }
  co_await state->latch.Wait();
  co_return std::move(state->results);
}

// Void overload.
Task<> WhenAllVoid(std::vector<Task<>> tasks);

}  // namespace cheetah::sim

#endif  // SRC_SIM_SYNC_H_
