// Deterministic discrete-event loop with a virtual clock.
//
// All simulated activity — network delivery, disk completion, timers — is a
// callback scheduled at a virtual timestamp. Ties are broken by insertion
// order (a global sequence number), so a given seed always produces the
// identical execution.
//
// Two interchangeable engines produce the exact same (time, seq) firing
// order:
//
//  * kWheel (default): a hierarchical timer wheel. Near-future events land in
//    one of 4096 slots of 4.096us each (~16.8ms horizon) with O(1) insertion;
//    far-future events (RPC timeouts, heartbeats, scrub intervals) go to an
//    overflow heap and are promoted when their slot comes up. Only the slot
//    currently being drained is kept heap-ordered, so the common
//    schedule-then-fire pair costs O(1) + O(log k) for tiny k instead of the
//    global O(log n) of a single priority queue.
//  * kHeap: the reference single binary heap, kept as the determinism oracle
//    — tests and the sim_engine_speed bench run both engines and require
//    byte-identical schedules.
//
// Callbacks are InlineFn (48-byte small-buffer captures, no malloc on the
// common path) and the loop owns a bump-pointer Arena that network/RPC layers
// use for envelopes and delivery records; the arena resets at quiescent
// points (queue drained, nothing live).
#ifndef SRC_SIM_EVENT_LOOP_H_
#define SRC_SIM_EVENT_LOOP_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/arena.h"
#include "src/common/inline_fn.h"
#include "src/common/units.h"
#include "src/obs/metrics.h"

namespace cheetah::sim {

class EventLoop {
 public:
  using Callback = InlineFn<void()>;

  enum class Engine { kWheel, kHeap };

  EventLoop() : EventLoop(DefaultEngine()) {}
  explicit EventLoop(Engine engine);
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Process-wide default-engine override (tests and the determinism guard);
  // falls back to the CHEETAH_SIM_ENGINE env var ("heap" selects the
  // reference engine), then to the wheel.
  static void OverrideDefaultEngine(std::optional<Engine> engine);
  static Engine DefaultEngine();

  Engine engine() const { return engine_; }
  Nanos Now() const { return now_; }

  // Transient-object arena for events in flight (RPC envelopes, delivery
  // records). Reset automatically when the loop quiesces.
  Arena& arena() { return arena_; }

  void ScheduleAt(Nanos time, Callback fn);
  void ScheduleAfter(Nanos delay, Callback fn) { ScheduleAt(now_ + delay, std::move(fn)); }

  // Runs a single event; returns false if the queue is empty.
  bool RunOne();

  // Runs until no events remain.
  void Run();

  // Runs events with timestamp <= deadline; advances the clock to `deadline`
  // even if the queue drains earlier (so periodic loads can be layered).
  void RunUntil(Nanos deadline);
  void RunFor(Nanos duration) { RunUntil(now_ + duration); }

  size_t pending_events() const {
    return active_.size() + wheel_count_ + overflow_.size() + heap_.size();
  }

  uint64_t events_fired() const { return events_fired_->value(); }

 private:
  // Wheel geometry: 4096 slots of 2^12 ns. An event `time` maps to tick
  // `time >> kSlotBits`; ticks within (active_tick_, active_tick_ + kSlots)
  // live in slot `tick & kSlotMask`, which is collision-free because the
  // window is narrower than one full rotation.
  static constexpr int kSlotBits = 12;
  static constexpr int kWheelBits = 12;
  static constexpr size_t kSlots = size_t{1} << kWheelBits;
  static constexpr uint64_t kSlotMask = kSlots - 1;
  static constexpr uint64_t kNoTick = ~uint64_t{0};

  struct Event {
    Nanos time;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  static uint64_t TickOf(Nanos time) { return static_cast<uint64_t>(time) >> kSlotBits; }

  // Stages the next non-empty tick into active_; returns false if drained.
  bool Advance();
  // Next occupied wheel tick strictly after active_tick_, or kNoTick.
  uint64_t NextOccupiedTick() const;
  Event PopStaged();
  void FireEvent(Event& ev);
  void MaybeQuiesce();
  void PublishArenaStats();

  Engine engine_;
  Nanos now_ = 0;
  uint64_t next_seq_ = 0;

  // Declared before all event storage so arena-backed captures (network
  // deliveries, RPC envelopes) are destroyed before the arena itself when a
  // loop is torn down with events still queued.
  Arena arena_;

  // kWheel state. active_ is a binary heap (Later) holding every pending
  // event with tick == active_tick_; slots hold later in-horizon ticks
  // unsorted; overflow_ is a binary heap of beyond-horizon events.
  uint64_t active_tick_ = 0;
  std::vector<Event> active_;
  std::vector<std::vector<Event>> slots_;
  std::array<uint64_t, kSlots / 64> occupied_{};
  size_t wheel_count_ = 0;
  std::vector<Event> overflow_;

  // kHeap state: one global binary heap (no priority_queue, so events are
  // legally movable out of the top slot).
  std::vector<Event> heap_;

  obs::Scope scope_;
  obs::Counter* events_fired_;
  obs::Counter* callbacks_inline_;
  obs::Counter* callbacks_heap_;
  obs::Counter* overflow_promotions_;
  obs::Gauge* arena_bytes_;
  obs::Gauge* arena_live_;
  obs::Counter* arena_resets_;
};

}  // namespace cheetah::sim

#endif  // SRC_SIM_EVENT_LOOP_H_
