// Deterministic discrete-event loop with a virtual clock.
//
// All simulated activity — network delivery, disk completion, timers — is a
// callback scheduled at a virtual timestamp. Ties are broken by insertion
// order, so a given seed always produces the identical execution.
#ifndef SRC_SIM_EVENT_LOOP_H_
#define SRC_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/units.h"

namespace cheetah::sim {

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Nanos Now() const { return now_; }

  void ScheduleAt(Nanos time, std::function<void()> fn);
  void ScheduleAfter(Nanos delay, std::function<void()> fn) { ScheduleAt(now_ + delay, fn); }

  // Runs a single event; returns false if the queue is empty.
  bool RunOne();

  // Runs until no events remain.
  void Run();

  // Runs events with timestamp <= deadline; advances the clock to `deadline`
  // even if the queue drains earlier (so periodic loads can be layered).
  void RunUntil(Nanos deadline);
  void RunFor(Nanos duration) { RunUntil(now_ + duration); }

  size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    Nanos time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace cheetah::sim

#endif  // SRC_SIM_EVENT_LOOP_H_
