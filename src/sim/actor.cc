#include "src/sim/actor.h"

#include <vector>

namespace cheetah::sim {

void Actor::Spawn(Task<> task) {
  assert(alive_ && "Spawn on a dead actor");
  RootTask root = RunRoot(std::move(task));
  const uint64_t id = next_root_id_++;
  root.handle.promise().actor = this;
  root.handle.promise().root_id = id;
  roots_[id] = root.handle;
  root.handle.resume();
}

void Actor::Kill() {
  alive_ = false;
  ++epoch_;
  // Destroying a root frame may cascade into child frames (Task destructors)
  // but never into other roots, so a simple sweep is safe.
  auto roots = std::move(roots_);
  roots_.clear();
  for (auto& [id, handle] : roots) {
    handle.destroy();
  }
}

void Actor::KillSoon() {
  loop_.ScheduleAt(loop_.Now(), [this, e = epoch_] {
    if (AliveAt(e)) {
      Kill();
    }
  });
}

}  // namespace cheetah::sim
