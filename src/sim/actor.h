// Actor: an execution domain whose coroutines can be killed as a unit.
//
// Every simulated process (meta server, data server, client proxy, manager)
// owns an Actor. Coroutines are started with Spawn() and form trees; Kill()
// destroys every live tree (RAII-cleaning their frames) and bumps the actor's
// epoch so that in-flight completion callbacks (timers, disk/network acks)
// become no-ops instead of resuming destroyed frames.
//
// Kill() must not be called from inside one of the actor's own coroutines —
// that would destroy the running frame. Use KillSoon() for self-crashes.
#ifndef SRC_SIM_ACTOR_H_
#define SRC_SIM_ACTOR_H_

#include <cassert>
#include <coroutine>
#include <cstdio>
#include <exception>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/common/units.h"
#include "src/obs/context.h"
#include "src/sim/event_loop.h"
#include "src/sim/task.h"

namespace cheetah::sim {

class Actor {
 public:
  explicit Actor(EventLoop& loop, std::string name = "actor")
      : loop_(loop), name_(std::move(name)) {}
  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;
  ~Actor() { Kill(); }

  EventLoop& loop() { return loop_; }
  Nanos Now() const { return loop_.Now(); }
  const std::string& name() const { return name_; }

  bool alive() const { return alive_; }
  uint64_t epoch() const { return epoch_; }
  bool AliveAt(uint64_t e) const { return alive_ && e == epoch_; }

  // Starts a coroutine tree owned by this actor.
  void Spawn(Task<> task);

  // Destroys all live coroutine trees and invalidates pending resumptions.
  void Kill();

  // Schedules Kill() to run from a plain event-loop callback; safe to call
  // from inside one of this actor's own coroutines.
  void KillSoon();

  // Re-enables Spawn() after a Kill() (simulating process restart).
  void Revive() { alive_ = true; }

  // Resumes `h` at virtual time `t` unless the epoch has moved on. The
  // caller's op context (captured here, i.e. at suspension time) is restored
  // around the resume so the coroutine wakes up in the operation it went to
  // sleep in.
  void ResumeAt(Nanos t, std::coroutine_handle<> h, uint64_t e) {
    ResumeAt(t, h, e, obs::ThisContext());
  }
  void ResumeAt(Nanos t, std::coroutine_handle<> h, uint64_t e, obs::OpContext ctx) {
    loop_.ScheduleAt(t, [this, h, e, ctx] {
      if (AliveAt(e)) {
        obs::ContextGuard guard(ctx);
        h.resume();
      }
    });
  }
  void ResumeSoon(std::coroutine_handle<> h, uint64_t e) { ResumeAt(loop_.Now(), h, e); }
  void ResumeSoon(std::coroutine_handle<> h, uint64_t e, obs::OpContext ctx) {
    ResumeAt(loop_.Now(), h, e, ctx);
  }

  // --- spawn machinery (public only for the promise type) ---
  struct RootTask {
    struct promise_type : internal::PromiseBase {
      uint64_t root_id = 0;

      RootTask get_return_object() {
        return RootTask{std::coroutine_handle<promise_type>::from_promise(*this)};
      }
      void return_void() {}
      void unhandled_exception() {
        std::fprintf(stderr, "fatal: unhandled exception escaped a spawned coroutine\n");
        std::terminate();
      }
      struct FinalAwaiter {
        bool await_ready() noexcept { return false; }
        std::coroutine_handle<> await_suspend(std::coroutine_handle<promise_type> h) noexcept {
          Actor* actor = h.promise().actor;
          const uint64_t id = h.promise().root_id;
          h.destroy();
          actor->roots_.erase(id);
          return std::noop_coroutine();
        }
        void await_resume() noexcept {}
      };
      FinalAwaiter final_suspend() noexcept { return {}; }
    };
    std::coroutine_handle<promise_type> handle;
  };

 private:
  static RootTask RunRoot(Task<> task) { co_await std::move(task); }

  EventLoop& loop_;
  std::string name_;
  bool alive_ = true;
  uint64_t epoch_ = 0;
  uint64_t next_root_id_ = 0;
  std::unordered_map<uint64_t, std::coroutine_handle<>> roots_;
};

// `co_await SleepFor(d)` — suspends the current coroutine for virtual time d.
struct SleepFor {
  explicit SleepFor(Nanos delay) : delay(delay) {}
  Nanos delay;
  Actor* actor = nullptr;

  void SetActor(Actor* a) { actor = a; }
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    assert(actor && "sleep awaited outside an actor coroutine");
    actor->ResumeAt(actor->Now() + delay, h, actor->epoch());
  }
  void await_resume() const noexcept {}
};

// `co_await SleepUntil(t)` — suspends until virtual time t (no-op if past).
struct SleepUntil {
  explicit SleepUntil(Nanos time) : time(time) {}
  Nanos time;
  Actor* actor = nullptr;

  void SetActor(Actor* a) { actor = a; }
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    assert(actor && "sleep awaited outside an actor coroutine");
    actor->ResumeAt(std::max(actor->Now(), time), h, actor->epoch());
  }
  void await_resume() const noexcept {}
};

// `Actor* self = co_await CurrentActor{};` — retrieves the owning actor.
struct CurrentActor {
  Actor* actor = nullptr;

  void SetActor(Actor* a) { actor = a; }
  bool await_ready() const noexcept { return false; }
  bool await_suspend(std::coroutine_handle<>) noexcept { return false; }  // resume immediately
  Actor* await_resume() const noexcept { return actor; }
};

}  // namespace cheetah::sim

#endif  // SRC_SIM_ACTOR_H_
