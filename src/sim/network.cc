#include "src/sim/network.h"

#include <algorithm>
#include <memory>

#include "src/obs/context.h"
#include "src/obs/trace.h"

namespace cheetah::sim {

void Network::Register(NodeId id, Handler handler) {
  Endpoint& ep = endpoints_[id];
  ep.handler = std::move(handler);
  if (!ep.nic) {
    ep.nic = std::make_unique<Resource>(loop_, params_.nic_lanes);
    ep.rx = std::make_unique<Resource>(loop_, params_.nic_lanes);
  }
}

void Network::Unregister(NodeId id) { endpoints_.erase(id); }

const LinkFaults& Network::FaultsFor(NodeId a, NodeId b) const {
  if (!link_faults_.empty()) {
    auto it = link_faults_.find(Norm(a, b));
    if (it != link_faults_.end()) {
      return it->second;
    }
  }
  return default_faults_;
}

void Network::ScheduleDelivery(NodeId src, NodeId dst, std::any msg, size_t bytes,
                               Nanos arrive, obs::OpContext ctx, uint64_t wire_span) {
  auto& tracer = obs::Tracer::Global();
  if (wire_span != 0) {
    tracer.End(wire_span, arrive);
  }
  loop_.ScheduleAt(arrive, [this, src, dst, m = std::move(msg), bytes, ctx]() mutable {
    auto dit = endpoints_.find(dst);
    if (dit == endpoints_.end() || Partitioned(src, dst)) {
      dropped_->Add();
      return;
    }
    obs::ContextGuard guard(ctx);
    dit->second.handler(src, std::move(m), bytes);
  });
}

void Network::Send(NodeId src, NodeId dst, std::any msg, size_t bytes) {
  sent_->Add();
  bytes_->Add(bytes);
  auto sit = endpoints_.find(src);
  if (sit == endpoints_.end()) {
    dropped_->Add();
    return;  // sender died between deciding to send and sending
  }
  Nanos arrive;
  bool loopback = src == dst;
  if (loopback) {
    arrive = loop_.Now() + params_.loopback_latency;
  } else {
    const Nanos tx_nanos =
        static_cast<Nanos>(static_cast<double>(bytes) / params_.bw_bytes_per_sec * 1e9);
    const Nanos departed = sit->second.nic->Reserve(tx_nanos);
    arrive = departed + params_.base_latency;
    // Receive-side occupancy: the message's bytes also serialize into the
    // receiver, starting no earlier than first-byte arrival. Uncontended
    // this reproduces departed + base_latency exactly; contended receptions
    // queue behind each other.
    auto dit = endpoints_.find(dst);
    if (dit != endpoints_.end() && dit->second.rx) {
      arrive = dit->second.rx->ReserveFrom(arrive - tx_nanos, tx_nanos);
    }
  }
  // The wire span and the delivery both belong to the sender's operation; the
  // receiving handler runs under the sender's context so spans it opens
  // before the first suspension (e.g. rpc handler spans) chain correctly.
  const obs::OpContext ctx = obs::ThisContext();
  auto& tracer = obs::Tracer::Global();
  uint64_t wire = 0;
  if (tracer.enabled()) {
    wire = tracer.BeginWith(ctx, obs::SpanKind::kNet, "net.wire", src,
                            loop_.Now(), bytes);
  }
  // Chaos faults, non-loopback only. Draws happen in a fixed order
  // (drop, delay, dup) so a seed replays the identical fault sequence; a
  // fault-free run consumes no randomness at all.
  if (!loopback) {
    const LinkFaults& f = FaultsFor(src, dst);
    if (f.active()) {
      const Nanos spread = f.max_extra_delay > 0 ? f.max_extra_delay : params_.base_latency;
      if (f.drop_prob > 0 && fault_rng_.Bernoulli(f.drop_prob)) {
        fault_dropped_->Add();
        if (wire != 0) {
          tracer.End(wire, arrive, /*ok=*/false);
        }
        return;  // paid its NIC time, then the wire ate it
      }
      if (f.delay_prob > 0 && fault_rng_.Bernoulli(f.delay_prob)) {
        fault_delayed_->Add();
        arrive += fault_rng_.UniformRange(1, spread);
      }
      if (f.dup_prob > 0 && fault_rng_.Bernoulli(f.dup_prob)) {
        fault_duplicated_->Add();
        const Nanos dup_arrive = arrive + fault_rng_.UniformRange(1, spread);
        std::any copy = msg;  // copy before the primary send consumes it
        ScheduleDelivery(src, dst, std::move(copy), bytes, dup_arrive, ctx,
                         /*wire_span=*/0);
      }
    }
  }
  ScheduleDelivery(src, dst, std::move(msg), bytes, arrive, ctx, wire);
}

void Network::SetPartitioned(NodeId a, NodeId b, bool partitioned) {
  auto key = std::minmax(a, b);
  if (partitioned) {
    partitions_.insert(key);
  } else {
    partitions_.erase(key);
  }
}

bool Network::Partitioned(NodeId a, NodeId b) const {
  if (a == b) {
    return false;
  }
  return partitions_.contains(std::minmax(a, b));
}

}  // namespace cheetah::sim
