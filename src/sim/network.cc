#include "src/sim/network.h"

#include <algorithm>
#include <memory>

#include "src/obs/context.h"
#include "src/obs/trace.h"

namespace cheetah::sim {

void Network::Register(NodeId id, Handler handler) {
  if (id >= endpoints_.size()) {
    endpoints_.resize(id + 1);
  }
  Endpoint& ep = endpoints_[id];
  ep.registered = true;
  ep.handler = std::move(handler);
  if (!ep.nic) {
    ep.nic = std::make_unique<Resource>(loop_, params_.nic_lanes);
    ep.rx = std::make_unique<Resource>(loop_, params_.nic_lanes);
  }
}

void Network::Unregister(NodeId id) {
  if (id < endpoints_.size()) {
    // Match the old map-erase semantics: a re-registered node gets fresh NIC
    // queue state, not the dead process's leftover reservations.
    endpoints_[id] = Endpoint{};
  }
}

const LinkFaults& Network::FaultsFor(NodeId a, NodeId b) const {
  if (!link_faults_.empty()) {
    auto it = link_faults_.find(LinkKey(a, b));
    if (it != link_faults_.end()) {
      return it->second;
    }
  }
  return default_faults_;
}

void Network::ScheduleDelivery(NodeId src, NodeId dst, AnyMsg msg, size_t bytes,
                               Nanos arrive, obs::OpContext ctx, uint64_t wire_span) {
  auto& tracer = obs::Tracer::Global();
  if (wire_span != 0) {
    tracer.End(wire_span, arrive);
  }
  // One arena record per in-flight message; the callback capture is two
  // pointers, well inside the event loop's inline budget, and the record is
  // recycled (or torn down with the arena) even if the event never fires.
  auto d = MakeArenaPtr<Delivery>(loop_.arena(),
                                  Delivery{src, dst, bytes, ctx, std::move(msg)});
  loop_.ScheduleAt(arrive, [this, d = std::move(d)]() mutable {
    if (!IsRegistered(d->dst) || Partitioned(d->src, d->dst)) {
      dropped_->Add();
      return;
    }
    obs::ContextGuard guard(d->ctx);
    endpoints_[d->dst].handler(d->src, std::move(d->msg), d->bytes);
  });
}

void Network::Send(NodeId src, NodeId dst, AnyMsg msg, size_t bytes) {
  sent_->Add();
  bytes_->Add(bytes);
  if (!IsRegistered(src)) {
    dropped_->Add();
    return;  // sender died between deciding to send and sending
  }
  Endpoint& sep = endpoints_[src];
  Nanos arrive;
  const bool loopback = src == dst;
  if (loopback) {
    arrive = loop_.Now() + params_.loopback_latency;
  } else {
    const Nanos tx_nanos =
        static_cast<Nanos>(static_cast<double>(bytes) / params_.bw_bytes_per_sec * 1e9);
    const Nanos departed = sep.nic->Reserve(tx_nanos);
    arrive = departed + params_.base_latency;
    // Receive-side occupancy: the message's bytes also serialize into the
    // receiver, starting no earlier than first-byte arrival. Uncontended
    // this reproduces departed + base_latency exactly; contended receptions
    // queue behind each other.
    if (IsRegistered(dst) && endpoints_[dst].rx) {
      arrive = endpoints_[dst].rx->ReserveFrom(arrive - tx_nanos, tx_nanos);
    }
  }
  // The wire span and the delivery both belong to the sender's operation; the
  // receiving handler runs under the sender's context so spans it opens
  // before the first suspension (e.g. rpc handler spans) chain correctly.
  const obs::OpContext ctx = obs::ThisContext();
  auto& tracer = obs::Tracer::Global();
  uint64_t wire = 0;
  if (tracer.enabled()) {
    wire = tracer.BeginWith(ctx, obs::SpanKind::kNet, "net.wire", src,
                            loop_.Now(), bytes);
  }
  // Chaos faults, non-loopback only. Draws happen in a fixed order
  // (drop, delay, dup) so a seed replays the identical fault sequence; a
  // fault-free run consumes no randomness at all and — the common case —
  // never even looks the link up.
  if (!loopback) {
    if (!faults_possible()) {
      fault_fast_path_->Add();
    } else {
      const LinkFaults& f = FaultsFor(src, dst);
      if (f.active()) {
        const Nanos spread = f.max_extra_delay > 0 ? f.max_extra_delay : params_.base_latency;
        if (f.drop_prob > 0 && fault_rng_.Bernoulli(f.drop_prob)) {
          fault_dropped_->Add();
          if (wire != 0) {
            tracer.End(wire, arrive, /*ok=*/false);
          }
          return;  // paid its NIC time, then the wire ate it
        }
        if (f.delay_prob > 0 && fault_rng_.Bernoulli(f.delay_prob)) {
          fault_delayed_->Add();
          arrive += fault_rng_.UniformRange(1, spread);
        }
        if (f.dup_prob > 0 && fault_rng_.Bernoulli(f.dup_prob)) {
          fault_duplicated_->Add();
          const Nanos dup_arrive = arrive + fault_rng_.UniformRange(1, spread);
          AnyMsg copy = msg;  // deep copy before the primary send consumes it
          ScheduleDelivery(src, dst, std::move(copy), bytes, dup_arrive, ctx,
                           /*wire_span=*/0);
        }
      }
    }
  }
  ScheduleDelivery(src, dst, std::move(msg), bytes, arrive, ctx, wire);
}

void Network::SetPartitioned(NodeId a, NodeId b, bool partitioned) {
  const uint64_t key = LinkKey(a, b);
  if (partitioned) {
    partitions_.insert(key);
  } else {
    partitions_.erase(key);
  }
}

}  // namespace cheetah::sim
