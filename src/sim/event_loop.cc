#include "src/sim/event_loop.h"

#include <cassert>
#include <utility>

#include "src/obs/context.h"

namespace cheetah::sim {

void EventLoop::ScheduleAt(Nanos time, std::function<void()> fn) {
  assert(time >= now_ && "cannot schedule in the past");
  queue_.push(Event{time, next_seq_++, std::move(fn)});
}

bool EventLoop::RunOne() {
  if (queue_.empty()) {
    return false;
  }
  // priority_queue::top returns const&, but the element is about to be
  // popped, so moving it out is safe and avoids copying the callback.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  // Each event starts with a clean op context; events that resume a
  // coroutine on behalf of an operation install its context themselves.
  obs::SetContext({});
  ev.fn();
  return true;
}

void EventLoop::Run() {
  while (RunOne()) {
  }
}

void EventLoop::RunUntil(Nanos deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    obs::SetContext({});
    ev.fn();
  }
  now_ = std::max(now_, deadline);
}

}  // namespace cheetah::sim
