#include "src/sim/event_loop.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/obs/context.h"

namespace cheetah::sim {

namespace {
std::optional<EventLoop::Engine> g_engine_override;
}  // namespace

void EventLoop::OverrideDefaultEngine(std::optional<Engine> engine) {
  g_engine_override = engine;
}

EventLoop::Engine EventLoop::DefaultEngine() {
  if (g_engine_override.has_value()) {
    return *g_engine_override;
  }
  if (const char* env = std::getenv("CHEETAH_SIM_ENGINE")) {
    if (std::strcmp(env, "heap") == 0) {
      return Engine::kHeap;
    }
  }
  return Engine::kWheel;
}

EventLoop::EventLoop(Engine engine)
    : engine_(engine),
      scope_("sim.loop"),
      events_fired_(scope_.counter("events_fired")),
      callbacks_inline_(scope_.counter("callbacks_inline")),
      callbacks_heap_(scope_.counter("callbacks_heap")),
      overflow_promotions_(scope_.counter("overflow_promotions")),
      arena_bytes_(scope_.gauge("arena_bytes_reserved")),
      arena_live_(scope_.gauge("arena_live")),
      arena_resets_(scope_.counter("arena_resets")) {
  if (engine_ == Engine::kWheel) {
    slots_.resize(kSlots);
  }
}

void EventLoop::ScheduleAt(Nanos time, Callback fn) {
  assert(time >= now_ && "cannot schedule in the past");
  if (fn.heap_allocated()) {
    callbacks_heap_->Add();
  } else {
    callbacks_inline_->Add();
  }
  Event ev{time, next_seq_++, std::move(fn)};
  if (engine_ == Engine::kHeap) {
    heap_.push_back(std::move(ev));
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return;
  }
  const uint64_t tick = TickOf(time);
  if (tick <= active_tick_) {
    // The tick currently being drained (or one that became reachable after a
    // RunUntil fast-forward): must participate in ordered dispatch now.
    active_.push_back(std::move(ev));
    std::push_heap(active_.begin(), active_.end(), Later{});
  } else if (tick - active_tick_ < kSlots) {
    auto& slot = slots_[tick & kSlotMask];
    slot.push_back(std::move(ev));
    occupied_[(tick & kSlotMask) >> 6] |= uint64_t{1} << (tick & 63);
    ++wheel_count_;
  } else {
    overflow_.push_back(std::move(ev));
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
  }
}

uint64_t EventLoop::NextOccupiedTick() const {
  if (wheel_count_ == 0) {
    return kNoTick;
  }
  // Circular scan over the occupancy bitmap starting just after the active
  // tick. Any occupied slot within the window maps back to a unique tick.
  const uint64_t start = (active_tick_ + 1) & kSlotMask;
  size_t word = start >> 6;
  uint64_t bits = occupied_[word] & (~uint64_t{0} << (start & 63));
  for (size_t scanned = 0; scanned <= kSlots / 64; ++scanned) {
    if (bits != 0) {
      const uint64_t pos = (word << 6) | static_cast<uint64_t>(std::countr_zero(bits));
      const uint64_t delta = ((pos - start) & kSlotMask) + 1;
      return active_tick_ + delta;
    }
    word = (word + 1) & ((kSlots / 64) - 1);
    bits = occupied_[word];
  }
  return kNoTick;
}

bool EventLoop::Advance() {
  if (!active_.empty()) {
    return true;
  }
  const uint64_t wheel_tick = NextOccupiedTick();
  const uint64_t over_tick = overflow_.empty() ? kNoTick : TickOf(overflow_.front().time);
  const uint64_t next = std::min(wheel_tick, over_tick);
  if (next == kNoTick) {
    return false;
  }
  active_tick_ = next;
  if (wheel_tick == next) {
    auto& slot = slots_[next & kSlotMask];
    wheel_count_ -= slot.size();
    occupied_[(next & kSlotMask) >> 6] &= ~(uint64_t{1} << (next & 63));
    active_.swap(slot);  // recycles both vectors' capacity
  }
  while (!overflow_.empty() && TickOf(overflow_.front().time) == next) {
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    active_.push_back(std::move(overflow_.back()));
    overflow_.pop_back();
    overflow_promotions_->Add();
  }
  std::make_heap(active_.begin(), active_.end(), Later{});
  return true;
}

EventLoop::Event EventLoop::PopStaged() {
  if (engine_ == Engine::kHeap) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    return ev;
  }
  std::pop_heap(active_.begin(), active_.end(), Later{});
  Event ev = std::move(active_.back());
  active_.pop_back();
  return ev;
}

void EventLoop::FireEvent(Event& ev) {
  now_ = ev.time;
  events_fired_->Add();
  // Each event starts with a clean op context; events that resume a
  // coroutine on behalf of an operation install its context themselves.
  obs::SetContext({});
  ev.fn();
}

void EventLoop::MaybeQuiesce() {
  if (pending_events() == 0 && arena_.live() == 0) {
    arena_.Reset();
    arena_resets_->Add();
    PublishArenaStats();
  }
}

void EventLoop::PublishArenaStats() {
  arena_bytes_->Set(static_cast<int64_t>(arena_.bytes_reserved()));
  arena_live_->Set(static_cast<int64_t>(arena_.live()));
}

bool EventLoop::RunOne() {
  if (engine_ == Engine::kHeap ? heap_.empty() : !Advance()) {
    return false;
  }
  Event ev = PopStaged();
  FireEvent(ev);
  // Release the capture before the quiesce check: it may hold the last live
  // arena object (e.g. an ArenaPtr), which would otherwise block the reset.
  ev.fn = nullptr;
  MaybeQuiesce();
  return true;
}

void EventLoop::Run() {
  while (RunOne()) {
  }
  PublishArenaStats();
}

void EventLoop::RunUntil(Nanos deadline) {
  while (true) {
    if (engine_ == Engine::kHeap) {
      if (heap_.empty() || heap_.front().time > deadline) {
        break;
      }
    } else {
      if (!Advance() || active_.front().time > deadline) {
        break;
      }
    }
    Event ev = PopStaged();
    FireEvent(ev);
    ev.fn = nullptr;  // as in RunOne: drop the capture before the quiesce check
    MaybeQuiesce();
  }
  now_ = std::max(now_, deadline);
  PublishArenaStats();
}

}  // namespace cheetah::sim
