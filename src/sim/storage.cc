#include "src/sim/storage.h"

#include <algorithm>
#include <utility>

#include "src/obs/trace.h"

namespace cheetah::sim {

void Storage::RecordIo(const char* what, uint64_t bytes, Nanos done) {
  ops_->Add();
  io_bytes_->Add(bytes);
  auto& tracer = obs::Tracer::Global();
  if (tracer.enabled()) {
    const uint64_t span =
        tracer.Begin(obs::SpanKind::kDisk, what, node_id_, Now(), bytes);
    tracer.End(span, done);
  }
}

Task<Status> Storage::Append(std::string name, std::string data, bool sync) {
  co_await ChargeFileWrite(data.size());
  File& f = files_[name];
  f.data.append(data);
  if (sync) {
    co_await ChargeFsync();
    f.synced_len = f.data.size();
    f.ever_synced = true;
  }
  co_return Status::Ok();
}

Task<Status> Storage::WriteFile(std::string name, std::string data, bool sync) {
  co_await ChargeFileWrite(data.size());
  File& f = files_[name];
  f.data = std::move(data);
  f.synced_len = std::min<uint64_t>(f.synced_len, f.data.size());
  if (sync) {
    co_await ChargeFsync();
    f.synced_len = f.data.size();
    f.ever_synced = true;
  }
  co_return Status::Ok();
}

Task<Status> Storage::Sync(std::string name) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    co_return Status::NotFound("sync: no such file " + name);
  }
  co_await ChargeFsync();
  it->second.synced_len = it->second.data.size();
  it->second.ever_synced = true;
  co_return Status::Ok();
}

Task<Result<std::string>> Storage::ReadFile(std::string name) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    co_return Status::NotFound("read: no such file " + name);
  }
  co_await ChargeFileRead(it->second.data.size());
  co_return it->second.data;
}

Task<Result<std::string>> Storage::ReadAt(std::string name, uint64_t offset, uint64_t length) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    co_return Status::NotFound("read: no such file " + name);
  }
  if (offset + length > it->second.data.size()) {
    co_return Status::InvalidArgument("read past end of " + name);
  }
  co_await ChargeFileRead(length);
  co_return it->second.data.substr(offset, length);
}

Status Storage::DeleteFile(const std::string& name) {
  files_.erase(name);
  return Status::Ok();
}

uint64_t Storage::FileSize(const std::string& name) const {
  auto it = files_.find(name);
  return it == files_.end() ? 0 : it->second.data.size();
}

std::vector<std::string> Storage::ListFiles(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [name, file] : files_) {
    if (name.starts_with(prefix)) {
      out.push_back(name);
    }
  }
  return out;
}

Task<Status> Storage::WriteBlocks(std::string volume, uint64_t offset, std::string data,
                                  uint32_t checksum) {
  const uint64_t length = data.size();
  co_await ChargeWrite(length);
  co_await ChargeFsync();
  Volume& vol = volumes_[volume];
  auto it = vol.extents.find(offset);
  if (it != vol.extents.end()) {
    vol.bytes_used -= it->second.length;
    vol.extents.erase(it);
  }
  // Flaky media: the write acks clean but what lands on the platter differs
  // from what the checksum covers, so later reads/probes reject the extent.
  // Flipping the stored checksum (not recomputing over flipped bytes) models
  // this in both full-content and metadata-only modes. A rewrite always
  // clears a latent sector error (remapped sector).
  Extent ext{std::move(data), checksum, length};
  if (gray_.write_corrupt_prob > 0 && fault_rng_.Bernoulli(gray_.write_corrupt_prob)) {
    ++corrupted_;
    writes_corrupted_c_->Add();
    FlipExtent(ext);
  }
  if (!store_volume_content_) {
    ext.data.clear();
    ext.data.shrink_to_fit();
  }
  vol.extents.emplace(offset, std::move(ext));
  vol.bytes_used += length;
  co_return Status::Ok();
}

void Storage::FlipExtent(Extent& e) {
  e.checksum ^= 0x5eedbad0u;
  if (!e.data.empty()) {
    e.data[0] = static_cast<char>(e.data[0] ^ 0x40);
  }
}

uint64_t Storage::InjectBitRot(double prob, uint64_t seed) {
  Rng rng(seed ^ 0xb17207ull);
  std::vector<std::string> names;
  names.reserve(volumes_.size());
  for (const auto& [name, vol] : volumes_) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  uint64_t hit = 0;
  for (const auto& name : names) {
    for (auto& [offset, extent] : volumes_[name].extents) {
      if (extent.unreadable || !rng.Bernoulli(prob)) {
        continue;
      }
      FlipExtent(extent);
      ++hit;
    }
  }
  bitrot_ += hit;
  bitrot_extents_c_->Add(hit);
  return hit;
}

uint64_t Storage::InjectLatentSectorErrors(double prob, uint64_t seed) {
  Rng rng(seed ^ 0x15e0ull);
  std::vector<std::string> names;
  names.reserve(volumes_.size());
  for (const auto& [name, vol] : volumes_) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  uint64_t hit = 0;
  for (const auto& name : names) {
    for (auto& [offset, extent] : volumes_[name].extents) {
      if (extent.unreadable || !rng.Bernoulli(prob)) {
        continue;
      }
      extent.unreadable = true;
      ++hit;
    }
  }
  lse_ += hit;
  lse_extents_c_->Add(hit);
  return hit;
}

bool Storage::CorruptExtent(const std::string& volume, uint64_t offset) {
  auto vit = volumes_.find(volume);
  if (vit == volumes_.end()) {
    return false;
  }
  auto eit = vit->second.extents.find(offset);
  if (eit == vit->second.extents.end()) {
    return false;
  }
  FlipExtent(eit->second);
  ++bitrot_;
  bitrot_extents_c_->Add();
  return true;
}

Task<Result<std::string>> Storage::ReadBlocks(std::string volume, uint64_t offset,
                                              uint64_t length) {
  auto vit = volumes_.find(volume);
  if (vit == volumes_.end()) {
    co_return Status::NotFound("no such volume " + volume);
  }
  auto eit = vit->second.extents.find(offset);
  if (eit == vit->second.extents.end() || eit->second.length != length) {
    co_return Status::NotFound("no extent at requested offset");
  }
  co_await ChargeRead(length);
  if (eit->second.unreadable) {
    co_return Status::IoError("latent sector error at " + volume + "+" +
                              std::to_string(offset));
  }
  if (!store_volume_content_) {
    co_return std::string(length, 'x');  // synthesized payload
  }
  co_return eit->second.data;
}

std::optional<uint32_t> Storage::PeekChecksum(const std::string& volume,
                                              uint64_t offset) const {
  auto vit = volumes_.find(volume);
  if (vit == volumes_.end()) {
    return std::nullopt;
  }
  auto eit = vit->second.extents.find(offset);
  if (eit == vit->second.extents.end() || eit->second.unreadable) {
    return std::nullopt;
  }
  return eit->second.checksum;
}

std::vector<Storage::ExtentInfo> Storage::ListVolumeExtents(const std::string& volume) const {
  std::vector<ExtentInfo> out;
  auto it = volumes_.find(volume);
  if (it == volumes_.end()) {
    return out;
  }
  out.reserve(it->second.extents.size());
  for (const auto& [offset, extent] : it->second.extents) {
    out.push_back(ExtentInfo{offset, extent.length, extent.checksum});
  }
  return out;
}

Task<Result<uint32_t>> Storage::ProbeChecksum(std::string volume, uint64_t offset) {
  auto vit = volumes_.find(volume);
  if (vit == volumes_.end()) {
    co_return Status::NotFound("no such volume " + volume);
  }
  auto eit = vit->second.extents.find(offset);
  if (eit == vit->second.extents.end()) {
    co_return Status::NotFound("no extent at requested offset");
  }
  co_await ChargeRead(4096);  // checksum probe reads a header, not the payload
  if (eit->second.unreadable) {
    co_return Status::IoError("latent sector error at " + volume + "+" +
                              std::to_string(offset));
  }
  co_return eit->second.checksum;
}

void Storage::DiscardBlocks(const std::string& volume, uint64_t offset) {
  auto vit = volumes_.find(volume);
  if (vit == volumes_.end()) {
    return;
  }
  auto eit = vit->second.extents.find(offset);
  if (eit != vit->second.extents.end()) {
    vit->second.bytes_used -= eit->second.length;
    vit->second.extents.erase(eit);
  }
}

uint64_t Storage::VolumeBytesUsed(const std::string& volume) const {
  auto it = volumes_.find(volume);
  return it == volumes_.end() ? 0 : it->second.bytes_used;
}

void Storage::PowerLoss() {
  for (auto it = files_.begin(); it != files_.end();) {
    File& f = it->second;
    if (!f.ever_synced) {
      it = files_.erase(it);
      continue;
    }
    f.data.resize(f.synced_len);
    ++it;
  }
}

void Storage::DestroyMedia() {
  files_.clear();
  volumes_.clear();
}

uint64_t Storage::TotalFileBytes() const {
  uint64_t total = 0;
  for (const auto& [name, f] : files_) {
    total += f.data.size();
  }
  return total;
}

}  // namespace cheetah::sim
