// Simulated datacenter network.
//
// Each registered node has a full-duplex NIC modeled as a pair of k-lane
// resources: a message serializes on the sender's transmit lanes, propagates
// for the base one-way latency, then occupies the receiver's receive lanes
// for its own serialization time before it is handed to the receiver's
// handler (which typically spawns a coroutine on the receiver's actor). The
// receive-side occupancy is what makes concurrent bulk transfers into one
// node contend: two simultaneous large sends from different sources take ~2x
// the wall-clock of one, instead of overlapping for free. An uncontended
// message arrives at exactly departed + base_latency, same as before the
// receive side was modeled. Messages to dead or partitioned nodes are
// silently dropped — callers recover via RPC timeouts, exactly as the
// paper's servers do.
//
// Hot-path layout: endpoints live in a flat vector indexed by NodeId (ids are
// small and dense), payloads travel as arena-backed AnyMsg boxes instead of
// std::any, the delivery callback captures one arena pointer so it stays
// inside the event loop's inline-callback budget, and per-link fault state is
// an xxhash-keyed flat map that is consulted only when some fault is actually
// registered — a fault-free run pays a single branch per send.
#ifndef SRC_SIM_NETWORK_H_
#define SRC_SIM_NETWORK_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/hash.h"
#include "src/common/random.h"
#include "src/common/units.h"
#include "src/obs/context.h"
#include "src/obs/metrics.h"
#include "src/sim/any_msg.h"
#include "src/sim/event_loop.h"
#include "src/sim/resource.h"

namespace cheetah::sim {

using NodeId = uint32_t;
constexpr NodeId kInvalidNode = 0xffffffffu;

struct NetParams {
  Nanos base_latency = Micros(100);         // one-way wire + RPC stack software
  Nanos loopback_latency = Micros(5);       // same-machine delivery
  double bw_bytes_per_sec = 3.1e9;          // 25 GbE per NIC (shared)
  int nic_lanes = 1;  // the wire serializes; lanes model nothing extra
};

// Probabilistic per-link fault injection for chaos runs. Every draw comes
// from the network's seeded RNG, consumed in deterministic send order, so a
// given seed replays the identical fault sequence. Loopback traffic is
// exempt. Note the wire may duplicate a message (modeling retransmission);
// rpc::Node discards duplicate *requests* on receive, the way a real RPC
// stack's TCP sequencing does — drop and reorder are the faults protocols
// must genuinely tolerate.
struct LinkFaults {
  double drop_prob = 0.0;    // message vanishes after paying its NIC time
  double dup_prob = 0.0;     // a second copy arrives with extra delay
  double delay_prob = 0.0;   // message is held back (breaks per-link FIFO)
  Nanos max_extra_delay = 0; // uniform extra delay for delayed/dup copies

  bool active() const { return drop_prob > 0 || dup_prob > 0 || delay_prob > 0; }
};

class Network {
 public:
  using Handler = std::function<void(NodeId src, AnyMsg msg, size_t bytes)>;

  Network(EventLoop& loop, NetParams params)
      : loop_(loop),
        params_(params),
        scope_("sim.net"),
        sent_(scope_.counter("messages_sent")),
        dropped_(scope_.counter("messages_dropped")),
        bytes_(scope_.counter("bytes")) {}

  void Register(NodeId id, Handler handler);
  void Unregister(NodeId id);
  bool IsRegistered(NodeId id) const {
    return id < endpoints_.size() && endpoints_[id].registered;
  }

  // Fire-and-forget send; delivery is scheduled on the event loop.
  void Send(NodeId src, NodeId dst, AnyMsg msg, size_t bytes);

  // Convenience overload boxing any payload type into the loop's arena.
  template <typename T>
    requires(!std::is_same_v<std::remove_cvref_t<T>, AnyMsg>)
  void Send(NodeId src, NodeId dst, T msg, size_t bytes) {
    Send(src, dst, AnyMsg::Make<T>(loop_.arena(), std::move(msg)), bytes);
  }

  void SetPartitioned(NodeId a, NodeId b, bool partitioned);
  void ClearPartitions() { partitions_.clear(); }
  bool Partitioned(NodeId a, NodeId b) const {
    if (a == b || partitions_.empty()) {
      return false;
    }
    return partitions_.contains(LinkKey(a, b));
  }

  // --- chaos fault injection -------------------------------------------
  // Faults apply to non-loopback sends only. Per-link settings (normalized
  // unordered pair) override the default. When no faults are active the send
  // path consumes no randomness and never touches the fault table, so
  // enabling chaos never perturbs the deterministic schedule of a fault-free
  // run.
  void SeedFaults(uint64_t seed) { fault_rng_ = Rng(seed); }
  void SetDefaultLinkFaults(const LinkFaults& f) {
    default_faults_ = f;
    NoteFaults(f);
  }
  void SetLinkFaults(NodeId a, NodeId b, const LinkFaults& f) {
    link_faults_[LinkKey(a, b)] = f;
    NoteFaults(f);
  }
  void ClearLinkFaults() {
    default_faults_ = LinkFaults{};
    link_faults_.clear();
  }

  // True once any duplication fault has ever been configured this run.
  // rpc::Node consults this to skip duplicate-request bookkeeping entirely on
  // fault-free runs (sticky: in-flight duplicates must still be caught after
  // faults are cleared).
  bool dup_faults_possible() const { return dup_faults_seen_; }

  uint64_t messages_sent() const { return sent_->value(); }
  uint64_t messages_dropped() const { return dropped_->value(); }
  uint64_t messages_fault_dropped() const { return fault_dropped_->value(); }
  uint64_t messages_duplicated() const { return fault_duplicated_->value(); }
  uint64_t messages_delayed() const { return fault_delayed_->value(); }
  uint64_t fault_free_fast_path() const { return fault_fast_path_->value(); }

 private:
  struct Endpoint {
    bool registered = false;
    Handler handler;
    std::unique_ptr<Resource> nic;  // transmit lanes
    std::unique_ptr<Resource> rx;   // receive lanes (full duplex)
  };

  // In-flight delivery record, arena-allocated so the event-loop callback
  // only captures two pointers.
  struct Delivery {
    NodeId src;
    NodeId dst;
    size_t bytes;
    obs::OpContext ctx;
    AnyMsg msg;
  };

  static uint64_t LinkKey(NodeId a, NodeId b) {
    const auto [lo, hi] = std::minmax(a, b);
    return (static_cast<uint64_t>(lo) << 32) | hi;
  }
  void NoteFaults(const LinkFaults& f) {
    if (f.dup_prob > 0) {
      dup_faults_seen_ = true;
    }
  }
  bool faults_possible() const { return default_faults_.active() || !link_faults_.empty(); }
  const LinkFaults& FaultsFor(NodeId a, NodeId b) const;
  void ScheduleDelivery(NodeId src, NodeId dst, AnyMsg msg, size_t bytes,
                        Nanos arrive, obs::OpContext ctx, uint64_t wire_span);

  EventLoop& loop_;
  NetParams params_;
  obs::Scope scope_;
  obs::Counter* sent_;
  obs::Counter* dropped_;
  obs::Counter* bytes_;
  obs::Counter* fault_dropped_ = scope_.counter("fault_dropped");
  obs::Counter* fault_duplicated_ = scope_.counter("fault_duplicated");
  obs::Counter* fault_delayed_ = scope_.counter("fault_delayed");
  obs::Counter* fault_fast_path_ = scope_.counter("fault_free_fast_path");
  std::vector<Endpoint> endpoints_;  // indexed by NodeId (ids are dense)
  std::unordered_set<uint64_t, XxU64Hash> partitions_;  // LinkKey(a, b)
  Rng fault_rng_{0xc4a05u};
  LinkFaults default_faults_;
  std::unordered_map<uint64_t, LinkFaults, XxU64Hash> link_faults_;  // LinkKey
  bool dup_faults_seen_ = false;
};

}  // namespace cheetah::sim

#endif  // SRC_SIM_NETWORK_H_
