// Simulated datacenter network.
//
// Each registered node has a NIC modeled as a k-lane transmit resource; a
// message serializes on the sender's NIC, propagates for the base one-way
// latency, then is handed to the receiver's handler (which typically spawns a
// coroutine on the receiver's actor). Messages to dead or partitioned nodes
// are silently dropped — callers recover via RPC timeouts, exactly as the
// paper's servers do.
#ifndef SRC_SIM_NETWORK_H_
#define SRC_SIM_NETWORK_H_

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>

#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/sim/event_loop.h"
#include "src/sim/resource.h"

namespace cheetah::sim {

using NodeId = uint32_t;
constexpr NodeId kInvalidNode = 0xffffffffu;

struct NetParams {
  Nanos base_latency = Micros(100);         // one-way wire + RPC stack software
  Nanos loopback_latency = Micros(5);       // same-machine delivery
  double bw_bytes_per_sec = 3.1e9;          // 25 GbE per NIC (shared)
  int nic_lanes = 1;  // the wire serializes; lanes model nothing extra
};

class Network {
 public:
  using Handler = std::function<void(NodeId src, std::any msg, size_t bytes)>;

  Network(EventLoop& loop, NetParams params)
      : loop_(loop),
        params_(params),
        scope_("sim.net"),
        sent_(scope_.counter("messages_sent")),
        dropped_(scope_.counter("messages_dropped")),
        bytes_(scope_.counter("bytes")) {}

  void Register(NodeId id, Handler handler);
  void Unregister(NodeId id);
  bool IsRegistered(NodeId id) const { return endpoints_.contains(id); }

  // Fire-and-forget send; delivery is scheduled on the event loop.
  void Send(NodeId src, NodeId dst, std::any msg, size_t bytes);

  void SetPartitioned(NodeId a, NodeId b, bool partitioned);
  void ClearPartitions() { partitions_.clear(); }
  bool Partitioned(NodeId a, NodeId b) const;

  uint64_t messages_sent() const { return sent_->value(); }
  uint64_t messages_dropped() const { return dropped_->value(); }

 private:
  struct Endpoint {
    Handler handler;
    std::unique_ptr<Resource> nic;
  };

  EventLoop& loop_;
  NetParams params_;
  obs::Scope scope_;
  obs::Counter* sent_;
  obs::Counter* dropped_;
  obs::Counter* bytes_;
  std::unordered_map<NodeId, Endpoint> endpoints_;
  std::set<std::pair<NodeId, NodeId>> partitions_;  // normalized (min,max)
};

}  // namespace cheetah::sim

#endif  // SRC_SIM_NETWORK_H_
