// Simulated SSD: a latency/queue model plus durable content.
//
// Two content planes:
//  * A flat in-memory filesystem (append-oriented files) used by the KV store
//    (WAL, SSTables, manifests) and by baselines' needle/chunk files. Appends
//    become durable at fsync; power loss truncates to the last synced length.
//  * Raw block volumes (extent -> bytes) used by Cheetah's object-agnostic
//    data servers. Volume writes are always synchronous (the data path acks
//    only after persistence), so they survive power loss.
//
// Latency: every operation reserves a disk channel for base + bytes/bandwidth.
#ifndef SRC_SIM_STORAGE_H_
#define SRC_SIM_STORAGE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/sim/resource.h"
#include "src/sim/task.h"

namespace cheetah::sim {

struct DiskParams {
  Nanos write_base = Micros(30);
  double write_bw_bytes_per_sec = 1.2e9;   // shared across all in-flight ops
  Nanos read_base = Micros(20);
  double read_bw_bytes_per_sec = 2.5e9;    // shared across all in-flight ops
  Nanos fsync_base = Micros(15);
  int channels = 8;  // queue parallelism for the fixed per-op cost only

  static DiskParams RamDisk() {
    return DiskParams{.write_base = Micros(1),
                      .write_bw_bytes_per_sec = 20e9,
                      .read_base = Micros(1),
                      .read_bw_bytes_per_sec = 20e9,
                      .fsync_base = 0,
                      .channels = 16};
  }
};

// Gray failures: the disk keeps answering, just badly. Unlike crashes these
// degrade service without tripping failure detectors, which is exactly what
// makes them dangerous (ROADMAP: production north-star). All probabilistic
// draws come from the disk's seeded fault RNG for replayability.
struct GrayFailure {
  double latency_multiplier = 1.0;  // N× slow disk (applies to every charge)
  Nanos fsync_stuck_for = 0;        // fsyncs block until now + this, once set
  double write_corrupt_prob = 0.0;  // volume writes silently corrupt on media
};

class Storage {
 public:
  Storage(EventLoop& loop, DiskParams params)
      : loop_(&loop),
        params_(params),
        channels_(loop, params.channels),
        bus_(loop, 1),
        scope_("sim.disk"),
        ops_(scope_.counter("ops")),
        io_bytes_(scope_.counter("bytes")),
        writes_corrupted_c_(scope_.counter("writes_corrupted")),
        bitrot_extents_c_(scope_.counter("bitrot_extents")),
        lse_extents_c_(scope_.counter("lse_extents")) {}

  const DiskParams& params() const { return params_; }

  // Owning node, for span attribution; set by the Machine that owns the disk.
  void set_node_id(uint32_t id) { node_id_ = id; }
  uint32_t node_id() const { return node_id_; }
  Nanos Now() const { return loop_->Now(); }

  // ---- latency primitives ----
  // An I/O pays a fixed per-op cost on one of `channels` queue slots plus a
  // transfer time serialized on the single shared-bandwidth bus; it completes
  // when both are done. The media occupancy [now, done] is recorded as a
  // closed disk span of the current operation.
  struct IoAwaiter {
    Storage* storage;
    Resource& channels;
    Resource& bus;
    Nanos base;
    Nanos transfer;
    const char* what;  // "disk.write", "disk.read", "disk.fsync", ...
    uint64_t bytes;
    Actor* actor = nullptr;

    void SetActor(Actor* a) { actor = a; }
    bool await_ready() const noexcept { return base == 0 && transfer == 0; }
    void await_suspend(std::coroutine_handle<> h) {
      const Nanos channel_done = channels.Reserve(base);
      const Nanos bus_done = transfer > 0 ? bus.Reserve(transfer) : 0;
      const Nanos done = std::max(channel_done, bus_done);
      storage->RecordIo(what, bytes, done);
      actor->ResumeAt(done, h, actor->epoch());
    }
    void await_resume() const noexcept {}
  };
  IoAwaiter ChargeWrite(uint64_t bytes) {
    return IoAwaiter{this, channels_, bus_, Scaled(params_.write_base),
                     Scaled(BwNanos(bytes, params_.write_bw_bytes_per_sec)), "disk.write",
                     bytes};
  }
  IoAwaiter ChargeRead(uint64_t bytes) {
    return IoAwaiter{this, channels_, bus_, Scaled(params_.read_base),
                     Scaled(BwNanos(bytes, params_.read_bw_bytes_per_sec)), "disk.read",
                     bytes};
  }
  IoAwaiter ChargeFsync() {
    Nanos base = Scaled(params_.fsync_base);
    if (loop_->Now() < fsync_stuck_until_) {
      base += fsync_stuck_until_ - loop_->Now();  // stuck device firmware
    }
    return IoAwaiter{this, channels_, bus_, base, 0, "disk.fsync", 0};
  }

  // File-plane variants: sequential log/SSTable streams pay base + transfer
  // as one channel reservation (no shared-bus serialization) and do not
  // head-of-line-block small volume I/O (and vice versa).
  IoAwaiter ChargeFileWrite(uint64_t bytes) {
    return IoAwaiter{this, channels_, bus_,
                     Scaled(params_.write_base + BwNanos(bytes, params_.write_bw_bytes_per_sec)),
                     0, "disk.file_write", bytes};
  }
  IoAwaiter ChargeFileRead(uint64_t bytes) {
    return IoAwaiter{this, channels_, bus_,
                     Scaled(params_.read_base + BwNanos(bytes, params_.read_bw_bytes_per_sec)),
                     0, "disk.file_read", bytes};
  }

  // ---- flat filesystem ----
  // Appends to (creating if absent) a file; durable immediately iff sync.
  Task<Status> Append(std::string name, std::string data, bool sync);
  // Replaces the entire file content; durable immediately iff sync.
  Task<Status> WriteFile(std::string name, std::string data, bool sync);
  Task<Status> Sync(std::string name);
  Task<Result<std::string>> ReadFile(std::string name);
  Task<Result<std::string>> ReadAt(std::string name, uint64_t offset, uint64_t length);
  // Deletion is a metadata operation; modeled as instantaneous and durable.
  Status DeleteFile(const std::string& name);
  bool FileExists(const std::string& name) const { return files_.contains(name); }
  uint64_t FileSize(const std::string& name) const;
  std::vector<std::string> ListFiles(const std::string& prefix) const;

  // When false, volume extents keep only (length, checksum) and reads return
  // synthesized bytes — latency/bandwidth accounting is unchanged. Benches
  // use this to store hundreds of thousands of objects without holding their
  // payloads in host memory; tests keep full content for integrity checks.
  void set_store_volume_content(bool store) { store_volume_content_ = store; }
  bool store_volume_content() const { return store_volume_content_; }

  struct ExtentInfo {
    uint64_t offset = 0;
    uint64_t length = 0;
    uint32_t checksum = 0;
  };
  std::vector<ExtentInfo> ListVolumeExtents(const std::string& volume) const;

  // Checksum of the extent at `offset` without charging the device (the
  // caller is already paying for the data read itself).
  std::optional<uint32_t> PeekChecksum(const std::string& volume, uint64_t offset) const;

  // ---- raw block volumes ----
  // Writes `data` at byte offset `offset` of the named volume (synchronous).
  Task<Status> WriteBlocks(std::string volume, uint64_t offset, std::string data,
                           uint32_t checksum);
  Task<Result<std::string>> ReadBlocks(std::string volume, uint64_t offset, uint64_t length);
  // Checksum of the extent at `offset` without transferring data (recovery
  // probes); charges a single header-sized read.
  Task<Result<uint32_t>> ProbeChecksum(std::string volume, uint64_t offset);
  // Drops extents (space reclaim bookkeeping on the device side is free).
  void DiscardBlocks(const std::string& volume, uint64_t offset);
  uint64_t VolumeBytesUsed(const std::string& volume) const;

  // ---- failure injection ----
  // Power loss: unsynced file data is lost. Volume extents were written
  // synchronously and survive.
  void PowerLoss();
  // Media failure: everything is lost.
  void DestroyMedia();

  // Gray failures. fsync_stuck_for is converted to an absolute deadline at
  // install time; fsyncs issued before it complete only once it passes.
  void SetGrayFailure(const GrayFailure& g) {
    gray_ = g;
    fsync_stuck_until_ = g.fsync_stuck_for > 0 ? loop_->Now() + g.fsync_stuck_for : 0;
  }
  void ClearGrayFailure() {
    gray_ = GrayFailure{};
    fsync_stuck_until_ = 0;
  }
  const GrayFailure& gray_failure() const { return gray_; }
  void set_fault_seed(uint64_t seed) { fault_rng_ = Rng(seed); }
  uint64_t writes_corrupted() const { return corrupted_; }

  // At-rest integrity faults, applied instantaneously to data already on the
  // media (no device time passes; the damage is only discovered by later
  // reads/probes). Both draw from `seed` alone — not the device fault RNG —
  // so a nemesis replays the exact same damage set regardless of how much
  // I/O preceded it. Volumes are visited in sorted-name order and extents in
  // offset order, so the sampled set is a pure function of (contents, seed).
  //
  // Bit rot flips stored bytes out from under the extent checksum (modeled
  // exactly like write_corrupt_prob: the stored checksum diverges from the
  // content, detectable in both full-content and metadata-only modes).
  // Returns the number of extents damaged.
  uint64_t InjectBitRot(double prob, uint64_t seed);
  // Latent sector errors: the extent header becomes unreadable — reads and
  // probes fail with kIoError until the extent is rewritten (a repair write
  // remaps the sector). Returns the number of extents marked.
  uint64_t InjectLatentSectorErrors(double prob, uint64_t seed);
  // Targeted variant for tests: corrupts the extent at (volume, offset) the
  // same way bit rot does. Returns false if no such extent exists.
  bool CorruptExtent(const std::string& volume, uint64_t offset);

  uint64_t bitrot_extents() const { return bitrot_; }
  uint64_t lse_extents() const { return lse_; }

  uint64_t TotalFileBytes() const;

 private:
  struct File {
    std::string data;
    uint64_t synced_len = 0;
    bool ever_synced = false;
  };
  struct Extent {
    std::string data;
    uint32_t checksum = 0;
    uint64_t length = 0;
    bool unreadable = false;  // latent sector error; cleared by a rewrite
  };
  struct Volume {
    std::map<uint64_t, Extent> extents;  // keyed by byte offset
    uint64_t bytes_used = 0;
  };

  static Nanos BwNanos(uint64_t bytes, double bw) {
    return static_cast<Nanos>(static_cast<double>(bytes) / bw * 1e9);
  }

  // Exact identity when healthy so enabling the chaos build path never
  // perturbs a fault-free run.
  Nanos Scaled(Nanos n) const {
    if (gray_.latency_multiplier == 1.0) {
      return n;
    }
    return static_cast<Nanos>(static_cast<double>(n) * gray_.latency_multiplier);
  }

  // Counts the I/O and, when tracing, records a closed [now, done] disk span
  // attributed to the current op context. Defined in storage.cc to keep
  // trace.h out of this header.
  void RecordIo(const char* what, uint64_t bytes, Nanos done);

  EventLoop* loop_;
  DiskParams params_;
  Resource channels_;
  Resource bus_;  // shared bandwidth
  // Flips an extent's stored bytes/checksum in place (bit rot and the
  // write_corrupt_prob gray failure share the same damage model).
  static void FlipExtent(Extent& e);

  obs::Scope scope_;
  obs::Counter* ops_;
  obs::Counter* io_bytes_;
  obs::Counter* writes_corrupted_c_;
  obs::Counter* bitrot_extents_c_;
  obs::Counter* lse_extents_c_;
  uint32_t node_id_ = 0;
  bool store_volume_content_ = true;
  GrayFailure gray_;
  Nanos fsync_stuck_until_ = 0;
  Rng fault_rng_{0xd15cu};
  uint64_t corrupted_ = 0;
  uint64_t bitrot_ = 0;
  uint64_t lse_ = 0;
  std::unordered_map<std::string, File> files_;
  std::unordered_map<std::string, Volume> volumes_;
};

}  // namespace cheetah::sim

#endif  // SRC_SIM_STORAGE_H_
