// A k-server FIFO queueing resource (CPU cores, disk channels, NIC lanes).
//
// Requests are assigned service intervals at submission time: the request
// occupies the earliest-free server for `service` nanoseconds and the caller
// sleeps until its completion instant. This open-queue formulation models
// contention (latency grows once offered load exceeds capacity) without an
// explicit waiter list, and is exactly deterministic.
#ifndef SRC_SIM_RESOURCE_H_
#define SRC_SIM_RESOURCE_H_

#include <algorithm>
#include <cassert>
#include <vector>

#include "src/common/units.h"
#include "src/sim/actor.h"
#include "src/sim/task.h"

namespace cheetah::sim {

class Resource {
 public:
  Resource(EventLoop& loop, int servers) : loop_(loop), free_at_(servers, 0) {
    assert(servers > 0);
  }

  // Reserves the earliest-free server and returns the completion instant.
  Nanos Reserve(Nanos service) {
    return ReserveFrom(loop_.Now(), service);
  }

  // Same, but the reservation may not start before `earliest` (which may be
  // in the future — used for receive-side occupancy, where the work can only
  // begin once the first byte has propagated).
  Nanos ReserveFrom(Nanos earliest, Nanos service) {
    auto it = std::min_element(free_at_.begin(), free_at_.end());
    const Nanos start = std::max(earliest, *it);
    const Nanos done = start + service;
    *it = done;
    return done;
  }

  // `co_await resource.Use(cost)` — occupies a server for `cost` time.
  struct UseAwaiter {
    Resource& resource;
    Nanos service;
    Actor* actor = nullptr;

    void SetActor(Actor* a) { actor = a; }
    bool await_ready() const noexcept { return service == 0; }
    void await_suspend(std::coroutine_handle<> h) {
      assert(actor && "Resource::Use outside an actor coroutine");
      const Nanos done = resource.Reserve(service);
      actor->ResumeAt(done, h, actor->epoch());
    }
    void await_resume() const noexcept {}
  };
  UseAwaiter Use(Nanos service) { return UseAwaiter{*this, service}; }

  // Fraction of [since, now] the busiest server was reserved (rough utilization).
  void Reset() { std::fill(free_at_.begin(), free_at_.end(), loop_.Now()); }

 private:
  EventLoop& loop_;
  std::vector<Nanos> free_at_;
};

}  // namespace cheetah::sim

#endif  // SRC_SIM_RESOURCE_H_
