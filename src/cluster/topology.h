// The topology map: the manager-maintained global state every server and
// client proxy must agree on (§5.1).
//
// It holds (i) meta/data server membership, (ii) the logical volumes of each
// PG's volume group and the logical-to-physical volume mapping, and (iii) the
// view number, incremented on every change. Requests carry the sender's view
// number; servers reject mismatches with kStaleView, which is how a lagging
// party learns to refresh.
#ifndef SRC_CLUSTER_TOPOLOGY_H_
#define SRC_CLUSTER_TOPOLOGY_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/crush/crush.h"
#include "src/sim/network.h"

namespace cheetah::cluster {

using PgId = uint32_t;
using LvId = uint32_t;
using PvId = uint32_t;

struct PhysicalVolume {
  PhysicalVolume() = default;
  PvId id = 0;
  sim::NodeId data_server = sim::kInvalidNode;
  uint32_t disk_index = 0;
  bool healthy = true;

  // Name of the raw block volume on the data server's disk.
  std::string DeviceName() const { return "pv_" + std::to_string(id); }
};

struct LogicalVolume {
  LogicalVolume() = default;
  LvId id = 0;
  std::vector<PvId> replicas;  // n physical volumes holding identical data
  bool writable = true;
  uint64_t capacity_bytes = 0;
  uint32_t block_size = 4096;
  // EC stripe LV (src/tier): `replicas` holds K+M physical volumes that each
  // store a *different* Reed-Solomon chunk at the same extent offsets, so one
  // allocation of shard-sized extents reserves the range on the whole stripe.
  // capacity_bytes is the per-chunk (per-PV) capacity.
  bool ec_stripe = false;

  uint64_t TotalBlocks() const { return capacity_bytes / block_size; }
};

// Live PG migration phases for a planned drain (Prepare -> DoubleWrite ->
// Catchup -> Cutover -> Release). Only the first three are *states* in the
// topology: Cutover is the atomic view bump that removes the draining node
// from the CRUSH map and erases the migration entries, and Release is the
// post-cutover cleanup (the drained node is retired, forwarding stops because
// the entries are gone).
enum class MigrationPhase : uint8_t {
  kPrepare = 0,     // destination chosen, published; no traffic forwarded yet
  kDoubleWrite = 1, // source additionally replicates every write to the dest
  kCatchup = 2,     // dest is pulling the PG's history; double-write continues
};

// One PG's in-flight migration, replicated in the topology so every server
// and proxy agrees on who forwards where at each view.
struct PgMigration {
  PgMigration() = default;
  MigrationPhase phase = MigrationPhase::kPrepare;
  sim::NodeId source = sim::kInvalidNode;       // current primary being drained
  sim::NodeId destination = sim::kInvalidNode;  // post-cutover owner
};

struct TopologyMap {
  TopologyMap() = default;

  uint64_t view = 0;
  uint32_t pg_count = 0;
  uint32_t replication = 3;

  crush::Map meta_crush;                 // meta servers, keyed by NodeId
  std::vector<sim::NodeId> data_servers;
  std::map<PvId, PhysicalVolume> pvs;
  std::map<LvId, LogicalVolume> lvs;
  std::map<PgId, std::vector<LvId>> vgs;  // each PG's volume group
  // Each PG's pool of EC stripe LVs, disjoint from `vgs` so replica
  // allocation never lands on a stripe (and vice versa). Empty when the EC
  // tier is disabled.
  std::map<PgId, std::vector<LvId>> ec_vgs;
  // In-flight planned migrations, keyed by PG. Non-empty only while a drain
  // is running; cutover erases every entry in the same view bump that removes
  // the drained node from the CRUSH map.
  std::map<PgId, PgMigration> migrations;
  // Meta servers mid-drain (still CRUSH members, shedding primaries) and
  // retired ones (drained + removed; the re-admission sweep must skip them or
  // a decommissioned node would instantly rejoin on its next heartbeat).
  std::vector<sim::NodeId> draining_metas;
  std::vector<sim::NodeId> retired_metas;

  // --- derived lookups ---
  PgId PgOf(std::string_view object_name) const {
    return crush::Map::NameToPg(object_name, pg_count);
  }
  std::vector<sim::NodeId> MetaServersOf(PgId pg) const {
    return meta_crush.Select(pg, replication);
  }
  sim::NodeId PrimaryOf(PgId pg) const {
    return meta_crush.size() == 0 ? sim::kInvalidNode : meta_crush.Primary(pg);
  }

  const LogicalVolume* FindLv(LvId id) const {
    auto it = lvs.find(id);
    return it == lvs.end() ? nullptr : &it->second;
  }
  const PhysicalVolume* FindPv(PvId id) const {
    auto it = pvs.find(id);
    return it == pvs.end() ? nullptr : &it->second;
  }
  const PgMigration* MigrationOf(PgId pg) const {
    auto it = migrations.find(pg);
    return it == migrations.end() ? nullptr : &it->second;
  }
  bool IsDraining(sim::NodeId node) const {
    return std::find(draining_metas.begin(), draining_metas.end(), node) !=
           draining_metas.end();
  }
  bool IsRetired(sim::NodeId node) const {
    return std::find(retired_metas.begin(), retired_metas.end(), node) !=
           retired_metas.end();
  }

  // PGs for which `node` is in the replica set / is primary.
  std::vector<PgId> PgsOf(sim::NodeId node) const;
  std::vector<PgId> PrimaryPgsOf(sim::NodeId node) const;

  std::string Serialize() const;
  static Result<TopologyMap> Deserialize(std::string_view data);

  // Structural equality used by tests.
  bool SameShape(const TopologyMap& other) const;
};

}  // namespace cheetah::cluster

#endif  // SRC_CLUSTER_TOPOLOGY_H_
